package planner

import (
	"errors"

	"dronedse/mathx"
)

// Lawnmower generates a boustrophedon (back-and-forth) coverage path over
// the axis-aligned rectangle with the given origin corner and extent, at a
// fixed altitude: survey rows run along +X/−X alternately, stepping +Y by
// the lane spacing, so a sensor with half-footprint ≥ spacing/2 images the
// whole area. The returned points are the row endpoints, in flight order —
// ready to become mission waypoints or a PlanTrajectory input.
//
// The final row is pinned to the far edge (origin.Y + heightM) whenever the
// spacing does not divide the height exactly, so coverage never falls short
// of the declared area; the last lane simply overlaps its neighbor.
func Lawnmower(origin mathx.Vec3, widthM, heightM, spacingM, altM float64) ([]mathx.Vec3, error) {
	if widthM <= 0 || heightM <= 0 {
		return nil, errors.New("planner: coverage area must have positive extent")
	}
	if spacingM <= 0 {
		return nil, errors.New("planner: coverage lane spacing must be positive")
	}
	if altM <= 0 {
		return nil, errors.New("planner: coverage altitude must be above ground")
	}
	rows := int(heightM/spacingM) + 1
	// Pin the far edge when the spacing leaves a strip uncovered.
	if float64(rows-1)*spacingM < heightM {
		rows++
	}
	pts := make([]mathx.Vec3, 0, 2*rows)
	for i := 0; i < rows; i++ {
		y := origin.Y + float64(i)*spacingM
		if y > origin.Y+heightM {
			y = origin.Y + heightM
		}
		near := mathx.V3(origin.X, y, altM)
		far := mathx.V3(origin.X+widthM, y, altM)
		if i%2 == 0 {
			pts = append(pts, near, far)
		} else {
			pts = append(pts, far, near)
		}
	}
	return pts, nil
}
