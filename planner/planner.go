// Package planner is the outer-loop navigation substrate of Table 1
// ("Navigation & trajectory", "Planning"): an A* grid planner over the
// occupancy map, shortcut smoothing, and trapezoidal-velocity trajectory
// generation producing the position+velocity targets the inner loop
// consumes (Figure 6). Planning runs with relaxed deadlines — the §6 point
// that mission planning does not load the real-time loop.
package planner

import (
	"container/heap"
	"errors"
	"math"

	"dronedse/mapping"
	"dronedse/mathx"
)

// Planner plans over an (already inflated) occupancy grid within bounds.
type Planner struct {
	Grid *mapping.Grid
	// Min and Max bound the search volume (meters).
	Min, Max mathx.Vec3
	// MaxExpansions bounds the A* search.
	MaxExpansions int
}

// New builds a planner with a default search budget.
func New(grid *mapping.Grid, min, max mathx.Vec3) *Planner {
	return &Planner{Grid: grid, Min: min, Max: max, MaxExpansions: 200000}
}

// Errors.
var (
	ErrStartBlocked = errors.New("planner: start inside an obstacle")
	ErrGoalBlocked  = errors.New("planner: goal inside an obstacle")
	ErrNoPath       = errors.New("planner: no path found")
)

// neighbor offsets: 6-connected axis moves plus 12 planar diagonals.
var moves = func() [][3]int {
	var out [][3]int
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				n := abs(dx) + abs(dy) + abs(dz)
				if n == 1 || n == 2 {
					out = append(out, [3]int{dx, dy, dz})
				}
			}
		}
	}
	return out
}()

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

type node struct {
	key  mapping.Key
	g, f float64
	idx  int
}

type pq []*node

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].f < p[j].f }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i]; p[i].idx, p[j].idx = i, j }
func (p *pq) Push(x interface{}) { n := x.(*node); n.idx = len(*p); *p = append(*p, n) }
func (p *pq) Pop() interface{} {
	old := *p
	n := old[len(old)-1]
	*p = old[:len(old)-1]
	return n
}

// PlanPath searches A* from start to goal over free voxels and returns the
// voxel-center waypoint list (start and goal included verbatim).
func (p *Planner) PlanPath(start, goal mathx.Vec3) ([]mathx.Vec3, error) {
	if p.Grid.Occupied(start) {
		return nil, ErrStartBlocked
	}
	if p.Grid.Occupied(goal) {
		return nil, ErrGoalBlocked
	}
	startK := p.Grid.KeyOf(start)
	goalK := p.Grid.KeyOf(goal)
	if startK == goalK {
		return []mathx.Vec3{start, goal}, nil
	}

	h := func(k mapping.Key) float64 {
		return p.Grid.Center(k).Sub(p.Grid.Center(goalK)).Norm()
	}
	open := &pq{}
	heap.Init(open)
	nodes := map[mapping.Key]*node{}
	came := map[mapping.Key]mapping.Key{}
	closed := map[mapping.Key]bool{}

	s := &node{key: startK, g: 0, f: h(startK)}
	heap.Push(open, s)
	nodes[startK] = s

	expansions := 0
	for open.Len() > 0 {
		cur := heap.Pop(open).(*node)
		if cur.key == goalK {
			return p.reconstruct(came, cur.key, start, goal), nil
		}
		if closed[cur.key] {
			continue
		}
		closed[cur.key] = true
		expansions++
		if expansions > p.MaxExpansions {
			break
		}
		for _, m := range moves {
			nk := mapping.Key{cur.key[0] + m[0], cur.key[1] + m[1], cur.key[2] + m[2]}
			if closed[nk] || !p.inBounds(nk) || p.Grid.OccupiedKey(nk) {
				continue
			}
			step := math.Sqrt(float64(m[0]*m[0]+m[1]*m[1]+m[2]*m[2])) * p.Grid.ResM
			ng := cur.g + step
			if n, ok := nodes[nk]; ok {
				if ng < n.g {
					n.g = ng
					n.f = ng + h(nk)
					came[nk] = cur.key
					heap.Fix(open, n.idx)
				}
				continue
			}
			n := &node{key: nk, g: ng, f: ng + h(nk)}
			nodes[nk] = n
			came[nk] = cur.key
			heap.Push(open, n)
		}
	}
	return nil, ErrNoPath
}

func (p *Planner) inBounds(k mapping.Key) bool {
	c := p.Grid.Center(k)
	return c.X >= p.Min.X && c.X <= p.Max.X &&
		c.Y >= p.Min.Y && c.Y <= p.Max.Y &&
		c.Z >= p.Min.Z && c.Z <= p.Max.Z
}

func (p *Planner) reconstruct(came map[mapping.Key]mapping.Key, k mapping.Key, start, goal mathx.Vec3) []mathx.Vec3 {
	var rev []mathx.Vec3
	rev = append(rev, goal)
	for {
		prev, ok := came[k]
		if !ok {
			break
		}
		rev = append(rev, p.Grid.Center(k))
		k = prev
	}
	rev = append(rev, start)
	out := make([]mathx.Vec3, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, rev[i])
	}
	return out
}

// Smooth shortcut-smooths a path: repeatedly bridge non-adjacent waypoints
// whose connecting segment is collision-free.
func (p *Planner) Smooth(path []mathx.Vec3) []mathx.Vec3 {
	if len(path) <= 2 {
		return path
	}
	out := []mathx.Vec3{path[0]}
	i := 0
	for i < len(path)-1 {
		j := len(path) - 1
		for j > i+1 && p.Grid.SegmentCollides(path[i], path[j]) {
			j--
		}
		out = append(out, path[j])
		i = j
	}
	return out
}

// PathLength sums a path's segment lengths.
func PathLength(path []mathx.Vec3) float64 {
	total := 0.0
	for i := 1; i < len(path); i++ {
		total += path[i].Sub(path[i-1]).Norm()
	}
	return total
}
