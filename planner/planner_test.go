package planner

import (
	"math"
	"testing"

	"dronedse/mapping"
	"dronedse/mathx"
)

// wallWorld builds a grid with a wall at x=5 (y,z in [0,6]) pierced by a
// window at y∈[2.5,3.5], z∈[2.5,3.5].
func wallWorld() *mapping.Grid {
	g := mapping.NewGrid(0.5)
	for y := 0.25; y < 6; y += 0.5 {
		for z := 0.25; z < 6; z += 0.5 {
			if y > 2.5 && y < 3.5 && z > 2.5 && z < 3.5 {
				continue // window
			}
			g.InsertPoint(mathx.V3(5.25, y, z))
		}
	}
	return g
}

func bounds() (mathx.Vec3, mathx.Vec3) {
	return mathx.V3(-1, -1, 0), mathx.V3(12, 8, 8)
}

func TestPlanStraightLineWhenFree(t *testing.T) {
	min, max := bounds()
	p := New(mapping.NewGrid(0.5), min, max)
	path, err := p.PlanPath(mathx.V3(0, 0, 1), mathx.V3(8, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	sm := p.Smooth(path)
	if len(sm) != 2 {
		t.Errorf("free-space smoothed path has %d waypoints, want 2", len(sm))
	}
	if PathLength(sm) > 1.05*mathx.V3(8, 4, 1).Norm() {
		t.Errorf("free-space path length %.2f not near straight-line %.2f",
			PathLength(sm), mathx.V3(8, 4, 1).Norm())
	}
}

func TestPlanThroughWindow(t *testing.T) {
	min, max := bounds()
	p := New(wallWorld(), min, max)
	start := mathx.V3(1, 3, 3)
	goal := mathx.V3(9, 3, 3)
	path, err := p.PlanPath(start, goal)
	if err != nil {
		t.Fatal(err)
	}
	// Every leg of the smoothed path must be collision-free.
	sm := p.Smooth(path)
	for i := 1; i < len(sm); i++ {
		if p.Grid.SegmentCollides(sm[i-1], sm[i]) {
			t.Fatalf("smoothed leg %d collides", i)
		}
	}
	// The path must actually thread the window region at the wall plane.
	threaded := false
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if (a.X-5.25)*(b.X-5.25) <= 0 { // crosses the wall plane
			tt := (5.25 - a.X) / (b.X - a.X)
			y := a.Y + tt*(b.Y-a.Y)
			z := a.Z + tt*(b.Z-a.Z)
			if y > 2.2 && y < 3.8 && z > 2.2 && z < 3.8 {
				threaded = true
			}
		}
	}
	if !threaded {
		t.Error("path did not pass through the window")
	}
	if PathLength(path) < 8 {
		t.Errorf("path suspiciously short: %.2f m", PathLength(path))
	}
}

func TestPlanAroundWallWithoutWindow(t *testing.T) {
	g := mapping.NewGrid(0.5)
	for y := 0.25; y < 6; y += 0.5 {
		for z := 0.25; z < 6; z += 0.5 {
			g.InsertPoint(mathx.V3(5.25, y, z))
		}
	}
	min, max := bounds()
	p := New(g, min, max)
	path, err := p.PlanPath(mathx.V3(1, 3, 3), mathx.V3(9, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	// The detour (over or around the wall) must be meaningfully longer
	// than the straight line.
	if PathLength(path) < 9 {
		t.Errorf("detour length %.2f m too short for a 6x6 wall", PathLength(path))
	}
}

func TestPlanErrors(t *testing.T) {
	min, max := bounds()
	g := wallWorld()
	p := New(g, min, max)
	if _, err := p.PlanPath(mathx.V3(5.25, 1, 1), mathx.V3(9, 3, 3)); err != ErrStartBlocked {
		t.Errorf("blocked start: err = %v", err)
	}
	if _, err := p.PlanPath(mathx.V3(1, 3, 3), mathx.V3(5.25, 1, 1)); err != ErrGoalBlocked {
		t.Errorf("blocked goal: err = %v", err)
	}
	// Goal outside bounds is unreachable.
	if _, err := p.PlanPath(mathx.V3(1, 3, 3), mathx.V3(50, 50, 50)); err == nil {
		t.Error("out-of-bounds goal planned")
	}
}

func TestPlanSameVoxel(t *testing.T) {
	min, max := bounds()
	p := New(mapping.NewGrid(0.5), min, max)
	path, err := p.PlanPath(mathx.V3(1, 1, 1), mathx.V3(1.1, 1.1, 1.1))
	if err != nil || len(path) != 2 {
		t.Errorf("same-voxel plan = %v, %v", path, err)
	}
}

func TestTrajectoryProfile(t *testing.T) {
	path := []mathx.Vec3{{X: 0, Y: 0, Z: 5}, {X: 20, Y: 0, Z: 5}}
	tr, err := PlanTrajectory(path, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid: accel 2 s (4 m), cruise 12 m / 4 = 3 s, decel 2 s → 7 s.
	if math.Abs(tr.TotalS-7) > 1e-9 {
		t.Errorf("duration = %v, want 7 s", tr.TotalS)
	}
	if tr.MaxSpeed() != 4 {
		t.Errorf("max speed = %v", tr.MaxSpeed())
	}
	// Midpoint of cruise: position 4 + 4*1.5 = 10 m, speed 4.
	pos, vel := tr.Sample(3.5)
	if math.Abs(pos.X-10) > 1e-9 || math.Abs(vel.X-4) > 1e-9 {
		t.Errorf("cruise sample = %v, %v", pos, vel)
	}
	// End: holds the final waypoint at zero velocity.
	pos, vel = tr.Sample(100)
	if pos != path[1] || vel.Norm() != 0 {
		t.Errorf("post-end sample = %v, %v", pos, vel)
	}
	// Start.
	pos, vel = tr.Sample(-1)
	if pos != path[0] || vel.Norm() != 0 {
		t.Errorf("pre-start sample = %v, %v", pos, vel)
	}
}

func TestTrajectoryTriangularShortLeg(t *testing.T) {
	path := []mathx.Vec3{{Z: 5}, {X: 1, Z: 5}} // 1 m leg, never reaches vmax
	tr, err := PlanTrajectory(path, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * 1.0) // sqrt(a*L)
	if math.Abs(tr.MaxSpeed()-want) > 1e-9 {
		t.Errorf("triangular peak = %v, want %v", tr.MaxSpeed(), want)
	}
}

func TestTrajectoryContinuity(t *testing.T) {
	path := []mathx.Vec3{{Z: 5}, {X: 6, Z: 5}, {X: 6, Y: 8, Z: 7}, {X: 0, Y: 8, Z: 5}}
	tr, err := PlanTrajectory(path, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev, _ := tr.Sample(0)
	dt := 0.01
	for tt := dt; tt <= tr.TotalS+0.5; tt += dt {
		pos, vel := tr.Sample(tt)
		jump := pos.Sub(prev).Norm()
		if jump > tr.MaxSpeed()*dt*1.5+1e-9 {
			t.Fatalf("position jump %v at t=%v", jump, tt)
		}
		if vel.Norm() > 5+1e-9 {
			t.Fatalf("velocity %v exceeds vmax at t=%v", vel.Norm(), tt)
		}
		prev = pos
	}
	// Velocity returns to zero at every waypoint (stop-at-waypoint
	// profile), in particular at the end.
	if _, vel := tr.Sample(tr.TotalS - 1e-6); vel.Norm() > 0.01 {
		t.Errorf("terminal velocity = %v", vel.Norm())
	}
}

func TestTrajectoryErrors(t *testing.T) {
	if _, err := PlanTrajectory([]mathx.Vec3{{X: 1}}, 1, 1); err == nil {
		t.Error("single waypoint accepted")
	}
	if _, err := PlanTrajectory([]mathx.Vec3{{X: 1}, {X: 1}}, 1, 1); err == nil {
		t.Error("zero-length path accepted")
	}
	if _, err := PlanTrajectory([]mathx.Vec3{{}, {X: 1}}, 0, 1); err == nil {
		t.Error("zero vmax accepted")
	}
}

func TestPathLength(t *testing.T) {
	if PathLength(nil) != 0 {
		t.Error("empty path length")
	}
	l := PathLength([]mathx.Vec3{{}, {X: 3}, {X: 3, Y: 4}})
	if math.Abs(l-7) > 1e-12 {
		t.Errorf("length = %v, want 7", l)
	}
}
