package planner

import (
	"testing"

	"dronedse/mathx"
)

// TestLawnmowerGeometry pins the boustrophedon layout: row count, serpentine
// direction flips, and the far-edge pin when the spacing does not divide the
// height.
func TestLawnmowerGeometry(t *testing.T) {
	origin := mathx.V3(4, 0, 0)

	// Exact division: 24 m at 6 m spacing → 5 rows, 10 endpoints.
	pts, err := Lawnmower(origin, 24, 24, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("got %d endpoints, want 10", len(pts))
	}
	for _, p := range pts {
		if p.Z != 5 {
			t.Fatalf("endpoint %v not at survey altitude", p)
		}
	}
	// Even rows run near→far, odd rows far→near.
	if pts[0].X != 4 || pts[1].X != 28 || pts[2].X != 28 || pts[3].X != 4 {
		t.Fatalf("serpentine order broken: %v %v %v %v", pts[0], pts[1], pts[2], pts[3])
	}
	// Rows step +Y by the spacing; last row sits on the far edge.
	if pts[0].Y != 0 || pts[2].Y != 6 || pts[8].Y != 24 {
		t.Fatalf("row spacing broken: y = %v %v %v", pts[0].Y, pts[2].Y, pts[8].Y)
	}

	// Non-dividing spacing: 10 m at 4 m → rows at 0, 4, 8, then the pinned
	// far edge at 10.
	pts, err = Lawnmower(origin, 10, 10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d endpoints, want 8", len(pts))
	}
	if last := pts[len(pts)-1].Y; last != 10 {
		t.Fatalf("final row y = %v, want the pinned far edge 10", last)
	}
}

// TestLawnmowerErrors pins the input validation.
func TestLawnmowerErrors(t *testing.T) {
	origin := mathx.V3(0, 0, 0)
	cases := []struct {
		name               string
		w, h, spacing, alt float64
	}{
		{"zero width", 0, 10, 2, 5},
		{"negative height", 10, -1, 2, 5},
		{"zero spacing", 10, 10, 0, 5},
		{"ground altitude", 10, 10, 2, 0},
	}
	for _, c := range cases {
		if _, err := Lawnmower(origin, c.w, c.h, c.spacing, c.alt); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}
