package planner

import (
	"errors"
	"math"

	"dronedse/mathx"
)

// Trajectory is a time-parametrized path: per-segment trapezoidal velocity
// profiles (accelerate, cruise, decelerate per leg, stopping at each
// waypoint), sampled by the autopilot into the position+velocity targets
// the inner loop consumes.
type Trajectory struct {
	segs []segment
	// TotalS is the trajectory duration.
	TotalS float64
}

type segment struct {
	a, b    mathx.Vec3
	dir     mathx.Vec3
	length  float64
	vmax    float64
	amax    float64
	tAccel  float64
	tCruise float64
	tStart  float64
	dur     float64
	peakV   float64
}

// ErrDegeneratePath reports a path too short to time-parametrize.
var ErrDegeneratePath = errors.New("planner: path needs >= 2 distinct waypoints")

// PlanTrajectory builds a trajectory over the path at the given velocity
// and acceleration limits. Legs shorter than the accel distance use a
// triangular profile.
func PlanTrajectory(path []mathx.Vec3, vmax, amax float64) (*Trajectory, error) {
	if vmax <= 0 || amax <= 0 {
		return nil, errors.New("planner: limits must be positive")
	}
	var segs []segment
	t := 0.0
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		d := b.Sub(a)
		length := d.Norm()
		if length < 1e-9 {
			continue
		}
		s := segment{a: a, b: b, dir: d.Scale(1 / length), length: length, vmax: vmax, amax: amax, tStart: t}
		// Trapezoid: distance to reach vmax is v^2/2a on each side.
		accelDist := vmax * vmax / (2 * amax)
		if 2*accelDist <= length {
			s.peakV = vmax
			s.tAccel = vmax / amax
			s.tCruise = (length - 2*accelDist) / vmax
		} else {
			// Triangular: peak v = sqrt(a * length).
			s.peakV = math.Sqrt(amax * length)
			s.tAccel = s.peakV / amax
			s.tCruise = 0
		}
		s.dur = 2*s.tAccel + s.tCruise
		t += s.dur
		segs = append(segs, s)
	}
	if len(segs) == 0 {
		return nil, ErrDegeneratePath
	}
	return &Trajectory{segs: segs, TotalS: t}, nil
}

// Sample returns the position and velocity target at time t (clamped to
// the trajectory's span; beyond the end it holds the final waypoint).
func (tr *Trajectory) Sample(t float64) (pos, vel mathx.Vec3) {
	if t <= 0 {
		return tr.segs[0].a, mathx.Vec3{}
	}
	last := tr.segs[len(tr.segs)-1]
	if t >= tr.TotalS {
		return last.b, mathx.Vec3{}
	}
	for _, s := range tr.segs {
		if t > s.tStart+s.dur {
			continue
		}
		lt := t - s.tStart
		var dist, speed float64
		switch {
		case lt < s.tAccel:
			speed = s.amax * lt
			dist = 0.5 * s.amax * lt * lt
		case lt < s.tAccel+s.tCruise:
			speed = s.peakV
			dist = 0.5*s.amax*s.tAccel*s.tAccel + s.peakV*(lt-s.tAccel)
		default:
			rem := s.dur - lt
			speed = s.amax * rem
			dist = s.length - 0.5*s.amax*rem*rem
		}
		return s.a.Add(s.dir.Scale(dist)), s.dir.Scale(speed)
	}
	return last.b, mathx.Vec3{}
}

// End returns the final waypoint.
func (tr *Trajectory) End() mathx.Vec3 { return tr.segs[len(tr.segs)-1].b }

// MaxSpeed returns the highest speed the profile commands.
func (tr *Trajectory) MaxSpeed() float64 {
	m := 0.0
	for _, s := range tr.segs {
		if s.peakV > m {
			m = s.peakV
		}
	}
	return m
}
