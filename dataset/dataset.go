// Package dataset synthesizes EuRoC-MAV-like visual sequences (§5's
// workload; Burri et al. 2016). The real EuRoC dataset is camera imagery
// from a micro aerial vehicle; it is not redistributable here, so the
// package renders controlled synthetic equivalents: a drone trajectory
// through a landmark-filled hall, a pinhole camera, and per-frame grayscale
// images of the projected landmarks. Sequence families mirror EuRoC's:
// MH01-MH05 (machine hall, easy to difficult) and V101-V203 (Vicon rooms),
// with difficulty raising flight speed and lowering texture density — the
// same knobs that make the real sequences hard for ORB-SLAM.
package dataset

import (
	"errors"
	"math"
	"math/rand"

	"dronedse/mathx"
)

// Difficulty grades a sequence like the EuRoC suffixes.
type Difficulty int

// Difficulty levels.
const (
	Easy Difficulty = iota
	Medium
	Difficult
)

// String implements fmt.Stringer.
func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "easy"
	case Medium:
		return "medium"
	default:
		return "difficult"
	}
}

// Camera is a pinhole model.
type Camera struct {
	Width, Height int
	// Fx, Fy, Cx, Cy are the intrinsics in pixels.
	Fx, Fy, Cx, Cy float64
}

// DefaultCamera matches a scaled-down EuRoC sensor (the real one is
// 752x480; 376x240 halves the work while preserving geometry).
func DefaultCamera() Camera {
	return Camera{Width: 376, Height: 240, Fx: 230, Fy: 230, Cx: 188, Cy: 120}
}

// Project maps a camera-frame 3D point to pixel coordinates; ok is false
// behind the camera or outside the image.
func (c Camera) Project(p mathx.Vec3) (u, v float64, ok bool) {
	if p.Z <= 0.1 {
		return 0, 0, false
	}
	u = c.Fx*p.X/p.Z + c.Cx
	v = c.Fy*p.Y/p.Z + c.Cy
	if u < 0 || v < 0 || u >= float64(c.Width) || v >= float64(c.Height) {
		return 0, 0, false
	}
	return u, v, true
}

// Spec describes one sequence.
type Spec struct {
	Name       string
	Difficulty Difficulty
	// Frames is the sequence length.
	Frames int
	// FPS is the camera rate (EuRoC: 20).
	FPS float64
	// Landmarks is the world landmark count (texture density).
	Landmarks int
	// SpeedMS is the trajectory speed.
	SpeedMS float64
	// RoomHalfM is the half-extent of the hall.
	RoomHalfM float64
	// Orbit, when set, replaces the lissajous sweep with a closed loop
	// that returns exactly to the start — the loop-closure scenario.
	Orbit bool
	Seed  int64
}

// EuRoCSpecs returns the 11 Figure 17 sequences. Frame counts are scaled
// down from the real dataset (which runs for minutes) to keep the harness
// fast while preserving the relative per-sequence mix.
func EuRoCSpecs() []Spec {
	mk := func(name string, d Difficulty, frames, lms int, speed float64, seed int64) Spec {
		return Spec{Name: name, Difficulty: d, Frames: frames, FPS: 20,
			Landmarks: lms, SpeedMS: speed, RoomHalfM: 8, Seed: seed}
	}
	return []Spec{
		mk("MH01", Easy, 120, 900, 0.7, 101),
		mk("MH02", Easy, 110, 880, 0.8, 102),
		mk("MH03", Medium, 100, 750, 1.5, 103),
		mk("MH04", Difficult, 90, 600, 2.2, 104),
		mk("MH05", Difficult, 90, 580, 2.4, 105),
		mk("V101", Easy, 100, 820, 0.6, 201),
		mk("V102", Medium, 95, 700, 1.4, 202),
		mk("V103", Difficult, 85, 560, 2.3, 203),
		mk("V201", Easy, 100, 800, 0.7, 301),
		mk("V202", Medium, 95, 680, 1.5, 302),
		mk("V203", Difficult, 85, 540, 2.5, 303),
	}
}

// Frame is one camera sample: the rendered image plus ground truth.
type Frame struct {
	Index int
	TimeS float64
	// Image is the rendered grayscale image, row-major, Width*Height.
	Image []uint8
	// Depth is the stereo-derived depth map in meters (0 where no stereo
	// match exists). The paper's ORB-SLAM2 runs EuRoC in stereo mode;
	// this is the synthetic equivalent of its stereo depth.
	Depth []float32
	// TruePos and TrueAtt are ground truth for trajectory-error metrics.
	TruePos mathx.Vec3
	TrueAtt mathx.Quat
}

// patchSize is the side of each landmark's texture stamp.
const patchSize = 9

// Sequence is a generated dataset.
type Sequence struct {
	Spec   Spec
	Cam    Camera
	frames []Frame
	// LandmarksW are the world-frame landmark positions.
	LandmarksW []mathx.Vec3
	// patches are per-landmark static texture stamps: each landmark has a
	// distinctive, frame-invariant appearance (the role real-world visual
	// texture plays for ORB descriptors).
	patches [][]uint8
}

// Len returns the frame count.
func (s *Sequence) Len() int { return len(s.frames) }

// Frame returns frame i.
func (s *Sequence) Frame(i int) Frame { return s.frames[i] }

// Generate renders a sequence from its spec.
func Generate(spec Spec) (*Sequence, error) {
	if spec.Frames <= 0 || spec.Landmarks <= 0 || spec.FPS <= 0 {
		return nil, errors.New("dataset: invalid spec")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	cam := DefaultCamera()
	seq := &Sequence{Spec: spec, Cam: cam}

	// Landmarks: a textured wall field in front of the trajectory. The
	// drone orbit faces outward at walls z∈[2, RoomHalf*2] away.
	for i := 0; i < spec.Landmarks; i++ {
		seq.LandmarksW = append(seq.LandmarksW, mathx.V3(
			(rng.Float64()*2-1)*spec.RoomHalfM*2.2,
			(rng.Float64()*2-1)*spec.RoomHalfM*1.2,
			2.5+rng.Float64()*spec.RoomHalfM*1.6,
		))
		patch := make([]uint8, patchSize*patchSize)
		for j := range patch {
			patch[j] = uint8(40 + rng.Intn(215))
		}
		// A bright center cluster guarantees a corner response.
		c := patchSize/2*patchSize + patchSize/2
		patch[c] = 255
		patch[c-1], patch[c+1] = 230, 240
		seq.patches = append(seq.patches, patch)
	}

	// Trajectory: a lissajous sweep, camera looking down +Z (toward the
	// landmark field), panning slowly with x-position.
	dt := 1 / spec.FPS
	for i := 0; i < spec.Frames; i++ {
		t := float64(i) * dt
		var pos mathx.Vec3
		var yaw float64
		if spec.Orbit {
			// A closed loop: back at the start on the final frame.
			phi := 2 * math.Pi * float64(i) / float64(spec.Frames-1)
			r := spec.RoomHalfM * 0.35
			pos = mathx.V3(r*math.Sin(phi), r*(math.Cos(phi)-1), 0.3*math.Sin(2*phi))
			yaw = 0.15 * math.Sin(phi)
		} else {
			// Path length scales with speed.
			phase := spec.SpeedMS * t * 0.35
			pos = mathx.V3(
				spec.RoomHalfM*0.8*math.Sin(phase),
				spec.RoomHalfM*0.4*math.Sin(0.7*phase+1),
				0.6*math.Sin(0.5*phase),
			)
			yaw = 0.25 * math.Sin(0.6*phase) // gentle pan
		}
		att := mathx.QuatFromEuler(0, 0, yaw)
		img, depth := seq.render(pos, att, rng)
		seq.frames = append(seq.frames, Frame{
			Index: i, TimeS: t, Image: img, Depth: depth, TruePos: pos, TrueAtt: att,
		})
	}
	return seq, nil
}

// render draws the visible landmarks as bright blobs over textured noise.
// The camera frame is x-right, y-down, z-forward; world-to-camera applies
// the inverse body attitude (camera boresight = world +Z at identity).
func (s *Sequence) render(pos mathx.Vec3, att mathx.Quat, rng *rand.Rand) ([]uint8, []float32) {
	cam := s.Cam
	img := make([]uint8, cam.Width*cam.Height)
	depth := make([]float32, cam.Width*cam.Height)
	// Background: low-amplitude noise (sensor noise rises with
	// difficulty: harder sequences are darker/noisier like V203).
	noise := 6 + 4*int(s.Spec.Difficulty)
	for i := range img {
		img[i] = uint8(20 + rng.Intn(noise))
	}
	// Stereo depth noise grows with difficulty.
	depthNoise := 0.01 + 0.015*float64(s.Spec.Difficulty)
	for li, lw := range s.LandmarksW {
		pc := att.RotateInv(lw.Sub(pos))
		u, v, ok := cam.Project(pc)
		if !ok {
			continue
		}
		z := pc.Z * (1 + rng.NormFloat64()*depthNoise)
		stampPatch(img, depth, cam.Width, cam.Height, u, v, s.patches[li], float32(z))
	}
	return img, depth
}

// stampPatch draws a landmark's static texture centered at (u, v) and fills
// the synthetic stereo depth under it.
func stampPatch(img []uint8, depth []float32, w, h int, u, v float64, patch []uint8, z float32) {
	cu, cv := int(u+0.5), int(v+0.5)
	half := patchSize / 2
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			x, y := cu+dx, cv+dy
			if x < 0 || y < 0 || x >= w || y >= h {
				continue
			}
			img[y*w+x] = patch[(dy+half)*patchSize+(dx+half)]
			depth[y*w+x] = z
		}
	}
}

// VisibleLandmarks counts the landmarks projecting into the camera at a
// frame's true pose — tests use it to confirm the texture-density knob.
func (s *Sequence) VisibleLandmarks(i int) int {
	f := s.frames[i]
	n := 0
	for _, lw := range s.LandmarksW {
		pc := f.TrueAtt.RotateInv(lw.Sub(f.TruePos))
		if _, _, ok := s.Cam.Project(pc); ok {
			n++
		}
	}
	return n
}
