package dataset

import (
	"testing"

	"dronedse/mathx"
)

func TestEuRoCSpecs(t *testing.T) {
	specs := EuRoCSpecs()
	if len(specs) != 11 {
		t.Fatalf("sequences = %d, want Figure 17's 11", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate sequence %s", s.Name)
		}
		names[s.Name] = true
		if s.FPS != 20 {
			t.Errorf("%s: FPS = %v, EuRoC cameras run at 20", s.Name, s.FPS)
		}
		if s.Frames <= 0 || s.Landmarks <= 0 {
			t.Errorf("%s: degenerate spec", s.Name)
		}
	}
	for _, want := range []string{"MH01", "MH05", "V101", "V203"} {
		if !names[want] {
			t.Errorf("missing sequence %s", want)
		}
	}
}

func TestDifficultyKnobs(t *testing.T) {
	specs := EuRoCSpecs()
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	// Difficult sequences fly faster with less texture (like EuRoC).
	if byName["MH05"].SpeedMS <= byName["MH01"].SpeedMS {
		t.Error("difficult MH05 not faster than easy MH01")
	}
	if byName["MH05"].Landmarks >= byName["MH01"].Landmarks {
		t.Error("difficult MH05 not sparser than easy MH01")
	}
	if byName["MH01"].Difficulty != Easy || byName["V203"].Difficulty != Difficult {
		t.Error("difficulty labels wrong")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{}); err == nil {
		t.Error("zero spec accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := EuRoCSpecs()[0]
	spec.Frames = 5
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(spec)
	for i := 0; i < a.Len(); i++ {
		fa, fb := a.Frame(i), b.Frame(i)
		if fa.TruePos != fb.TruePos {
			t.Fatal("trajectories diverge between same-seed runs")
		}
		for j := range fa.Image {
			if fa.Image[j] != fb.Image[j] {
				t.Fatalf("frame %d pixel %d differs", i, j)
			}
		}
	}
}

func TestFrameShape(t *testing.T) {
	spec := EuRoCSpecs()[0]
	spec.Frames = 3
	seq, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cam := seq.Cam
	f := seq.Frame(0)
	if len(f.Image) != cam.Width*cam.Height {
		t.Fatalf("image size %d != %d", len(f.Image), cam.Width*cam.Height)
	}
	if len(f.Depth) != cam.Width*cam.Height {
		t.Fatal("depth map size mismatch")
	}
	// Depth exists only where landmarks were stamped, and is physical.
	withDepth := 0
	for _, d := range f.Depth {
		if d < 0 {
			t.Fatal("negative depth")
		}
		if d > 0 {
			withDepth++
			if d < 0.5 || d > 60 {
				t.Fatalf("depth %v outside the hall", d)
			}
		}
	}
	if withDepth == 0 {
		t.Fatal("no stereo depth anywhere")
	}
	if withDepth > len(f.Depth)/2 {
		t.Error("depth suspiciously dense; stereo only matches texture")
	}
}

func TestVisibility(t *testing.T) {
	spec := EuRoCSpecs()[0]
	spec.Frames = 10
	seq, _ := Generate(spec)
	for i := 0; i < seq.Len(); i++ {
		if n := seq.VisibleLandmarks(i); n < 50 {
			t.Errorf("frame %d: only %d landmarks visible; SLAM needs texture", i, n)
		}
	}
}

func TestTextureDensityTracksDifficulty(t *testing.T) {
	easy, _ := Generate(Spec{Name: "e", Difficulty: Easy, Frames: 3, FPS: 20,
		Landmarks: 900, SpeedMS: 0.7, RoomHalfM: 8, Seed: 1})
	hard, _ := Generate(Spec{Name: "h", Difficulty: Difficult, Frames: 3, FPS: 20,
		Landmarks: 500, SpeedMS: 2.4, RoomHalfM: 8, Seed: 1})
	if easy.VisibleLandmarks(0) <= hard.VisibleLandmarks(0) {
		t.Error("easy sequence should see more landmarks")
	}
}

func TestCameraProject(t *testing.T) {
	cam := DefaultCamera()
	u, v, ok := cam.Project(mathx.V3(0, 0, 5))
	if !ok || u != cam.Cx || v != cam.Cy {
		t.Errorf("on-axis projection = (%v,%v,%v)", u, v, ok)
	}
	if _, _, ok := cam.Project(mathx.V3(0, 0, -1)); ok {
		t.Error("behind-camera point projected")
	}
	if _, _, ok := cam.Project(mathx.V3(100, 0, 1)); ok {
		t.Error("out-of-frame point projected")
	}
}

func TestTrajectoryInsideRoom(t *testing.T) {
	spec := EuRoCSpecs()[4] // MH05, fastest MH
	seq, _ := Generate(spec)
	for i := 0; i < seq.Len(); i++ {
		p := seq.Frame(i).TruePos
		if p.Norm() > spec.RoomHalfM*1.5 {
			t.Fatalf("frame %d escaped the hall: %v", i, p)
		}
	}
}

func TestDifficultyString(t *testing.T) {
	if Easy.String() != "easy" || Medium.String() != "medium" || Difficult.String() != "difficult" {
		t.Error("difficulty strings wrong")
	}
}
