// Package parallelx is the repo's shared fan-out engine: a bounded worker
// pool with deterministic, input-ordered map-reduce primitives. Every
// compute-heavy layer (the core design-space sweeps, the bench figure
// generators, the slambench per-sequence runs, the microarch trace sims)
// fans out through it, so one knob — the pool size — governs the whole
// pipeline's parallelism.
//
// Determinism contract: all primitives write each result into the slot of
// the input that produced it, so output order is the input order regardless
// of completion order. With a pure worker function, output at any pool size
// is identical to PoolSize=1 (the serial path, which runs inline without
// spawning goroutines).
package parallelx

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// poolSize is the process-wide default worker count.
var poolSize atomic.Int64

func init() { poolSize.Store(int64(runtime.NumCPU())) }

// PoolSize returns the current default worker count.
func PoolSize() int { return int(poolSize.Load()) }

// SetPoolSize sets the default worker count and returns the previous value.
// Values below 1 are clamped to 1 (the serial path). Commands expose this as
// their -procs flag.
func SetPoolSize(n int) int {
	if n < 1 {
		n = 1
	}
	return int(poolSize.Swap(int64(n)))
}

// workers returns the number of goroutines to spawn for n items.
func workers(n int) int {
	w := PoolSize()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MapIndex computes fn(0..n-1) across the pool and returns the results in
// index order. fn must be safe for concurrent invocation; each index is
// evaluated exactly once.
func MapIndex[R any](n int, fn func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	out := make([]R, n)
	w := workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Map applies fn to every item across the pool, returning results in input
// order.
func Map[T, R any](items []T, fn func(T) R) []R {
	return MapIndex(len(items), func(i int) R { return fn(items[i]) })
}

// FilterMap applies fn to every item and keeps, in input order, the results
// for which fn returned ok. It is the shape of a grid sweep that skips
// infeasible points: the kept subsequence is identical to the serial loop's.
func FilterMap[T, R any](items []T, fn func(T) (R, bool)) []R {
	type slot struct {
		v  R
		ok bool
	}
	slots := MapIndex(len(items), func(i int) slot {
		v, ok := fn(items[i])
		return slot{v, ok}
	})
	out := make([]R, 0, len(items))
	for _, s := range slots {
		if s.ok {
			out = append(out, s.v)
		}
	}
	return out
}

// MapChunks splits [0, n) into fixed-length chunks — ceil(n/chunk) of them,
// the last possibly short — and computes fn(ci, lo, hi) for each across the
// pool, returning the results in chunk order. Unlike ChunkIndex, the chunk
// boundaries depend only on n and chunk, never on the pool size, so banded
// kernels (e.g. row-band feature detection) whose per-chunk results are
// concatenated produce identical merged output at every pool size.
func MapChunks[R any](n, chunk int, fn func(ci, lo, hi int) R) []R {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	nc := (n + chunk - 1) / chunk
	return MapIndex(nc, func(ci int) R {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(ci, lo, hi)
	})
}

// ChunkIndex splits [0, n) into one contiguous chunk per worker and calls
// fn(lo, hi) for each. Use it for grid sweeps whose per-index work is too
// cheap to schedule individually; fn chunks must write only to their own
// index range.
func ChunkIndex(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := workers(n)
	if w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Do runs the thunks concurrently (bounded by the pool) and returns when all
// have finished. Each thunk must write only to its own destinations.
func Do(fns ...func()) {
	MapIndex(len(fns), func(i int) struct{} {
		fns[i]()
		return struct{}{}
	})
}
