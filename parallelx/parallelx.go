// Package parallelx is the repo's shared fan-out engine: a bounded worker
// pool with deterministic, input-ordered map-reduce primitives. Every
// compute-heavy layer (the core design-space sweeps, the bench figure
// generators, the slambench per-sequence runs, the microarch trace sims)
// fans out through it, so one knob — the pool size — governs the whole
// pipeline's parallelism.
//
// Determinism contract: all primitives write each result into the slot of
// the input that produced it, so output order is the input order regardless
// of completion order. With a pure worker function, output at any pool size
// is identical to PoolSize=1 (the serial path, which runs inline without
// spawning goroutines).
package parallelx

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
)

// poolSize is the process-wide default worker count.
var poolSize atomic.Int64

func init() { poolSize.Store(int64(runtime.NumCPU())) }

// PoolSize returns the current default worker count.
func PoolSize() int { return int(poolSize.Load()) }

// SetPoolSize sets the default worker count and returns the previous value.
// Values below 1 are clamped to 1 (the serial path). Commands expose this as
// their -procs flag.
func SetPoolSize(n int) int {
	if n < 1 {
		n = 1
	}
	return int(poolSize.Swap(int64(n)))
}

// workers returns the number of goroutines to use for n items.
func workers(n int) int {
	w := PoolSize()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// itemRunner executes one item of a fan-out batch. The concrete runners
// (mapJob, chunkJob) hold the batch state, so a *job plus its runner form a
// reusable arena: pooling them keeps fan-out allocations independent of the
// pool size.
type itemRunner interface{ item(i int) }

// job is one fan-out batch handed to the persistent workers: items [0, n)
// are claimed with an atomic cursor, so at most poolSize goroutines (the
// submitting caller plus the workers that picked the job up) execute it and
// every index runs exactly once. The WaitGroup counts completed items, not
// participating goroutines; exited counts workers that fully left run().
// dispatch returns only once every posted invite has been consumed and its
// taker has exited — the quiescence proof that makes unconditional arena
// reuse race-free.
type job struct {
	r      itemRunner
	n      int64
	next   atomic.Int64
	exited atomic.Int64
	wg     sync.WaitGroup
}

// run claims and executes items until the job is drained.
func (j *job) run() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.r.item(int(i))
		j.wg.Done()
	}
}

// jobs is the hand-off channel the persistent workers receive on. Posting
// is always non-blocking (a full channel just means fewer workers join and
// the caller does more of the work itself), so a worker that submits a
// nested fan-out can never deadlock the pool.
var jobs = make(chan *job, 1024)

// arenaPool is a GC-stable free list. sync.Pool would fit, but its contents
// are dropped at every garbage collection, and the refill allocations scale
// with how many jobs run concurrently — i.e. with the pool size, which is
// exactly the dependence the allocs-vs-pool benchmarks forbid. A mutexed
// slice keeps its arenas across GCs; the cap bounds retention, and the
// retained objects are a few words each (their payload slices are cleared
// before Put).
type arenaPool struct {
	mu   sync.Mutex
	free []any
}

// arenaPoolCap bounds each type's free list; deeper nesting than this just
// allocates a fresh arena.
const arenaPoolCap = 64

// Get pops a free arena, or returns nil when the caller should allocate.
func (p *arenaPool) Get() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.free)
	if n == 0 {
		return nil
	}
	v := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	return v
}

// Put returns a quiescent arena to the free list.
func (p *arenaPool) Put(v any) {
	p.mu.Lock()
	if len(p.free) < arenaPoolCap {
		p.free = append(p.free, v)
	}
	p.mu.Unlock()
}

// jobPools maps a runner's concrete type to the free list its arenas are
// recycled through. Generic instantiations cannot declare package-level
// pools, so the generic mapJob[R] pools live here, keyed by type.
var jobPools sync.Map // reflect.Type -> *arenaPool

// poolFor returns the arena pool for the runner type of key (a nil typed
// pointer, so the lookup itself never allocates).
func poolFor(key any) *arenaPool {
	t := reflect.TypeOf(key)
	if p, ok := jobPools.Load(t); ok {
		return p.(*arenaPool)
	}
	p, _ := jobPools.LoadOrStore(t, &arenaPool{})
	return p.(*arenaPool)
}

// spawned counts the persistent workers started so far. Workers are spawned
// lazily up to the pool size in effect at submission time and then parked
// on the jobs channel forever: fan-out cost no longer includes per-call
// goroutine creation, which is what made allocs/op grow with the pool size.
var (
	spawned atomic.Int64
	spawnMu sync.Mutex
)

// maxWorkers bounds the persistent worker count however large SetPoolSize
// arguments get.
const maxWorkers = 512

// ensureWorkers makes sure at least w persistent workers exist.
func ensureWorkers(w int) {
	if w > maxWorkers {
		w = maxWorkers
	}
	if int(spawned.Load()) >= w {
		return
	}
	spawnMu.Lock()
	defer spawnMu.Unlock()
	for int(spawned.Load()) < w {
		spawned.Add(1)
		go func() {
			for j := range jobs {
				j.run()
				j.exited.Add(1)
			}
		}()
	}
}

// dispatch runs a prepared job of n items at parallelism w: up to w-1
// persistent workers are invited (non-blocking), the caller participates,
// and the call returns once every item has completed AND the job is
// quiescent — every posted invite consumed (drained by the caller or taken
// by a worker) and every worker that took one fully exited. Quiescence on
// return is what lets callers unconditionally recycle the arena, keeping
// fan-out allocations exactly independent of the pool size. The wait is
// bounded: the job is already drained when it starts, so a worker that
// holds an invite runs zero items and exits immediately; an invite still in
// the channel is received by the drain loop itself. The caller's
// participation plus the never-blocking post remain the no-deadlock
// guarantee for nested fan-outs.
func (j *job) dispatch(n, w int) {
	j.n = int64(n)
	j.next.Store(0)
	j.exited.Store(0)
	j.wg.Add(n)
	ensureWorkers(w - 1)
	posted := 0
post:
	for k := 0; k < w-1; k++ {
		select {
		case jobs <- j:
			posted++
		default:
			break post
		}
	}
	j.run()
	j.wg.Wait()
	// Quiesce. A foreign invite that surfaces while draining is re-posted;
	// if the channel is full we stand in for the worker it would have
	// reached instead (run + exited), so no submitter ever loses an invite
	// and spins forever waiting for it.
	drained := 0
	for j.exited.Load() != int64(posted-drained) {
		select {
		case j2 := <-jobs:
			if j2 == j {
				drained++
				continue
			}
			select {
			case jobs <- j2:
			default:
				j2.run()
				j2.exited.Add(1)
			}
		default:
			runtime.Gosched()
		}
	}
}

// mapJob is the pooled arena for one MapIndex fan-out.
type mapJob[R any] struct {
	out []R
	fn  func(i int) R
	j   job
}

func (m *mapJob[R]) item(i int) { m.out[i] = m.fn(i) }

// MapIndex computes fn(0..n-1) across the pool and returns the results in
// index order. fn must be safe for concurrent invocation; each index is
// evaluated exactly once.
func MapIndex[R any](n int, fn func(i int) R) []R {
	if n <= 0 {
		return nil
	}
	out := make([]R, n)
	w := workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	p := poolFor((*mapJob[R])(nil))
	m, _ := p.Get().(*mapJob[R])
	if m == nil {
		m = &mapJob[R]{}
		m.j.r = m
	}
	m.out, m.fn = out, fn
	m.j.dispatch(n, w)
	m.out, m.fn = nil, nil
	p.Put(m)
	return out
}

// Map applies fn to every item across the pool, returning results in input
// order.
func Map[T, R any](items []T, fn func(T) R) []R {
	return MapIndex(len(items), func(i int) R { return fn(items[i]) })
}

// FilterMap applies fn to every item and keeps, in input order, the results
// for which fn returned ok. It is the shape of a grid sweep that skips
// infeasible points: the kept subsequence is identical to the serial loop's.
func FilterMap[T, R any](items []T, fn func(T) (R, bool)) []R {
	type slot struct {
		v  R
		ok bool
	}
	slots := MapIndex(len(items), func(i int) slot {
		v, ok := fn(items[i])
		return slot{v, ok}
	})
	out := make([]R, 0, len(items))
	for _, s := range slots {
		if s.ok {
			out = append(out, s.v)
		}
	}
	return out
}

// MapChunks splits [0, n) into fixed-length chunks — ceil(n/chunk) of them,
// the last possibly short — and computes fn(ci, lo, hi) for each across the
// pool, returning the results in chunk order. Unlike ChunkIndex, the chunk
// boundaries depend only on n and chunk, never on the pool size, so banded
// kernels (e.g. row-band feature detection) whose per-chunk results are
// concatenated produce identical merged output at every pool size.
func MapChunks[R any](n, chunk int, fn func(ci, lo, hi int) R) []R {
	if n <= 0 {
		return nil
	}
	if chunk < 1 {
		chunk = 1
	}
	nc := (n + chunk - 1) / chunk
	return MapIndex(nc, func(ci int) R {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(ci, lo, hi)
	})
}

// ChunkIndex splits [0, n) into one contiguous chunk per worker and calls
// fn(lo, hi) for each. Use it for grid sweeps whose per-index work is too
// cheap to schedule individually; fn chunks must write only to their own
// index range.
func ChunkIndex(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := workers(n)
	if w == 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	nc := (n + chunk - 1) / chunk
	c, _ := chunkPool.Get().(*chunkJob)
	if c == nil {
		c = &chunkJob{}
		c.j.r = c
	}
	c.n, c.chunk, c.fn = n, chunk, fn
	c.j.dispatch(nc, w)
	c.fn = nil
	chunkPool.Put(c)
}

// chunkJob is the pooled arena for one ChunkIndex fan-out.
type chunkJob struct {
	n, chunk int
	fn       func(lo, hi int)
	j        job
}

var chunkPool arenaPool

func (c *chunkJob) item(ci int) {
	lo := ci * c.chunk
	hi := lo + c.chunk
	if hi > c.n {
		hi = c.n
	}
	c.fn(lo, hi)
}

// Do runs the thunks concurrently (bounded by the pool) and returns when all
// have finished. Each thunk must write only to its own destinations.
func Do(fns ...func()) {
	MapIndex(len(fns), func(i int) struct{} {
		fns[i]()
		return struct{}{}
	})
}
