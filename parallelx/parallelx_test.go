package parallelx

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// withPool runs the body at a forced pool size, restoring the previous one.
func withPool(t *testing.T, n int, body func()) {
	t.Helper()
	prev := SetPoolSize(n)
	defer SetPoolSize(prev)
	body()
}

func TestSetPoolSizeClamps(t *testing.T) {
	prev := SetPoolSize(4)
	defer SetPoolSize(prev)
	if got := PoolSize(); got != 4 {
		t.Fatalf("PoolSize = %d, want 4", got)
	}
	SetPoolSize(0)
	if got := PoolSize(); got != 1 {
		t.Fatalf("PoolSize after SetPoolSize(0) = %d, want 1", got)
	}
	SetPoolSize(-3)
	if got := PoolSize(); got != 1 {
		t.Fatalf("PoolSize after SetPoolSize(-3) = %d, want 1", got)
	}
}

// TestMapIndexOrdered: results land in input order even when completion
// order is scrambled by per-item jitter.
func TestMapIndexOrdered(t *testing.T) {
	for _, pool := range []int{1, 2, 8, 32} {
		withPool(t, pool, func() {
			rng := rand.New(rand.NewSource(1))
			delays := make([]time.Duration, 100)
			for i := range delays {
				delays[i] = time.Duration(rng.Intn(100)) * time.Microsecond
			}
			got := MapIndex(len(delays), func(i int) int {
				time.Sleep(delays[i])
				return i * i
			})
			for i, v := range got {
				if v != i*i {
					t.Fatalf("pool=%d: out[%d] = %d, want %d", pool, i, v, i*i)
				}
			}
		})
	}
}

func TestMapIndexEachIndexOnce(t *testing.T) {
	withPool(t, 8, func() {
		var calls [512]atomic.Int64
		MapIndex(len(calls), func(i int) struct{} {
			calls[i].Add(1)
			return struct{}{}
		})
		for i := range calls {
			if n := calls[i].Load(); n != 1 {
				t.Fatalf("index %d evaluated %d times", i, n)
			}
		}
	})
}

func TestMapEmptyAndNil(t *testing.T) {
	if got := Map(nil, func(int) int { return 0 }); got != nil {
		t.Fatalf("Map(nil) = %v, want nil", got)
	}
	if got := MapIndex(0, func(int) int { return 0 }); got != nil {
		t.Fatalf("MapIndex(0) = %v, want nil", got)
	}
}

// TestMapMatchesSerial: parallel output is identical to the PoolSize=1 path.
func TestMapMatchesSerial(t *testing.T) {
	items := make([]float64, 1000)
	for i := range items {
		items[i] = float64(i) * 0.37
	}
	fn := func(x float64) float64 { return x*x - 3*x + 1 }
	var serial []float64
	withPool(t, 1, func() { serial = Map(items, fn) })
	for _, pool := range []int{2, 4, 16} {
		withPool(t, pool, func() {
			if got := Map(items, fn); !reflect.DeepEqual(got, serial) {
				t.Fatalf("pool=%d output differs from serial", pool)
			}
		})
	}
}

func TestFilterMapKeepsOrder(t *testing.T) {
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	fn := func(i int) (int, bool) { return i * 10, i%3 != 0 }
	var serial []int
	withPool(t, 1, func() { serial = FilterMap(items, fn) })
	if len(serial) == 0 || serial[0] != 10 {
		t.Fatalf("unexpected serial head: %v", serial[:3])
	}
	for _, pool := range []int{2, 8} {
		withPool(t, pool, func() {
			if got := FilterMap(items, fn); !reflect.DeepEqual(got, serial) {
				t.Fatalf("pool=%d FilterMap differs from serial", pool)
			}
		})
	}
}

// TestMapChunksFixedBoundaries: chunk boundaries depend only on (n, chunk),
// so the concatenated results are identical at every pool size — the banded
// determinism the SLAM detector relies on.
func TestMapChunksFixedBoundaries(t *testing.T) {
	type span struct{ ci, lo, hi int }
	collect := func() []span {
		return MapChunks(103, 16, func(ci, lo, hi int) span { return span{ci, lo, hi} })
	}
	var serial []span
	withPool(t, 1, func() { serial = collect() })
	if len(serial) != 7 {
		t.Fatalf("103/16 gave %d chunks, want 7", len(serial))
	}
	if last := serial[6]; last.lo != 96 || last.hi != 103 {
		t.Fatalf("tail chunk = %+v, want [96,103)", last)
	}
	covered := 0
	for i, s := range serial {
		if s.ci != i || s.lo != i*16 {
			t.Fatalf("chunk %d = %+v, boundaries not fixed", i, s)
		}
		covered += s.hi - s.lo
	}
	if covered != 103 {
		t.Fatalf("chunks cover %d of 103 indices", covered)
	}
	for _, pool := range []int{2, 5, 32} {
		withPool(t, pool, func() {
			if got := collect(); !reflect.DeepEqual(got, serial) {
				t.Fatalf("pool=%d MapChunks differs from serial", pool)
			}
		})
	}
}

func TestMapChunksDegenerate(t *testing.T) {
	if got := MapChunks(0, 8, func(ci, lo, hi int) int { return 1 }); got != nil {
		t.Fatalf("MapChunks(0) = %v, want nil", got)
	}
	// chunk < 1 clamps to 1.
	got := MapChunks(3, 0, func(ci, lo, hi int) int { return hi - lo })
	if len(got) != 3 || got[0] != 1 {
		t.Fatalf("MapChunks(3, 0) = %v, want three 1-wide chunks", got)
	}
}

func TestChunkIndexCoversAllOnce(t *testing.T) {
	for _, pool := range []int{1, 3, 7, 64} {
		withPool(t, pool, func() {
			var hits [101]atomic.Int64
			ChunkIndex(len(hits), func(lo, hi int) {
				if lo < 0 || hi > len(hits) || lo >= hi {
					t.Errorf("bad chunk [%d,%d)", lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if n := hits[i].Load(); n != 1 {
					t.Fatalf("pool=%d: index %d covered %d times", pool, i, n)
				}
			}
		})
	}
}

func TestDoRunsAll(t *testing.T) {
	withPool(t, 4, func() {
		var a, b, c int
		Do(
			func() { a = 1 },
			func() { b = 2 },
			func() { c = 3 },
		)
		if a != 1 || b != 2 || c != 3 {
			t.Fatalf("Do skipped a thunk: %d %d %d", a, b, c)
		}
	})
	Do() // no-op
}

// TestNestedMap: a Map inside a Map must not deadlock (each call owns its
// workers; there is no shared queue).
func TestNestedMap(t *testing.T) {
	withPool(t, 4, func() {
		got := MapIndex(8, func(i int) int {
			inner := MapIndex(8, func(j int) int { return i*8 + j })
			s := 0
			for _, v := range inner {
				s += v
			}
			return s
		})
		for i, v := range got {
			want := 0
			for j := 0; j < 8; j++ {
				want += i*8 + j
			}
			if v != want {
				t.Fatalf("nested out[%d] = %d, want %d", i, v, want)
			}
		}
	})
}
