// Package mapping is an occupancy-grid substrate for the outer-loop
// applications Table 1 lists (LiDAR mapping, sonar mapping, obstacle
// detection): a sparse voxel grid in the Octomap tradition, fed by SLAM map
// points or range sensors, with the inflation and collision queries the
// planner (dronedse/planner) consumes.
package mapping

import (
	"math"

	"dronedse/mathx"
)

// Key addresses one voxel.
type Key [3]int

// Grid is a sparse log-odds occupancy grid.
type Grid struct {
	// ResM is the voxel edge length in meters.
	ResM float64
	// occupancy thresholds in log-odds steps.
	vox map[Key]int8
}

// Log-odds update constants (Octomap-style clamped counters).
const (
	hitInc     = 3
	missDec    = -1
	occupiedAt = 2
	clampLo    = -8
	clampHi    = 16
)

// NewGrid builds an empty grid at the given resolution.
func NewGrid(resM float64) *Grid {
	if resM <= 0 {
		resM = 0.25
	}
	return &Grid{ResM: resM, vox: map[Key]int8{}}
}

// KeyOf returns the voxel containing p.
func (g *Grid) KeyOf(p mathx.Vec3) Key {
	return Key{
		int(math.Floor(p.X / g.ResM)),
		int(math.Floor(p.Y / g.ResM)),
		int(math.Floor(p.Z / g.ResM)),
	}
}

// Center returns a voxel's center point.
func (g *Grid) Center(k Key) mathx.Vec3 {
	return mathx.V3(
		(float64(k[0])+0.5)*g.ResM,
		(float64(k[1])+0.5)*g.ResM,
		(float64(k[2])+0.5)*g.ResM)
}

// bump applies a clamped log-odds step.
func (g *Grid) bump(k Key, delta int8) {
	v := int(g.vox[k]) + int(delta)
	if v < clampLo {
		v = clampLo
	}
	if v > clampHi {
		v = clampHi
	}
	if v == 0 {
		delete(g.vox, k)
		return
	}
	g.vox[k] = int8(v)
}

// InsertPoint marks the voxel containing p as observed-occupied.
func (g *Grid) InsertPoint(p mathx.Vec3) { g.bump(g.KeyOf(p), hitInc) }

// InsertRay integrates one range measurement: free space along the ray from
// origin to hit, occupied at the hit (the LiDAR/sonar mapping update).
func (g *Grid) InsertRay(origin, hit mathx.Vec3) {
	for _, k := range g.Raycast(origin, hit) {
		g.bump(k, missDec)
	}
	g.bump(g.KeyOf(hit), hitInc)
}

// Raycast returns the voxels traversed from a to b, excluding b's voxel
// (Amanatides-Woo DDA).
func (g *Grid) Raycast(a, b mathx.Vec3) []Key {
	var out []Key
	cur := g.KeyOf(a)
	end := g.KeyOf(b)
	if cur == end {
		return out
	}
	d := b.Sub(a)
	step := Key{sign(d.X), sign(d.Y), sign(d.Z)}
	// Parametric distance to the next voxel boundary per axis.
	next := [3]float64{}
	delta := [3]float64{}
	pos := [3]float64{a.X, a.Y, a.Z}
	dir := [3]float64{d.X, d.Y, d.Z}
	for i := 0; i < 3; i++ {
		if dir[i] == 0 {
			next[i] = math.Inf(1)
			delta[i] = math.Inf(1)
			continue
		}
		var boundary float64
		if step[i] > 0 {
			boundary = (float64(cur[i]) + 1) * g.ResM
		} else {
			boundary = float64(cur[i]) * g.ResM
		}
		next[i] = (boundary - pos[i]) / dir[i]
		delta[i] = g.ResM / math.Abs(dir[i])
	}
	for steps := 0; steps < 1<<16; steps++ {
		axis := 0
		if next[1] < next[axis] {
			axis = 1
		}
		if next[2] < next[axis] {
			axis = 2
		}
		if next[axis] > 1 {
			return out // b reached within this voxel
		}
		cur[axis] += step[axis]
		next[axis] += delta[axis]
		if cur == end {
			return out
		}
		out = append(out, cur)
	}
	return out
}

func sign(v float64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Occupied reports whether the voxel containing p is occupied.
func (g *Grid) Occupied(p mathx.Vec3) bool { return g.OccupiedKey(g.KeyOf(p)) }

// OccupiedKey reports whether voxel k is occupied.
func (g *Grid) OccupiedKey(k Key) bool { return g.vox[k] >= occupiedAt }

// OccupiedCount returns the number of occupied voxels.
func (g *Grid) OccupiedCount() int {
	n := 0
	for _, v := range g.vox {
		if v >= occupiedAt {
			n++
		}
	}
	return n
}

// Keys returns the occupied voxel keys (order unspecified).
func (g *Grid) Keys() []Key {
	out := make([]Key, 0, len(g.vox))
	for k, v := range g.vox {
		if v >= occupiedAt {
			out = append(out, k)
		}
	}
	return out
}

// FromPoints builds a grid from a landmark cloud (the SLAM map points of
// dronedse/slam become the obstacle map).
func FromPoints(points []mathx.Vec3, resM float64) *Grid {
	g := NewGrid(resM)
	for _, p := range points {
		g.InsertPoint(p)
	}
	return g
}

// Inflate returns a new grid in which every occupied voxel is dilated by
// radiusM — the configuration-space expansion that keeps the planned path a
// drone-radius away from obstacles.
func (g *Grid) Inflate(radiusM float64) *Grid {
	out := NewGrid(g.ResM)
	r := int(math.Ceil(radiusM / g.ResM))
	for k, v := range g.vox {
		if v < occupiedAt {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			for dy := -r; dy <= r; dy++ {
				for dz := -r; dz <= r; dz++ {
					if dx*dx+dy*dy+dz*dz > r*r {
						continue
					}
					out.vox[Key{k[0] + dx, k[1] + dy, k[2] + dz}] = clampHi
				}
			}
		}
	}
	return out
}

// SegmentCollides samples the segment a-b at half-resolution steps and
// reports whether any sample lands in an occupied voxel.
func (g *Grid) SegmentCollides(a, b mathx.Vec3) bool {
	d := b.Sub(a)
	n := int(d.Norm()/(g.ResM/2)) + 1
	for i := 0; i <= n; i++ {
		t := float64(i) / float64(n)
		if g.Occupied(a.Add(d.Scale(t))) {
			return true
		}
	}
	return false
}
