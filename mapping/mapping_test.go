package mapping

import (
	"math/rand"
	"testing"

	"dronedse/mathx"
)

func TestKeyCenterRoundTrip(t *testing.T) {
	g := NewGrid(0.5)
	p := mathx.V3(1.3, -2.7, 0.2)
	k := g.KeyOf(p)
	c := g.Center(k)
	// The center must be in the same voxel as the original point.
	if g.KeyOf(c) != k {
		t.Errorf("center %v left the voxel of %v", c, p)
	}
}

func TestInsertAndOccupied(t *testing.T) {
	g := NewGrid(0.25)
	p := mathx.V3(1, 2, 3)
	if g.Occupied(p) {
		t.Error("empty grid occupied")
	}
	g.InsertPoint(p)
	if !g.Occupied(p) {
		t.Error("inserted point not occupied")
	}
	if g.OccupiedCount() != 1 {
		t.Errorf("occupied count = %d", g.OccupiedCount())
	}
	// Nearby but different voxel stays free.
	if g.Occupied(mathx.V3(1, 2, 3.5)) {
		t.Error("neighboring voxel occupied")
	}
}

func TestZeroResolutionDefaults(t *testing.T) {
	g := NewGrid(0)
	if g.ResM <= 0 {
		t.Error("degenerate resolution not defaulted")
	}
}

func TestRaycastStraightLine(t *testing.T) {
	g := NewGrid(1)
	keys := g.Raycast(mathx.V3(0.5, 0.5, 0.5), mathx.V3(5.5, 0.5, 0.5))
	if len(keys) != 4 { // voxels 1..4 (0 excluded as origin, 5 as hit)
		t.Fatalf("traversed %d voxels, want 4: %v", len(keys), keys)
	}
	for i, k := range keys {
		if k != (Key{i + 1, 0, 0}) {
			t.Errorf("voxel %d = %v", i, k)
		}
	}
}

func TestRaycastSameVoxel(t *testing.T) {
	g := NewGrid(1)
	if keys := g.Raycast(mathx.V3(0.1, 0.1, 0.1), mathx.V3(0.9, 0.9, 0.9)); len(keys) != 0 {
		t.Errorf("same-voxel ray traversed %v", keys)
	}
}

func TestRaycastDiagonalConnectivity(t *testing.T) {
	g := NewGrid(1)
	a := mathx.V3(0.5, 0.5, 0.5)
	b := mathx.V3(4.5, 3.5, 2.5)
	keys := g.Raycast(a, b)
	// The DDA must step one axis at a time and stay between endpoints.
	prev := g.KeyOf(a)
	for _, k := range keys {
		d := abs3(k[0]-prev[0]) + abs3(k[1]-prev[1]) + abs3(k[2]-prev[2])
		if d != 1 {
			t.Fatalf("DDA jumped from %v to %v", prev, k)
		}
		prev = k
	}
}

func abs3(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestInsertRayClearsFreeSpace(t *testing.T) {
	g := NewGrid(1)
	hit := mathx.V3(5.5, 0.5, 0.5)
	// A previously (weakly) marked voxel along the ray is cleared by
	// repeated free-space evidence.
	mid := mathx.V3(2.5, 0.5, 0.5)
	g.InsertPoint(mid)
	if !g.Occupied(mid) {
		t.Fatal("setup failed")
	}
	for i := 0; i < 5; i++ {
		g.InsertRay(mathx.V3(0.5, 0.5, 0.5), hit)
	}
	if g.Occupied(mid) {
		t.Error("free-space evidence did not clear a transient obstacle")
	}
	if !g.Occupied(hit) {
		t.Error("ray hit not occupied")
	}
}

func TestLogOddsClamping(t *testing.T) {
	g := NewGrid(1)
	p := mathx.V3(0.5, 0.5, 0.5)
	for i := 0; i < 100; i++ {
		g.InsertPoint(p)
	}
	// Heavily confirmed voxel still clears after bounded counter-evidence
	// (the clamp guarantees recency matters).
	for i := 0; i < 30; i++ {
		g.bump(g.KeyOf(p), missDec)
	}
	if g.Occupied(p) {
		t.Error("clamped voxel never cleared")
	}
}

func TestFromPoints(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var pts []mathx.Vec3
	for i := 0; i < 500; i++ {
		pts = append(pts, mathx.V3(r.Float64()*10, r.Float64()*10, r.Float64()*3))
	}
	g := FromPoints(pts, 0.5)
	if g.OccupiedCount() == 0 {
		t.Fatal("no occupancy from a 500-point cloud")
	}
	for _, p := range pts[:20] {
		if !g.Occupied(p) {
			t.Errorf("source point %v not occupied", p)
		}
	}
}

func TestInflate(t *testing.T) {
	g := NewGrid(0.5)
	p := mathx.V3(2.25, 2.25, 2.25)
	g.InsertPoint(p)
	inf := g.Inflate(1.0)
	if !inf.Occupied(p) {
		t.Error("inflation lost the original obstacle")
	}
	if !inf.Occupied(p.Add(mathx.V3(0.9, 0, 0))) {
		t.Error("inflation did not cover the drone radius")
	}
	if inf.Occupied(p.Add(mathx.V3(2.5, 0, 0))) {
		t.Error("inflation leaked far beyond the radius")
	}
	if inf.OccupiedCount() <= g.OccupiedCount() {
		t.Error("inflation added no voxels")
	}
}

func TestSegmentCollides(t *testing.T) {
	g := NewGrid(0.5)
	// A wall at x=5 spanning y,z in [0, 4].
	for y := 0.25; y < 4; y += 0.5 {
		for z := 0.25; z < 4; z += 0.5 {
			g.InsertPoint(mathx.V3(5.25, y, z))
		}
	}
	if !g.SegmentCollides(mathx.V3(0, 2, 2), mathx.V3(10, 2, 2)) {
		t.Error("segment through the wall reported clear")
	}
	if g.SegmentCollides(mathx.V3(0, 2, 2), mathx.V3(4, 2, 2)) {
		t.Error("segment short of the wall reported blocked")
	}
	if g.SegmentCollides(mathx.V3(0, 2, 6), mathx.V3(10, 2, 6)) {
		t.Error("segment above the wall reported blocked")
	}
}
