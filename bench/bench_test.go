package bench

import (
	"strings"
	"testing"

	"dronedse/components"
	"dronedse/core"
	"dronedse/mathx"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"three", "4"}},
		Notes:   []string{"a note"},
	}
	s := tb.Render()
	for _, want := range []string{"== demo ==", "long-column", "three", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestRunFigure7(t *testing.T) {
	fg, err := RunFigure7(components.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(fg.Fits) != 6 {
		t.Fatalf("fits for %d configurations, want 6", len(fg.Fits))
	}
	for cells, v := range fg.Fits {
		if !mathx.WithinRel(v.Slope, v.PaperSlope, 0.15) {
			t.Errorf("%dS slope %v vs paper %v", cells, v.Slope, v.PaperSlope)
		}
	}
	if !strings.Contains(fg.Table().Render(), "6S1P") {
		t.Error("render missing configurations")
	}
}

func TestRunFigure8(t *testing.T) {
	fg, err := RunFigure8(components.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.WithinRel(fg.ESCLong.Slope, fg.ESCLong.PaperSlope, 0.2) {
		t.Errorf("long-flight ESC slope %v vs paper %v", fg.ESCLong.Slope, fg.ESCLong.PaperSlope)
	}
	if !mathx.WithinRel(fg.FrameHighSlope, fg.PaperFrameSlope, 0.2) {
		t.Errorf("frame slope %v vs paper %v", fg.FrameHighSlope, fg.PaperFrameSlope)
	}
	fg.Table().Render()
}

func TestRunFigure9(t *testing.T) {
	fg := RunFigure9(core.DefaultParams())
	if len(fg.Lines) != 5 {
		t.Fatalf("wheelbases = %d, want 5", len(fg.Lines))
	}
	// Feasibility and monotonicity already covered by core tests; here
	// check the harness exposes all lines and the min-weight annotations.
	for wb, min := range fg.MinBasicWeight {
		if min <= 0 {
			t.Errorf("wb %v: min feasible weight %v", wb, min)
		}
	}
	if !strings.Contains(fg.Table().Render(), "Figure 9") {
		t.Error("render broken")
	}
}

func TestRunFigure10(t *testing.T) {
	p := core.DefaultParams()
	for _, wb := range []float64{100, 450, 800} {
		fg := RunFigure10(wb, p)
		if len(fg.Sweeps[3]) == 0 {
			t.Fatalf("wb %v: empty 3S sweep", wb)
		}
		if fg.BestFlight <= 0 {
			t.Errorf("wb %v: no best configuration", wb)
		}
		if fg.PaperBestMin == 0 {
			t.Errorf("wb %v: missing paper annotation", wb)
		}
		if wb != 100 && len(fg.Validation) == 0 {
			t.Errorf("wb %v: no commercial validation points", wb)
		}
		fg.Table().Render()
	}
}

func TestRunFigure11(t *testing.T) {
	fg := RunFigure11()
	if len(fg.Drones) != 6 {
		t.Fatalf("drones = %d, want 6", len(fg.Drones))
	}
	if !strings.Contains(fg.Table().Render(), "SKYDIO 2") {
		t.Error("render missing drones")
	}
}

func TestFigure14AndTable4(t *testing.T) {
	if !strings.Contains(Figure14().Render(), "Frame") {
		t.Error("Figure 14 render broken")
	}
	if !strings.Contains(Table4Render().Render(), "Navio2") {
		t.Error("Table 4 render broken")
	}
}

func TestTable2a(t *testing.T) {
	s := Table2aRender().Render()
	for _, want := range []string{"Accelerometer", "GPS", "Barometer"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2a missing %s", want)
		}
	}
}

// TestTable2b checks the measured response times land in the paper's
// time-scale separation: thrust ~tens of ms, attitude ~100 ms, position ~1 s.
func TestTable2b(t *testing.T) {
	tb := RunTable2b()
	if tb.ThrustResponseS < 0.02 || tb.ThrustResponseS > 0.5 {
		t.Errorf("thrust response = %v s, paper band ~50 ms", tb.ThrustResponseS)
	}
	if tb.AttitudeResponseS < 0.04 || tb.AttitudeResponseS > 0.8 {
		t.Errorf("attitude response = %v s, paper band ~100 ms", tb.AttitudeResponseS)
	}
	if tb.PositionResponseS < 0.5 || tb.PositionResponseS > 6 {
		t.Errorf("position response = %v s, paper band ~1 s", tb.PositionResponseS)
	}
	// Separation ordering.
	if !(tb.ThrustResponseS < tb.AttitudeResponseS && tb.AttitudeResponseS < tb.PositionResponseS) {
		t.Errorf("time-scale separation violated: %v / %v / %v",
			tb.ThrustResponseS, tb.AttitudeResponseS, tb.PositionResponseS)
	}
	tb.Table().Render()
}

// TestInnerLoopAblation checks the §2.1.3-D claim end to end: past ~50 Hz,
// more rate buys (almost) nothing.
func TestInnerLoopAblation(t *testing.T) {
	a := RunInnerLoopAblation()
	byRate := map[float64]float64{}
	for i, hz := range a.RateHz {
		byRate[hz] = a.ResponseS[i]
	}
	if byRate[1000] < 0 || byRate[2000] < 0 || byRate[200] < 0 {
		t.Fatal("reference rates failed to settle")
	}
	if d := byRate[2000] - byRate[1000]; d > 0.15*byRate[1000] || d < -0.15*byRate[1000] {
		t.Errorf("1->2 kHz changed response by %v s: should be physics-limited", d)
	}
	if byRate[50] > 0 && byRate[50] > byRate[1000]*1.35 {
		t.Errorf("50 Hz response %v vs 1 kHz %v: paper says 50-500 Hz suffices", byRate[50], byRate[1000])
	}
	// The very low end must be clearly worse or unstable.
	if byRate[6] > 0 && byRate[6] < byRate[1000]*1.5 {
		t.Errorf("6 Hz loop response %v suspiciously good", byRate[6])
	}
	a.Table().Render()
}

// TestFigure16 validates both traces against the paper's measurements.
func TestFigure16(t *testing.T) {
	fg, err := RunFigure16(3)
	if err != nil {
		t.Fatal(err)
	}
	if !fg.FlightOK {
		t.Fatal("mission did not complete")
	}
	means := map[string]float64{}
	for _, ph := range fg.RPiPhases {
		means[ph.Name] = fg.RPiTrace.MeanPower(ph.FromS, ph.ToS)
	}
	if !mathx.Within(means["autopilot"], 3.39, 0.05) {
		t.Errorf("autopilot phase = %v W, paper 3.39", means["autopilot"])
	}
	if !mathx.Within(means["autopilot+SLAM(idle)"], 4.05, 0.05) {
		t.Errorf("SLAM-idle phase = %v W, paper 4.05", means["autopilot+SLAM(idle)"])
	}
	flying := means["autopilot+SLAM(flying)"]
	if flying < 4.3 || flying > 4.9 {
		t.Errorf("SLAM-flying phase = %v W, paper avg 4.56", flying)
	}
	if pk := fg.RPiTrace.PeakPower(140, 260); pk < 4.8 || pk > 5.3 {
		t.Errorf("SLAM-flying peak = %v W, paper ~5", pk)
	}
	// Whole drone: ~130 W scale.
	if fg.DroneAvgW < 85 || fg.DroneAvgW > 170 {
		t.Errorf("whole-drone average = %.0f W, paper 130 W", fg.DroneAvgW)
	}
	if fg.DronePeakW <= fg.DroneAvgW {
		t.Error("maneuvering peaks must exceed the average")
	}
	fg.Table().Render()
}

// TestFigure15Bench checks the harness-level interference numbers.
func TestFigure15Bench(t *testing.T) {
	fg := RunFigure15(1)
	if r := fg.TLBRatio(); r < 3 || r > 6.5 {
		t.Errorf("TLB ratio = %v, paper 4.5", r)
	}
	if d := fg.IPCDrop(); d < 1.4 || d > 2.2 {
		t.Errorf("IPC drop = %v, paper 1.7", d)
	}
	fg.Table().Render()
}

// TestFigure17AndTable5 runs the offload study on a truncated suite (the
// full suite runs under the platform tests and the repo-root benches).
func TestFigure17AndTable5(t *testing.T) {
	fg, err := RunFigure17(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fg.Results) != 3 {
		t.Fatalf("results = %d", len(fg.Results))
	}
	if fg.GMeanTX2 < 1.8 || fg.GMeanTX2 > 2.6 {
		t.Errorf("TX2 GMean = %v, paper 2.16", fg.GMeanTX2)
	}
	if fg.GMeanFPGA < 26 || fg.GMeanFPGA > 36 {
		t.Errorf("FPGA GMean = %v, paper 30.7", fg.GMeanFPGA)
	}
	for _, r := range fg.Results {
		if r.ATE > 0.25 {
			t.Errorf("%s: ATE %v — SLAM key metrics not confirmed", r.Name, r.ATE)
		}
	}
	t5, err := RunTable5(fg.Stats(), core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 4 {
		t.Fatalf("Table 5 rows = %d", len(t5.Rows))
	}
	t5.Table().Render()
	fg.Table().Render()
}
