package bench

import (
	"fmt"

	"dronedse/components"
	"dronedse/core"
	"dronedse/parallelx"
)

// Figure10 regenerates the computation-footprint sweeps for the three
// studied wheelbases: total power vs weight per battery configuration
// (panels a-c) and the compute share of total power for the 3 W and 20 W
// chips at hovering and maneuvering loads (panels d-f), plus the
// best-configuration flight time annotation and the commercial validation
// points.
type Figure10 struct {
	WheelbaseMM float64
	// Sweeps[cells] is the battery sweep for that configuration.
	Sweeps map[int][]core.SweepPoint
	// Shares are the 20 W and 3 W compute-share series (panels d-f),
	// sampled along the 3S sweep.
	Shares20W []core.SweepPoint
	Shares3W  []core.SweepPoint
	// Best is the longest-hovering configuration across cells/capacity.
	Best         core.Design
	BestFlight   float64
	PaperBestMin float64
	// Validation points: commercial drones of this class with their
	// spec-derived hover power.
	Validation []components.CommercialDrone
}

// paperBestMinutes are the Figure 10 annotations.
var paperBestMinutes = map[float64]float64{100: 23, 450: 19, 800: 22}

// RunFigure10 sweeps one wheelbase class.
func RunFigure10(wheelbaseMM float64, p core.Params) Figure10 {
	out := Figure10{
		WheelbaseMM:  wheelbaseMM,
		Sweeps:       map[int][]core.SweepPoint{},
		PaperBestMin: paperBestMinutes[wheelbaseMM],
	}
	mk := func(cells int, tier components.ComputeTier) core.Spec {
		return core.Spec{
			WheelbaseMM: wheelbaseMM, Cells: cells, CapacityMah: 1000, TWR: 2,
			Compute: tier, ESCClass: components.LongFlight,
		}
	}
	// Panels a-c use the 1S/3S/6S battery configurations like the legend.
	// The six independent series (three panel sweeps, two share series,
	// the best-config search) run concurrently; each writes its own field.
	var sweep1, sweep3, sweep6 []core.SweepPoint
	parallelx.Do(
		func() { sweep1 = core.SweepCapacity(mk(1, components.BasicComputeTier), p, 1000, 8000, 250) },
		func() { sweep3 = core.SweepCapacity(mk(3, components.BasicComputeTier), p, 1000, 8000, 250) },
		func() { sweep6 = core.SweepCapacity(mk(6, components.BasicComputeTier), p, 1000, 8000, 250) },
		func() { out.Shares20W = core.SweepCapacity(mk(3, components.AdvancedComputeTier), p, 1000, 8000, 250) },
		func() { out.Shares3W = core.SweepCapacity(mk(3, components.BasicComputeTier), p, 1000, 8000, 250) },
		func() {
			if best, ok := core.BestConfig(mk(3, components.BasicComputeTier), p, []int{1, 2, 3, 4, 5, 6}, 1000, 8000, 250); ok {
				out.Best = best
				out.BestFlight = best.HoverFlightTimeMin()
			}
		},
	)
	out.Sweeps[1], out.Sweeps[3], out.Sweeps[6] = sweep1, sweep3, sweep6
	for _, cd := range components.CommercialDrones() {
		if cd.WheelbaseClassMM == wheelbaseMM {
			out.Validation = append(out.Validation, cd)
		}
	}
	return out
}

// Table renders the sweep summary.
func (fg Figure10) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Figure 10 @ %.0f mm: power vs weight sweep and compute footprint", fg.WheelbaseMM),
		Columns: []string{"series", "weight(g) span", "hover power(W) span",
			"20W share hover(%)", "20W share maneuver(%)", "3W share hover(%)"},
		Notes: []string{
			fmt.Sprintf("best config: %dS %.0f mAh, %.0f g, %.1f min hovering (paper annotates %.0f min)",
				fg.Best.Spec.Cells, fg.Best.Spec.CapacityMah, fg.Best.TotalG, fg.BestFlight, fg.PaperBestMin),
		},
	}
	for _, cells := range []int{1, 3, 6} {
		pts := fg.Sweeps[cells]
		if len(pts) == 0 {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%dS", cells), "infeasible", "-", "-", "-", "-"})
			continue
		}
		lo, hi := pts[0], pts[len(pts)-1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dS", cells),
			fmt.Sprintf("%.0f-%.0f", lo.TotalWeightG, hi.TotalWeightG),
			fmt.Sprintf("%.0f-%.0f", lo.HoverPowerW, hi.HoverPowerW),
			"-", "-", "-",
		})
	}
	if len(fg.Shares20W) > 0 {
		lo, hi := fg.Shares20W[0], fg.Shares20W[len(fg.Shares20W)-1]
		t.Rows = append(t.Rows, []string{
			"20W chip", fmt.Sprintf("%.0f-%.0f", lo.TotalWeightG, hi.TotalWeightG), "-",
			fmt.Sprintf("%.1f→%.1f", lo.ComputeShareHoverPct, hi.ComputeShareHoverPct),
			fmt.Sprintf("%.1f→%.1f", lo.ComputeShareManeuverPct, hi.ComputeShareManeuverPct), "-",
		})
	}
	if len(fg.Shares3W) > 0 {
		lo, hi := fg.Shares3W[0], fg.Shares3W[len(fg.Shares3W)-1]
		t.Rows = append(t.Rows, []string{
			"3W chip", fmt.Sprintf("%.0f-%.0f", lo.TotalWeightG, hi.TotalWeightG), "-", "-", "-",
			fmt.Sprintf("%.1f→%.1f", lo.ComputeShareHoverPct, hi.ComputeShareHoverPct),
		})
	}
	for _, v := range fg.Validation {
		t.Notes = append(t.Notes, fmt.Sprintf("validation: %s %.0f g, spec-derived hover %.0f W",
			v.Name, v.TakeoffWeightG, v.HoverPowerW()))
	}
	return t
}

// Figure11 regenerates the small-commercial-drone study.
type Figure11 struct {
	Drones []components.CommercialDrone
}

// RunFigure11 loads the six Figure 11 products.
func RunFigure11() Figure11 { return Figure11{Drones: components.Figure11Drones()} }

// Table renders the figure.
func (fg Figure11) Table() Table {
	t := Table{
		Title: "Figure 11: commercial small drones — power, heavy-compute share, flight time",
		Columns: []string{"drone", "hover(W)", "maneuver(W)", "base compute(%)",
			"heavy compute(%)", "flight(min)"},
		Notes: []string{"paper: hovering compute 2-7%; heavy computation reaches 10-20% → up to +5 min potential"},
	}
	for _, d := range fg.Drones {
		t.Rows = append(t.Rows, []string{
			d.Name, f2(d.HoverPowerW()), f2(d.ManeuverPowerW()),
			f2(d.BaseComputeSharePct()), f2(d.HeavyComputeSharePct()),
			f2(d.RatedFlightMin),
		})
	}
	return t
}

// Figure14 renders the open-source drone's weight breakdown.
func Figure14() Table {
	t := Table{
		Title:   "Figure 14: open-source drone weight breakdown",
		Columns: []string{"component", "weight(g)", "share(%)"},
	}
	total := components.OurDroneTotalWeightG()
	for _, it := range components.OurDroneBreakdown() {
		t.Rows = append(t.Rows, []string{it.Name, f(it.WeightG), f2(100 * it.WeightG / total)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("total %.0f g; frame+battery+motors+ESC dominate (paper: 25/23/21/10%%)", total))
	return t
}

// Table4Render renders the flight-controller/compute/sensor inventory.
func Table4Render() Table {
	t := Table{
		Title:   "Table 4: flight controllers, compute boards, external sensors",
		Columns: []string{"name", "class", "weight(g)", "power(W)", "self-powered"},
	}
	classNames := map[components.BoardClass]string{
		components.BasicController:    "basic FC",
		components.ImprovedController: "improved FC/compute",
		components.FPVCamera:          "FPV camera",
		components.LiDARUnit:          "LiDAR",
	}
	for _, b := range components.Table4() {
		sp := "no"
		if b.SelfPowered {
			sp = "yes"
		}
		t.Rows = append(t.Rows, []string{b.Name, classNames[b.Class], f(b.WeightG), f(b.PowerW), sp})
	}
	return t
}
