package bench

import (
	"fmt"
	"math"

	"dronedse/autopilot"
	"dronedse/control"
	"dronedse/mathx"
	"dronedse/platform"
	"dronedse/scenario"
	"dronedse/sensors"
	"dronedse/sim"
	"dronedse/trace"
)

// Table2aRender renders the sensor data-frequency table.
func Table2aRender() Table {
	t := Table{
		Title:   "Table 2a: on-board sensor data frequencies",
		Columns: []string{"sensor", "frequency (Hz)"},
	}
	for _, r := range sensors.Table2a() {
		span := f(r.LoHz)
		if r.HiHz != r.LoHz {
			span = fmt.Sprintf("%g-%g", r.LoHz, r.HiHz)
		}
		t.Rows = append(t.Rows, []string{r.Sensor, span})
	}
	return t
}

// Table2b measures the three controller levels' response times on the
// 6-DOF plant at the Table 2b update frequencies.
type Table2b struct {
	// ThrustResponseS is the low-level actuation response (3x rotor time
	// constant: thrust reaches ~95% of a step).
	ThrustResponseS float64
	// AttitudeResponseS is the mid-level attitude step settle time.
	AttitudeResponseS float64
	// PositionResponseS is the high-level position step settle time.
	PositionResponseS float64
}

// RunTable2b measures the cascade's time-scale separation.
func RunTable2b() Table2b {
	cfg := sim.DefaultConfig()
	var out Table2b

	// Thrust level: rotor spin-up physics.
	q, _ := sim.NewQuad(cfg)
	out.ThrustResponseS = 3 * q.RotorTimeConstant()

	// Attitude level: a 15-degree roll step at hover; settle within 10%.
	out.AttitudeResponseS = attitudeStepResponse(cfg)

	// Position level: a 5 m translation step.
	out.PositionResponseS = control.StepResponse(cfg, control.DefaultRates(), 5, 20)
	return out
}

// attitudeStepResponse measures the mid-level loop settle time directly.
func attitudeStepResponse(cfg sim.Config) float64 {
	q, err := sim.NewQuad(cfg)
	if err != nil {
		return -1
	}
	q.Teleport(mathx.V3(0, 0, 20))
	c := control.NewCascade(q)
	target := mathx.QuatFromEuler(0.26, 0, 0) // 15 deg roll
	dt := 1e-3
	settled := -1.0
	hold := 0.0
	for i := 0; i < 5000; i++ {
		s := q.State()
		// Feed the attitude target directly (the mid-level loop's own
		// step), keeping collective at hover.
		if i%5 == 0 {
			c.SetAttitudeTarget(target, cfg.MassKg*9.80665/math.Cos(0.26))
		}
		if i%5 == 0 {
			c.UpdateAttitude(s, 5*dt)
		}
		q.CommandThrusts(c.UpdateRate(s, dt))
		q.Step(dt)
		t := q.Time()
		if q.State().Att.AngleTo(target) < 0.026 { // within 10%
			if hold == 0 {
				hold = t
			}
			if t-hold > 0.1 {
				settled = hold
				break
			}
		} else {
			hold = 0
		}
	}
	return settled
}

// Table renders the measurement.
func (tb Table2b) Table() Table {
	return Table{
		Title:   "Table 2b: controller update frequencies and measured response times",
		Columns: []string{"controller", "update freq", "measured response", "paper response"},
		Rows: [][]string{
			{"Thrust (low)", "1 kHz", fmt.Sprintf("%.0f ms", tb.ThrustResponseS*1000), "50 ms"},
			{"Attitude (mid)", "200 Hz", fmt.Sprintf("%.0f ms", tb.AttitudeResponseS*1000), "100 ms"},
			{"Position (high)", "40 Hz", fmt.Sprintf("%.1f s", tb.PositionResponseS), "1 s"},
		},
		Notes: []string{"time-scale separation: each level settles ~an order of magnitude slower than the one below"},
	}
}

// InnerLoopAblation is the §2.1.3-D experiment: position step response vs
// inner-loop rate, showing the 50-500 Hz physics limit.
type InnerLoopAblation struct {
	RateHz    []float64
	ResponseS []float64
}

// RunInnerLoopAblation sweeps the inner-loop rate.
func RunInnerLoopAblation() InnerLoopAblation {
	cfg := sim.DefaultConfig()
	var out InnerLoopAblation
	for _, hz := range []float64{6, 12, 25, 50, 100, 200, 500, 1000, 2000} {
		r := control.Rates{PositionHz: math.Min(40, hz), AttitudeHz: math.Min(200, hz), RateHz: hz}
		out.RateHz = append(out.RateHz, hz)
		out.ResponseS = append(out.ResponseS, control.StepResponse(cfg, r, 5, 25))
	}
	return out
}

// Table renders the ablation.
func (a InnerLoopAblation) Table() Table {
	t := Table{
		Title:   "Inner-loop rate ablation (§2.1.3-D): response time vs update frequency",
		Columns: []string{"rate (Hz)", "5 m step response (s)"},
		Notes:   []string{"response saturates by ~50-200 Hz: the inner loop is limited by rotor lag and inertia, not compute"},
	}
	for i := range a.RateHz {
		resp := "did not settle"
		if a.ResponseS[i] >= 0 {
			resp = f2(a.ResponseS[i])
		}
		t.Rows = append(t.Rows, []string{f(a.RateHz[i]), resp})
	}
	return t
}

// Figure16 regenerates both power traces: the RPi under its workload phases
// (a, USB meter at 2 Hz) and the whole drone flying a mission (b,
// oscilloscope at 50 Hz).
type Figure16 struct {
	RPiTrace   *trace.Recorder
	RPiPhases  []trace.Phase
	DroneTrace *trace.Recorder
	DroneAvgW  float64
	DronePeakW float64
	// FlightOK reports the mission completed (took off, flew, landed).
	FlightOK bool
}

// RunFigure16 runs both instruments.
func RunFigure16(seed int64) (Figure16, error) {
	var out Figure16

	// (a) RPi phases: walk the §5.1 sequence on the phase power model,
	// with SLAM-active bursts reaching the ~5 W peak.
	rpi := trace.NewUSBMeter(seed)
	phases := []struct {
		phase platform.RPiPhase
		dur   float64
	}{
		{platform.Disconnected, 20},
		{platform.AutopilotRunning, 60},
		{platform.AutopilotSLAMIdle, 60},
		{platform.AutopilotSLAMFlying, 120},
		{platform.PiShutdown, 40},
	}
	t := 0.0
	var spans []trace.Phase
	for _, ph := range phases {
		start := t
		for ; t < start+ph.dur; t += 0.1 {
			p := platform.RPiPhasePowerW(ph.phase)
			if ph.phase == platform.AutopilotSLAMFlying {
				// Processing bursts: oscillate toward the 5 W peak.
				p += (platform.RPiPhasePeakW(ph.phase) - p) * 0.5 * (1 + math.Sin(t*2.1))
			}
			rpi.Observe(t, p)
		}
		spans = append(spans, trace.Phase{Name: ph.phase.String(), FromS: start, ToS: t})
	}
	out.RPiTrace = rpi
	out.RPiPhases = spans

	// (b) Whole drone: fly the reference box mission on the full stack —
	// SLAM-active compute phase, oscilloscope on the battery — as a batch
	// of one on the scenario batch engine (bit-identical to scenario.Run by
	// the lane-determinism contract).
	results, errs := scenario.RunBatch([]scenario.Spec{{
		Seed:      seed,
		TraceSeed: seed + 1,
		Compute:   scenario.Compute{SLAM: true}, // RPi w/ SLAM + Navio2
	}})
	if errs[0] != nil {
		return out, errs[0]
	}
	res := results[0]
	out.FlightOK = res.FinalMode == autopilot.Disarmed
	out.DroneTrace = res.Trace
	out.DroneAvgW = res.Trace.MeanPower(2, res.FlightTimeS)
	out.DronePeakW = res.Trace.PeakPower(2, res.FlightTimeS)
	return out, nil
}

// Table renders the phase means and the whole-drone figures.
func (fg Figure16) Table() Table {
	t := Table{
		Title:   "Figure 16: power traces — (a) RPi per phase, (b) whole drone in flight",
		Columns: []string{"signal", "measured avg (W)", "paper (W)"},
	}
	means := trace.PhaseMeans(fg.RPiTrace, fg.RPiPhases)
	paper := map[string]string{
		"autopilot":              "3.39",
		"autopilot+SLAM(idle)":   "4.05",
		"autopilot+SLAM(flying)": "4.56 (peaks ~5)",
	}
	for _, ph := range fg.RPiPhases {
		want, ok := paper[ph.Name]
		if !ok {
			want = "-"
		}
		t.Rows = append(t.Rows, []string{"RPi " + ph.Name, f2(means[ph.Name]), want})
	}
	t.Rows = append(t.Rows, []string{"whole drone avg", f2(fg.DroneAvgW), "130"})
	t.Rows = append(t.Rows, []string{"whole drone peak", f2(fg.DronePeakW), "~250 at 58% load"})
	if !fg.FlightOK {
		t.Notes = append(t.Notes, "WARNING: mission did not complete")
	}
	return t
}
