// Package bench is the experiment harness: one generator per table and
// figure in the paper's evaluation, each returning structured data plus a
// text rendering. cmd/figures exposes them on the command line and the
// repo-root benchmarks (bench_test.go) time and validate them; EXPERIMENTS.md
// records paper-vs-measured for every row.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a generic rendered result: a title, column headers, and rows.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries paper-expected values and commentary.
	Notes []string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(vals []string) {
		for i, v := range vals {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&b, "%-*s  ", widths[i], v)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (the artifact's /Drone-CSVs
// equivalent: the raw data each figure is drawn from).
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(v, ",\"\n") {
				v = `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
			}
			b.WriteString(v)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.4g", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// sortedKeys returns map keys in sorted order for stable rendering.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
