package bench

import (
	"strings"
	"testing"

	"dronedse/core"
)

func TestRunTWRStudy(t *testing.T) {
	s := RunTWRStudy(core.DefaultParams())
	if len(s.Points) < 4 {
		t.Fatalf("TWR study produced %d points", len(s.Points))
	}
	if s.Points[0].TWR != 2 {
		t.Error("study must anchor at TWR 2")
	}
	if !strings.Contains(s.Table().Render(), "TWR") {
		t.Error("render broken")
	}
}

func TestRunSensorStudy(t *testing.T) {
	s := RunSensorStudy(core.DefaultParams())
	if len(s.Points) != 4 { // none + 3 LiDARs
		t.Fatalf("sensor study rows = %d, want 4", len(s.Points))
	}
	if s.Points[0].SensorName != "(none)" {
		t.Error("baseline row missing")
	}
	// The heaviest LiDAR squeezes hardest.
	last := s.Points[0].ComputeShareHoverPct
	if s.Points[1].ComputeShareHoverPct >= last {
		t.Error("LiDAR did not squeeze the compute share")
	}
	s.Table().Render()
}

func TestRunGustStudy(t *testing.T) {
	s := RunGustStudy(3)
	if len(s.RateHz) < 5 {
		t.Fatalf("gust study produced %d rates", len(s.RateHz))
	}
	byRate := map[float64]float64{}
	for i, hz := range s.RateHz {
		byRate[hz] = s.WorstErr[i]
	}
	// Everything from 50 Hz up holds within ~2.5 m of the set point in a
	// 5 m/s wind; extra rate beyond 500 Hz buys under half a meter.
	for _, hz := range []float64{50, 200, 1000} {
		if byRate[hz] > 2.5 {
			t.Errorf("%v Hz worst error %.2f m", hz, byRate[hz])
		}
	}
	if d := byRate[500] - byRate[2000]; d > 0.5 || d < -0.5 {
		t.Errorf("500 Hz vs 2 kHz differ by %.2f m; gusts should be physics-limited past 500 Hz", d)
	}
	s.Table().Render()
}

func TestRunOffloadStudy(t *testing.T) {
	s, err := RunOffloadStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Reports) != 3 {
		t.Fatalf("offload rows = %d, want 3 links", len(s.Reports))
	}
	feasible := 0
	for _, r := range s.Reports {
		if r.Feasible() {
			feasible++
		}
	}
	if feasible == 0 {
		t.Error("no feasible offload link; WiFi should work")
	}
	s.Table().Render()
}

func TestRunESLAMStudy(t *testing.T) {
	s, err := RunESLAMStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.WithoutGMean >= s.WithGMean {
		t.Errorf("ablation backwards: %.1f vs %.1f", s.WithoutGMean, s.WithGMean)
	}
	if s.WithoutGMean < 4 || s.WithoutGMean > 10 {
		t.Errorf("no-eSLAM GMean = %.1f, expected the ~7x Amdahl cap", s.WithoutGMean)
	}
	s.Table().Render()
}

func TestRunParetoStudy(t *testing.T) {
	s := RunParetoStudy(core.DefaultParams())
	if len(s.Points) < 4 {
		t.Fatalf("frontier has %d points", len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].FlightMin >= s.Points[i-1].FlightMin {
			t.Error("frontier not strictly worsening with payload")
		}
	}
	s.Table().Render()
}

func TestRunIsolationStudyTable(t *testing.T) {
	s := RunIsolationStudy(1)
	r := s.Result
	if !(r.Solo.IPC >= r.DedicatedCore.IPC && r.DedicatedCore.IPC > r.SharedCore.IPC) {
		t.Errorf("isolation ladder violated: %.3f / %.3f / %.3f",
			r.Solo.IPC, r.DedicatedCore.IPC, r.SharedCore.IPC)
	}
	if !strings.Contains(s.Table().Render(), "dedicated unit") {
		t.Error("render broken")
	}
}

func TestRunPrefetchStudyTable(t *testing.T) {
	s := RunPrefetchStudy(1)
	if s.Autopilot.Speedup() <= s.SLAM.Speedup() {
		t.Error("prefetch asymmetry inverted")
	}
	if !strings.Contains(s.Table().Render(), "prefetches") {
		t.Error("render broken")
	}
}
