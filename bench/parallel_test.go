package bench

import (
	"testing"

	"dronedse/core"
	"dronedse/parallelx"
)

// renderAll regenerates the compute-heavy figure tables at the current pool
// size and returns their rendered text — the regression oracle: parallel
// output must be byte-identical to serial output.
func renderAll(t *testing.T) map[string]string {
	t.Helper()
	core.ResetResolveCache()
	p := core.DefaultParams()
	out := map[string]string{}
	out["fig9"] = RunFigure9(p).Table().Render()
	for _, wb := range []float64{100, 450, 800} {
		out["fig10"] += RunFigure10(wb, p).Table().Render()
	}
	out["fig15"] = RunFigure15(7).Table().Render()
	fg17, err := RunFigure17(3)
	if err != nil {
		t.Fatal(err)
	}
	out["fig17"] = fg17.Table().Render()
	out["twr"] = RunTWRStudy(p).Table().Render()
	out["pareto"] = RunParetoStudy(p).Table().Render()
	return out
}

// TestFigureTablesPoolInvariant: every parallelized figure generator renders
// byte-identically at pool sizes 1, 2, and 8.
func TestFigureTablesPoolInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("SLAM sequences are slow; skipping in -short")
	}
	var serial map[string]string
	func() {
		prev := parallelx.SetPoolSize(1)
		defer parallelx.SetPoolSize(prev)
		serial = renderAll(t)
	}()
	for name, text := range serial {
		if text == "" {
			t.Fatalf("serial %s rendered empty", name)
		}
	}
	for _, pool := range []int{2, 8} {
		func() {
			prev := parallelx.SetPoolSize(pool)
			defer parallelx.SetPoolSize(prev)
			got := renderAll(t)
			for name, text := range got {
				if text != serial[name] {
					t.Errorf("pool=%d: %s output differs from serial:\n--- parallel ---\n%s\n--- serial ---\n%s",
						pool, name, text, serial[name])
				}
			}
		}()
	}
}
