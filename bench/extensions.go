package bench

import (
	"fmt"
	"math"

	"dronedse/components"
	"dronedse/control"
	"dronedse/core"
	"dronedse/dataset"
	"dronedse/mathx"
	"dronedse/microarch"
	"dronedse/offload"
	"dronedse/parallelx"
	"dronedse/platform"
	"dronedse/sim"
	"dronedse/slam"
)

// TWRStudy is the §7 released-in-the-repository study: the computation
// footprint at TWR 2-7.
type TWRStudy struct {
	Points []core.TWRPoint
}

// RunTWRStudy sweeps TWR on a 450 mm drone with the 20 W compute tier.
func RunTWRStudy(p core.Params) TWRStudy {
	spec := core.DefaultSpec()
	spec.CapacityMah = 4000
	spec.Compute = components.AdvancedComputeTier
	return TWRStudy{Points: core.TWRSweep(spec, p)}
}

// Table renders the study.
func (s TWRStudy) Table() Table {
	t := Table{
		Title:   "TWR sensitivity (§7): compute footprint shrinks as TWR rises",
		Columns: []string{"TWR", "total weight(g)", "hover power(W)", "20W compute share(%)", "flight(min)"},
		Notes:   []string{"paper: TWR 2 is the minimum flying value and bounds compute's contribution from above"},
	}
	for _, pt := range s.Points {
		t.Rows = append(t.Rows, []string{
			f(pt.TWR), f2(pt.TotalWeightG), f2(pt.HoverPowerW),
			f2(pt.ComputeShareHoverPct), f2(pt.FlightMin),
		})
	}
	return t
}

// SensorStudy is the §3.1 external-sensor squeeze on large drones.
type SensorStudy struct {
	Points []core.SensorPayloadPoint
}

// RunSensorStudy adds each Table 4 LiDAR to an 800 mm drone.
func RunSensorStudy(p core.Params) SensorStudy {
	spec := core.Spec{WheelbaseMM: 800, Cells: 6, CapacityMah: 8000, TWR: 2,
		Compute: components.AdvancedComputeTier, ESCClass: components.LongFlight}
	var sensors []struct {
		Name    string
		WeightG float64
	}
	for _, b := range components.Table4() {
		if b.Class == components.LiDARUnit {
			sensors = append(sensors, struct {
				Name    string
				WeightG float64
			}{b.Name, b.WeightG})
		}
	}
	return SensorStudy{Points: core.SensorPayloadStudy(spec, p, sensors)}
}

// Table renders the study.
func (s SensorStudy) Table() Table {
	t := Table{
		Title:   "External sensors (§3.1): LiDAR weight squeezes the compute power boundary",
		Columns: []string{"sensor", "sensor weight(g)", "drone weight(g)", "20W compute share(%)", "flight(min)"},
	}
	for _, pt := range s.Points {
		t.Rows = append(t.Rows, []string{
			pt.SensorName, f(pt.SensorWeightG), f2(pt.TotalWeightG),
			f2(pt.ComputeShareHoverPct), f2(pt.FlightMin),
		})
	}
	return t
}

// GustStudy measures hover station-keeping under wind gusts at different
// inner-loop rates — the §2.1.3-D INDI citation (500 Hz suffices even under
// powerful gusts) as an experiment.
type GustStudy struct {
	RateHz   []float64
	WorstErr []float64 // meters
}

// RunGustStudy hovers in gusty wind at several inner-loop rates.
func RunGustStudy(seed int64) GustStudy {
	var out GustStudy
	for _, hz := range []float64{25, 50, 100, 200, 500, 1000, 2000} {
		q, err := sim.NewQuad(sim.DefaultConfig())
		if err != nil {
			continue
		}
		q.SetEnvironment(sim.WindyEnvironment(seed, 5, 3))
		rates := control.Rates{PositionHz: math.Min(40, hz), AttitudeHz: math.Min(200, hz), RateHz: hz}
		l := control.NewLoop(q, rates)
		q.Teleport(mathx.V3(0, 0, 10))
		worst := 0.0
		l.Run(control.Targets{Position: mathx.V3(0, 0, 10)}, 20, func(_ float64, s sim.State) {
			if d := s.Pos.Sub(mathx.V3(0, 0, 10)).Norm(); d > worst {
				worst = d
			}
		})
		out.RateHz = append(out.RateHz, hz)
		out.WorstErr = append(out.WorstErr, worst)
	}
	return out
}

// Table renders the study.
func (s GustStudy) Table() Table {
	t := Table{
		Title:   "Gust rejection vs inner-loop rate (5 m/s wind, 3 m/s gusts)",
		Columns: []string{"rate (Hz)", "worst hover error (m)"},
		Notes:   []string{"paper §2.1.3-D: even INDI gust rejection runs at 500 Hz; beyond it physics dominates"},
	}
	for i := range s.RateHz {
		t.Rows = append(t.Rows, []string{f(s.RateHz[i]), f2(s.WorstErr[i])})
	}
	return t
}

// OffloadStudy evaluates remote-compute SLAM over the standard links.
type OffloadStudy struct {
	Reports []offload.Report
}

// RunOffloadStudy measures MH01's ledger against a ground GPU.
func RunOffloadStudy() (OffloadStudy, error) {
	seq, err := dataset.Generate(dataset.EuRoCSpecs()[0])
	if err != nil {
		return OffloadStudy{}, err
	}
	st := slam.RunSequence(seq).Stats
	reports, err := offload.Compare(offload.GroundStationGPU(), offload.SLAMWorkload(), st, 2)
	if err != nil {
		return OffloadStudy{}, err
	}
	return OffloadStudy{Reports: reports}, nil
}

// Table renders the study.
func (s OffloadStudy) Table() Table {
	t := Table{
		Title:   "Offloading SLAM over the radio link (Figure 5's MAVLink offload path)",
		Columns: []string{"link", "throughput ok", "end-to-end (ms)", "deadline ok", "airborne ΔP (W)", "feasible"},
		Notes:   []string{"the 915 MHz telemetry kit cannot carry imagery; WiFi works in range but saves little power vs an FPGA"},
	}
	for _, r := range s.Reports {
		t.Rows = append(t.Rows, []string{
			r.Link.Name, yn(r.ThroughputOK), f2(r.TotalMS), yn(r.DeadlineOK),
			fmt.Sprintf("%+.2f", r.PowerDeltaW), yn(r.Feasible()),
		})
	}
	return t
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// ESLAMStudy is the front-end-acceleration ablation.
type ESLAMStudy struct {
	WithGMean    float64
	WithoutGMean float64
}

// RunESLAMStudy compares the FPGA with and without the eSLAM front end
// over the (possibly truncated) suite.
func RunESLAMStudy(seqLimit int) (ESLAMStudy, error) {
	specs := dataset.EuRoCSpecs()
	if seqLimit > 0 && seqLimit < len(specs) {
		specs = specs[:seqLimit]
	}
	base := platform.RPi()
	type pair struct {
		with, without float64
		err           error
	}
	runs := parallelx.Map(specs, func(spec dataset.Spec) pair {
		seq, err := dataset.Generate(spec)
		if err != nil {
			return pair{err: err}
		}
		st := slam.RunSequence(seq).Stats
		return pair{
			with:    platform.Speedup(base, platform.FPGA(), st),
			without: platform.Speedup(base, platform.FPGANoESLAM(), st),
		}
	})
	var with, without []float64
	for _, r := range runs {
		if r.err != nil {
			return ESLAMStudy{}, r.err
		}
		with = append(with, r.with)
		without = append(without, r.without)
	}
	return ESLAMStudy{WithGMean: mathx.GeoMean(with), WithoutGMean: mathx.GeoMean(without)}, nil
}

// Table renders the ablation.
func (s ESLAMStudy) Table() Table {
	return Table{
		Title:   "eSLAM ablation (§5.2): why the FPGA also accelerates feature extraction",
		Columns: []string{"configuration", "GMean speedup over RPi"},
		Rows: [][]string{
			{"BA pipeline + eSLAM front end (paper's design)", f2(s.WithGMean)},
			{"BA pipeline only (front end on ARM)", f2(s.WithoutGMean)},
		},
		Notes: []string{"Amdahl: with BA at 39x, the ~13% front-end share caps the speedup near 7x until eSLAM removes it"},
	}
}

// ParetoStudy is the payload/flight-time frontier tool output.
type ParetoStudy struct {
	Points []core.ParetoPoint
}

// RunParetoStudy sweeps payload on the 450 mm class.
func RunParetoStudy(p core.Params) ParetoStudy {
	return ParetoStudy{Points: core.ParetoPayloadFrontier(
		core.DefaultSpec(), p, []float64{0, 100, 200, 300, 500, 750, 1000})}
}

// Table renders the frontier.
func (s ParetoStudy) Table() Table {
	t := Table{
		Title:   "Payload vs flight-time Pareto frontier (450 mm, best battery per point)",
		Columns: []string{"payload (g)", "best config", "total weight (g)", "flight (min)"},
	}
	for _, pt := range s.Points {
		t.Rows = append(t.Rows, []string{
			f(pt.Objective),
			fmt.Sprintf("%dS %.0f mAh", pt.Design.Spec.Cells, pt.Design.Spec.CapacityMah),
			f2(pt.Design.TotalG), f2(pt.FlightMin),
		})
	}
	return t
}

// IsolationStudy is the §2.2 deployment-option ladder: shared core,
// dedicated core (shared LLC), dedicated unit.
type IsolationStudy struct {
	Result microarch.IsolationResult
}

// RunIsolationStudy measures the three configurations.
func RunIsolationStudy(seed int64) IsolationStudy {
	return IsolationStudy{Result: microarch.RunIsolationStudy(seed, 30000)}
}

// Table renders the ladder.
func (s IsolationStudy) Table() Table {
	t := Table{
		Title:   "Isolation ladder (§2.2): why the inner loop gets its own unit",
		Columns: []string{"deployment", "autopilot IPC", "TLB misses", "LLC miss rate", "branch miss rate"},
		Notes: []string{
			"a dedicated core removes TLB/branch pollution but the shared LLC still throttles — hence \"not co-located on the same core or even the same unit\"",
		},
	}
	row := func(name string, m microarch.Metrics) {
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%.3f", m.IPC), fmt.Sprint(m.TLBMisses),
			fmt.Sprintf("%.3f", m.LLCMissRate), fmt.Sprintf("%.4f", m.BranchMissRate),
		})
	}
	row("dedicated unit (solo)", s.Result.Solo)
	row("dedicated core, shared LLC", s.Result.DedicatedCore)
	row("shared core (co-resident)", s.Result.SharedCore)
	return t
}

// PrefetchStudy is the Figure 1 general-purpose-feature question: what a
// cheap stream prefetcher buys each workload class.
type PrefetchStudy struct {
	Autopilot microarch.PrefetchAblation
	SLAM      microarch.PrefetchAblation
}

// RunPrefetchStudy ablates the prefetcher on both workloads.
func RunPrefetchStudy(seed int64) PrefetchStudy {
	return PrefetchStudy{
		Autopilot: microarch.RunPrefetchAblation(func() microarch.Workload {
			return microarch.NewAutopilotWorkload(seed)
		}, 30000),
		SLAM: microarch.RunPrefetchAblation(func() microarch.Workload {
			return microarch.NewSLAMWorkload(seed + 1)
		}, 30000),
	}
}

// Table renders the ablation.
func (s PrefetchStudy) Table() Table {
	t := Table{
		Title:   "Stream-prefetcher ablation: which drone workload benefits from general-purpose microarchitecture",
		Columns: []string{"workload", "IPC without", "IPC with", "speedup", "prefetches"},
		Notes:   []string{"strided inner-loop state walks stream well; SLAM's pointer chasing does not — Figure 1's \"accelerate tasks similar to other areas?\""},
	}
	row := func(name string, a microarch.PrefetchAblation) {
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%.3f", a.Without.IPC), fmt.Sprintf("%.3f", a.With.IPC),
			fmt.Sprintf("%.2fx", a.Speedup()), fmt.Sprint(a.PrefetchesIssued),
		})
	}
	row("autopilot", s.Autopilot)
	row("SLAM", s.SLAM)
	return t
}
