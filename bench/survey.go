package bench

import (
	"fmt"

	"dronedse/components"
	"dronedse/core"
	"dronedse/parallelx"
)

// Figure7 regenerates the battery survey and its per-configuration fits.
type Figure7 struct {
	Fits map[int]struct {
		Slope, Intercept, R2 float64
		PaperSlope           float64
		PaperIntercept       float64
		N                    int
	}
}

// RunFigure7 fits the 250-battery catalog per cell configuration.
func RunFigure7(seed int64) (Figure7, error) {
	cat := components.GenerateBatteryCatalog(seed)
	fits, err := components.FitBatteryCatalog(cat)
	if err != nil {
		return Figure7{}, err
	}
	out := Figure7{Fits: map[int]struct {
		Slope, Intercept, R2 float64
		PaperSlope           float64
		PaperIntercept       float64
		N                    int
	}{}}
	for cells, l := range fits {
		paper := components.Figure7Lines[cells]
		out.Fits[cells] = struct {
			Slope, Intercept, R2 float64
			PaperSlope           float64
			PaperIntercept       float64
			N                    int
		}{l.Slope, l.Intercept, l.R2, paper.Slope, paper.Intercept, l.N}
	}
	return out, nil
}

// Table renders the figure.
func (fg Figure7) Table() Table {
	t := Table{
		Title:   "Figure 7: LiPo capacity vs weight per configuration (250 batteries)",
		Columns: []string{"config", "slope(g/mAh)", "intercept(g)", "R2", "paper slope", "paper intercept", "n"},
		Notes:   []string{"paper lines: weight = slope*capacity + intercept, per xS configuration"},
	}
	for _, cells := range sortedKeys(fg.Fits) {
		v := fg.Fits[cells]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dS1P", cells), f(v.Slope), f(v.Intercept), f2(v.R2),
			f(v.PaperSlope), f(v.PaperIntercept), fmt.Sprint(v.N),
		})
	}
	return t
}

// Figure8 regenerates the ESC (a) and frame (b) surveys.
type Figure8 struct {
	ESCLong, ESCShort struct {
		Slope, Intercept float64
		PaperSlope       float64
		PaperIntercept   float64
	}
	FrameHighSlope      float64
	FrameHighIntercept  float64
	PaperFrameSlope     float64
	PaperFrameIntercept float64
}

// RunFigure8 fits both catalogs.
func RunFigure8(seed int64) (Figure8, error) {
	var out Figure8
	escFits, err := components.FitESCCatalog(components.GenerateESCCatalog(seed + 1))
	if err != nil {
		return out, err
	}
	long, short := escFits[components.LongFlight], escFits[components.ShortFlight]
	out.ESCLong.Slope, out.ESCLong.Intercept = long.Slope, long.Intercept
	out.ESCLong.PaperSlope = components.Figure8aLines[components.LongFlight].Slope
	out.ESCLong.PaperIntercept = components.Figure8aLines[components.LongFlight].Intercept
	out.ESCShort.Slope, out.ESCShort.Intercept = short.Slope, short.Intercept
	out.ESCShort.PaperSlope = components.Figure8aLines[components.ShortFlight].Slope
	out.ESCShort.PaperIntercept = components.Figure8aLines[components.ShortFlight].Intercept

	pw := components.FitFrameCatalog(components.GenerateFrameCatalog(seed + 2))
	out.FrameHighSlope, out.FrameHighIntercept = pw.High.Slope, pw.High.Intercept
	out.PaperFrameSlope, out.PaperFrameIntercept = components.Figure8bSlope, components.Figure8bIntercept
	return out, nil
}

// Table renders the figure.
func (fg Figure8) Table() Table {
	return Table{
		Title:   "Figure 8: ESC current-weight (a) and frame wheelbase-weight (b) fits",
		Columns: []string{"fit", "slope", "intercept", "paper slope", "paper intercept"},
		Rows: [][]string{
			{"ESC long-flight", f(fg.ESCLong.Slope), f(fg.ESCLong.Intercept), f(fg.ESCLong.PaperSlope), f(fg.ESCLong.PaperIntercept)},
			{"ESC short-flight", f(fg.ESCShort.Slope), f(fg.ESCShort.Intercept), f(fg.ESCShort.PaperSlope), f(fg.ESCShort.PaperIntercept)},
			{"frame (>200mm)", f(fg.FrameHighSlope), f(fg.FrameHighIntercept), f(fg.PaperFrameSlope), f(fg.PaperFrameIntercept)},
		},
	}
}

// Figure9 regenerates the motor current vs basic weight lines.
type Figure9 struct {
	// Lines[wheelbase][cells] = sampled points.
	Lines map[float64]map[int][]core.MotorCurrentPoint
	// MinBasicWeight[wheelbase] is the "Min. Possible Weight Line".
	MinBasicWeight map[float64]float64
}

// Figure9Weights returns the per-wheelbase basic-weight spans used in the
// reproduction (the closure exposes infeasibility where the paper's
// extrapolated lines keep going; see DESIGN.md).
func Figure9Weights() map[float64][]float64 {
	return map[float64][]float64{
		50:  {30, 40, 50, 60},
		100: {100, 150, 200, 250, 300},
		200: {150, 300, 450, 600, 700},
		450: {300, 600, 900, 1200, 1500, 1800},
		800: {800, 1200, 1600, 2000, 2400, 2700},
	}
}

// RunFigure9 sweeps every wheelbase/cell-count line. The (wheelbase, cells)
// grid fans out across the parallelx pool; the maps are assembled serially
// from the ordered results.
func RunFigure9(p core.Params) Figure9 {
	out := Figure9{
		Lines:          map[float64]map[int][]core.MotorCurrentPoint{},
		MinBasicWeight: map[float64]float64{},
	}
	weightsByWB := Figure9Weights()
	type job struct {
		wb    float64
		cells int
	}
	var jobs []job
	var wbs []float64
	for wb := range weightsByWB {
		wbs = append(wbs, wb)
	}
	sortFloats(wbs)
	for _, wb := range wbs {
		for cells := 1; cells <= 6; cells++ {
			jobs = append(jobs, job{wb, cells})
		}
	}
	lines := parallelx.Map(jobs, func(j job) []core.MotorCurrentPoint {
		return core.MotorCurrentVsBasicWeight(j.wb, j.cells, 2, p, weightsByWB[j.wb])
	})
	for i, j := range jobs {
		if out.Lines[j.wb] == nil {
			out.Lines[j.wb] = map[int][]core.MotorCurrentPoint{}
		}
		out.Lines[j.wb][j.cells] = lines[i]
	}
	for _, wb := range wbs {
		out.MinBasicWeight[wb] = core.MinFeasibleBasicWeightG(wb, p)
	}
	return out
}

// Table renders one row per (wheelbase, cells) with the span of currents.
func (fg Figure9) Table() Table {
	t := Table{
		Title:   "Figure 9: per-motor max current draw vs basic weight (TWR=2)",
		Columns: []string{"wheelbase", "cells", "weights(g)", "current(A) span", "Kv @ first point"},
		Notes:   []string{"higher supply voltage lowers current; small wheelbases need extreme Kv (paper: 51000Kv at 1\"/1S, 420Kv at 20\"/6S)"},
	}
	var wbs []float64
	for wb := range fg.Lines {
		wbs = append(wbs, wb)
	}
	sortFloats(wbs)
	for _, wb := range wbs {
		for cells := 1; cells <= 6; cells++ {
			pts := fg.Lines[wb][cells]
			if len(pts) == 0 {
				t.Rows = append(t.Rows, []string{f(wb), fmt.Sprint(cells), "-", "infeasible", "-"})
				continue
			}
			t.Rows = append(t.Rows, []string{
				f(wb), fmt.Sprint(cells),
				fmt.Sprintf("%g-%g", pts[0].BasicWeightG, pts[len(pts)-1].BasicWeightG),
				fmt.Sprintf("%.1f-%.1f", pts[0].CurrentA, pts[len(pts)-1].CurrentA),
				fmt.Sprintf("%.0f", pts[0].Kv),
			})
		}
	}
	return t
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
