package bench

import (
	"fmt"

	"dronedse/core"
	"dronedse/dataset"
	"dronedse/mathx"
	"dronedse/microarch"
	"dronedse/parallelx"
	"dronedse/platform"
	"dronedse/slam"
)

// Figure15 regenerates the co-residency interference study.
type Figure15 struct {
	Result microarch.Figure15Result
}

// RunFigure15 executes the three workload configurations.
func RunFigure15(seed int64) Figure15 {
	return Figure15{Result: microarch.RunFigure15(seed, 30000)}
}

// TLBRatio is the co-resident/solo autopilot TLB-miss ratio (paper: 4.5x).
func (fg Figure15) TLBRatio() float64 {
	if fg.Result.Autopilot.TLBMisses == 0 {
		return 0
	}
	return float64(fg.Result.AutopilotWithSLAM.TLBMisses) / float64(fg.Result.Autopilot.TLBMisses)
}

// IPCDrop is the autopilot IPC degradation factor (paper: 1.7x).
func (fg Figure15) IPCDrop() float64 {
	if fg.Result.AutopilotWithSLAM.IPC == 0 {
		return 0
	}
	return fg.Result.Autopilot.IPC / fg.Result.AutopilotWithSLAM.IPC
}

// Table renders the figure.
func (fg Figure15) Table() Table {
	t := Table{
		Title:   "Figure 15: autopilot vs SLAM vs co-resident on RPi (trace-driven uarch sim)",
		Columns: []string{"workload", "IPC", "LLC miss rate", "branch miss rate", "TLB misses"},
	}
	row := func(name string, m microarch.Metrics) {
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprintf("%.3f", m.IPC), fmt.Sprintf("%.3f", m.LLCMissRate),
			fmt.Sprintf("%.4f", m.BranchMissRate), fmt.Sprint(m.TLBMisses),
		})
	}
	row("autopilot", fg.Result.Autopilot)
	row("SLAM", fg.Result.SLAM)
	row("autopilot w/ SLAM", fg.Result.AutopilotWithSLAM)
	t.Notes = append(t.Notes,
		fmt.Sprintf("TLB miss ratio %.2fx (paper 4.5x); autopilot IPC drop %.2fx (paper 1.7x)",
			fg.TLBRatio(), fg.IPCDrop()))
	return t
}

// Figure17 regenerates the SLAM-offload speedups across the 11 sequences.
type Figure17 struct {
	Results []slam.Result
	// Bars[sequence][platform] is the stacked-speedup breakdown.
	TX2Bars  []platform.SpeedupBreakdown
	FPGABars []platform.SpeedupBreakdown
	// ATEs per sequence confirm SLAM key metrics held while retiming.
	GMeanTX2  float64
	GMeanFPGA float64
}

// RunFigure17 runs SLAM over the synthetic EuRoC suite and retimes it on
// the platform models. seqLimit>0 truncates the suite (for -short runs).
// Sequences are independent, so they fan out across the parallelx pool; the
// results are assembled in suite order, byte-identical to the serial run.
func RunFigure17(seqLimit int) (Figure17, error) {
	specs := dataset.EuRoCSpecs()
	if seqLimit > 0 && seqLimit < len(specs) {
		specs = specs[:seqLimit]
	}
	var out Figure17
	base := platform.RPi()
	type seqOut struct {
		res     slam.Result
		tx2Bar  platform.SpeedupBreakdown
		fpgaBar platform.SpeedupBreakdown
		tx2     float64
		fpga    float64
		err     error
	}
	runs := parallelx.Map(specs, func(spec dataset.Spec) seqOut {
		seq, err := dataset.Generate(spec)
		if err != nil {
			return seqOut{err: err}
		}
		res := slam.RunSequence(seq)
		return seqOut{
			res:     res,
			tx2Bar:  platform.Breakdown(base, platform.TX2(), res.Name, res.Stats),
			fpgaBar: platform.Breakdown(base, platform.FPGA(), res.Name, res.Stats),
			tx2:     platform.Speedup(base, platform.TX2(), res.Stats),
			fpga:    platform.Speedup(base, platform.FPGA(), res.Stats),
		}
	})
	var tx2s, fpgas []float64
	for _, r := range runs {
		if r.err != nil {
			return out, r.err
		}
		out.Results = append(out.Results, r.res)
		out.TX2Bars = append(out.TX2Bars, r.tx2Bar)
		out.FPGABars = append(out.FPGABars, r.fpgaBar)
		tx2s = append(tx2s, r.tx2)
		fpgas = append(fpgas, r.fpga)
	}
	out.GMeanTX2 = mathx.GeoMean(tx2s)
	out.GMeanFPGA = mathx.GeoMean(fpgas)
	return out, nil
}

// Stats returns the per-sequence work ledgers (for Table 5).
func (fg Figure17) Stats() []slam.Stats {
	out := make([]slam.Stats, len(fg.Results))
	for i, r := range fg.Results {
		out[i] = r.Stats
	}
	return out
}

// Table renders the figure.
func (fg Figure17) Table() Table {
	t := Table{
		Title:   "Figure 17: ORB-SLAM speedup over RPi (TX2 and FPGA) by category",
		Columns: []string{"sequence", "ATE(m)", "TX2 total", "FPGA total", "FPGA FE part", "FPGA localBA part", "FPGA globalBA part"},
	}
	for i, r := range fg.Results {
		tb, fb := fg.TX2Bars[i], fg.FPGABars[i]
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprintf("%.3f", r.ATE),
			f2(tb.Total), f2(fb.Total), f2(fb.FrontEnd), f2(fb.LocalBA), f2(fb.GlobalBA),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GMEAN: TX2 %.2fx (paper 2.16x), FPGA %.1fx (paper 30.7x)", fg.GMeanTX2, fg.GMeanFPGA))
	return t
}

// Table5Bench regenerates the platform-comparison table plus the exact
// (weight-ripple-resolved) ablation.
type Table5Bench struct {
	Rows       []platform.Table5Row
	ExactSmall map[string]float64
	ExactLarge map[string]float64
}

// RunTable5 computes the table from Figure 17's ledgers.
func RunTable5(stats []slam.Stats, params core.Params) (Table5Bench, error) {
	rows := platform.Table5(stats)
	small, large, err := platform.Table5Exact(params)
	if err != nil {
		return Table5Bench{}, err
	}
	return Table5Bench{Rows: rows, ExactSmall: small, ExactLarge: large}, nil
}

// Table renders the comparison.
func (tb Table5Bench) Table() Table {
	t := Table{
		Title: "Table 5: comparing platforms for SLAM",
		Columns: []string{"platform", "speedup", "power(W)", "weight(g)", "integ.", "fab.",
			"gain small(min)", "gain large(min)", "exact small", "exact large"},
		Notes: []string{
			"paper: speedups 1/2.16/30.7/23.53; gains small 0/-4/2-3/2.2-3.2, large 0/-1.5/1/1 (15 min baseline)",
			"'exact' columns re-resolve the whole design with the platform's weight (Equation 1 ripple): the FPGA's extra 25 g over the RPi erases most of its small-drone gain",
		},
	}
	for _, r := range tb.Rows {
		t.Rows = append(t.Rows, []string{
			r.Platform, f2(r.Speedup), f(r.PowerOverheadW), f(r.WeightOverheadG),
			r.IntegrationCost.String(), r.FabricationCost.String(),
			f2(r.GainedSmallMin), f2(r.GainedLargeMin),
			f2(tb.ExactSmall[r.Platform]), f2(tb.ExactLarge[r.Platform]),
		})
	}
	return t
}
