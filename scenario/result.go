package scenario

import (
	"fmt"

	"dronedse/autopilot"
	"dronedse/control"
	"dronedse/core"
	"dronedse/estimation"
	"dronedse/mathx"
	"dronedse/mission"
	"dronedse/trace"
)

// Result is the structured outcome of one scenario flight.
type Result struct {
	// FlightTimeS is the total simulated time when the flight ended.
	FlightTimeS float64
	// TakeoffOK reports the vehicle reached hover within the 30 s budget.
	TakeoffOK bool
	// Completed reports every mission waypoint was visited (false for
	// hover flights and failsafe aborts).
	Completed bool
	// FinalMode is the autopilot mode at the end (Disarmed for a landing,
	// anything else for a timeout).
	FinalMode autopilot.Mode
	// LastEvent is the autopilot's final safety/mode annotation.
	LastEvent string

	// Workload is the flown workload's own outcome: its kind, its notion of
	// completion, and its kind-specific metrics (delivered payload mass and
	// per-phase Equation 1/5 resolutions, coverage fraction, follow tracking
	// error).
	Workload mission.Outcome

	// Trajectory is the true position sampled at 10 Hz from the first
	// physics step.
	Trajectory []mathx.Vec3
	// MaxEstErrM is the worst airborne estimator error |estimate - truth|.
	MaxEstErrM float64

	// EnergyWh integrates whole-drone power over the flight; ComputeWh is
	// the companion-computer share of it.
	EnergyWh  float64
	ComputeWh float64

	// Fallbacks/Recoveries count offload placement changes (zero without
	// an offload session).
	Fallbacks  int
	Recoveries int

	// EKFStats / CtrlStats are the flight's estimation and control work
	// ledgers (deterministic functions of the step/sensor schedule), the
	// inputs the roofline model places against platform ceilings.
	EKFStats  estimation.EKFStats
	CtrlStats control.CtrlStats

	// Log is the DataFlash-style flight log; Trace the oscilloscope
	// power recording.
	Log   *autopilot.FlightLog
	Trace *trace.Recorder
}

// AvgPowerW is the flight's mean whole-drone power.
func (r *Result) AvgPowerW() float64 {
	if r.FlightTimeS <= 0 {
		return 0
	}
	return r.EnergyWh * 3600 / r.FlightTimeS
}

// AvgComputeW is the flight's mean companion-computer power.
func (r *Result) AvgComputeW() float64 {
	if r.FlightTimeS <= 0 {
		return 0
	}
	return r.ComputeWh * 3600 / r.FlightTimeS
}

// ComputeFlightCostMin prices the measured compute energy in flight time
// via the paper's Equation 7 approximation: the minutes of this flight's
// duration that the companion computer's share of total power "bought" —
// what a zero-power accelerator would have returned to the mission.
func (r *Result) ComputeFlightCostMin() float64 {
	return core.ApproxGainedFlightTimeMin(r.AvgPowerW(), r.AvgComputeW(), r.FlightTimeS/60)
}

// Summary renders a one-line post-flight report.
func (r *Result) Summary() string {
	return fmt.Sprintf(
		"flight %.1f s, mode %v, energy %.2f Wh (avg %.1f W, compute %.1f W ≙ %.2f min of flight time)",
		r.FlightTimeS, r.FinalMode, r.EnergyWh, r.AvgPowerW(), r.AvgComputeW(),
		r.ComputeFlightCostMin())
}
