package scenario_test

// Workload-layer acceptance tests: the pluggable mission.Workload refactor
// must keep the historical goldens bit-identical through every batch/pool
// shape, give each new workload the same lane-determinism guarantees the box
// mission has, and keep steady-state batched stepping allocation-free with
// the new workloads resident.

import (
	"fmt"
	"os"
	"testing"

	"dronedse/mathx"
	"dronedse/mission"
	"dronedse/parallelx"
	"dronedse/scenario"
)

// workloadSpecs is the mixed-workload property-test fleet: one spec per
// workload kind, durations kept short so the matrix stays fast. A factory,
// like identitySpecs — specs are reused across batches by value.
func workloadSpecs() []scenario.Spec {
	return []scenario.Spec{
		{Seed: 121, MaxSeconds: 60, Workload: mission.Coverage{WidthM: 10, HeightM: 10, SpacingM: 5}},
		{Seed: 122, MaxSeconds: 60, Workload: mission.Delivery{Legs: []mission.DeliveryLeg{
			{Pickup: mathx.V3(6, 0, 6), Dropoff: mathx.V3(6, 8, 6), PayloadKg: 0.6}}}},
		{Seed: 123, MaxSeconds: 60, Workload: mission.Follow{DurationS: 10}},
		{Seed: 124, MaxSeconds: 20, Workload: mission.Box{}},
		{Seed: 125, MaxSeconds: 2, Workload: mission.Hover{}},
		{Seed: 126, MaxSeconds: 30, Workload: mission.Trajectory{
			Path: []mathx.Vec3{{X: 0, Y: 0, Z: 6}, {X: 8, Y: 4, Z: 6}}, VMaxMS: 4, AMaxMS2: 2}},
	}
}

// TestWorkloadFlysimGoldenBatched pins the mission-union removal against the
// historical golden: the reference flysim flight's trajectory digest must
// stay byte-identical when the flight runs as a lane of a batch of 1, 8 or
// 64 at pools 1, 2 and 8.
func TestWorkloadFlysimGoldenBatched(t *testing.T) {
	want := readGolden(t, "testdata/flysim_golden.txt")["traj_sha256"]
	prev := parallelx.PoolSize()
	defer parallelx.SetPoolSize(prev)
	for _, pool := range []int{1, 2, 8} {
		parallelx.SetPoolSize(pool)
		for _, batchSize := range []int{1, 8, 64} {
			lanes := make([]scenario.Spec, batchSize)
			for i := range lanes {
				lanes[i] = scenario.Spec{Seed: 1}
			}
			results, errs := scenario.RunBatch(lanes)
			for i := range lanes {
				if errs[i] != nil {
					t.Fatal(errs[i])
				}
				if got := trajDigest(results[i].Trajectory); got != want {
					t.Fatalf("pool %d batch %d lane %d: trajectory digest %s, golden %s",
						pool, batchSize, i, got, want)
				}
			}
		}
	}
}

// TestWorkloadGoldenDigests pins every workload kind's full-result digest so
// an unintended physics, driver or workload change fails loudly. Regenerate
// deliberately with GOLDEN_UPDATE=1.
func TestWorkloadGoldenDigests(t *testing.T) {
	specs := workloadSpecs()
	if updateGoldens {
		body := ""
		for _, spec := range specs {
			res, err := scenario.Run(spec)
			body += fmt.Sprintf("%s %s\n", spec.Workload.Kind(), resultDigest(t, res, err))
		}
		if err := os.WriteFile("testdata/workloads_golden.txt", []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("rewrote testdata/workloads_golden.txt")
		return
	}
	want := readGolden(t, "testdata/workloads_golden.txt")
	for _, spec := range specs {
		kind := spec.Workload.Kind()
		res, err := scenario.Run(spec)
		if got := resultDigest(t, res, err); got != want[kind] {
			t.Errorf("%s: digest %s, golden %s", kind, got, want[kind])
		}
	}
}

// TestWorkloadMixedBatchBitIdentity is the per-workload lane-determinism
// property: each workload's flight is bit-identical run solo or as a lane of
// a mixed-workload batch — coverage next to delivery next to follow — at any
// pool size and batch width.
func TestWorkloadMixedBatchBitIdentity(t *testing.T) {
	specs := workloadSpecs()
	want := make([]string, len(specs))
	for i, spec := range specs {
		res, err := scenario.Run(spec)
		want[i] = resultDigest(t, res, err)
	}

	prev := parallelx.PoolSize()
	defer parallelx.SetPoolSize(prev)
	for _, pool := range []int{1, 8} {
		parallelx.SetPoolSize(pool)
		for _, batchSize := range []int{len(specs), 64} {
			lanes := make([]scenario.Spec, batchSize)
			fresh := workloadSpecs()
			for i := range lanes {
				lanes[i] = fresh[i%len(fresh)]
			}
			results, errs := scenario.RunBatch(lanes)
			for i := range lanes {
				got := resultDigest(t, results[i], errs[i])
				if got != want[i%len(specs)] {
					t.Fatalf("pool %d batch %d lane %d (%s): diverged from solo run",
						pool, batchSize, i, lanes[i].Workload.Kind())
				}
			}
		}
	}
}

// TestWorkloadZeroAllocSteadyState extends the batch alloc guard to the new
// workloads: with coverage, delivery and follow lanes resident and warmed
// past takeoff — the delivery lane mid payload-handoff window, the follow
// lane tracking — a batched step must not allocate.
func TestWorkloadZeroAllocSteadyState(t *testing.T) {
	prev := parallelx.SetPoolSize(1)
	defer parallelx.SetPoolSize(prev)
	b := scenario.NewBatch([]scenario.Spec{
		{Seed: 131, Workload: mission.Coverage{}},
		{Seed: 132, Workload: mission.DefaultDelivery()},
		{Seed: 133, Workload: mission.Follow{}},
	})
	b.Start()
	for i := 0; i < 10000; i++ {
		b.Tick()
	}
	if n := testing.AllocsPerRun(500, func() { b.Tick() }); n != 0 {
		t.Fatalf("batched workload step allocates %.2f objects in steady state, want 0", n)
	}
}

// TestWorkloadOutcomes pins each workload's kind-specific outcome fields on
// a completing flight, and the partial-coverage report on a truncated one.
func TestWorkloadOutcomes(t *testing.T) {
	res, err := scenario.Run(scenario.Spec{Seed: 141, MaxSeconds: 120, Workload: mission.Coverage{}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Workload.Completed || res.Workload.CoverageFrac != 1 {
		t.Fatalf("coverage: completed=%v frac=%v", res.Workload.Completed, res.Workload.CoverageFrac)
	}

	res, err = scenario.Run(scenario.Spec{Seed: 141, MaxSeconds: 25, Workload: mission.Coverage{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload.Completed || res.Workload.CoverageFrac <= 0 || res.Workload.CoverageFrac >= 1 {
		t.Fatalf("truncated coverage: completed=%v frac=%v", res.Workload.Completed, res.Workload.CoverageFrac)
	}

	res, err = scenario.Run(scenario.Spec{Seed: 142, MaxSeconds: 120, Workload: mission.DefaultDelivery()})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Workload
	if !out.Completed || out.LegsDone != 2 || out.DeliveredKg != 1.3 {
		t.Fatalf("delivery: %+v", out)
	}
	// The Equation 1 closure per carried-mass phase: empty-handed first,
	// then one phase per leg, heavier payloads costing hover endurance.
	if len(out.PhaseTotalG) != 3 || len(out.PhaseEnduranceMin) != 3 {
		t.Fatalf("delivery phases: %+v", out)
	}
	if !(out.PhaseTotalG[0] < out.PhaseTotalG[1] && out.PhaseTotalG[1] < out.PhaseTotalG[2]) {
		t.Fatalf("phase TotalG not increasing with payload: %v", out.PhaseTotalG)
	}
	if !(out.PhaseEnduranceMin[0] > out.PhaseEnduranceMin[1]) {
		t.Fatalf("payload did not cost endurance: %v", out.PhaseEnduranceMin)
	}

	res, err = scenario.Run(scenario.Spec{Seed: 143, MaxSeconds: 120, Workload: mission.Follow{DurationS: 20}})
	if err != nil {
		t.Fatal(err)
	}
	out = res.Workload
	if !out.Completed || out.MeanTrackErrM <= 0 || out.MaxTrackErrM < out.MeanTrackErrM {
		t.Fatalf("follow: %+v", out)
	}
	if out.MaxTrackErrM > 10 {
		t.Fatalf("follow lost the target: max track error %.1f m", out.MaxTrackErrM)
	}
}
