package scenario_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash"
	"math"
	"testing"

	"dronedse/parallelx"
	"dronedse/scenario"
	"dronedse/sim"
)

// identitySpecs is the bit-identity property-test fleet: a factory (fault
// injectors and observers are stateful, so every run gets fresh specs)
// covering hover and mission branches, wind, SLAM compute, a bigger pack,
// and mission flights truncated by MaxSeconds mid-air.
func identitySpecs() []scenario.Spec {
	return []scenario.Spec{
		{Seed: 11, Hover: true, MaxSeconds: 2},
		{Seed: 12, Hover: true, MaxSeconds: 3, Wind: scenario.Wind{MeanMS: 4, GustMS: 2}},
		{Seed: 13, MaxSeconds: 25},
		{Seed: 14, MaxSeconds: 30, Wind: scenario.Wind{MeanMS: 6, GustMS: 3}},
		{Seed: 15, Hover: true, MaxSeconds: 2, Compute: scenario.Compute{SLAM: true}},
		{Seed: 16, Hover: true, MaxSeconds: 4, TakeoffAltM: 8},
		{Seed: 17, MaxSeconds: 20, TraceSeed: 99},
		{Seed: 18, Hover: true, MaxSeconds: 2, Battery: scenario.Battery{Cells: 4, CapacityMah: 5000}},
	}
}

func putBits(h hash.Hash, vs ...float64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}

// resultDigest hashes everything the determinism contract pins: the
// trajectory, the flight log (entries and events), the oscilloscope trace,
// and the Equation-7 energy ledger — all at full float-bit fidelity.
func resultDigest(t *testing.T, res *scenario.Result, err error) string {
	t.Helper()
	if err != nil {
		t.Fatalf("flight failed: %v", err)
	}
	h := sha256.New()
	putBits(h, res.FlightTimeS, res.EnergyWh, res.ComputeWh, res.MaxEstErrM)
	if res.TakeoffOK {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write([]byte(res.FinalMode.String()))
	h.Write([]byte(res.LastEvent))
	for _, p := range res.Trajectory {
		putBits(h, p.X, p.Y, p.Z)
	}
	for _, e := range res.Log.Entries() {
		putBits(h, e.TimeS, e.PosX, e.PosY, e.Alt, e.Speed,
			e.Roll, e.Pitch, e.Yaw, e.PowerW, e.BatterySoC)
		h.Write([]byte(e.Mode.String()))
	}
	for _, e := range res.Log.Events() {
		putBits(h, e.TimeS)
		h.Write([]byte(e.Text))
	}
	for _, s := range res.Trace.Samples() {
		putBits(h, s.TimeS, s.PowerW)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestBatchSerialBitIdentity is ISSUE 6's hard requirement: the same Spec +
// seed must produce a bit-identical Result whether run serially, as one lane
// of a small or large batch, or at any parallelx pool size.
func TestBatchSerialBitIdentity(t *testing.T) {
	specs := identitySpecs()
	want := make([]string, len(specs))
	for i, spec := range specs {
		res, err := scenario.Run(spec)
		want[i] = resultDigest(t, res, err)
	}

	prev := parallelx.PoolSize()
	defer parallelx.SetPoolSize(prev)
	for _, pool := range []int{1, 2, 8} {
		parallelx.SetPoolSize(pool)
		for _, batchSize := range []int{1, 8, 64} {
			// Fill the batch by cycling the spec fleet; every lane must
			// reproduce its spec's serial digest.
			lanes := make([]scenario.Spec, batchSize)
			fresh := identitySpecs()
			for i := range lanes {
				lanes[i] = fresh[i%len(fresh)]
			}
			results, errs := scenario.RunBatch(lanes)
			for i := range lanes {
				got := resultDigest(t, results[i], errs[i])
				if got != want[i%len(specs)] {
					t.Fatalf("pool %d batch %d lane %d (seed %d): result diverged from serial run",
						pool, batchSize, i, lanes[i].Seed)
				}
			}
		}
	}
}

// TestBatchTickGranularityInvariance pins that the interleaving granularity
// (one tick at a time vs the Run stride) is unobservable in lane results.
func TestBatchTickGranularityInvariance(t *testing.T) {
	spec := scenario.Spec{Seed: 31, Hover: true, MaxSeconds: 2}
	res, err := scenario.Run(spec)
	want := resultDigest(t, res, err)

	b := scenario.NewBatch([]scenario.Spec{{Seed: 31, Hover: true, MaxSeconds: 2}})
	b.Start()
	for !b.Tick() {
	}
	results, errs := b.Outcomes()
	if got := resultDigest(t, results[0], errs[0]); got != want {
		t.Fatal("tick-at-a-time batch diverged from serial run")
	}
}

// TestBatchLaneErrorIsolation: a lane whose Build fails finishes with its
// error recorded and must not poison its co-tenants' results.
func TestBatchLaneErrorIsolation(t *testing.T) {
	good := scenario.Spec{Seed: 41, Hover: true, MaxSeconds: 2}
	wantRes, wantErr := scenario.Run(good)
	want := resultDigest(t, wantRes, wantErr)

	badQuad := sim.DefaultConfig()
	badQuad.TWR = 0.5 // below the flying minimum: Build must fail
	results, errs := scenario.RunBatch([]scenario.Spec{
		{Seed: 41, Hover: true, MaxSeconds: 2},
		{Seed: 42, Quad: &badQuad},
		{Seed: 41, Hover: true, MaxSeconds: 2},
	})
	if errs[1] == nil || results[1] != nil {
		t.Fatal("bad lane did not report its build error")
	}
	for _, i := range []int{0, 2} {
		if got := resultDigest(t, results[i], errs[i]); got != want {
			t.Fatalf("lane %d diverged next to a failed lane", i)
		}
	}
}

// TestBatchAdmitMidFlightBitIdentity is the fleetd admission contract: a
// lane admitted into an already-flying batch — including into a slot freed
// by eviction — produces the same bit-identical Result as a solo run. The
// batch starts empty, the way a fleet server builds it.
func TestBatchAdmitMidFlightBitIdentity(t *testing.T) {
	specs := []scenario.Spec{
		{Seed: 61, Hover: true, MaxSeconds: 2},
		{Seed: 62, Hover: true, MaxSeconds: 3, Wind: scenario.Wind{MeanMS: 4, GustMS: 2}},
		{Seed: 63, MaxSeconds: 20},
	}
	want := make([]string, len(specs))
	for i, spec := range specs {
		res, err := scenario.Run(spec)
		want[i] = resultDigest(t, res, err)
	}

	build := func(i int) *scenario.Stack {
		st, err := scenario.Build(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	b := scenario.NewBatchOf()
	lane0 := b.Admit(build(0))
	b.Start()
	// Fly lane 0 alone for a while, then admit lane 1 mid-flight.
	for i := 0; i < 3000; i++ {
		b.Tick()
	}
	lane1 := b.Admit(build(1))
	if b.Live() != 2 {
		t.Fatalf("live = %d after mid-flight admission, want 2", b.Live())
	}

	// Run until lane 0 finishes, evict it, and admit lane 2 into the freed
	// slot while lane 1 is still flying.
	for !b.LaneDone(lane0) {
		b.Tick()
	}
	res0, err0 := b.Evict(lane0)
	if got := resultDigest(t, res0, err0); got != want[0] {
		t.Fatal("founding lane diverged from its solo run")
	}
	lane2 := b.Admit(build(2))
	if lane2 != lane0 {
		t.Fatalf("admission did not reuse evicted slot: got lane %d, want %d", lane2, lane0)
	}

	for !b.TickN(100) {
	}
	res1, err1 := b.Evict(lane1)
	if got := resultDigest(t, res1, err1); got != want[1] {
		t.Fatal("mid-flight-admitted lane diverged from its solo run")
	}
	res2, err2 := b.Evict(lane2)
	if got := resultDigest(t, res2, err2); got != want[2] {
		t.Fatal("slot-reusing lane diverged from its solo run")
	}
}

// TestBatchEvictGuards pins the eviction error paths: live lanes cannot be
// evicted, slots cannot be evicted twice, and a build-failed lane's error
// is recoverable exactly once.
func TestBatchEvictGuards(t *testing.T) {
	b := scenario.NewBatchOf()
	st, err := scenario.Build(scenario.Spec{Seed: 71, Hover: true, MaxSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	lane := b.Admit(st)
	b.Start()
	b.Tick()
	if _, err := b.Evict(lane); err == nil {
		t.Fatal("evicted a live lane")
	}
	for !b.Tick() {
	}
	if res, err := b.Evict(lane); err != nil || res == nil {
		t.Fatalf("evicting a finished lane: res=%v err=%v", res, err)
	}
	if _, err := b.Evict(lane); err == nil {
		t.Fatal("evicted the same lane twice")
	}

	badLane := b.Admit(nil)
	if badLane != lane {
		t.Fatalf("freed slot not reused: got %d, want %d", badLane, lane)
	}
	if res, err := b.Evict(badLane); err == nil || res != nil {
		t.Fatal("nil lane eviction must surface its admission error")
	}
}

// TestBatchAbortLane pins the service-layer kill switch: aborting a live
// lane finishes it immediately with the given reason, frees its slot for
// reuse, and leaves co-tenant lanes bit-unchanged (their flights never
// observe the abort).
func TestBatchAbortLane(t *testing.T) {
	solo, err := scenario.Run(scenario.Spec{Seed: 81, Hover: true, MaxSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}

	b := scenario.NewBatch([]scenario.Spec{
		{Seed: 81, Hover: true, MaxSeconds: 2},
		{Seed: 82, Hover: true, MaxSeconds: 30},
	})
	b.Start()
	b.TickN(500)
	reason := errors.New("deadline exceeded")
	b.Abort(1, reason)
	if !b.LaneDone(1) || b.LaneErr(1) != reason {
		t.Fatalf("aborted lane: done=%v err=%v", b.LaneDone(1), b.LaneErr(1))
	}
	if res, err := b.Evict(1); res != nil || err != reason {
		t.Fatalf("evicting aborted lane: res=%v err=%v", res, err)
	}
	b.Abort(1, reason) // aborting an evicted slot is a no-op
	if lane := b.Admit(nil); lane != 1 {
		t.Fatalf("aborted slot not reused: got lane %d", lane)
	}

	for !b.TickN(1000) {
	}
	res, err := b.Evict(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlightTimeS != solo.FlightTimeS || res.EnergyWh != solo.EnergyWh {
		t.Fatal("co-tenant flight perturbed by a lane abort")
	}
	if b.Live() != 0 {
		t.Fatalf("live = %d after all lanes finished", b.Live())
	}
}

// TestBatchLaneSimTime pins the progress bookkeeping: sim time is 0 before
// Start, advances with ticks, and reads 0 on evicted lanes.
func TestBatchLaneSimTime(t *testing.T) {
	b := scenario.NewBatch([]scenario.Spec{{Seed: 91, Hover: true, MaxSeconds: 5}})
	if tS := b.LaneSimTimeS(0); tS != 0 {
		t.Fatalf("sim time before start = %v", tS)
	}
	b.Start()
	b.TickN(1000) // 1 simulated second at 1 kHz
	if tS := b.LaneSimTimeS(0); tS <= 0.9 || tS >= 1.1 {
		t.Fatalf("sim time after 1000 ticks = %v, want ~1 s", tS)
	}
	b.Abort(0, errors.New("stop"))
	b.Evict(0)
	if tS := b.LaneSimTimeS(0); tS != 0 {
		t.Fatalf("sim time on evicted lane = %v", tS)
	}
}

// TestBatchZeroAllocSteadyState is the ISSUE 6 alloc-regression guard: once
// a batch is warmed past takeoff, advancing it must do zero steady-state
// heap allocations per step. It runs on the serial path (pool 1) — parallel
// dispatch adds only per-dispatch goroutine fan-out, amortized by TickN.
func TestBatchZeroAllocSteadyState(t *testing.T) {
	prev := parallelx.SetPoolSize(1)
	defer parallelx.SetPoolSize(prev)
	b := scenario.NewBatch([]scenario.Spec{
		{Seed: 51, Hover: true},
		{Seed: 52},
		{Seed: 53, Wind: scenario.Wind{MeanMS: 4, GustMS: 2}},
	})
	b.Start()
	// Warm through takeoff and into cruise so every lazy path (mode
	// transitions, first log rows, trace priming) has already run.
	for i := 0; i < 10000; i++ {
		b.Tick()
	}
	if n := testing.AllocsPerRun(500, func() { b.Tick() }); n != 0 {
		t.Fatalf("batched step allocates %.2f objects in steady state, want 0", n)
	}
}
