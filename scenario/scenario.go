// Package scenario is the unified flight-experiment engine: one declarative
// Spec describing the paper's experiment shape — a vehicle, an environment,
// a battery, a compute platform, optional SLAM offload and fault plans, a
// mission — and one audited Build that performs all the cross-package
// wiring (quad ↔ sensors ↔ estimator ↔ autopilot ↔ battery ↔ injector ↔
// trace recorders) that was previously hand-rolled, divergently, by
// cmd/flysim, faultx.Run, bench.RunFigure16 and the examples.
//
// Determinism contract: a Spec is a pure value plus a seed. Build derives
// every stochastic stream (sensor noise, turbulence, instrument noise,
// offload jitter) from Spec.Seed, and Run drives the stack through a fixed
// arm → takeoff → workload → land sequence, so the same Spec always
// reproduces the same flight bit for bit — the property the campaign
// pool-invariance and golden-regression tests pin.
//
// What flies after takeoff is a mission.Workload: the driver arms, takes
// off, then hands the flight to the workload's per-flight Driver until it
// reports done (see package mission). The legacy Mission/Hover/Trajectory
// Spec fields remain as inputs and are mapped onto the equivalent adapter
// workloads by withDefaults — the driver itself no longer branches on them.
//
// Observer ordering: Build registers step observers on the autopilot's bus
// in a fixed order — (1) the power-trace recorder, (2) the flight log,
// (3) the scenario probe (fault application at 100 Hz, offload session and
// trajectory tap at 10 Hz, telemetry at the configured cadence, energy
// integration every step), (4) user observers in Spec order. Registration
// order is execution order (see autopilot.Observe), so a given Spec always
// replays observer side effects identically.
package scenario

import (
	"errors"
	"fmt"

	"dronedse/autopilot"
	"dronedse/control"
	"dronedse/mathx"
	"dronedse/mission"
	"dronedse/offload"
	"dronedse/planner"
	"dronedse/platform"
	"dronedse/power"
	"dronedse/sensors"
	"dronedse/sim"
	"dronedse/slam"
	"dronedse/trace"
)

// Wind selects the environment. The zero value is calm air (deterministic
// turbulence source seeded from the Spec, but zero turbulence amplitude).
type Wind struct {
	// MeanMS is the steady wind speed along +X; zero selects calm air.
	MeanMS float64
	// GustMS is the gust amplitude layered on the mean (flysim's -wind flag
	// uses MeanMS/2). Ignored when MeanMS is zero.
	GustMS float64
}

// Battery selects the LiPo pack. The zero value is the paper's 450 mm
// reference pack: 3S, 3000 mAh, 30 C.
type Battery struct {
	Cells       int
	CapacityMah float64
	CRating     float64
}

func (b Battery) withDefaults() Battery {
	if b.Cells == 0 {
		b.Cells = 3
	}
	if b.CapacityMah == 0 {
		b.CapacityMah = 3000
	}
	if b.CRating == 0 {
		b.CRating = 30
	}
	return b
}

// Compute selects the companion-computer power envelope. The zero value is
// the paper's RPi + Navio2 stack running the autopilot alone
// (platform.FlightComputeW(false)); SLAM selects the SLAM-active phase.
type Compute struct {
	// BaseW, when positive, overrides the platform-derived draw entirely.
	BaseW float64
	// SLAM selects the SLAM-active RPi phase (§5.1's 4.56 W average).
	SLAM bool
}

// BoardW resolves the draw, sourcing the named §5.1 operating points from
// package platform — the one definition the old call sites each inlined.
func (c Compute) BoardW() float64 {
	if c.BaseW > 0 {
		return c.BaseW
	}
	return platform.FlightComputeW(c.SLAM)
}

// Offload attaches an offload session: SLAM-class work shipped to a remote
// node over a radio, with retry/fallback/recovery priced into the compute
// power the autopilot carries (Equation 7's subject).
type Offload struct {
	// Session configures the link, node, workload and retry policy. A zero
	// Seed inherits Spec.Seed.
	Session offload.SessionConfig
	// Stats is the per-mission SLAM work ledger the session prices.
	Stats slam.Stats
}

// Telemetry streams MAVLink frames to a caller-owned sink (a TCP
// connection, a lossy link into a ground station, a file).
type Telemetry struct {
	// EverySteps is the physics-step cadence between frames (default 250,
	// i.e. 4 Hz at the 1 kHz physics rate).
	EverySteps int
	// Send receives each encoded frame; nil disables telemetry.
	Send func(raw []byte)
}

// FaultInjector is the scenario's view of a deterministic fault source
// (implemented by *faultx.Injector; an interface here so faultx can itself
// build campaigns on scenario without an import cycle). Build binds it to
// the plant and installs it behind every host-owned fault interface.
type FaultInjector interface {
	// Bind attaches the injector to the plant, pack and environment.
	Bind(q *sim.Quad, p *power.Pack, e *sim.Environment)
	// Apply pushes time-driven physical effects (sag, derate, gusts) at t.
	Apply(t float64)
	sensors.FaultView
	autopilot.FaultSignals
	offload.LinkProbe
}

// Phase marks the driver's progress points for Spec.OnPhase.
type Phase int

// Run phases, in order.
const (
	// PhaseArmed: pre-flight checks passed, motors live.
	PhaseArmed Phase = iota
	// PhaseAirborne: takeoff completed, holding at the takeoff altitude.
	PhaseAirborne
	// PhaseMissionStarted: the waypoint mission is executing.
	PhaseMissionStarted
	// PhaseDone: the flight ended (disarmed or timed out).
	PhaseDone
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseArmed:
		return "armed"
	case PhaseAirborne:
		return "airborne"
	case PhaseMissionStarted:
		return "mission-started"
	default:
		return "done"
	}
}

// Spec declares one closed-loop flight experiment. The zero value (plus a
// seed) flies cmd/flysim's reference configuration: the default 450 mm
// quad, calm air, a 3S/3000 pack, the RPi+Navio2 autopilot draw, and the
// 12 m box mission at 5 m for up to 240 simulated seconds.
type Spec struct {
	// Seed drives every stochastic stream in the stack.
	Seed int64

	// Quad overrides the plant configuration (nil = sim.DefaultConfig()).
	Quad *sim.Config
	// Wind selects the environment (zero = calm).
	Wind Wind
	// Battery selects the pack (zero = 3S/3000/30).
	Battery Battery
	// Compute selects the companion-computer draw (zero = RPi+Navio2).
	Compute Compute
	// Rates overrides the control-cascade rates (zero = Table 2b defaults).
	Rates control.Rates

	// TakeoffAltM is the takeoff altitude (default 5).
	TakeoffAltM float64
	// Workload is what the vehicle does after takeoff. Nil falls back to
	// the legacy Mission/Hover/Trajectory fields below, and when those are
	// zero too, to mission.Box{} (the 12 m reference box).
	Workload mission.Workload
	// Mission is the legacy waypoint-plan field, mapped onto
	// mission.Waypoints when Workload is nil. Ignored when Hover or
	// Trajectory is set.
	Mission autopilot.MissionPlan
	// Trajectory is the legacy planner-trajectory field, mapped onto
	// mission.Trajectory when Workload is nil.
	Trajectory *planner.Trajectory
	// Hover is the legacy loiter flag (flysim's -hover), mapped onto
	// mission.Hover when Workload is nil.
	Hover bool
	// MaxSeconds bounds the whole flight (default 240).
	MaxSeconds float64

	// EnergyPolicy, when non-nil, arms the Table 1 flight-time-management
	// failsafe.
	EnergyPolicy *autopilot.EnergyPolicy
	// Faults, when non-nil, is bound to the plant and installed behind the
	// sensor, autopilot and offload fault interfaces.
	Faults FaultInjector
	// Offload, when non-nil, attaches an offload session whose airborne
	// power is folded into the compute draw at 10 Hz.
	Offload *Offload
	// Telemetry, when Send is non-nil, streams MAVLink frames.
	Telemetry Telemetry

	// TraceSeed seeds the oscilloscope's instrument noise (0 = Seed;
	// bench.RunFigure16 historically used Seed+1).
	TraceSeed int64

	// Observers are user step observers, registered after the built-in
	// ones in slice order.
	Observers []autopilot.StepObserver
	// OnPhase, when non-nil, is called as the driver crosses each Phase.
	OnPhase func(*Stack, Phase)
}

func (s Spec) withDefaults() Spec {
	if s.TakeoffAltM <= 0 {
		s.TakeoffAltM = 5
	}
	if s.MaxSeconds <= 0 {
		s.MaxSeconds = 240
	}
	s.Battery = s.Battery.withDefaults()
	if s.Telemetry.EverySteps <= 0 {
		s.Telemetry.EverySteps = 250
	}
	if s.TraceSeed == 0 {
		s.TraceSeed = s.Seed
	}
	// Map the legacy mission-union fields onto their adapter workloads; an
	// explicit Workload wins over all of them.
	if s.Workload == nil {
		switch {
		case s.Hover:
			s.Workload = mission.Hover{}
		case s.Trajectory != nil:
			s.Workload = mission.Trajectory{Traj: s.Trajectory}
		case s.Mission != nil:
			s.Workload = mission.Waypoints{Plan: s.Mission}
		default:
			s.Workload = mission.Box{}
		}
	}
	return s
}

// BoxMission is the reference 12 m box at the given takeoff altitude — the
// mission cmd/flysim, faultx campaigns and bench.RunFigure16 all fly, so
// their outputs stay mutually bit-comparable. It delegates to
// mission.BoxPlan, the plan mission.Box flies.
func BoxMission(altM float64) autopilot.MissionPlan {
	return mission.BoxPlan(altM)
}

// Stack is a fully wired flight stack, ready to Run. All fields are the
// live objects (read-mostly once Run starts).
type Stack struct {
	Spec      Spec // normalized (defaults resolved)
	Quad      *sim.Quad
	Env       *sim.Environment
	Battery   *power.Pack
	Autopilot *autopilot.Autopilot
	Session   *offload.Session
	Log       *autopilot.FlightLog
	Trace     *trace.Recorder

	baseComputeW float64
	designMassKg float64
	steps        int
	traj         []mathx.Vec3
	maxEstErr    float64
	energyWh     float64
	computeWh    float64
	telemSeq     uint8
	ran          bool
	drv          driver
	wl           mission.Driver
}

// The Stack is the mission.Host its workload driver flies against.
var _ mission.Host = (*Stack)(nil)

// AP implements mission.Host.
func (st *Stack) AP() *autopilot.Autopilot { return st.Autopilot }

// MissionStarted implements mission.Host: the workload reports its waypoint
// mission is executing, which the scenario surfaces as PhaseMissionStarted.
func (st *Stack) MissionStarted() { st.phase(PhaseMissionStarted) }

// SetPayloadKg implements mission.Host: attach (or release) a carried
// payload mid-flight. The mass is physical — it enters the plant's dynamics
// immediately — and the position controller's feedforward is retrimmed so
// the cascade expects the mass it is actually lifting.
func (st *Stack) SetPayloadKg(kg float64) {
	st.Quad.SetPayloadKg(kg)
	st.Autopilot.Cascade().MassKg = st.designMassKg + st.Quad.PayloadKg()
}

// Build performs all cross-package wiring for a Spec and registers the
// built-in step observers in the documented order. It does not advance
// simulated time.
func Build(spec Spec) (*Stack, error) {
	spec = spec.withDefaults()
	cfg := sim.DefaultConfig()
	if spec.Quad != nil {
		cfg = *spec.Quad
	}
	q, err := sim.NewQuad(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: plant: %w", err)
	}
	var env *sim.Environment
	if spec.Wind.MeanMS > 0 {
		env = sim.WindyEnvironment(spec.Seed, spec.Wind.MeanMS, spec.Wind.GustMS)
	} else {
		env = sim.NewEnvironment(spec.Seed)
	}
	q.SetEnvironment(env)

	pack, err := power.NewPack(spec.Battery.Cells, spec.Battery.CapacityMah, spec.Battery.CRating)
	if err != nil {
		return nil, fmt.Errorf("scenario: battery: %w", err)
	}
	baseW := spec.Compute.BoardW()
	ap, err := autopilot.New(autopilot.Config{
		Quad: q, Rates: spec.Rates, Battery: pack, ComputeW: baseW,
		TakeoffAltM: spec.TakeoffAltM, Seed: spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: autopilot: %w", err)
	}
	if spec.EnergyPolicy != nil {
		ap.SetEnergyPolicy(*spec.EnergyPolicy)
	}

	st := &Stack{
		Spec: spec, Quad: q, Env: env, Battery: pack, Autopilot: ap,
		Log: &autopilot.FlightLog{}, baseComputeW: baseW,
		designMassKg: cfg.MassKg,
	}
	st.wl, err = spec.Workload.New(mission.Context{
		Seed: spec.Seed, TakeoffAltM: spec.TakeoffAltM, MaxSeconds: spec.MaxSeconds,
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: workload: %w", err)
	}

	if spec.Faults != nil {
		spec.Faults.Bind(q, pack, env)
		ap.Suite().Faults = spec.Faults
		ap.SetFaultSignals(spec.Faults)
	}
	if spec.Offload != nil {
		scfg := spec.Offload.Session
		if scfg.Seed == 0 {
			scfg.Seed = spec.Seed
		}
		sess, err := offload.NewSession(scfg, spec.Offload.Stats)
		if err != nil {
			return nil, fmt.Errorf("scenario: offload: %w", err)
		}
		if spec.Faults != nil {
			sess.SetProbe(spec.Faults)
		}
		st.Session = sess
	}

	// Pre-size every per-step recording path for the worst-case flight
	// duration — takeoff budget plus the workload's own horizon (which
	// includes its landing watch) — so steady-state stepping never grows an
	// append.
	durS := 30 + spec.Workload.HorizonS(spec.MaxSeconds)
	st.traj = make([]mathx.Vec3, 0, int(durS*10)+2)
	st.Log.Reserve(durS)

	// Observer bus, in the package-documented order.
	st.Trace = trace.NewOscilloscope(spec.TraceSeed)
	st.Trace.Reserve(durS)
	ap.Observe(func(a *autopilot.Autopilot, dt float64) {
		st.Trace.Observe(a.Time(), a.TotalPowerW())
	})
	ap.AttachFlightLog(st.Log)
	ap.Observe(st.probe)
	for _, fn := range spec.Observers {
		ap.Observe(fn)
	}
	return st, nil
}

// probe is the scenario's built-in step observer: physical fault effects at
// 100 Hz, the offload retry loop, trajectory tap and estimator-error watch
// at 10 Hz, telemetry at the configured cadence, and trapezoid-free energy
// integration every step. Cadences are step-counted (not time-compared) so
// they cannot drift off the float time grid.
func (st *Stack) probe(a *autopilot.Autopilot, dt float64) {
	t := a.Time()
	if st.Spec.Faults != nil && st.steps%10 == 0 { // 100 Hz
		st.Spec.Faults.Apply(t)
	}
	if st.steps%100 == 0 { // 10 Hz
		if st.Session != nil {
			st.Session.Step(t)
			a.SetComputeW(st.baseComputeW + st.Session.AirborneW())
		}
		st.traj = append(st.traj, a.Quad().State().Pos)
		if a.Mode() != autopilot.Disarmed {
			if e := a.EstimatedState().Pos.Sub(a.Quad().State().Pos).Norm(); e > st.maxEstErr {
				st.maxEstErr = e
			}
		}
	}
	if st.Spec.Telemetry.Send != nil && st.steps%st.Spec.Telemetry.EverySteps == 0 {
		if raw, err := a.Telemetry(&st.telemSeq); err == nil {
			st.Spec.Telemetry.Send(raw)
		}
	}
	st.energyWh += a.TotalPowerW() * dt / 3600
	st.computeWh += a.ComputeW() * dt / 3600
	st.steps++
}

// driverState enumerates the tick driver's flight-sequence states. Takeoff
// is the one phase the scenario still owns; everything after it belongs to
// the workload's Driver.
type driverState int

const (
	drvUnstarted driverState = iota
	drvTakeoff               // RunUntil(mode != Takeoff, 30 s)
	drvActive                // the workload's Driver is flying
	drvDone
)

// driver is the resumable replacement for the blocking Run loop. Budgets are
// integer step counts computed with the same int(seconds*hz) truncation
// RunFor/RunUntil use, and conditions are evaluated at the same points (after
// each step; once more when a budget expires), so a flight ticked one step at
// a time is bit-identical to the historical blocking sequence. This is what
// lets Batch interleave N flights on one engine: each lane advances exactly
// one physics step per Tick regardless of what phase it is in.
type driver struct {
	state     driverState
	budget    int // remaining steps in the takeoff phase
	takeoffOK bool
	err       error
	result    *Result
}

// Start arms the stack and enters the takeoff phase without advancing
// simulated time. It may be called once; Run calls it implicitly.
func (st *Stack) Start() error {
	if st.ran {
		return errors.New("scenario: stack already ran")
	}
	st.ran = true
	ap := st.Autopilot
	if err := st.wl.Start(st); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := ap.Arm(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	st.phase(PhaseArmed)
	st.drv.state = drvTakeoff
	st.drv.budget = int(30 * ap.PhysicsHz())
	return nil
}

// Tick advances the flight by exactly one physics step and runs the state
// machine's between-step transitions. It reports whether the flight has
// finished; after done, Result/Err hold the outcome and further Ticks are
// no-ops. The sequence of Ticks reproduces the blocking Run bit for bit.
func (st *Stack) Tick() (done bool, err error) {
	if st.drv.state == drvUnstarted {
		return true, errors.New("scenario: Tick before Start")
	}
	if st.drv.state == drvDone {
		return true, st.drv.err
	}
	ap := st.Autopilot
	ap.Step()
	switch st.drv.state {
	case drvTakeoff:
		st.drv.budget--
		if ap.Mode() != autopilot.Takeoff || st.drv.budget <= 0 {
			st.endTakeoff()
		}
	case drvActive:
		if st.wl.Step(st) {
			st.finish()
		}
	}
	return st.drv.state == drvDone, st.drv.err
}

// Done reports whether the flight has finished (normally or with an error).
func (st *Stack) Done() bool { return st.drv.state == drvDone }

// Err returns the flight error, if any, once Done.
func (st *Stack) Err() error { return st.drv.err }

// SimTimeS returns the stack's current simulated time in seconds; it is
// valid at any point between ticks and advances monotonically.
func (st *Stack) SimTimeS() float64 { return st.Autopilot.Time() }

// Result returns the structured outcome once Done (nil on error or before).
func (st *Stack) Result() *Result { return st.drv.result }

// endTakeoff evaluates the takeoff outcome and hands the flight to the
// workload's Driver, exactly at the step boundary the blocking sequence
// branched on.
func (st *Stack) endTakeoff() {
	ap := st.Autopilot
	// RunUntil stopped either because the mode left Takeoff or because the
	// 30 s budget lapsed; in both cases the historical takeoffOK reduces to
	// "is the vehicle now holding in Hover".
	st.drv.takeoffOK = ap.Mode() == autopilot.Hover
	if st.drv.takeoffOK {
		st.phase(PhaseAirborne)
	}
	done, err := st.wl.Begin(st, st.drv.takeoffOK)
	if err != nil {
		st.fail(fmt.Errorf("scenario: %w", err))
		return
	}
	if done {
		st.finish()
		return
	}
	st.drv.state = drvActive
}

// fail terminates the flight with an error — no PhaseDone, no Result,
// matching the blocking Run's early-error returns.
func (st *Stack) fail(err error) {
	st.drv.err = err
	st.drv.state = drvDone
}

// finish closes out a completed flight: PhaseDone plus the structured Result.
func (st *Stack) finish() {
	st.drv.state = drvDone
	st.phase(PhaseDone)
	ap := st.Autopilot
	res := &Result{
		FlightTimeS: ap.Time(),
		TakeoffOK:   st.drv.takeoffOK,
		Completed:   ap.MissionCompleted(),
		Workload:    st.wl.Outcome(),
		FinalMode:   ap.Mode(),
		LastEvent:   ap.LastEvent(),
		Trajectory:  st.traj,
		MaxEstErrM:  st.maxEstErr,
		EnergyWh:    st.energyWh,
		ComputeWh:   st.computeWh,
		Log:         st.Log,
		Trace:       st.Trace,
		EKFStats:    ap.Estimator().Pos.Stats,
		CtrlStats:   ap.Cascade().Stats,
	}
	if st.Session != nil {
		res.Fallbacks = st.Session.Fallbacks
		res.Recoveries = st.Session.Recoveries
	}
	st.drv.result = res
}

// Run drives the stack through the fixed flight sequence: arm, take off
// (30 s budget), fly the mission (or hover) within Spec.MaxSeconds of total
// simulated time, and return the structured Result. It may be called once;
// it is exactly a batch of one — Start, then Tick to completion.
func (st *Stack) Run() (*Result, error) {
	if err := st.Start(); err != nil {
		return nil, err
	}
	for !st.Done() {
		if _, err := st.Tick(); err != nil {
			return nil, err
		}
	}
	if st.drv.err != nil {
		return nil, st.drv.err
	}
	return st.drv.result, nil
}

func (st *Stack) phase(p Phase) {
	if st.Spec.OnPhase != nil {
		st.Spec.OnPhase(st, p)
	}
}

// Run builds a Spec and flies it — the one-call form every non-interactive
// call site uses.
func Run(spec Spec) (*Result, error) {
	st, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return st.Run()
}
