package scenario_test

// Golden-output regression tests: the digests in testdata/ were recorded on
// the pre-scenario call sites (cmd/flysim's hand-rolled stack and the
// faultx campaign driver before it was rebuilt on scenario). The refactor
// is behavior-preserving exactly when these stay bit-identical.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"dronedse/faultx"
	"dronedse/mathx"
	"dronedse/parallelx"
	"dronedse/scenario"
)

// trajDigest hashes a trajectory exactly as the golden generator did:
// sha256 over the little-endian IEEE-754 bits of X, Y, Z per sample.
func trajDigest(traj []mathx.Vec3) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, p := range traj {
		put(p.X)
		put(p.Y)
		put(p.Z)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// readGolden parses a "key value" testdata file.
func readGolden(t *testing.T, path string) map[string]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		k, v, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if ok {
			out[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFlysimGolden pins cmd/flysim's default flight (seed 1, box mission at
// 5 m, RPi+Navio2 autopilot draw): the zero-value Spec must reproduce the
// pre-refactor trajectory and flight time bit for bit.
func TestFlysimGolden(t *testing.T) {
	want := readGolden(t, "testdata/flysim_golden.txt")

	res, err := scenario.Run(scenario.Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("reference mission did not complete (%s)", res.LastEvent)
	}
	if got := strconv.Itoa(len(res.Trajectory)); got != want["samples"] {
		t.Errorf("trajectory samples = %s, golden %s", got, want["samples"])
	}
	if got := fmt.Sprintf("%v", res.FlightTimeS); got != want["flight_time_s"] {
		t.Errorf("flight time = %s, golden %s", got, want["flight_time_s"])
	}
	if got := trajDigest(res.Trajectory); got != want["traj_sha256"] {
		t.Errorf("trajectory digest = %s, golden %s", got, want["traj_sha256"])
	}
}

// TestFaultCampaignGolden pins the standard fault campaign: the rendered
// table must hash to the pre-refactor digest at pool sizes 1, 2 and 8 —
// the golden and pool-invariance properties in one assertion.
func TestFaultCampaignGolden(t *testing.T) {
	want := readGolden(t, "testdata/faultcamp_golden.txt")["table_sha256"]

	for _, pool := range []int{1, 2, 8} {
		old := parallelx.SetPoolSize(pool)
		c, err := faultx.Run(faultx.StandardScenarios(1), faultx.Config{MaxSeconds: 240})
		parallelx.SetPoolSize(old)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(c.Table()))
		if got := hex.EncodeToString(sum[:]); got != want {
			t.Errorf("pool %d: campaign table digest = %s, golden %s\ntable:\n%s",
				pool, got, want, c.Table())
		}
	}
}
