package scenario_test

// Golden-output regression tests: the digests in testdata/ pin the exact
// float behavior of the reference flight and the standard fault campaign,
// so an unintended physics or wiring change fails loudly. They were
// recorded on the pre-scenario call sites (cmd/flysim's hand-rolled stack)
// and verified unchanged by the batched engine and the perf work since
// (the induced-power Pow(T, 1.5) → T*sqrt(T) move shifts only the energy
// ledger by ulps — the trajectory is upstream of the electrical model).
// Regenerate deliberately with
//
//	GOLDEN_UPDATE=1 go test ./scenario/ -run Golden

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"dronedse/faultx"
	"dronedse/mathx"
	"dronedse/parallelx"
	"dronedse/scenario"
)

// updateGoldens rewrites testdata instead of comparing against it.
var updateGoldens = os.Getenv("GOLDEN_UPDATE") != ""

// trajDigest hashes a trajectory exactly as the golden generator did:
// sha256 over the little-endian IEEE-754 bits of X, Y, Z per sample.
func trajDigest(traj []mathx.Vec3) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, p := range traj {
		put(p.X)
		put(p.Y)
		put(p.Z)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// readGolden parses a "key value" testdata file.
func readGolden(t *testing.T, path string) map[string]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		k, v, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if ok {
			out[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFlysimGolden pins cmd/flysim's default flight (seed 1, box mission at
// 5 m, RPi+Navio2 autopilot draw): the zero-value Spec must reproduce the
// pre-refactor trajectory and flight time bit for bit.
func TestFlysimGolden(t *testing.T) {
	res, err := scenario.Run(scenario.Spec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("reference mission did not complete (%s)", res.LastEvent)
	}
	if updateGoldens {
		body := fmt.Sprintf("traj_sha256 %s\nsamples %d\nflight_time_s %v\n",
			trajDigest(res.Trajectory), len(res.Trajectory), res.FlightTimeS)
		if err := os.WriteFile("testdata/flysim_golden.txt", []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("rewrote testdata/flysim_golden.txt")
		return
	}
	want := readGolden(t, "testdata/flysim_golden.txt")
	if got := strconv.Itoa(len(res.Trajectory)); got != want["samples"] {
		t.Errorf("trajectory samples = %s, golden %s", got, want["samples"])
	}
	if got := fmt.Sprintf("%v", res.FlightTimeS); got != want["flight_time_s"] {
		t.Errorf("flight time = %s, golden %s", got, want["flight_time_s"])
	}
	if got := trajDigest(res.Trajectory); got != want["traj_sha256"] {
		t.Errorf("trajectory digest = %s, golden %s", got, want["traj_sha256"])
	}
}

// TestFaultCampaignGolden pins the standard fault campaign: the rendered
// table must hash to the pre-refactor digest at pool sizes 1, 2 and 8 —
// the golden and pool-invariance properties in one assertion.
func TestFaultCampaignGolden(t *testing.T) {
	if updateGoldens {
		c, err := faultx.Run(faultx.StandardScenarios(1), faultx.Config{MaxSeconds: 240})
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(c.Table()))
		body := fmt.Sprintf("table_sha256 %s\n", hex.EncodeToString(sum[:]))
		if err := os.WriteFile("testdata/faultcamp_golden.txt", []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/faultcamp_table.txt", []byte(c.Table()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("rewrote testdata/faultcamp_golden.txt and faultcamp_table.txt")
		return
	}
	want := readGolden(t, "testdata/faultcamp_golden.txt")["table_sha256"]

	for _, pool := range []int{1, 2, 8} {
		old := parallelx.SetPoolSize(pool)
		c, err := faultx.Run(faultx.StandardScenarios(1), faultx.Config{MaxSeconds: 240})
		parallelx.SetPoolSize(old)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(c.Table()))
		if got := hex.EncodeToString(sum[:]); got != want {
			t.Errorf("pool %d: campaign table digest = %s, golden %s\ntable:\n%s",
				pool, got, want, c.Table())
		}
	}
}
