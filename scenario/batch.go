package scenario

import (
	"errors"

	"dronedse/parallelx"
)

// BatchChunkLanes is the fixed lane-chunk width a Batch fans through
// parallelx.MapChunks. Chunk boundaries depend only on the lane count, never
// on the pool size, so lane→worker assignment cannot perturb results (the
// PR-3 SLAM chunking discipline). Each lane is self-contained — its own RNG
// streams, fault injector, scratch — so co-tenant lanes cannot perturb it
// regardless of which chunk it lands in.
const BatchChunkLanes = 8

// batchTickStride is how many physics steps Run advances each live lane per
// parallel dispatch. Lanes are mutually independent, so interleaving
// granularity cannot change any lane's arithmetic; a coarse stride simply
// amortizes the per-dispatch goroutine fan-out (one simulated second per
// dispatch) while still bounding how far lanes drift apart.
const batchTickStride = 1000

// Batch steps N flights on one engine. Construction is struct-of-arrays at
// lane granularity: the batch owns flat per-lane slices (stacks, done flags,
// errors), and Tick advances every live lane exactly one physics step, in
// lane order within fixed-width chunks. The per-lane determinism contract:
// the same Spec + seed produces a bit-identical Result whether run serially
// via Run, as one lane of a 64-lane batch, or at any parallelx pool size.
type Batch struct {
	lanes []*Stack
	done  []bool
	errs  []error
	freed []int // evicted lane slots available for Admit reuse

	started bool
	live    int
}

// NewBatch builds one lane per Spec. A Spec whose Build fails does not abort
// the batch: the lane is born finished with its error recorded, mirroring
// how a campaign treats one bad scenario.
func NewBatch(specs []Spec) *Batch {
	b := &Batch{
		lanes: make([]*Stack, len(specs)),
		done:  make([]bool, len(specs)),
		errs:  make([]error, len(specs)),
	}
	for i, spec := range specs {
		st, err := Build(spec)
		if err != nil {
			b.done[i], b.errs[i] = true, err
			continue
		}
		b.lanes[i] = st
	}
	return b
}

// NewBatchOf wraps already-built stacks (callers that need to install
// cross-cutting wiring — telemetry links, observers — before batching).
func NewBatchOf(stacks ...*Stack) *Batch {
	b := &Batch{
		lanes: stacks,
		done:  make([]bool, len(stacks)),
		errs:  make([]error, len(stacks)),
	}
	for i, st := range stacks {
		if st == nil {
			b.done[i], b.errs[i] = true, errors.New("scenario: nil lane")
		}
	}
	return b
}

// Len returns the lane count.
func (b *Batch) Len() int { return len(b.lanes) }

// Live returns how many lanes are still flying.
func (b *Batch) Live() int {
	if !b.started {
		return 0
	}
	return b.live
}

// Lane exposes lane i's stack (nil when its Build failed or the lane was
// evicted).
func (b *Batch) Lane(i int) *Stack { return b.lanes[i] }

// LaneDone reports whether lane i has finished (normally, with an error, or
// by eviction).
func (b *Batch) LaneDone(i int) bool { return b.done[i] }

// LaneErr returns lane i's error, if any.
func (b *Batch) LaneErr(i int) error { return b.errs[i] }

// Admit installs an un-started stack as a new lane — reusing an evicted
// slot before growing the batch — and returns its lane index. On a started
// batch the lane is armed immediately (a Start failure finishes it with the
// error recorded, exactly as Start treats a founding lane). Because lanes
// are mutually isolated, a lane admitted mid-flight produces the same
// bit-identical Result it would have produced in a fresh batch: co-tenant
// count, admission order and slot index are all unobservable to it.
//
// Admit and Evict mutate the lane tables and must not run concurrently
// with TickN; fleet servers call both from the single engine goroutine
// that owns the batch.
func (b *Batch) Admit(st *Stack) int {
	var i int
	if n := len(b.freed); n > 0 {
		i = b.freed[n-1]
		b.freed = b.freed[:n-1]
		b.lanes[i], b.done[i], b.errs[i] = st, false, nil
	} else {
		i = len(b.lanes)
		b.lanes = append(b.lanes, st)
		b.done = append(b.done, false)
		b.errs = append(b.errs, nil)
	}
	if st == nil {
		b.done[i], b.errs[i] = true, errors.New("scenario: nil lane")
		return i
	}
	if b.started {
		if err := st.Start(); err != nil {
			b.done[i], b.errs[i] = true, err
		} else {
			b.live++
		}
	}
	return i
}

// Abort finishes a live lane immediately with the given reason, without
// advancing it further; the next Evict returns (nil, reason) since the lane
// never produced a Result. This is the service layer's kill switch — a
// fleet job blowing its wall-clock deadline, or a drain abandoning a lane —
// and like Admit/Evict it must only be called from the goroutine that owns
// the batch. Aborting a finished or evicted lane is a no-op.
func (b *Batch) Abort(i int, reason error) {
	if i < 0 || i >= len(b.lanes) || b.done[i] || b.lanes[i] == nil {
		return
	}
	if reason == nil {
		reason = errors.New("scenario: lane aborted")
	}
	b.done[i], b.errs[i] = true, reason
	if b.started {
		b.live--
	}
}

// LaneSimTimeS reports lane i's current simulated time in seconds (0 for a
// failed-Build or evicted lane) — the progress bookkeeping a resumable job
// host mirrors into its status API between ticks.
func (b *Batch) LaneSimTimeS(i int) float64 {
	if i < 0 || i >= len(b.lanes) || b.lanes[i] == nil {
		return 0
	}
	return b.lanes[i].SimTimeS()
}

// Evict finalizes a finished lane: it returns the lane's outcome, clears
// the slot, and marks it reusable by the next Admit. Evicting a live lane
// is an error (the lane keeps flying). After eviction the lane's Result is
// no longer reachable through Outcomes — the caller owns it.
func (b *Batch) Evict(i int) (*Result, error) {
	if !b.done[i] {
		return nil, errors.New("scenario: evicting a live lane")
	}
	st, err := b.lanes[i], b.errs[i]
	if st == nil && err == nil {
		return nil, errors.New("scenario: lane already evicted")
	}
	var res *Result
	if st != nil {
		res = st.Result()
	}
	b.lanes[i], b.errs[i] = nil, nil
	b.freed = append(b.freed, i)
	return res, err
}

// Start arms every lane without advancing simulated time. A lane whose
// Start fails finishes immediately with its error recorded.
func (b *Batch) Start() {
	if b.started {
		return
	}
	b.started = true
	for i, st := range b.lanes {
		if b.done[i] {
			continue
		}
		if err := st.Start(); err != nil {
			b.done[i], b.errs[i] = true, err
		}
	}
	b.recount()
}

// Tick advances every live lane exactly one physics step and reports whether
// the whole batch has finished. Lane chunks fan through parallelx; within a
// chunk lanes step in lane order.
func (b *Batch) Tick() (allDone bool) { return b.TickN(1) }

// TickN advances every live lane by up to k physics steps (fewer if the lane
// finishes) in one parallel dispatch, and reports whether the whole batch
// has finished. Because lanes never interact, the interleaving granularity
// is unobservable in any lane's Result.
func (b *Batch) TickN(k int) (allDone bool) {
	if !b.started {
		b.Start()
	}
	if b.live == 0 {
		return true
	}
	n := len(b.lanes)
	if parallelx.PoolSize() <= 1 || n <= BatchChunkLanes {
		b.tickRange(0, n, k)
	} else {
		parallelx.MapChunks(n, BatchChunkLanes, func(ci, lo, hi int) struct{} {
			b.tickRange(lo, hi, k)
			return struct{}{}
		})
	}
	b.recount()
	return b.live == 0
}

// tickRange steps lanes [lo, hi) by up to k ticks each. Chunks touch
// disjoint lane index ranges, so concurrent calls are race-free.
func (b *Batch) tickRange(lo, hi, k int) {
	for i := lo; i < hi; i++ {
		if b.done[i] {
			continue
		}
		st := b.lanes[i]
		for j := 0; j < k; j++ {
			done, err := st.Tick()
			if done {
				b.done[i], b.errs[i] = true, err
				break
			}
		}
	}
}

func (b *Batch) recount() {
	live := 0
	for _, d := range b.done {
		if !d {
			live++
		}
	}
	b.live = live
}

// Run drives the batch to completion and returns the per-lane outcomes in
// lane order. A lane's Result is nil exactly when its error is non-nil.
func (b *Batch) Run() ([]*Result, []error) {
	for !b.TickN(batchTickStride) {
	}
	return b.Outcomes()
}

// Outcomes returns the per-lane results and errors accumulated so far.
func (b *Batch) Outcomes() ([]*Result, []error) {
	results := make([]*Result, len(b.lanes))
	for i, st := range b.lanes {
		if st != nil {
			results[i] = st.Result()
		}
	}
	return results, b.errs
}

// RunBatch builds and flies one lane per Spec on the batch engine — the
// N-flight sibling of Run.
func RunBatch(specs []Spec) ([]*Result, []error) {
	return NewBatch(specs).Run()
}
