package platform

// RPiPhase is an operating phase of the companion computer during the
// Figure 16a experiment.
type RPiPhase int

// Phases in the order the paper's trace walks them.
const (
	// Disconnected: the meter reads the idle supply.
	Disconnected RPiPhase = iota
	// AutopilotRunning: Pi is on, ArduCopter-equivalent autopilot running.
	AutopilotRunning
	// AutopilotSLAMIdle: SLAM started but the drone is not flying, so the
	// pipeline idles on a static scene.
	AutopilotSLAMIdle
	// AutopilotSLAMFlying: SLAM actively processing flight imagery.
	AutopilotSLAMFlying
	// PiShutdown: Pi halted; the rail still feeds Navio2 and peripherals.
	PiShutdown
)

// String implements fmt.Stringer.
func (p RPiPhase) String() string {
	switch p {
	case Disconnected:
		return "disconnected"
	case AutopilotRunning:
		return "autopilot"
	case AutopilotSLAMIdle:
		return "autopilot+SLAM(idle)"
	case AutopilotSLAMFlying:
		return "autopilot+SLAM(flying)"
	default:
		return "shutdown"
	}
}

// RPiPhasePowerW returns the paper's measured average RPi power per phase
// (§5.1): 3.39 W running the autopilot, 4.05 W with SLAM started but idle,
// 4.56 W average (up to ~5 W) with SLAM active in flight.
func RPiPhasePowerW(p RPiPhase) float64 {
	switch p {
	case Disconnected:
		return 0.35
	case AutopilotRunning:
		return 3.39
	case AutopilotSLAMIdle:
		return 4.05
	case AutopilotSLAMFlying:
		return 4.56
	default: // PiShutdown: Navio2 + peripherals only
		return 1.1
	}
}

// RPiPhasePeakW returns the phase's peak draw (Figure 16a shows ~5 W bursts
// while SLAM is actively processing).
func RPiPhasePeakW(p RPiPhase) float64 {
	if p == AutopilotSLAMFlying {
		return 5.0
	}
	return RPiPhasePowerW(p) * 1.05
}
