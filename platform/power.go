package platform

// RPiPhase is an operating phase of the companion computer during the
// Figure 16a experiment.
type RPiPhase int

// Phases in the order the paper's trace walks them.
const (
	// Disconnected: the meter reads the idle supply.
	Disconnected RPiPhase = iota
	// AutopilotRunning: Pi is on, ArduCopter-equivalent autopilot running.
	AutopilotRunning
	// AutopilotSLAMIdle: SLAM started but the drone is not flying, so the
	// pipeline idles on a static scene.
	AutopilotSLAMIdle
	// AutopilotSLAMFlying: SLAM actively processing flight imagery.
	AutopilotSLAMFlying
	// PiShutdown: Pi halted; the rail still feeds Navio2 and peripherals.
	PiShutdown
)

// String implements fmt.Stringer.
func (p RPiPhase) String() string {
	switch p {
	case Disconnected:
		return "disconnected"
	case AutopilotRunning:
		return "autopilot"
	case AutopilotSLAMIdle:
		return "autopilot+SLAM(idle)"
	case AutopilotSLAMFlying:
		return "autopilot+SLAM(flying)"
	default:
		return "shutdown"
	}
}

// RPiPhasePowerW returns the paper's measured average RPi power per phase
// (§5.1): 3.39 W running the autopilot, 4.05 W with SLAM started but idle,
// 4.56 W average (up to ~5 W) with SLAM active in flight.
func RPiPhasePowerW(p RPiPhase) float64 {
	switch p {
	case Disconnected:
		return 0.35
	case AutopilotRunning:
		return 3.39
	case AutopilotSLAMIdle:
		return 4.05
	case AutopilotSLAMFlying:
		return 4.56
	default: // PiShutdown: Navio2 + peripherals only
		return 1.1
	}
}

// RPiPhasePeakW returns the phase's peak draw (Figure 16a shows ~5 W bursts
// while SLAM is actively processing).
func RPiPhasePeakW(p RPiPhase) float64 {
	if p == AutopilotSLAMFlying {
		return 5.0
	}
	return RPiPhasePowerW(p) * 1.05
}

// Navio2W is the Navio2 autopilot HAT's rail draw riding on top of the RPi
// phases above — the sensor/PWM board the paper's 450 mm platform stacks on
// the Pi. Every flight-stack wiring site draws the companion-computer
// budget from here rather than repeating the literal.
const Navio2W = 0.75

// FlightComputeW is the whole companion-computer draw of the paper's flight
// stack — RPi in the given workload phase plus the Navio2 HAT. It is the
// single definition behind flysim's 3.39+0.75 (autopilot only) and
// 4.56+0.75 (SLAM-class load active) operating points.
func FlightComputeW(slamActive bool) float64 {
	phase := AutopilotRunning
	if slamActive {
		phase = AutopilotSLAMFlying
	}
	return RPiPhasePowerW(phase) + Navio2W
}
