package platform

import (
	"dronedse/components"
	"dronedse/core"
	"dronedse/mathx"
	"dronedse/slam"
)

// Table5Row is one column of the paper's Table 5 for one drone class.
type Table5Row struct {
	Platform        string
	Speedup         float64
	PowerOverheadW  float64
	WeightOverheadG float64
	IntegrationCost CostClass
	FabricationCost CostClass
	// GainedSmallMin / GainedLargeMin are the flight time gained (min)
	// vs. the RPi baseline on a small and a large drone, at the paper's
	// 15-minute baseline flight time.
	GainedSmallMin float64
	GainedLargeMin float64
}

// Table5BaselineFlightMin is the paper's stated baseline.
const Table5BaselineFlightMin = 15.0

// Hosting powers for the gained-flight-time arithmetic. Table 5's "power
// overhead" column lists the SLAM increment (RPi: 2 W), but the paper's
// §5.2 gain arithmetic swaps whole hosting platforms: the full RPi draws
// ~5 W with SLAM active (Figure 16a); the TX2/FPGA/ASIC numbers already are
// whole-platform envelopes.
func hostingPowerW(pl Platform) float64 {
	if pl.Name == "RPi" {
		return 5
	}
	return pl.PowerOverheadW
}

// Representative total power envelopes for the two drone classes in the
// gains arithmetic (§5.2 uses ≈50 W small and ≈140 W large totals; Table
// 5's published gains are consistent with ≈25 W / ≈75 W hover envelopes).
const (
	smallDroneTotalW = 25.0
	largeDroneTotalW = 75.0
)

// gainedVsRPi follows the paper's Equation 7 approximation: power saved
// over total power, times the 15-minute baseline. The paper's published
// gains are power-only — its own footnote that the ASIC beats the FPGA by
// "only 20 seconds" on small drones matches exactly this arithmetic, and
// the weight column is reported but not folded in. The full
// weight-ripple-resolved alternative is Table5Exact.
func gainedVsRPi(pl Platform, totalPowerW float64) float64 {
	saved := hostingPowerW(RPi()) - hostingPowerW(pl)
	return core.ApproxGainedFlightTimeMin(totalPowerW, saved, Table5BaselineFlightMin)
}

// Table5 computes the full platform-comparison table from the measured SLAM
// work ledger (for speedups) and the paper's gain arithmetic. stats should
// aggregate the 11 EuRoC sequences.
func Table5(stats []slam.Stats) []Table5Row {
	base := RPi()
	var rows []Table5Row
	for _, pl := range All() {
		var sp []float64
		for _, st := range stats {
			sp = append(sp, Speedup(base, pl, st))
		}
		rows = append(rows, Table5Row{
			Platform:        pl.Name,
			Speedup:         mathx.GeoMean(sp),
			PowerOverheadW:  pl.PowerOverheadW,
			WeightOverheadG: pl.WeightOverheadG,
			IntegrationCost: pl.IntegrationCost,
			FabricationCost: pl.FabricationCost,
			GainedSmallMin:  gainedVsRPi(pl, smallDroneTotalW),
			GainedLargeMin:  gainedVsRPi(pl, largeDroneTotalW),
		})
	}
	return rows
}

// Table5Exact recomputes the gained-flight-time columns with the full
// design-space closure (Equation 1 weight ripple included): the compute
// platform's weight changes motors, ESCs, and therefore power. This is the
// repo's ablation of the paper's power-only approximation; it shows the
// FPGA's +25 g over the RPi eats most of its power win on small drones.
func Table5Exact(params core.Params) (small, large map[string]float64, err error) {
	mkSmall := func(pl Platform) core.Spec {
		return core.Spec{
			WheelbaseMM: 200, Cells: 2, CapacityMah: 2700, TWR: 2,
			Compute: components.ComputeTier{
				Name:    "FC + " + pl.Name,
				PowerW:  1 + hostingPowerW(pl),
				WeightG: 10 + pl.WeightOverheadG,
			},
			ESCClass: components.LongFlight,
		}
	}
	mkLarge := func(pl Platform) core.Spec {
		return core.Spec{
			WheelbaseMM: 450, Cells: 3, CapacityMah: 3000, TWR: 2,
			Compute: components.ComputeTier{
				Name:    "Navio2 + " + pl.Name,
				PowerW:  1 + hostingPowerW(pl),
				WeightG: 25 + pl.WeightOverheadG,
			},
			ESCClass: components.LongFlight,
		}
	}
	small = map[string]float64{}
	large = map[string]float64{}
	for _, mk := range []struct {
		spec func(Platform) core.Spec
		out  map[string]float64
	}{{mkSmall, small}, {mkLarge, large}} {
		base, err := core.Resolve(mk.spec(RPi()), params)
		if err != nil {
			return nil, nil, err
		}
		baseMin := base.HoverFlightTimeMin()
		for _, pl := range All() {
			d, err := core.Resolve(mk.spec(pl), params)
			if err != nil {
				return nil, nil, err
			}
			mk.out[pl.Name] = (d.HoverFlightTimeMin() - baseMin) *
				(Table5BaselineFlightMin / baseMin)
		}
	}
	return small, large, nil
}
