package platform

import (
	"math"
	"testing"

	"dronedse/core"
	"dronedse/dataset"
	"dronedse/mathx"
	"dronedse/slam"
)

// runStats executes a subset of the EuRoC suite once per test binary.
var cachedStats []slam.Stats

func euRoCStats(t *testing.T) []slam.Stats {
	t.Helper()
	if cachedStats != nil {
		return cachedStats
	}
	specs := dataset.EuRoCSpecs()
	if testing.Short() {
		specs = specs[:3]
	}
	for _, spec := range specs {
		seq, err := dataset.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		cachedStats = append(cachedStats, slam.RunSequence(seq).Stats)
	}
	return cachedStats
}

func TestPlatformSetMatchesTable5Constants(t *testing.T) {
	byName := map[string]Platform{}
	for _, p := range All() {
		byName[p.Name] = p
	}
	check := func(name string, power, weight float64) {
		t.Helper()
		p, ok := byName[name]
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if p.PowerOverheadW != power || p.WeightOverheadG != weight {
			t.Errorf("%s = %.3g W / %.0f g, Table 5 says %.3g W / %.0f g",
				name, p.PowerOverheadW, p.WeightOverheadG, power, weight)
		}
	}
	check("RPi", 2, 50)
	check("TX2", 10, 85)
	check("FPGA", 0.417, 75)
	check("ASIC", 0.024, 20)
	if byName["FPGA"].IntegrationCost != Medium || byName["ASIC"].FabricationCost != High {
		t.Error("cost classes disagree with Table 5")
	}
}

// TestFigure17Speedups is the headline Figure 17 reproduction: TX2 GMean
// ≈2.16x, FPGA GMean ≈30.7x over the RPi across the 11 sequences.
func TestFigure17Speedups(t *testing.T) {
	stats := euRoCStats(t)
	base := RPi()
	var tx2s, fpgas, asics []float64
	for _, st := range stats {
		tx2s = append(tx2s, Speedup(base, TX2(), st))
		fpgas = append(fpgas, Speedup(base, FPGA(), st))
		asics = append(asics, Speedup(base, ASIC(), st))
	}
	if g := mathx.GeoMean(tx2s); !mathx.WithinRel(g, 2.16, 0.15) {
		t.Errorf("TX2 GMean = %.2f, paper 2.16", g)
	}
	if g := mathx.GeoMean(fpgas); !mathx.WithinRel(g, 30.7, 0.15) {
		t.Errorf("FPGA GMean = %.1f, paper 30.7", g)
	}
	if g := mathx.GeoMean(asics); !mathx.WithinRel(g, 23.53, 0.15) {
		t.Errorf("ASIC GMean = %.1f, paper 23.53", g)
	}
	// Ordering: FPGA > ASIC > TX2 > RPi (the paper's landscape).
	if !(mathx.GeoMean(fpgas) > mathx.GeoMean(asics) && mathx.GeoMean(asics) > mathx.GeoMean(tx2s)) {
		t.Error("platform speedup ordering violated")
	}
}

// TestRealTime confirms §5.2's observation that every implementation meets
// the 20 FPS sensor rate.
func TestRealTime(t *testing.T) {
	stats := euRoCStats(t)
	for _, pl := range All() {
		for i, st := range stats {
			if fps := pl.FPS(st); fps < 20 {
				t.Errorf("%s on sequence %d: %.1f FPS, below the 20 FPS camera", pl.Name, i, fps)
			}
		}
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	stats := euRoCStats(t)
	b := Breakdown(RPi(), FPGA(), "MH01", stats[0])
	sum := b.FrontEnd + b.LocalBA + b.GlobalBA
	if math.Abs(sum-b.Total) > 1e-9*b.Total {
		t.Errorf("stacked categories sum to %v, total %v", sum, b.Total)
	}
	// BA must dominate the stacked bar, as in Figure 17.
	if b.LocalBA+b.GlobalBA < b.FrontEnd {
		t.Error("BA does not dominate the FPGA speedup bar")
	}
}

func TestSeparateRPi(t *testing.T) {
	stats := euRoCStats(t)
	sp := Speedup(RPi(), SeparateRPi(), stats[0])
	if !mathx.WithinRel(sp, 2.3, 0.01) {
		t.Errorf("separate RPi speedup = %.2f, paper reports 2.3x", sp)
	}
}

// TestTable5 checks the platform-comparison table against the paper's
// published rows.
func TestTable5(t *testing.T) {
	rows := Table5(euRoCStats(t))
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Platform] = r
	}
	// TX2 loses flight time on both classes (paper: ≈-4 and ≈-1.5 min).
	if g := byName["TX2"].GainedSmallMin; g < -5 || g > -2 {
		t.Errorf("TX2 small-drone gain = %.2f, paper ≈-4", g)
	}
	if g := byName["TX2"].GainedLargeMin; g < -2.5 || g > -0.5 {
		t.Errorf("TX2 large-drone gain = %.2f, paper ≈-1.5", g)
	}
	// FPGA gains ≈2-3 small, ≈1 large.
	if g := byName["FPGA"].GainedSmallMin; g < 1.8 || g > 3.3 {
		t.Errorf("FPGA small-drone gain = %.2f, paper ≈2-3", g)
	}
	if g := byName["FPGA"].GainedLargeMin; g < 0.5 || g > 1.5 {
		t.Errorf("FPGA large-drone gain = %.2f, paper ≈1", g)
	}
	// ASIC ≈2.2-3.2 small, ≈1 large; beats FPGA by only ~seconds.
	if g := byName["ASIC"].GainedSmallMin; g < 2.2 || g > 3.4 {
		t.Errorf("ASIC small-drone gain = %.2f, paper ≈2.2-3.2", g)
	}
	if d := byName["ASIC"].GainedSmallMin - byName["FPGA"].GainedSmallMin; d < 0 || d > 0.75 {
		t.Errorf("ASIC-FPGA small gap = %.2f min, paper says ~20 seconds", d)
	}
	if byName["RPi"].GainedSmallMin != 0 || byName["RPi"].GainedLargeMin != 0 {
		t.Error("baseline gains must be zero")
	}
}

// TestTable5Exact is the repo's ablation: with the full Equation 1 weight
// ripple, the FPGA's weight overhead eats most of its small-drone power win
// — a caveat the paper's power-only arithmetic hides.
func TestTable5Exact(t *testing.T) {
	small, large, err := Table5Exact(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if small["TX2"] >= 0 || large["TX2"] >= 0 {
		t.Error("TX2 must lose flight time under the exact model too")
	}
	if small["ASIC"] <= 0 {
		t.Error("ASIC must gain under the exact model (lighter AND thriftier)")
	}
	approx := Table5(euRoCStats(t))
	var fpgaApprox float64
	for _, r := range approx {
		if r.Platform == "FPGA" {
			fpgaApprox = r.GainedSmallMin
		}
	}
	if small["FPGA"] >= fpgaApprox {
		t.Error("weight ripple should reduce the FPGA's small-drone gain vs the power-only approximation")
	}
}

// TestESLAMAblation quantifies why the paper integrates the eSLAM
// front-end accelerator: with bundle adjustment at 39x but feature
// extraction left on the ARM cores, Amdahl's law caps the FPGA below ~8x;
// eSLAM recovers the published ~31x.
func TestESLAMAblation(t *testing.T) {
	stats := euRoCStats(t)
	base := RPi()
	var with, without []float64
	for _, st := range stats {
		with = append(with, Speedup(base, FPGA(), st))
		without = append(without, Speedup(base, FPGANoESLAM(), st))
	}
	gWith, gWithout := mathx.GeoMean(with), mathx.GeoMean(without)
	if gWithout >= gWith/3 {
		t.Errorf("no-eSLAM FPGA at %.1fx is too close to the full %.1fx; Amdahl cap missing", gWithout, gWith)
	}
	if gWithout < 4 || gWithout > 10 {
		t.Errorf("no-eSLAM FPGA GMean = %.1fx, expected ~5-8x (front end ~13%% of time)", gWithout)
	}
}

func TestRPiPhasePower(t *testing.T) {
	// §5.1 measured values.
	if RPiPhasePowerW(AutopilotRunning) != 3.39 {
		t.Error("autopilot phase power wrong")
	}
	if RPiPhasePowerW(AutopilotSLAMIdle) != 4.05 {
		t.Error("SLAM-idle phase power wrong")
	}
	if RPiPhasePowerW(AutopilotSLAMFlying) != 4.56 {
		t.Error("SLAM-flying phase power wrong")
	}
	if RPiPhasePeakW(AutopilotSLAMFlying) != 5.0 {
		t.Error("peak power should reach 5 W while SLAM is active")
	}
	// Monotone phase ordering.
	order := []RPiPhase{Disconnected, PiShutdown, AutopilotRunning, AutopilotSLAMIdle, AutopilotSLAMFlying}
	for i := 1; i < len(order); i++ {
		if RPiPhasePowerW(order[i]) <= RPiPhasePowerW(order[i-1]) {
			t.Errorf("phase power not increasing at %v", order[i])
		}
	}
	for _, p := range order {
		if p.String() == "" {
			t.Error("phase missing a name")
		}
	}
}

func TestCostClassString(t *testing.T) {
	if Low.String() != "Low" || Medium.String() != "Medium" || High.String() != "High" {
		t.Error("cost class strings wrong")
	}
}
