// Package platform models the hardware targets of §5.2: the Raspberry Pi
// baseline, a second dedicated RPi, the Nvidia Jetson TX2, the ZYNQ
// XC7Z020 FPGA (Vivado HLS fixed-size matrix pipeline at 100 MHz), and the
// Navion-style ASIC. Each platform retimes the SLAM work ledger
// (slam.Stats) with per-kernel throughputs, reproducing Figure 17's
// per-sequence speedups and Table 5's platform comparison; power and weight
// overheads feed the design-space core (Equations 6-7) to produce the
// gained-flight-time column.
package platform

import (
	"fmt"

	"dronedse/slam"
)

// Kernel identifies a SLAM pipeline stage for throughput modeling.
type Kernel int

// Kernels (Figure 17's three categories; tracking's pose optimization is
// accounted with matching in the front end).
const (
	FeatureExtraction Kernel = iota
	Matching
	LocalBA
	GlobalBA
)

// CostClass grades integration/fabrication cost (Table 5).
type CostClass int

// Cost classes.
const (
	Low CostClass = iota
	Medium
	High
)

// String implements fmt.Stringer.
func (c CostClass) String() string {
	switch c {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	default:
		return "High"
	}
}

// Platform is one hardware target.
type Platform struct {
	Name string
	// Throughput is ops/second per kernel (slam.Stats ledger units).
	Throughput map[Kernel]float64
	// PowerOverheadW and WeightOverheadG are Table 5's published rows:
	// the power and weight added to the drone by hosting SLAM here.
	PowerOverheadW  float64
	WeightOverheadG float64
	IntegrationCost CostClass
	FabricationCost CostClass
	// PaperSpeedup is the published GMean speedup over RPi (Table 5),
	// kept for harness comparison, not used in computation.
	PaperSpeedup float64
	// MemBandwidthGBs is the platform's raw memory bandwidth in GB/s
	// (spec sheet / STREAM-class numbers), the input the roofline model
	// derates by a microarch-simulated streaming efficiency to get the
	// memory ceiling.
	MemBandwidthGBs float64
}

// rpiOps is the RPi's effective ledger throughput, calibrated so a
// 20 FPS EuRoC-like sequence takes the RPi roughly 40-50 ms per frame —
// real-time at camera rate with little margin, like ORB-SLAM2 on an RPi4
// running nothing else.
const rpiOps = 300e6

// ScalarOpsPerSec is the generic scalar-core ledger throughput of the
// RPi-class flight computer that hosts the non-SLAM kernels (EKF, control):
// those loops run on the autopilot host whichever SLAM accelerator is
// fitted, so their compute roof does not scale with the platform.
const ScalarOpsPerSec = rpiOps

// RPi is the co-located baseline (Raspberry Pi 4): the SLAM share of its
// power is ~2 W (§5.1: autopilot 3.39 W → 5 W peak with SLAM active).
func RPi() Platform {
	return Platform{
		Name: "RPi",
		Throughput: map[Kernel]float64{
			FeatureExtraction: rpiOps,
			Matching:          rpiOps,
			LocalBA:           rpiOps * 0.95, // scalar FP matrix code
			GlobalBA:          rpiOps * 0.95,
		},
		PowerOverheadW:  2,
		WeightOverheadG: 50,
		IntegrationCost: Low,
		FabricationCost: Low,
		PaperSpeedup:    1,
		MemBandwidthGBs: 4.0,
	}
}

// TX2 is the Jetson TX2: the GPU lifts feature extraction and matching
// ~3x, but the irregular sparse BA gains only ~2.1x (§5.2: 2.16x overall).
func TX2() Platform {
	return Platform{
		Name: "TX2",
		Throughput: map[Kernel]float64{
			FeatureExtraction: rpiOps * 3.0,
			Matching:          rpiOps * 3.0,
			LocalBA:           rpiOps * 2.08,
			GlobalBA:          rpiOps * 2.08,
		},
		PowerOverheadW:  10,
		WeightOverheadG: 85,
		IntegrationCost: Low,
		FabricationCost: Low,
		PaperSpeedup:    2.16,
		MemBandwidthGBs: 59.7,
	}
}

// FPGA is the ZYNQ XC7Z020 implementation: a pipeline of dense fixed-size
// matrix-algebra modules accelerates local and global bundle adjustment
// (≈90% of RPi time) ~39x, with eSLAM-style feature extraction at ~13x
// (§5.2: 30.7x overall at 417 mW).
func FPGA() Platform {
	return Platform{
		Name: "FPGA",
		Throughput: map[Kernel]float64{
			FeatureExtraction: rpiOps * 13,
			Matching:          rpiOps * 13,
			LocalBA:           rpiOps * 39,
			GlobalBA:          rpiOps * 39,
		},
		PowerOverheadW:  0.417,
		WeightOverheadG: 75,
		IntegrationCost: Medium,
		FabricationCost: Medium,
		PaperSpeedup:    30.7,
		MemBandwidthGBs: 4.26,
	}
}

// FPGANoESLAM is the ablation of the paper's note that "for further
// acceleration, we also integrate eSLAM design, which accelerates feature
// extraction": the same BA matrix pipeline but with the front end left on
// the embedded ARM cores at baseline speed. Amdahl's law caps the overall
// speedup near 1/(front-end share) — the experiment that justifies the
// eSLAM integration.
func FPGANoESLAM() Platform {
	p := FPGA()
	p.Name = "FPGA (no eSLAM)"
	p.Throughput[FeatureExtraction] = rpiOps
	p.Throughput[Matching] = rpiOps
	p.PaperSpeedup = 0 // not a published row
	return p
}

// ASIC is the Navion-style 65 nm accelerator: 24 mW, real-time at 20 FPS;
// the paper credits it 23.53x overall.
func ASIC() Platform {
	return Platform{
		Name: "ASIC",
		Throughput: map[Kernel]float64{
			FeatureExtraction: rpiOps * 25,
			Matching:          rpiOps * 25,
			LocalBA:           rpiOps * 23.4,
			GlobalBA:          rpiOps * 23.4,
		},
		PowerOverheadW:  0.024,
		WeightOverheadG: 20,
		IntegrationCost: High,
		FabricationCost: High,
		PaperSpeedup:    23.53,
		MemBandwidthGBs: 8.0,
	}
}

// All returns the Table 5 platform set in the paper's column order.
func All() []Platform {
	return []Platform{RPi(), TX2(), FPGA(), ASIC()}
}

// SeqTime returns the modeled seconds the platform spends executing a
// sequence's SLAM work, split per kernel.
func (p Platform) SeqTime(st slam.Stats) (total, fe, lba, gba float64) {
	fe = float64(st.FeatureExtractionOps)/p.Throughput[FeatureExtraction] +
		float64(st.MatchingOps)/p.Throughput[Matching]
	lba = float64(st.LocalBAOps) / p.Throughput[LocalBA]
	// The pose-graph solve is ledgered separately (for the roofline model)
	// but retimed in the global-BA bucket, matching Figure 17's grouping.
	gba = float64(st.GlobalBAOps+st.PoseGraphOps) / p.Throughput[GlobalBA]
	return fe + lba + gba, fe, lba, gba
}

// FPS returns the modeled processed-frame rate of a sequence on the
// platform; real time requires >= the sensor's 20 FPS.
func (p Platform) FPS(st slam.Stats) float64 {
	total, _, _, _ := p.SeqTime(st)
	if total <= 0 || st.Frames == 0 {
		return 0
	}
	return float64(st.Frames) / total
}

// Speedup is the platform's end-to-end speedup over a baseline for the
// same work ledger.
func Speedup(base, target Platform, st slam.Stats) float64 {
	bt, _, _, _ := base.SeqTime(st)
	tt, _, _, _ := target.SeqTime(st)
	if tt <= 0 {
		return 0
	}
	return bt / tt
}

// SpeedupBreakdown is one Figure 17 bar: the per-category contribution of a
// platform's speedup on one sequence, where each category's value is the
// share of baseline time it removes, stacked to the total speedup as in the
// figure.
type SpeedupBreakdown struct {
	Sequence string
	Platform string
	Total    float64
	// FrontEnd/LocalBA/GlobalBA split the total speedup proportionally to
	// each category's share of baseline time, as the stacked bars do.
	FrontEnd float64
	LocalBA  float64
	GlobalBA float64
}

// Breakdown computes the Figure 17 stacked bar for a sequence result.
func Breakdown(base, target Platform, name string, st slam.Stats) SpeedupBreakdown {
	bTot, bFE, bLBA, bGBA := base.SeqTime(st)
	total := Speedup(base, target, st)
	if bTot <= 0 {
		return SpeedupBreakdown{Sequence: name, Platform: target.Name}
	}
	return SpeedupBreakdown{
		Sequence: name,
		Platform: target.Name,
		Total:    total,
		FrontEnd: total * bFE / bTot,
		LocalBA:  total * bLBA / bTot,
		GlobalBA: total * bGBA / bTot,
	}
}

// SeparateRPi models moving SLAM to a second dedicated RPi: §5.2 reports
// tracking improves 2.3x simply by removing co-residency interference (the
// Figure 15 IPC recovery). The work ledger is unchanged; only effective
// throughput rises.
func SeparateRPi() Platform {
	p := RPi()
	p.Name = "Separate RPi"
	for k := range p.Throughput {
		p.Throughput[k] *= 2.3
	}
	p.PowerOverheadW = 5 // a whole second board
	p.WeightOverheadG = 50
	p.PaperSpeedup = 2.3
	return p
}

// String implements fmt.Stringer.
func (p Platform) String() string {
	return fmt.Sprintf("%s (%.3g W, %.0f g)", p.Name, p.PowerOverheadW, p.WeightOverheadG)
}
