package mission

import (
	"fmt"

	"dronedse/autopilot"
)

// WireSpec is the serializable form of a workload — the tagged union that
// rides in fleet.JobSpec and on the fleetd wire. KindName selects the
// variant; the matching payload field (if the kind takes parameters)
// configures it. WireSpec itself implements Workload by delegating to the
// resolved concrete workload, so a scenario.Spec can carry either form
// untouched.
type WireSpec struct {
	// KindName: "box", "hover", "waypoints", "trajectory", "coverage",
	// "delivery" or "follow". Empty means "box".
	KindName string `json:"kind"`

	// Plan configures kind "waypoints".
	Plan autopilot.MissionPlan `json:"plan,omitempty"`
	// Trajectory configures kind "trajectory" (wire form: path + limits).
	Trajectory *Trajectory `json:"trajectory,omitempty"`
	// Coverage configures kind "coverage".
	Coverage *Coverage `json:"coverage,omitempty"`
	// Delivery configures kind "delivery".
	Delivery *Delivery `json:"delivery,omitempty"`
	// Follow configures kind "follow".
	Follow *Follow `json:"follow,omitempty"`
}

// Resolve returns the concrete workload the spec describes. A nil payload
// field falls back to the kind's default configuration (for delivery, the
// DefaultDelivery demo plan — an empty Legs slice would fail validation).
func (w WireSpec) Resolve() (Workload, error) {
	switch w.KindName {
	case "", "box":
		return Box{}, nil
	case "hover":
		return Hover{}, nil
	case "waypoints":
		return Waypoints{Plan: w.Plan}, nil
	case "trajectory":
		if w.Trajectory == nil {
			return nil, fmt.Errorf("mission: wire kind %q needs a trajectory payload", w.KindName)
		}
		return *w.Trajectory, nil
	case "coverage":
		if w.Coverage == nil {
			return Coverage{}, nil
		}
		return *w.Coverage, nil
	case "delivery":
		if w.Delivery == nil {
			return DefaultDelivery(), nil
		}
		return *w.Delivery, nil
	case "follow":
		if w.Follow == nil {
			return Follow{}, nil
		}
		return *w.Follow, nil
	default:
		return nil, fmt.Errorf("mission: unknown workload kind %q", w.KindName)
	}
}

// Kind implements Workload ("" normalizes to "box").
func (w WireSpec) Kind() string {
	if w.KindName == "" {
		return "box"
	}
	return w.KindName
}

// Validate implements Workload.
func (w WireSpec) Validate() error {
	wl, err := w.Resolve()
	if err != nil {
		return err
	}
	return wl.Validate()
}

// HorizonS implements Workload.
func (w WireSpec) HorizonS(maxSeconds float64) float64 {
	wl, err := w.Resolve()
	if err != nil {
		return maxSeconds + 60
	}
	return wl.HorizonS(maxSeconds)
}

// New implements Workload.
func (w WireSpec) New(ctx Context) (Driver, error) {
	wl, err := w.Resolve()
	if err != nil {
		return nil, err
	}
	return wl.New(ctx)
}

// Named maps a CLI workload name to its default-configured workload —
// flysim's and faultcamp's -workload flag.
func Named(kind string) (Workload, error) {
	return WireSpec{KindName: kind}.Resolve()
}
