// Package mission is the pluggable workload layer: MAVBench-style flight
// profiles (box survey, hover, trajectory, coverage mapping, multi-leg
// delivery, moving-target follow) expressed against one small interface the
// scenario driver executes, instead of a union of special cases inside the
// engine.
//
// The split mirrors the engine's determinism architecture. A Workload is a
// declarative, immutable value — safe to share across batch lanes, embed in
// a fleet JobSpec, or reuse between campaign flights — while every per-flight
// byte of mutable state lives in the Driver a Workload instantiates per
// stack. Drivers express their phase timeouts as integer step budgets
// computed with the same int(seconds*hz) truncation the historical blocking
// Run used, and their done conditions are pure mode/counter checks, so a
// flight driven through a Workload is bit-identical to the pre-refactor
// state machine (pinned by the scenario golden tests).
package mission

import (
	"math"

	"dronedse/autopilot"
	"dronedse/mathx"
)

// Context carries the spec-level knobs a Workload needs to instantiate its
// per-flight Driver. It is derived from the normalized scenario.Spec.
type Context struct {
	// Seed is the flight's master seed; workloads with stochastic content
	// (the follow target's route) derive their streams from it, exactly
	// like faultx derives fault plans.
	Seed int64
	// TakeoffAltM is the resolved takeoff altitude.
	TakeoffAltM float64
	// MaxSeconds bounds the whole flight.
	MaxSeconds float64
}

// Host is the engine-side surface a Driver commands: the autopilot plus the
// two effects a workload may push back into the engine — progress phases and
// mid-mission payload mass (which re-enters the plant dynamics and the
// position controller's feedforward, the Equation 1 closure made physical).
type Host interface {
	// AP returns the flight stack's autopilot.
	AP() *autopilot.Autopilot
	// MissionStarted fires the engine's mission-started progress phase.
	MissionStarted()
	// SetPayloadKg sets the carried payload point mass on the plant and the
	// controller feedforward. Zero restores the bare design mass.
	SetPayloadKg(kg float64)
}

// Workload is a declarative flight profile. Implementations must be pure
// values: New may not mutate the receiver, so one Workload can be shared by
// any number of concurrent batch lanes.
type Workload interface {
	// Kind is the workload's wire name ("box", "hover", "trajectory",
	// "waypoints", "coverage", "delivery", "follow").
	Kind() string
	// Validate checks the declarative parameters; the fleet API maps its
	// errors to HTTP 400 before a job is accepted.
	Validate() error
	// HorizonS is the worst-case post-takeoff flight duration in seconds
	// (loiter/mission plus landing watch) given the Spec's MaxSeconds; the
	// engine pre-sizes every per-step recording path from it so steady-state
	// stepping never grows an append.
	HorizonS(maxSeconds float64) float64
	// New instantiates the per-flight Driver. All mutable state lives in
	// the returned Driver; construction errors (infeasible payloads, empty
	// coverage areas) surface as scenario.Build errors.
	New(ctx Context) (Driver, error)
}

// Driver is one flight's workload state machine. The engine owns the fixed
// prologue — arm, 30 s takeoff watch — and hands over at Begin:
//
//	Start(h)            before arming (load missions; errors abort the run)
//	Begin(h, takeoffOK) when the takeoff phase resolves; done=true ends the
//	                    flight immediately (a zero step budget), matching
//	                    the historical enter-with-spent-budget semantics
//	Step(h)             after every subsequent physics step; true ends the
//	                    flight
//	Outcome()           the workload scorecard, read once the flight is done
//
// Step runs on the engine's hot path and must not allocate: the batch
// zero-steady-state-alloc guard covers every shipped workload.
type Driver interface {
	Start(h Host) error
	Begin(h Host, takeoffOK bool) (done bool, err error)
	Step(h Host) bool
	Outcome() Outcome
}

// Outcome is the per-workload scorecard attached to a scenario Result. Kind
// and Completed are universal; the remaining fields are populated by the
// workloads they belong to.
type Outcome struct {
	Kind      string `json:"kind"`
	Completed bool   `json:"completed"`

	// Delivery: legs delivered, payload mass dropped off, and the per-phase
	// design-model predictions (Equation 1 closure total mass and Equation 5
	// hover endurance for each carried-mass phase, empty-handed first).
	LegsDone          int       `json:"legs_done,omitempty"`
	DeliveredKg       float64   `json:"delivered_kg,omitempty"`
	PhaseTotalG       []float64 `json:"phase_total_g,omitempty"`
	PhaseEnduranceMin []float64 `json:"phase_endurance_min,omitempty"`

	// Coverage: fraction of the planned survey lanes actually visited.
	CoverageFrac float64 `json:"coverage_frac,omitempty"`

	// Follow: standoff tracking error, sampled at 10 Hz while following.
	MeanTrackErrM float64 `json:"mean_track_err_m,omitempty"`
	MaxTrackErrM  float64 `json:"max_track_err_m,omitempty"`
}

// stepBudget converts a seconds budget into physics steps with the same
// truncation RunFor/RunUntil historically used — the arithmetic the golden
// tests pin.
func stepBudget(seconds, hz float64) int { return int(seconds * hz) }

// finiteVec reports whether every component is a finite number.
func finiteVec(v mathx.Vec3) bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// finite reports whether v is a finite number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
