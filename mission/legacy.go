package mission

import (
	"errors"
	"fmt"

	"dronedse/autopilot"
	"dronedse/mathx"
	"dronedse/planner"
)

// BoxPlan is the reference 12 m box mission at the given takeoff altitude —
// the plan cmd/flysim, faultx campaigns and bench.RunFigure16 all fly, so
// their outputs stay mutually bit-comparable. scenario.BoxMission delegates
// here.
func BoxPlan(altM float64) autopilot.MissionPlan {
	return autopilot.MissionPlan{
		{Pos: mathx.V3(12, 0, altM+1), HoldS: 1},
		{Pos: mathx.V3(12, 12, altM+3), HoldS: 1},
		{Pos: mathx.V3(0, 12, altM+1), HoldS: 1},
	}
}

// Box is the zero-configuration reference workload: the 12 m box mission at
// the Spec's takeoff altitude. It is what a scenario.Spec with no workload
// and no legacy mission fields flies.
type Box struct{}

// Kind implements Workload.
func (Box) Kind() string { return "box" }

// Validate implements Workload; the box has no parameters.
func (Box) Validate() error { return nil }

// HorizonS implements Workload: the mission window plus the landing watch.
func (Box) HorizonS(maxSeconds float64) float64 { return maxSeconds + 60 }

// New implements Workload.
func (Box) New(ctx Context) (Driver, error) {
	return &waypointDriver{kind: "box", plan: BoxPlan(ctx.TakeoffAltM), maxS: ctx.MaxSeconds}, nil
}

// Waypoints flies an explicit autopilot mission plan — the adapter for the
// legacy scenario.Spec.Mission field and the wire form for tenant-supplied
// waypoint missions.
type Waypoints struct {
	Plan autopilot.MissionPlan `json:"plan"`
}

// Kind implements Workload.
func (Waypoints) Kind() string { return "waypoints" }

// Validate implements Workload, mirroring autopilot.LoadMission's checks
// plus finiteness (wire input).
func (w Waypoints) Validate() error {
	if len(w.Plan) == 0 {
		return errors.New("mission: empty waypoint plan")
	}
	for i, wp := range w.Plan {
		if !finiteVec(wp.Pos) || !finite(wp.HoldS) || !finite(wp.AcceptRadiusM) {
			return fmt.Errorf("mission: waypoint %d not finite", i)
		}
		if wp.Pos.Z <= 0 {
			return fmt.Errorf("mission: waypoint %d below ground", i)
		}
	}
	return nil
}

// HorizonS implements Workload.
func (Waypoints) HorizonS(maxSeconds float64) float64 { return maxSeconds + 60 }

// New implements Workload.
func (w Waypoints) New(ctx Context) (Driver, error) {
	return &waypointDriver{kind: "waypoints", plan: w.Plan, maxS: ctx.MaxSeconds}, nil
}

// waypointDriver executes a waypoint mission with the engine's historical
// semantics: StartMission at takeoff resolution, then fly until the vehicle
// disarms or the MaxSeconds window (counted from t=0, takeoff included)
// lapses. Box, Waypoints, Coverage and Delivery all run on it.
type waypointDriver struct {
	kind   string
	plan   autopilot.MissionPlan
	maxS   float64
	budget int
	out    Outcome

	// onStep, when non-nil, observes every flown step (delivery's payload
	// watcher). onDone, when non-nil, decorates the outcome.
	onStep func(h Host)
	onDone func(h Host, out *Outcome)
}

func (d *waypointDriver) Start(h Host) error { return h.AP().LoadMission(d.plan) }

func (d *waypointDriver) Begin(h Host, takeoffOK bool) (bool, error) {
	ap := h.AP()
	if takeoffOK {
		if err := ap.StartMission(); err == nil {
			h.MissionStarted()
		}
	}
	d.budget = stepBudget(d.maxS-ap.Time(), ap.PhysicsHz())
	if d.budget <= 0 {
		d.finish(h)
		return true, nil
	}
	return false, nil
}

func (d *waypointDriver) Step(h Host) bool {
	d.budget--
	if d.onStep != nil {
		d.onStep(h)
	}
	if h.AP().Mode() == autopilot.Disarmed || d.budget <= 0 {
		d.finish(h)
		return true
	}
	return false
}

func (d *waypointDriver) finish(h Host) {
	d.out = Outcome{Kind: d.kind, Completed: h.AP().MissionCompleted()}
	if d.onDone != nil {
		d.onDone(h, &d.out)
	}
}

func (d *waypointDriver) Outcome() Outcome { return d.out }

// Hover loiters at the takeoff altitude for MaxSeconds, then lands — the
// adapter for the legacy scenario.Spec.Hover flag (flysim's -hover).
type Hover struct{}

// Kind implements Workload.
func (Hover) Kind() string { return "hover" }

// Validate implements Workload.
func (Hover) Validate() error { return nil }

// HorizonS implements Workload: the loiter plus the landing watch.
func (Hover) HorizonS(maxSeconds float64) float64 { return maxSeconds + 60 }

// New implements Workload.
func (Hover) New(ctx Context) (Driver, error) {
	return &hoverDriver{loiterS: ctx.MaxSeconds}, nil
}

// hoverDriver replicates the historical hover branch: loiter for the full
// MaxSeconds budget (a failed takeoff lands straight away), then command a
// landing and watch it for 60 s.
type hoverDriver struct {
	loiterS  float64
	landing  bool
	loitered bool
	budget   int
	out      Outcome
}

func (d *hoverDriver) Start(h Host) error { return nil }

func (d *hoverDriver) Begin(h Host, takeoffOK bool) (bool, error) {
	if takeoffOK {
		d.budget = stepBudget(d.loiterS, h.AP().PhysicsHz())
		if d.budget > 0 {
			return false, nil
		}
		d.loitered = true
	}
	return d.land(h), nil
}

// land commands the descent and enters the 60 s landing watch; it reports
// true when the watch budget is already spent (the flight resolves now).
func (d *hoverDriver) land(h Host) bool {
	h.AP().CommandLand()
	d.landing = true
	d.budget = stepBudget(60, h.AP().PhysicsHz())
	if d.budget <= 0 {
		d.finish(h)
		return true
	}
	return false
}

func (d *hoverDriver) Step(h Host) bool {
	d.budget--
	if !d.landing {
		if d.budget <= 0 {
			d.loitered = true
			return d.land(h)
		}
		return false
	}
	if h.AP().Mode() == autopilot.Disarmed || d.budget <= 0 {
		d.finish(h)
		return true
	}
	return false
}

func (d *hoverDriver) finish(h Host) {
	d.out = Outcome{
		Kind:      "hover",
		Completed: d.loitered && h.AP().Mode() == autopilot.Disarmed,
	}
}

func (d *hoverDriver) Outcome() Outcome { return d.out }

// Trajectory flies a time-parametrized planner trajectory after takeoff and
// ends hovering at its terminus — the adapter for the legacy
// scenario.Spec.Trajectory field. For the wire form, supply Path/VMaxMS/
// AMaxMS2 instead of a pre-built Traj and the profile is planned at Build.
type Trajectory struct {
	// Traj is the in-process, pre-planned form (examples, planners).
	Traj *planner.Trajectory `json:"-"`
	// Path plus the velocity/acceleration limits are the serializable form;
	// used only when Traj is nil.
	Path    []mathx.Vec3 `json:"path,omitempty"`
	VMaxMS  float64      `json:"vmax_ms,omitempty"`  // default 5
	AMaxMS2 float64      `json:"amax_ms2,omitempty"` // default 3
}

// Kind implements Workload.
func (Trajectory) Kind() string { return "trajectory" }

// Validate implements Workload.
func (t Trajectory) Validate() error {
	if t.Traj != nil {
		return nil
	}
	if len(t.Path) < 2 {
		return errors.New("mission: trajectory needs a pre-built Traj or a path of at least 2 points")
	}
	for i, p := range t.Path {
		if !finiteVec(p) {
			return fmt.Errorf("mission: trajectory path point %d not finite", i)
		}
	}
	if !finite(t.VMaxMS) || t.VMaxMS < 0 || !finite(t.AMaxMS2) || t.AMaxMS2 < 0 {
		return errors.New("mission: trajectory limits must be finite and non-negative")
	}
	return nil
}

// HorizonS implements Workload: the longer of the mission window and the
// trajectory's own duration plus its hover-settle margin.
func (t Trajectory) HorizonS(maxSeconds float64) float64 {
	h := maxSeconds + 60
	if t.Traj != nil {
		if d := t.Traj.TotalS + 30; d > h {
			h = d
		}
	}
	return h
}

// resolve returns the flyable trajectory, planning the wire form on demand.
func (t Trajectory) resolve() (*planner.Trajectory, error) {
	if t.Traj != nil {
		return t.Traj, nil
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	vmax, amax := t.VMaxMS, t.AMaxMS2
	if vmax == 0 {
		vmax = 5
	}
	if amax == 0 {
		amax = 3
	}
	return planner.PlanTrajectory(t.Path, vmax, amax)
}

// New implements Workload.
func (t Trajectory) New(ctx Context) (Driver, error) {
	traj, err := t.resolve()
	if err != nil {
		return nil, err
	}
	return &trajectoryDriver{traj: traj}, nil
}

// trajectoryDriver replicates the historical trajectory branch: FlyTrajectory
// at takeoff resolution, then fly until the autopilot settles back into
// Hover at the terminus or the TotalS+30 budget lapses. A failed takeoff
// ends the flight immediately.
type trajectoryDriver struct {
	traj   *planner.Trajectory
	budget int
	out    Outcome
}

func (d *trajectoryDriver) Start(h Host) error { return nil }

func (d *trajectoryDriver) Begin(h Host, takeoffOK bool) (bool, error) {
	ap := h.AP()
	if !takeoffOK {
		d.finish(h)
		return true, nil
	}
	if err := ap.FlyTrajectory(d.traj); err != nil {
		return false, err
	}
	d.budget = stepBudget(d.traj.TotalS+30, ap.PhysicsHz())
	if d.budget <= 0 {
		d.finish(h)
		return true, nil
	}
	return false, nil
}

func (d *trajectoryDriver) Step(h Host) bool {
	d.budget--
	if h.AP().Mode() == autopilot.Hover || d.budget <= 0 {
		d.finish(h)
		return true
	}
	return false
}

func (d *trajectoryDriver) finish(h Host) {
	d.out = Outcome{Kind: "trajectory", Completed: h.AP().Mode() == autopilot.Hover}
}

func (d *trajectoryDriver) Outcome() Outcome { return d.out }
