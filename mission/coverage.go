package mission

import (
	"errors"
	"fmt"

	"dronedse/autopilot"
	"dronedse/mathx"
	"dronedse/planner"
)

// Coverage is the mapping/survey workload (MAVBench's "mapping"): a
// lawnmower sweep of an axis-aligned area, flown as a waypoint mission whose
// rows come from planner.Lawnmower. The zero value surveys a 24×24 m area
// east of the launch point at 6 m lane spacing at the takeoff altitude.
type Coverage struct {
	// WidthM × HeightM is the survey area (defaults 24 × 24).
	WidthM  float64 `json:"width_m,omitempty"`
	HeightM float64 `json:"height_m,omitempty"`
	// SpacingM is the lane spacing (default 6).
	SpacingM float64 `json:"spacing_m,omitempty"`
	// AltM is the survey altitude (default: the takeoff altitude).
	AltM float64 `json:"alt_m,omitempty"`
	// OriginX/OriginY place the area's near corner (default 4, 0 — just
	// east of the launch point, so the transit leg is short).
	OriginX float64 `json:"origin_x,omitempty"`
	OriginY float64 `json:"origin_y,omitempty"`
}

// maxCoverageWaypoints bounds a survey plan so a wire-submitted job cannot
// demand unbounded engine memory.
const maxCoverageWaypoints = 512

func (c Coverage) withDefaults() Coverage {
	if c.WidthM == 0 {
		c.WidthM = 24
	}
	if c.HeightM == 0 {
		c.HeightM = 24
	}
	if c.SpacingM == 0 {
		c.SpacingM = 6
	}
	if c.OriginX == 0 && c.OriginY == 0 {
		c.OriginX = 4
	}
	return c
}

// Kind implements Workload.
func (Coverage) Kind() string { return "coverage" }

// Validate implements Workload.
func (c Coverage) Validate() error {
	c = c.withDefaults()
	for _, v := range []float64{c.WidthM, c.HeightM, c.SpacingM, c.AltM, c.OriginX, c.OriginY} {
		if !finite(v) {
			return errors.New("mission: coverage parameters must be finite")
		}
	}
	if c.WidthM <= 0 || c.HeightM <= 0 {
		return errors.New("mission: coverage area must have positive extent")
	}
	if c.SpacingM <= 0 {
		return errors.New("mission: coverage lane spacing must be positive")
	}
	if c.AltM < 0 {
		return errors.New("mission: coverage altitude must not be below ground")
	}
	if rows := c.HeightM/c.SpacingM + 2; 2*rows > maxCoverageWaypoints {
		return fmt.Errorf("mission: coverage plan exceeds %d waypoints; widen the spacing", maxCoverageWaypoints)
	}
	return nil
}

// HorizonS implements Workload.
func (Coverage) HorizonS(maxSeconds float64) float64 { return maxSeconds + 60 }

// New implements Workload: plan the sweep, then fly it as a waypoint
// mission whose outcome reports the visited-lane fraction.
func (c Coverage) New(ctx Context) (Driver, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	alt := c.AltM
	if alt <= 0 {
		alt = ctx.TakeoffAltM
	}
	pts, err := planner.Lawnmower(mathx.V3(c.OriginX, c.OriginY, 0), c.WidthM, c.HeightM, c.SpacingM, alt)
	if err != nil {
		return nil, fmt.Errorf("mission: coverage: %w", err)
	}
	plan := make(autopilot.MissionPlan, len(pts))
	for i, p := range pts {
		plan[i] = autopilot.Waypoint{Pos: p}
	}
	n := len(plan)
	d := &waypointDriver{kind: "coverage", plan: plan, maxS: ctx.MaxSeconds}
	d.onDone = func(h Host, out *Outcome) {
		if out.Completed {
			out.CoverageFrac = 1
			return
		}
		// MissionIndex is the next unvisited waypoint; each visited endpoint
		// is half a survey row flown.
		out.CoverageFrac = float64(h.AP().MissionIndex()) / float64(n)
	}
	return d, nil
}
