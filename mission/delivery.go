package mission

import (
	"errors"
	"fmt"

	"dronedse/autopilot"
	"dronedse/core"
	"dronedse/mathx"
)

// DeliveryLeg is one package run: fly to the pickup, dwell while the payload
// is attached, carry it to the dropoff, dwell while it is released.
type DeliveryLeg struct {
	Pickup    mathx.Vec3 `json:"pickup"`
	Dropoff   mathx.Vec3 `json:"dropoff"`
	PayloadKg float64    `json:"payload_kg"`
}

// Delivery is the multi-waypoint package-delivery workload (MAVBench's
// "package delivery"): the legs are flown in order as one waypoint mission,
// and the carried payload mass changes mid-flight at each pickup and
// dropoff. The mass is physical — it enters the plant's dynamics and the
// position controller's feedforward — and it re-enters the paper's design
// model: at Build, each carried-mass phase is resolved through the
// Equation 1 weight closure (an infeasible payload fails the Build exactly
// as an infeasible design fails Resolve), and the resulting Equation 5 hover
// endurances are reported in the Outcome next to the measured Equations 6–7
// energy accounting.
type Delivery struct {
	Legs []DeliveryLeg `json:"legs"`
	// HoldS is the dwell at each pickup/dropoff (default 2 s).
	HoldS float64 `json:"hold_s,omitempty"`
}

// Wire-input bounds: a tenant-submitted delivery plan may not demand
// unbounded engine memory or a payload outside the model's validity.
const (
	maxDeliveryLegs      = 32
	maxDeliveryPayloadKg = 5
)

// DefaultDelivery is the two-leg demo plan flysim's -workload delivery and
// the benchmark kernels fly: a 0.5 kg parcel east, then a 0.8 kg parcel back
// across the launch point.
func DefaultDelivery() Delivery {
	return Delivery{Legs: []DeliveryLeg{
		{Pickup: mathx.V3(10, 0, 6), Dropoff: mathx.V3(10, 14, 6), PayloadKg: 0.5},
		{Pickup: mathx.V3(2, 14, 6), Dropoff: mathx.V3(-8, 4, 6), PayloadKg: 0.8},
	}}
}

// Kind implements Workload.
func (Delivery) Kind() string { return "delivery" }

// Validate implements Workload.
func (d Delivery) Validate() error {
	if len(d.Legs) == 0 {
		return errors.New("mission: delivery needs at least one leg")
	}
	if len(d.Legs) > maxDeliveryLegs {
		return fmt.Errorf("mission: delivery capped at %d legs", maxDeliveryLegs)
	}
	if !finite(d.HoldS) || d.HoldS < 0 || d.HoldS > 60 {
		return errors.New("mission: delivery hold must be within [0, 60] s")
	}
	for i, leg := range d.Legs {
		if !finiteVec(leg.Pickup) || !finiteVec(leg.Dropoff) || !finite(leg.PayloadKg) {
			return fmt.Errorf("mission: delivery leg %d not finite", i)
		}
		if leg.Pickup.Z <= 0 || leg.Dropoff.Z <= 0 {
			return fmt.Errorf("mission: delivery leg %d below ground", i)
		}
		if leg.PayloadKg < 0 || leg.PayloadKg > maxDeliveryPayloadKg {
			return fmt.Errorf("mission: delivery leg %d payload outside [0, %d] kg",
				i, maxDeliveryPayloadKg)
		}
	}
	return nil
}

// HorizonS implements Workload.
func (Delivery) HorizonS(maxSeconds float64) float64 { return maxSeconds + 60 }

// New implements Workload.
func (d Delivery) New(ctx Context) (Driver, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	hold := d.HoldS
	if hold == 0 {
		hold = 2
	}
	legs := d.Legs
	plan := make(autopilot.MissionPlan, 0, 2*len(legs))
	for _, leg := range legs {
		plan = append(plan,
			autopilot.Waypoint{Pos: leg.Pickup, HoldS: hold},
			autopilot.Waypoint{Pos: leg.Dropoff, HoldS: hold})
	}

	// Equation 1 closure per carried-mass phase (empty-handed first): the
	// design model's verdict on each payload, resolved against the paper's
	// reference 450 mm design. A payload the closure cannot converge for is
	// rejected here, before the engine ever flies it.
	phaseTotalG := make([]float64, 0, len(legs)+1)
	phaseEndurance := make([]float64, 0, len(legs)+1)
	spec, params := core.DefaultSpec(), core.DefaultParams()
	for i := 0; i <= len(legs); i++ {
		s := spec
		if i > 0 {
			s.PayloadG = legs[i-1].PayloadKg * 1000
		}
		des, err := core.ResolveCached(s, params)
		if err != nil {
			return nil, fmt.Errorf("mission: delivery leg %d payload infeasible: %w", i-1, err)
		}
		phaseTotalG = append(phaseTotalG, des.TotalG)
		phaseEndurance = append(phaseEndurance, des.HoverFlightTimeMin())
	}

	drv := &waypointDriver{kind: "delivery", plan: plan, maxS: ctx.MaxSeconds}
	// Payload watcher: the mission index advancing past waypoint 2i means
	// leg i's payload was just attached; past 2i+1, released. The final
	// release never advances the index (the autopilot pins it and flips
	// MissionCompleted), so it is detected separately.
	prev, carried, delivered := 0, 0.0, 0.0
	legsDone, allDone := 0, false
	drv.onStep = func(h Host) {
		if allDone {
			return
		}
		ap := h.AP()
		if idx := ap.MissionIndex(); idx != prev {
			for j := prev; j < idx && j < len(plan); j++ {
				if j%2 == 0 {
					carried += legs[j/2].PayloadKg
				} else {
					carried -= legs[j/2].PayloadKg
					delivered += legs[j/2].PayloadKg
					legsDone++
				}
			}
			prev = idx
			h.SetPayloadKg(carried)
		}
		if ap.MissionCompleted() {
			last := legs[len(legs)-1]
			carried -= last.PayloadKg
			delivered += last.PayloadKg
			legsDone++
			allDone = true
			h.SetPayloadKg(carried)
		}
	}
	drv.onDone = func(h Host, out *Outcome) {
		out.Completed = allDone && h.AP().MissionCompleted()
		out.LegsDone = legsDone
		out.DeliveredKg = delivered
		out.PhaseTotalG = phaseTotalG
		out.PhaseEnduranceMin = phaseEndurance
	}
	return drv, nil
}
