package mission

import (
	"errors"
	"math"
	"math/rand"

	"dronedse/autopilot"
	"dronedse/mathx"
)

// FollowTarget parametrizes the deterministic moving ground target the
// follow workload tracks: a seeded random-heading walk at constant speed,
// precomputed into piecewise-linear segments at Build — the same
// seed-derived-plan discipline faultx uses, so the target's route is a pure
// function of (seed, parameters) and bit-identical across lanes and pools.
type FollowTarget struct {
	// Seed drives the route (0 = the flight's master seed).
	Seed int64 `json:"seed,omitempty"`
	// SpeedMS is the target's ground speed (default 2 m/s — a brisk walk).
	SpeedMS float64 `json:"speed_ms,omitempty"`
	// TurnEveryS is the mean interval between heading changes (default 8).
	TurnEveryS float64 `json:"turn_every_s,omitempty"`
	// Start is the target's ground position at t=0 (Z is forced to 0).
	Start mathx.Vec3 `json:"start,omitempty"`
}

// Follow is the search-and-rescue track workload (MAVBench's
// "search-and-rescue" terminal phase): after takeoff the vehicle enters the
// autopilot's follow mode against the seeded moving target, films it at the
// standoff for DurationS, then breaks off and lands. The Outcome reports the
// standoff tracking error sampled at 10 Hz while following.
type Follow struct {
	// DurationS is the follow time after takeoff (default 60).
	DurationS float64 `json:"duration_s,omitempty"`
	// StandoffM is the horizontal trail distance (default: autopilot's 4).
	StandoffM float64 `json:"standoff_m,omitempty"`
	// AltitudeM is the filming altitude above the target (default:
	// autopilot's 4).
	AltitudeM float64 `json:"altitude_m,omitempty"`
	// Target shapes the seeded target model.
	Target FollowTarget `json:"target,omitempty"`
}

// Kind implements Workload.
func (Follow) Kind() string { return "follow" }

// Validate implements Workload.
func (f Follow) Validate() error {
	if !finite(f.DurationS) || f.DurationS < 0 || f.DurationS > 3600 {
		return errors.New("mission: follow duration must be within [0, 3600] s")
	}
	if !finite(f.StandoffM) || f.StandoffM < 0 || f.StandoffM > 50 {
		return errors.New("mission: follow standoff must be within [0, 50] m")
	}
	if !finite(f.AltitudeM) || f.AltitudeM < 0 || f.AltitudeM > 50 {
		return errors.New("mission: follow altitude must be within [0, 50] m")
	}
	t := f.Target
	if !finite(t.SpeedMS) || t.SpeedMS < 0 || t.SpeedMS > 20 {
		return errors.New("mission: follow target speed must be within [0, 20] m/s")
	}
	if !finite(t.TurnEveryS) || t.TurnEveryS < 0 || t.TurnEveryS > 600 {
		return errors.New("mission: follow target turn interval must be within [0, 600] s")
	}
	if !finiteVec(t.Start) {
		return errors.New("mission: follow target start not finite")
	}
	return nil
}

// HorizonS implements Workload: the follow window (bounded by MaxSeconds)
// plus the landing watch.
func (f Follow) HorizonS(maxSeconds float64) float64 {
	h := maxSeconds + 60
	if d := f.durationS() + 90; d > h {
		h = d
	}
	return h
}

func (f Follow) durationS() float64 {
	if f.DurationS > 0 {
		return f.DurationS
	}
	return 60
}

// New implements Workload.
func (f Follow) New(ctx Context) (Driver, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	seed := f.Target.Seed
	if seed == 0 {
		seed = ctx.Seed
	}
	durS := f.durationS()
	// The model must cover the takeoff prologue plus the follow window; the
	// follow controller also finite-differences the target half a second
	// into the past, which TargetModel handles by clamping t<=0 to the start.
	model := NewTargetModel(f.Target, seed, 30+durS+30)
	return &followDriver{
		model:    model,
		durS:     durS,
		standoff: f.standoffM(),
		cfg: autopilot.FollowConfig{
			Target:    model.At,
			StandoffM: f.StandoffM,
			AltitudeM: f.AltitudeM,
		},
	}, nil
}

func (f Follow) standoffM() float64 {
	if f.StandoffM > 0 {
		return f.StandoffM
	}
	return 4 // the autopilot's FollowConfig default
}

// followDriver runs the follow window then a commanded landing, mirroring
// the hover driver's loiter→land shape.
type followDriver struct {
	model    *TargetModel
	durS     float64
	standoff float64
	cfg      autopilot.FollowConfig

	landing  bool
	followed bool // the full window elapsed still in follow mode
	budget   int
	steps    int

	sumErr, maxErr float64
	samples        int
	out            Outcome
}

func (d *followDriver) Start(h Host) error { return nil }

func (d *followDriver) Begin(h Host, takeoffOK bool) (bool, error) {
	ap := h.AP()
	if !takeoffOK {
		return d.land(h), nil
	}
	if err := ap.Follow(d.cfg); err != nil {
		return false, err
	}
	d.budget = stepBudget(d.durS, ap.PhysicsHz())
	if d.budget <= 0 {
		d.followed = true
		return d.land(h), nil
	}
	return false, nil
}

// land breaks off the follow and enters the 60 s landing watch.
func (d *followDriver) land(h Host) bool {
	ap := h.AP()
	ap.StopFollowing()
	ap.CommandLand()
	d.landing = true
	d.budget = stepBudget(60, ap.PhysicsHz())
	if d.budget <= 0 {
		d.finish(h)
		return true
	}
	return false
}

func (d *followDriver) Step(h Host) bool {
	ap := h.AP()
	d.budget--
	if !d.landing {
		// 10 Hz standoff-error tap while actually following (a failsafe
		// that takes the mode over stops the clock on tracking quality).
		if d.steps%100 == 0 && ap.Mode() == autopilot.FollowMode {
			pos := ap.Quad().State().Pos
			tgt := d.model.At(ap.Time())
			e := math.Abs(math.Hypot(pos.X-tgt.X, pos.Y-tgt.Y) - d.standoff)
			d.sumErr += e
			d.samples++
			if e > d.maxErr {
				d.maxErr = e
			}
		}
		d.steps++
		if d.budget <= 0 {
			d.followed = ap.Mode() == autopilot.FollowMode
			return d.land(h)
		}
		return false
	}
	if ap.Mode() == autopilot.Disarmed || d.budget <= 0 {
		d.finish(h)
		return true
	}
	return false
}

func (d *followDriver) finish(h Host) {
	d.out = Outcome{
		Kind:         "follow",
		Completed:    d.followed && h.AP().Mode() == autopilot.Disarmed,
		MaxTrackErrM: d.maxErr,
	}
	if d.samples > 0 {
		d.out.MeanTrackErrM = d.sumErr / float64(d.samples)
	}
}

func (d *followDriver) Outcome() Outcome { return d.out }

// TargetModel is the precomputed route: piecewise-linear segments whose
// headings random-walk at seeded turn intervals. At is a pure function of t
// — no internal cursor — so any query pattern (the follow controller samples
// t and t−0.5 interleaved) returns identical positions, allocation-free.
type TargetModel struct {
	segs []targetSeg
}

type targetSeg struct {
	t0  float64
	pos mathx.Vec3
	vel mathx.Vec3
}

// NewTargetModel precomputes a route covering [0, horizonS]; beyond the
// horizon the target halts (the final segment has zero velocity).
func NewTargetModel(cfg FollowTarget, seed int64, horizonS float64) *TargetModel {
	speed := cfg.SpeedMS
	if speed == 0 {
		speed = 2
	}
	turn := cfg.TurnEveryS
	if turn == 0 {
		turn = 8
	}
	start := cfg.Start
	start.Z = 0
	rng := rand.New(rand.NewSource(seed))
	heading := rng.Float64() * 2 * math.Pi
	m := &TargetModel{segs: make([]targetSeg, 0, int(horizonS/turn)+3)}
	t, pos := 0.0, start
	for t < horizonS {
		vel := mathx.V3(speed*math.Cos(heading), speed*math.Sin(heading), 0)
		m.segs = append(m.segs, targetSeg{t0: t, pos: pos, vel: vel})
		durS := turn * (0.5 + rng.Float64())
		pos = pos.Add(vel.Scale(durS))
		t += durS
		heading += (rng.Float64()*2 - 1) * (math.Pi / 3)
	}
	m.segs = append(m.segs, targetSeg{t0: t, pos: pos}) // halt beyond horizon
	return m
}

// At returns the target's position at time t (clamped to the start before
// t=0 and to the halt point beyond the horizon).
func (m *TargetModel) At(t float64) mathx.Vec3 {
	if t <= m.segs[0].t0 {
		return m.segs[0].pos
	}
	for i := len(m.segs) - 1; i >= 0; i-- {
		if t >= m.segs[i].t0 {
			s := m.segs[i]
			return s.pos.Add(s.vel.Scale(t - s.t0))
		}
	}
	return m.segs[0].pos
}
