package mission

import (
	"encoding/json"
	"math"
	"testing"

	"dronedse/autopilot"
	"dronedse/mathx"
)

// TestWorkloadValidation pins the wire-input guards: every malformed
// workload a tenant could submit is rejected by Validate, and the healthy
// defaults all pass.
func TestWorkloadValidation(t *testing.T) {
	valid := []Workload{
		Box{}, Hover{}, Coverage{}, DefaultDelivery(), Follow{},
		Waypoints{Plan: BoxPlan(5)},
		Trajectory{Path: []mathx.Vec3{{X: 0, Y: 0, Z: 5}, {X: 10, Y: 0, Z: 5}}},
		WireSpec{}, WireSpec{KindName: "delivery"},
	}
	for _, wl := range valid {
		if err := wl.Validate(); err != nil {
			t.Errorf("%s: valid workload rejected: %v", wl.Kind(), err)
		}
	}

	nan := math.NaN()
	invalid := []struct {
		name string
		wl   Workload
	}{
		{"empty waypoints", Waypoints{}},
		{"waypoint below ground", Waypoints{Plan: autopilot.MissionPlan{{Pos: mathx.V3(1, 1, 0)}}}},
		{"waypoint nan hold", Waypoints{Plan: autopilot.MissionPlan{{Pos: mathx.V3(1, 1, 5), HoldS: nan}}}},
		{"delivery no legs", Delivery{}},
		{"delivery too many legs", Delivery{Legs: make([]DeliveryLeg, maxDeliveryLegs+1)}},
		{"delivery heavy payload", Delivery{Legs: []DeliveryLeg{
			{Pickup: mathx.V3(1, 0, 5), Dropoff: mathx.V3(2, 0, 5), PayloadKg: maxDeliveryPayloadKg + 1}}}},
		{"delivery below ground", Delivery{Legs: []DeliveryLeg{
			{Pickup: mathx.V3(1, 0, 0), Dropoff: mathx.V3(2, 0, 5)}}}},
		{"delivery nan payload", Delivery{Legs: []DeliveryLeg{
			{Pickup: mathx.V3(1, 0, 5), Dropoff: mathx.V3(2, 0, 5), PayloadKg: nan}}}},
		{"coverage zero spacing", Coverage{SpacingM: -1}},
		{"coverage nan extent", Coverage{WidthM: nan}},
		{"coverage waypoint cap", Coverage{HeightM: 10000, SpacingM: 1}},
		{"follow nan duration", Follow{DurationS: nan}},
		{"follow fast target", Follow{Target: FollowTarget{SpeedMS: 21}}},
		{"follow far standoff", Follow{StandoffM: 51}},
		{"trajectory short path", Trajectory{Path: []mathx.Vec3{{Z: 5}}}},
		{"wire unknown kind", WireSpec{KindName: "teleport"}},
		{"wire bad payload", WireSpec{KindName: "delivery", Delivery: &Delivery{HoldS: -1,
			Legs: []DeliveryLeg{{Pickup: mathx.V3(1, 0, 5), Dropoff: mathx.V3(2, 0, 5)}}}}},
	}
	for _, c := range invalid {
		if err := c.wl.Validate(); err == nil {
			t.Errorf("%s: invalid workload accepted", c.name)
		}
	}
}

// TestWireSpecRoundTrip pins the serializable form: every kind survives a
// JSON round trip with its payload intact and still resolves to the same
// concrete workload.
func TestWireSpecRoundTrip(t *testing.T) {
	specs := []WireSpec{
		{},
		{KindName: "box"},
		{KindName: "hover"},
		{KindName: "waypoints", Plan: BoxPlan(5)},
		{KindName: "trajectory", Trajectory: &Trajectory{
			Path: []mathx.Vec3{{Z: 5}, {X: 10, Z: 5}}, VMaxMS: 4, AMaxMS2: 2}},
		{KindName: "coverage", Coverage: &Coverage{WidthM: 10, HeightM: 10, SpacingM: 5}},
		{KindName: "delivery", Delivery: &Delivery{HoldS: 3, Legs: []DeliveryLeg{
			{Pickup: mathx.V3(5, 0, 6), Dropoff: mathx.V3(5, 8, 6), PayloadKg: 0.7}}}},
		{KindName: "follow", Follow: &Follow{DurationS: 30,
			Target: FollowTarget{Seed: 9, SpeedMS: 3}}},
	}
	for _, ws := range specs {
		raw, err := json.Marshal(ws)
		if err != nil {
			t.Fatalf("%s: marshal: %v", ws.Kind(), err)
		}
		var back WireSpec
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", ws.Kind(), err)
		}
		raw2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(raw2) {
			t.Errorf("%s: round trip changed the wire form:\n  %s\n  %s", ws.Kind(), raw, raw2)
		}
		wl, err := back.Resolve()
		if err != nil {
			t.Fatalf("%s: resolve after round trip: %v", ws.Kind(), err)
		}
		if ws.KindName != "" && wl.Kind() != ws.KindName {
			t.Errorf("resolved kind %s, want %s", wl.Kind(), ws.KindName)
		}
	}
}

// TestNamed pins the CLI name → workload mapping.
func TestNamed(t *testing.T) {
	for _, kind := range []string{"", "box", "hover", "coverage", "delivery", "follow"} {
		if _, err := Named(kind); err != nil {
			t.Errorf("Named(%q): %v", kind, err)
		}
	}
	if _, err := Named("warp"); err == nil {
		t.Error("Named accepted an unknown kind")
	}
}

// TestTargetModel pins the follow target's determinism and clamping: the
// route is a pure function of (seed, parameters); t at or before zero reads
// the start position (the follow controller samples half a second into the
// past right after engaging); beyond the horizon the target halts.
func TestTargetModel(t *testing.T) {
	cfg := FollowTarget{Start: mathx.V3(3, -2, 9)}
	a := NewTargetModel(cfg, 42, 120)
	b := NewTargetModel(cfg, 42, 120)
	for _, tt := range []float64{-1, -0.5, 0, 0.3, 7, 33.33, 119, 500} {
		pa, pb := a.At(tt), b.At(tt)
		if pa != pb {
			t.Fatalf("t=%v: same seed diverged: %v vs %v", tt, pa, pb)
		}
	}
	start := mathx.V3(3, -2, 0) // Z forced to ground
	if a.At(-0.5) != start || a.At(0) != start {
		t.Fatalf("t<=0 must clamp to the start: %v / %v", a.At(-0.5), a.At(0))
	}
	if a.At(0.1) == start {
		t.Fatal("target did not move")
	}
	if a.At(400) != a.At(500) {
		t.Fatal("target must halt beyond the horizon")
	}
	if c := NewTargetModel(cfg, 43, 120); c.At(20) == a.At(20) {
		t.Fatal("different seeds produced the same route")
	}

	// Continuity: positions at segment scale move at most SpeedMS * dt.
	prev := a.At(0.0)
	for tt := 0.1; tt < 130; tt += 0.1 {
		p := a.At(tt)
		if d := p.Sub(prev).Norm(); d > 2*0.1+1e-9 {
			t.Fatalf("t=%.1f: target jumped %.3f m in 0.1 s", tt, d)
		}
		prev = p
	}
}
