// Package control implements the drone's hierarchical inner-loop control
// (§2.1.3-C): high-performance cascaded PID controllers split by time scale —
// position/trajectory at 40 Hz, attitude at 200 Hz, and thrust (body rate)
// at 1 kHz (Table 2b) — plus the motor mixer. The cascade consumes state
// targets (position, velocity, attitude) from the outer loop exactly as
// Figure 6 draws it.
package control

import "dronedse/mathx"

// PID is a single proportional-integral-derivative controller with
// derivative low-pass filtering and integral clamping — the "filter
// computations" half of the inner-loop work (§2.1.3-D: keeping a history and
// accumulated versions of previously observed measurements, their
// derivative, and their integral).
type PID struct {
	Kp, Ki, Kd float64
	// IntegralLimit clamps the accumulated integral term (anti-windup).
	IntegralLimit float64
	// OutputLimit clamps the controller output symmetrically; zero means
	// unbounded.
	OutputLimit float64
	// DerivativeLPF is the derivative low-pass coefficient in (0, 1];
	// 1 disables filtering.
	DerivativeLPF float64

	integral  float64
	prevErr   float64
	prevDeriv float64
	primed    bool
}

// Update advances the controller with the current error and time step,
// returning the control output.
func (c *PID) Update(err, dt float64) float64 {
	if dt <= 0 {
		return c.output(err, 0)
	}
	c.integral += err * dt
	if c.IntegralLimit > 0 {
		c.integral = mathx.Clamp(c.integral, -c.IntegralLimit, c.IntegralLimit)
	}
	deriv := 0.0
	if c.primed {
		deriv = (err - c.prevErr) / dt
	}
	lpf := c.DerivativeLPF
	if lpf <= 0 || lpf > 1 {
		lpf = 1
	}
	c.prevDeriv += lpf * (deriv - c.prevDeriv)
	c.prevErr = err
	c.primed = true
	return c.output(err, c.prevDeriv)
}

func (c *PID) output(err, deriv float64) float64 {
	out := c.Kp*err + c.Ki*c.integral + c.Kd*deriv
	if c.OutputLimit > 0 {
		out = mathx.Clamp(out, -c.OutputLimit, c.OutputLimit)
	}
	return out
}

// Reset clears the controller state.
func (c *PID) Reset() {
	c.integral, c.prevErr, c.prevDeriv, c.primed = 0, 0, 0, false
}

// Vec3PID bundles three axis PIDs sharing gains.
type Vec3PID struct{ X, Y, Z PID }

// NewVec3PID builds three identical axis controllers.
func NewVec3PID(p PID) *Vec3PID { return &Vec3PID{X: p, Y: p, Z: p} }

// Update runs all three axes.
func (v *Vec3PID) Update(err mathx.Vec3, dt float64) mathx.Vec3 {
	return mathx.V3(v.X.Update(err.X, dt), v.Y.Update(err.Y, dt), v.Z.Update(err.Z, dt))
}

// Reset clears all three axes.
func (v *Vec3PID) Reset() { v.X.Reset(); v.Y.Reset(); v.Z.Reset() }
