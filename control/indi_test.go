package control

import (
	"testing"

	"dronedse/mathx"
	"dronedse/sim"
)

func runHoverWithWind(t *testing.T, indi bool, windMS, gustMS float64, seed int64) (worst float64) {
	t.Helper()
	q, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q.SetEnvironment(sim.WindyEnvironment(seed, windMS, gustMS))
	q.Teleport(mathx.V3(0, 0, 10))
	target := Targets{Position: mathx.V3(0, 0, 10)}
	record := func(_ float64, s sim.State) {
		if d := s.Pos.Sub(target.Position).Norm(); d > worst {
			worst = d
		}
	}
	rates := Rates{PositionHz: 40, AttitudeHz: 200, RateHz: 500} // INDI's cited rate
	if indi {
		NewINDILoop(q, rates).Run(target, 25, record)
	} else {
		NewLoop(q, rates).Run(target, 25, record)
	}
	return worst
}

// TestINDIHoldsHover: the INDI rate loop must fly at all — hover hold in
// calm air within tight bounds.
func TestINDIHoldsHover(t *testing.T) {
	if worst := runHoverWithWind(t, true, 0, 0, 1); worst > 0.3 {
		t.Errorf("INDI calm-air hover error %.2f m", worst)
	}
}

// TestINDIGustRejection reproduces the §2.1.3-D citation: INDI stabilizes
// under powerful gusts at 500 Hz, holding position at least as well as the
// PID cascade in strong wind.
func TestINDIGustRejection(t *testing.T) {
	const wind, gust = 6, 4 // strong, gusty
	pid := runHoverWithWind(t, false, wind, gust, 7)
	indi := runHoverWithWind(t, true, wind, gust, 7)
	if indi > 2.5 {
		t.Errorf("INDI worst error %.2f m under %v m/s wind", indi, wind)
	}
	// INDI must be competitive with the tuned PID cascade (within 40%).
	if indi > pid*1.4 {
		t.Errorf("INDI (%.2f m) much worse than PID (%.2f m) in gusts", indi, pid)
	}
	t.Logf("gust rejection: PID worst %.2f m, INDI worst %.2f m", pid, indi)
}

// TestINDIStepResponse: the INDI variant also settles translation steps.
func TestINDIStepResponse(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	l := NewINDILoop(q, Rates{PositionHz: 40, AttitudeHz: 200, RateHz: 500})
	q.Teleport(mathx.V3(0, 0, 10))
	l.Run(Targets{Position: mathx.V3(0, 0, 10)}, 3, nil)
	l.Run(Targets{Position: mathx.V3(5, 0, 10)}, 12, nil)
	end := q.State().Pos
	if end.Sub(mathx.V3(5, 0, 10)).Norm() > 0.4 {
		t.Errorf("INDI step ended at %v", end)
	}
}

func TestINDIControllerUnits(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	c := NewINDIRateController(q)
	// Zero dt: no update, no panic.
	tau0 := c.Update(mathx.Vec3{}, mathx.Vec3{}, mathx.V3(1, 0, 0), 0)
	if tau0 != (mathx.Vec3{}) {
		t.Errorf("zero-dt output = %v", tau0)
	}
	// A rate error must command torque of the right sign.
	var tau mathx.Vec3
	for i := 0; i < 200; i++ {
		tau = c.Update(mathx.Vec3{}, mathx.Vec3{}, mathx.V3(1, 0, 0), 1e-3)
	}
	if tau.X <= 0 {
		t.Errorf("positive roll-rate demand produced torque %v", tau)
	}
	c.Reset()
	if got := c.Update(mathx.Vec3{}, mathx.Vec3{}, mathx.Vec3{}, 1e-3); got != (mathx.Vec3{}) {
		t.Errorf("post-reset output = %v", got)
	}
}
