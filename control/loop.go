package control

import (
	"math"

	"dronedse/mathx"
	"dronedse/sim"
)

// Loop couples the plant and the cascade at the Table 2b update frequencies,
// implementing the time-scale separation of §2.1.3-C. Physics always steps
// at least at 1 kHz; each controller level fires at its own divisor. The
// update-rate ablation (§2.1.3-D: the inner loop is physics-limited at
// 50-500 Hz) swaps Rates and measures the response.
type Loop struct {
	Quad  *sim.Quad
	C     *Cascade
	Rates Rates

	physicsHz float64
	steps     int
}

// NewLoop wires a cascade to a plant at the given rates.
func NewLoop(q *sim.Quad, rates Rates) *Loop {
	physHz := math.Max(1000, rates.RateHz)
	return &Loop{Quad: q, C: NewCascade(q), Rates: rates, physicsHz: physHz}
}

// Run advances the closed loop for the given duration toward a fixed target,
// invoking onStep (if non-nil) after every physics step.
func (l *Loop) Run(target Targets, seconds float64, onStep func(t float64, s sim.State)) {
	dt := 1 / l.physicsHz
	posEvery := every(l.physicsHz, l.Rates.PositionHz)
	attEvery := every(l.physicsHz, l.Rates.AttitudeHz)
	rateEvery := every(l.physicsHz, l.Rates.RateHz)

	n := int(seconds * l.physicsHz)
	for i := 0; i < n; i++ {
		s := l.Quad.State()
		if l.steps%posEvery == 0 {
			l.C.UpdatePosition(s, target, float64(posEvery)*dt)
		}
		if l.steps%attEvery == 0 {
			l.C.UpdateAttitude(s, float64(attEvery)*dt)
		}
		if l.steps%rateEvery == 0 {
			l.Quad.CommandThrusts(l.C.UpdateRate(s, float64(rateEvery)*dt))
		}
		l.Quad.Step(dt)
		l.steps++
		if onStep != nil {
			onStep(l.Quad.Time(), l.Quad.State())
		}
	}
}

func every(physHz, loopHz float64) int {
	if loopHz <= 0 {
		return 1
	}
	e := int(math.Round(physHz / loopHz))
	if e < 1 {
		e = 1
	}
	return e
}

// StepResponse measures the 90%-settling response time (seconds) of a
// position step of the given size along +X, or a negative value when the
// loop never settles. It is the Table 2b / inner-loop-rate experiment
// kernel.
func StepResponse(quadCfg sim.Config, rates Rates, stepM, maxSeconds float64) float64 {
	q, err := sim.NewQuad(quadCfg)
	if err != nil {
		return -1
	}
	l := NewLoop(q, rates)
	// Start airborne at hover to isolate the translational response.
	hover := Targets{Position: mathx.V3(0, 0, 10)}
	q.Teleport(mathx.V3(0, 0, 10))
	l.Run(hover, 3, nil) // settle into hover
	start := q.State().Pos

	target := hover
	target.Position.X = start.X + stepM
	settled := -1.0
	t0 := q.Time()
	need := 0.0
	l.Run(target, maxSeconds, func(t float64, s sim.State) {
		if settled >= 0 {
			return
		}
		if math.Abs(s.Pos.X-target.Position.X) < 0.1*stepM &&
			math.Abs(s.Vel.X) < 0.25 {
			if need == 0 {
				need = t
			}
			// require it to stay settled for 0.3 s
			if t-need > 0.3 {
				settled = need - t0
			}
		} else {
			need = 0
		}
	})
	return settled
}
