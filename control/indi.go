package control

import (
	"dronedse/mathx"
	"dronedse/sim"
)

// INDIRateController is an incremental nonlinear dynamic inversion rate
// controller — the sensor-based technique §2.1.3-D cites for stabilizing
// a drone "under powerful wind gusts" at a 500 Hz update rate (Smeur et
// al.). Instead of integrating a disturbance model the way PID's I-term
// does, INDI measures the achieved angular acceleration and commands an
// increment of control moment on top of the current one:
//
//	tau_cmd = tau_now + I * G * (omega_dot_des - omega_dot_measured)
//
// Disturbance torques (gusts, weight imbalance) appear directly in the
// measured angular acceleration and are cancelled within one actuator time
// constant, without integral windup.
type INDIRateController struct {
	// P maps rate error to desired angular acceleration (rad/s^2 per
	// rad/s).
	P float64
	// Inertia is the vehicle's diagonal inertia.
	Inertia mathx.Vec3
	// FilterHz low-passes the angular-acceleration measurement (the
	// derivative of gyro rate is noisy; INDI implementations filter both
	// the measurement and the actuator state with the same filter).
	FilterHz float64

	prevOmega mathx.Vec3
	alphaF    mathx.Vec3 // filtered measured angular acceleration
	tauNow    mathx.Vec3 // filtered current control moment estimate
	primed    bool
}

// NewINDIRateController builds the controller for a plant.
func NewINDIRateController(q *sim.Quad) *INDIRateController {
	cfg := q.Config()
	wbM := cfg.WheelbaseMM / 1000
	return &INDIRateController{
		P: 22,
		Inertia: mathx.V3(
			0.05*cfg.MassKg*wbM*wbM,
			0.05*cfg.MassKg*wbM*wbM,
			0.09*cfg.MassKg*wbM*wbM),
		FilterHz: 40,
	}
}

// Update consumes the measured body rate, the measured currently-applied
// torque (reconstructed from rotor feedback — real INDI implementations
// read motor RPM), and the rate set point, returning the commanded torque.
// dt is the controller period.
func (c *INDIRateController) Update(omega, tauApplied, rateTarget mathx.Vec3, dt float64) mathx.Vec3 {
	if dt <= 0 {
		return c.tauNow
	}
	// Measured angular acceleration (filtered finite difference). The
	// actuator measurement is filtered with the SAME filter so the two
	// stay synchronous — the core INDI implementation rule.
	var alphaRaw mathx.Vec3
	if c.primed {
		alphaRaw = omega.Sub(c.prevOmega).Scale(1 / dt)
	}
	c.prevOmega = omega
	c.primed = true
	k := dt * c.FilterHz
	if k > 1 {
		k = 1
	}
	c.alphaF = c.alphaF.Add(alphaRaw.Sub(c.alphaF).Scale(k))
	c.tauNow = c.tauNow.Add(tauApplied.Sub(c.tauNow).Scale(k))

	// Desired angular acceleration from the rate error.
	alphaDes := rateTarget.Sub(omega).Scale(c.P)

	// Incremental inversion: the acceleration deficit, converted to
	// torque through the inertia, on top of the measured applied moment.
	inc := alphaDes.Sub(c.alphaF).Hadamard(c.Inertia)
	return c.tauNow.Add(inc).Clamp(1.0)
}

// Reset clears the controller state.
func (c *INDIRateController) Reset() {
	*c = INDIRateController{P: c.P, Inertia: c.Inertia, FilterHz: c.FilterHz}
}

// INDICascade swaps the cascade's low-level PID rate loop for INDI while
// reusing the position and attitude levels.
type INDICascade struct {
	*Cascade
	indi *INDIRateController
}

// NewINDICascade builds the INDI-rate variant.
func NewINDICascade(q *sim.Quad) *INDICascade {
	return &INDICascade{Cascade: NewCascade(q), indi: NewINDIRateController(q)}
}

// UpdateRate overrides the PID rate loop with the INDI law. thrusts is the
// measured per-rotor thrust (the actuator feedback).
func (c *INDICascade) UpdateRate(s sim.State, thrusts [sim.NumMotors]float64, dt float64) [sim.NumMotors]float64 {
	tau := c.indi.Update(s.Omega, c.AppliedTorque(thrusts), c.RateTarget(), dt)
	return c.Mix(c.ThrustTarget(), tau)
}

// AppliedTorque reconstructs the body torque currently produced by the
// rotors (the inverse of Mix) — the actuator measurement INDI feeds back.
func (c *Cascade) AppliedTorque(th [sim.NumMotors]float64) mathx.Vec3 {
	l := c.armM
	ct := c.torquePerN
	return mathx.V3(
		l*(th[sim.FrontLeft]-th[sim.FrontRight]+th[sim.BackLeft]-th[sim.BackRight]),
		-l*(th[sim.FrontLeft]+th[sim.FrontRight]-th[sim.BackLeft]-th[sim.BackRight]),
		ct*(th[sim.FrontLeft]-th[sim.FrontRight]-th[sim.BackLeft]+th[sim.BackRight]),
	)
}

// INDILoop couples the INDI cascade to a plant like control.Loop does.
type INDILoop struct {
	Quad  *sim.Quad
	C     *INDICascade
	Rates Rates
	steps int
}

// NewINDILoop wires the INDI cascade at the given rates.
func NewINDILoop(q *sim.Quad, rates Rates) *INDILoop {
	return &INDILoop{Quad: q, C: NewINDICascade(q), Rates: rates}
}

// Run advances the closed loop toward a fixed target.
func (l *INDILoop) Run(target Targets, seconds float64, onStep func(t float64, s sim.State)) {
	physHz := 1000.0
	if l.Rates.RateHz > physHz {
		physHz = l.Rates.RateHz
	}
	dt := 1 / physHz
	posEvery := every(physHz, l.Rates.PositionHz)
	attEvery := every(physHz, l.Rates.AttitudeHz)
	rateEvery := every(physHz, l.Rates.RateHz)
	n := int(seconds * physHz)
	for i := 0; i < n; i++ {
		s := l.Quad.State()
		if l.steps%posEvery == 0 {
			l.C.UpdatePosition(s, target, float64(posEvery)*dt)
		}
		if l.steps%attEvery == 0 {
			l.C.UpdateAttitude(s, float64(attEvery)*dt)
		}
		if l.steps%rateEvery == 0 {
			l.Quad.CommandThrusts(l.C.UpdateRate(s, l.Quad.MotorThrusts(), float64(rateEvery)*dt))
		}
		l.Quad.Step(dt)
		l.steps++
		if onStep != nil {
			onStep(l.Quad.Time(), l.Quad.State())
		}
	}
}
