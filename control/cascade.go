package control

import (
	"math"

	"dronedse/mathx"
	"dronedse/sim"
	"dronedse/units"
)

// Targets is the outer-loop → inner-loop interface of Figure 6: the
// high-level algorithms "only provide state targets, grouped into position,
// velocity, and attitude".
type Targets struct {
	Position mathx.Vec3
	// Velocity is a feed-forward velocity target.
	Velocity mathx.Vec3
	// Yaw is the desired heading (rad).
	Yaw float64
}

// Rates groups the cascade's update frequencies (Table 2b: thrust/rate
// 1 kHz, attitude 200 Hz, position 40 Hz).
type Rates struct {
	PositionHz float64
	AttitudeHz float64
	RateHz     float64
}

// DefaultRates are the Table 2b frequencies.
func DefaultRates() Rates { return Rates{PositionHz: 40, AttitudeHz: 200, RateHz: 1000} }

// Cascade is the hierarchical inner-loop controller: position → velocity →
// attitude → body rate → motor mix, with time-scale separation.
type Cascade struct {
	MassKg  float64
	Inertia mathx.Vec3
	// MaxTiltRad is the maximum stable angle of attack (Table 3: depends
	// on the thrust-to-weight ratio; ~35° for TWR 2).
	MaxTiltRad float64
	MaxVelXY   float64
	MaxVelZ    float64
	MaxThrustN float64 // per motor
	armM       float64
	torquePerN float64 // yaw torque per newton of thrust (KQ/KT)

	posP Vec3PID
	velP Vec3PID
	attP float64 // attitude P gain (rad error -> rad/s)
	rate Vec3PID

	// cached set points between the differently-clocked stages
	attTarget    mathx.Quat
	thrustTarget float64 // collective, N
	rateTarget   mathx.Vec3

	// Stats is the controller's work ledger (see CtrlStats); it only
	// counts, so reading it never perturbs the control state.
	Stats CtrlStats
}

// NewCascade builds a tuned cascade for a plant. Gains scale with mass and
// inertia so the same tuning flies the 100 mm and 800 mm classes.
func NewCascade(q *sim.Quad) *Cascade {
	cfg := q.Config()
	wbM := cfg.WheelbaseMM / 1000
	c := &Cascade{
		MassKg: cfg.MassKg,
		Inertia: mathx.V3(
			0.05*cfg.MassKg*wbM*wbM,
			0.05*cfg.MassKg*wbM*wbM,
			0.09*cfg.MassKg*wbM*wbM),
		MaxTiltRad: units.DegToRad(35),
		MaxVelXY:   6,
		MaxVelZ:    3,
		MaxThrustN: q.MaxThrustPerMotorN(),
		armM:       wbM / 2 * math.Sqrt2 / 2,
		torquePerN: 0.05 * units.InchToMeter(cfg.PropInches) * 10,
		attP:       8,
	}
	c.posP = *NewVec3PID(PID{Kp: 1.1, OutputLimit: c.MaxVelXY})
	c.velP = *NewVec3PID(PID{Kp: 3.0, Ki: 0.4, Kd: 0.55, IntegralLimit: 2, OutputLimit: 8, DerivativeLPF: 0.4})
	c.rate = *NewVec3PID(PID{Kp: 28, Ki: 12, Kd: 0.4, IntegralLimit: 4, DerivativeLPF: 0.3})
	c.attTarget = mathx.QuatIdentity()
	c.thrustTarget = cfg.MassKg * units.Gravity
	return c
}

// UpdatePosition runs the high-level position/trajectory controller
// (Table 2b: 40 Hz, ~1 s response). It converts position error into a
// desired acceleration, then into an attitude + collective-thrust set point.
func (c *Cascade) UpdatePosition(s sim.State, tgt Targets, dt float64) {
	c.Stats.PositionUpdates++
	c.Stats.PositionOps += ctrlPositionOps
	velDes := c.posP.Update(tgt.Position.Sub(s.Pos), dt).Add(tgt.Velocity)
	velDes = mathx.V3(
		mathx.Clamp(velDes.X, -c.MaxVelXY, c.MaxVelXY),
		mathx.Clamp(velDes.Y, -c.MaxVelXY, c.MaxVelXY),
		mathx.Clamp(velDes.Z, -c.MaxVelZ, c.MaxVelZ))
	accDes := c.velP.Update(velDes.Sub(s.Vel), dt)

	// Desired thrust vector (world): cancel gravity plus the commanded
	// acceleration.
	thrustVec := accDes.Add(mathx.V3(0, 0, units.Gravity)).Scale(c.MassKg)
	// Tilt limit: never command beyond the stable angle of attack.
	z := thrustVec.Normalized()
	tilt := math.Acos(mathx.Clamp(z.Z, -1, 1))
	if tilt > c.MaxTiltRad {
		// Reduce the horizontal component until the tilt is legal.
		horiz := math.Hypot(thrustVec.X, thrustVec.Y)
		maxHoriz := math.Abs(thrustVec.Z) * math.Tan(c.MaxTiltRad)
		if horiz > 1e-9 {
			scale := maxHoriz / horiz
			thrustVec.X *= scale
			thrustVec.Y *= scale
		}
	}
	c.thrustTarget = mathx.Clamp(thrustVec.Norm(), 0, 4*c.MaxThrustN)
	c.attTarget = attitudeFromThrustYaw(thrustVec, tgt.Yaw)
}

// attitudeFromThrustYaw builds the attitude whose body +Z axis aligns with
// the desired thrust direction while pointing the body +X toward yaw.
func attitudeFromThrustYaw(thrustVec mathx.Vec3, yaw float64) mathx.Quat {
	zb := thrustVec.Normalized()
	if zb.Norm() < 1e-9 {
		zb = mathx.V3(0, 0, 1)
	}
	xc := mathx.V3(math.Cos(yaw), math.Sin(yaw), 0)
	yb := zb.Cross(xc).Normalized()
	if yb.Norm() < 1e-9 {
		yb = mathx.V3(0, 1, 0)
	}
	xb := yb.Cross(zb)
	m := mathx.Mat3{
		{xb.X, yb.X, zb.X},
		{xb.Y, yb.Y, zb.Y},
		{xb.Z, yb.Z, zb.Z},
	}
	return quatFromMat(m)
}

// quatFromMat converts a rotation matrix to a quaternion (Shepperd's method).
func quatFromMat(m mathx.Mat3) mathx.Quat {
	tr := m.Trace()
	var q mathx.Quat
	switch {
	case tr > 0:
		s := math.Sqrt(tr+1) * 2
		q = mathx.Quat{W: s / 4, X: (m[2][1] - m[1][2]) / s, Y: (m[0][2] - m[2][0]) / s, Z: (m[1][0] - m[0][1]) / s}
	case m[0][0] > m[1][1] && m[0][0] > m[2][2]:
		s := math.Sqrt(1+m[0][0]-m[1][1]-m[2][2]) * 2
		q = mathx.Quat{W: (m[2][1] - m[1][2]) / s, X: s / 4, Y: (m[0][1] + m[1][0]) / s, Z: (m[0][2] + m[2][0]) / s}
	case m[1][1] > m[2][2]:
		s := math.Sqrt(1+m[1][1]-m[0][0]-m[2][2]) * 2
		q = mathx.Quat{W: (m[0][2] - m[2][0]) / s, X: (m[0][1] + m[1][0]) / s, Y: s / 4, Z: (m[1][2] + m[2][1]) / s}
	default:
		s := math.Sqrt(1+m[2][2]-m[0][0]-m[1][1]) * 2
		q = mathx.Quat{W: (m[1][0] - m[0][1]) / s, X: (m[0][2] + m[2][0]) / s, Y: (m[1][2] + m[2][1]) / s, Z: s / 4}
	}
	return q.Normalized()
}

// UpdateAttitude runs the mid-level attitude controller (Table 2b: 200 Hz,
// ~100 ms response): quaternion error to body-rate set points.
func (c *Cascade) UpdateAttitude(s sim.State, dt float64) {
	c.Stats.AttitudeUpdates++
	c.Stats.AttitudeOps += ctrlAttitudeOps
	// Error quaternion in the body frame.
	qe := s.Att.Conj().Mul(c.attTarget).Normalized()
	if qe.W < 0 { // take the short way around
		qe = mathx.Quat{W: -qe.W, X: -qe.X, Y: -qe.Y, Z: -qe.Z}
	}
	// Small-angle axis error: 2 * vector part.
	axisErr := mathx.V3(qe.X, qe.Y, qe.Z).Scale(2)
	c.rateTarget = axisErr.Scale(c.attP).Clamp(8)
}

// UpdateRate runs the low-level thrust/rate controller (Table 2b: 1 kHz,
// ~50 ms response) and returns the per-motor thrust commands.
func (c *Cascade) UpdateRate(s sim.State, dt float64) [sim.NumMotors]float64 {
	c.Stats.RateUpdates++
	c.Stats.RateOps += ctrlRateOps
	angAcc := c.rate.Update(c.rateTarget.Sub(s.Omega), dt)
	tau := angAcc.Hadamard(c.Inertia)
	return c.Mix(c.thrustTarget, tau)
}

// Mix allocates collective thrust and body torques onto the four motors
// (X configuration), saturating at the rotor limits while preserving the
// collective as much as possible.
func (c *Cascade) Mix(totalN float64, tau mathx.Vec3) [sim.NumMotors]float64 {
	l := c.armM
	ct := c.torquePerN
	var out [sim.NumMotors]float64
	out[sim.FrontLeft] = totalN/4 + tau.X/(4*l) - tau.Y/(4*l) + tau.Z/(4*ct)
	out[sim.FrontRight] = totalN/4 - tau.X/(4*l) - tau.Y/(4*l) - tau.Z/(4*ct)
	out[sim.BackLeft] = totalN/4 + tau.X/(4*l) + tau.Y/(4*l) - tau.Z/(4*ct)
	out[sim.BackRight] = totalN/4 - tau.X/(4*l) + tau.Y/(4*l) + tau.Z/(4*ct)
	for i := range out {
		out[i] = mathx.Clamp(out[i], 0, c.MaxThrustN)
	}
	return out
}

// SetAttitudeTarget injects an attitude + collective set point directly,
// bypassing the position level — the Figure 6 path where "the application
// requires attitude control by the outer loop", and the hook the Table 2b
// attitude step-response measurement uses.
func (c *Cascade) SetAttitudeTarget(q mathx.Quat, thrustN float64) {
	c.attTarget = q.Normalized()
	c.thrustTarget = mathx.Clamp(thrustN, 0, 4*c.MaxThrustN)
}

// AttitudeTarget exposes the current attitude set point (for telemetry).
func (c *Cascade) AttitudeTarget() mathx.Quat { return c.attTarget }

// ThrustTarget exposes the current collective thrust set point in newtons.
func (c *Cascade) ThrustTarget() float64 { return c.thrustTarget }

// RateTarget exposes the current body-rate set point.
func (c *Cascade) RateTarget() mathx.Vec3 { return c.rateTarget }

// Reset clears all controller state.
func (c *Cascade) Reset() {
	c.posP.Reset()
	c.velP.Reset()
	c.rate.Reset()
	c.attTarget = mathx.QuatIdentity()
	c.rateTarget = mathx.Vec3{}
	c.thrustTarget = c.MassKg * units.Gravity
}
