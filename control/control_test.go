package control

import (
	"math"
	"testing"

	"dronedse/mathx"
	"dronedse/sim"
)

func TestPIDProportional(t *testing.T) {
	c := PID{Kp: 2}
	if got := c.Update(3, 0.01); math.Abs(got-6) > 1e-12 {
		t.Errorf("P-only output = %v, want 6", got)
	}
}

func TestPIDIntegralAccumulatesAndClamps(t *testing.T) {
	c := PID{Ki: 1, IntegralLimit: 0.5}
	var out float64
	for i := 0; i < 1000; i++ {
		out = c.Update(1, 0.01)
	}
	if math.Abs(out-0.5) > 1e-9 {
		t.Errorf("integral output = %v, want clamped 0.5", out)
	}
}

func TestPIDDerivativeFiltering(t *testing.T) {
	raw := PID{Kd: 1, DerivativeLPF: 1}
	filt := PID{Kd: 1, DerivativeLPF: 0.1}
	raw.Update(0, 0.01)
	filt.Update(0, 0.01)
	r := raw.Update(1, 0.01) // derivative = 100
	f := filt.Update(1, 0.01)
	if r <= f {
		t.Errorf("filtered derivative %v not below raw %v", f, r)
	}
	if f <= 0 {
		t.Errorf("filtered derivative %v should still respond", f)
	}
}

func TestPIDOutputLimit(t *testing.T) {
	c := PID{Kp: 100, OutputLimit: 2}
	if got := c.Update(10, 0.01); got != 2 {
		t.Errorf("limited output = %v, want 2", got)
	}
	if got := c.Update(-10, 0.01); got != -2 {
		t.Errorf("limited output = %v, want -2", got)
	}
}

func TestPIDReset(t *testing.T) {
	c := PID{Kp: 1, Ki: 1}
	c.Update(5, 1)
	c.Reset()
	if got := c.Update(0, 1); got != 0 {
		t.Errorf("after reset output = %v, want 0", got)
	}
}

func TestPIDZeroDt(t *testing.T) {
	c := PID{Kp: 1, Ki: 100, Kd: 100}
	if got := c.Update(2, 0); math.Abs(got-2) > 1e-12 {
		t.Errorf("zero-dt output = %v, want P term only", got)
	}
}

func TestVec3PID(t *testing.T) {
	v := NewVec3PID(PID{Kp: 2})
	out := v.Update(mathx.V3(1, 2, 3), 0.01)
	if out != mathx.V3(2, 4, 6) {
		t.Errorf("Vec3PID output = %v", out)
	}
	v.Reset()
}

func TestHoverHold(t *testing.T) {
	q, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoop(q, DefaultRates())
	q.Teleport(mathx.V3(0, 0, 5))
	l.Run(Targets{Position: mathx.V3(0, 0, 5)}, 10, nil)
	s := q.State()
	if s.Pos.Sub(mathx.V3(0, 0, 5)).Norm() > 0.2 {
		t.Errorf("hover drifted to %v", s.Pos)
	}
	if s.Vel.Norm() > 0.1 {
		t.Errorf("hover residual velocity %v", s.Vel)
	}
}

func TestTakeoffFromGround(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	l := NewLoop(q, DefaultRates())
	l.Run(Targets{Position: mathx.V3(0, 0, 5)}, 10, nil)
	if math.Abs(q.State().Pos.Z-5) > 0.3 {
		t.Errorf("takeoff reached %v, want z=5", q.State().Pos)
	}
}

func TestWaypointTranslation(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	l := NewLoop(q, DefaultRates())
	q.Teleport(mathx.V3(0, 0, 5))
	l.Run(Targets{Position: mathx.V3(0, 0, 5)}, 2, nil)
	l.Run(Targets{Position: mathx.V3(15, -8, 9)}, 15, nil)
	s := q.State()
	if s.Pos.Sub(mathx.V3(15, -8, 9)).Norm() > 0.5 {
		t.Errorf("translation ended at %v", s.Pos)
	}
}

func TestYawTracking(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	l := NewLoop(q, DefaultRates())
	q.Teleport(mathx.V3(0, 0, 5))
	l.Run(Targets{Position: mathx.V3(0, 0, 5), Yaw: 1.2}, 8, nil)
	_, _, yaw := q.State().Att.Euler()
	if math.Abs(yaw-1.2) > 0.1 {
		t.Errorf("yaw = %v, want 1.2", yaw)
	}
}

func TestTiltLimitRespected(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	l := NewLoop(q, DefaultRates())
	q.Teleport(mathx.V3(0, 0, 20))
	maxTilt := 0.0
	// An aggressive 100 m step tempts the controller to pitch hard.
	l.Run(Targets{Position: mathx.V3(100, 0, 20)}, 6, func(_ float64, s sim.State) {
		z := s.Att.Rotate(mathx.V3(0, 0, 1))
		tilt := math.Acos(mathx.Clamp(z.Z, -1, 1))
		if tilt > maxTilt {
			maxTilt = tilt
		}
	})
	limit := l.C.MaxTiltRad
	if maxTilt > limit+0.12 {
		t.Errorf("max tilt %.2f rad exceeded the angle-of-attack limit %.2f (Table 3)", maxTilt, limit)
	}
	if maxTilt < 0.15 {
		t.Errorf("aggressive step produced almost no tilt (%.2f rad); controller inactive?", maxTilt)
	}
}

func TestMixerRecoversCommands(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	c := NewCascade(q)
	totalN := 10.0
	tau := mathx.V3(0.05, -0.08, 0.01)
	th := c.Mix(totalN, tau)
	l := c.armM
	ct := c.torquePerN
	sum := th[0] + th[1] + th[2] + th[3]
	gotTauX := l * (th[sim.FrontLeft] - th[sim.FrontRight] + th[sim.BackLeft] - th[sim.BackRight])
	gotTauY := -l * (th[sim.FrontLeft] + th[sim.FrontRight] - th[sim.BackLeft] - th[sim.BackRight])
	gotTauZ := ct * (th[sim.FrontLeft] - th[sim.FrontRight] - th[sim.BackLeft] + th[sim.BackRight])
	if math.Abs(sum-totalN) > 1e-9 {
		t.Errorf("mixer collective = %v, want %v", sum, totalN)
	}
	if math.Abs(gotTauX-tau.X) > 1e-9 || math.Abs(gotTauY-tau.Y) > 1e-9 || math.Abs(gotTauZ-tau.Z) > 1e-9 {
		t.Errorf("mixer torques = (%v,%v,%v), want %v", gotTauX, gotTauY, gotTauZ, tau)
	}
}

func TestMixerSaturation(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	c := NewCascade(q)
	th := c.Mix(1e6, mathx.V3(1e6, 0, 0))
	for i, v := range th {
		if v < 0 || v > c.MaxThrustN+1e-9 {
			t.Errorf("motor %d thrust %v outside [0, %v]", i, v, c.MaxThrustN)
		}
	}
}

// TestInnerLoopPhysicsLimited is the §2.1.3-D experiment: above ~50-200 Hz,
// raising the inner-loop rate no longer improves the response time — it is
// limited by rotor lag and inertia, not compute.
func TestInnerLoopPhysicsLimited(t *testing.T) {
	cfg := sim.DefaultConfig()
	resp := func(hz float64) float64 {
		r := Rates{PositionHz: 40, AttitudeHz: math.Min(hz, 200), RateHz: hz}
		return StepResponse(cfg, r, 5, 20)
	}
	r200 := resp(200)
	r1000 := resp(1000)
	r2000 := resp(2000)
	if r200 < 0 || r1000 < 0 || r2000 < 0 {
		t.Fatalf("loop failed to settle: %v %v %v", r200, r1000, r2000)
	}
	// Doubling compute (1 kHz -> 2 kHz) must buy essentially nothing.
	if math.Abs(r2000-r1000) > 0.15*r1000 {
		t.Errorf("2 kHz response %v differs from 1 kHz %v by >15%%; should be physics-limited", r2000, r1000)
	}
	// And 200 Hz is already within 20% of the 1 kHz response.
	if r200 > r1000*1.2 {
		t.Errorf("200 Hz response %v much worse than 1 kHz %v; paper says 50-500 Hz suffices", r200, r1000)
	}
}

func TestStepResponseDegradesAtVeryLowRate(t *testing.T) {
	cfg := sim.DefaultConfig()
	// At 6 Hz everything is under-sampled; the response degrades badly or
	// never settles. (25-50 Hz already matches 1 kHz — the low end of the
	// paper's 50-500 Hz band.)
	slow := StepResponse(cfg, Rates{PositionHz: 6, AttitudeHz: 6, RateHz: 6}, 5, 25)
	fast := StepResponse(cfg, Rates{PositionHz: 40, AttitudeHz: 200, RateHz: 1000}, 5, 25)
	if fast < 0 {
		t.Fatal("reference loop failed to settle")
	}
	if slow > 0 && slow < 1.5*fast {
		t.Errorf("6 Hz loop (%v s) not clearly worse than the 1 kHz loop (%v s)", slow, fast)
	}
}

func TestHoverUnderWind(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	q.SetEnvironment(sim.WindyEnvironment(3, 4, 2))
	l := NewLoop(q, DefaultRates())
	q.Teleport(mathx.V3(0, 0, 10))
	worst := 0.0
	l.Run(Targets{Position: mathx.V3(0, 0, 10)}, 20, func(_ float64, s sim.State) {
		if d := s.Pos.Sub(mathx.V3(0, 0, 10)).Norm(); d > worst {
			worst = d
		}
	})
	// Table 1: wind gusts are an inner-loop stabilization duty; the
	// integral term must hold position within ~2 m under 4 m/s wind.
	if worst > 2.0 {
		t.Errorf("worst position error under wind = %v m", worst)
	}
}
