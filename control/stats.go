package control

// CtrlStats is the cascade controller's work ledger, following the
// slam.Stats accounting contract: each loop charges a deterministic,
// leading-order flop count per invocation, so the roofline and platform
// retiming models see a workload that depends only on how often each loop
// ran — never on scheduling or data layout.
type CtrlStats struct {
	// PositionOps accumulates the 40 Hz position/velocity loop work.
	PositionOps uint64
	// AttitudeOps accumulates the attitude-error loop work.
	AttitudeOps uint64
	// RateOps accumulates the 1 kHz rate loop + motor mixer work.
	RateOps uint64

	PositionUpdates int
	AttitudeUpdates int
	RateUpdates     int
}

// TotalOps sums all loops.
func (s CtrlStats) TotalOps() uint64 { return s.PositionOps + s.AttitudeOps + s.RateOps }

// Leading-order flop counts per loop invocation: two Vec3PID updates plus
// the acceleration→attitude conversion (basis construction, quaternion
// build) for the position loop; the error-quaternion product, normalize and
// axis extraction for the attitude loop; one Vec3PID, the inertia Hadamard
// and the 4-motor mixer for the rate loop.
const (
	ctrlPositionOps = 2*30 + 60
	ctrlAttitudeOps = 16 + 12 + 10
	ctrlRateOps     = 30 + 3 + 28
)
