package dronedse

// Repo-root benchmarks: one per table and figure in the paper's evaluation
// (see DESIGN.md §3 for the index). Each benchmark regenerates its
// experiment through the internal/bench harness and reports the headline
// quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation in one command. Correctness bands are
// asserted by the package test suites; benchmarks here measure the cost of
// regeneration and surface the reproduced numbers.

import (
	"fmt"
	"runtime"
	"testing"

	"dronedse/bench"
	"dronedse/components"
	"dronedse/core"
	"dronedse/dataset"
	"dronedse/parallelx"
	"dronedse/slam"
)

func BenchmarkTable2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2aRender()
	}
}

func BenchmarkTable2b(b *testing.B) {
	var tb bench.Table2b
	for i := 0; i < b.N; i++ {
		tb = bench.RunTable2b()
	}
	b.ReportMetric(tb.ThrustResponseS*1000, "thrust-ms")
	b.ReportMetric(tb.AttitudeResponseS*1000, "attitude-ms")
	b.ReportMetric(tb.PositionResponseS, "position-s")
}

func BenchmarkInnerLoopRate(b *testing.B) {
	var a bench.InnerLoopAblation
	for i := 0; i < b.N; i++ {
		a = bench.RunInnerLoopAblation()
	}
	// Saturation check value: response at 1 kHz.
	for i, hz := range a.RateHz {
		if hz == 1000 {
			b.ReportMetric(a.ResponseS[i], "resp-1kHz-s")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	var fg bench.Figure7
	var err error
	for i := 0; i < b.N; i++ {
		fg, err = bench.RunFigure7(components.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fg.Fits[3].Slope, "slope-3S-g/mAh")
}

func BenchmarkFig8a(b *testing.B) {
	var fg bench.Figure8
	var err error
	for i := 0; i < b.N; i++ {
		fg, err = bench.RunFigure8(components.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fg.ESCLong.Slope, "esc-long-slope")
}

func BenchmarkFig8b(b *testing.B) {
	var fg bench.Figure8
	var err error
	for i := 0; i < b.N; i++ {
		fg, err = bench.RunFigure8(components.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fg.FrameHighSlope, "frame-slope")
}

func BenchmarkFig9(b *testing.B) {
	p := core.DefaultParams()
	var fg bench.Figure9
	for i := 0; i < b.N; i++ {
		fg = bench.RunFigure9(p)
	}
	pts := fg.Lines[450][3]
	if len(pts) > 0 {
		b.ReportMetric(pts[len(pts)-1].CurrentA, "I-450mm-3S-A")
	}
}

func BenchmarkFig10(b *testing.B) {
	p := core.DefaultParams()
	var best float64
	for i := 0; i < b.N; i++ {
		for _, wb := range []float64{100, 450, 800} {
			fg := bench.RunFigure10(wb, p)
			if wb == 450 {
				best = fg.BestFlight
			}
		}
	}
	b.ReportMetric(best, "best-450mm-min")
}

func BenchmarkFig11(b *testing.B) {
	var fg bench.Figure11
	for i := 0; i < b.N; i++ {
		fg = bench.RunFigure11()
	}
	b.ReportMetric(fg.Drones[0].HeavyComputeSharePct(), "mambo-heavy-pct")
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Figure14()
	}
	b.ReportMetric(components.OurDroneTotalWeightG(), "total-g")
}

func BenchmarkFig15(b *testing.B) {
	var fg bench.Figure15
	for i := 0; i < b.N; i++ {
		fg = bench.RunFigure15(1)
	}
	b.ReportMetric(fg.TLBRatio(), "tlb-ratio")
	b.ReportMetric(fg.IPCDrop(), "ipc-drop")
}

func BenchmarkFig16(b *testing.B) {
	var fg bench.Figure16
	var err error
	for i := 0; i < b.N; i++ {
		fg, err = bench.RunFigure16(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fg.DroneAvgW, "drone-avg-W")
}

func BenchmarkFig17(b *testing.B) {
	var fg bench.Figure17
	var err error
	for i := 0; i < b.N; i++ {
		fg, err = bench.RunFigure17(0) // full 11-sequence suite
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fg.GMeanTX2, "tx2-gmean-x")
	b.ReportMetric(fg.GMeanFPGA, "fpga-gmean-x")
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table4Render()
	}
}

func BenchmarkTable5(b *testing.B) {
	fg, err := bench.RunFigure17(3)
	if err != nil {
		b.Fatal(err)
	}
	stats := fg.Stats()
	var t5 bench.Table5Bench
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t5, err = bench.RunTable5(stats, core.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range t5.Rows {
		if r.Platform == "FPGA" {
			b.ReportMetric(r.GainedSmallMin, "fpga-gain-small-min")
		}
	}
}

// --- Extension studies ---

func BenchmarkTWRSweep(b *testing.B) {
	var s bench.TWRStudy
	for i := 0; i < b.N; i++ {
		s = bench.RunTWRStudy(core.DefaultParams())
	}
	if len(s.Points) > 0 {
		b.ReportMetric(s.Points[0].ComputeShareHoverPct, "share-twr2-pct")
	}
}

func BenchmarkSensorPayload(b *testing.B) {
	var s bench.SensorStudy
	for i := 0; i < b.N; i++ {
		s = bench.RunSensorStudy(core.DefaultParams())
	}
	if len(s.Points) > 1 {
		b.ReportMetric(s.Points[len(s.Points)-1].ComputeShareHoverPct, "share-heaviest-pct")
	}
}

func BenchmarkGustRejection(b *testing.B) {
	var s bench.GustStudy
	for i := 0; i < b.N; i++ {
		s = bench.RunGustStudy(3)
	}
	for i, hz := range s.RateHz {
		if hz == 500 {
			b.ReportMetric(s.WorstErr[i], "err-500Hz-m")
		}
	}
}

func BenchmarkOffload(b *testing.B) {
	var s bench.OffloadStudy
	var err error
	for i := 0; i < b.N; i++ {
		s, err = bench.RunOffloadStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range s.Reports {
		if r.Link.Name == "5GHz WiFi" {
			b.ReportMetric(r.TotalMS, "wifi-e2e-ms")
		}
	}
}

func BenchmarkESLAMAblation(b *testing.B) {
	var s bench.ESLAMStudy
	var err error
	for i := 0; i < b.N; i++ {
		s, err = bench.RunESLAMStudy(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(s.WithoutGMean, "no-eslam-gmean-x")
}

func BenchmarkParetoFrontier(b *testing.B) {
	var s bench.ParetoStudy
	for i := 0; i < b.N; i++ {
		s = bench.RunParetoStudy(core.DefaultParams())
	}
	b.ReportMetric(float64(len(s.Points)), "frontier-points")
}

// BenchmarkSLAMPipeline measures the real Go-side throughput of the SLAM
// pipeline on one sequence (native wall time, distinct from the modeled
// platform retiming).
func BenchmarkSLAMPipeline(b *testing.B) {
	seq, err := dataset.Generate(dataset.EuRoCSpecs()[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := slam.RunSequence(seq)
		if res.ATE > 0.25 {
			b.Fatalf("tracking failed: ATE %v", res.ATE)
		}
	}
}

func BenchmarkIsolationLadder(b *testing.B) {
	var s bench.IsolationStudy
	for i := 0; i < b.N; i++ {
		s = bench.RunIsolationStudy(1)
	}
	b.ReportMetric(s.Result.Solo.IPC/s.Result.SharedCore.IPC, "shared-core-ipc-drop")
	b.ReportMetric(s.Result.Solo.IPC/s.Result.DedicatedCore.IPC, "dedicated-core-ipc-drop")
}

func BenchmarkPrefetchAblation(b *testing.B) {
	var s bench.PrefetchStudy
	for i := 0; i < b.N; i++ {
		s = bench.RunPrefetchStudy(1)
	}
	b.ReportMetric(s.Autopilot.Speedup(), "autopilot-speedup-x")
	b.ReportMetric(s.SLAM.Speedup(), "slam-speedup-x")
}

func BenchmarkFigure12Procedure(b *testing.B) {
	var rec core.Recommendation
	var err error
	for i := 0; i < b.N; i++ {
		rec, err = core.RunProcedure(core.Requirements{
			Compute:      components.AdvancedComputeTier,
			MinFlightMin: 15,
		}, core.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rec.FlightMin, "flight-min")
	b.ReportMetric(rec.ComputeSharePct, "compute-share-pct")
}

// BenchmarkSLAMSuite times the full 11-sequence Figure 17 run at the pool
// sizes the perf trajectory tracks (1, 2, NumCPU) — the slambench command's
// hot path.
func BenchmarkSLAMSuite(b *testing.B) {
	pools := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		pools = append(pools, n)
	}
	for _, pool := range pools {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			prev := parallelx.SetPoolSize(pool)
			defer parallelx.SetPoolSize(prev)
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunFigure17(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
