package faultx

import (
	"io"
	"math/rand"
)

// LinkStats counts what a LossyLink did to the byte stream.
type LinkStats struct {
	Chunks     int
	Dropped    int
	Corrupted  int
	Duplicated int
	Truncated  int
	Reordered  int
	BytesIn    int
	BytesOut   int
}

// LossyLink mangles a byte stream the way a marginal telemetry radio does:
// whole-chunk drops, bit corruption, duplication, tail truncation, and
// chunk reordering. All decisions come from a seeded rng, so a given seed
// produces the same damage pattern every run — the corrupted stream is a
// reproducible fuzz corpus for the MAVLink parser and the ground station.
//
// The zero-probability link is transparent: bytes pass through unchanged.
type LossyLink struct {
	// Per-chunk probabilities in [0, 1].
	DropProb    float64
	CorruptProb float64
	DupProb     float64
	TruncProb   float64
	ReorderProb float64

	Stats LinkStats

	rng  *rand.Rand
	held []byte
}

// NewLossyLink returns a link whose damage pattern is driven by seed.
// Configure the probabilities on the returned value.
func NewLossyLink(seed int64) *LossyLink {
	return &LossyLink{rng: rand.New(rand.NewSource(seed))}
}

// Transmit passes one chunk through the link and returns what arrives on
// the far side (possibly nil). The input slice is never aliased.
func (l *LossyLink) Transmit(chunk []byte) []byte {
	l.Stats.Chunks++
	l.Stats.BytesIn += len(chunk)
	if len(chunk) == 0 {
		return l.deliver(nil)
	}
	if l.roll(l.DropProb) {
		l.Stats.Dropped++
		return l.deliver(nil)
	}
	out := append([]byte(nil), chunk...)
	if l.roll(l.CorruptProb) {
		l.Stats.Corrupted++
		n := 1 + l.rng.Intn(3)
		for i := 0; i < n; i++ {
			out[l.rng.Intn(len(out))] ^= byte(1 + l.rng.Intn(255))
		}
	}
	if l.roll(l.TruncProb) && len(out) > 1 {
		l.Stats.Truncated++
		out = out[:1+l.rng.Intn(len(out)-1)]
	}
	if l.roll(l.DupProb) {
		l.Stats.Duplicated++
		out = append(out, out...)
	}
	if l.roll(l.ReorderProb) && l.held == nil {
		// Hold this chunk back; it rides out behind the next one.
		l.Stats.Reordered++
		l.held = out
		return nil
	}
	return l.deliver(out)
}

// Flush returns any chunk still held for reordering (end of stream).
func (l *LossyLink) Flush() []byte {
	out := l.takeHeld()
	l.Stats.BytesOut += len(out)
	return out
}

// deliver appends the held chunk (if any) after out and accounts the bytes.
func (l *LossyLink) deliver(out []byte) []byte {
	out = append(out, l.takeHeld()...)
	l.Stats.BytesOut += len(out)
	if len(out) == 0 {
		return nil
	}
	return out
}

func (l *LossyLink) takeHeld() []byte {
	h := l.held
	l.held = nil
	return h
}

// roll draws one decision; zero-probability faults never touch the rng, so
// a clean link stays byte-transparent without perturbing the seed stream.
func (l *LossyLink) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return l.rng.Float64() < p
}

// Writer wraps w so every Write passes through the link first. Dropped
// chunks still report full-length success to the caller — the sender of a
// datagram-ish telemetry stream cannot see the loss, just like the field.
func (l *LossyLink) Writer(w io.Writer) io.Writer { return lossyWriter{l, w} }

type lossyWriter struct {
	l *LossyLink
	w io.Writer
}

func (lw lossyWriter) Write(p []byte) (int, error) {
	out := lw.l.Transmit(p)
	if len(out) > 0 {
		if _, err := lw.w.Write(out); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}
