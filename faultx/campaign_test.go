package faultx

import (
	"testing"

	"dronedse/autopilot"
	"dronedse/mathx"
	"dronedse/parallelx"
	"dronedse/power"
	"dronedse/scenario"
	"dronedse/sim"
)

// flysimReference replays cmd/flysim's default mission exactly — same
// plant, pack, compute power, mission and seed — recording the true
// position at 10 Hz. The fault-free campaign flight must match it bit for
// bit.
func flysimReference(t *testing.T, seed int64) ([]mathx.Vec3, float64) {
	t.Helper()
	q, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pack, err := power.NewPack(3, 3000, 30)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := autopilot.New(autopilot.Config{
		Quad: q, Battery: pack, ComputeW: 3.39 + 0.75, TakeoffAltM: 5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var traj []mathx.Vec3
	steps := 0
	ap.Observe(func(a *autopilot.Autopilot, dt float64) {
		if steps%100 == 0 {
			traj = append(traj, a.Quad().State().Pos)
		}
		steps++
	})
	mission := autopilot.MissionPlan{
		{Pos: mathx.V3(12, 0, 6), HoldS: 1},
		{Pos: mathx.V3(12, 12, 8), HoldS: 1},
		{Pos: mathx.V3(0, 12, 6), HoldS: 1},
	}
	if err := ap.LoadMission(mission); err != nil {
		t.Fatal(err)
	}
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	if !ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Hover }, 30) {
		t.Fatal("reference takeoff failed")
	}
	if err := ap.StartMission(); err != nil {
		t.Fatal(err)
	}
	if !ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Disarmed }, 240) {
		t.Fatal("reference mission did not complete")
	}
	return traj, ap.Time()
}

// TestFaultFreeBitIdentical is the transparency contract: flying the
// campaign harness with an empty fault plan — injector bound, fault view
// installed, offload session polling, telemetry streaming — must not
// change a single bit of the trajectory versus the plain flysim stack.
func TestFaultFreeBitIdentical(t *testing.T) {
	const seed = 1
	want, wantT := flysimReference(t, seed)
	l := buildLane(Scenario{Name: "fault-free", Seed: seed}, Config{}.withDefaults())
	res, err := scenario.Run(l.spec)
	if err != nil {
		t.Fatal(err)
	}
	got := l.finish(res)
	if got.res.Outcome != OutcomeCompleted {
		t.Fatalf("fault-free outcome = %v (%s)", got.res.Outcome, got.res.LastEvent)
	}
	if got.res.FlightTimeS != wantT {
		t.Fatalf("flight time %v != reference %v", got.res.FlightTimeS, wantT)
	}
	if len(got.traj) != len(want) {
		t.Fatalf("trajectory length %d != reference %d", len(got.traj), len(want))
	}
	for i := range want {
		if got.traj[i] != want[i] {
			t.Fatalf("trajectory diverges at sample %d: %v != %v", i, got.traj[i], want[i])
		}
	}
}

// TestCampaignPoolInvariance is the reproducibility property: the same
// scenarios and seeds must render a byte-identical campaign table whether
// the flights run serially or across 2 or 8 workers.
func TestCampaignPoolInvariance(t *testing.T) {
	scs := []Scenario{
		{
			Name: "gps-denial", Seed: 11,
			Plan: Plan{Events: []Event{{Kind: GPSDenial, Start: 8, Duration: 12}}},
		},
		SevereScenario(11),
	}
	cfg := Config{MaxSeconds: 200}
	run := func(pool int) string {
		old := parallelx.SetPoolSize(pool)
		defer parallelx.SetPoolSize(old)
		c, err := Run(scs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c.Table()
	}
	t1 := run(1)
	t2 := run(2)
	t8 := run(8)
	if t1 != t2 {
		t.Errorf("pool 1 vs 2 tables differ:\n%s\nvs\n%s", t1, t2)
	}
	if t1 != t8 {
		t.Errorf("pool 1 vs 8 tables differ:\n%s\nvs\n%s", t1, t8)
	}
}

// TestSevereScenario is the graceful-degradation acceptance: the compound
// worst case must force the offload fallback and a failsafe RTL — and the
// vehicle must still get down without crashing.
func TestSevereScenario(t *testing.T) {
	c, err := Run([]Scenario{SevereScenario(5)}, Config{MaxSeconds: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Baselines) != 1 || len(c.Results) != 1 {
		t.Fatalf("campaign shape: %d baselines, %d results", len(c.Baselines), len(c.Results))
	}
	base, r := c.Baselines[0], c.Results[0]
	if base.Outcome != OutcomeCompleted {
		t.Fatalf("baseline outcome = %v (%s)", base.Outcome, base.LastEvent)
	}
	if r.Outcome == OutcomeCrashed {
		t.Fatalf("severe scenario crashed (%s)", r.LastEvent)
	}
	if r.Outcome != OutcomeRTL {
		t.Errorf("severe outcome = %v, want failsafe RTL (%s)", r.Outcome, r.LastEvent)
	}
	if r.Fallbacks < 1 {
		t.Errorf("offload fallbacks = %d, want >= 1 (radio outage must push compute onboard)", r.Fallbacks)
	}
	if r.MaxEstErrM <= base.MaxEstErrM {
		t.Errorf("severe est err %.2f m not worse than baseline %.2f m", r.MaxEstErrM, base.MaxEstErrM)
	}
	if r.MaxPathDivM <= 0.5 {
		t.Errorf("severe path divergence = %.2f m: faults left no trace", r.MaxPathDivM)
	}
	if r.TelemetryDropped == 0 {
		t.Errorf("lossy telemetry dropped no chunks")
	}
	if r.TelemetryFrames == 0 {
		t.Errorf("ground station decoded nothing through the lossy link")
	}
}
