package faultx

import (
	"bytes"
	"testing"

	"dronedse/mathx"
	"dronedse/power"
	"dronedse/sensors"
	"dronedse/sim"
)

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{Kind: SensorDropout, Sensor: "sonar"}}},
		{Events: []Event{{Kind: SensorDropout, Sensor: sensors.SensorGPS, Prob: 1.5}}},
		{Events: []Event{{Kind: MotorDerate, Motor: 9, Frac: 0.5}}},
		{Events: []Event{{Kind: MotorDerate, Motor: 0, Frac: 1.5}}},
		{Events: []Event{{Kind: BatterySag, Frac: 0.99}}},
		{Events: []Event{{Kind: LinkDegrade, Frac: -0.1}}},
		{Events: []Event{{Kind: WindGust, Start: -1}}},
		{Events: []Event{{Kind: Kind(42)}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
	if err := SevereScenario(1).Plan.Validate(); err != nil {
		t.Errorf("severe plan rejected: %v", err)
	}
}

func TestEventWindows(t *testing.T) {
	in, err := NewInjector(Plan{Events: []Event{
		{Kind: GPSDenial, Start: 10, Duration: 5},
		{Kind: LinkOutage, Start: 20}, // permanent
		{Kind: LinkDegrade, Start: 2, Duration: 4, Frac: 0.3},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.GPSDenied(9.9) || !in.GPSDenied(10) || !in.GPSDenied(14.9) || in.GPSDenied(15) {
		t.Error("GPS denial window wrong")
	}
	if !in.LinkUp(19.9) || in.LinkUp(20) || in.LinkUp(1e6) {
		t.Error("permanent link outage wrong")
	}
	if s := in.BandwidthScale(3); s != 0.3 {
		t.Errorf("degraded scale = %v", s)
	}
	if s := in.BandwidthScale(7); s != 1 {
		t.Errorf("healed scale = %v", s)
	}
	// Denied GPS must also read as a sensor dropout.
	if !in.SensorFault(sensors.SensorGPS, 12).Dropout {
		t.Error("GPS denial did not drop GPS samples")
	}
	if in.SensorFault(sensors.SensorIMU, 12) != (sensors.FaultState{}) {
		t.Error("GPS denial leaked onto the IMU")
	}
}

func TestSensorFaultComposition(t *testing.T) {
	in, err := NewInjector(Plan{Events: []Event{
		{Kind: SensorBias, Sensor: sensors.SensorBaro, Start: 0, Mag: 2},
		{Kind: SensorBias, Sensor: sensors.SensorBaro, Start: 0, Vec: mathx.V3(1, 0, 0)},
		{Kind: SensorStuck, Sensor: sensors.SensorMag, Start: 5, Duration: 1},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := in.SensorFault(sensors.SensorBaro, 1)
	if f.Bias.X != 3 {
		t.Errorf("biases did not add: %v", f.Bias)
	}
	if !in.SensorFault(sensors.SensorMag, 5.5).Stuck || in.SensorFault(sensors.SensorMag, 6.5).Stuck {
		t.Error("stuck window wrong")
	}
}

func TestStochasticDropoutDeterministic(t *testing.T) {
	sample := func(seed int64) []bool {
		in, _ := NewInjector(Plan{Events: []Event{
			{Kind: SensorDropout, Sensor: sensors.SensorGPS, Start: 0, Prob: 0.5},
		}}, seed)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.SensorFault(sensors.SensorGPS, float64(i)).Dropout)
		}
		return out
	}
	a, b := sample(3), sample(3)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different dropout sequences")
		}
		if a[i] {
			drops++
		}
	}
	if drops < 60 || drops > 140 {
		t.Errorf("p=0.5 dropped %d/200 samples", drops)
	}
	c := sample(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical dropout sequences")
	}
}

func TestApplyDrivesAndHeals(t *testing.T) {
	q, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pack, err := power.NewPack(3, 3000, 30)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.NewEnvironment(1)
	q.SetEnvironment(env)
	in, err := NewInjector(Plan{Events: []Event{
		{Kind: MotorDerate, Start: 1, Duration: 2, Motor: 2, Frac: 0.6},
		{Kind: BatterySag, Start: 1, Duration: 2, Mag: 0.5, Frac: 0.2},
		{Kind: WindGust, Start: 1, Duration: 2, Vec: mathx.V3(3, 0, 0)},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	in.Bind(q, pack, env)

	vNominal := pack.Voltage()
	in.Apply(0.5)
	if q.MotorEfficiency(2) != 1 || pack.Voltage() != vNominal || env.GustOffset != (mathx.Vec3{}) {
		t.Fatal("faults active before their window")
	}
	in.Apply(1.5)
	if got := q.MotorEfficiency(2); got != 0.6 {
		t.Errorf("motor efficiency = %v, want 0.6", got)
	}
	if got := pack.Voltage(); got >= vNominal-0.4 {
		t.Errorf("voltage %v did not sag from %v", got, vNominal)
	}
	if env.GustOffset != mathx.V3(3, 0, 0) {
		t.Errorf("gust offset = %v", env.GustOffset)
	}
	in.Apply(3.5) // windows over: everything heals
	if q.MotorEfficiency(2) != 1 || pack.Voltage() != vNominal || env.GustOffset != (mathx.Vec3{}) {
		t.Error("faults did not heal after their window")
	}
}

func TestLossyLinkTransparent(t *testing.T) {
	l := NewLossyLink(1)
	var got []byte
	for i := 0; i < 50; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 10)
		got = append(got, l.Transmit(chunk)...)
	}
	got = append(got, l.Flush()...)
	if len(got) != 500 {
		t.Fatalf("clean link delivered %d of 500 bytes", len(got))
	}
	for i := 0; i < 50; i++ {
		for j := 0; j < 10; j++ {
			if got[i*10+j] != byte(i) {
				t.Fatalf("clean link altered byte %d", i*10+j)
			}
		}
	}
	if l.Stats.Dropped+l.Stats.Corrupted+l.Stats.Duplicated+l.Stats.Truncated+l.Stats.Reordered != 0 {
		t.Errorf("clean link recorded damage: %+v", l.Stats)
	}
	if l.Stats.BytesIn != 500 || l.Stats.BytesOut != 500 {
		t.Errorf("byte accounting: %+v", l.Stats)
	}
}

func TestLossyLinkDeterministicDamage(t *testing.T) {
	run := func() ([]byte, LinkStats) {
		l := NewLossyLink(7)
		l.DropProb, l.CorruptProb, l.DupProb, l.TruncProb, l.ReorderProb = 0.2, 0.2, 0.2, 0.2, 0.2
		var got []byte
		for i := 0; i < 200; i++ {
			got = append(got, l.Transmit([]byte{byte(i), byte(i >> 1), byte(i >> 2), 0xAA})...)
		}
		got = append(got, l.Flush()...)
		return got, l.Stats
	}
	g1, s1 := run()
	g2, s2 := run()
	if !bytes.Equal(g1, g2) || s1 != s2 {
		t.Fatal("same seed produced different damage")
	}
	if s1.Dropped == 0 || s1.Corrupted == 0 || s1.Duplicated == 0 || s1.Truncated == 0 || s1.Reordered == 0 {
		t.Errorf("aggressive link left some fault kind unexercised: %+v", s1)
	}
	if s1.BytesIn != 800 {
		t.Errorf("BytesIn = %d, want 800", s1.BytesIn)
	}
}
