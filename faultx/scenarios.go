package faultx

import (
	"dronedse/mathx"
	"dronedse/sensors"
)

// SevereScenario is the campaign's worst-case compound fault: a permanent
// radio outage (forcing the offload fallback onto the onboard host), a
// sagging and faded pack, a damaged motor, a gust step, a sustained GPS
// denial mid-mission, and a badly lossy telemetry link. The acceptance
// contract: the stack must fall back, escalate to RTL, and land without
// crashing.
func SevereScenario(seed int64) Scenario {
	return Scenario{
		Name: "severe",
		Seed: seed,
		Plan: Plan{Name: "severe", Events: []Event{
			{Kind: MotorDerate, Start: 4, Motor: 0, Frac: 0.85},
			{Kind: WindGust, Start: 5, Vec: mathx.V3(2, 1, 0)},
			{Kind: LinkOutage, Start: 6},
			{Kind: BatterySag, Start: 6, Mag: 0.6, Frac: 0.3},
			{Kind: GPSDenial, Start: 5, Duration: 20},
		}},
		Link: LinkLoss{Drop: 0.1, Corrupt: 0.1, Dup: 0.05, Trunc: 0.05, Reorder: 0.05},
	}
}

// StandardScenarios is the faultcamp default set: one axis at a time, then
// the severe compound, all at the same seed so every row shares one
// fault-free baseline.
func StandardScenarios(seed int64) []Scenario {
	return []Scenario{
		{Name: "fault-free", Seed: seed},
		{
			Name: "gps-denial", Seed: seed,
			Plan: Plan{Name: "gps-denial", Events: []Event{
				{Kind: GPSDenial, Start: 8, Duration: 12},
			}},
		},
		{
			Name: "gps-flaky", Seed: seed,
			Plan: Plan{Name: "gps-flaky", Events: []Event{
				{Kind: SensorDropout, Sensor: sensors.SensorGPS, Start: 5, Duration: 30, Prob: 0.5},
			}},
		},
		{
			Name: "radio-outage", Seed: seed,
			Plan: Plan{Name: "radio-outage", Events: []Event{
				{Kind: LinkOutage, Start: 5, Duration: 8},
			}},
		},
		{
			Name: "lossy-telemetry", Seed: seed,
			Link: LinkLoss{Drop: 0.15, Corrupt: 0.15, Dup: 0.1, Trunc: 0.1, Reorder: 0.1},
		},
		{
			Name: "battery-fade", Seed: seed,
			Plan: Plan{Name: "battery-fade", Events: []Event{
				{Kind: BatterySag, Start: 6, Mag: 0.8, Frac: 0.5},
			}},
		},
		{
			Name: "motor-damage", Seed: seed,
			Plan: Plan{Name: "motor-damage", Events: []Event{
				{Kind: MotorDerate, Start: 10, Motor: 1, Frac: 0.7},
				{Kind: WindGust, Start: 10, Vec: mathx.V3(1.5, -1, 0)},
			}},
		},
		SevereScenario(seed),
	}
}
