package faultx

import (
	"encoding/json"
	"fmt"
	"strings"

	"dronedse/autopilot"
	"dronedse/groundstation"
	"dronedse/mathx"
	"dronedse/mission"
	"dronedse/offload"
	"dronedse/platform"
	"dronedse/scenario"
	"dronedse/slam"
)

// Scenario is one campaign entry: a seed, a fault plan, and the telemetry
// link's loss profile.
type Scenario struct {
	Name string
	Seed int64
	Plan Plan
	// Link mangles the telemetry stream to the ground station (zero =
	// clean link).
	Link LinkLoss
}

// LinkLoss is the telemetry LossyLink's probability profile.
type LinkLoss struct {
	Drop, Corrupt, Dup, Trunc, Reorder float64
}

// Outcome classifies how a scenario flight ended.
type Outcome string

// Outcomes, from best to worst.
const (
	// OutcomeCompleted: every waypoint visited, landed, disarmed.
	OutcomeCompleted Outcome = "completed"
	// OutcomeRTL: a failsafe (or mission abort) brought the vehicle home
	// before the mission finished, but it landed intact.
	OutcomeRTL Outcome = "rtl"
	// OutcomeLanded: a failsafe landed in place (battery drained).
	OutcomeLanded Outcome = "landed"
	// OutcomeTimeout: still airborne when the campaign clock expired.
	OutcomeTimeout Outcome = "timeout"
	// OutcomeCrashed: the crash check fired; the vehicle is down hard.
	OutcomeCrashed Outcome = "crashed"
)

// Config shapes every flight in a campaign. The zero value flies the
// flysim reference mission (the box at 5 m on a 3S/3000 pack) for up to
// 240 simulated seconds.
type Config struct {
	// MaxSeconds bounds each flight (default 240).
	MaxSeconds float64
	// TakeoffAltM (default 5) and the box mission derived from it match
	// cmd/flysim, so the fault-free row is bit-identical to flysim.
	TakeoffAltM float64
	// BaseComputeW is the autopilot-board draw before the offload
	// session's share (default platform.FlightComputeW(false), the flysim
	// RPi + Navio2).
	BaseComputeW float64
	// Workload selects what every flight in the campaign does after
	// takeoff (nil = the reference box mission, the historical campaign).
	// Every workload kind thus gets a fault-campaign variant for free:
	// same injectors, same lossy telemetry, same classification.
	Workload mission.Workload
}

func (c Config) withDefaults() Config {
	if c.MaxSeconds <= 0 {
		c.MaxSeconds = 240
	}
	if c.TakeoffAltM <= 0 {
		c.TakeoffAltM = 5
	}
	if c.BaseComputeW <= 0 {
		c.BaseComputeW = platform.FlightComputeW(false)
	}
	return c
}

// Result is one row of the campaign table.
type Result struct {
	Scenario    string  `json:"scenario"`
	Seed        int64   `json:"seed"`
	Outcome     Outcome `json:"outcome"`
	FlightTimeS float64 `json:"flight_time_s"`
	// DeltaFlightTimeS is FlightTimeS minus the fault-free flight at the
	// same seed (zero for the baseline row itself).
	DeltaFlightTimeS float64 `json:"delta_flight_time_s"`
	// MaxPathDivM is the largest true-position divergence from the
	// fault-free trajectory, sampled at 10 Hz over the common duration.
	MaxPathDivM float64 `json:"max_path_divergence_m"`
	// MaxEstErrM is the worst estimator error (|estimate - truth|) seen
	// while airborne — the coasting/degradation signal.
	MaxEstErrM float64 `json:"max_est_err_m"`
	EnergyWh   float64 `json:"energy_wh"`
	// Offload session accounting.
	Fallbacks  int `json:"offload_fallbacks"`
	Recoveries int `json:"offload_recoveries"`
	// Ground-station accounting over the (possibly lossy) telemetry link.
	TelemetryFrames  int    `json:"telemetry_frames"`
	TelemetryDropped int    `json:"telemetry_chunks_dropped"`
	LastEvent        string `json:"last_event"`
}

// Campaign is a full run: the per-seed fault-free baselines plus one row
// per scenario.
type Campaign struct {
	Baselines []Result `json:"baselines"`
	Results   []Result `json:"results"`
}

// runOut carries a Result plus the data needed for baseline comparison.
type runOut struct {
	res  Result
	traj []mathx.Vec3 // true position at 10 Hz
}

// campaignSLAMStats is the fixed per-mission SLAM ledger the offload
// session prices (a mid-size visual-SLAM frame budget; the exact numbers
// only scale the latency model, not the control loop).
func campaignSLAMStats() slam.Stats {
	return slam.Stats{FeatureExtractionOps: 40e6, MatchingOps: 20e6, LocalBAOps: 30e6, Frames: 100}
}

// Run flies the fault-free baseline for every distinct seed plus every
// scenario as lanes of one scenario.Batch: a single engine steps all
// flights tick by tick, fanning fixed-width lane chunks across the
// parallelx pool. Each lane carries its own RNG streams, injector and
// telemetry link, so results are ordered like the input and bit-identical
// at any pool size and any batch composition (the batch engine's lane-
// determinism contract) — the campaign table is byte-identical to running
// every flight serially.
func Run(scenarios []Scenario, cfg Config) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload != nil {
		if err := cfg.Workload.Validate(); err != nil {
			return nil, fmt.Errorf("campaign workload: %w", err)
		}
	}
	for _, sc := range scenarios {
		if err := sc.Plan.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	// Distinct seeds in first-appearance order.
	var seeds []int64
	seen := map[int64]bool{}
	for _, sc := range scenarios {
		if !seen[sc.Seed] {
			seen[sc.Seed] = true
			seeds = append(seeds, sc.Seed)
		}
	}
	// One lane per baseline seed, then one per scenario — a single batch.
	lanes := make([]lane, 0, len(seeds)+len(scenarios))
	for _, seed := range seeds {
		lanes = append(lanes, buildLane(Scenario{Name: "baseline", Seed: seed}, cfg))
	}
	for _, sc := range scenarios {
		lanes = append(lanes, buildLane(sc, cfg))
	}
	specs := make([]scenario.Spec, len(lanes))
	for i := range lanes {
		specs[i] = lanes[i].spec
	}
	results, errs := scenario.RunBatch(specs)
	outs := make([]runOut, len(lanes))
	for i := range lanes {
		if errs[i] != nil {
			panic(errs[i]) // the campaign spec is statically valid
		}
		outs[i] = lanes[i].finish(results[i])
	}
	baseBySeed := make(map[int64]runOut, len(seeds))
	c := &Campaign{}
	for _, b := range outs[:len(seeds)] {
		baseBySeed[b.res.Seed] = b
		c.Baselines = append(c.Baselines, b.res)
	}
	for _, r := range outs[len(seeds):] {
		base := baseBySeed[r.res.Seed]
		r.res.DeltaFlightTimeS = r.res.FlightTimeS - base.res.FlightTimeS
		r.res.MaxPathDivM = maxDivergence(r.traj, base.traj)
		c.Results = append(c.Results, r.res)
	}
	return c, nil
}

// maxDivergence is the largest pointwise distance over the common prefix.
func maxDivergence(a, b []mathx.Vec3) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		if d := a[i].Sub(b[i]).Norm(); d > worst {
			worst = d
		}
	}
	return worst
}

// lane is one batch lane in flight: the Spec the scenario engine flies plus
// the lane-private telemetry plumbing (LossyLink into a ground station) the
// campaign row is scored against after landing. Everything a lane touches
// during stepping is lane-owned, so co-tenant lanes in a batch cannot
// perturb it.
type lane struct {
	sc   Scenario
	spec scenario.Spec
	link *LossyLink
	gs   *groundstation.Station
}

// buildLane assembles a single scenario closed-loop: the flysim stack —
// declared as a scenario.Spec — plus the injector, an offload session
// polling the injected link, and telemetry streamed through a LossyLink
// into a ground station.
func buildLane(sc Scenario, cfg Config) lane {
	inj, err := NewInjector(sc.Plan, sc.Seed)
	if err != nil {
		panic(err) // validated by Run
	}
	link := NewLossyLink(sc.Seed + 1)
	link.DropProb, link.CorruptProb = sc.Link.Drop, sc.Link.Corrupt
	link.DupProb, link.TruncProb = sc.Link.Dup, sc.Link.Trunc
	link.ReorderProb = sc.Link.Reorder
	gs := groundstation.New(nil)
	policy := autopilot.DefaultEnergyPolicy()

	return lane{
		sc:   sc,
		link: link,
		gs:   gs,
		spec: scenario.Spec{
			Seed:         sc.Seed,
			Workload:     cfg.Workload,
			TakeoffAltM:  cfg.TakeoffAltM,
			MaxSeconds:   cfg.MaxSeconds,
			Compute:      scenario.Compute{BaseW: cfg.BaseComputeW},
			EnergyPolicy: &policy,
			Faults:       inj,
			Offload: &scenario.Offload{
				Session: offload.SessionConfig{
					Link: offload.WiFi5GHz(), Node: offload.GroundStationGPU(),
					W: offload.SLAMWorkload(), OnboardW: 2.0, OnboardG: 50,
				},
				Stats: campaignSLAMStats(),
			},
			Telemetry: scenario.Telemetry{Send: func(raw []byte) {
				if got := link.Transmit(raw); len(got) > 0 {
					gs.Consume(got)
				}
			}},
		},
	}
}

// finish drains the lane's telemetry link and folds the flight outcome into
// a campaign row.
func (l lane) finish(res *scenario.Result) runOut {
	if tail := l.link.Transmit(l.link.Flush()); len(tail) > 0 {
		l.gs.Consume(tail)
	}
	return runOut{
		traj: res.Trajectory,
		res: Result{
			Scenario:         l.sc.Name,
			Seed:             l.sc.Seed,
			Outcome:          classify(res),
			FlightTimeS:      res.FlightTimeS,
			MaxEstErrM:       res.MaxEstErrM,
			EnergyWh:         res.EnergyWh,
			Fallbacks:        res.Fallbacks,
			Recoveries:       res.Recoveries,
			TelemetryFrames:  l.gs.State().Frames,
			TelemetryDropped: l.link.Stats.Dropped,
			LastEvent:        res.LastEvent,
		},
	}
}

// classify reads the flight's end state and event log into an Outcome.
func classify(res *scenario.Result) Outcome {
	for _, e := range res.Log.Events() {
		if strings.Contains(e.Text, "crash detected") {
			return OutcomeCrashed
		}
	}
	if res.FinalMode != autopilot.Disarmed {
		return OutcomeTimeout
	}
	// res.Completed is the waypoint-mission notion; the workload's own
	// Completed covers the kinds without one (hover's full loiter, follow's
	// full track). For waypoint workloads the two agree, so the historical
	// box-campaign classification is unchanged.
	if res.Completed || res.Workload.Completed {
		return OutcomeCompleted
	}
	for _, e := range res.Log.Events() {
		if strings.Contains(e.Text, "failsafe land") {
			return OutcomeLanded
		}
	}
	return OutcomeRTL
}

// Table renders the campaign as a fixed-width text table. The format is
// fully determined by the results, so equal campaigns render byte-equal.
func (c *Campaign) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %-10s %9s %9s %9s %8s %7s %5s %5s  %s\n",
		"scenario", "seed", "outcome", "flight_s", "dflight_s", "pathdiv_m",
		"esterr_m", "Wh", "fall", "recov", "last_event")
	row := func(r Result) {
		fmt.Fprintf(&b, "%-18s %6d %-10s %9.2f %9.2f %9.2f %8.2f %7.2f %5d %5d  %s\n",
			r.Scenario, r.Seed, r.Outcome, r.FlightTimeS, r.DeltaFlightTimeS,
			r.MaxPathDivM, r.MaxEstErrM, r.EnergyWh, r.Fallbacks, r.Recoveries,
			r.LastEvent)
	}
	for _, r := range c.Baselines {
		row(r)
	}
	for _, r := range c.Results {
		row(r)
	}
	return b.String()
}

// JSON renders the campaign as indented JSON.
func (c *Campaign) JSON() ([]byte, error) { return json.MarshalIndent(c, "", "  ") }
