// Package faultx is the deterministic fault-injection layer: a seed-driven
// scheduler of timed (and optionally stochastic) fault events that hooks
// into the sensor suite, the plant, the battery, the environment, the
// offload session and the telemetry link — without changing any of their
// happy paths. A zero Plan run is bit-identical to a run with no injector
// at all, which is what makes campaign deltas attributable to the faults.
//
// The paper's design-space methodology prices components under nominal
// conditions; this package supplies the other axis — how a chosen design
// degrades when the field misbehaves (GPS denial, radio outages, battery
// fade, motor damage, gusts) — and feeds the outcome back through the same
// Equation 7 flight-time model via offload.Session.FallbackCostMin.
package faultx

import (
	"fmt"
	"math/rand"

	"dronedse/mathx"
	"dronedse/power"
	"dronedse/sensors"
	"dronedse/sim"
)

// Kind enumerates fault event types.
type Kind int

// Fault kinds.
const (
	// SensorDropout suppresses a sensor's samples (all of them, or a
	// stochastic fraction Prob of them).
	SensorDropout Kind = iota
	// SensorStuck freezes a sensor at its last delivered sample.
	SensorStuck
	// SensorBias adds Vec (or Mag on the primary axis) to a sensor's
	// readings — a bias jump while active.
	SensorBias
	// GPSDenial jams GPS: samples drop and the autopilot is told the
	// constellation is gone (estimator coasts, failsafe clock starts).
	GPSDenial
	// BatterySag derates the pack: Mag volts of extra sag and Frac
	// capacity fade.
	BatterySag
	// MotorDerate scales motor Motor's thrust to Frac of commanded.
	MotorDerate
	// WindGust adds a step gust Vec (m/s) to the environment wind field.
	WindGust
	// LinkOutage takes the offload radio link down.
	LinkOutage
	// LinkDegrade scales the offload link bandwidth to Frac of nominal.
	LinkDegrade
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SensorDropout:
		return "sensor-dropout"
	case SensorStuck:
		return "sensor-stuck"
	case SensorBias:
		return "sensor-bias"
	case GPSDenial:
		return "gps-denial"
	case BatterySag:
		return "battery-sag"
	case MotorDerate:
		return "motor-derate"
	case WindGust:
		return "wind-gust"
	case LinkOutage:
		return "link-outage"
	case LinkDegrade:
		return "link-degrade"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault. Which fields matter depends on Kind.
type Event struct {
	Kind Kind
	// Start is the activation time in simulated seconds.
	Start float64
	// Duration bounds the event; <= 0 means it persists to the end.
	Duration float64
	// Sensor targets sensor events (sensors.SensorIMU, SensorGPS, ...).
	Sensor string
	// Motor indexes motor events.
	Motor int
	// Frac is the kind-specific fraction: MotorDerate remaining thrust,
	// LinkDegrade bandwidth scale, BatterySag capacity fade.
	Frac float64
	// Mag is the kind-specific scalar: BatterySag extra volts, scalar
	// sensor bias (baro meters, mag radians).
	Mag float64
	// Vec is the vector payload: sensor bias or gust velocity (m/s).
	Vec mathx.Vec3
	// Prob, for SensorDropout, drops each sample independently with this
	// probability instead of all of them (0 means drop everything).
	Prob float64
}

// Active reports whether the event covers time t.
func (e Event) Active(t float64) bool {
	return t >= e.Start && (e.Duration <= 0 || t < e.Start+e.Duration)
}

// Plan is a named fault schedule.
type Plan struct {
	Name   string
	Events []Event
}

// Validate rejects malformed plans before a campaign spends time flying
// them.
func (p Plan) Validate() error {
	for i, e := range p.Events {
		if e.Start < 0 {
			return fmt.Errorf("faultx: event %d starts at %v", i, e.Start)
		}
		switch e.Kind {
		case SensorDropout, SensorStuck, SensorBias:
			switch e.Sensor {
			case sensors.SensorIMU, sensors.SensorMag, sensors.SensorBaro, sensors.SensorGPS:
			default:
				return fmt.Errorf("faultx: event %d targets unknown sensor %q", i, e.Sensor)
			}
			if e.Kind == SensorDropout && (e.Prob < 0 || e.Prob > 1) {
				return fmt.Errorf("faultx: event %d dropout prob %v outside [0,1]", i, e.Prob)
			}
		case MotorDerate:
			if e.Motor < 0 || e.Motor >= sim.NumMotors {
				return fmt.Errorf("faultx: event %d motor %d out of range", i, e.Motor)
			}
			if e.Frac < 0 || e.Frac > 1 {
				return fmt.Errorf("faultx: event %d derate frac %v outside [0,1]", i, e.Frac)
			}
		case BatterySag:
			if e.Mag < 0 || e.Frac < 0 || e.Frac > 0.95 {
				return fmt.Errorf("faultx: event %d battery sag %v/%v out of range", i, e.Mag, e.Frac)
			}
		case LinkDegrade:
			if e.Frac < 0 || e.Frac > 1 {
				return fmt.Errorf("faultx: event %d link scale %v outside [0,1]", i, e.Frac)
			}
		case GPSDenial, WindGust, LinkOutage:
		default:
			return fmt.Errorf("faultx: event %d has unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Injector executes a Plan against a bound vehicle. It implements
// sensors.FaultView (sensor faults), autopilot.FaultSignals (declared GPS
// denial) and offload.LinkProbe (radio condition) — one object wired into
// three layers of the stack, all through interfaces the host packages own,
// so faultx stays dependency-light and the hosts stay fault-agnostic.
type Injector struct {
	plan Plan
	rng  *rand.Rand

	quad *sim.Quad
	pack *power.Pack
	env  *sim.Environment
}

// NewInjector builds an injector for plan; seed drives every stochastic
// decision (dropout coin flips), so equal seeds replay identically.
func NewInjector(plan Plan, seed int64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan, rng: rand.New(rand.NewSource(seed))}, nil
}

// Plan returns the schedule the injector executes.
func (in *Injector) Plan() Plan { return in.plan }

// Bind attaches the injector to the vehicle's plant, pack and environment.
// Any of them may be nil; the corresponding effects are skipped.
func (in *Injector) Bind(q *sim.Quad, p *power.Pack, e *sim.Environment) {
	in.quad, in.pack, in.env = q, p, e
}

// Apply pushes the plan's physical effects (motor derate, battery sag,
// gusts) into the bound components for time t. Call it once per outer-loop
// tick; it is idempotent for a given t and writes nominal values when no
// event is active, so expiring events heal.
func (in *Injector) Apply(t float64) {
	if in.quad != nil {
		var eff [sim.NumMotors]float64
		for i := range eff {
			eff[i] = 1
		}
		for _, e := range in.plan.Events {
			if e.Kind == MotorDerate && e.Active(t) && e.Frac < eff[e.Motor] {
				eff[e.Motor] = e.Frac
			}
		}
		for i, f := range eff {
			in.quad.SetMotorEfficiency(i, f)
		}
	}
	if in.pack != nil {
		sag, fade := 0.0, 0.0
		for _, e := range in.plan.Events {
			if e.Kind == BatterySag && e.Active(t) {
				sag += e.Mag
				if e.Frac > fade {
					fade = e.Frac
				}
			}
		}
		in.pack.SetFault(sag, fade)
	}
	if in.env != nil {
		var gust mathx.Vec3
		for _, e := range in.plan.Events {
			if e.Kind == WindGust && e.Active(t) {
				gust = gust.Add(e.Vec)
			}
		}
		in.env.GustOffset = gust
	}
}

// SensorFault implements sensors.FaultView: the combined fault state of one
// sensor at time t. Stochastic dropouts draw from the injector's seeded rng,
// so the decision sequence is reproducible across runs of the same plan.
func (in *Injector) SensorFault(sensor string, t float64) sensors.FaultState {
	var st sensors.FaultState
	for _, e := range in.plan.Events {
		if !e.Active(t) {
			continue
		}
		if e.Kind == GPSDenial && sensor == sensors.SensorGPS {
			st.Dropout = true
			continue
		}
		if e.Sensor != sensor {
			continue
		}
		switch e.Kind {
		case SensorDropout:
			if e.Prob <= 0 || in.rng.Float64() < e.Prob {
				st.Dropout = true
			}
		case SensorStuck:
			st.Stuck = true
		case SensorBias:
			b := e.Vec
			if b == (mathx.Vec3{}) && e.Mag != 0 {
				b = mathx.V3(e.Mag, 0, 0)
			}
			st.Bias = st.Bias.Add(b)
		}
	}
	return st
}

// GPSDenied implements autopilot.FaultSignals.
func (in *Injector) GPSDenied(t float64) bool {
	for _, e := range in.plan.Events {
		if e.Kind == GPSDenial && e.Active(t) {
			return true
		}
	}
	return false
}

// LinkUp implements offload.LinkProbe: false while any LinkOutage covers t.
func (in *Injector) LinkUp(t float64) bool {
	for _, e := range in.plan.Events {
		if e.Kind == LinkOutage && e.Active(t) {
			return false
		}
	}
	return true
}

// BandwidthScale implements offload.LinkProbe: the most degraded active
// LinkDegrade fraction (1 when none).
func (in *Injector) BandwidthScale(t float64) float64 {
	scale := 1.0
	for _, e := range in.plan.Events {
		if e.Kind == LinkDegrade && e.Active(t) && e.Frac < scale {
			scale = e.Frac
		}
	}
	return scale
}
