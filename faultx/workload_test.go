package faultx

import (
	"math"
	"strings"
	"testing"

	"dronedse/mathx"
	"dronedse/mission"
	"dronedse/parallelx"
)

// TestWorkloadCampaignPoolInvariance extends the campaign determinism
// contract to the new workloads: a fault campaign flown over the coverage,
// delivery and follow workloads produces a byte-identical outcome table at
// any pool size.
func TestWorkloadCampaignPoolInvariance(t *testing.T) {
	scs := []Scenario{
		{
			Name: "gps-denial", Seed: 21,
			Plan: Plan{Events: []Event{{Kind: GPSDenial, Start: 8, Duration: 12}}},
		},
		SevereScenario(21),
	}
	workloads := []mission.Workload{
		mission.Coverage{WidthM: 12, HeightM: 12, SpacingM: 6},
		mission.Delivery{Legs: []mission.DeliveryLeg{
			{Pickup: mathx.V3(6, 0, 6), Dropoff: mathx.V3(6, 8, 6), PayloadKg: 0.6}}},
		mission.Follow{DurationS: 20},
	}
	for _, wl := range workloads {
		cfg := Config{MaxSeconds: 120, Workload: wl}
		run := func(pool int) string {
			old := parallelx.SetPoolSize(pool)
			defer parallelx.SetPoolSize(old)
			c, err := Run(scs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return c.Table()
		}
		t1 := run(1)
		if t1 != run(4) {
			t.Errorf("%s: pool 1 vs 4 tables differ", wl.Kind())
		}
		if t1 != run(8) {
			t.Errorf("%s: pool 1 vs 8 tables differ", wl.Kind())
		}
		// The fault-free baseline row must exist and complete, so the
		// campaign is actually exercising the workload, not aborting it.
		if !strings.Contains(t1, "baseline") {
			t.Fatalf("%s: campaign table missing the baseline row:\n%s", wl.Kind(), t1)
		}
	}
}

// TestWorkloadCampaignRejectsBadWorkload pins the upfront validation: a
// campaign over a malformed workload fails before any flight is launched.
func TestWorkloadCampaignRejectsBadWorkload(t *testing.T) {
	_, err := Run(StandardScenarios(1), Config{
		MaxSeconds: 60,
		Workload:   mission.Follow{DurationS: math.NaN()},
	})
	if err == nil {
		t.Fatal("campaign accepted a malformed workload")
	}
}
