#!/bin/sh
# Chaos harness for the crash-safe fleetd pipeline, run by `make smoke-cmds`.
#
# Property under test: a journaled fleetd can be killed at any moment and,
# after restarting on the same journal directory, every accepted job still
# reaches a terminal state with digests bit-identical to a run that was
# never interrupted. The baseline phase records the uninterrupted digest
# table; every chaos phase must diff clean against it.
#
# Phases:
#   baseline   submit, finish, record digests, SIGTERM-drain (must exit 0)
#   sigkill    kill -9 mid-campaign, restart, recover, diff digests
#   failpoint  fleetd built with -tags failpoint self-SIGKILLs (exit 137)
#              inside two durability windows — after-harvest/before-DONE and
#              after-journal-write/before-admit — restart, diff digests
#   drain      SIGTERM mid-campaign: graceful exit 0, queued jobs requeued,
#              restart finishes them, diff digests
set -eu

WORK=$(mktemp -d)
FLEETD_PID=""
cleanup() {
    [ -n "$FLEETD_PID" ] && kill -9 "$FLEETD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "fleet_chaos: $*" >&2
    tail -40 "$WORK/fleetd.log" >&2 || true
    exit 1
}

go build -tags failpoint -o "$WORK/fleetd" ./cmd/fleetd
go build -o "$WORK/fleetctl" ./cmd/fleetctl

JOBS=16
SUBMIT="submit -n $JOBS -hover -seconds 10 -vary 6 -seed 50"

# start_fleetd <journal-dir>: boot fleetd on dynamic ports against the given
# journal and point CTL at it. Extra environment (failpoints) via FLEETD_ENV.
start_fleetd() {
    rm -f "$WORK/addr"
    env $FLEETD_ENV "$WORK/fleetd" -http 127.0.0.1:0 -telem 127.0.0.1:0 \
        -addrfile "$WORK/addr" -shards 2 -lanes 4 -journal "$1" \
        >>"$WORK/fleetd.log" 2>&1 &
    FLEETD_PID=$!
    i=0
    while [ ! -s "$WORK/addr" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "fleetd never wrote its addrfile"
        sleep 0.1
    done
    . "$WORK/addr" # sets http_addr / telem_addr
    CTL="$WORK/fleetctl -addr http://$http_addr -telem $telem_addr -retries 8 -wait-ready 15s"
}

# finish <out-file>: wait for every job, verify digest agreement, snapshot
# the per-job digest table.
finish() {
    $CTL wait -verify -timeout 300s
    $CTL digests >"$1"
    [ "$(wc -l <"$1")" -eq "$JOBS" ] || fail "$1: expected $JOBS digest lines"
}

# stop_graceful: SIGTERM must drain and exit 0 — the graceful-shutdown
# contract.
stop_graceful() {
    kill -TERM "$FLEETD_PID"
    rc=0
    wait "$FLEETD_PID" || rc=$?
    FLEETD_PID=""
    [ "$rc" -eq 0 ] || fail "graceful drain exited $rc, want 0"
}

echo "fleet_chaos: baseline — uninterrupted campaign"
FLEETD_ENV="" start_fleetd "$WORK/j-base"
$CTL $SUBMIT >/dev/null
finish "$WORK/baseline.txt"
stop_graceful

echo "fleet_chaos: phase sigkill — kill -9 mid-campaign, recover, compare"
FLEETD_ENV="" start_fleetd "$WORK/j-kill"
$CTL $SUBMIT >/dev/null
sleep 0.1
kill -9 "$FLEETD_PID"
wait "$FLEETD_PID" 2>/dev/null || true
FLEETD_PID=""
FLEETD_ENV="" start_fleetd "$WORK/j-kill"
grep -q "journal replay" "$WORK/fleetd.log" || fail "restart did not replay the journal"
finish "$WORK/kill9.txt"
diff "$WORK/baseline.txt" "$WORK/kill9.txt" || fail "digests diverged after SIGKILL recovery"
stop_graceful

for fp in fleet/harvested fleet/submit-journaled; do
    echo "fleet_chaos: phase failpoint — process dies at $fp"
    dir="$WORK/j-$(echo "$fp" | tr / -)"
    FLEETD_ENV="FLEET_FAILPOINT=$fp" start_fleetd "$dir"
    # The submit-window failpoint kills fleetd inside the POST, so the
    # submit command itself may die with the connection.
    $CTL $SUBMIT >/dev/null 2>&1 || true
    rc=0
    wait "$FLEETD_PID" || rc=$?
    FLEETD_PID=""
    [ "$rc" -eq 137 ] || fail "expected self-SIGKILL (137) at $fp, got $rc"
    FLEETD_ENV="" start_fleetd "$dir"
    finish "$WORK/fp.txt"
    diff "$WORK/baseline.txt" "$WORK/fp.txt" || fail "digests diverged after $fp crash"
    stop_graceful
done

echo "fleet_chaos: phase drain — SIGTERM mid-campaign, requeue, finish"
FLEETD_ENV="" start_fleetd "$WORK/j-drain"
$CTL $SUBMIT >/dev/null
sleep 0.1
stop_graceful
FLEETD_ENV="" start_fleetd "$WORK/j-drain"
finish "$WORK/drain.txt"
diff "$WORK/baseline.txt" "$WORK/drain.txt" || fail "digests diverged across a graceful drain"
stop_graceful

echo "fleet_chaos: ok"
