#!/bin/sh
# End-to-end smoke for the fleetd/fleetctl pipeline, run by `make smoke-cmds`.
#
# Phase 1: start fleetd on dynamic ports, run one job streaming its live
# telemetry with a local-replay digest cross-check, then 64 varied jobs
# verified for same-spec digest agreement.
#
# Phase 2: attach a stalled telemetry subscriber, submit FLEET_JOBS hover
# flights (default 1024), and require the server to complete them all while
# sustaining at least min(FLEET_JOBS, 1024) concurrent lanes — completing
# within the timeout is the proof that a dead subscriber never stalls the
# tick loop.
#
# Opt-in scale: FLEET_JOBS=10240 FLEET_LITE=1 sh scripts/fleet_smoke.sh
# (FLEET_LITE starts fleetd with -lite -lanes 10240 so per-flight artifacts
# are dropped after digesting).
set -eu

JOBS=${FLEET_JOBS:-1024}
LANES=1024
LITEFLAGS=""
if [ "${FLEET_LITE:-0}" != "0" ]; then
    LANES=$JOBS
    LITEFLAGS="-lite -lanes $JOBS"
fi
if [ "$JOBS" -lt "$LANES" ]; then MINPEAK=$JOBS; else MINPEAK=$LANES; fi

WORK=$(mktemp -d)
FLEETD_PID=""
STALL_PID=""
cleanup() {
    [ -n "$STALL_PID" ] && kill "$STALL_PID" 2>/dev/null || true
    [ -n "$FLEETD_PID" ] && kill "$FLEETD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/fleetd" ./cmd/fleetd
go build -o "$WORK/fleetctl" ./cmd/fleetctl

"$WORK/fleetd" -http 127.0.0.1:0 -telem 127.0.0.1:0 -addrfile "$WORK/addr" \
    $LITEFLAGS >"$WORK/fleetd.log" 2>&1 &
FLEETD_PID=$!

i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "fleet_smoke: fleetd never wrote its addrfile" >&2
        cat "$WORK/fleetd.log" >&2
        exit 1
    fi
    sleep 0.1
done
. "$WORK/addr" # sets http_addr / telem_addr
CTL="$WORK/fleetctl -addr http://$http_addr -telem $telem_addr"

echo "fleet_smoke: phase 1 — live stream + digest cross-check, then 64 jobs"
$CTL run -hover -seconds 30 -every 100 -seed 42 -check >/dev/null
$CTL submit -n 64 -hover -seconds 2 -vary 8 >/dev/null
$CTL wait -verify -timeout 120s

echo "fleet_smoke: phase 2 — $JOBS jobs with a stalled subscriber (min peak $MINPEAK)"
STALL_ID=$($CTL submit -hover -seconds 30 -seed 99)
$CTL stream -id "$STALL_ID" -stall >/dev/null &
STALL_PID=$!
sleep 0.2
$CTL submit -n "$JOBS" -hover -seconds 2 -vary 16 >/dev/null
$CTL wait -verify -min-peak "$MINPEAK" -timeout 600s

kill "$STALL_PID" 2>/dev/null || true
STALL_PID=""
$CTL shutdown
wait "$FLEETD_PID" 2>/dev/null || true
FLEETD_PID=""
echo "fleet_smoke: ok"
