// Package fit provides the least-squares model extraction the paper applies
// to its commercial-component survey (§3.1): simple linear regression with
// quality-of-fit measures, plus piecewise and grouped fits matching how the
// paper splits batteries by cell count (Figure 7), ESCs by flight class
// (Figure 8a), and frames by wheelbase regime (Figure 8b).
package fit

import (
	"errors"
	"math"
	"sort"
)

// Linear is a fitted line y = Slope*x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit on its data.
	R2 float64
	// N is the number of points the fit was computed from.
	N int
}

// Eval returns the fitted value at x.
func (l Linear) Eval(x float64) float64 { return l.Slope*x + l.Intercept }

// ErrInsufficientData is returned when a regression has fewer than two
// distinct points.
var ErrInsufficientData = errors.New("fit: need at least two distinct points")

// LinearRegression fits y = a*x + b by ordinary least squares.
func LinearRegression(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("fit: mismatched sample lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Linear{}, ErrInsufficientData
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, ErrInsufficientData
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - (slope*xs[i] + intercept)
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return Linear{Slope: slope, Intercept: intercept, R2: r2, N: len(xs)}, nil
}

// Point is a 2-D sample.
type Point struct{ X, Y float64 }

// GroupedFit fits one line per group key. It mirrors the paper's Figure 7,
// where each battery cell-count configuration gets its own capacity-weight
// line.
func GroupedFit[K comparable](points map[K][]Point) (map[K]Linear, error) {
	out := make(map[K]Linear, len(points))
	for k, ps := range points {
		xs := make([]float64, len(ps))
		ys := make([]float64, len(ps))
		for i, p := range ps {
			xs[i], ys[i] = p.X, p.Y
		}
		l, err := LinearRegression(xs, ys)
		if err != nil {
			return nil, err
		}
		out[k] = l
	}
	return out, nil
}

// Piecewise2 fits two linear segments split at breakX: points with X < breakX
// go to Low, the rest to High. This is the Figure 8b frame model (flat small
// frames below 200 mm, a steep line above).
type Piecewise2 struct {
	BreakX float64
	Low    Linear
	High   Linear
}

// FitPiecewise2 performs the two-segment fit. Segments with fewer than two
// points yield a zero-valued Linear for that side and no error, matching the
// paper's treatment of the sparse small-frame region.
func FitPiecewise2(points []Point, breakX float64) Piecewise2 {
	var lowX, lowY, highX, highY []float64
	for _, p := range points {
		if p.X < breakX {
			lowX, lowY = append(lowX, p.X), append(lowY, p.Y)
		} else {
			highX, highY = append(highX, p.X), append(highY, p.Y)
		}
	}
	out := Piecewise2{BreakX: breakX}
	if l, err := LinearRegression(lowX, lowY); err == nil {
		out.Low = l
	}
	if h, err := LinearRegression(highX, highY); err == nil {
		out.High = h
	}
	return out
}

// Eval evaluates the piecewise model at x.
func (p Piecewise2) Eval(x float64) float64 {
	if x < p.BreakX {
		return p.Low.Eval(x)
	}
	return p.High.Eval(x)
}

// RMSE returns the root-mean-square error of predictions ys_hat vs ys.
func RMSE(ys, ysHat []float64) float64 {
	if len(ys) == 0 || len(ys) != len(ysHat) {
		return math.NaN()
	}
	s := 0.0
	for i := range ys {
		d := ys[i] - ysHat[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(ys)))
}

// Interp1 linearly interpolates y at x over the points (sorted internally),
// clamping outside the domain. It backs the motor-survey lookup tables
// (Figure 9). Callers on a hot path with an already-sorted table should use
// Interp1Sorted, which does not copy.
func Interp1(points []Point, x float64) float64 {
	if len(points) == 0 {
		return math.NaN()
	}
	ps := append([]Point(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].X < ps[j].X })
	return Interp1Sorted(ps, x)
}

// Interp1Sorted is Interp1 over points already sorted ascending by X. It
// performs no allocation, so lookup tables evaluated once per Resolve call
// (the design-space sweeps visit millions) can be package-level constants.
func Interp1Sorted(ps []Point, x float64) float64 {
	if len(ps) == 0 {
		return math.NaN()
	}
	if x <= ps[0].X {
		return ps[0].Y
	}
	if x >= ps[len(ps)-1].X {
		return ps[len(ps)-1].Y
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].X >= x })
	a, b := ps[i-1], ps[i]
	if b.X == a.X {
		return a.Y
	}
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}
