package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	l, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", l.R2)
	}
	if l.N != 4 {
		t.Errorf("N = %d", l.N)
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := r.Float64() * 100
		xs = append(xs, x)
		ys = append(ys, 0.5*x+10+r.NormFloat64()*2)
	}
	l, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-0.5) > 0.02 {
		t.Errorf("slope = %v, want ~0.5", l.Slope)
	}
	if math.Abs(l.Intercept-10) > 1.5 {
		t.Errorf("intercept = %v, want ~10", l.Intercept)
	}
	if l.R2 < 0.97 {
		t.Errorf("R2 = %v, want > 0.97", l.R2)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearRegression([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("vertical data accepted")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestLinearRegressionRecoversProperty(t *testing.T) {
	// For any slope/intercept in a reasonable range, a noiseless fit
	// recovers them.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		slope := (r.Float64() - 0.5) * 20
		inter := (r.Float64() - 0.5) * 200
		var xs, ys []float64
		for i := 0; i < 10; i++ {
			x := float64(i) * 7.3
			xs = append(xs, x)
			ys = append(ys, slope*x+inter)
		}
		l, err := LinearRegression(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(l.Slope-slope) < 1e-9 && math.Abs(l.Intercept-inter) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGroupedFit(t *testing.T) {
	points := map[int][]Point{
		1: {{0, 0}, {1, 1}, {2, 2}},
		2: {{0, 5}, {1, 7}, {2, 9}},
	}
	fits, err := GroupedFit(points)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fits[1].Slope-1) > 1e-12 || math.Abs(fits[2].Slope-2) > 1e-12 {
		t.Errorf("grouped fits wrong: %+v", fits)
	}
	if math.Abs(fits[2].Intercept-5) > 1e-12 {
		t.Errorf("group 2 intercept = %v", fits[2].Intercept)
	}
}

func TestGroupedFitPropagatesError(t *testing.T) {
	points := map[string][]Point{"bad": {{1, 1}}}
	if _, err := GroupedFit(points); err == nil {
		t.Error("insufficient group accepted")
	}
}

func TestPiecewise2(t *testing.T) {
	var pts []Point
	for x := 0.0; x < 200; x += 20 {
		pts = append(pts, Point{x, 100}) // flat low region
	}
	for x := 200.0; x <= 1000; x += 50 {
		pts = append(pts, Point{x, 1.2*x - 160})
	}
	pw := FitPiecewise2(pts, 200)
	if math.Abs(pw.Low.Slope) > 1e-9 || math.Abs(pw.Low.Intercept-100) > 1e-9 {
		t.Errorf("low fit = %+v", pw.Low)
	}
	if math.Abs(pw.High.Slope-1.2) > 1e-9 {
		t.Errorf("high slope = %v", pw.High.Slope)
	}
	if got := pw.Eval(100); math.Abs(got-100) > 1e-9 {
		t.Errorf("Eval(100) = %v", got)
	}
	if got := pw.Eval(500); math.Abs(got-440) > 1e-9 {
		t.Errorf("Eval(500) = %v", got)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("perfect RMSE = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Error("empty RMSE should be NaN")
	}
}

func TestInterp1(t *testing.T) {
	pts := []Point{{0, 0}, {10, 100}, {20, 100}}
	if got := Interp1(pts, 5); math.Abs(got-50) > 1e-12 {
		t.Errorf("Interp1(5) = %v", got)
	}
	if got := Interp1(pts, -5); got != 0 {
		t.Errorf("clamp low = %v", got)
	}
	if got := Interp1(pts, 50); got != 100 {
		t.Errorf("clamp high = %v", got)
	}
	if got := Interp1(pts, 15); math.Abs(got-100) > 1e-12 {
		t.Errorf("Interp1(15) = %v", got)
	}
	if !math.IsNaN(Interp1(nil, 1)) {
		t.Error("empty Interp1 should be NaN")
	}
	// unsorted input handled
	rev := []Point{{20, 100}, {0, 0}, {10, 100}}
	if got := Interp1(rev, 5); math.Abs(got-50) > 1e-12 {
		t.Errorf("unsorted Interp1(5) = %v", got)
	}
}
