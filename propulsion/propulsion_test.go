package propulsion

import (
	"math"
	"testing"
	"testing/quick"

	"dronedse/units"
)

func TestIdealInducedPower(t *testing.T) {
	// Doubling thrust raises ideal power by 2^1.5.
	a := IdealInducedPower(5, 0.05, units.AirDensity)
	b := IdealInducedPower(10, 0.05, units.AirDensity)
	if math.Abs(b/a-math.Pow(2, 1.5)) > 1e-9 {
		t.Errorf("power scaling = %v, want 2^1.5", b/a)
	}
	// Larger disks need less power for the same thrust.
	small := IdealInducedPower(5, 0.01, units.AirDensity)
	large := IdealInducedPower(5, 0.1, units.AirDensity)
	if large >= small {
		t.Error("disk loading effect inverted")
	}
	if IdealInducedPower(0, 0.05, units.AirDensity) != 0 {
		t.Error("zero thrust should need zero power")
	}
	if IdealInducedPower(5, 0, units.AirDensity) != 0 {
		t.Error("degenerate disk should return 0")
	}
}

func TestIdealInducedPowerSanity(t *testing.T) {
	// A 450 mm drone (10" props) hovering at 1.4 kg total: per rotor
	// 3.43 N on a 0.0507 m^2 disk → ~18 W ideal, ~150 W electrical total.
	tN := units.GramsToNewtons(1400) / 4
	p := IdealInducedPower(tN, units.DiskArea(units.InchToMeter(10)), units.AirDensity)
	if p < 12 || p > 25 {
		t.Errorf("per-rotor ideal hover power = %v W, want ~18 W", p)
	}
	elec := 4 * ElectricalPower(tN, units.InchToMeter(10), DefaultEfficiencies())
	if elec < 100 || elec > 220 {
		t.Errorf("total electrical hover power = %v W, want ~130-160 W (paper's drone: 130 W)", elec)
	}
}

func TestMotorCurrent(t *testing.T) {
	eff := DefaultEfficiencies()
	tN := units.GramsToNewtons(700)
	i3s := MotorCurrent(tN, units.InchToMeter(10), units.CellsToVoltage(3), eff)
	i6s := MotorCurrent(tN, units.InchToMeter(10), units.CellsToVoltage(6), eff)
	if math.Abs(i3s/i6s-2) > 1e-9 {
		t.Errorf("current ratio = %v, want 2 (voltage halves current)", i3s/i6s)
	}
	if MotorCurrent(tN, 0.254, 0, eff) != 0 {
		t.Error("zero voltage should yield zero current")
	}
}

func TestRotorThrustTorque(t *testing.T) {
	r := DesignRotor(units.InchToMeter(10), units.GramsToNewtons(1400))
	// at MaxOmega*0.85 the rotor produces its design max thrust
	got := r.Thrust(r.MaxOmega * 0.85)
	want := units.GramsToNewtons(1400)
	if math.Abs(got-want)/want > 1e-6 {
		t.Errorf("design thrust = %v, want %v", got, want)
	}
	// torque positive and much smaller than thrust*arm scale
	if r.Torque(r.MaxOmega) <= 0 {
		t.Error("torque must be positive at speed")
	}
	// clamping
	if r.Thrust(r.MaxOmega*2) != r.Thrust(r.MaxOmega) {
		t.Error("over-speed not clamped")
	}
	if r.Thrust(-5) != 0 {
		t.Error("negative speed should clamp to zero thrust")
	}
}

func TestOmegaForThrustInverse(t *testing.T) {
	r := DesignRotor(units.InchToMeter(5), 10)
	f := func(frac float64) bool {
		frac = math.Abs(math.Mod(frac, 1))
		tN := frac * 10
		w := r.OmegaForThrust(tN)
		return math.Abs(r.Thrust(w)-tN) < 1e-9*(1+tN)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if r.OmegaForThrust(-1) != 0 {
		t.Error("negative thrust should give zero speed")
	}
}

func TestDesignRotorTimeConstants(t *testing.T) {
	racing := DesignRotor(units.InchToMeter(2), 3)
	lifter := DesignRotor(units.InchToMeter(20), 60)
	if racing.TimeConstant >= lifter.TimeConstant {
		t.Error("large rotors must respond slower (the physics limit of §2.1.3-D)")
	}
	if racing.TimeConstant < 0.005 || lifter.TimeConstant > 0.2 {
		t.Errorf("time constants implausible: %v / %v", racing.TimeConstant, lifter.TimeConstant)
	}
}

func TestKvForDesignTrend(t *testing.T) {
	// Figure 9 annotations: tiny props at 1S need extreme Kv, 20" at 6S
	// need low Kv.
	tiny := KvForDesign(units.GramsToNewtons(100), units.InchToMeter(1), units.CellsToVoltage(1))
	big := KvForDesign(units.GramsToNewtons(3000), units.InchToMeter(20), units.CellsToVoltage(6))
	if tiny < 10000 {
		t.Errorf("1\"/1S Kv = %v, want >10000", tiny)
	}
	if big > 2000 {
		t.Errorf("20\"/6S Kv = %v, want <2000", big)
	}
	if KvForDesign(1, 0.1, 0) != 0 {
		t.Error("zero voltage should give zero Kv")
	}
}

func TestRequiredRPMScale(t *testing.T) {
	// 10" prop lifting 350 g should spin in the low thousands of RPM.
	rpm := RequiredRPM(units.GramsToNewtons(350), units.InchToMeter(10))
	if rpm < 2000 || rpm > 9000 {
		t.Errorf("10\" RPM = %v, want hobby-typical range", rpm)
	}
	// Smaller props need far higher RPM for the same thrust.
	rpmSmall := RequiredRPM(units.GramsToNewtons(350), units.InchToMeter(3))
	if rpmSmall <= rpm*2 {
		t.Errorf("3\" RPM = %v, should be much higher than 10\" %v", rpmSmall, rpm)
	}
}

func TestLoadFractions(t *testing.T) {
	if HoverLoadFraction < 0.20 || HoverLoadFraction > 0.30 {
		t.Error("hover load must be in the paper's 20-30% band")
	}
	if ManeuverLoadFraction < 0.60 || ManeuverLoadFraction > 0.70 {
		t.Error("maneuver load must be in the paper's 60-70% band")
	}
}
