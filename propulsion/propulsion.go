// Package propulsion models the quadcopter propulsion system (§2.1.1) with
// first-order rotor physics: actuator-disk (momentum) theory for hover and
// climb power, thrust/torque coefficients for the simulator, and the
// Kv/voltage/RPM relationships of Table 3. It is the physics backbone behind
// Figure 9 (per-motor current vs. basic weight) and the power rows of
// Equations 2-3.
package propulsion

import (
	"math"

	"dronedse/units"
)

// Efficiencies capture where electrical watts are lost before becoming
// induced power at the rotor disk. The defaults are typical for hobby-class
// BLDC propulsion and are the calibration knobs that make Figure 10's
// absolute levels land on the paper's validated flight times.
type Efficiencies struct {
	// FigureOfMerit is the rotor's hover figure of merit (ideal induced
	// power / actual aerodynamic power), typically 0.6-0.75.
	FigureOfMerit float64
	// Motor is the BLDC electromechanical efficiency.
	Motor float64
	// ESC is the speed-controller conversion efficiency.
	ESC float64
}

// DefaultEfficiencies are the calibrated defaults used across the repo.
func DefaultEfficiencies() Efficiencies {
	return Efficiencies{FigureOfMerit: 0.70, Motor: 0.85, ESC: 0.95}
}

// chain returns the end-to-end electrical-to-induced-power efficiency.
func (e Efficiencies) chain() float64 { return e.FigureOfMerit * e.Motor * e.ESC }

// IdealInducedPower returns the momentum-theory induced power (W) to produce
// thrust (N) with a rotor disk of the given area (m^2) in air of density rho:
// P = T^(3/2) / sqrt(2 rho A).
//
// T^(3/2) is computed as T*sqrt(T) rather than Pow(T, 1.5): the two agree to
// the last one or two ulps, and this sits on the per-motor per-physics-step
// hot path of every flight simulation (Pow was ~a fifth of a whole flight's
// CPU time). The scenario goldens verify the swap leaves every pinned
// output — trajectory, flight time, campaign table — byte-identical.
func IdealInducedPower(thrustN, diskAreaM2, rho float64) float64 {
	if thrustN <= 0 || diskAreaM2 <= 0 {
		return 0
	}
	return thrustN * math.Sqrt(thrustN) / math.Sqrt(2*rho*diskAreaM2)
}

// ElectricalPower returns the electrical power (W) one motor draws to produce
// thrust (N) with a propeller of diameter m, after the efficiency chain.
func ElectricalPower(thrustN, propDiameterM float64, eff Efficiencies) float64 {
	ideal := IdealInducedPower(thrustN, units.DiskArea(propDiameterM), units.AirDensity)
	return ideal / eff.chain()
}

// MotorCurrent returns the current (A) a motor draws producing thrust (N)
// with the given propeller from a pack of the given voltage.
func MotorCurrent(thrustN, propDiameterM, packVoltage float64, eff Efficiencies) float64 {
	if packVoltage <= 0 {
		return 0
	}
	return ElectricalPower(thrustN, propDiameterM, eff) / packVoltage
}

// Rotor aggregates the quadratic lumped-parameter rotor model used by the
// 6-DOF simulator: thrust = KT * w^2 and torque = KQ * w^2 with w in rad/s.
type Rotor struct {
	// KT is the thrust coefficient in N/(rad/s)^2.
	KT float64
	// KQ is the reaction-torque coefficient in N*m/(rad/s)^2.
	KQ float64
	// MaxOmega is the no-load speed limit in rad/s.
	MaxOmega float64
	// TimeConstant is the first-order spin-up/down lag in seconds; the
	// paper's physical-response argument (§2.1.3-D) rests on this plus
	// airframe inertia, not on compute speed.
	TimeConstant float64
}

// Thrust returns rotor thrust (N) at speed w (rad/s), clamped at MaxOmega.
func (r Rotor) Thrust(w float64) float64 {
	w = clamp(w, 0, r.MaxOmega)
	return r.KT * w * w
}

// Torque returns the aerodynamic reaction torque (N*m) at speed w.
func (r Rotor) Torque(w float64) float64 {
	w = clamp(w, 0, r.MaxOmega)
	return r.KQ * w * w
}

// OmegaForThrust inverts the thrust model: the speed (rad/s) needed for
// thrust t (N), clamped at MaxOmega.
func (r Rotor) OmegaForThrust(t float64) float64 {
	if t <= 0 || r.KT <= 0 {
		return 0
	}
	return clamp(math.Sqrt(t/r.KT), 0, r.MaxOmega)
}

// DesignRotor sizes a lumped rotor for a propeller of diameter m that must
// produce maxThrustN at 85% of its speed ceiling. Coefficients follow the
// blade-element scalings KT ~ rho D^4, KQ ~ rho D^5 with typical
// dimensionless coefficients for hobby propellers.
func DesignRotor(propDiameterM, maxThrustN float64) Rotor {
	const ct = 0.11 // dimensionless thrust coefficient, rev/s convention
	d4 := math.Pow(propDiameterM, 4)
	kt := ct * units.AirDensity * d4 / (4 * math.Pi * math.Pi) // rev^2->rad^2
	wAtMax := math.Sqrt(maxThrustN / kt)
	maxOmega := wAtMax / 0.85
	// Torque/thrust ratio scales with diameter; cq/ct ~ 0.05 D.
	kq := kt * 0.05 * propDiameterM * 10
	// Larger rotors spin up slower: ~15 ms for 2" racing props up to
	// ~120 ms for 20" lifters.
	tau := 0.01 + 0.22*propDiameterM
	return Rotor{KT: kt, KQ: kq, MaxOmega: maxOmega, TimeConstant: tau}
}

// RequiredRPM returns the propeller speed (RPM) to generate thrust (N) with
// the DesignRotor scaling for the given diameter.
func RequiredRPM(thrustN, propDiameterM float64) float64 {
	r := DesignRotor(propDiameterM, thrustN*2) // headroom irrelevant for speed
	return units.RadPerSecToRPM(r.OmegaForThrust(thrustN))
}

// KvForDesign estimates the motor Kv rating (RPM/V) appropriate for reaching
// maxThrustN on the given propeller from a pack of the given voltage,
// assuming the motor's loaded ceiling is ~75% of Kv*V. Figure 9's annotation
// that small high-RPM props need extreme Kv (51000 Kv at 1", 1S) and large
// props need low Kv (420 Kv at 20", 6S) emerges from this relationship.
func KvForDesign(maxThrustN, propDiameterM, packVoltage float64) float64 {
	if packVoltage <= 0 {
		return 0
	}
	rpm := RequiredRPM(maxThrustN, propDiameterM)
	return rpm / (0.75 * packVoltage)
}

// HoverLoadFraction and ManeuverLoadFraction are the flying-load levels the
// paper sweeps (§3.2: hovering 20-30%, maneuvering 60-70% of max current
// draw). Mid-band values are used as the defaults.
const (
	HoverLoadFraction    = 0.25
	ManeuverLoadFraction = 0.65
)

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
