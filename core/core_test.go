package core

import (
	"errors"
	"math"
	"testing"

	"dronedse/components"
)

func mustResolve(t *testing.T, spec Spec) Design {
	t.Helper()
	d, err := Resolve(spec, DefaultParams())
	if err != nil {
		t.Fatalf("Resolve(%+v): %v", spec, err)
	}
	return d
}

func TestResolveValidation(t *testing.T) {
	p := DefaultParams()
	base := DefaultSpec()

	bad := base
	bad.WheelbaseMM = 10
	if _, err := Resolve(bad, p); !errors.Is(err, ErrBadWheelbase) {
		t.Errorf("tiny wheelbase: err = %v", err)
	}
	bad = base
	bad.Cells = 7
	if _, err := Resolve(bad, p); !errors.Is(err, ErrBadCells) {
		t.Errorf("7S: err = %v", err)
	}
	bad = base
	bad.CapacityMah = 0
	if _, err := Resolve(bad, p); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("zero capacity: err = %v", err)
	}
	bad = base
	bad.TWR = 1.0
	if _, err := Resolve(bad, p); !errors.Is(err, ErrBadTWR) {
		t.Errorf("TWR 1: err = %v", err)
	}
}

func TestResolveClosureConsistency(t *testing.T) {
	d := mustResolve(t, DefaultSpec())
	sum := d.FrameG + d.BatteryG + 4*d.MotorUnitG + d.ESC4xG + d.PropsG +
		d.Spec.Compute.WeightG + d.Spec.SensorsG + d.Spec.PayloadG + d.WiringG
	if math.Abs(sum-d.TotalG) > 1e-6*d.TotalG {
		t.Errorf("breakdown sums to %v, total says %v", sum, d.TotalG)
	}
	if d.Iterations < 2 {
		t.Errorf("closure converged suspiciously fast (%d iterations)", d.Iterations)
	}
	if d.BasicWeightG() >= d.TotalG {
		t.Error("basic weight must exclude battery/motors/ESCs")
	}
	if d.MotorMaxCurrentA <= d.RequiredCurrentA {
		t.Error("catalog oversizing must exceed the physics minimum")
	}
}

func TestResolveMonotonicInCapacity(t *testing.T) {
	spec := DefaultSpec()
	var prevW, prevP float64
	for cap := 1000.0; cap <= 8000; cap += 500 {
		spec.CapacityMah = cap
		d := mustResolve(t, spec)
		if d.TotalG <= prevW {
			t.Fatalf("total weight not increasing at %v mAh", cap)
		}
		if hp := d.HoverPowerW(); hp <= prevP {
			t.Fatalf("hover power not increasing with weight at %v mAh", cap)
		} else {
			prevP = hp
		}
		prevW = d.TotalG
	}
}

func TestResolveCurrentDropsWithCells(t *testing.T) {
	spec := DefaultSpec()
	var prev float64 = math.Inf(1)
	for cells := 1; cells <= 6; cells++ {
		spec.Cells = cells
		spec.CapacityMah = 3000
		d := mustResolve(t, spec)
		if d.RequiredCurrentA >= prev {
			t.Fatalf("%dS current %v not below %v (Figure 9 voltage ordering)",
				cells, d.RequiredCurrentA, prev)
		}
		prev = d.RequiredCurrentA
	}
}

// TestOurDroneCalibration anchors the model on the paper's measured
// whole-drone power: the open-source 450 mm F450 with RPi+Navio2 averaged
// 130 W at a ~30% flying load (§5.1, Figure 16b).
func TestOurDroneCalibration(t *testing.T) {
	spec := DefaultSpec()
	spec.Compute = components.ComputeTier{Name: "RPi+Navio2", PowerW: 6, WeightG: 73}
	d := mustResolve(t, spec)
	p30 := d.AvgPowerW(0.30)
	if p30 < 100 || p30 > 160 {
		t.Errorf("modeled 30%%-load power = %.1f W, want ~130 W (paper measurement)", p30)
	}
	if d.TotalG < 850 || d.TotalG > 1250 {
		t.Errorf("modeled total weight = %.0f g, want ~1071 g (Figure 14)", d.TotalG)
	}
	// Maneuvering spikes: paper saw up to 250 W at 58% load.
	p58 := d.AvgPowerW(0.58)
	if p58 < 180 || p58 > 300 {
		t.Errorf("modeled 58%%-load power = %.1f W, want ~250 W", p58)
	}
}

// TestPhantomValidation mirrors the paper's Figure 10 validation: the model
// at a Phantom-4-class weight must produce a hover power near the one derived
// from the product's published battery and flight time.
func TestPhantomValidation(t *testing.T) {
	var phantom components.CommercialDrone
	for _, cd := range components.CommercialDrones() {
		if cd.Name == "DJI Phantom 4" {
			phantom = cd
		}
	}
	if phantom.Name == "" {
		t.Fatal("Phantom 4 missing from validation set")
	}
	// Find the sweep point closest to the Phantom's takeoff weight.
	spec := Spec{WheelbaseMM: 450, Cells: 4, TWR: 2,
		Compute:     components.ComputeTier{Name: "phantom avionics", PowerW: 3, WeightG: 30},
		CapacityMah: 1000, ESCClass: components.LongFlight}
	pts := SweepCapacity(spec, DefaultParams(), 1000, 9000, 100)
	bestDiff := math.Inf(1)
	var at SweepPoint
	for _, pt := range pts {
		if d := math.Abs(pt.TotalWeightG - phantom.TakeoffWeightG); d < bestDiff {
			bestDiff, at = d, pt
		}
	}
	if bestDiff > 120 {
		t.Fatalf("no sweep point near Phantom weight (closest off by %.0f g)", bestDiff)
	}
	derived := phantom.HoverPowerW()
	if at.HoverPowerW < derived*0.6 || at.HoverPowerW > derived*1.6 {
		t.Errorf("model hover power at Phantom weight = %.0f W, derived-from-specs = %.0f W (want within ±40%%)",
			at.HoverPowerW, derived)
	}
}

func TestFlightTimeEquation(t *testing.T) {
	d := mustResolve(t, DefaultSpec())
	// Equation 5 consistency: time * power == usable energy.
	ft := d.HoverFlightTimeMin()
	back := ft / 60 * d.HoverPowerW()
	if math.Abs(back-d.UsableEnergyWh()) > 1e-9 {
		t.Errorf("flight time inconsistent: %v Wh back-computed vs %v usable", back, d.UsableEnergyWh())
	}
	// Drain limit and distribution efficiency must derate rated energy.
	rated := d.Spec.CapacityMah / 1000 * d.Voltage()
	if d.UsableEnergyWh() >= rated*0.85 {
		t.Error("usable energy must be below the 85% drain limit after PowerEff")
	}
	if d.FlightTimeMin(-1) != d.FlightTimeMin(0) {
		t.Error("negative load not clamped")
	}
}

func TestComputeSharePct(t *testing.T) {
	spec := DefaultSpec()
	spec.Compute = components.AdvancedComputeTier
	d := mustResolve(t, spec)
	h := d.ComputeSharePct(d.Params.HoverLoad)
	m := d.ComputeSharePct(d.Params.ManeuverLoad)
	if h <= m {
		t.Errorf("hover share %v%% must exceed maneuver share %v%% (Figure 10d-f)", h, m)
	}
	if h <= 0 || h >= 100 {
		t.Errorf("share out of range: %v", h)
	}
}

// TestFigure10ShareBands checks the paper's two headline footprint numbers:
// 3 W chips contribute <5% of total power, and the 20 W system while moving
// drops to ~10% or less on medium/large drones.
func TestFigure10ShareBands(t *testing.T) {
	p := DefaultParams()
	for _, wb := range []float64{450, 800} {
		basic := Spec{WheelbaseMM: wb, Cells: 3, CapacityMah: 1000, TWR: 2,
			Compute: components.BasicComputeTier, ESCClass: components.LongFlight}
		for _, pt := range SweepCapacity(basic, p, 1000, 8000, 500) {
			// Paper: "3 W chips have less than 5% contribution"; allow
			// a point of slack at the very light end of the sweep.
			if pt.ComputeShareHoverPct >= 6 {
				t.Errorf("wb=%v w=%.0fg: 3 W share %.1f%%, paper says <5%%",
					wb, pt.TotalWeightG, pt.ComputeShareHoverPct)
			}
		}
		adv := basic
		adv.Compute = components.AdvancedComputeTier
		for _, pt := range SweepCapacity(adv, p, 1000, 8000, 500) {
			if pt.ComputeShareManeuverPct > 12 {
				t.Errorf("wb=%v w=%.0fg: 20 W maneuvering share %.1f%%, paper says drops to ~10%%",
					wb, pt.TotalWeightG, pt.ComputeShareManeuverPct)
			}
			if pt.ComputeShareHoverPct < 2 || pt.ComputeShareHoverPct > 35 {
				t.Errorf("wb=%v w=%.0fg: 20 W hovering share %.1f%%, outside Figure 10's 2-35%% envelope",
					wb, pt.TotalWeightG, pt.ComputeShareHoverPct)
			}
		}
	}
}

// TestComputationPowerRange verifies the abstract's 2-30% computation power
// envelope across the studied design space.
func TestComputationPowerRange(t *testing.T) {
	p := DefaultParams()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, wb := range []float64{100, 450, 800} {
		for _, tier := range []components.ComputeTier{components.BasicComputeTier, components.AdvancedComputeTier} {
			s := Spec{WheelbaseMM: wb, Cells: 3, CapacityMah: 1000, TWR: 2, Compute: tier, ESCClass: components.LongFlight}
			for _, pt := range SweepCapacity(s, p, 1000, 8000, 1000) {
				if pt.ComputeShareHoverPct < lo {
					lo = pt.ComputeShareHoverPct
				}
				if pt.ComputeShareHoverPct > hi {
					hi = pt.ComputeShareHoverPct
				}
			}
		}
	}
	if lo > 3 {
		t.Errorf("min hover compute share %.1f%%, paper's range starts ~2%%", lo)
	}
	if hi < 15 || hi > 40 {
		t.Errorf("max hover compute share %.1f%%, paper's range tops ~30%%", hi)
	}
}

func TestGainedFlightTime(t *testing.T) {
	spec := DefaultSpec()
	spec.Compute = components.ComputeTier{Name: "TX2-class", PowerW: 10, WeightG: 85}
	base := mustResolve(t, spec)
	load := base.Params.HoverLoad

	// Swapping to an FPGA-class platform (0.417 W, 75 g) must gain time.
	gain, err := GainedFlightTimeMin(base, 0.417, 75, load)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 {
		t.Errorf("FPGA swap gained %v min, want positive", gain)
	}
	// Swapping the other way (to a heavier, hungrier platform) must lose.
	loss, err := GainedFlightTimeMin(base, 20, 200, load)
	if err != nil {
		t.Fatal(err)
	}
	if loss >= 0 {
		t.Errorf("heavier platform gained %v min, want negative", loss)
	}
}

func TestApproxGainedFlightTime(t *testing.T) {
	// The paper's own example: saving 10 W on a 140 W drone with a 15 min
	// baseline gives ~+1 minute.
	got := ApproxGainedFlightTimeMin(140, 10, 15)
	if math.Abs(got-15.0*10/140) > 1e-12 {
		t.Errorf("approx gain = %v", got)
	}
	if ApproxGainedFlightTimeMin(0, 10, 15) != 0 {
		t.Error("degenerate total power should return 0")
	}
}

func TestBestConfig(t *testing.T) {
	p := DefaultParams()
	spec := Spec{WheelbaseMM: 450, TWR: 2, Compute: components.BasicComputeTier,
		Cells: 3, CapacityMah: 1000, ESCClass: components.LongFlight}
	best, ok := BestConfig(spec, p, []int{1, 2, 3, 4, 5, 6}, 1000, 8000, 500)
	if !ok {
		t.Fatal("no feasible configuration at 450 mm")
	}
	ft := best.HoverFlightTimeMin()
	if ft < 15 || ft > 45 {
		t.Errorf("best 450 mm flight time = %.1f min, implausible (paper annotates 19 min; see EXPERIMENTS.md)", ft)
	}
	// Every other swept configuration must not beat it.
	for cells := 1; cells <= 6; cells++ {
		s := spec
		s.Cells = cells
		for _, pt := range SweepCapacity(s, p, 1000, 8000, 500) {
			if pt.HoverFlightMin > ft+1e-9 {
				t.Fatalf("sweep point beats best config: %v > %v", pt.HoverFlightMin, ft)
			}
		}
	}
}

func TestSweepCapacitySkipsInfeasible(t *testing.T) {
	// A 1S pack cannot lift an 800 mm monster at big capacities — points
	// either resolve or are skipped, never panic.
	spec := Spec{WheelbaseMM: 800, Cells: 1, CapacityMah: 1000, TWR: 2,
		Compute: components.AdvancedComputeTier, ESCClass: components.LongFlight}
	pts := SweepCapacity(spec, DefaultParams(), 1000, 8000, 1000)
	for _, pt := range pts {
		if pt.TotalWeightG <= 0 || math.IsNaN(pt.HoverPowerW) {
			t.Fatalf("invalid sweep point: %+v", pt)
		}
	}
}

func TestSensorsAndPayloadRipple(t *testing.T) {
	base := mustResolve(t, DefaultSpec())
	loaded := DefaultSpec()
	loaded.SensorsG = 925 // Ultra Puck LiDAR weight, self-powered
	loaded.PayloadG = 200
	d := mustResolve(t, loaded)
	if d.TotalG <= base.TotalG+1125 {
		t.Error("payload must ripple through motors/ESCs, not just add linearly")
	}
	if d.HoverPowerW() <= base.HoverPowerW() {
		t.Error("heavier drone must hover at higher power")
	}
	if d.HoverFlightTimeMin() >= base.HoverFlightTimeMin() {
		t.Error("payload must cost flight time")
	}
}

func TestEquation7SmallVsLargeSensitivity(t *testing.T) {
	// §7: for small drones improving power efficiency buys flight time;
	// for heavy drones (>~2 kg) the effect fades. Compare the relative
	// gain of saving 5 W of compute on a small vs a large design.
	p := DefaultParams()
	small := mustResolve(t, Spec{WheelbaseMM: 200, Cells: 2, CapacityMah: 2000, TWR: 2,
		Compute: components.ComputeTier{Name: "5W", PowerW: 5, WeightG: 50}, ESCClass: components.LongFlight})
	large, err := Resolve(Spec{WheelbaseMM: 800, Cells: 6, CapacityMah: 8000, TWR: 2,
		Compute: components.ComputeTier{Name: "5W", PowerW: 5, WeightG: 50}, ESCClass: components.LongFlight}, p)
	if err != nil {
		t.Fatal(err)
	}
	gainSmall, err := GainedFlightTimeMin(small, 0.4, 50, p.HoverLoad)
	if err != nil {
		t.Fatal(err)
	}
	gainLarge, err := GainedFlightTimeMin(large, 0.4, 50, p.HoverLoad)
	if err != nil {
		t.Fatal(err)
	}
	relSmall := gainSmall / small.HoverFlightTimeMin()
	relLarge := gainLarge / large.HoverFlightTimeMin()
	if relSmall <= relLarge {
		t.Errorf("relative gain small %.3f <= large %.3f; paper says small drones benefit more", relSmall, relLarge)
	}
}
