package core

import (
	"errors"
	"testing"

	"dronedse/components"
)

// cacheSpecs spans the interesting regions: feasible designs across the
// frame classes, validation errors, and a non-converging (infeasible) point.
func cacheSpecs() []Spec {
	specs := []Spec{
		DefaultSpec(),
		{WheelbaseMM: 100, Cells: 1, CapacityMah: 500, TWR: 2,
			Compute: components.BasicComputeTier, ESCClass: components.LongFlight},
		{WheelbaseMM: 800, Cells: 6, CapacityMah: 8000, TWR: 3,
			Compute: components.AdvancedComputeTier, ESCClass: components.LongFlight,
			SensorsW: 10, SensorsG: 200, PayloadG: 300},
		// Validation errors.
		{WheelbaseMM: 10, Cells: 3, CapacityMah: 3000, TWR: 2},
		{WheelbaseMM: 450, Cells: 9, CapacityMah: 3000, TWR: 2},
		{WheelbaseMM: 450, Cells: 3, CapacityMah: -5, TWR: 2},
		{WheelbaseMM: 450, Cells: 3, CapacityMah: 3000, TWR: 1.0},
		// Weight-closure divergence: a tiny 2" prop hauling a huge payload.
		{WheelbaseMM: 100, Cells: 1, CapacityMah: 1000, TWR: 2, PayloadG: 5e5,
			ESCClass: components.LongFlight},
	}
	return specs
}

// TestResolveCachedMatchesResolve: the memoized path returns the same Design
// and the same error class as the uncached function, on both the cold and
// the warm path.
func TestResolveCachedMatchesResolve(t *testing.T) {
	ResetResolveCache()
	p := DefaultParams()
	for round := 0; round < 2; round++ { // round 0 cold, round 1 warm
		for i, spec := range cacheSpecs() {
			want, wantErr := Resolve(spec, p)
			got, gotErr := ResolveCached(spec, p)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d spec %d: err mismatch: %v vs %v", round, i, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, errors.Unwrap(wantErr)) && gotErr.Error() != wantErr.Error() {
					t.Fatalf("round %d spec %d: error %q != %q", round, i, gotErr, wantErr)
				}
				continue
			}
			if got != want {
				t.Fatalf("round %d spec %d: cached Design differs:\n got %+v\nwant %+v", round, i, got, want)
			}
		}
	}
	hits, misses, entries := ResolveCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got hits=%d misses=%d", hits, misses)
	}
	if entries == 0 {
		t.Fatal("cache should retain entries")
	}
}

// TestResolveCachedParamsSensitive: same Spec under different Params must
// not collide.
func TestResolveCachedParamsSensitive(t *testing.T) {
	ResetResolveCache()
	spec := DefaultSpec()
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.MotorOversize = 1.6
	d1, err1 := ResolveCached(spec, p1)
	d2, err2 := ResolveCached(spec, p2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if d1.MotorMaxCurrentA == d2.MotorMaxCurrentA {
		t.Fatal("different Params produced identical cached designs: key collision")
	}
}

// TestResolveCacheEviction: overflowing a shard clears it rather than
// growing without bound, and results stay correct across the eviction.
func TestResolveCacheEviction(t *testing.T) {
	prev := maxResolveEntriesPerShard
	maxResolveEntriesPerShard = 8
	defer func() { maxResolveEntriesPerShard = prev; ResetResolveCache() }()
	ResetResolveCache()

	p := DefaultParams()
	spec := DefaultSpec()
	for i := 0; i < 4096; i++ {
		spec.CapacityMah = 1000 + float64(i)
		want, _ := Resolve(spec, p)
		got, err := ResolveCached(spec, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("i=%d: cached design differs after eviction churn", i)
		}
	}
	_, _, entries := ResolveCacheStats()
	if entries > resolveShards*8 {
		t.Fatalf("cache grew past its bound: %d entries", entries)
	}
}

// TestResolveCacheConcurrent hammers one hot key plus a spread of cold keys
// from many goroutines; run under -race this is the cache's safety test.
func TestResolveCacheConcurrent(t *testing.T) {
	ResetResolveCache()
	p := DefaultParams()
	hot := DefaultSpec()
	want, _ := Resolve(hot, p)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			spec := DefaultSpec()
			for i := 0; i < 200; i++ {
				if d, err := ResolveCached(hot, p); err != nil || d != want {
					done <- errors.New("hot key mismatch under concurrency")
					return
				}
				spec.CapacityMah = 1000 + float64(g*200+i)
				if _, err := ResolveCached(spec, p); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
