package core

import (
	"sort"

	"dronedse/parallelx"
	"dronedse/units"
)

// FeasibilityIssue flags a physical constraint a resolved design violates.
// Resolve does not fail on these — the paper's sweeps intentionally visit
// marginal regions — but tools surface them.
type FeasibilityIssue int

// Feasibility issues.
const (
	// BatteryCRating: the pack cannot supply the four motors' maximum
	// current within a typical survey C rating (Table 3: Capacity(Ah) x C
	// = I). Checked against a generous 90C product ceiling.
	BatteryCRating FeasibilityIssue = iota
	// ESCOverSpec: the required per-motor current exceeds the heaviest
	// surveyed ESC class (90 A).
	ESCOverSpec
	// ShortFlight: hovering flight time below 5 minutes — the paper
	// shades these regions "Short Flight Time (<5min)" in Figure 10.
	ShortFlight
)

// String implements fmt.Stringer.
func (f FeasibilityIssue) String() string {
	switch f {
	case BatteryCRating:
		return "battery C-rating exceeded"
	case ESCOverSpec:
		return "ESC current over survey ceiling"
	default:
		return "short flight time (<5 min)"
	}
}

// maxSurveyC is the highest discharge rating in the battery survey.
const maxSurveyC = 90

// maxSurveyESCCurrentA is the heaviest surveyed ESC (Figure 8a x-axis).
const maxSurveyESCCurrentA = 90

// Feasibility checks a resolved design against the survey's physical
// ceilings (Table 3's discharge-rate and ESC-current constraints plus the
// Figure 10 short-flight shading).
func (d Design) Feasibility() []FeasibilityIssue {
	var out []FeasibilityIssue
	maxPackA := units.CRatingMaxCurrent(d.Spec.CapacityMah, maxSurveyC)
	if 4*d.MotorMaxCurrentA > maxPackA {
		out = append(out, BatteryCRating)
	}
	if d.MotorMaxCurrentA > maxSurveyESCCurrentA {
		out = append(out, ESCOverSpec)
	}
	if d.HoverFlightTimeMin() < 5 {
		out = append(out, ShortFlight)
	}
	return out
}

// RequiredCRating returns the minimum battery C rating able to feed the
// design's four motors at maximum draw.
func (d Design) RequiredCRating() float64 {
	if d.Spec.CapacityMah <= 0 {
		return 0
	}
	return 4 * d.MotorMaxCurrentA / (d.Spec.CapacityMah / 1000)
}

// ParetoPoint is one non-dominated design in the flight-time/payload (or
// flight-time/compute) tradeoff.
type ParetoPoint struct {
	Design    Design
	FlightMin float64
	// Objective is the second axis value (payload grams or compute watts,
	// per the frontier requested).
	Objective float64
}

// ParetoPayloadFrontier sweeps payload mass for a spec, finding for each
// payload the best battery configuration, and returns the non-dominated
// (payload ↑, flight time ↑) frontier — the "extra payload?" branch of the
// Figure 12 procedure turned into a tool.
func ParetoPayloadFrontier(spec Spec, p Params, payloadsG []float64) []ParetoPoint {
	pts := parallelx.FilterMap(payloadsG, func(payload float64) (ParetoPoint, bool) {
		s := spec
		s.PayloadG = payload
		best, ok := BestConfig(s, p, []int{1, 2, 3, 4, 5, 6}, 1000, 8000, 500)
		if !ok {
			return ParetoPoint{}, false
		}
		return ParetoPoint{
			Design:    best,
			FlightMin: best.HoverFlightTimeMin(),
			Objective: payload,
		}, true
	})
	return paretoFilter(pts)
}

// ParetoComputeFrontier sweeps compute power (with a weight model of
// ~4 g/W, interpolating Table 4's boards) and returns the non-dominated
// (compute ↑, flight time ↑) frontier.
func ParetoComputeFrontier(spec Spec, p Params, computeW []float64) []ParetoPoint {
	pts := parallelx.FilterMap(computeW, func(w float64) (ParetoPoint, bool) {
		s := spec
		s.Compute.Name = "swept"
		s.Compute.PowerW = w
		s.Compute.WeightG = 10 + 4*w
		best, ok := BestConfig(s, p, []int{1, 2, 3, 4, 5, 6}, 1000, 8000, 500)
		if !ok {
			return ParetoPoint{}, false
		}
		return ParetoPoint{
			Design:    best,
			FlightMin: best.HoverFlightTimeMin(),
			Objective: w,
		}, true
	})
	return paretoFilter(pts)
}

// paretoFilter keeps points not dominated by any other (another point with
// >= objective and > flight time, or > objective and >= flight time).
func paretoFilter(pts []ParetoPoint) []ParetoPoint {
	var out []ParetoPoint
	for i, a := range pts {
		dominated := false
		for j, b := range pts {
			if i == j {
				continue
			}
			if b.Objective >= a.Objective && b.FlightMin >= a.FlightMin &&
				(b.Objective > a.Objective || b.FlightMin > a.FlightMin) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Objective < out[j].Objective })
	return out
}

// TWRPoint is one sample of the §7 TWR sensitivity study.
type TWRPoint struct {
	TWR                  float64
	TotalWeightG         float64
	HoverPowerW          float64
	ComputeShareHoverPct float64
	FlightMin            float64
}

// TWRSweep evaluates the design at thrust-to-weight ratios from 2 to 7
// (Table 3's common range). The paper's conclusion (§7): higher TWR lowers
// the compute contribution further; TWR 2 is the upper bound on compute's
// share. Infeasible ratios are skipped.
func TWRSweep(spec Spec, p Params) []TWRPoint {
	return parallelx.FilterMap([]float64{2, 3, 4, 5, 6, 7}, func(twr float64) (TWRPoint, bool) {
		s := spec
		s.TWR = twr
		d, err := ResolveCached(s, p)
		if err != nil {
			return TWRPoint{}, false
		}
		return TWRPoint{
			TWR:                  twr,
			TotalWeightG:         d.TotalG,
			HoverPowerW:          d.HoverPowerW(),
			ComputeShareHoverPct: d.ComputeSharePct(p.HoverLoad),
			FlightMin:            d.HoverFlightTimeMin(),
		}, true
	})
}

// SensorPayloadPoint is one sample of the §3.1 external-sensor study: how a
// self-powered LiDAR package's weight squeezes the compute share.
type SensorPayloadPoint struct {
	SensorName           string
	SensorWeightG        float64
	TotalWeightG         float64
	ComputeShareHoverPct float64
	FlightMin            float64
}

// SensorPayloadStudy adds each self-powered LiDAR from Table 4 to a large
// drone and reports the squeeze on the computation power boundary ("We
// study how the addition of these sensors due to their weight reduces the
// contribution boundary of main computation power in large drones").
func SensorPayloadStudy(spec Spec, p Params, sensors []struct {
	Name    string
	WeightG float64
}) []SensorPayloadPoint {
	base, err := ResolveCached(spec, p)
	if err != nil {
		return nil
	}
	out := []SensorPayloadPoint{{
		SensorName:           "(none)",
		TotalWeightG:         base.TotalG,
		ComputeShareHoverPct: base.ComputeSharePct(p.HoverLoad),
		FlightMin:            base.HoverFlightTimeMin(),
	}}
	pts := parallelx.FilterMap(sensors, func(sn struct {
		Name    string
		WeightG float64
	}) (SensorPayloadPoint, bool) {
		s := spec
		s.SensorsG = sn.WeightG // self-powered: weight only
		d, err := ResolveCached(s, p)
		if err != nil {
			return SensorPayloadPoint{}, false
		}
		return SensorPayloadPoint{
			SensorName:           sn.Name,
			SensorWeightG:        sn.WeightG,
			TotalWeightG:         d.TotalG,
			ComputeShareHoverPct: d.ComputeSharePct(p.HoverLoad),
			FlightMin:            d.HoverFlightTimeMin(),
		}, true
	})
	return append(out, pts...)
}
