package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dronedse/components"
)

// randomSpec draws a plausible design-space point.
func randomSpec(r *rand.Rand) Spec {
	return Spec{
		WheelbaseMM: 100 + r.Float64()*800,
		Cells:       1 + r.Intn(6),
		CapacityMah: 1000 + r.Float64()*7000,
		TWR:         2 + r.Float64()*2,
		Compute: components.ComputeTier{
			Name:    "rand",
			PowerW:  0.5 + r.Float64()*20,
			WeightG: 5 + r.Float64()*150,
		},
		PayloadG: r.Float64() * 300,
		ESCClass: components.LongFlight,
	}
}

func specValues(vals []reflect.Value, r *rand.Rand) {
	vals[0] = reflect.ValueOf(randomSpec(r))
}

// TestResolveInvariantsProperty checks structural invariants over random
// feasible designs.
func TestResolveInvariantsProperty(t *testing.T) {
	p := DefaultParams()
	f := func(spec Spec) bool {
		d, err := Resolve(spec, p)
		if err != nil {
			return true // infeasible corners are allowed to fail
		}
		fixed := d.FrameG + d.BatteryG + d.PropsG +
			spec.Compute.WeightG + spec.SensorsG + spec.PayloadG
		if d.TotalG <= fixed {
			t.Logf("total %v not above fixed parts %v", d.TotalG, fixed)
			return false
		}
		share := d.ComputeSharePct(p.HoverLoad)
		if share <= 0 || share >= 100 {
			t.Logf("share %v out of range", share)
			return false
		}
		if d.HoverPowerW() >= d.ManeuverPowerW() {
			return false
		}
		if d.FlightTimeMin(p.HoverLoad) <= d.FlightTimeMin(p.ManeuverLoad) {
			return false
		}
		if d.RequiredCurrentA <= 0 || d.MotorMaxCurrentA <= d.RequiredCurrentA {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Values: specValues}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestResolveDeterministicProperty: same spec, same design.
func TestResolveDeterministicProperty(t *testing.T) {
	p := DefaultParams()
	f := func(spec Spec) bool {
		a, errA := Resolve(spec, p)
		b, errB := Resolve(spec, p)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Values: specValues}); err != nil {
		t.Error(err)
	}
}

// TestMoreComputeNeverHelpsProperty: Equation 7's direction — adding compute
// power (same weight) always costs flight time.
func TestMoreComputeNeverHelpsProperty(t *testing.T) {
	p := DefaultParams()
	f := func(spec Spec) bool {
		base, err := Resolve(spec, p)
		if err != nil {
			return true
		}
		heavier := spec
		heavier.Compute.PowerW += 5
		d, err := Resolve(heavier, p)
		if err != nil {
			return true
		}
		return d.HoverFlightTimeMin() < base.HoverFlightTimeMin()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Values: specValues}); err != nil {
		t.Error(err)
	}
}

// TestBiggerPropsMoreEfficientProperty: at the same total-thrust demand, a
// larger wheelbase (bigger disk) needs less per-motor power — the physics
// behind Figure 9's per-wheelbase families.
func TestBiggerPropsMoreEfficientProperty(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := randomSpec(r)
		spec.WheelbaseMM = 150 + r.Float64()*300
		small, errA := Resolve(spec, p)
		bigger := spec
		bigger.WheelbaseMM = spec.WheelbaseMM * 2
		big, errB := Resolve(bigger, p)
		if errA != nil || errB != nil {
			return true
		}
		// Compare power per gram of lift: the bigger platform must be
		// more efficient even though its frame is heavier.
		smallEff := small.HoverPowerW() / small.TotalG
		bigEff := big.HoverPowerW() / big.TotalG
		return bigEff < smallEff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
