package core

import (
	"math"
	"testing"

	"dronedse/components"
)

// TestFigure9Lines checks the Figure 9 reproduction: per-motor max current
// rises with basic weight, falls with supply voltage, and the Kv annotations
// follow the paper's extremes (tiny wheelbase + low cells = extreme Kv;
// large wheelbase + high cells = low Kv).
func TestFigure9Lines(t *testing.T) {
	p := DefaultParams()
	// Weight spans follow the paper's per-wheelbase axes. (Unlike the
	// paper's extrapolated lines, the closure exposes that tiny props
	// cannot lift heavy basic weights — ESC/motor weight growth outruns
	// thrust — so small wheelbases use the light end of their axes.)
	weightsFor := map[float64][]float64{
		50:  {30, 40, 50, 60},
		100: {100, 150, 200, 300},
		200: {150, 300, 500, 700},
		450: {300, 600, 900, 1200},
		800: {800, 1400, 2000, 2600},
	}

	for _, wb := range []float64{50, 100, 200, 450, 800} {
		weights := weightsFor[wb]
		for cells := 1; cells <= 6; cells++ {
			pts := MotorCurrentVsBasicWeight(wb, cells, 2, p, weights)
			if len(pts) == 0 {
				t.Fatalf("wb=%v cells=%d: no feasible points", wb, cells)
			}
			for i := 1; i < len(pts); i++ {
				if pts[i].CurrentA <= pts[i-1].CurrentA {
					t.Fatalf("wb=%v cells=%d: current not increasing with basic weight", wb, cells)
				}
			}
		}
		// Voltage ordering at fixed basic weight.
		mid := weights[1]
		lo := MotorCurrentVsBasicWeight(wb, 2, 2, p, []float64{mid})
		hi := MotorCurrentVsBasicWeight(wb, 6, 2, p, []float64{mid})
		if len(lo) == 1 && len(hi) == 1 && hi[0].CurrentA >= lo[0].CurrentA {
			t.Errorf("wb=%v: 6S current %v >= 2S current %v", wb, hi[0].CurrentA, lo[0].CurrentA)
		}
	}

	// Kv extremes (Figure 9a vs 9d annotations): a 50 mm 1S micro lands
	// near the paper's 51000 Kv callout, a 800 mm 6S lifter in the low
	// hundreds.
	tiny := MotorCurrentVsBasicWeight(50, 1, 2, p, []float64{50})
	big := MotorCurrentVsBasicWeight(800, 6, 2, p, []float64{2000})
	if len(tiny) != 1 || len(big) != 1 {
		t.Fatal("anchor points infeasible")
	}
	if tiny[0].Kv < 10000 {
		t.Errorf("50 mm 1S Kv = %v, want extreme (paper annotates 51000)", tiny[0].Kv)
	}
	if big[0].Kv > 2500 {
		t.Errorf("800 mm 6S Kv = %v, want low (paper annotates 420-1030)", big[0].Kv)
	}
	if tiny[0].Kv < 5*big[0].Kv {
		t.Error("Kv spread between extremes too small")
	}
}

func TestMotorCurrentVsBasicWeightSkipsInfeasible(t *testing.T) {
	p := DefaultParams()
	pts := MotorCurrentVsBasicWeight(100, 1, 2, p, []float64{1e9})
	for _, pt := range pts {
		if math.IsNaN(pt.CurrentA) || pt.CurrentA < 0 {
			t.Fatalf("invalid point: %+v", pt)
		}
	}
}

func TestMinFeasibleBasicWeight(t *testing.T) {
	p := DefaultParams()
	prev := 0.0
	for _, wb := range []float64{50, 100, 200, 450, 800} {
		w := MinFeasibleBasicWeightG(wb, p)
		if w <= prev {
			t.Fatalf("min feasible weight not increasing at %v mm", wb)
		}
		prev = w
	}
	// A 450 mm class can't be built under ~400 g of basic weight with the
	// published frame line.
	if w := MinFeasibleBasicWeightG(450, p); w < 300 || w > 700 {
		t.Errorf("450 mm min basic weight = %v g, implausible", w)
	}
}

// TestFigure10PowerLevels sanity-checks the absolute power axes against the
// paper's plots: a ~1350 g 450 mm drone sits in the 100-300 W band, and the
// whole-drone average for the paper's own 1071 g build is ~130 W at 30% load.
func TestFigure10PowerLevels(t *testing.T) {
	p := DefaultParams()
	spec := Spec{WheelbaseMM: 450, Cells: 3, CapacityMah: 1000, TWR: 2,
		Compute: components.BasicComputeTier, ESCClass: components.LongFlight}
	pts := SweepCapacity(spec, p, 1000, 8000, 250)
	if len(pts) < 20 {
		t.Fatalf("sweep too sparse: %d points", len(pts))
	}
	for _, pt := range pts {
		if pt.TotalWeightG > 1300 && pt.TotalWeightG < 1450 {
			if pt.HoverPowerW < 100 || pt.HoverPowerW > 300 {
				t.Errorf("450 mm @ %.0f g hover power = %.0f W, outside Figure 10b's band", pt.TotalWeightG, pt.HoverPowerW)
			}
		}
		if pt.ManeuverPowerW <= pt.HoverPowerW {
			t.Fatal("maneuvering must draw more than hovering")
		}
	}
}

// TestBestConfigPerWheelbase pins the best-config flight times so regressions
// in the model surface; bands are wide because the paper's absolute
// annotations (23/19/22 min) are not exactly recoverable from its published
// relationships (documented in EXPERIMENTS.md).
func TestBestConfigPerWheelbase(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		wb       float64
		loM, hiM float64
	}{
		{100, 8, 30},  // paper: 23 min
		{450, 15, 42}, // paper: 19 min
		{800, 15, 48}, // paper: 22 min
	}
	for _, c := range cases {
		spec := Spec{WheelbaseMM: c.wb, TWR: 2, Cells: 3, CapacityMah: 1000,
			Compute: components.BasicComputeTier, ESCClass: components.LongFlight}
		best, ok := BestConfig(spec, p, []int{1, 2, 3, 4, 5, 6}, 1000, 8000, 250)
		if !ok {
			t.Fatalf("wb=%v: no feasible config", c.wb)
		}
		ft := best.HoverFlightTimeMin()
		if ft < c.loM || ft > c.hiM {
			t.Errorf("wb=%v best flight time = %.1f min, outside [%v, %v]", c.wb, ft, c.loM, c.hiM)
		}
	}
}

// TestTWRSensitivity: the paper uses TWR=2 to bound compute's contribution;
// higher TWR must shrink the compute share (conclusion §7).
func TestTWRSensitivity(t *testing.T) {
	spec := DefaultSpec()
	spec.Compute = components.AdvancedComputeTier
	p := DefaultParams()
	at := func(twr float64) float64 {
		s := spec
		s.TWR = twr
		d, err := Resolve(s, p)
		if err != nil {
			t.Fatalf("TWR %v: %v", twr, err)
		}
		return d.ComputeSharePct(p.HoverLoad)
	}
	s2, s4 := at(2), at(4)
	if s4 >= s2 {
		t.Errorf("share at TWR 4 (%.1f%%) not below TWR 2 (%.1f%%)", s4, s2)
	}
}
