// Package core implements the paper's primary contribution: the analytical
// design-space model of §3.2 (Equations 1-7) that composes the component
// survey (internal/components) with propulsion physics (internal/propulsion)
// to translate compute power consumption into drone flight time.
//
// The pipeline mirrors the paper's procedure (Figure 12):
//
//	WeightTotal   = F(4*W_motor, W_esc, W_battery, W_frame, W_props,
//	                  W_compute, W_sensors, W_wires)            (Eq. 1)
//	MotorCurrent  = G(WeightTotal, TWR)                         (Eq. 2)
//	PowerAvg      = H(MotorCurrent*BattV, %FlyingLoad,
//	                  P_compute, P_sensors)                     (Eq. 3)
//	BattCapacity  = M(LiPoCapacity, %PowerEff, %LiPoDrainLimit) (Eq. 4)
//	FlightTime    = N(BattCapacity, PowerAvg)                   (Eq. 5)
//	%PowerCompute = X(PowerAvg, P_compute)                      (Eq. 6)
//	+FlightTime   = Z(%PowerCompute, FlightTime)                (Eq. 7)
//
// Equation 1 is a fixed point: heavier motors need heavier ESCs and more
// thrust, which needs heavier motors. Resolve iterates the loop ("if the
// additional weights necessitate a new motor, we redo the previous steps").
package core

import (
	"errors"
	"fmt"
	"math"

	"dronedse/components"
	"dronedse/propulsion"
	"dronedse/units"
)

// Params are the calibration constants of the model. The defaults are tuned
// so the modeled whole-drone power of the paper's own 1071 g open-source F450
// reproduces its measured 130 W at a 30% flying load (§5.1 / Figure 16b).
type Params struct {
	// Eff is the propulsion efficiency chain.
	Eff propulsion.Efficiencies
	// MotorOversize models catalog granularity: products come in discrete
	// thrust steps, so the chosen motor's spec current exceeds the
	// physics minimum by this factor on average.
	MotorOversize float64
	// HoverLoad and ManeuverLoad are the paper's flying-load fractions of
	// maximum current draw (§3.2: 20-30% hovering, 60-70% maneuvering).
	HoverLoad    float64
	ManeuverLoad float64
	// PowerEff is the %PowerEff distribution efficiency of Equation 4.
	PowerEff float64
	// WiringBaseG and WiringFrac model wires, power module, RC receiver
	// and misc mass (Figure 14's long tail) as base + fraction of total.
	WiringBaseG float64
	WiringFrac  float64
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		Eff:           propulsion.Efficiencies{FigureOfMerit: 0.60, Motor: 0.80, ESC: 0.93},
		MotorOversize: 1.35,
		HoverLoad:     propulsion.HoverLoadFraction,
		ManeuverLoad:  propulsion.ManeuverLoadFraction,
		PowerEff:      0.95,
		WiringBaseG:   15,
		WiringFrac:    0.03,
	}
}

// Spec is a point in the design space: the choices a designer makes before
// the model resolves the electromechanical consequences.
type Spec struct {
	// WheelbaseMM selects the frame class; it dictates the maximum
	// propeller (Figure 9 pairings).
	WheelbaseMM float64
	// Cells is the battery configuration (1S-6S).
	Cells int
	// CapacityMah is the battery capacity.
	CapacityMah float64
	// TWR is the thrust-to-weight ratio target; the paper uses the
	// minimum flying value 2 to bound compute's possible contribution.
	TWR float64
	// Compute is the computation board (power + weight).
	Compute components.ComputeTier
	// SensorsW and SensorsG are extra sensor power and weight (Table 4
	// external sensors; self-powered LiDARs contribute weight only).
	SensorsW float64
	SensorsG float64
	// PayloadG is additional payload weight.
	PayloadG float64
	// ESCClass selects racing vs long-flight ESC weight scaling.
	ESCClass components.ESCClass
}

// DefaultSpec returns a 450 mm, 3S, 3000 mAh, TWR-2 design with the basic
// 3 W compute tier — approximately the paper's open-source drone.
func DefaultSpec() Spec {
	return Spec{
		WheelbaseMM: 450,
		Cells:       3,
		CapacityMah: 3000,
		TWR:         2,
		Compute:     components.BasicComputeTier,
		ESCClass:    components.LongFlight,
	}
}

// Design is a resolved configuration: the Equation 1 fixed point plus every
// derived quantity needed by Equations 2-7.
type Design struct {
	Spec   Spec
	Params Params

	// PropInches is the propeller the wheelbase admits.
	PropInches float64
	// Weight breakdown (grams).
	FrameG     float64
	BatteryG   float64
	MotorUnitG float64 // one motor
	ESC4xG     float64 // set of four
	PropsG     float64 // set of four
	WiringG    float64
	TotalG     float64 // Equation 1 output

	// RequiredCurrentA is the physics-minimum per-motor max current
	// (Equation 2); MotorMaxCurrentA is the chosen motor's spec current
	// after catalog oversizing.
	RequiredCurrentA float64
	MotorMaxCurrentA float64
	// MotorKv is the selected motor's velocity constant.
	MotorKv float64
	// Iterations is how many closure passes Equation 1 took.
	Iterations int
}

// Validation errors.
var (
	ErrBadWheelbase = errors.New("core: wheelbase must be 40-1100 mm")
	ErrBadCells     = errors.New("core: cells must be 1-6")
	ErrBadCapacity  = errors.New("core: capacity must be positive")
	ErrBadTWR       = errors.New("core: TWR must be at least 1.2 (2 is the flying minimum)")
	ErrNoConverge   = errors.New("core: weight closure did not converge (design infeasible)")
)

// weightClosure is the result of one Equation 1 damped fixed-point run.
type weightClosure struct {
	TotalG     float64
	MotorUnitG float64
	ESC4xG     float64
	WiringG    float64
	RequiredA  float64
	Iterations int
	Converged  bool
}

// closeWeightLoop iterates Equation 1's damped fixed point: on top of the
// fixed weight it adds four motors sized for the per-motor thrust, ESCs
// sized for the required current, and (when includeWiring) the wiring mass
// fraction. It is the single implementation behind Resolve and the Figure 9
// basic-weight closure. On divergence (weight runaway, NaN, or 200
// iterations without settling) Converged is false.
func closeWeightLoop(fixedG, initialG, twr, propD, packV float64, p Params,
	esc components.ESCClass, includeWiring bool) weightClosure {
	var wc weightClosure
	total := initialG
	for iter := 0; iter < 200; iter++ {
		perMotorThrustG := twr * total / 4
		motorG := components.MotorWeightModel(perMotorThrustG)
		reqA := propulsion.MotorCurrent(
			units.GramsToNewtons(perMotorThrustG), propD, packV, p.Eff)
		escG := components.ESCWeightModel(esc, reqA*p.MotorOversize)
		wiring := 0.0
		if includeWiring {
			wiring = p.WiringBaseG + p.WiringFrac*total
		}
		next := fixedG + 4*motorG + escG + wiring

		wc.MotorUnitG = motorG
		wc.ESC4xG = escG
		wc.WiringG = wiring
		wc.RequiredA = reqA
		wc.Iterations = iter + 1

		if math.Abs(next-total) < 1e-9*(1+total) {
			wc.TotalG = next
			wc.Converged = true
			return wc
		}
		// Damped update keeps the slightly super-linear motor weight
		// model from oscillating on heavy designs.
		total = 0.5*total + 0.5*next
		if total > 1e6 || math.IsNaN(total) || math.IsInf(total, 0) {
			return wc
		}
	}
	return wc
}

// Resolve computes the Equation 1 fixed point for a spec.
func Resolve(spec Spec, p Params) (Design, error) {
	if spec.WheelbaseMM < 40 || spec.WheelbaseMM > 1100 {
		return Design{}, fmt.Errorf("%w: %v", ErrBadWheelbase, spec.WheelbaseMM)
	}
	if spec.Cells < 1 || spec.Cells > 6 {
		return Design{}, fmt.Errorf("%w: %d", ErrBadCells, spec.Cells)
	}
	if spec.CapacityMah <= 0 {
		return Design{}, fmt.Errorf("%w: %v", ErrBadCapacity, spec.CapacityMah)
	}
	if spec.TWR < 1.2 {
		return Design{}, fmt.Errorf("%w: %v", ErrBadTWR, spec.TWR)
	}

	d := Design{Spec: spec, Params: p}
	d.PropInches = components.MaxPropellerInches(spec.WheelbaseMM)
	d.FrameG = components.FrameWeightModel(spec.WheelbaseMM)
	d.BatteryG = components.BatteryWeightModel(spec.Cells, spec.CapacityMah)
	d.PropsG = 4 * components.PropellerWeightG(d.PropInches)

	fixed := d.FrameG + d.BatteryG + d.PropsG +
		spec.Compute.WeightG + spec.SensorsG + spec.PayloadG

	propD := units.InchToMeter(d.PropInches)
	v := units.CellsToVoltage(spec.Cells)

	wc := closeWeightLoop(fixed, fixed*1.5, spec.TWR, propD, v, p, spec.ESCClass, true)
	if !wc.Converged {
		return Design{}, ErrNoConverge
	}
	d.MotorUnitG = wc.MotorUnitG
	d.ESC4xG = wc.ESC4xG
	d.WiringG = wc.WiringG
	d.RequiredCurrentA = wc.RequiredA
	d.Iterations = wc.Iterations
	d.TotalG = wc.TotalG
	d.MotorMaxCurrentA = d.RequiredCurrentA * p.MotorOversize
	d.MotorKv = propulsion.KvForDesign(
		units.GramsToNewtons(spec.TWR*wc.TotalG/4), propD, v)
	return d, nil
}

// BasicWeightG is Figure 9's x-axis: total weight excluding battery, ESCs,
// and motors.
func (d Design) BasicWeightG() float64 {
	return d.TotalG - d.BatteryG - d.ESC4xG - 4*d.MotorUnitG
}

// Voltage is the pack's nominal voltage.
func (d Design) Voltage() float64 { return units.CellsToVoltage(d.Spec.Cells) }

// MaxElectricalPowerW is the whole-drone power at full throttle.
func (d Design) MaxElectricalPowerW() float64 {
	return 4*d.MotorMaxCurrentA*d.Voltage() + d.Spec.Compute.PowerW + d.Spec.SensorsW
}

// AvgPowerW is Equation 3: propulsion at a flying-load fraction of maximum
// current draw, plus compute and sensor power.
func (d Design) AvgPowerW(load float64) float64 {
	if load < 0 {
		load = 0
	}
	return 4*d.MotorMaxCurrentA*d.Voltage()*load +
		d.Spec.Compute.PowerW + d.Spec.SensorsW
}

// HoverPowerW is Equation 3 at the hovering load band.
func (d Design) HoverPowerW() float64 { return d.AvgPowerW(d.Params.HoverLoad) }

// ManeuverPowerW is Equation 3 at the maneuvering load band.
func (d Design) ManeuverPowerW() float64 { return d.AvgPowerW(d.Params.ManeuverLoad) }

// UsableEnergyWh is Equation 4: rated energy derated by the LiPo drain limit
// and the power-distribution efficiency.
func (d Design) UsableEnergyWh() float64 {
	return units.MahToWh(d.Spec.CapacityMah, d.Voltage()) *
		units.LiPoDrainLimit * d.Params.PowerEff
}

// FlightTimeMin is Equation 5 at a flying load: usable energy over average
// power, in minutes.
func (d Design) FlightTimeMin(load float64) float64 {
	p := d.AvgPowerW(load)
	if p <= 0 {
		return 0
	}
	return d.UsableEnergyWh() / p * 60
}

// HoverFlightTimeMin is the headline hovering flight time.
func (d Design) HoverFlightTimeMin() float64 { return d.FlightTimeMin(d.Params.HoverLoad) }

// ComputeSharePct is Equation 6: the percentage of total power consumed by
// computation at a flying load.
func (d Design) ComputeSharePct(load float64) float64 {
	p := d.AvgPowerW(load)
	if p <= 0 {
		return 0
	}
	return 100 * d.Spec.Compute.PowerW / p
}

// GainedFlightTimeMin is Equation 7 evaluated exactly: the flight time gained
// (or lost, negative) by swapping the compute platform for one with the given
// power and weight — the whole design is re-resolved because weight changes
// ripple through motors and ESCs (Table 5's columns).
func GainedFlightTimeMin(base Design, newComputeW, newComputeG, load float64) (float64, error) {
	spec := base.Spec
	spec.Compute = components.ComputeTier{
		Name:    "swapped",
		PowerW:  newComputeW,
		WeightG: newComputeG,
	}
	swapped, err := Resolve(spec, base.Params)
	if err != nil {
		return 0, err
	}
	return swapped.FlightTimeMin(load) - base.FlightTimeMin(load), nil
}

// ApproxGainedFlightTimeMin is the paper's back-of-envelope form of
// Equation 7 used in §5.2 ("saving 10 W by moving from TX2 to FPGA gives us
// +1 minute of flight time (≈ 10/140 × 15 min)"): the saved power over the
// pre-swap total power, times the baseline flight time. It ignores the
// weight ripple that GainedFlightTimeMin resolves exactly.
func ApproxGainedFlightTimeMin(totalPowerW, savedPowerW, baselineFlightMin float64) float64 {
	if totalPowerW <= 0 {
		return 0
	}
	return savedPowerW / totalPowerW * baselineFlightMin
}
