package core

import (
	"errors"
	"strings"
	"testing"

	"dronedse/components"
)

func TestProcedureBasicApplication(t *testing.T) {
	// A mapping application: FPV camera + 20 W compute, 15 minutes.
	cam, _ := components.FindBoard("RunCam Night Eagle 2")
	rec, err := RunProcedure(Requirements{
		ExtraSensors: []components.Board{cam},
		Compute:      components.AdvancedComputeTier,
		MinFlightMin: 15,
	}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rec.FlightMin < 15 {
		t.Errorf("recommended design flies %.1f min < 15", rec.FlightMin)
	}
	if rec.ComputeSharePct <= 0 || rec.ComputeSharePct >= 40 {
		t.Errorf("compute share = %v%%", rec.ComputeSharePct)
	}
	if rec.GainedByHalvingComputeMin <= 0 {
		t.Error("halving 20 W of compute must gain flight time")
	}
	if !strings.Contains(rec.Report(), "selected") {
		t.Errorf("report missing selection:\n%s", rec.Report())
	}
}

func TestProcedureGrowsFrameForLiDAR(t *testing.T) {
	// A LiDAR survey drone (Ultra Puck, 925 g, self-powered): small
	// frames can't lift it with endurance; the procedure must climb to a
	// large class.
	lidar, _ := components.FindBoard("Ultra Puck")
	light, err := RunProcedure(Requirements{
		Compute:      components.BasicComputeTier,
		MinFlightMin: 12,
	}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := RunProcedure(Requirements{
		ExtraSensors: []components.Board{lidar},
		Compute:      components.BasicComputeTier,
		MinFlightMin: 12,
	}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Design.Spec.WheelbaseMM <= light.Design.Spec.WheelbaseMM {
		t.Errorf("LiDAR drone wheelbase %.0f not above bare drone %.0f",
			heavy.Design.Spec.WheelbaseMM, light.Design.Spec.WheelbaseMM)
	}
	// Self-powered: the LiDAR must not add compute share, only weight.
	if heavy.Design.Spec.SensorsW != 0 {
		t.Error("self-powered LiDAR charged to the main pack")
	}
}

func TestProcedureImpossibleRequirements(t *testing.T) {
	_, err := RunProcedure(Requirements{
		Compute:      components.AdvancedComputeTier,
		PayloadG:     5000,
		MinFlightMin: 60,
	}, DefaultParams())
	if !errors.Is(err, ErrNoFeasibleDesign) {
		t.Errorf("err = %v, want ErrNoFeasibleDesign", err)
	}
}

func TestProcedureWeightCap(t *testing.T) {
	capped, err := RunProcedure(Requirements{
		Compute:      components.BasicComputeTier,
		MinFlightMin: 10,
		MaxWeightG:   900,
	}, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if capped.Design.TotalG > 900 {
		t.Errorf("weight cap violated: %.0f g", capped.Design.TotalG)
	}
}
