package core

import (
	"dronedse/components"
	"dronedse/parallelx"
	"dronedse/propulsion"
	"dronedse/units"
)

// SweepPoint is one resolved configuration along a Figure 10 battery sweep.
type SweepPoint struct {
	CapacityMah             float64
	TotalWeightG            float64
	HoverPowerW             float64
	ManeuverPowerW          float64
	HoverFlightMin          float64
	ComputeShareHoverPct    float64
	ComputeShareManeuverPct float64
	Design                  Design
}

// gridSize returns the number of samples in [lo, lo+step, ..., hi]. The grid
// is indexed (lo + i*step) rather than accumulated, so float rounding can
// never drop the last point on long sweeps.
func gridSize(lo, hi, step float64) int {
	if step <= 0 || hi < lo {
		return 0
	}
	return int((hi-lo)/step+1e-9) + 1
}

// SweepCapacity resolves the design at each battery capacity from loMah to
// hiMah in stepMah increments (the paper sweeps 1000-8000 mAh), returning
// the Figure 10 series for one wheelbase / cell-count / compute choice.
// Infeasible points are skipped. Grid points fan out across the parallelx
// pool; output is identical to the serial (PoolSize=1) loop.
func SweepCapacity(spec Spec, p Params, loMah, hiMah, stepMah float64) []SweepPoint {
	n := gridSize(loMah, hiMah, stepMah)
	pts := parallelx.MapIndex(n, func(i int) *SweepPoint {
		capacityMah := loMah + float64(i)*stepMah
		s := spec
		s.CapacityMah = capacityMah
		d, err := ResolveCached(s, p)
		if err != nil {
			return nil
		}
		return &SweepPoint{
			CapacityMah:             capacityMah,
			TotalWeightG:            d.TotalG,
			HoverPowerW:             d.HoverPowerW(),
			ManeuverPowerW:          d.ManeuverPowerW(),
			HoverFlightMin:          d.HoverFlightTimeMin(),
			ComputeShareHoverPct:    d.ComputeSharePct(p.HoverLoad),
			ComputeShareManeuverPct: d.ComputeSharePct(p.ManeuverLoad),
			Design:                  d,
		}
	})
	var out []SweepPoint
	for _, pt := range pts {
		if pt != nil {
			out = append(out, *pt)
		}
	}
	return out
}

// BestConfig searches cells x capacity for the configuration with the
// longest hovering flight time — the "Best Configuration" annotation of
// Figures 10a-c. The whole grid fans out across the pool; the reduction
// scans in input order, so ties resolve exactly as the serial double loop
// did. It returns ok=false when nothing is feasible.
func BestConfig(spec Spec, p Params, cellsOptions []int, loMah, hiMah, stepMah float64) (Design, bool) {
	sweeps := parallelx.Map(cellsOptions, func(cells int) []SweepPoint {
		s := spec
		s.Cells = cells
		return SweepCapacity(s, p, loMah, hiMah, stepMah)
	})
	var best Design
	bestMin := -1.0
	for _, pts := range sweeps {
		for _, pt := range pts {
			if ft := pt.HoverFlightMin; ft > bestMin {
				bestMin = ft
				best = pt.Design
			}
		}
	}
	return best, bestMin >= 0
}

// MotorCurrentPoint is one Figure 9 sample: the minimum required per-motor
// max current draw for a drone of the given basic weight.
type MotorCurrentPoint struct {
	BasicWeightG float64
	CurrentA     float64
	Kv           float64
}

// MotorCurrentVsBasicWeight reproduces one Figure 9 line: for each basic
// weight (everything except battery, ESCs and motors — the figure's x-axis
// convention), it closes the motor/ESC weight loop at the target TWR and
// returns the per-motor max current and matching Kv for the wheelbase's
// propeller and the given supply. Non-converging weights are skipped.
func MotorCurrentVsBasicWeight(wheelbaseMM float64, cells int, twr float64, p Params, basicWeightsG []float64) []MotorCurrentPoint {
	propIn := components.MaxPropellerInches(wheelbaseMM)
	propD := units.InchToMeter(propIn)
	v := units.CellsToVoltage(cells)
	return parallelx.FilterMap(basicWeightsG, func(basic float64) (MotorCurrentPoint, bool) {
		// Close the motor+ESC loop on top of the basic weight (no
		// battery, no wiring — the figure's x-axis convention).
		wc := closeWeightLoop(basic, basic*1.3, twr, propD, v, p, components.LongFlight, false)
		if !wc.Converged {
			return MotorCurrentPoint{}, false
		}
		return MotorCurrentPoint{
			BasicWeightG: basic,
			CurrentA:     wc.RequiredA,
			Kv: propulsion.KvForDesign(
				units.GramsToNewtons(twr*wc.TotalG/4), propD, v),
		}, true
	})
}

// MinFeasibleBasicWeightG estimates Figure 9's "Min. Possible Weight Line":
// the lightest basic weight a wheelbase class supports (bare frame, smallest
// controller, props and wiring, no payload).
func MinFeasibleBasicWeightG(wheelbaseMM float64, p Params) float64 {
	frame := components.FrameWeightModel(wheelbaseMM)
	props := 4 * components.PropellerWeightG(components.MaxPropellerInches(wheelbaseMM))
	const minController = 8 // lightest Table 4 basic controller
	basic := frame + props + minController
	return basic + p.WiringBaseG + p.WiringFrac*basic
}
