package core

import (
	"math"

	"dronedse/components"
	"dronedse/propulsion"
	"dronedse/units"
)

// SweepPoint is one resolved configuration along a Figure 10 battery sweep.
type SweepPoint struct {
	CapacityMah             float64
	TotalWeightG            float64
	HoverPowerW             float64
	ManeuverPowerW          float64
	HoverFlightMin          float64
	ComputeShareHoverPct    float64
	ComputeShareManeuverPct float64
	Design                  Design
}

// SweepCapacity resolves the design at each battery capacity from loMah to
// hiMah in stepMah increments (the paper sweeps 1000-8000 mAh), returning
// the Figure 10 series for one wheelbase / cell-count / compute choice.
// Infeasible points are skipped.
func SweepCapacity(spec Spec, p Params, loMah, hiMah, stepMah float64) []SweepPoint {
	var out []SweepPoint
	for cap := loMah; cap <= hiMah+1e-9; cap += stepMah {
		s := spec
		s.CapacityMah = cap
		d, err := Resolve(s, p)
		if err != nil {
			continue
		}
		out = append(out, SweepPoint{
			CapacityMah:             cap,
			TotalWeightG:            d.TotalG,
			HoverPowerW:             d.HoverPowerW(),
			ManeuverPowerW:          d.ManeuverPowerW(),
			HoverFlightMin:          d.HoverFlightTimeMin(),
			ComputeShareHoverPct:    d.ComputeSharePct(p.HoverLoad),
			ComputeShareManeuverPct: d.ComputeSharePct(p.ManeuverLoad),
			Design:                  d,
		})
	}
	return out
}

// BestConfig searches cells x capacity for the configuration with the
// longest hovering flight time — the "Best Configuration" annotation of
// Figures 10a-c. It returns ok=false when nothing is feasible.
func BestConfig(spec Spec, p Params, cellsOptions []int, loMah, hiMah, stepMah float64) (Design, bool) {
	var best Design
	bestMin := -1.0
	for _, cells := range cellsOptions {
		s := spec
		s.Cells = cells
		for _, pt := range SweepCapacity(s, p, loMah, hiMah, stepMah) {
			if ft := pt.HoverFlightMin; ft > bestMin {
				bestMin = ft
				best = pt.Design
			}
		}
	}
	return best, bestMin >= 0
}

// MotorCurrentPoint is one Figure 9 sample: the minimum required per-motor
// max current draw for a drone of the given basic weight.
type MotorCurrentPoint struct {
	BasicWeightG float64
	CurrentA     float64
	Kv           float64
}

// MotorCurrentVsBasicWeight reproduces one Figure 9 line: for each basic
// weight (everything except battery, ESCs and motors — the figure's x-axis
// convention), it closes the motor/ESC weight loop at the target TWR and
// returns the per-motor max current and matching Kv for the wheelbase's
// propeller and the given supply.
func MotorCurrentVsBasicWeight(wheelbaseMM float64, cells int, twr float64, p Params, basicWeightsG []float64) []MotorCurrentPoint {
	propIn := components.MaxPropellerInches(wheelbaseMM)
	propD := units.InchToMeter(propIn)
	v := units.CellsToVoltage(cells)
	out := make([]MotorCurrentPoint, 0, len(basicWeightsG))
	for _, basic := range basicWeightsG {
		// Close the motor+ESC loop on top of the basic weight.
		total := basic * 1.3
		var reqA float64
		converged := false
		for iter := 0; iter < 200; iter++ {
			perMotorThrustG := twr * total / 4
			motorG := components.MotorWeightModel(perMotorThrustG)
			reqA = propulsion.MotorCurrent(
				units.GramsToNewtons(perMotorThrustG), propD, v, p.Eff)
			escG := components.ESCWeightModel(components.LongFlight, reqA*p.MotorOversize)
			next := basic + 4*motorG + escG
			if math.Abs(next-total) < 1e-9*(1+total) {
				total = next
				converged = true
				break
			}
			total = 0.5*total + 0.5*next
			if total > 1e6 || math.IsNaN(total) {
				break
			}
		}
		if !converged {
			continue
		}
		out = append(out, MotorCurrentPoint{
			BasicWeightG: basic,
			CurrentA:     reqA,
			Kv: propulsion.KvForDesign(
				units.GramsToNewtons(twr*total/4), propD, v),
		})
	}
	return out
}

// MinFeasibleBasicWeightG estimates Figure 9's "Min. Possible Weight Line":
// the lightest basic weight a wheelbase class supports (bare frame, smallest
// controller, props and wiring, no payload).
func MinFeasibleBasicWeightG(wheelbaseMM float64, p Params) float64 {
	frame := components.FrameWeightModel(wheelbaseMM)
	props := 4 * components.PropellerWeightG(components.MaxPropellerInches(wheelbaseMM))
	const minController = 8 // lightest Table 4 basic controller
	basic := frame + props + minController
	return basic + p.WiringBaseG + p.WiringFrac*basic
}
