package core

import (
	"fmt"
	"strings"

	"dronedse/components"
)

// Requirements describe a target application the way Figure 12's procedure
// starts: what must the drone carry and compute, and how long must it fly?
type Requirements struct {
	// ExtraSensors to carry (Table 4 rows; self-powered units contribute
	// weight only).
	ExtraSensors []components.Board
	// Compute is the computation the application needs on board.
	Compute components.ComputeTier
	// PayloadG is additional payload.
	PayloadG float64
	// MinFlightMin is the required hovering endurance.
	MinFlightMin float64
	// MaxWeightG caps the takeoff weight (0 = unconstrained).
	MaxWeightG float64
}

// Recommendation is the procedure's output: the chosen design plus the
// quantified compute footprint — "Total Gained Flight Time" included.
type Recommendation struct {
	Design Design
	// FlightMin is the hovering flight time.
	FlightMin float64
	// ComputeSharePct is the Equation 6 footprint.
	ComputeSharePct float64
	// GainedByHalvingComputeMin quantifies the optimization opportunity
	// (Equation 7): flight time gained if the application's compute power
	// were halved (e.g. by the §5 SLAM offload).
	GainedByHalvingComputeMin float64
	// Steps records the Figure 12 walk for the report.
	Steps []string
}

// ErrNoFeasibleDesign reports that no frame class meets the requirements.
var ErrNoFeasibleDesign = fmt.Errorf("core: no feasible design meets the requirements")

// RunProcedure walks Figure 12: start with a small frame, add the required
// sensors/compute/payload weight (growing the frame when needed), select a
// battery, close the weight loop, and compute flight time and the compute
// power footprint. It returns the lightest design meeting the endurance
// requirement.
func RunProcedure(req Requirements, p Params) (Recommendation, error) {
	var rec Recommendation
	log := func(format string, args ...interface{}) {
		rec.Steps = append(rec.Steps, fmt.Sprintf(format, args...))
	}

	sensorsW, sensorsG := 0.0, 0.0
	for _, b := range req.ExtraSensors {
		sensorsG += b.WeightG
		if !b.SelfPowered {
			sensorsW += b.PowerW
		}
	}
	log("requirements: %.1f W / %.0f g compute, %.0f g sensors (%.1f W), %.0f g payload, >= %.0f min",
		req.Compute.PowerW, req.Compute.WeightG, sensorsG, sensorsW, req.PayloadG, req.MinFlightMin)

	// "Start with a small frame": walk the frame classes upward.
	for _, wb := range []float64{100, 200, 300, 450, 600, 800, 1000} {
		spec := Spec{
			WheelbaseMM: wb, TWR: 2, Cells: 3, CapacityMah: 1000,
			Compute:  req.Compute,
			SensorsW: sensorsW, SensorsG: sensorsG,
			PayloadG: req.PayloadG,
			ESCClass: components.LongFlight,
		}
		best, ok := BestConfig(spec, p, []int{1, 2, 3, 4, 5, 6}, 1000, 8000, 500)
		if !ok {
			log("%.0f mm: infeasible (weight closure diverges)", wb)
			continue
		}
		ft := best.HoverFlightTimeMin()
		if req.MaxWeightG > 0 && best.TotalG > req.MaxWeightG {
			log("%.0f mm: best config weighs %.0f g > cap %.0f g", wb, best.TotalG, req.MaxWeightG)
			continue
		}
		if ft < req.MinFlightMin {
			log("%.0f mm: best %.1f min < required %.0f min; larger frame", wb, ft, req.MinFlightMin)
			continue
		}
		if len(best.Feasibility()) > 0 {
			log("%.0f mm: flagged %v; larger frame", wb, best.Feasibility())
			continue
		}
		log("%.0f mm: %dS %.0f mAh, %.0f g, %.1f min — selected",
			wb, best.Spec.Cells, best.Spec.CapacityMah, best.TotalG, ft)
		rec.Design = best
		rec.FlightMin = ft
		rec.ComputeSharePct = best.ComputeSharePct(p.HoverLoad)
		if gain, err := GainedFlightTimeMin(best, req.Compute.PowerW/2, req.Compute.WeightG, p.HoverLoad); err == nil {
			rec.GainedByHalvingComputeMin = gain
		}
		log("compute footprint %.1f%% of hover power; halving compute power gains %+.1f min",
			rec.ComputeSharePct, rec.GainedByHalvingComputeMin)
		return rec, nil
	}
	return rec, ErrNoFeasibleDesign
}

// Report renders the procedure walk.
func (r Recommendation) Report() string {
	return strings.Join(r.Steps, "\n")
}
