package core

import (
	"testing"

	"dronedse/components"
)

func TestFeasibilityChecks(t *testing.T) {
	p := DefaultParams()
	// A sane design: no issues.
	sane := mustResolve(t, DefaultSpec())
	for _, is := range sane.Feasibility() {
		t.Errorf("default design flagged: %v", is)
	}
	// A tiny racing battery hauling a loaded 200 mm frame: the small 5"
	// props demand huge currents the 1000 mAh pack cannot supply.
	marginal := Spec{WheelbaseMM: 200, Cells: 2, CapacityMah: 1000, TWR: 2,
		PayloadG: 600,
		Compute:  components.AdvancedComputeTier, ESCClass: components.LongFlight}
	d, err := Resolve(marginal, p)
	if err != nil {
		t.Fatal(err)
	}
	issues := d.Feasibility()
	has := func(want FeasibilityIssue) bool {
		for _, is := range issues {
			if is == want {
				return true
			}
		}
		return false
	}
	if !has(BatteryCRating) {
		t.Errorf("1000 mAh feeding a loaded 200 mm racer should exceed any C rating (needs %.0fC)", d.RequiredCRating())
	}
	if has(BatteryCRating) != (d.RequiredCRating() > maxSurveyC) {
		t.Error("RequiredCRating inconsistent with the flag")
	}
	if !has(ShortFlight) {
		t.Errorf("this configuration hovers %.1f min and should be flagged short-flight", d.HoverFlightTimeMin())
	}
}

func TestFeasibilityStrings(t *testing.T) {
	for _, is := range []FeasibilityIssue{BatteryCRating, ESCOverSpec, ShortFlight} {
		if is.String() == "" {
			t.Error("issue missing a name")
		}
	}
}

func TestParetoPayloadFrontier(t *testing.T) {
	spec := DefaultSpec()
	p := DefaultParams()
	pts := ParetoPayloadFrontier(spec, p, []float64{0, 100, 200, 400, 800})
	if len(pts) < 3 {
		t.Fatalf("frontier too small: %d points", len(pts))
	}
	// Frontier is sorted by payload and strictly worsening in flight time
	// (more payload can never fly longer at the same wheelbase).
	for i := 1; i < len(pts); i++ {
		if pts[i].Objective <= pts[i-1].Objective {
			t.Fatal("frontier not sorted by payload")
		}
		if pts[i].FlightMin >= pts[i-1].FlightMin {
			t.Errorf("payload %v flies %.1f min, no worse than lighter %v at %.1f — not a frontier",
				pts[i].Objective, pts[i].FlightMin, pts[i-1].Objective, pts[i-1].FlightMin)
		}
	}
}

func TestParetoComputeFrontier(t *testing.T) {
	pts := ParetoComputeFrontier(DefaultSpec(), DefaultParams(), []float64{0.5, 3, 10, 20, 40})
	if len(pts) < 3 {
		t.Fatalf("frontier too small: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FlightMin >= pts[i-1].FlightMin {
			t.Error("more compute should cost flight time along the frontier")
		}
	}
}

func TestParetoFilterDominance(t *testing.T) {
	pts := []ParetoPoint{
		{Objective: 1, FlightMin: 10},
		{Objective: 1, FlightMin: 8}, // dominated (same payload, less time)
		{Objective: 2, FlightMin: 9},
		{Objective: 2, FlightMin: 11}, // dominates everything at obj<=2
	}
	out := paretoFilter(pts)
	if len(out) != 1 || out[0].FlightMin != 11 {
		t.Errorf("filter kept %+v", out)
	}
}

// TestTWRSweep verifies the §7 claim the repository was asked to release:
// at higher TWR the computation share only shrinks, so TWR 2 bounds it.
func TestTWRSweep(t *testing.T) {
	spec := DefaultSpec()
	spec.Compute = components.AdvancedComputeTier
	pts := TWRSweep(spec, DefaultParams())
	if len(pts) < 4 {
		t.Fatalf("sweep produced %d points", len(pts))
	}
	if pts[0].TWR != 2 {
		t.Fatal("sweep must start at the TWR 2 bound")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ComputeShareHoverPct >= pts[i-1].ComputeShareHoverPct {
			t.Errorf("compute share rose from TWR %v to %v", pts[i-1].TWR, pts[i].TWR)
		}
		if pts[i].HoverPowerW <= pts[i-1].HoverPowerW {
			t.Errorf("hover power fell with TWR %v", pts[i].TWR)
		}
		if pts[i].TotalWeightG <= pts[i-1].TotalWeightG {
			t.Errorf("weight fell with TWR %v (bigger motors/ESCs expected)", pts[i].TWR)
		}
	}
}

// TestSensorPayloadStudy verifies the §3.1 external-sensor squeeze: heavy
// self-powered LiDARs shrink the compute share and cost flight time.
func TestSensorPayloadStudy(t *testing.T) {
	spec := Spec{WheelbaseMM: 800, Cells: 6, CapacityMah: 8000, TWR: 2,
		Compute: components.AdvancedComputeTier, ESCClass: components.LongFlight}
	sensors := []struct {
		Name    string
		WeightG float64
	}{
		{"Ultra Puck", 925},
		{"YellowScan Surveyor", 1600},
	}
	pts := SensorPayloadStudy(spec, DefaultParams(), sensors)
	if len(pts) != 3 {
		t.Fatalf("study produced %d rows", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ComputeShareHoverPct >= pts[i-1].ComputeShareHoverPct {
			t.Errorf("%s did not shrink the compute share", pts[i].SensorName)
		}
		if pts[i].FlightMin >= pts[i-1].FlightMin {
			t.Errorf("%s did not cost flight time", pts[i].SensorName)
		}
	}
}
