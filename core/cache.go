package core

import (
	"math"
	"sync"
	"sync/atomic"
)

// resolveKey identifies one Equation 1 fixed point: the full Spec plus the
// calibration Params. Both are flat comparable structs, so the pair is a
// valid map key and two keys are equal exactly when Resolve would do the
// identical computation.
type resolveKey struct {
	Spec   Spec
	Params Params
}

// resolveEntry caches Resolve's full result, error included (validation and
// convergence failures are as deterministic as successes).
type resolveEntry struct {
	d   Design
	err error
}

// resolveShards spreads the cache across independently locked shards so
// concurrent sweep workers do not serialize on one mutex.
const resolveShards = 16

// maxResolveEntriesPerShard bounds memory: a full shard is cleared before
// inserting (wholesale eviction — the sweeps that refill it are exactly the
// workloads that hit it). ~4k entries/shard x 16 shards x ~350 B/entry stays
// around 20 MB worst case.
var maxResolveEntriesPerShard = 4096

type resolveCacheShard struct {
	mu sync.RWMutex
	m  map[resolveKey]resolveEntry
}

type resolveCacheT struct {
	shards [resolveShards]resolveCacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

var resolveCache resolveCacheT

// shardFor hashes the key's most variable fields (the grid axes) into a
// shard index.
func (c *resolveCacheT) shardFor(k resolveKey) *resolveCacheShard {
	h := math.Float64bits(k.Spec.CapacityMah)
	h = h*31 + math.Float64bits(k.Spec.WheelbaseMM)
	h = h*31 + math.Float64bits(k.Spec.PayloadG)
	h = h*31 + math.Float64bits(k.Spec.TWR)
	h = h*31 + math.Float64bits(k.Spec.Compute.PowerW)
	h = h*31 + math.Float64bits(k.Spec.SensorsG)
	h = h*31 + uint64(k.Spec.Cells)
	h ^= h >> 33
	return &c.shards[h%resolveShards]
}

// ResolveCached is Resolve behind a process-wide concurrency-safe
// memoization cache keyed on (Spec, Params). The grid sweeps (BestConfig,
// the Pareto frontiers, the figure generators) revisit identical fixed
// points thousands of times; the cache collapses each distinct point to one
// computation. Resolve is pure, so the returned Design is identical to an
// uncached call.
func ResolveCached(spec Spec, p Params) (Design, error) {
	k := resolveKey{Spec: spec, Params: p}
	s := resolveCache.shardFor(k)

	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		resolveCache.hits.Add(1)
		return e.d, e.err
	}
	resolveCache.misses.Add(1)

	d, err := Resolve(spec, p)

	s.mu.Lock()
	if s.m == nil || len(s.m) >= maxResolveEntriesPerShard {
		s.m = make(map[resolveKey]resolveEntry, maxResolveEntriesPerShard/4)
	}
	s.m[k] = resolveEntry{d: d, err: err}
	s.mu.Unlock()
	return d, err
}

// ResolveCacheStats reports cumulative cache behavior: hits, misses, and the
// current number of resident entries.
func ResolveCacheStats() (hits, misses uint64, entries int) {
	for i := range resolveCache.shards {
		s := &resolveCache.shards[i]
		s.mu.RLock()
		entries += len(s.m)
		s.mu.RUnlock()
	}
	return resolveCache.hits.Load(), resolveCache.misses.Load(), entries
}

// ResetResolveCache drops every cached entry and zeroes the counters
// (benchmarks use it to measure cold and warm paths separately).
func ResetResolveCache() {
	for i := range resolveCache.shards {
		s := &resolveCache.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
	resolveCache.hits.Store(0)
	resolveCache.misses.Store(0)
}
