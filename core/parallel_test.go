package core

import (
	"reflect"
	"testing"

	"dronedse/components"
	"dronedse/parallelx"
)

// testPools are the pool sizes every determinism property is checked at:
// the serial oracle, a small pool, and an oversubscribed one.
var testPools = []int{1, 2, 8}

// atPool runs body with the parallelx pool forced to n, restoring it after.
func atPool(t *testing.T, n int, body func()) {
	t.Helper()
	prev := parallelx.SetPoolSize(n)
	defer parallelx.SetPoolSize(prev)
	body()
}

// TestSweepCapacityDeterministic: the parallel sweep is identical to the
// serial loop at every pool size, cached or not.
func TestSweepCapacityDeterministic(t *testing.T) {
	spec := DefaultSpec()
	p := DefaultParams()
	var want []SweepPoint
	atPool(t, 1, func() {
		ResetResolveCache()
		want = SweepCapacity(spec, p, 1000, 8000, 250)
	})
	if len(want) == 0 {
		t.Fatal("serial sweep is empty")
	}
	for _, pool := range testPools {
		atPool(t, pool, func() {
			ResetResolveCache()
			cold := SweepCapacity(spec, p, 1000, 8000, 250)
			warm := SweepCapacity(spec, p, 1000, 8000, 250)
			if !reflect.DeepEqual(cold, want) {
				t.Fatalf("pool=%d cold sweep differs from serial", pool)
			}
			if !reflect.DeepEqual(warm, want) {
				t.Fatalf("pool=%d warm (cached) sweep differs from serial", pool)
			}
		})
	}
}

// TestSweepCapacityGridEndpoints: integer step indexing never drops the last
// grid point, including steps that are not exactly representable in binary.
func TestSweepCapacityGridEndpoints(t *testing.T) {
	spec := DefaultSpec()
	p := DefaultParams()
	cases := []struct {
		lo, hi, step float64
		wantN        int
	}{
		{1000, 8000, 250, 29},
		{1000, 8000, 500, 15},
		// A non-representable step: repeated accumulation drifts, but the
		// indexed grid (lo + i*step) stays exact for every point.
		{1000, 8000, 10.7, 655},
		{3000, 3000, 500, 1},
	}
	for _, c := range cases {
		pts := SweepCapacity(spec, p, c.lo, c.hi, c.step)
		if len(pts) != c.wantN {
			t.Errorf("grid [%g,%g] step %g: %d points, want %d", c.lo, c.hi, c.step, len(pts), c.wantN)
			continue
		}
		last := pts[len(pts)-1].CapacityMah
		wantLast := c.lo + float64(c.wantN-1)*c.step
		if last != wantLast {
			t.Errorf("grid [%g,%g] step %g: last point %v, want %v", c.lo, c.hi, c.step, last, wantLast)
		}
	}
	if pts := SweepCapacity(spec, p, 8000, 1000, 250); pts != nil {
		t.Error("inverted grid should be empty")
	}
	if pts := SweepCapacity(spec, p, 1000, 8000, 0); pts != nil {
		t.Error("zero step should be empty, not an infinite loop")
	}
}

// TestBestConfigDeterministic: the parallel cells x capacity search picks
// the exact design (tie-breaks included) the serial double loop picked.
func TestBestConfigDeterministic(t *testing.T) {
	spec := DefaultSpec()
	p := DefaultParams()
	cells := []int{1, 2, 3, 4, 5, 6}
	var want Design
	var wantOK bool
	atPool(t, 1, func() {
		ResetResolveCache()
		want, wantOK = BestConfig(spec, p, cells, 1000, 8000, 250)
	})
	if !wantOK {
		t.Fatal("serial BestConfig found nothing")
	}
	for _, pool := range testPools {
		atPool(t, pool, func() {
			ResetResolveCache()
			got, ok := BestConfig(spec, p, cells, 1000, 8000, 250)
			if !ok || got != want {
				t.Fatalf("pool=%d BestConfig differs: ok=%v got %dS %.0f mAh, want %dS %.0f mAh",
					pool, ok, got.Spec.Cells, got.Spec.CapacityMah, want.Spec.Cells, want.Spec.CapacityMah)
			}
		})
	}
}

// TestFrontiersDeterministic covers the four frontier/study functions in
// pareto.go at every pool size.
func TestFrontiersDeterministic(t *testing.T) {
	spec := DefaultSpec()
	p := DefaultParams()
	payloads := []float64{0, 100, 200, 400, 800}
	computeW := []float64{1, 3, 10, 20, 40}
	sensors := []struct {
		Name    string
		WeightG float64
	}{{"lidar-a", 100}, {"lidar-b", 250}, {"lidar-c", 590}}
	large := Spec{WheelbaseMM: 800, Cells: 6, CapacityMah: 8000, TWR: 2,
		Compute: components.AdvancedComputeTier, ESCClass: components.LongFlight}

	var wantPayload, wantCompute []ParetoPoint
	var wantTWR []TWRPoint
	var wantSensor []SensorPayloadPoint
	atPool(t, 1, func() {
		ResetResolveCache()
		wantPayload = ParetoPayloadFrontier(spec, p, payloads)
		wantCompute = ParetoComputeFrontier(spec, p, computeW)
		wantTWR = TWRSweep(spec, p)
		wantSensor = SensorPayloadStudy(large, p, sensors)
	})
	if len(wantPayload) == 0 || len(wantCompute) == 0 || len(wantTWR) == 0 || len(wantSensor) == 0 {
		t.Fatal("serial frontiers empty")
	}
	for _, pool := range testPools {
		atPool(t, pool, func() {
			ResetResolveCache()
			if got := ParetoPayloadFrontier(spec, p, payloads); !reflect.DeepEqual(got, wantPayload) {
				t.Errorf("pool=%d payload frontier differs", pool)
			}
			if got := ParetoComputeFrontier(spec, p, computeW); !reflect.DeepEqual(got, wantCompute) {
				t.Errorf("pool=%d compute frontier differs", pool)
			}
			if got := TWRSweep(spec, p); !reflect.DeepEqual(got, wantTWR) {
				t.Errorf("pool=%d TWR sweep differs", pool)
			}
			if got := SensorPayloadStudy(large, p, sensors); !reflect.DeepEqual(got, wantSensor) {
				t.Errorf("pool=%d sensor study differs", pool)
			}
		})
	}
}

// TestMotorCurrentDeterministic: the Figure 9 closure line is pool-invariant
// and the shared closeWeightLoop produces designs consistent with Resolve:
// a Resolve with zero wiring overhead and the basic weight as its fixed mass
// lands on the same current (the dedup satellite's regression anchor).
func TestMotorCurrentDeterministic(t *testing.T) {
	p := DefaultParams()
	weights := []float64{300, 600, 900, 1200, 1500}
	var want []MotorCurrentPoint
	atPool(t, 1, func() { want = MotorCurrentVsBasicWeight(450, 3, 2, p, weights) })
	if len(want) != len(weights) {
		t.Fatalf("serial line has %d of %d points", len(want), len(weights))
	}
	for _, pool := range testPools {
		atPool(t, pool, func() {
			if got := MotorCurrentVsBasicWeight(450, 3, 2, p, weights); !reflect.DeepEqual(got, want) {
				t.Fatalf("pool=%d Figure 9 line differs from serial", pool)
			}
		})
	}
}
