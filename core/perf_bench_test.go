package core

import (
	"fmt"
	"runtime"
	"testing"

	"dronedse/parallelx"
)

// benchPools are the pool sizes the perf trajectory is tracked at.
func benchPools() []int {
	pools := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		pools = append(pools, n)
	}
	return pools
}

// atEachPool runs the body as a sub-benchmark per pool size.
func atEachPool(b *testing.B, body func(b *testing.B)) {
	for _, pool := range benchPools() {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			prev := parallelx.SetPoolSize(pool)
			defer parallelx.SetPoolSize(prev)
			body(b)
		})
	}
}

func BenchmarkResolve(b *testing.B) {
	spec := DefaultSpec()
	p := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Resolve(spec, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveCachedCold(b *testing.B) {
	p := DefaultParams()
	spec := DefaultSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ResetResolveCache()
		spec.CapacityMah = 1000 + float64(i%7000)
		if _, err := ResolveCached(spec, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveCachedWarm(b *testing.B) {
	spec := DefaultSpec()
	p := DefaultParams()
	ResetResolveCache()
	if _, err := ResolveCached(spec, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ResolveCached(spec, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepCapacity(b *testing.B) {
	spec := DefaultSpec()
	p := DefaultParams()
	atEachPool(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ResetResolveCache() // time the compute, not the cache
			if pts := SweepCapacity(spec, p, 1000, 8000, 100); len(pts) == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
}

func BenchmarkBestConfig(b *testing.B) {
	spec := DefaultSpec()
	p := DefaultParams()
	cells := []int{1, 2, 3, 4, 5, 6}
	atEachPool(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ResetResolveCache()
			if _, ok := BestConfig(spec, p, cells, 1000, 8000, 250); !ok {
				b.Fatal("no feasible config")
			}
		}
	})
}

// BenchmarkBestConfigCached measures the steady-state (warm cache) search —
// the BestConfig the Pareto frontier and Figure 12 procedure actually see.
func BenchmarkBestConfigCached(b *testing.B) {
	spec := DefaultSpec()
	p := DefaultParams()
	cells := []int{1, 2, 3, 4, 5, 6}
	ResetResolveCache()
	BestConfig(spec, p, cells, 1000, 8000, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := BestConfig(spec, p, cells, 1000, 8000, 250); !ok {
			b.Fatal("no feasible config")
		}
	}
}

func BenchmarkParetoPayloadFrontier(b *testing.B) {
	spec := DefaultSpec()
	p := DefaultParams()
	payloads := []float64{0, 100, 200, 300, 500, 750, 1000}
	atEachPool(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ResetResolveCache()
			if pts := ParetoPayloadFrontier(spec, p, payloads); len(pts) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
}
