package mathx

import "math"

// Quat is a unit quaternion w + xi + yj + zk representing an attitude,
// i.e. an element of SO(3) (§2.1.3-D: the drone attitude R ∈ SO(3)).
// The convention is body-to-world rotation: Rotate maps body-frame vectors
// into the world frame.
type Quat struct {
	W, X, Y, Z float64
}

// QuatIdentity returns the identity rotation.
func QuatIdentity() Quat { return Quat{W: 1} }

// QuatFromAxisAngle builds the rotation of angle rad about axis (normalized
// internally).
func QuatFromAxisAngle(axis Vec3, angle float64) Quat {
	a := axis.Normalized()
	s, c := math.Sincos(angle / 2)
	return Quat{c, a.X * s, a.Y * s, a.Z * s}
}

// QuatFromEuler builds an attitude from aerospace Z-Y-X (yaw-pitch-roll)
// Euler angles in radians.
func QuatFromEuler(roll, pitch, yaw float64) Quat {
	sr, cr := math.Sincos(roll / 2)
	sp, cp := math.Sincos(pitch / 2)
	sy, cy := math.Sincos(yaw / 2)
	return Quat{
		W: cr*cp*cy + sr*sp*sy,
		X: sr*cp*cy - cr*sp*sy,
		Y: cr*sp*cy + sr*cp*sy,
		Z: cr*cp*sy - sr*sp*cy,
	}
}

// Euler returns the Z-Y-X (roll, pitch, yaw) Euler angles of q in radians.
func (q Quat) Euler() (roll, pitch, yaw float64) {
	// roll (x-axis rotation)
	sinr := 2 * (q.W*q.X + q.Y*q.Z)
	cosr := 1 - 2*(q.X*q.X+q.Y*q.Y)
	roll = math.Atan2(sinr, cosr)

	// pitch (y-axis rotation), guarded against numerical drift past ±1
	sinp := 2 * (q.W*q.Y - q.Z*q.X)
	if math.Abs(sinp) >= 1 {
		pitch = math.Copysign(math.Pi/2, sinp)
	} else {
		pitch = math.Asin(sinp)
	}

	// yaw (z-axis rotation)
	siny := 2 * (q.W*q.Z + q.X*q.Y)
	cosy := 1 - 2*(q.Y*q.Y+q.Z*q.Z)
	yaw = math.Atan2(siny, cosy)
	return
}

// Mul returns the Hamilton product q * r (apply r first, then q).
func (q Quat) Mul(r Quat) Quat {
	return Quat{
		W: q.W*r.W - q.X*r.X - q.Y*r.Y - q.Z*r.Z,
		X: q.W*r.X + q.X*r.W + q.Y*r.Z - q.Z*r.Y,
		Y: q.W*r.Y - q.X*r.Z + q.Y*r.W + q.Z*r.X,
		Z: q.W*r.Z + q.X*r.Y - q.Y*r.X + q.Z*r.W,
	}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Norm returns |q|.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit norm; the identity is returned for a
// degenerate (near-zero) quaternion.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n < 1e-12 {
		return QuatIdentity()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Rotate applies the rotation to v (body → world for an attitude quaternion).
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q (0,v) q*
	u := Vec3{q.X, q.Y, q.Z}
	s := q.W
	return u.Scale(2 * u.Dot(v)).
		Add(v.Scale(s*s - u.Dot(u))).
		Add(u.Cross(v).Scale(2 * s))
}

// RotateInv applies the inverse rotation (world → body).
func (q Quat) RotateInv(v Vec3) Vec3 { return q.Conj().Rotate(v) }

// Mat returns the 3x3 rotation matrix of q.
func (q Quat) Mat() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}

// Integrate advances the attitude by body angular rate omega (rad/s) over dt
// seconds using first-order quaternion integration, returning a normalized
// quaternion. This is the kernel the inner loop runs at up to 1 kHz.
func (q Quat) Integrate(omega Vec3, dt float64) Quat {
	dq := Quat{0, omega.X, omega.Y, omega.Z}
	qd := q.Mul(dq)
	out := Quat{
		q.W + 0.5*qd.W*dt,
		q.X + 0.5*qd.X*dt,
		q.Y + 0.5*qd.Y*dt,
		q.Z + 0.5*qd.Z*dt,
	}
	return out.Normalized()
}

// AngleTo returns the geodesic angle between two attitudes in radians.
func (q Quat) AngleTo(r Quat) float64 {
	d := q.Conj().Mul(r).Normalized()
	w := math.Abs(d.W)
	if w > 1 {
		w = 1
	}
	return 2 * math.Acos(w)
}
