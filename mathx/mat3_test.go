package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMat3Identity(t *testing.T) {
	m := Mat3{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if got := Identity3().Mul(m); got != m {
		t.Errorf("I*m = %v", got)
	}
	if got := m.Mul(Identity3()); got != m {
		t.Errorf("m*I = %v", got)
	}
}

func TestMat3MulVec(t *testing.T) {
	m := Diag3(2, 3, 4)
	if got := m.MulVec(V3(1, 1, 1)); got != V3(2, 3, 4) {
		t.Errorf("diag mul = %v", got)
	}
}

func TestMat3Inverse(t *testing.T) {
	m := Mat3{{4, 7, 2}, {3, 6, 1}, {2, 5, 3}}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	p := m.Mul(inv)
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(p[i][j]-id[i][j]) > 1e-10 {
				t.Fatalf("m*inv != I at (%d,%d): %v", i, j, p[i][j])
			}
		}
	}
}

func TestMat3SingularInverse(t *testing.T) {
	m := Mat3{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}} // row2 = 2*row1
	if _, ok := m.Inverse(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestSkewIsCross(t *testing.T) {
	f := func(a, b Vec3) bool {
		got := Skew(a).MulVec(b)
		want := a.Cross(b)
		return got.Sub(want).Norm() < 1e-9*(1+a.Norm()*b.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Values: smallVecPair}); err != nil {
		t.Error(err)
	}
}

func TestMat3TransposeDet(t *testing.T) {
	m := Mat3{{4, 7, 2}, {3, 6, 1}, {2, 5, 3}}
	if m.Transpose().Det() != m.Det() {
		t.Error("det(m^T) != det(m)")
	}
	if m.Transpose().Transpose() != m {
		t.Error("double transpose changed matrix")
	}
}

func TestMat3AddSubScaleTrace(t *testing.T) {
	m := Diag3(1, 2, 3)
	n := Diag3(4, 5, 6)
	if got := m.Add(n); got != Diag3(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := n.Sub(m); got != Diag3(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := m.Scale(2); got != Diag3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if m.Trace() != 6 {
		t.Errorf("Trace = %v", m.Trace())
	}
}

func TestRotationOrthonormal(t *testing.T) {
	f := func(q Quat) bool {
		return q.Mat().IsOrthonormal(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Values: quatSingle}); err != nil {
		t.Error(err)
	}
}
