package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; all values must be positive.
// It returns 0 for an empty slice. The paper reports SLAM speedups as GMean
// (Figure 17), so the harness uses this.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// MinMax returns the smallest and largest values of xs; both are 0 for an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Within reports whether x is within tol of want (absolute tolerance).
func Within(x, want, tol float64) bool { return math.Abs(x-want) <= tol }

// WithinRel reports whether x is within fractional tolerance rel of want.
func WithinRel(x, want, rel float64) bool {
	if want == 0 {
		return math.Abs(x) <= rel
	}
	return math.Abs(x-want) <= math.Abs(want)*rel
}
