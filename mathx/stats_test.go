package mathx

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{1, -1}); !math.IsNaN(got) {
		t.Errorf("GeoMean with negative = %v, want NaN", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev single != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Error("extremes wrong")
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// input must not be reordered
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("MinMax(nil) not zero")
	}
}

func TestWithin(t *testing.T) {
	if !Within(1.05, 1.0, 0.1) || Within(1.2, 1.0, 0.1) {
		t.Error("Within wrong")
	}
	if !WithinRel(110, 100, 0.15) || WithinRel(130, 100, 0.15) {
		t.Error("WithinRel wrong")
	}
	if !WithinRel(0.05, 0, 0.1) {
		t.Error("WithinRel zero-want wrong")
	}
}
