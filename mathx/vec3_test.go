package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec3Basics(t *testing.T) {
	v := V3(1, 2, 3)
	w := V3(4, -5, 6)
	if got := v.Add(w); got != V3(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != V3(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != V3(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Neg(); got != V3(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Hadamard(w); got != V3(4, -10, 18) {
		t.Errorf("Hadamard = %v", got)
	}
}

func TestVec3Cross(t *testing.T) {
	x, y, z := V3(1, 0, 0), V3(0, 1, 0), V3(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y cross z = %v, want x", got)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z cross x = %v, want y", got)
	}
}

func TestVec3CrossOrthogonalProperty(t *testing.T) {
	f := func(a, b Vec3) bool {
		c := a.Cross(b)
		// c ⟂ a and c ⟂ b, up to float error scaled by magnitudes
		tol := 1e-9 * (1 + a.Norm()*b.Norm()*math.Max(a.Norm(), b.Norm()))
		return math.Abs(c.Dot(a)) <= tol && math.Abs(c.Dot(b)) <= tol
	}
	cfg := &quick.Config{MaxCount: 500, Values: smallVecPair}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVec3NormalizedProperty(t *testing.T) {
	f := func(a Vec3) bool {
		n := a.Normalized()
		if a.Norm() < 1e-12 {
			return n == (Vec3{})
		}
		return math.Abs(n.Norm()-1) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Values: smallVecSingle}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestVec3Clamp(t *testing.T) {
	v := V3(10, -10, 0.5).Clamp(1)
	if v != V3(1, -1, 0.5) {
		t.Errorf("Clamp = %v", v)
	}
}

func TestVec3IsFinite(t *testing.T) {
	if !V3(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V3(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V3(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestClampAndLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.3, 0, 1) != 0.3 {
		t.Error("Clamp wrong")
	}
	if Lerp(2, 4, 0.5) != 3 {
		t.Error("Lerp wrong")
	}
}
