// Package mathx provides the small, allocation-free linear algebra used
// throughout the drone stack: 3-vectors, 3x3 matrices, unit quaternions for
// attitude (elements of SO(3)), and a small dense-matrix type with the
// factorizations needed by the EKF and by SLAM bundle adjustment.
//
// The package is deliberately self-contained (stdlib only) and tuned for the
// fixed small sizes that dominate drone state estimation: the paper (§2.1.3-D)
// notes inner-loop state estimation reduces to 3x3 matrix operations over the
// state x = (position, velocity, angular velocity, attitude).
package mathx

import (
	"fmt"
	"math"
)

// Vec3 is a column vector in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// V3 is shorthand for constructing a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s * v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v . w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean norm |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns |v|^2 without the square root.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Normalized returns v/|v|, or the zero vector when |v| is negligible.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n < 1e-12 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Hadamard returns the element-wise product.
func (v Vec3) Hadamard(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Clamp limits each component to [-lim, +lim]; lim must be non-negative.
func (v Vec3) Clamp(lim float64) Vec3 {
	return Vec3{clamp(v.X, -lim, lim), clamp(v.Y, -lim, lim), clamp(v.Z, -lim, lim)}
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z) }

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 { return clamp(x, lo, hi) }

// Lerp linearly interpolates between a and b with t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }
