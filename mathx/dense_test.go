package mathx

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseMul(t *testing.T) {
	a := DenseFrom([][]float64{{1, 2}, {3, 4}})
	b := DenseFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := DenseFrom([][]float64{{19, 22}, {43, 50}})
	if c.MaxAbsDiff(want) > 1e-12 {
		t.Errorf("Mul = %+v", c)
	}
}

func TestDenseMulVec(t *testing.T) {
	a := DenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestDenseTranspose(t *testing.T) {
	a := DenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("Transpose wrong: %+v", at)
	}
}

func randomSPD(r *rand.Rand, n int) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
	}
	// A^T A + n*I is SPD
	spd := a.Transpose().Mul(a)
	for i := 0; i < n; i++ {
		spd.Addf(i, i, float64(n))
	}
	return spd
}

func TestCholeskySolve(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		m := randomSPD(r, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := m.MulVec(want)
		got, ok := m.SolveCholesky(b)
		if !ok {
			t.Fatalf("trial %d: SPD matrix rejected", trial)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	m := DenseFrom([][]float64{{1, 0}, {0, -1}})
	if _, ok := m.Cholesky(); ok {
		t.Error("indefinite matrix accepted by Cholesky")
	}
}

func TestCholeskyFactorProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(6)
		m := randomSPD(r, n)
		l, ok := m.Cholesky()
		if !ok {
			t.Fatal("SPD rejected")
		}
		if m.MaxAbsDiff(l.Mul(l.Transpose())) > 1e-8 {
			t.Fatalf("trial %d: L L^T != m", trial)
		}
	}
}

func TestSolveLU(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(8)
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, r.NormFloat64())
			}
			m.Addf(i, i, 3) // diagonally dominant-ish: keeps it non-singular
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := m.MulVec(want)
		got, ok := m.SolveLU(b)
		if !ok {
			t.Fatalf("trial %d: solvable system rejected", trial)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("trial %d: x[%d]=%v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSolveLUSingular(t *testing.T) {
	m := DenseFrom([][]float64{{1, 2}, {2, 4}})
	if _, ok := m.SolveLU([]float64{1, 2}); ok {
		t.Error("singular system accepted")
	}
}

func TestSymmetrize(t *testing.T) {
	m := DenseFrom([][]float64{{1, 2}, {4, 5}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Errorf("Symmetrize = %+v", m)
	}
}

func TestDenseAddSubScaleClone(t *testing.T) {
	a := DenseFrom([][]float64{{1, 2}, {3, 4}})
	b := DenseFrom([][]float64{{1, 1}, {1, 1}})
	if a.Add(b).At(1, 1) != 5 {
		t.Error("Add wrong")
	}
	if a.Sub(b).At(0, 0) != 0 {
		t.Error("Sub wrong")
	}
	if a.Scale(2).At(1, 0) != 6 {
		t.Error("Scale wrong")
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Error("Clone aliases data")
	}
}

func TestDensePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := NewDense(2, 3)
	b := NewDense(2, 2)
	mustPanic("mul mismatch", func() { a.Mul(a) })
	mustPanic("add mismatch", func() { a.Add(b) })
	mustPanic("bad dims", func() { NewDense(0, 3) })
	mustPanic("ragged literal", func() { DenseFrom([][]float64{{1}, {1, 2}}) })
	mustPanic("symmetrize non-square", func() { a.Symmetrize() })
}

func TestDenseIdentity(t *testing.T) {
	id := DenseIdentity(4)
	a := randomSPD(rand.New(rand.NewSource(1)), 4)
	if a.Mul(id).MaxAbsDiff(a) > 1e-12 {
		t.Error("A*I != A")
	}
}
