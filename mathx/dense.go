package mathx

import (
	"fmt"
	"math"
)

// Dense is a dense row-major matrix of arbitrary (small) dimensions. It backs
// the EKF covariance updates and the normal equations solved by SLAM bundle
// adjustment. Dimensions are fixed at construction.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r x c zero matrix.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mathx: invalid dense dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// DenseFrom builds a matrix from row slices; all rows must share a length.
func DenseFrom(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mathx: empty dense literal")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("mathx: ragged dense literal")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// DenseOn returns an r x c matrix viewing caller-owned storage (len must be
// at least r*c; extra capacity allows later Reshape growth). The storage is
// not cleared — callers embedding Dense values in a scratch arena zero it at
// allocation. Returned by value so arenas can hold matrices without per-
// matrix header allocations.
func DenseOn(data []float64, r, c int) Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mathx: invalid dense dimensions %dx%d", r, c))
	}
	if r*c > len(data) {
		panic(fmt.Sprintf("mathx: DenseOn %dx%d exceeds storage length %d", r, c, len(data)))
	}
	return Dense{rows: r, cols: c, data: data[:r*c]}
}

// DenseIdentity returns the n x n identity.
func DenseIdentity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Addf adds v to element (i, j).
func (m *Dense) Addf(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Mul returns m * n, panicking on a dimension mismatch.
func (m *Dense) Mul(n *Dense) *Dense {
	if m.cols != n.rows {
		panic(fmt.Sprintf("mathx: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := NewDense(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < n.cols; j++ {
				out.data[i*out.cols+j] += a * n.data[k*n.cols+j]
			}
		}
	}
	return out
}

// MulVec returns m * x for a vector x of length Cols.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic("mathx: MulVec dimension mismatch")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + n.
func (m *Dense) Add(n *Dense) *Dense {
	m.checkSame(n, "Add")
	out := m.Clone()
	for i := range out.data {
		out.data[i] += n.data[i]
	}
	return out
}

// Sub returns m - n.
func (m *Dense) Sub(n *Dense) *Dense {
	m.checkSame(n, "Sub")
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= n.data[i]
	}
	return out
}

// Scale returns s * m.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Transpose returns m^T.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Symmetrize overwrites m with (m + m^T)/2; m must be square. It keeps EKF
// covariances symmetric in the presence of floating-point drift.
func (m *Dense) Symmetrize() {
	if m.rows != m.cols {
		panic("mathx: Symmetrize needs a square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

func (m *Dense) checkSame(n *Dense, op string) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("mathx: %s dimension mismatch %dx%d vs %dx%d", op, m.rows, m.cols, n.rows, n.cols))
	}
}

// Cholesky computes the lower-triangular L with m = L L^T for a symmetric
// positive-definite m, returning false when m is not (numerically) SPD.
func (m *Dense) Cholesky() (*Dense, bool) {
	if m.rows != m.cols {
		return nil, false
	}
	n := m.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, true
}

// SolveCholesky solves m x = b for SPD m via Cholesky; ok is false when m is
// not SPD. b is not modified.
func (m *Dense) SolveCholesky(b []float64) (x []float64, ok bool) {
	l, ok := m.Cholesky()
	if !ok {
		return nil, false
	}
	n := m.rows
	if len(b) != n {
		panic("mathx: SolveCholesky rhs length mismatch")
	}
	// forward substitution: L y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// back substitution: L^T x = y
	x = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, true
}

// SolveLU solves m x = b using Gaussian elimination with partial pivoting.
// It works for any non-singular square m. b is not modified.
func (m *Dense) SolveLU(b []float64) (x []float64, ok bool) {
	if m.rows != m.cols || len(b) != m.rows {
		return nil, false
	}
	n := m.rows
	a := m.Clone()
	rhs := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// pivot
		p, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				p, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, false
		}
		if p != col {
			for j := 0; j < n; j++ {
				a.data[col*n+j], a.data[p*n+j] = a.data[p*n+j], a.data[col*n+j]
			}
			rhs[col], rhs[p] = rhs[p], rhs[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			a.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				a.Addf(r, j, -f*a.At(col, j))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	x = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, true
}

// ---- In-place variants -------------------------------------------------
//
// The EKF runs its covariance algebra hundreds of times per simulated
// second per drone, and the allocating operators above were ~100% of the
// flight stack's steady-state heap churn. Each *Into/*Of method below is
// the bit-exact counterpart of its allocating sibling — identical loop
// structure, identical accumulation order — writing into caller-owned
// storage, so a scenario batch can step thousands of filters with zero
// steady-state allocations without perturbing a single result bit.

// Reshape resizes m to r x c reusing its backing array, zeroing the data
// exactly as NewDense would. It panics when the backing capacity is too
// small — scratch matrices are sized for their worst case at construction.
func (m *Dense) Reshape(r, c int) {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mathx: invalid dense dimensions %dx%d", r, c))
	}
	if r*c > cap(m.data) {
		panic(fmt.Sprintf("mathx: Reshape %dx%d exceeds backing capacity %d", r, c, cap(m.data)))
	}
	m.rows, m.cols = r, c
	m.data = m.data[:r*c]
	for i := range m.data {
		m.data[i] = 0
	}
}

// CopyFrom overwrites m with n (same dimensions).
func (m *Dense) CopyFrom(n *Dense) {
	m.checkSame(n, "CopyFrom")
	copy(m.data, n.data)
}

// MulOf computes a * b into m, which must already have a.rows x b.cols
// shape. It is the in-place counterpart of Mul (same skip-zero loop, same
// accumulation order). m must not alias a or b.
func (m *Dense) MulOf(a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mathx: MulOf dimension mismatch %dx%d * %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	if m.rows != a.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mathx: MulOf destination is %dx%d, want %dx%d", m.rows, m.cols, a.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			v := a.data[i*a.cols+k]
			if v == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				m.data[i*m.cols+j] += v * b.data[k*b.cols+j]
			}
		}
	}
}

// AddOf computes a + b into m (all same dimensions; m may alias a or b).
func (m *Dense) AddOf(a, b *Dense) {
	a.checkSame(b, "AddOf")
	m.checkSame(a, "AddOf")
	for i := range m.data {
		m.data[i] = a.data[i] + b.data[i]
	}
}

// ScaleInPlace multiplies every element by s.
func (m *Dense) ScaleInPlace(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// TransposeOf writes a^T into m (m must be a.cols x a.rows; no aliasing).
func (m *Dense) TransposeOf(a *Dense) {
	if m.rows != a.cols || m.cols != a.rows {
		panic(fmt.Sprintf("mathx: TransposeOf destination is %dx%d, want %dx%d", m.rows, m.cols, a.cols, a.rows))
	}
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			m.data[j*m.cols+i] = a.data[i*a.cols+j]
		}
	}
}

// SetIdentity overwrites a square m with the identity.
func (m *Dense) SetIdentity() {
	if m.rows != m.cols {
		panic("mathx: SetIdentity needs a square matrix")
	}
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 1
	}
}

// CholeskyInto factors m = L L^T into the caller-owned l (same dimensions),
// returning false when m is not (numerically) SPD — the bit-exact in-place
// counterpart of Cholesky.
func (m *Dense) CholeskyInto(l *Dense) bool {
	if m.rows != m.cols || l.rows != m.rows || l.cols != m.cols {
		return false
	}
	n := m.rows
	for i := range l.data {
		l.data[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return false
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return true
}

// SolveWithCholesky solves L L^T x = b given an already-computed Cholesky
// factor l, writing the solution into x using y as scratch (all length n).
// Splitting the factorization from the solves lets a Kalman gain computation
// factor S once and back-substitute per state row — same arithmetic, same
// order, as calling SolveCholesky per row.
func SolveWithCholesky(l *Dense, b, x, y []float64) {
	n := l.rows
	if len(b) != n || len(x) != n || len(y) != n {
		panic("mathx: SolveWithCholesky length mismatch")
	}
	// forward substitution: L y = b
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// back substitution: L^T x = y
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// MaxAbsDiff returns max_ij |m_ij - n_ij|; useful in tests.
func (m *Dense) MaxAbsDiff(n *Dense) float64 {
	m.checkSame(n, "MaxAbsDiff")
	worst := 0.0
	for i := range m.data {
		if d := math.Abs(m.data[i] - n.data[i]); d > worst {
			worst = d
		}
	}
	return worst
}
