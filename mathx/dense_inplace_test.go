package mathx

import (
	"math"
	"math/rand"
	"testing"
)

// randDense returns an r x c matrix with deterministic pseudo-random entries.
func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randSPD returns a random symmetric positive-definite n x n matrix.
func randSPD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	m := a.Mul(a.Transpose())
	for i := 0; i < n; i++ {
		m.Addf(i, i, float64(n))
	}
	return m
}

// bitsEqual reports whether two matrices are identical down to the float bits.
func bitsEqual(a, b *Dense) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if math.Float64bits(a.At(i, j)) != math.Float64bits(b.At(i, j)) {
				return false
			}
		}
	}
	return true
}

func TestMulOfMatchesMulBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		r, k, c := 1+rng.Intn(7), 1+rng.Intn(7), 1+rng.Intn(7)
		a, b := randDense(rng, r, k), randDense(rng, k, c)
		// Sprinkle zeros so the skip-zero fast path is exercised.
		if r > 1 {
			a.Set(rng.Intn(r), rng.Intn(k), 0)
		}
		want := a.Mul(b)
		got := NewDense(r, c)
		// Pre-poison the destination to prove MulOf fully overwrites it.
		for i := range got.data {
			got.data[i] = math.NaN()
		}
		got.MulOf(a, b)
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: MulOf differs from Mul", trial)
		}
	}
}

func TestAddOfMatchesAddBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randDense(rng, 6, 6), randDense(rng, 6, 6)
	want := a.Add(b)
	got := NewDense(6, 6)
	got.AddOf(a, b)
	if !bitsEqual(got, want) {
		t.Fatal("AddOf differs from Add")
	}
	// Aliased destination: a += b in place.
	aCopy := a.Clone()
	aCopy.AddOf(aCopy, b)
	if !bitsEqual(aCopy, want) {
		t.Fatal("aliased AddOf differs from Add")
	}
}

func TestTransposeOfMatchesTransposeBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 4, 7)
	want := a.Transpose()
	got := NewDense(7, 4)
	got.TransposeOf(a)
	if !bitsEqual(got, want) {
		t.Fatal("TransposeOf differs from Transpose")
	}
}

func TestScaleInPlaceMatchesScaleBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randDense(rng, 5, 5)
	want := a.Scale(1.7)
	got := a.Clone()
	got.ScaleInPlace(1.7)
	if !bitsEqual(got, want) {
		t.Fatal("ScaleInPlace differs from Scale")
	}
}

func TestSetIdentityMatchesDenseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	got := randDense(rng, 6, 6)
	got.SetIdentity()
	if !bitsEqual(got, DenseIdentity(6)) {
		t.Fatal("SetIdentity differs from DenseIdentity")
	}
}

func TestCholeskyIntoMatchesCholeskyBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		m := randSPD(rng, n)
		want, ok := m.Cholesky()
		if !ok {
			t.Fatalf("trial %d: SPD matrix rejected", trial)
		}
		got := NewDense(n, n)
		for i := range got.data {
			got.data[i] = math.NaN()
		}
		if !m.CholeskyInto(got) {
			t.Fatalf("trial %d: CholeskyInto rejected SPD matrix", trial)
		}
		if !bitsEqual(got, want) {
			t.Fatalf("trial %d: CholeskyInto differs from Cholesky", trial)
		}
	}
	// Indefinite matrices must still be rejected.
	bad := DenseFrom([][]float64{{1, 2}, {2, 1}})
	if bad.CholeskyInto(NewDense(2, 2)) {
		t.Fatal("CholeskyInto accepted an indefinite matrix")
	}
}

func TestSolveWithCholeskyMatchesSolveCholeskyBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(6)
		m := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want, ok := m.SolveCholesky(b)
		if !ok {
			t.Fatalf("trial %d: SolveCholesky rejected SPD matrix", trial)
		}
		l := NewDense(n, n)
		if !m.CholeskyInto(l) {
			t.Fatalf("trial %d: CholeskyInto rejected SPD matrix", trial)
		}
		x, y := make([]float64, n), make([]float64, n)
		SolveWithCholesky(l, b, x, y)
		for i := range x {
			if math.Float64bits(x[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: SolveWithCholesky differs at %d: %v vs %v", trial, i, x[i], want[i])
			}
		}
	}
}

func TestReshapeZeroesAndResizes(t *testing.T) {
	backing := make([]float64, 36)
	m := DenseOn(backing, 6, 6)
	m.Set(0, 0, 42)
	m.Reshape(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("Reshape gave %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("Reshape left (%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
	m.Reshape(6, 6) // grow back within capacity
	if m.Rows() != 6 || m.Cols() != 6 {
		t.Fatalf("Reshape gave %dx%d, want 6x6", m.Rows(), m.Cols())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape beyond capacity did not panic")
		}
	}()
	m.Reshape(7, 7)
}

func TestCopyFromCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := randDense(rng, 4, 4)
	dst := NewDense(4, 4)
	dst.CopyFrom(src)
	if !bitsEqual(dst, src) {
		t.Fatal("CopyFrom differs from source")
	}
	src.Set(0, 0, -1) // dst must own its data
	if dst.At(0, 0) == -1 {
		t.Fatal("CopyFrom aliased the source")
	}
}

func TestDenseOnSharesStorage(t *testing.T) {
	backing := make([]float64, 12)
	m := DenseOn(backing, 3, 4)
	m.Set(1, 2, 9)
	if backing[1*4+2] != 9 {
		t.Fatal("DenseOn does not view the caller storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DenseOn with short storage did not panic")
		}
	}()
	DenseOn(backing, 4, 4)
}
