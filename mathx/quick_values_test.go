package mathx

import (
	"math/rand"
	"reflect"
)

// Bounded value generators for testing/quick: unconstrained float64
// generation produces astronomically large magnitudes that swamp float
// tolerance reasoning; the drone stack operates on metres, radians and
// seconds, so we generate in a physically plausible range.

func smallFloat(r *rand.Rand) float64 { return (r.Float64() - 0.5) * 200 }

func smallVec(r *rand.Rand) Vec3 {
	return V3(smallFloat(r), smallFloat(r), smallFloat(r))
}

func smallVecSingle(vals []reflect.Value, r *rand.Rand) {
	vals[0] = reflect.ValueOf(smallVec(r))
}

func smallVecPair(vals []reflect.Value, r *rand.Rand) {
	vals[0] = reflect.ValueOf(smallVec(r))
	vals[1] = reflect.ValueOf(smallVec(r))
}

func randomUnitQuat(r *rand.Rand) Quat {
	q := Quat{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	return q.Normalized()
}

func quatSingle(vals []reflect.Value, r *rand.Rand) {
	vals[0] = reflect.ValueOf(randomUnitQuat(r))
}

func quatPair(vals []reflect.Value, r *rand.Rand) {
	vals[0] = reflect.ValueOf(randomUnitQuat(r))
	vals[1] = reflect.ValueOf(randomUnitQuat(r))
}

func quatAndVec(vals []reflect.Value, r *rand.Rand) {
	vals[0] = reflect.ValueOf(randomUnitQuat(r))
	vals[1] = reflect.ValueOf(smallVec(r))
}
