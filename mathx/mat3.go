package mathx

import "math"

// Mat3 is a 3x3 matrix in row-major order.
type Mat3 [3][3]float64

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// Diag3 returns a diagonal matrix with the given entries.
func Diag3(a, b, c float64) Mat3 {
	return Mat3{{a, 0, 0}, {0, b, 0}, {0, 0, c}}
}

// Skew returns the skew-symmetric matrix [v]_x such that [v]_x w = v x w.
func Skew(v Vec3) Mat3 {
	return Mat3{
		{0, -v.Z, v.Y},
		{v.Z, 0, -v.X},
		{-v.Y, v.X, 0},
	}
}

// Mul returns the matrix product m * n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[i][0]*n[0][j] + m[i][1]*n[1][j] + m[i][2]*n[2][j]
		}
	}
	return out
}

// MulVec returns m * v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Add returns m + n.
func (m Mat3) Add(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[i][j] + n[i][j]
		}
	}
	return out
}

// Sub returns m - n.
func (m Mat3) Sub(n Mat3) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[i][j] - n[i][j]
		}
	}
	return out
}

// Scale returns s * m.
func (m Mat3) Scale(s float64) Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = s * m[i][j]
		}
	}
	return out
}

// Transpose returns m^T.
func (m Mat3) Transpose() Mat3 {
	var out Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = m[j][i]
		}
	}
	return out
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// Inverse returns m^-1 and true, or the zero matrix and false when m is
// singular (|det| < 1e-12).
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if math.Abs(d) < 1e-12 {
		return Mat3{}, false
	}
	inv := 1 / d
	var out Mat3
	out[0][0] = (m[1][1]*m[2][2] - m[1][2]*m[2][1]) * inv
	out[0][1] = (m[0][2]*m[2][1] - m[0][1]*m[2][2]) * inv
	out[0][2] = (m[0][1]*m[1][2] - m[0][2]*m[1][1]) * inv
	out[1][0] = (m[1][2]*m[2][0] - m[1][0]*m[2][2]) * inv
	out[1][1] = (m[0][0]*m[2][2] - m[0][2]*m[2][0]) * inv
	out[1][2] = (m[0][2]*m[1][0] - m[0][0]*m[1][2]) * inv
	out[2][0] = (m[1][0]*m[2][1] - m[1][1]*m[2][0]) * inv
	out[2][1] = (m[0][1]*m[2][0] - m[0][0]*m[2][1]) * inv
	out[2][2] = (m[0][0]*m[1][1] - m[0][1]*m[1][0]) * inv
	return out, true
}

// Trace returns the trace of m.
func (m Mat3) Trace() float64 { return m[0][0] + m[1][1] + m[2][2] }

// IsOrthonormal reports whether m^T m ~ I within tol, i.e. m is a rotation
// (or reflection) matrix.
func (m Mat3) IsOrthonormal(tol float64) bool {
	p := m.Transpose().Mul(m)
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(p[i][j]-id[i][j]) > tol {
				return false
			}
		}
	}
	return true
}
