package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuatIdentityRotate(t *testing.T) {
	v := V3(1, 2, 3)
	if got := QuatIdentity().Rotate(v); got.Sub(v).Norm() > 1e-12 {
		t.Errorf("identity rotate = %v", got)
	}
}

func TestQuatAxisAngle(t *testing.T) {
	// 90 degrees about z maps x to y.
	q := QuatFromAxisAngle(V3(0, 0, 1), math.Pi/2)
	got := q.Rotate(V3(1, 0, 0))
	if got.Sub(V3(0, 1, 0)).Norm() > 1e-9 {
		t.Errorf("rot z 90 of x = %v, want y", got)
	}
}

func TestQuatEulerRoundTrip(t *testing.T) {
	cases := []struct{ roll, pitch, yaw float64 }{
		{0, 0, 0},
		{0.3, -0.2, 1.1},
		{-1.0, 0.5, -2.0},
		{0.1, 1.0, 3.0},
	}
	for _, c := range cases {
		q := QuatFromEuler(c.roll, c.pitch, c.yaw)
		r, p, y := q.Euler()
		if math.Abs(r-c.roll) > 1e-9 || math.Abs(p-c.pitch) > 1e-9 || math.Abs(y-c.yaw) > 1e-9 {
			t.Errorf("round trip (%v,%v,%v) -> (%v,%v,%v)", c.roll, c.pitch, c.yaw, r, p, y)
		}
	}
}

func TestQuatRotatePreservesNorm(t *testing.T) {
	f := func(q Quat, v Vec3) bool {
		return math.Abs(q.Rotate(v).Norm()-v.Norm()) < 1e-9*(1+v.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Values: quatAndVec}); err != nil {
		t.Error(err)
	}
}

func TestQuatRotateInvIsInverse(t *testing.T) {
	f := func(q Quat, v Vec3) bool {
		back := q.RotateInv(q.Rotate(v))
		return back.Sub(v).Norm() < 1e-9*(1+v.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Values: quatAndVec}); err != nil {
		t.Error(err)
	}
}

func TestQuatMatMatchesRotate(t *testing.T) {
	f := func(q Quat, v Vec3) bool {
		a := q.Rotate(v)
		b := q.Mat().MulVec(v)
		return a.Sub(b).Norm() < 1e-9*(1+v.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Values: quatAndVec}); err != nil {
		t.Error(err)
	}
}

func TestQuatMulComposition(t *testing.T) {
	f := func(a, b Quat) bool {
		v := V3(1, 2, 3)
		lhs := a.Mul(b).Rotate(v)
		rhs := a.Rotate(b.Rotate(v))
		return lhs.Sub(rhs).Norm() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Values: quatPair}); err != nil {
		t.Error(err)
	}
}

func TestQuatIntegrate(t *testing.T) {
	// Integrating a constant yaw rate of pi/2 rad/s for 1 s in small steps
	// should yield ~90 degrees of yaw.
	q := QuatIdentity()
	const dt = 1e-4
	for i := 0; i < 10000; i++ {
		q = q.Integrate(V3(0, 0, math.Pi/2), dt)
	}
	_, _, yaw := q.Euler()
	if math.Abs(yaw-math.Pi/2) > 1e-3 {
		t.Errorf("yaw after integration = %v, want %v", yaw, math.Pi/2)
	}
	if math.Abs(q.Norm()-1) > 1e-9 {
		t.Errorf("integration broke unit norm: %v", q.Norm())
	}
}

func TestQuatAngleTo(t *testing.T) {
	a := QuatIdentity()
	b := QuatFromAxisAngle(V3(1, 0, 0), 0.5)
	if got := a.AngleTo(b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("AngleTo = %v, want 0.5", got)
	}
	if got := a.AngleTo(a); got > 1e-9 {
		t.Errorf("AngleTo self = %v", got)
	}
}

func TestQuatDegenerateNormalize(t *testing.T) {
	q := Quat{}.Normalized()
	if q != QuatIdentity() {
		t.Errorf("zero quat normalized = %v, want identity", q)
	}
}
