package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCellsToVoltage(t *testing.T) {
	cases := []struct {
		cells int
		want  float64
	}{
		{1, 3.7}, {2, 7.4}, {3, 11.1}, {4, 14.8}, {5, 18.5}, {6, 22.2},
	}
	for _, c := range cases {
		if got := CellsToVoltage(c.cells); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CellsToVoltage(%d) = %v, want %v", c.cells, got, c.want)
		}
	}
}

func TestGramNewtonRoundTrip(t *testing.T) {
	f := func(g float64) bool {
		g = math.Abs(g)
		return math.Abs(NewtonsToGrams(GramsToNewtons(g))-g) < 1e-9*(1+g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMahWhRoundTrip(t *testing.T) {
	wh := MahToWh(5000, 11.1)
	if math.Abs(wh-55.5) > 1e-9 {
		t.Errorf("MahToWh = %v, want 55.5", wh)
	}
	if got := WhToMah(wh, 11.1); math.Abs(got-5000) > 1e-9 {
		t.Errorf("WhToMah round trip = %v", got)
	}
}

func TestDiskArea(t *testing.T) {
	// 10-inch propeller
	d := InchToMeter(10)
	if math.Abs(d-0.254) > 1e-12 {
		t.Errorf("InchToMeter(10) = %v", d)
	}
	a := DiskArea(d)
	want := math.Pi * 0.127 * 0.127
	if math.Abs(a-want) > 1e-12 {
		t.Errorf("DiskArea = %v, want %v", a, want)
	}
}

func TestRPMConversions(t *testing.T) {
	if got := RPMToRadPerSec(60); math.Abs(got-2*math.Pi) > 1e-12 {
		t.Errorf("RPMToRadPerSec(60) = %v", got)
	}
	f := func(rpm float64) bool {
		rpm = math.Mod(rpm, 1e6) // physically plausible magnitudes
		if math.IsNaN(rpm) {
			rpm = 0
		}
		return math.Abs(RadPerSecToRPM(RPMToRadPerSec(rpm))-rpm) < 1e-9*(1+math.Abs(rpm))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleConversions(t *testing.T) {
	if math.Abs(DegToRad(180)-math.Pi) > 1e-12 {
		t.Error("DegToRad wrong")
	}
	if math.Abs(RadToDeg(math.Pi/2)-90) > 1e-12 {
		t.Error("RadToDeg wrong")
	}
}

func TestCRating(t *testing.T) {
	// 3000 mAh battery at 20C sustains 60 A.
	if got := CRatingMaxCurrent(3000, 20); math.Abs(got-60) > 1e-12 {
		t.Errorf("CRatingMaxCurrent = %v", got)
	}
}

func TestDrainLimit(t *testing.T) {
	if LiPoDrainLimit != 0.85 {
		t.Errorf("LiPoDrainLimit = %v, want paper's 0.85", LiPoDrainLimit)
	}
}

func TestMinutesFromHours(t *testing.T) {
	if MinutesFromHours(0.5) != 30 {
		t.Error("MinutesFromHours wrong")
	}
}
