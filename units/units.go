// Package units collects the physical constants and unit conversions used by
// the drone design-space model. Keeping them in one place makes the paper's
// equations (§3.2, Equations 1-7) readable in code: weights are grams, power
// is watts, capacity is mAh, and cell counts map to nominal pack voltages.
package units

import "math"

// Physical constants.
const (
	// Gravity is standard gravitational acceleration in m/s^2.
	Gravity = 9.80665
	// AirDensity is sea-level standard air density in kg/m^3.
	AirDensity = 1.225
	// LiPoCellVoltage is the nominal per-cell voltage of a LiPo battery
	// (§2.1.2: 3.7 V/cell).
	LiPoCellVoltage = 3.7
	// LiPoDrainLimit is the usable fraction of LiPo capacity during a
	// flight (§2.1.2: only 85% of capacity should be used).
	LiPoDrainLimit = 0.85
)

// CellsToVoltage returns the nominal pack voltage for an xS LiPo battery.
func CellsToVoltage(cells int) float64 { return float64(cells) * LiPoCellVoltage }

// GramsToNewtons converts a mass in grams to its weight force in newtons.
func GramsToNewtons(grams float64) float64 { return grams / 1000 * Gravity }

// NewtonsToGrams converts a force in newtons to gram-force (the "thrust in
// grams" convention used by motor datasheets and the paper's TWR metric).
func NewtonsToGrams(newtons float64) float64 { return newtons / Gravity * 1000 }

// MahToWh converts battery capacity in mAh at a pack voltage to watt-hours.
func MahToWh(mah, voltage float64) float64 { return mah / 1000 * voltage }

// WhToMah converts watt-hours back to mAh at a pack voltage.
func WhToMah(wh, voltage float64) float64 { return wh * 1000 / voltage }

// InchToMeter converts propeller diameter in inches to meters.
func InchToMeter(in float64) float64 { return in * 0.0254 }

// DiskArea returns the actuator disk area (m^2) of a propeller with the given
// diameter in meters.
func DiskArea(diameterM float64) float64 {
	r := diameterM / 2
	return math.Pi * r * r
}

// RPMToRadPerSec converts rotations per minute to rad/s.
func RPMToRadPerSec(rpm float64) float64 { return rpm * 2 * math.Pi / 60 }

// RadPerSecToRPM converts rad/s to rotations per minute.
func RadPerSecToRPM(w float64) float64 { return w * 60 / (2 * math.Pi) }

// DegToRad converts degrees to radians.
func DegToRad(deg float64) float64 { return deg * math.Pi / 180 }

// RadToDeg converts radians to degrees.
func RadToDeg(rad float64) float64 { return rad * 180 / math.Pi }

// MinutesFromHours converts hours to minutes.
func MinutesFromHours(h float64) float64 { return h * 60 }

// CRatingMaxCurrent returns the maximum continuous current (A) a battery can
// safely supply given its capacity in mAh and its C rating (Table 3:
// Capacity(Ah) x C = I).
func CRatingMaxCurrent(capacityMah, cRating float64) float64 {
	return capacityMah / 1000 * cRating
}
