package slam

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dronedse/dataset"
	"dronedse/mathx"
)

func TestHammingDistance(t *testing.T) {
	var a, b Descriptor
	if HammingDistance(a, b) != 0 {
		t.Error("identical descriptors have nonzero distance")
	}
	b[0] = 0xFF
	if HammingDistance(a, b) != 8 {
		t.Errorf("distance = %d, want 8", HammingDistance(a, b))
	}
	for i := range b {
		b[i] = ^uint64(0)
	}
	if HammingDistance(a, b) != 256 {
		t.Errorf("max distance = %d, want 256", HammingDistance(a, b))
	}
}

func TestHammingMetricProperties(t *testing.T) {
	f := func(a, b Descriptor) bool {
		d := HammingDistance(a, b)
		return d == HammingDistance(b, a) && d >= 0 && d <= 256 &&
			(d == 0) == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// synthImage builds an image with textured patches at given locations.
func synthImage(w, h int, centers [][2]int, seed int64) Image {
	r := rand.New(rand.NewSource(seed))
	pix := make([]uint8, w*h)
	for i := range pix {
		pix[i] = uint8(20 + r.Intn(8))
	}
	for _, c := range centers {
		for dy := -4; dy <= 4; dy++ {
			for dx := -4; dx <= 4; dx++ {
				x, y := c[0]+dx, c[1]+dy
				if x < 0 || y < 0 || x >= w || y >= h {
					continue
				}
				pix[y*w+x] = uint8(40 + r.Intn(215))
			}
		}
	}
	return Image{W: w, H: h, Pix: pix}
}

func TestDetectorFindsTexture(t *testing.T) {
	centers := [][2]int{{30, 30}, {90, 40}, {60, 80}, {120, 100}}
	im := synthImage(160, 120, centers, 3)
	var st Stats
	d := NewDetector(&st)
	kps := d.Detect(im)
	if len(kps) < len(centers) {
		t.Fatalf("detected %d keypoints for %d patches", len(kps), len(centers))
	}
	// Every patch must have a keypoint nearby.
	for _, c := range centers {
		found := false
		for _, kp := range kps {
			if math.Hypot(kp.X-float64(c[0]), kp.Y-float64(c[1])) < 7 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no keypoint near patch at %v", c)
		}
	}
	if st.FeatureExtractionOps == 0 {
		t.Error("feature extraction did not account its work")
	}
}

func TestDetectorIgnoresFlatImage(t *testing.T) {
	pix := make([]uint8, 160*120)
	for i := range pix {
		pix[i] = 128
	}
	d := NewDetector(nil)
	if kps := d.Detect(Image{W: 160, H: 120, Pix: pix}); len(kps) != 0 {
		t.Errorf("flat image produced %d keypoints", len(kps))
	}
}

func TestDescriptorRepeatability(t *testing.T) {
	// The same texture at the same place in two different-noise images
	// must produce nearby descriptors; different textures must not.
	imA := synthImage(100, 100, [][2]int{{50, 50}}, 7)
	imB := synthImage(100, 100, [][2]int{{50, 50}}, 7) // same seed = same texture
	imC := synthImage(100, 100, [][2]int{{50, 50}}, 99)
	d := NewDetector(nil)
	kA, kB, kC := d.Detect(imA), d.Detect(imB), d.Detect(imC)
	if len(kA) == 0 || len(kB) == 0 || len(kC) == 0 {
		t.Fatal("detection failed")
	}
	same := HammingDistance(kA[0].Desc, kB[0].Desc)
	diff := HammingDistance(kA[0].Desc, kC[0].Desc)
	if same > 10 {
		t.Errorf("same texture descriptor distance = %d", same)
	}
	if diff < 60 {
		t.Errorf("different texture descriptor distance = %d, not discriminative", diff)
	}
}

func TestMatch(t *testing.T) {
	imA := synthImage(200, 100, [][2]int{{40, 50}, {120, 30}, {160, 70}}, 5)
	d := NewDetector(nil)
	kps := d.Detect(imA)
	if len(kps) < 3 {
		t.Fatal("need keypoints")
	}
	descs := make([]Descriptor, len(kps))
	for i, kp := range kps {
		descs[i] = kp.Desc
	}
	var st Stats
	matches := Match(kps, descs, 50, &st)
	if len(matches) != len(kps) {
		t.Errorf("self-match found %d of %d", len(matches), len(kps))
	}
	for _, m := range matches {
		if m[0] != m[1] {
			t.Errorf("self-match crossed: %v", m)
		}
	}
	if st.MatchingOps == 0 {
		t.Error("matching did not account its work")
	}
	if got := Match(nil, descs, 50, nil); len(got) != 0 {
		t.Error("empty query matched")
	}
}

func TestOptimizePoseConverges(t *testing.T) {
	cam := dataset.DefaultCamera()
	r := rand.New(rand.NewSource(1))
	truth := Pose{Pos: mathx.V3(1, -2, 0.5), Att: mathx.QuatFromEuler(0.05, -0.1, 0.3)}
	var pts []mathx.Vec3
	var us, vs []float64
	for len(pts) < 80 {
		pw := mathx.V3(r.Float64()*20-10, r.Float64()*10-5, 3+r.Float64()*10)
		pc := truth.WorldToCamera(pw)
		u, v, ok := cam.Project(pc)
		if !ok {
			continue
		}
		pts = append(pts, pw)
		us = append(us, u)
		vs = append(vs, v)
	}
	init := Pose{
		Pos: truth.Pos.Add(mathx.V3(0.3, 0.2, -0.1)),
		Att: truth.Att.Mul(mathx.QuatFromEuler(0.02, 0.03, -0.05)),
	}
	var st Stats
	got := OptimizePose(cam, init, pts, us, vs, 10, &st)
	if got.Pos.Sub(truth.Pos).Norm() > 1e-6 {
		t.Errorf("position error %v", got.Pos.Sub(truth.Pos).Norm())
	}
	if got.Att.AngleTo(truth.Att) > 1e-6 {
		t.Errorf("attitude error %v", got.Att.AngleTo(truth.Att))
	}
	if st.MatchingOps == 0 {
		t.Error("pose optimization did not account its work")
	}
}

func TestOptimizePoseRobustToOutliers(t *testing.T) {
	cam := dataset.DefaultCamera()
	r := rand.New(rand.NewSource(2))
	truth := Pose{Pos: mathx.V3(0.5, 0.2, -0.3), Att: mathx.QuatIdentity()}
	var pts []mathx.Vec3
	var us, vs []float64
	for len(pts) < 100 {
		pw := mathx.V3(r.Float64()*16-8, r.Float64()*8-4, 3+r.Float64()*8)
		pc := truth.WorldToCamera(pw)
		u, v, ok := cam.Project(pc)
		if !ok {
			continue
		}
		pts = append(pts, pw)
		us = append(us, u)
		vs = append(vs, v)
	}
	// Corrupt 15% of measurements badly.
	for i := 0; i < 15; i++ {
		us[i] += 40 + r.Float64()*60
		vs[i] -= 40 + r.Float64()*60
	}
	got := OptimizePose(cam, Pose{Att: mathx.QuatIdentity()}, pts, us, vs, 15, nil)
	if e := got.Pos.Sub(truth.Pos).Norm(); e > 0.05 {
		t.Errorf("position error with outliers = %v m", e)
	}
}

func TestOptimizePoseDegenerate(t *testing.T) {
	cam := dataset.DefaultCamera()
	init := Pose{Att: mathx.QuatIdentity()}
	got := OptimizePose(cam, init, nil, nil, nil, 5, nil)
	if got != init {
		t.Error("empty problem changed the pose")
	}
}

func TestPoseTransforms(t *testing.T) {
	p := Pose{Pos: mathx.V3(1, 2, 3), Att: mathx.QuatFromEuler(0.1, 0.2, 0.3)}
	w := mathx.V3(-2, 5, 9)
	back := p.CameraToWorld(p.WorldToCamera(w))
	if back.Sub(w).Norm() > 1e-9 {
		t.Errorf("transform round trip error %v", back.Sub(w).Norm())
	}
}

func TestStatsAggregation(t *testing.T) {
	s := Stats{FeatureExtractionOps: 1, MatchingOps: 2, LocalBAOps: 3, GlobalBAOps: 4}
	if s.TotalOps() != 10 {
		t.Errorf("TotalOps = %d", s.TotalOps())
	}
	if s.FrontEndOps() != 3 {
		t.Errorf("FrontEndOps = %d", s.FrontEndOps())
	}
}

// TestRunSequenceAccuracy is the §5 "confirming SLAM key metrics" check: the
// pipeline tracks every synthetic EuRoC sequence with sub-20 cm ATE (real
// ORB-SLAM2 lands 3.5-10 cm on real EuRoC).
func TestRunSequenceAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full 11-sequence run in -short mode")
	}
	for _, spec := range dataset.EuRoCSpecs() {
		seq, err := dataset.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res := RunSequence(seq)
		if res.ATE > 0.25 {
			t.Errorf("%s: ATE = %.3f m, tracking failed", res.Name, res.ATE)
		}
		if res.Stats.Keyframes < 5 {
			t.Errorf("%s: only %d keyframes", res.Name, res.Stats.Keyframes)
		}
		if res.Stats.TrackedMatches/res.Frames < 30 {
			t.Errorf("%s: %d matches/frame, tracking starved", res.Name, res.Stats.TrackedMatches/res.Frames)
		}
	}
}

// TestWorkProfileMatchesPaper checks the Figure 17 premise: bundle
// adjustment is ~90% of the (RPi-equivalent) SLAM work, feature extraction
// around 10%.
func TestWorkProfileMatchesPaper(t *testing.T) {
	spec := dataset.EuRoCSpecs()[0]
	seq, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := RunSequence(seq)
	st := res.Stats
	tot := float64(st.TotalOps())
	baShare := float64(st.LocalBAOps+st.GlobalBAOps) / tot
	if baShare < 0.80 || baShare > 0.95 {
		t.Errorf("BA share = %.1f%%, paper says ≈90%% of ORB-SLAM time on RPi", 100*baShare)
	}
	if float64(st.FeatureExtractionOps)/tot > 0.18 {
		t.Errorf("feature extraction share = %.1f%%, should be ~10%%",
			100*float64(st.FeatureExtractionOps)/tot)
	}
	if st.LocalBAOps <= st.GlobalBAOps {
		t.Error("local BA runs per keyframe and should outweigh periodic global BA")
	}
}

// TestHarderSequencesTrackWorse confirms the difficulty knob reaches the
// tracker: difficult sequences have fewer matches per frame.
func TestHarderSequencesTrackWorse(t *testing.T) {
	specs := dataset.EuRoCSpecs()
	bySeq := map[string]Result{}
	for _, name := range []string{"MH01", "MH05"} {
		for _, sp := range specs {
			if sp.Name == name {
				seq, _ := dataset.Generate(sp)
				bySeq[name] = RunSequence(seq)
			}
		}
	}
	easy := float64(bySeq["MH01"].Stats.TrackedMatches) / float64(bySeq["MH01"].Frames)
	hard := float64(bySeq["MH05"].Stats.TrackedMatches) / float64(bySeq["MH05"].Frames)
	if hard >= easy {
		t.Errorf("MH05 matches/frame (%v) not below MH01 (%v)", hard, easy)
	}
}
