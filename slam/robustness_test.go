package slam

import (
	"math/rand"
	"testing"

	"dronedse/dataset"
)

// loopSpec builds a sequence whose trajectory closes a full orbit, ending
// where it started — the loop-closure scenario.
func loopSpec() dataset.Spec {
	return dataset.Spec{
		Name: "LOOP", Difficulty: dataset.Easy, Frames: 185, FPS: 20,
		Landmarks: 900, SpeedMS: 2.0, RoomHalfM: 8, Orbit: true, Seed: 777,
	}
}

// TestLoopClosureDetected runs the orbit sequence: by the time the drone
// returns to its starting neighborhood, the loop-closing thread must fire
// at least once and global BA must have run.
func TestLoopClosureDetected(t *testing.T) {
	seq, err := dataset.Generate(loopSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The trajectory must genuinely revisit the start.
	first := seq.Frame(0).TruePos
	last := seq.Frame(seq.Len() - 1).TruePos
	if d := last.Sub(first).Norm(); d > 1.0 {
		t.Fatalf("orbit does not close: end %.2f m from start", d)
	}
	res := RunSequence(seq)
	if res.Stats.LoopClosures == 0 {
		t.Error("no loop closure detected on a closed orbit")
	}
	if res.Stats.GlobalBAOps == 0 {
		t.Error("global BA never ran")
	}
	if res.ATE > 0.25 {
		t.Errorf("orbit ATE = %.3f m", res.ATE)
	}
}

// TestRelocalizationAfterDropout blinds the camera for several frames
// (pure-noise images, no depth): tracking starves, and on the next good
// frame the global-descriptor relocalization path must re-acquire the map
// instead of diverging.
func TestRelocalizationAfterDropout(t *testing.T) {
	spec := dataset.EuRoCSpecs()[0]
	seq, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSystem(seq.Cam)
	r := rand.New(rand.NewSource(9))
	blind := func() dataset.Frame {
		f := dataset.Frame{
			Image: make([]uint8, seq.Cam.Width*seq.Cam.Height),
			Depth: make([]float32, seq.Cam.Width*seq.Cam.Height),
		}
		for i := range f.Image {
			f.Image[i] = uint8(20 + r.Intn(8))
		}
		return f
	}

	var worstAfter float64
	for i := 0; i < 80; i++ {
		f := seq.Frame(i)
		est := s.ProcessFrame(f)
		if i == 40 {
			// 6 blind frames mid-sequence.
			for k := 0; k < 6; k++ {
				s.ProcessFrame(blind())
			}
		}
		if i > 46 {
			// Compare relative displacement from frame 10 (removes the
			// anchor offset) truth vs estimate.
			d := est.Pos.Sub(s.Trajectory()[10].Pos).
				Sub(f.TruePos.Sub(seq.Frame(10).TruePos)).Norm()
			if d > worstAfter {
				worstAfter = d
			}
		}
	}
	if worstAfter > 0.6 {
		t.Errorf("post-dropout relative error %.2f m: relocalization failed", worstAfter)
	}
}

// TestBlindStartDoesNotPanic: a system fed only featureless frames must
// survive (no keypoints, no map) and report a sane (if useless) state.
func TestBlindStartDoesNotPanic(t *testing.T) {
	cam := dataset.DefaultCamera()
	s := NewSystem(cam)
	img := make([]uint8, cam.Width*cam.Height)
	depth := make([]float32, cam.Width*cam.Height)
	for i := 0; i < 10; i++ {
		s.ProcessFrame(dataset.Frame{Image: img, Depth: depth})
	}
	if s.MapPoints() != 0 {
		t.Errorf("featureless frames created %d map points", s.MapPoints())
	}
	if got := len(s.MapPointPositions()); got != 0 {
		t.Errorf("MapPointPositions returned %d", got)
	}
}

func TestMapPointPositions(t *testing.T) {
	spec := dataset.EuRoCSpecs()[0]
	spec.Frames = 20
	seq, _ := dataset.Generate(spec)
	s := NewSystem(seq.Cam)
	for i := 0; i < seq.Len(); i++ {
		s.ProcessFrame(seq.Frame(i))
	}
	pts := s.MapPointPositions()
	if len(pts) != s.MapPoints() {
		t.Fatalf("positions %d != map points %d", len(pts), s.MapPoints())
	}
	// Map points live in front of the trajectory (the landmark wall is at
	// z >= ~2.5 in the camera world).
	inFront := 0
	for _, p := range pts {
		if p.Z > 1 {
			inFront++
		}
	}
	if inFront < len(pts)*8/10 {
		t.Errorf("only %d of %d map points in front of the camera", inFront, len(pts))
	}
}
