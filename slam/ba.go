package slam

import (
	"math"

	"dronedse/mathx"
	"dronedse/parallelx"
)

// KeyFrame is a mapped camera frame.
type KeyFrame struct {
	ID   int
	Pose Pose
	// Obs are the 2-D measurements of map points from this keyframe.
	Obs []Observation
}

// MapPoint is a landmark in the SLAM map.
type MapPoint struct {
	ID   int
	Pos  mathx.Vec3
	Desc Descriptor
	// Seen counts observing keyframes.
	Seen int
}

// jointBAEquivalence scales the block-coordinate arithmetic up to the work
// of the joint sparse solver it stands in for: ORB-SLAM's g2o BA builds and
// factorizes the Schur-complement normal equations with robust kernels over
// ~10 Levenberg iterations, roughly an order of magnitude more arithmetic
// per observation than the alternation performed here. The ledger accounts
// the full-solver cost so the platform retiming (Figure 17/Table 5) sees the
// workload the paper measured, in which bundle adjustment is ≈90% of
// ORB-SLAM's execution time on the RPi.
const jointBAEquivalence = 12

// obsRef is one keyframe observation of a map point: the observing keyframe
// (whose pose is read live during BA), its index into the bundleAdjust
// window (for the per-iteration rotation cache), plus the fixed 2-D
// measurement.
type obsRef struct {
	kf   *KeyFrame
	kfi  int32
	u, v float64
}

// kfProblem is the motion-step work unit for one keyframe: the map points it
// observes and their measurements. mps/us/vs are fixed for the whole
// bundleAdjust call; pts is refreshed from mps each iteration (structure
// steps move the points between iterations).
type kfProblem struct {
	kf     *KeyFrame
	mps    []*MapPoint
	pts    []mathx.Vec3
	us, vs []float64
	// ps is this problem's pose-solver working set: motion steps for
	// different keyframes run concurrently, so each needs its own.
	ps poseScratch
}

// ptProblem is the structure-step work unit for one map point.
type ptProblem struct {
	mp  *MapPoint
	obs []obsRef
}

// baScratch holds bundleAdjust's adjacency buffers, reused across calls
// (local BA runs on every keyframe insertion).
type baScratch struct {
	kfProbs []kfProblem
	ptProbs []ptProblem
	// ptIdx maps point ID -> index into ptProbs (-1: unseen), dense over
	// the landmark table like every other per-ID structure in the package.
	ptIdx []int32
	// kfRt caches each window keyframe's inverse-rotation matrix for the
	// structure step, refreshed after every motion step: within one
	// structure step the poses are fixed, so computing R^T once per
	// keyframe instead of once per observation is bit-identical.
	kfRt []mathx.Mat3
}

// bundleAdjust performs block-coordinate bundle adjustment over the given
// keyframes and the map points they observe: alternating motion-only
// Gauss-Newton (per keyframe) and structure-only Gauss-Newton (per point),
// which descends the joint reprojection objective the way ORB-SLAM's local
// and global BA do. ops are accounted to the provided counter at
// joint-solver equivalence.
//
// The observation adjacency (per-keyframe point lists for the motion step,
// per-point observation lists for the structure step) is identical in every
// iteration, so it is built once per call — it used to be rebuilt per
// iteration — and both steps fan out through the parallelx pool: within the
// motion step every keyframe refinement reads only point positions (written
// by the previous structure step) and its own pose; within the structure
// step every point refinement reads only keyframe poses and its own
// position. Ops are summed from per-unit counts, and uint64 addition is
// exact and commutative, so the ledger and all poses/points are identical
// at every pool size.
func (s *System) bundleAdjust(kfs []*KeyFrame, iters int, opsCounter *uint64) {
	if len(kfs) == 0 {
		return
	}
	sc := &s.baScratch
	ptIdx := grow(sc.ptIdx, len(s.points))
	for i := range ptIdx {
		ptIdx[i] = -1
	}
	sc.ptIdx = ptIdx
	kfProbs := sc.kfProbs[:0]
	ptProbs := sc.ptProbs[:0]
	// extendKf/extendPt reuse a truncated slot's inner buffers when the
	// backing array still has one, instead of appending a zero value that
	// would discard them.
	extendKf := func() *kfProblem {
		if len(kfProbs) < cap(kfProbs) {
			kfProbs = kfProbs[:len(kfProbs)+1]
		} else {
			kfProbs = append(kfProbs, kfProblem{})
		}
		return &kfProbs[len(kfProbs)-1]
	}
	extendPt := func() *ptProblem {
		if len(ptProbs) < cap(ptProbs) {
			ptProbs = ptProbs[:len(ptProbs)+1]
		} else {
			ptProbs = append(ptProbs, ptProblem{})
		}
		return &ptProbs[len(ptProbs)-1]
	}
	for ki, kf := range kfs {
		var p *kfProblem
		for _, ob := range kf.Obs {
			mp, ok := s.point(ob.PointID)
			if !ok {
				continue
			}
			if p == nil {
				p = extendKf()
				p.kf = kf
				p.mps = p.mps[:0]
				p.us, p.vs = p.us[:0], p.vs[:0]
			}
			p.mps = append(p.mps, mp)
			p.us = append(p.us, ob.U)
			p.vs = append(p.vs, ob.V)
			pi := ptIdx[ob.PointID]
			if pi < 0 {
				pi = int32(len(ptProbs))
				ptIdx[ob.PointID] = pi
				q := extendPt()
				q.mp = mp
				q.obs = q.obs[:0]
			}
			ptProbs[pi].obs = append(ptProbs[pi].obs, obsRef{kf, int32(ki), ob.U, ob.V})
		}
		if p != nil && len(p.mps) < 6 {
			kfProbs = kfProbs[:len(kfProbs)-1] // too few points to refine
		} else if p != nil {
			p.pts = grow(p.pts, len(p.mps))
		}
	}
	// Keep only points seen from >= 2 keyframes in the window (swap, not
	// overwrite, so dropped slots keep their buffers for the next call).
	n := 0
	for i := range ptProbs {
		if len(ptProbs[i].obs) >= 2 {
			ptProbs[n], ptProbs[i] = ptProbs[i], ptProbs[n]
			n++
		}
	}
	ptProbs = ptProbs[:n]
	sc.kfProbs, sc.ptProbs = kfProbs[:0], ptProbs[:0]

	sc.kfRt = grow(sc.kfRt, len(kfs))
	kfRt := sc.kfRt

	var raw uint64
	for it := 0; it < iters; it++ {
		// Motion step: refine each keyframe pose against its points.
		kfOps := parallelx.MapIndex(len(kfProbs), func(i int) uint64 {
			p := &kfProbs[i]
			for k, mp := range p.mps {
				p.pts[k] = mp.Pos
			}
			var tmp Stats
			p.kf.Pose = optimizePose(s.Cam, p.kf.Pose, p.pts, p.us, p.vs, 2, &tmp, &p.ps)
			return tmp.MatchingOps + tmp.LocalBAOps
		})
		for _, ops := range kfOps {
			raw += ops
		}

		// Poses are now fixed until the next motion step: cache each
		// keyframe's R^T once for every structure-step observation.
		for ki, kf := range kfs {
			kfRt[ki] = kf.Pose.Att.Conj().Mat()
		}

		// Structure step: refine each point seen from >= 2 keyframes.
		ptOps := parallelx.MapIndex(len(ptProbs), func(i int) uint64 {
			pos, ops := refinePoint(s, ptProbs[i].mp.Pos, ptProbs[i].obs, kfRt)
			ptProbs[i].mp.Pos = pos
			return ops
		})
		for _, ops := range ptOps {
			raw += ops
		}
	}
	*opsCounter += raw * jointBAEquivalence
}

// refinePoint runs one Gauss-Newton step on a point position from its
// observations (3x3 normal equations), returning the refined position and
// the raw op count.
func refinePoint(s *System, pos mathx.Vec3, obs []obsRef, kfRt []mathx.Mat3) (mathx.Vec3, uint64) {
	var h mathx.Mat3
	var g mathx.Vec3
	used := 0
	for _, ob := range obs {
		pc := ob.kf.Pose.WorldToCamera(pos)
		if pc.Z <= 0.1 {
			continue
		}
		invZ := 1 / pc.Z
		pu := s.Cam.Fx*pc.X*invZ + s.Cam.Cx
		pv := s.Cam.Fy*pc.Y*invZ + s.Cam.Cy
		ru := pu - ob.u
		rv := pv - ob.v
		w := huberWeight(math.Hypot(ru, rv), 4)
		jx := [2][3]float64{
			{s.Cam.Fx * invZ, 0, -s.Cam.Fx * pc.X * invZ * invZ},
			{0, s.Cam.Fy * invZ, -s.Cam.Fy * pc.Y * invZ * invZ},
		}
		// d(pc)/d(pw) = R^T, cached per keyframe for this structure step.
		rt := &kfRt[ob.kfi]
		var j [2][3]float64
		for r := 0; r < 2; r++ {
			for c := 0; c < 3; c++ {
				j[r][c] = jx[r][0]*rt[0][c] + jx[r][1]*rt[1][c] + jx[r][2]*rt[2][c]
			}
		}
		for a := 0; a < 3; a++ {
			gv := w * (j[0][a]*ru + j[1][a]*rv)
			switch a {
			case 0:
				g.X += gv
			case 1:
				g.Y += gv
			case 2:
				g.Z += gv
			}
			for b := 0; b < 3; b++ {
				h[a][b] += w * (j[0][a]*j[0][b] + j[1][a]*j[1][b])
			}
		}
		used++
	}
	if used < 2 {
		return pos, 0
	}
	for a := 0; a < 3; a++ {
		h[a][a] += 1e-3*h[a][a] + 1e-9
	}
	inv, ok := h.Inverse()
	if !ok {
		return pos, 0
	}
	delta := inv.MulVec(g.Neg())
	if delta.Norm() > 1.0 {
		delta = delta.Scale(1.0 / delta.Norm()) // trust region
	}
	return pos.Add(delta), uint64(used) * 90
}
