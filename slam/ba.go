package slam

import (
	"math"

	"dronedse/mathx"
)

// KeyFrame is a mapped camera frame.
type KeyFrame struct {
	ID   int
	Pose Pose
	// Obs are the 2-D measurements of map points from this keyframe.
	Obs []Observation
}

// MapPoint is a landmark in the SLAM map.
type MapPoint struct {
	ID   int
	Pos  mathx.Vec3
	Desc Descriptor
	// Seen counts observing keyframes.
	Seen int
}

// jointBAEquivalence scales the block-coordinate arithmetic up to the work
// of the joint sparse solver it stands in for: ORB-SLAM's g2o BA builds and
// factorizes the Schur-complement normal equations with robust kernels over
// ~10 Levenberg iterations, roughly an order of magnitude more arithmetic
// per observation than the alternation performed here. The ledger accounts
// the full-solver cost so the platform retiming (Figure 17/Table 5) sees the
// workload the paper measured, in which bundle adjustment is ≈90% of
// ORB-SLAM's execution time on the RPi.
const jointBAEquivalence = 12

// bundleAdjust performs block-coordinate bundle adjustment over the given
// keyframes and the map points they observe: alternating motion-only
// Gauss-Newton (per keyframe) and structure-only Gauss-Newton (per point),
// which descends the joint reprojection objective the way ORB-SLAM's local
// and global BA do. ops are accounted to the provided counter at
// joint-solver equivalence.
func (s *System) bundleAdjust(kfs []*KeyFrame, iters int, opsCounter *uint64) {
	if len(kfs) == 0 {
		return
	}
	var raw uint64
	out := opsCounter
	defer func() { *out += raw * jointBAEquivalence }()
	opsCounter = &raw
	for it := 0; it < iters; it++ {
		// Motion step: refine each keyframe pose against its points.
		for _, kf := range kfs {
			var pts []mathx.Vec3
			var us, vs []float64
			for _, ob := range kf.Obs {
				mp, ok := s.points[ob.PointID]
				if !ok {
					continue
				}
				pts = append(pts, mp.Pos)
				us = append(us, ob.U)
				vs = append(vs, ob.V)
			}
			if len(pts) < 6 {
				continue
			}
			var tmp Stats
			kf.Pose = OptimizePose(s.Cam, kf.Pose, pts, us, vs, 2, &tmp)
			*opsCounter += tmp.MatchingOps + tmp.LocalBAOps
		}

		// Structure step: refine each point seen from >= 2 keyframes in
		// the window.
		obsOf := make(map[int][]struct {
			kf   *KeyFrame
			u, v float64
		})
		for _, kf := range kfs {
			for _, ob := range kf.Obs {
				obsOf[ob.PointID] = append(obsOf[ob.PointID], struct {
					kf   *KeyFrame
					u, v float64
				}{kf, ob.U, ob.V})
			}
		}
		for id, obs := range obsOf {
			if len(obs) < 2 {
				continue
			}
			mp, ok := s.points[id]
			if !ok {
				continue
			}
			mp.Pos = refinePoint(s, mp.Pos, obs, opsCounter)
		}
	}
}

// refinePoint runs one Gauss-Newton step on a point position from its
// observations (3x3 normal equations).
func refinePoint(s *System, pos mathx.Vec3, obs []struct {
	kf   *KeyFrame
	u, v float64
}, opsCounter *uint64) mathx.Vec3 {
	var h mathx.Mat3
	var g mathx.Vec3
	used := 0
	for _, ob := range obs {
		pc := ob.kf.Pose.WorldToCamera(pos)
		if pc.Z <= 0.1 {
			continue
		}
		invZ := 1 / pc.Z
		pu := s.Cam.Fx*pc.X*invZ + s.Cam.Cx
		pv := s.Cam.Fy*pc.Y*invZ + s.Cam.Cy
		ru := pu - ob.u
		rv := pv - ob.v
		w := huberWeight(math.Hypot(ru, rv), 4)
		jx := [2][3]float64{
			{s.Cam.Fx * invZ, 0, -s.Cam.Fx * pc.X * invZ * invZ},
			{0, s.Cam.Fy * invZ, -s.Cam.Fy * pc.Y * invZ * invZ},
		}
		// d(pc)/d(pw) = R^T
		rt := ob.kf.Pose.Att.Conj().Mat()
		var j [2][3]float64
		for r := 0; r < 2; r++ {
			for c := 0; c < 3; c++ {
				j[r][c] = jx[r][0]*rt[0][c] + jx[r][1]*rt[1][c] + jx[r][2]*rt[2][c]
			}
		}
		for a := 0; a < 3; a++ {
			gv := w * (j[0][a]*ru + j[1][a]*rv)
			switch a {
			case 0:
				g.X += gv
			case 1:
				g.Y += gv
			case 2:
				g.Z += gv
			}
			for b := 0; b < 3; b++ {
				h[a][b] += w * (j[0][a]*j[0][b] + j[1][a]*j[1][b])
			}
		}
		used++
	}
	if used < 2 {
		return pos
	}
	for a := 0; a < 3; a++ {
		h[a][a] += 1e-3*h[a][a] + 1e-9
	}
	inv, ok := h.Inverse()
	if !ok {
		return pos
	}
	delta := inv.MulVec(g.Neg())
	*opsCounter += uint64(used) * 90
	if delta.Norm() > 1.0 {
		delta = delta.Scale(1.0 / delta.Norm()) // trust region
	}
	return pos.Add(delta)
}
