package slam

import (
	"fmt"
	"testing"

	"dronedse/dataset"
	"dronedse/parallelx"
)

// benchSeq generates the standard benchmark sequence (MH01).
func benchSeq(b *testing.B) *dataset.Sequence {
	b.Helper()
	seq, err := dataset.Generate(dataset.EuRoCSpecs()[0])
	if err != nil {
		b.Fatal(err)
	}
	return seq
}

func benchPools(b *testing.B, fn func(b *testing.B)) {
	for _, pool := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("p%d", pool), func(b *testing.B) {
			prev := parallelx.SetPoolSize(pool)
			defer parallelx.SetPoolSize(prev)
			fn(b)
		})
	}
}

func BenchmarkDetect(b *testing.B) {
	seq := benchSeq(b)
	h := NewBenchHarness(seq, 11)
	benchPools(b, func(b *testing.B) {
		h.Detect() // warm the detector scratch at this pool size
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Detect()
		}
	})
}

func BenchmarkMatchByProjection(b *testing.B) {
	seq := benchSeq(b)
	h := NewBenchHarness(seq, 30)
	h.MatchByProjection() // warm the grid scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MatchByProjection()
	}
}

func BenchmarkBundleAdjustLocal(b *testing.B) {
	seq := benchSeq(b)
	h := NewBenchHarness(seq, 60)
	benchPools(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.LocalBA()
		}
	})
}

func BenchmarkRunSequence(b *testing.B) {
	seq := benchSeq(b)
	benchPools(b, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			RunSequence(seq)
		}
	})
}
