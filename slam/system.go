package slam

import (
	"math"
	"runtime"

	"dronedse/dataset"
	"dronedse/mathx"
	"dronedse/parallelx"
)

// forcePipeline makes RunSequence take the software-pipelined path even on
// a single-P runtime, where it is normally skipped: with GOMAXPROCS=1 the
// prefetch goroutine cannot overlap tracking, so the hand-off is pure
// overhead (~8% slower, plus a few dozen scheduler allocations that would
// make allocs grow with the pool size). The pool-invariance and race tests
// set it so the pipelined path stays covered on any machine.
var forcePipeline = false

// System is the full SLAM pipeline: tracking (feature extraction, matching,
// pose optimization), local mapping (keyframe creation, local BA), and loop
// closing with global BA — the ORB-SLAM organization of §5.
type System struct {
	Cam dataset.Camera
	// Stats is the work ledger the platform models retime.
	Stats Stats

	det *Detector

	// KeyframeEvery inserts a keyframe at least every N frames.
	KeyframeEvery int
	// MinTrackedMatches forces a keyframe when tracking thins out.
	MinTrackedMatches int
	// LocalWindow is the keyframe count local BA optimizes.
	LocalWindow int
	// LocalBAIters / GlobalBAIters are the alternation counts.
	LocalBAIters  int
	GlobalBAIters int
	// GlobalBAEveryKF runs loop-closure detection + global BA every N
	// keyframes (and at Finish).
	GlobalBAEveryKF int

	pose        Pose
	initialized bool
	sinceKF     int
	lastLoopKF  int
	keyframes   []*KeyFrame
	// points is the landmark table, indexed by point ID. IDs are assigned
	// densely and landmarks are never deleted, so a slice replaces the old
	// map: lookups become bounds checks and — unlike a map, whose per-run
	// hash seed makes overflow-bucket allocation nondeterministic — its
	// growth allocates identically on every run, keeping the allocs/op
	// column of BENCH_core.json bit-stable.
	points []*MapPoint

	// traj records the estimated pose per processed frame.
	traj []Pose

	// scratch holds the per-frame buffers tracking reuses across frames.
	scratch frameScratch
	// baScratch holds the adjacency buffers bundleAdjust reuses per call.
	baScratch baScratch
}

// NewSystem builds the pipeline for a camera.
func NewSystem(cam dataset.Camera) *System {
	s := &System{
		Cam:               cam,
		KeyframeEvery:     5,
		MinTrackedMatches: 40,
		LocalWindow:       5,
		LocalBAIters:      6,
		GlobalBAIters:     4,
		GlobalBAEveryKF:   8,
		lastLoopKF:        -1000,
	}
	s.det = NewDetector(&s.Stats)
	s.pose.Att = mathx.QuatIdentity()
	return s
}

// Pose returns the current tracked pose.
func (s *System) Pose() Pose { return s.pose }

// Keyframes returns the keyframe count.
func (s *System) Keyframes() int { return len(s.keyframes) }

// MapPoints returns the landmark count.
func (s *System) MapPoints() int { return len(s.points) }

// MapPointPositions returns the positions of all map points — the landmark
// cloud downstream consumers (occupancy mapping, planning) build on. The
// table is stored in ID order, so the cloud is reproducible by construction.
func (s *System) MapPointPositions() []mathx.Vec3 {
	out := make([]mathx.Vec3, 0, len(s.points))
	for _, mp := range s.points {
		out = append(out, mp.Pos)
	}
	return out
}

// point looks up a landmark by ID: a bounds check over the dense table.
func (s *System) point(id int) (*MapPoint, bool) {
	if id < 0 || id >= len(s.points) {
		return nil, false
	}
	return s.points[id], true
}

// Trajectory returns the per-frame pose estimates.
func (s *System) Trajectory() []Pose { return s.traj }

// localMap gathers the map points observed by the last few keyframes. The
// returned slices are scratch-backed and valid until the next frame.
func (s *System) localMap() (ids []int, descs []Descriptor, pts []mathx.Vec3) {
	sc := &s.scratch
	seen := grow(sc.lmSeen, len(s.points))
	for i := range seen {
		seen[i] = false
	}
	sc.lmSeen = seen
	ids, descs, pts = sc.lmIDs[:0], sc.lmDescs[:0], sc.lmPts[:0]
	lo := len(s.keyframes) - s.LocalWindow
	if lo < 0 {
		lo = 0
	}
	for _, kf := range s.keyframes[lo:] {
		for _, ob := range kf.Obs {
			if seen[ob.PointID] {
				continue
			}
			seen[ob.PointID] = true
			mp, ok := s.point(ob.PointID)
			if !ok {
				continue
			}
			ids = append(ids, mp.ID)
			descs = append(descs, mp.Desc)
			pts = append(pts, mp.Pos)
		}
	}
	sc.lmIDs, sc.lmDescs, sc.lmPts = ids, descs, pts
	return
}

// ProcessFrame tracks one camera frame and returns the pose estimate.
func (s *System) ProcessFrame(f dataset.Frame) Pose {
	im := Image{W: s.Cam.Width, H: s.Cam.Height, Pix: f.Image}
	kps := s.det.Detect(im)
	return s.ProcessFrameDetected(kps, f)
}

// ProcessFrameDetected tracks one camera frame whose keypoints were already
// detected and described — the back half of ProcessFrame. It is the
// hand-off point of the software-pipelined driver (see RunSequence): a
// prefetch stage may run detection for frame N+1 on another goroutine while
// this call performs tracking and bundle adjustment for frame N. The split
// is deterministic because detection depends only on the frame pixels —
// never on tracking state — so detecting ahead produces bit-identical
// keypoints, and the tracking state is touched only by this (the owner's)
// goroutine.
func (s *System) ProcessFrameDetected(kps []Keypoint, f dataset.Frame) Pose {
	s.Stats.Frames++

	if !s.initialized {
		// Bootstrap the map at the first frame's (origin) pose.
		s.createKeyframe(kps, f, nil)
		s.initialized = true
		s.traj = append(s.traj, s.pose)
		return s.pose
	}

	ids, descs, pts := s.localMap()
	matches := s.matchByProjection(kps, descs, pts)
	if len(matches) < s.MinTrackedMatches/2 {
		// Tracking-lost fallback: global descriptor search (ORB-SLAM's
		// relocalization path).
		matches = Match(kps, descs, 50, &s.Stats)
	}
	sc := &s.scratch
	mpts := grow(sc.mpts, len(matches))[:0]
	us, vs := grow(sc.us, len(matches))[:0], grow(sc.vs, len(matches))[:0]
	for _, m := range matches {
		mpts = append(mpts, pts[m[1]])
		us = append(us, kps[m[0]].X)
		vs = append(vs, kps[m[0]].Y)
	}
	sc.mpts, sc.us, sc.vs = mpts, us, vs
	s.Stats.TrackedMatches += len(matches)
	inlier := grow(sc.inlier, len(matches))
	sc.inlier = inlier
	for i := range inlier {
		inlier[i] = false
	}
	if len(mpts) >= 6 {
		// Two-pass robust tracking: optimize, reject gross outliers,
		// re-optimize on the inlier set (ORB-SLAM's tracking scheme).
		s.pose = optimizePose(s.Cam, s.pose, mpts, us, vs, 5, &s.Stats, &sc.ps)
		ipts := grow(sc.ipts, len(mpts))[:0]
		ius, ivs := grow(sc.ius, len(mpts))[:0], grow(sc.ivs, len(mpts))[:0]
		for i := range mpts {
			ru, rv, ok := reprojErr(s.Cam, s.pose, mpts[i], us[i], vs[i])
			if ok && ru*ru+rv*rv < 36 {
				inlier[i] = true
				ipts = append(ipts, mpts[i])
				ius = append(ius, us[i])
				ivs = append(ivs, vs[i])
			}
		}
		sc.ipts, sc.ius, sc.ivs = ipts, ius, ivs
		if len(ipts) >= 6 {
			s.pose = optimizePose(s.Cam, s.pose, ipts, ius, ivs, 5, &s.Stats, &sc.ps)
		}
	}

	s.sinceKF++
	if s.sinceKF >= s.KeyframeEvery || len(matches) < s.MinTrackedMatches {
		// matchedByKp[i] is the map-point ID keypoint i tracks (-1: none) —
		// a dense scratch array, not a per-keyframe map.
		matchedByKp := grow(sc.matchedByKp, len(kps))
		for i := range matchedByKp {
			matchedByKp[i] = -1
		}
		sc.matchedByKp = matchedByKp
		for i, m := range matches {
			if inlier[i] {
				matchedByKp[m[0]] = ids[m[1]]
			}
		}
		s.fuseByProjection(kps, ids, descs, pts, matchedByKp)
		s.createKeyframe(kps, f, matchedByKp)

		// Local BA over the recent window.
		lo := len(s.keyframes) - s.LocalWindow
		if lo < 0 {
			lo = 0
		}
		s.bundleAdjust(s.keyframes[lo:], s.LocalBAIters, &s.Stats.LocalBAOps)

		// Loop detection is cheap and runs per keyframe; a closure runs
		// pose-graph optimization, then global BA (which also runs
		// periodically without one).
		if oldIdx, found := s.detectLoop(); found {
			s.closeLoop(oldIdx)
			s.bundleAdjust(s.keyframes, s.GlobalBAIters, &s.Stats.GlobalBAOps)
		} else if len(s.keyframes)%s.GlobalBAEveryKF == 0 {
			s.bundleAdjust(s.keyframes, s.GlobalBAIters, &s.Stats.GlobalBAOps)
		}
	}
	s.traj = append(s.traj, s.pose)
	return s.pose
}

// matchByProjection is the tracking matcher: local map points are projected
// under the current pose estimate and paired with keypoints inside a small
// search window by descriptor distance — ORB-SLAM's search-by-projection,
// which keeps the front end cheap compared to bundle adjustment.
//
// The keypoint cell grid is a flat CSR index over scratch buffers (cell
// start offsets plus a keypoint-index array) instead of a per-frame
// map[int][]int; neighbor cells outside the grid are skipped, which matches
// the map version exactly: projections are in-bounds, so an out-of-range
// neighbor key either missed the map or wrapped to a cell at least one full
// 16 px cell away — beyond the 10 px window — and contributed nothing. The
// returned slice is scratch-backed and valid until the next frame.
func (s *System) matchByProjection(kps []Keypoint, descs []Descriptor, pts []mathx.Vec3) [][2]int {
	const cell = 16
	cw := (s.Cam.Width + cell - 1) / cell
	ch := (s.Cam.Height + cell - 1) / cell
	sc := &s.scratch
	nc := cw * ch
	start := grow(sc.cellStart, nc+1)
	cur := grow(sc.cellCur, nc)
	cellKp := grow(sc.cellKp, len(kps))
	sc.cellStart, sc.cellCur, sc.cellKp = start, cur, cellKp
	for i := range start {
		start[i] = 0
	}
	cellOf := func(kp *Keypoint) int { return int(kp.Y)/cell*cw + int(kp.X)/cell }
	for i := range kps {
		start[cellOf(&kps[i])+1]++
	}
	for c := 0; c < nc; c++ {
		start[c+1] += start[c]
		cur[c] = start[c]
	}
	for i := range kps { // ascending i per cell = map append order
		c := cellOf(&kps[i])
		cellKp[cur[c]] = int32(i)
		cur[c]++
	}
	usedKp := grow(sc.usedKp, len(kps))
	sc.usedKp = usedKp
	for i := range usedKp {
		usedKp[i] = false
	}
	out := sc.matches[:0]
	candidates := 0
	for j, pw := range pts {
		pc := s.pose.WorldToCamera(pw)
		u, v, ok := s.Cam.Project(pc)
		if !ok {
			continue
		}
		bestD, bestI := 61, -1
		cu, cv := int(u)/cell, int(v)/cell
		for cy := cv - 1; cy <= cv+1; cy++ {
			if cy < 0 || cy >= ch {
				continue
			}
			for cx := cu - 1; cx <= cu+1; cx++ {
				if cx < 0 || cx >= cw {
					continue
				}
				c := cy*cw + cx
				for _, i32 := range cellKp[start[c]:start[c+1]] {
					i := int(i32)
					if usedKp[i] {
						continue
					}
					du, dv := kps[i].X-u, kps[i].Y-v
					if du*du+dv*dv > 100 { // 10 px window
						continue
					}
					candidates++
					if d := HammingDistance(kps[i].Desc, descs[j]); d < bestD {
						bestD, bestI = d, i
					}
				}
			}
		}
		if bestI >= 0 {
			usedKp[bestI] = true
			out = append(out, [2]int{bestI, j})
		}
	}
	sc.matches = out
	// Projection per point plus a Hamming test per windowed candidate.
	s.Stats.MatchingOps += uint64(len(pts))*12 + uint64(candidates)*16
	return out
}

// fuseByProjection associates still-unmatched keypoints with local map
// points by projecting the points under the tracked pose and accepting
// nearby, descriptor-compatible pairs — ORB-SLAM's search-by-projection map
// fusion, which prevents duplicate landmarks from flooding the map.
func (s *System) fuseByProjection(kps []Keypoint, ids []int, descs []Descriptor, pts []mathx.Vec3, matchedByKp []int) {
	// taken is dense over point IDs; size to the local map's IDs too so the
	// kernel works on any caller-supplied ID set, not just s.points.
	n := len(s.points)
	for _, id := range ids {
		if id >= n {
			n = id + 1
		}
	}
	taken := grow(s.scratch.taken, n)
	for i := range taken {
		taken[i] = false
	}
	s.scratch.taken = taken
	for _, pid := range matchedByKp {
		if pid >= 0 {
			taken[pid] = true
		}
	}
	projs := s.scratch.projs[:0]
	for j, pw := range pts {
		if taken[ids[j]] {
			continue
		}
		pc := s.pose.WorldToCamera(pw)
		u, v, ok := s.Cam.Project(pc)
		if !ok {
			continue
		}
		projs = append(projs, projCand{j, u, v})
	}
	s.scratch.projs = projs
	for i, kp := range kps {
		if matchedByKp[i] >= 0 {
			continue
		}
		bestD, bestJ := 61, -1
		for _, p := range projs {
			du, dv := kp.X-p.u, kp.Y-p.v
			if du*du+dv*dv > 16 { // within 4 px
				continue
			}
			if d := HammingDistance(kp.Desc, descs[p.j]); d < bestD {
				bestD, bestJ = d, p.j
			}
		}
		if bestJ >= 0 && !taken[ids[bestJ]] {
			matchedByKp[i] = ids[bestJ]
			taken[ids[bestJ]] = true
		}
	}
	s.Stats.MatchingOps += uint64(len(kps)) * uint64(len(projs)) * 4
}

// createKeyframe adds the current frame as a keyframe: matched keypoints
// become observations of their map points; unmatched keypoints with stereo
// depth spawn new map points.
func (s *System) createKeyframe(kps []Keypoint, f dataset.Frame, matched []int) {
	kf := &KeyFrame{ID: len(s.keyframes), Pose: s.pose}
	for i, kp := range kps {
		if i < len(matched) && matched[i] >= 0 {
			pid := matched[i]
			kf.Obs = append(kf.Obs, Observation{PointID: pid, U: kp.X, V: kp.Y})
			if mp, ok := s.point(pid); ok {
				mp.Seen++
			}
			continue
		}
		// New landmark from stereo depth.
		x, y := int(kp.X), int(kp.Y)
		z := float64(f.Depth[y*s.Cam.Width+x])
		if z <= 0.1 {
			continue
		}
		pc := mathx.V3((kp.X-s.Cam.Cx)/s.Cam.Fx*z, (kp.Y-s.Cam.Cy)/s.Cam.Fy*z, z)
		pw := s.pose.CameraToWorld(pc)
		id := len(s.points)
		s.points = append(s.points, &MapPoint{ID: id, Pos: pw, Desc: kp.Desc, Seen: 1})
		kf.Obs = append(kf.Obs, Observation{PointID: id, U: kp.X, V: kp.Y})
	}
	s.keyframes = append(s.keyframes, kf)
	s.Stats.Keyframes++
	s.sinceKF = 0
}

// detectLoop checks whether the newest keyframe revisits the neighborhood
// of a much older one (a loop closure). A cooldown keeps one revisit from
// firing on every subsequent keyframe.
func (s *System) detectLoop() (oldIdx int, found bool) {
	cur := s.keyframes[len(s.keyframes)-1]
	if cur.ID-s.lastLoopKF < 2*s.GlobalBAEveryKF {
		return 0, false
	}
	for i, old := range s.keyframes {
		if cur.ID-old.ID < 2*s.GlobalBAEveryKF {
			break
		}
		if cur.Pose.Pos.Sub(old.Pose.Pos).Norm() < 1.0 {
			s.Stats.LoopClosures++
			s.lastLoopKF = cur.ID
			return i, true
		}
	}
	return 0, false
}

// Finish runs the final global BA (ORB-SLAM's full-map optimization).
func (s *System) Finish() {
	s.bundleAdjust(s.keyframes, s.GlobalBAIters+1, &s.Stats.GlobalBAOps)
}

// Result summarizes a sequence run.
type Result struct {
	Name  string
	Stats Stats
	// ATE is the RMSE absolute trajectory error in meters.
	ATE float64
	// Frames is the processed frame count.
	Frames int
}

// RunSequence processes a full dataset sequence and reports the SLAM key
// metrics (§5: "while confirming SLAM key metrics"). The ATE is computed
// after translation-aligning the estimated trajectory to ground truth, as
// the standard evaluation does (the SLAM map frame is anchored at the first
// camera pose, not at the world origin).
func RunSequence(seq *dataset.Sequence) Result {
	s := NewSystem(seq.Cam)
	type pair struct{ est, truth mathx.Vec3 }
	pairs := make([]pair, 0, seq.Len())
	if parallelx.PoolSize() > 1 && (runtime.GOMAXPROCS(0) > 1 || forcePipeline) {
		// Software-pipelined: a prefetch stage detects/describes frame N+1
		// while tracking and bundle adjustment run on frame N. Hand-off is
		// a 1-slot channel, so the stages stay at most one frame apart and
		// frames are consumed strictly in order — the tracked output is the
		// serial path's, bit for bit (TestRunSequencePoolInvariant). The
		// GOMAXPROCS gate above skips this path on a single-P runtime,
		// where no overlap is possible and the hand-off is pure overhead.
		//
		// The prefetch stage reuses the System's detector — safe because
		// tracking never detects on this path (ProcessFrameDetected) and
		// Detect hands each caller a fresh keypoint slice, and free of the
		// second scratch arena a private detector would grow (the alloc
		// count must not rise with the pool size). It shares the Stats
		// ledger as its only writer of FeatureExtractionOps (tracking
		// writes the other fields), uint64 accumulation is exact and
		// order-free, and each channel send publishes the charge before
		// the frame is tracked, so the ledger is race-free and identical
		// to serial accounting.
		type detected struct {
			kps []Keypoint
			f   dataset.Frame
		}
		ch := make(chan detected, 1)
		go func() {
			det := s.det
			for i := 0; i < seq.Len(); i++ {
				f := seq.Frame(i)
				kps := det.Detect(Image{W: s.Cam.Width, H: s.Cam.Height, Pix: f.Image})
				ch <- detected{kps, f}
			}
			close(ch)
		}()
		for d := range ch {
			est := s.ProcessFrameDetected(d.kps, d.f)
			pairs = append(pairs, pair{est.Pos, d.f.TruePos})
		}
	} else {
		for i := 0; i < seq.Len(); i++ {
			f := seq.Frame(i)
			est := s.ProcessFrame(f)
			pairs = append(pairs, pair{est.Pos, f.TruePos})
		}
	}
	s.Finish()

	var offset mathx.Vec3
	for _, p := range pairs {
		offset = offset.Add(p.truth.Sub(p.est))
	}
	offset = offset.Scale(1 / float64(len(pairs)))
	var sqSum float64
	for _, p := range pairs {
		sqSum += p.est.Add(offset).Sub(p.truth).NormSq()
	}
	return Result{
		Name:   seq.Spec.Name,
		Stats:  s.Stats,
		ATE:    math.Sqrt(sqSum / float64(len(pairs))),
		Frames: seq.Len(),
	}
}
