// Package slam is a from-scratch visual SLAM system in the mold of the
// ORB-SLAM2 pipeline the paper offloads in §5: FAST-style corner detection,
// BRIEF-style binary descriptors, descriptor matching, Gauss-Newton pose
// tracking, keyframe mapping, and local/global bundle adjustment. Every
// kernel accounts its arithmetic work in a Stats ledger so the hardware
// platform models (internal/platform) can retime the same computation on
// RPi / TX2 / FPGA / ASIC, reproducing Figure 17 and Table 5.
package slam

import (
	"math/bits"
	"math/rand"
	"sort"
)

// Image is a grayscale image.
type Image struct {
	W, H int
	Pix  []uint8
}

// At returns the pixel at (x, y) with border clamping.
func (im Image) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Keypoint is a detected corner.
type Keypoint struct {
	X, Y     float64
	Response int
	Desc     Descriptor
}

// Descriptor is a 256-bit binary descriptor.
type Descriptor [4]uint64

// HammingDistance counts differing bits between two descriptors.
func HammingDistance(a, b Descriptor) int {
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// fastOffsets is the 16-pixel Bresenham circle of radius 3 used by FAST.
var fastOffsets = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// briefPattern is the fixed random sampling pattern for the descriptor,
// generated once with a fixed seed so descriptors are comparable across
// frames and processes.
var briefPattern = func() [256][4]int {
	r := rand.New(rand.NewSource(31415))
	var p [256][4]int
	for i := range p {
		p[i] = [4]int{r.Intn(15) - 7, r.Intn(15) - 7, r.Intn(15) - 7, r.Intn(15) - 7}
	}
	return p
}()

// Detector runs FAST-style corner detection plus BRIEF-style description.
type Detector struct {
	// Threshold is the FAST intensity threshold.
	Threshold int
	// MaxFeatures caps the keypoints kept per frame (strongest first).
	MaxFeatures int
	// Stats receives the work accounting; nil disables accounting.
	Stats *Stats
}

// NewDetector returns the default detector (ORB-SLAM keeps ~1000 features
// per frame on EuRoC; the scaled images here keep fewer).
func NewDetector(stats *Stats) *Detector {
	return &Detector{Threshold: 22, MaxFeatures: 400, Stats: stats}
}

// Detect finds corners and computes their descriptors.
func (d *Detector) Detect(im Image) []Keypoint {
	var kps []Keypoint
	const segLen = 9 // FAST-9: nine contiguous circle pixels
	for y := 3; y < im.H-3; y++ {
		for x := 3; x < im.W-3; x++ {
			c := int(im.Pix[y*im.W+x])
			// Fast reject: at least one of the 4 compass points must
			// differ strongly (the standard FAST early-out).
			hi, lo := 0, 0
			for _, k := range [4]int{0, 4, 8, 12} {
				p := int(im.At(x+fastOffsets[k][0], y+fastOffsets[k][1]))
				if p >= c+d.Threshold {
					hi++
				} else if p <= c-d.Threshold {
					lo++
				}
			}
			if hi < 3 && lo < 3 {
				continue
			}
			// Full segment test.
			var diffs [32]int
			for k := 0; k < 16; k++ {
				p := int(im.At(x+fastOffsets[k][0], y+fastOffsets[k][1]))
				switch {
				case p >= c+d.Threshold:
					diffs[k] = 1
				case p <= c-d.Threshold:
					diffs[k] = -1
				}
				diffs[16+k] = diffs[k]
			}
			run, best, sign := 0, 0, 0
			resp := 0
			for k := 0; k < 32; k++ {
				if diffs[k] != 0 && diffs[k] == sign {
					run++
				} else {
					sign = diffs[k]
					run = 1
				}
				if diffs[k] != 0 && run > best {
					best = run
				}
			}
			if best < segLen {
				continue
			}
			for k := 0; k < 16; k++ {
				p := int(im.At(x+fastOffsets[k][0], y+fastOffsets[k][1]))
				if p-c > resp {
					resp = p - c
				} else if c-p > resp {
					resp = c - p
				}
			}
			kps = append(kps, Keypoint{X: float64(x), Y: float64(y), Response: resp})
		}
	}
	if d.Stats != nil {
		// ~10 ops per pixel on average: the compass-point early-out
		// rejects most pixels after a few comparisons.
		d.Stats.FeatureExtractionOps += uint64(im.W*im.H) * 10
	}

	// Non-max-ish suppression: keep the strongest within a cell grid.
	kps = suppress(kps, im.W, im.H, 8)
	sort.Slice(kps, func(i, j int) bool { return kps[i].Response > kps[j].Response })
	if len(kps) > d.MaxFeatures {
		kps = kps[:d.MaxFeatures]
	}
	for i := range kps {
		kps[i].Desc = describe(im, kps[i])
	}
	if d.Stats != nil {
		// 256 pairwise intensity comparisons per descriptor.
		d.Stats.FeatureExtractionOps += uint64(len(kps)) * 256 * 3
	}
	return kps
}

// suppress keeps only the strongest keypoint per cell x cell block.
func suppress(kps []Keypoint, w, h, cell int) []Keypoint {
	type slot struct {
		idx  int
		resp int
	}
	cw := (w + cell - 1) / cell
	grid := make(map[int]slot)
	for i, kp := range kps {
		key := int(kp.Y)/cell*cw + int(kp.X)/cell
		if s, ok := grid[key]; !ok || kp.Response > s.resp {
			grid[key] = slot{idx: i, resp: kp.Response}
		}
	}
	// Emit winners in original detection order: map iteration order is
	// randomized, and the strongest-response sort downstream breaks ties by
	// position in this slice — feeding it map order would make the surviving
	// keypoint set (and every pose estimate built on it) vary run to run.
	idxs := make([]int, 0, len(grid))
	for _, s := range grid {
		idxs = append(idxs, s.idx)
	}
	sort.Ints(idxs)
	out := make([]Keypoint, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, kps[i])
	}
	return out
}

// describe computes the BRIEF-style descriptor at a keypoint.
func describe(im Image, kp Keypoint) Descriptor {
	var d Descriptor
	x, y := int(kp.X), int(kp.Y)
	for i, p := range briefPattern {
		a := im.At(x+p[0], y+p[1])
		b := im.At(x+p[2], y+p[3])
		if a > b {
			d[i/64] |= 1 << (i % 64)
		}
	}
	return d
}

// Match pairs keypoints in a with map descriptors in b by brute-force
// Hamming distance with a ratio test. Returns index pairs (ia, ib).
func Match(a []Keypoint, b []Descriptor, maxDist int, stats *Stats) [][2]int {
	var out [][2]int
	for i, ka := range a {
		best, second, bestJ := 257, 257, -1
		for j := range b {
			dist := HammingDistance(ka.Desc, b[j])
			if dist < best {
				second = best
				best, bestJ = dist, j
			} else if dist < second {
				second = dist
			}
		}
		if bestJ >= 0 && best <= maxDist && float64(best) < 0.9*float64(second) {
			out = append(out, [2]int{i, bestJ})
		}
	}
	if stats != nil {
		// 4 xor+popcount word ops ≈ 16 ops per candidate pair.
		stats.MatchingOps += uint64(len(a)) * uint64(len(b)) * 16
	}
	return out
}
