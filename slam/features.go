// Package slam is a from-scratch visual SLAM system in the mold of the
// ORB-SLAM2 pipeline the paper offloads in §5: FAST-style corner detection,
// BRIEF-style binary descriptors, descriptor matching, Gauss-Newton pose
// tracking, keyframe mapping, and local/global bundle adjustment. Every
// kernel accounts its arithmetic work in a Stats ledger so the hardware
// platform models (internal/platform) can retime the same computation on
// RPi / TX2 / FPGA / ASIC, reproducing Figure 17 and Table 5.
//
// The hot kernels are written for throughput: detection fans out over fixed
// row bands through the shared parallelx pool and the per-frame grids and
// keypoint buffers are flat slices reused across frames, so the pipeline's
// output — keypoints, trajectory, and the Stats ledger — is byte-identical
// to the serial path at every pool size (asserted by parallel_test.go).
//
// Note on the FAST early-out: earlier revisions required 3 of the 4 compass
// points to differ strongly, which is the FAST-12 criterion; a genuine
// FAST-9 segment of 9 contiguous circle pixels can cover as few as 2 of the
// 4 compass points (indices 0/4/8/12), so that test wrongly rejected real
// corners. The pre-test now uses the 2-of-4 criterion, which is a necessary
// condition for a 9-run and therefore never rejects a true FAST-9 corner.
package slam

import (
	"math/bits"
	"math/rand"
	"sort"

	"dronedse/parallelx"
)

// Image is a grayscale image.
type Image struct {
	W, H int
	Pix  []uint8
}

// At returns the pixel at (x, y) with border clamping. The detection and
// description kernels index Pix directly on the unclamped interior and only
// fall back to At where a sampling pattern can leave the image.
func (im Image) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= im.W {
		x = im.W - 1
	}
	if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Keypoint is a detected corner.
type Keypoint struct {
	X, Y     float64
	Response int
	Desc     Descriptor
}

// Descriptor is a 256-bit binary descriptor.
type Descriptor [4]uint64

// HammingDistance counts differing bits between two descriptors.
func HammingDistance(a, b Descriptor) int {
	d := 0
	for i := range a {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// fastOffsets is the 16-pixel Bresenham circle of radius 3 used by FAST.
var fastOffsets = [16][2]int{
	{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
	{0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3},
}

// briefPattern is the fixed random sampling pattern for the descriptor,
// generated once with a fixed seed so descriptors are comparable across
// frames and processes. Offsets are in [-7, 7], which bounds the border
// clamping radius of describe.
var briefPattern = func() [256][4]int {
	r := rand.New(rand.NewSource(31415))
	var p [256][4]int
	for i := range p {
		p[i] = [4]int{r.Intn(15) - 7, r.Intn(15) - 7, r.Intn(15) - 7, r.Intn(15) - 7}
	}
	return p
}()

// briefRadius is the maximum |offset| in briefPattern: keypoints at least
// this far from every border take the unclamped describe fast path.
const briefRadius = 7

// detectBandRows is the fixed height of one detection band. Band boundaries
// depend only on the image height — never on the pool size — so the merged
// keypoint list is identical however the bands are scheduled.
const detectBandRows = 32

// Detector runs FAST-style corner detection plus BRIEF-style description.
// The zero value is usable but unconfigured; a Detector is not safe for
// concurrent Detect calls (it owns reusable per-frame scratch buffers).
type Detector struct {
	// Threshold is the FAST intensity threshold.
	Threshold int
	// MaxFeatures caps the keypoints kept per frame (strongest first).
	MaxFeatures int
	// Stats receives the work accounting; nil disables accounting.
	Stats *Stats

	// scratch holds the per-frame buffers Detect reuses across calls; the
	// returned keypoint slice is always a fresh copy, so callers may retain
	// it across frames.
	scratch detectScratch
}

// detectScratch is the detector's reusable per-frame storage: per-band
// keypoint buffers for the parallel scan, the merged keypoint buffer, the
// flat suppression grid, and the BRIEF pattern flattened to pixel strides
// for the current image width.
type detectScratch struct {
	bands    [][]Keypoint // one buffer per row band
	kps      []Keypoint   // merged candidates (suppressed in place)
	grid     []int32      // suppression grid: cell -> candidate index, -1 empty
	briefOff [256][2]int32
	briefW   int // image width briefOff was computed for (0 = none)
	sorter   kpSorter
}

// kpSorter sorts keypoints by descending response. It lives in the scratch
// so sort.Sort sees a pointer and the interface conversion does not allocate
// (sort.Slice's reflect-based swapper costs several allocations per call).
type kpSorter struct{ kps []Keypoint }

func (s *kpSorter) Len() int           { return len(s.kps) }
func (s *kpSorter) Less(i, j int) bool { return s.kps[i].Response > s.kps[j].Response }
func (s *kpSorter) Swap(i, j int)      { s.kps[i], s.kps[j] = s.kps[j], s.kps[i] }

// NewDetector returns the default detector (ORB-SLAM keeps ~1000 features
// per frame on EuRoC; the scaled images here keep fewer).
func NewDetector(stats *Stats) *Detector {
	return &Detector{Threshold: 22, MaxFeatures: 400, Stats: stats}
}

// Detect finds corners and computes their descriptors. The pixel scan fans
// out over fixed-height row bands via the parallelx pool and the per-band
// results are concatenated in band order, which is exactly the row-major
// order of the serial scan; description is parallelized per keypoint. The
// result is therefore identical at every pool size.
func (d *Detector) Detect(im Image) []Keypoint {
	sc := &d.scratch
	rows := im.H - 6 // y ranges over [3, H-3)
	var nb int
	if rows > 0 {
		nb = (rows + detectBandRows - 1) / detectBandRows
	}
	for len(sc.bands) < nb {
		sc.bands = append(sc.bands, nil)
	}
	bands := parallelx.MapChunks(rows, detectBandRows, func(ci, lo, hi int) []Keypoint {
		return d.detectBand(im, 3+lo, 3+hi, sc.bands[ci][:0])
	})
	kps := sc.kps[:0]
	for ci, b := range bands {
		sc.bands[ci] = b // keep grown buffers for the next frame
		kps = append(kps, b...)
	}
	if d.Stats != nil {
		// ~10 ops per pixel on average: the compass-point early-out
		// rejects most pixels after a few comparisons.
		d.Stats.FeatureExtractionOps += uint64(im.W*im.H) * 10
	}

	// Non-max-ish suppression: keep the strongest within a cell grid.
	kps = d.suppress(kps, im.W, im.H, 8)
	sc.sorter.kps = kps
	sort.Sort(&sc.sorter)
	sc.sorter.kps = nil
	if len(kps) > d.MaxFeatures {
		kps = kps[:d.MaxFeatures]
	}
	if sc.briefW != im.W {
		for i, p := range briefPattern {
			sc.briefOff[i][0] = int32(p[1]*im.W + p[0])
			sc.briefOff[i][1] = int32(p[3]*im.W + p[2])
		}
		sc.briefW = im.W
	}
	parallelx.ChunkIndex(len(kps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			kps[i].Desc = d.describeKp(im, kps[i])
		}
	})
	if d.Stats != nil {
		// 256 pairwise intensity comparisons per descriptor.
		d.Stats.FeatureExtractionOps += uint64(len(kps)) * 256 * 3
	}
	sc.kps = kps[:0] // keep the merged buffer; hand the caller a copy
	return append([]Keypoint(nil), kps...)
}

// hasRun9 reports whether the 16-bit circular mask m contains 9 contiguous
// set bits, by run-length doubling: a marks starts of runs >= 2, b of runs
// >= 4, c of runs >= 8; c anded with the bit 8 ahead marks runs >= 9.
func hasRun9(m uint32) bool {
	rot1 := ((m >> 1) | (m << 15)) & 0xFFFF
	a := m & rot1
	rot2 := ((a >> 2) | (a << 14)) & 0xFFFF
	b := a & rot2
	rot4 := ((b >> 4) | (b << 12)) & 0xFFFF
	c := b & rot4
	rot8 := ((m >> 8) | (m << 8)) & 0xFFFF
	return c&rot8 != 0
}

// detectBand scans rows [y0, y1) for FAST-9 corners, appending to out. The
// scan range keeps the radius-3 circle inside the image, so every circle
// sample indexes Pix directly without border clamping. The segment test
// builds 16-bit brighter/darker masks and checks for a 9-run with bit
// arithmetic instead of scanning the doubled circle.
func (d *Detector) detectBand(im Image, y0, y1 int, out []Keypoint) []Keypoint {
	thr := d.Threshold
	// Circle offsets as flat strides into Pix.
	var off [16]int
	for k, o := range fastOffsets {
		off[k] = o[1]*im.W + o[0]
	}
	pix := im.Pix
	w := im.W
	// t2 sizes the branchless "strictly inside (loT, hiT)" range check:
	// p is inside iff uint(p-loT-1) < uint(2*thr-1).
	t2 := uint(2*thr - 1)
	for y := y0; y < y1; y++ {
		row := y * w
		// Row slices for the compass points: indexing them with x (proved
		// in range by the loop bounds) drops the per-load bounds checks
		// that dominate the flat-offset form.
		rC := pix[row : row+w]
		rT := pix[row-3*w : row-3*w+w]
		rB := pix[row+3*w : row+3*w+w]
		for x := 3; x < w-3; x++ {
			c := int(rC[x])
			hiT, loT := c+thr, c-thr
			// Fast reject, stage 1: a 9-run of the 16-circle spans half the
			// circle, so it covers at least one of any opposite compass
			// pair; if neither point 0 nor point 8 differs strongly the
			// pixel cannot be a FAST-9 corner. Two loads reject most of the
			// image before the four-point test below.
			p0 := int(rT[x])
			p8 := int(rB[x])
			if uint(p0-loT-1) < t2 && uint(p8-loT-1) < t2 {
				continue
			}
			// Stage 2: a 9-run must cover at least 2 of the 4 compass
			// points, so fewer than 2 strong compass differences (on both
			// sides) cannot be a FAST-9 corner. Counted branchlessly: a
			// point cannot be both bright and dark, so the independent
			// sums match the if/else-if chain.
			p4 := int(rC[x+3])
			p12 := int(rC[x-3])
			hi := b2i(p0 >= hiT) + b2i(p4 >= hiT) + b2i(p8 >= hiT) + b2i(p12 >= hiT)
			lo := b2i(p0 <= loT) + b2i(p4 <= loT) + b2i(p8 <= loT) + b2i(p12 <= loT)
			if hi < 2 && lo < 2 {
				continue
			}
			// Full segment test over brighter/darker circle masks, built
			// branchlessly (candidate pixels are textured, so the per-point
			// outcomes are close to random and mispredict as branches).
			at := row + x
			var bright, dark uint32
			for k := 0; k < 16; k++ {
				p := int(pix[at+off[k]])
				bright |= uint32(b2u(p >= hiT)) << uint(k)
				dark |= uint32(b2u(p <= loT)) << uint(k)
			}
			if !hasRun9(bright) && !hasRun9(dark) {
				continue
			}
			resp := 0
			for k := 0; k < 16; k++ {
				p := int(pix[at+off[k]])
				if p-c > resp {
					resp = p - c
				} else if c-p > resp {
					resp = c - p
				}
			}
			out = append(out, Keypoint{X: float64(x), Y: float64(y), Response: resp})
		}
	}
	return out
}

// suppress keeps only the strongest keypoint per cell x cell block (first
// occurrence wins ties), compacting kps in place. Winners are emitted in
// detection order: the strongest-response sort downstream breaks ties by
// position in this slice, so feeding it any other order would make the
// surviving keypoint set (and every pose estimate built on it) vary run to
// run. The cell grid is a flat slice reused across frames.
func (d *Detector) suppress(kps []Keypoint, w, h, cell int) []Keypoint {
	cw := (w + cell - 1) / cell
	ch := (h + cell - 1) / cell
	grid := d.scratch.grid
	if len(grid) < cw*ch {
		grid = make([]int32, cw*ch)
		d.scratch.grid = grid
	}
	grid = grid[:cw*ch]
	for i := range grid {
		grid[i] = -1
	}
	for i, kp := range kps {
		key := int(kp.Y)/cell*cw + int(kp.X)/cell
		if j := grid[key]; j < 0 || kp.Response > kps[j].Response {
			grid[key] = int32(i)
		}
	}
	n := 0
	for i := range kps {
		key := int(kps[i].Y)/cell*cw + int(kps[i].X)/cell
		if grid[key] == int32(i) {
			kps[n] = kps[i]
			n++
		}
	}
	return kps[:n]
}

// describeKp computes the BRIEF-style descriptor at a keypoint. Interior
// keypoints (at least briefRadius from every border) sample Pix directly
// through the precomputed flat strides in scratch; only border keypoints pay
// for clamping via describe.
func (d *Detector) describeKp(im Image, kp Keypoint) Descriptor {
	x, y := int(kp.X), int(kp.Y)
	if x < briefRadius || y < briefRadius || x >= im.W-briefRadius || y >= im.H-briefRadius {
		return describe(im, kp)
	}
	var desc Descriptor
	at := y*im.W + x
	off := &d.scratch.briefOff
	pix := im.Pix
	for w := range desc {
		// Accumulate each 64-bit word branchlessly in a register: the
		// comparison compiles to a flag-set instruction instead of a
		// ~50%-mispredicted branch per bit.
		var bits uint64
		o := off[w*64 : w*64+64]
		for k := range o {
			bits |= b2u(pix[at+int(o[k][0])] > pix[at+int(o[k][1])]) << uint(k)
		}
		desc[w] = bits
	}
	return desc
}

// b2u converts a bool to 0/1 without a branch (the compiler lowers this
// pattern to a conditional-set instruction).
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// b2i is b2u for int accumulators.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// describe computes the BRIEF-style descriptor at a keypoint with border
// clamping — the general path; interior keypoints take describeKp's
// unclamped one.
func describe(im Image, kp Keypoint) Descriptor {
	var d Descriptor
	x, y := int(kp.X), int(kp.Y)
	for i, p := range briefPattern {
		a := im.At(x+p[0], y+p[1])
		b := im.At(x+p[2], y+p[3])
		if a > b {
			d[i/64] |= 1 << (i % 64)
		}
	}
	return d
}

// Match pairs keypoints in a with map descriptors in b by brute-force
// Hamming distance with a ratio test. Returns index pairs (ia, ib).
//
// Accounting contract: Match charges stats.MatchingOps 16 ops (4 xor +
// popcount word operations) per candidate pair it actually examines, counted
// inside the search loop — not the nominal len(a)*len(b) — so the ledger
// stays honest if the search is ever pruned.
func Match(a []Keypoint, b []Descriptor, maxDist int, stats *Stats) [][2]int {
	var out [][2]int
	examined := uint64(0)
	for i := range a {
		best, second, bestJ := 257, 257, -1
		for j := range b {
			dist := HammingDistance(a[i].Desc, b[j])
			examined++
			if dist < best {
				second = best
				best, bestJ = dist, j
			} else if dist < second {
				second = dist
			}
		}
		if bestJ >= 0 && best <= maxDist && float64(best) < 0.9*float64(second) {
			out = append(out, [2]int{i, bestJ})
		}
	}
	if stats != nil {
		stats.MatchingOps += examined * 16
	}
	return out
}
