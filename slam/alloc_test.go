package slam

import (
	"testing"

	"dronedse/dataset"
	"dronedse/parallelx"
)

// TestKernelAllocsPoolIndependent is the alloc half of the pool-invariance
// contract: the steady-state allocations of the SLAM kernels must not grow
// with the worker-pool size. The parallelx arenas are pooled per worker, so
// once each pool size's scratch is warm, detection and local BA allocate
// the same handful of objects whether one worker runs or eight — a kernel
// whose allocs scale with the pool has leaked per-dispatch garbage into the
// steady state (the regression this PR fixed: detect was 5→32 and local BA
// 206→308 allocs going from pool 1 to pool 8).
func TestKernelAllocsPoolIndependent(t *testing.T) {
	seq, err := dataset.Generate(dataset.EuRoCSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}

	kernels := []struct {
		name string
		run  func(h *BenchHarness)
		// slack absorbs runtime noise (map growth inside pooled scratch,
		// one-off sync.Pool refills) without letting per-dispatch garbage
		// through: the fixed regressions were +27 and +102 allocs.
		slack float64
	}{
		{"detect", func(h *BenchHarness) { h.Detect() }, 2},
		{"match_projection", func(h *BenchHarness) { h.MatchByProjection() }, 2},
		{"local_ba", func(h *BenchHarness) { h.LocalBA() }, 10},
	}

	measure := func(pool int, k func(h *BenchHarness)) float64 {
		prev := parallelx.SetPoolSize(pool)
		defer parallelx.SetPoolSize(prev)
		h := NewBenchHarness(seq, 30)
		k(h) // warm this pool size's worker scratch
		return testing.AllocsPerRun(5, func() { k(h) })
	}

	for _, k := range kernels {
		base := measure(1, k.run)
		for _, pool := range []int{2, 8} {
			got := measure(pool, k.run)
			if got > base+k.slack {
				t.Errorf("%s: %.0f allocs/op at pool %d vs %.0f at pool 1 (slack %.0f) — per-dispatch allocation leaked into the steady state",
					k.name, got, pool, base, k.slack)
			}
		}
	}
}
