package slam

import (
	"math"

	"dronedse/dataset"
	"dronedse/mathx"
)

// huberWeight is the IRLS weight of the Huber loss at residual magnitude r
// with threshold k: 1 inside the inlier band, k/r beyond it.
func huberWeight(r, k float64) float64 {
	if r <= k {
		return 1
	}
	return k / r
}

// Stats is the SLAM work ledger: abstract arithmetic-operation counts per
// kernel, accumulated while the pipeline runs. The platform models divide
// these by per-kernel throughputs to retime the computation on RPi, TX2,
// FPGA and ASIC (Figure 17, Table 5). Figure 17 groups the pipeline into
// feature extraction/matching, local BA, and global BA; tracking's
// pose-only optimization is part of the front end, so its work lands in
// MatchingOps' bucket alongside matching.
//
// Accounting contract: every kernel charges ops for work actually performed
// on its inputs, not for work a naive implementation might have performed —
// Detect charges per pixel scanned plus per descriptor built, Match charges
// per descriptor pair examined, matchByProjection charges per projection
// plus per windowed candidate tested, and BA charges per residual used, at
// joint-solver equivalence. Optimizations that skip work (grids, early
// outs) therefore reduce the ledger only when they skip modeled work, and
// pure data-structure speedups (flat grids, scratch reuse, parallel
// execution) leave it bit-identical. The retiming models depend on that:
// the ledger is the workload definition, so it must be a deterministic
// function of the pipeline inputs alone.
type Stats struct {
	FeatureExtractionOps uint64
	MatchingOps          uint64
	LocalBAOps           uint64
	GlobalBAOps          uint64
	// PoseGraphOps is the loop-closure pose-graph solve, ledgered apart
	// from global BA so the roofline dashboard can place it as its own
	// kernel; the platform retiming folds it into the GlobalBA bucket
	// (Figure 17 groups them).
	PoseGraphOps uint64

	Frames         int
	Keyframes      int
	TrackedMatches int
	LoopClosures   int
}

// TotalOps sums all kernels.
func (s Stats) TotalOps() uint64 {
	return s.FeatureExtractionOps + s.MatchingOps + s.LocalBAOps + s.GlobalBAOps + s.PoseGraphOps
}

// FrontEndOps groups feature extraction + matching (Figure 17's "Feature
// Extraction/Matching" category).
func (s Stats) FrontEndOps() uint64 { return s.FeatureExtractionOps + s.MatchingOps }

// Pose is a camera pose: position and attitude (camera-to-world).
type Pose struct {
	Pos mathx.Vec3
	Att mathx.Quat
}

// WorldToCamera maps a world point into the camera frame.
func (p Pose) WorldToCamera(w mathx.Vec3) mathx.Vec3 {
	return p.Att.RotateInv(w.Sub(p.Pos))
}

// CameraToWorld maps a camera-frame point into the world.
func (p Pose) CameraToWorld(c mathx.Vec3) mathx.Vec3 {
	return p.Att.Rotate(c).Add(p.Pos)
}

// Observation is a 2-D measurement of a map point from a keyframe.
type Observation struct {
	PointID int
	U, V    float64
}

// reprojErr computes the pixel residual of a world point under a pose.
func reprojErr(cam dataset.Camera, pose Pose, pw mathx.Vec3, u, v float64) (ru, rv float64, ok bool) {
	pc := pose.WorldToCamera(pw)
	pu, pv, ok := cam.Project(pc)
	if !ok {
		return 0, 0, false
	}
	return pu - u, pv - v, true
}

// poseScratch is the fixed-size working set of optimizePose: the 6x6 normal
// matrix, its Cholesky factor, and the solve vectors, carved from one arena
// so a persistent owner (tracking scratch, a BA motion-step problem) pays
// its three allocations once and every subsequent call allocates nothing.
// Not safe for concurrent use; each concurrent caller owns its own.
type poseScratch struct {
	h, l          mathx.Dense
	neg, dx, yTmp []float64
}

// init lazily carves the arena; a zero poseScratch is ready after one call.
func (ps *poseScratch) init() {
	if ps.neg != nil {
		return
	}
	buf := make([]float64, 2*36+3*6)
	ps.h = mathx.DenseOn(buf[0:36], 6, 6)
	ps.l = mathx.DenseOn(buf[36:72], 6, 6)
	ps.neg, ps.dx, ps.yTmp = buf[72:78], buf[78:84], buf[84:90]
}

// OptimizePose refines a camera pose from 3-D map points and their 2-D
// measurements by Gauss-Newton on the reprojection error over the 6-DOF
// twist (translation + small rotation). It is the tracking back end; its
// arithmetic is accounted to stats.MatchingOps (front-end tracking).
func OptimizePose(cam dataset.Camera, init Pose, pts []mathx.Vec3, us, vs []float64, iters int, stats *Stats) Pose {
	var ps poseScratch
	return optimizePose(cam, init, pts, us, vs, iters, stats, &ps)
}

// optimizePose is OptimizePose over caller-owned scratch — the alloc-free
// path the tracking loop and BA motion step use. The arithmetic (including
// accumulation order) is bit-identical to the original Dense-backed loop:
// the rotation matrix and point skew are hoisted because they are constant
// within an iteration/observation, and CholeskyInto/SolveWithCholesky are
// the bit-exact in-place siblings of SolveCholesky.
func optimizePose(cam dataset.Camera, init Pose, pts []mathx.Vec3, us, vs []float64, iters int, stats *Stats, ps *poseScratch) Pose {
	pose := init
	n := len(pts)
	if n < 4 {
		return pose
	}
	ps.init()
	for it := 0; it < iters; it++ {
		// Normal equations over the 6-vector [dt; dtheta], accumulated on
		// the stack.
		var hm [6][6]float64
		var g [6]float64
		// d(pc)/d(dt) = -R^T: the pose — hence R^T — is fixed for the whole
		// iteration, so compute it once, not per observation.
		rt := pose.Att.Conj().Mat()
		used := 0
		for i := 0; i < n; i++ {
			pc := pose.WorldToCamera(pts[i])
			if pc.Z <= 0.1 {
				continue
			}
			invZ := 1 / pc.Z
			pu := cam.Fx*pc.X*invZ + cam.Cx
			pv := cam.Fy*pc.Y*invZ + cam.Cy
			ru := pu - us[i]
			rv := pv - vs[i]
			// Huber robustness: wrong data associations must not
			// dominate the normal equations.
			w := huberWeight(math.Hypot(ru, rv), 4)
			// Jacobian of projection wrt camera-frame point.
			jx := [2][3]float64{
				{cam.Fx * invZ, 0, -cam.Fx * pc.X * invZ * invZ},
				{0, cam.Fy * invZ, -cam.Fy * pc.Y * invZ * invZ},
			}
			// d(pc)/d(dtheta) = [pc]_x (for the perturbation
			// pc' = R^T(exp(-[dtheta])...)). Compose rows.
			sk := mathx.Skew(pc)
			var j [2][6]float64
			for r := 0; r < 2; r++ {
				for cIdx := 0; cIdx < 3; cIdx++ {
					// translation block
					j[r][cIdx] = -(jx[r][0]*rt[0][cIdx] + jx[r][1]*rt[1][cIdx] + jx[r][2]*rt[2][cIdx])
				}
				// rotation block: J * [pc]_x
				for cIdx := 0; cIdx < 3; cIdx++ {
					j[r][3+cIdx] = jx[r][0]*sk[0][cIdx] + jx[r][1]*sk[1][cIdx] + jx[r][2]*sk[2][cIdx]
				}
			}
			for a := 0; a < 6; a++ {
				g[a] += w * (j[0][a]*ru + j[1][a]*rv)
				for b := 0; b < 6; b++ {
					hm[a][b] += w * (j[0][a]*j[0][b] + j[1][a]*j[1][b])
				}
			}
			used++
		}
		if used < 4 {
			break
		}
		// Levenberg damping keeps distant initializations stable.
		for a := 0; a < 6; a++ {
			hm[a][a] += 1e-3*hm[a][a] + 1e-9
		}
		for a := 0; a < 6; a++ {
			for b := 0; b < 6; b++ {
				ps.h.Set(a, b, hm[a][b])
			}
			ps.neg[a] = -g[a]
		}
		if !ps.h.CholeskyInto(&ps.l) {
			break
		}
		mathx.SolveWithCholesky(&ps.l, ps.neg, ps.dx, ps.yTmp)
		dx := ps.dx
		pose.Pos = pose.Pos.Add(mathx.V3(dx[0], dx[1], dx[2]))
		dq := mathx.V3(dx[3], dx[4], dx[5])
		pose.Att = pose.Att.Mul(mathx.QuatFromAxisAngle(dq.Normalized(), dq.Norm())).Normalized()
		if stats != nil {
			stats.MatchingOps += uint64(used) * 120
		}
		if mathx.V3(dx[0], dx[1], dx[2]).Norm() < 1e-6 && dq.Norm() < 1e-7 {
			break
		}
	}
	return pose
}
