package slam

import (
	"math/rand"
	"reflect"
	"testing"

	"dronedse/dataset"
	"dronedse/parallelx"
)

// withPool runs body at a forced pool size, restoring the previous one.
func withPool(t *testing.T, n int, body func()) {
	t.Helper()
	prev := parallelx.SetPoolSize(n)
	defer parallelx.SetPoolSize(prev)
	body()
}

// runSeqOutputs captures everything a sequence run produces that downstream
// consumers see: the Result (ATE + the Stats ledger the platform models
// retime), the full per-frame trajectory, and the landmark count.
func runSeqOutputs(t *testing.T, seq *dataset.Sequence) (Result, []Pose, int) {
	t.Helper()
	s := NewSystem(seq.Cam)
	for i := 0; i < seq.Len(); i++ {
		s.ProcessFrame(seq.Frame(i))
	}
	s.Finish()
	res := RunSequence(seq)
	return res, s.Trajectory(), s.MapPoints()
}

// TestRunSequencePoolInvariant is the PR acceptance property: for synthetic
// sequences (including an orbit that triggers loop closure + global BA),
// RunSequence produces bit-identical ATE, trajectory, Stats ledger, and map
// cloud at pool sizes 1, 2, and 8. Every parallel kernel — banded detection,
// per-keypoint description, and both BA steps — must therefore be exactly
// order-independent.
func TestRunSequencePoolInvariant(t *testing.T) {
	// Force the software-pipelined path at pool > 1 even on single-P
	// machines, so the prefetch/tracking overlap is what the bit-identity
	// (and -race) assertions actually exercise.
	forcePipeline = true
	defer func() { forcePipeline = false }()
	specs := []dataset.Spec{
		dataset.EuRoCSpecs()[0],
		{Name: "ORBIT", Difficulty: dataset.Easy, Frames: 185, FPS: 20,
			Landmarks: 900, SpeedMS: 2.0, RoomHalfM: 8, Orbit: true, Seed: 777},
	}
	specs[0].Frames = 70
	for _, spec := range specs {
		seq, err := dataset.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		var serialRes Result
		var serialTraj []Pose
		var serialPts int
		withPool(t, 1, func() {
			serialRes, serialTraj, serialPts = runSeqOutputs(t, seq)
		})
		if serialRes.Frames != spec.Frames {
			t.Fatalf("%s: serial run processed %d frames", spec.Name, serialRes.Frames)
		}
		for _, pool := range []int{2, 8} {
			withPool(t, pool, func() {
				res, traj, pts := runSeqOutputs(t, seq)
				if res != serialRes {
					t.Errorf("%s pool=%d: Result differs from serial:\n got %+v\nwant %+v",
						spec.Name, pool, res, serialRes)
				}
				if !reflect.DeepEqual(traj, serialTraj) {
					t.Errorf("%s pool=%d: trajectory differs from serial", spec.Name, pool)
				}
				if pts != serialPts {
					t.Errorf("%s pool=%d: %d map points, serial had %d", spec.Name, pool, pts, serialPts)
				}
			})
		}
	}
}

// TestMapCloudPoolInvariant: the landmark cloud downstream consumers build
// on is position-for-position identical across pool sizes.
func TestMapCloudPoolInvariant(t *testing.T) {
	spec := dataset.EuRoCSpecs()[0]
	spec.Frames = 50
	seq, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []struct{ X, Y, Z float64 } {
		s := NewSystem(seq.Cam)
		for i := 0; i < seq.Len(); i++ {
			s.ProcessFrame(seq.Frame(i))
		}
		s.Finish()
		var out []struct{ X, Y, Z float64 }
		for _, p := range s.MapPointPositions() {
			out = append(out, struct{ X, Y, Z float64 }{p.X, p.Y, p.Z})
		}
		return out
	}
	var serial []struct{ X, Y, Z float64 }
	withPool(t, 1, func() { serial = run() })
	if len(serial) == 0 {
		t.Fatal("serial run built no map")
	}
	for _, pool := range []int{2, 8} {
		withPool(t, pool, func() {
			if got := run(); !reflect.DeepEqual(got, serial) {
				t.Errorf("pool=%d: map cloud differs from serial", pool)
			}
		})
	}
}

// TestDetectPoolInvariant: the banded parallel detector returns identical
// keypoints (positions, responses, and descriptors) at every pool size, on
// textured, sparse, and degenerate-size images.
func TestDetectPoolInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	images := []Image{
		synthImage(376, 240, [][2]int{{30, 30}, {200, 120}, {90, 200}, {340, 40}}, 11),
		synthImage(160, 120, [][2]int{{80, 60}}, 12),
		synthImage(64, 33, [][2]int{{32, 16}, {10, 8}}, 13), // band remainder < detectBandRows
		synthImage(20, 7, [][2]int{{10, 3}}, 14),            // single 1-row band
	}
	// A pure-noise image exercises the empty-ish path.
	noise := Image{W: 100, H: 90, Pix: make([]uint8, 9000)}
	for i := range noise.Pix {
		noise.Pix[i] = uint8(r.Intn(256))
	}
	images = append(images, noise)

	for imIdx, im := range images {
		var serial []Keypoint
		withPool(t, 1, func() { serial = NewDetector(nil).Detect(im) })
		for _, pool := range []int{2, 3, 8} {
			withPool(t, pool, func() {
				got := NewDetector(nil).Detect(im)
				if !reflect.DeepEqual(got, serial) {
					t.Errorf("image %d pool=%d: %d keypoints differ from serial's %d",
						imIdx, pool, len(got), len(serial))
				}
			})
		}
	}
}

// TestDetectMatchesReferenceScan pins the banded kernel to a plain reference
// implementation: a single row-major scan with clamped At sampling, mapped
// over the same suppression/sort/describe tail. This guards the band merge
// order, the unclamped interior indexing, and the bitmask segment test.
func TestDetectMatchesReferenceScan(t *testing.T) {
	im := synthImage(190, 140, [][2]int{{25, 25}, {100, 70}, {160, 120}, {40, 110}}, 99)
	d := NewDetector(nil)

	// Reference corner scan (FAST-9 with the 2-of-4 compass pre-test).
	var ref []Keypoint
	for y := 3; y < im.H-3; y++ {
		for x := 3; x < im.W-3; x++ {
			c := int(im.At(x, y))
			hi, lo := 0, 0
			for _, k := range [4]int{0, 4, 8, 12} {
				p := int(im.At(x+fastOffsets[k][0], y+fastOffsets[k][1]))
				if p >= c+d.Threshold {
					hi++
				} else if p <= c-d.Threshold {
					lo++
				}
			}
			if hi < 2 && lo < 2 {
				continue
			}
			var diffs [32]int
			for k := 0; k < 16; k++ {
				p := int(im.At(x+fastOffsets[k][0], y+fastOffsets[k][1]))
				switch {
				case p >= c+d.Threshold:
					diffs[k] = 1
				case p <= c-d.Threshold:
					diffs[k] = -1
				}
				diffs[16+k] = diffs[k]
			}
			run, best, sign := 0, 0, 0
			for k := 0; k < 32; k++ {
				if diffs[k] != 0 && diffs[k] == sign {
					run++
				} else {
					sign = diffs[k]
					run = 1
				}
				if diffs[k] != 0 && run > best {
					best = run
				}
			}
			if best < 9 {
				continue
			}
			resp := 0
			for k := 0; k < 16; k++ {
				p := int(im.At(x+fastOffsets[k][0], y+fastOffsets[k][1]))
				if p-c > resp {
					resp = p - c
				} else if c-p > resp {
					resp = c - p
				}
			}
			ref = append(ref, Keypoint{X: float64(x), Y: float64(y), Response: resp})
		}
	}

	// The banded kernel must find exactly the reference corner set.
	var got []Keypoint
	for ci, b := 0, 0; b < im.H-6; ci, b = ci+1, b+detectBandRows {
		hi := b + detectBandRows
		if hi > im.H-6 {
			hi = im.H - 6
		}
		got = d.detectBand(im, 3+b, 3+hi, got)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("banded scan found %d corners, reference %d (or ordering differs)",
			len(got), len(ref))
	}
	if len(ref) == 0 {
		t.Fatal("reference scan found nothing; test image too flat")
	}
}

// TestHasRun9 checks the bit trick against a direct circular-run scan for
// every 16-bit mask.
func TestHasRun9(t *testing.T) {
	for m := uint32(0); m < 1<<16; m++ {
		want := false
		for s := 0; s < 16 && !want; s++ {
			run := 0
			for k := 0; k < 9; k++ {
				if m&(1<<uint((s+k)%16)) != 0 {
					run++
				}
			}
			want = run == 9
		}
		if got := hasRun9(m); got != want {
			t.Fatalf("hasRun9(%016b) = %v, want %v", m, got, want)
		}
	}
}

// TestBundleAdjustPoolInvariant: a converged-map BA run moves every pose and
// point identically at pool sizes 1, 2, and 8, and charges the identical op
// count.
func TestBundleAdjustPoolInvariant(t *testing.T) {
	spec := dataset.EuRoCSpecs()[0]
	spec.Frames = 60
	seq, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *System {
		s := NewSystem(seq.Cam)
		for i := 0; i < seq.Len(); i++ {
			s.ProcessFrame(seq.Frame(i))
		}
		return s
	}
	type snapshot struct {
		poses []Pose
		ops   uint64
	}
	run := func() snapshot {
		s := build()
		var ops uint64
		s.bundleAdjust(s.keyframes, 4, &ops)
		var poses []Pose
		for _, kf := range s.keyframes {
			poses = append(poses, kf.Pose)
		}
		return snapshot{poses, ops}
	}
	var serial snapshot
	withPool(t, 1, func() { serial = run() })
	if serial.ops == 0 {
		t.Fatal("BA charged no ops")
	}
	for _, pool := range []int{2, 8} {
		withPool(t, pool, func() {
			got := run()
			if got.ops != serial.ops {
				t.Errorf("pool=%d: BA ops %d != serial %d", pool, got.ops, serial.ops)
			}
			if !reflect.DeepEqual(got.poses, serial.poses) {
				t.Errorf("pool=%d: keyframe poses differ from serial", pool)
			}
		})
	}
}
