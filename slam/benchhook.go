package slam

import (
	"dronedse/dataset"
	"dronedse/mathx"
)

// BenchHarness exposes the SLAM front-end kernels to external benchmark
// drivers (cmd/benchjson) without exporting the kernels themselves. It runs
// a sequence prefix through the full pipeline to build a realistic map and
// scratch state, then lets each kernel be invoked in isolation on that
// state. The localMap outputs are copied out of the System's scratch so the
// harness inputs stay stable across repeated kernel calls.
type BenchHarness struct {
	sys   *System
	im    Image
	kps   []Keypoint
	descs []Descriptor
	pts   []mathx.Vec3
	baLo  int
	baOps uint64
}

// NewBenchHarness processes the first warmFrames frames of seq (clamped to
// the sequence length) and snapshots the kernel inputs at that point.
func NewBenchHarness(seq *dataset.Sequence, warmFrames int) *BenchHarness {
	if warmFrames > seq.Len() {
		warmFrames = seq.Len()
	}
	s := NewSystem(seq.Cam)
	for i := 0; i < warmFrames; i++ {
		s.ProcessFrame(seq.Frame(i))
	}
	f := seq.Frame(warmFrames - 1)
	h := &BenchHarness{
		sys: s,
		im:  Image{W: seq.Cam.Width, H: seq.Cam.Height, Pix: f.Image},
	}
	h.kps = s.det.Detect(h.im)
	_, descs, pts := s.localMap()
	h.descs = append([]Descriptor(nil), descs...)
	h.pts = append([]mathx.Vec3(nil), pts...)
	h.baLo = len(s.keyframes) - s.LocalWindow
	if h.baLo < 0 {
		h.baLo = 0
	}
	// Warm the BA adjacency scratch so steady-state allocation is measured.
	s.bundleAdjust(s.keyframes[h.baLo:], s.LocalBAIters, &h.baOps)
	return h
}

// Detect runs feature detection + description on the snapshot frame and
// returns the keypoint count.
func (h *BenchHarness) Detect() int {
	return len(h.sys.det.Detect(h.im))
}

// MatchByProjection runs grid-indexed projection matching of the snapshot
// local map against the snapshot keypoints and returns the match count.
func (h *BenchHarness) MatchByProjection() int {
	return len(h.sys.matchByProjection(h.kps, h.descs, h.pts))
}

// LocalBA runs one local bundle-adjustment pass over the snapshot keyframe
// window and returns the ops charged.
func (h *BenchHarness) LocalBA() uint64 {
	var ops uint64
	h.sys.bundleAdjust(h.sys.keyframes[h.baLo:], h.sys.LocalBAIters, &ops)
	return ops
}
