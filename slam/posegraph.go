package slam

import (
	"dronedse/mathx"
)

// Pose-graph optimization: when a loop closure is detected, the drift
// accumulated along the trajectory is redistributed by optimizing the
// keyframe positions against two kinds of constraints — the odometry chain
// (relative positions between consecutive keyframes, trusted locally) and
// the loop edge (the independently re-registered relative position between
// the revisiting and the revisited keyframe). ORB-SLAM runs this as its
// essential-graph optimization before full BA; the translation part
// decouples per axis into three sparse linear least-squares problems,
// solved here by Cholesky on the normal equations.

// GraphEdge is one relative-position constraint p[J] - p[I] ≈ Rel.
type GraphEdge struct {
	I, J   int
	Rel    mathx.Vec3
	Weight float64
}

// OptimizePoseGraph solves for node positions given edges, holding node
// `fixed` at its current value (gauge freedom). It returns the corrected
// positions; the input slice is not modified. Unconstrained nodes keep
// their input positions.
func OptimizePoseGraph(positions []mathx.Vec3, edges []GraphEdge, fixed int) []mathx.Vec3 {
	n := len(positions)
	out := append([]mathx.Vec3(nil), positions...)
	if n == 0 || fixed < 0 || fixed >= n || len(edges) == 0 {
		return out
	}
	// Three decoupled scalar problems (x, y, z). Build the weighted
	// Laplacian once; right-hand sides differ per axis.
	h := mathx.NewDense(n, n)
	bx := make([]float64, n)
	by := make([]float64, n)
	bz := make([]float64, n)
	for _, e := range edges {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n || e.I == e.J {
			continue
		}
		w := e.Weight
		if w <= 0 {
			w = 1
		}
		// residual r = p[J] - p[I] - rel; d r/d p[J] = +1, d/d p[I] = -1.
		h.Addf(e.I, e.I, w)
		h.Addf(e.J, e.J, w)
		h.Addf(e.I, e.J, -w)
		h.Addf(e.J, e.I, -w)
		bx[e.I] -= w * e.Rel.X
		bx[e.J] += w * e.Rel.X
		by[e.I] -= w * e.Rel.Y
		by[e.J] += w * e.Rel.Y
		bz[e.I] -= w * e.Rel.Z
		bz[e.J] += w * e.Rel.Z
	}
	// Gauge fix: pin the fixed node with a stiff prior at its current
	// position, and a feather-weight prior everywhere else so isolated
	// nodes stay put and H is SPD.
	const stiff = 1e6
	const feather = 1e-9
	for i := 0; i < n; i++ {
		w := feather
		if i == fixed {
			w = stiff
		}
		h.Addf(i, i, w)
		bx[i] += w * positions[i].X
		by[i] += w * positions[i].Y
		bz[i] += w * positions[i].Z
	}
	xs, okX := h.SolveCholesky(bx)
	ys, okY := h.SolveCholesky(by)
	zs, okZ := h.SolveCholesky(bz)
	if !okX || !okY || !okZ {
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = mathx.V3(xs[i], ys[i], zs[i])
	}
	return out
}

// loopEdge re-registers the newest keyframe against the map points the
// revisited keyframe observes, producing the independent relative-position
// measurement the pose graph needs. The revisit usually re-triangulated
// fresh map points rather than re-observing the old IDs, so the landmarks
// are re-associated by appearance: a brute-force descriptor match between
// the two keyframes' map points (charged to MatchingOps like all descriptor
// search), then a pose optimization of the current keyframe against the old
// keyframe's 3-D points. ok is false with too few associations. Runs on the
// System's goroutine over map state only, so it is deterministic at any
// pool size.
func (s *System) loopEdge(old, cur *KeyFrame) (rel mathx.Vec3, ok bool) {
	// The revisited keyframe's surviving map points, deduplicated.
	seen := make([]bool, len(s.points))
	var oldPts []*MapPoint
	var oldDescs []Descriptor
	for _, ob := range old.Obs {
		if seen[ob.PointID] {
			continue
		}
		seen[ob.PointID] = true
		if mp, exists := s.point(ob.PointID); exists {
			oldPts = append(oldPts, mp)
			oldDescs = append(oldDescs, mp.Desc)
		}
	}
	// The current keyframe's measurements, carrying their map points'
	// descriptors as the match queries.
	var queries []Keypoint
	var qu, qv []float64
	for _, ob := range cur.Obs {
		if mp, exists := s.point(ob.PointID); exists {
			queries = append(queries, Keypoint{Desc: mp.Desc})
			qu = append(qu, ob.U)
			qv = append(qv, ob.V)
		}
	}
	pairs := Match(queries, oldDescs, 50, &s.Stats)
	var pts []mathx.Vec3
	var us, vs []float64
	for _, pr := range pairs {
		pts = append(pts, oldPts[pr[1]].Pos)
		us = append(us, qu[pr[0]])
		vs = append(vs, qv[pr[0]])
	}
	if len(pts) < 12 {
		return mathx.Vec3{}, false
	}
	reg := optimizePose(s.Cam, cur.Pose, pts, us, vs, 6, &s.Stats, &s.scratch.ps)
	return reg.Pos.Sub(old.Pose.Pos), true
}

// closeLoop runs pose-graph optimization over the keyframe positions using
// the odometry chain plus the detected loop edge, then shifts each
// keyframe's pose (and the current tracking pose) by its correction. Map
// points are subsequently pulled into agreement by the global BA that
// always follows a closure. Work is accounted to GlobalBAOps.
func (s *System) closeLoop(oldIdx int) {
	n := len(s.keyframes)
	cur := s.keyframes[n-1]
	old := s.keyframes[oldIdx]
	rel, ok := s.loopEdge(old, cur)
	if !ok {
		return
	}
	positions := make([]mathx.Vec3, n)
	for i, kf := range s.keyframes {
		positions[i] = kf.Pose.Pos
	}
	edges := make([]GraphEdge, 0, n)
	for i := 1; i < n; i++ {
		edges = append(edges, GraphEdge{
			I: i - 1, J: i,
			Rel:    positions[i].Sub(positions[i-1]),
			Weight: 1,
		})
	}
	// The loop edge gets the weight of the whole chain it corrects.
	edges = append(edges, GraphEdge{I: oldIdx, J: n - 1, Rel: rel, Weight: float64(n)})
	corrected := OptimizePoseGraph(positions, edges, 0)
	for i, kf := range s.keyframes {
		kf.Pose.Pos = corrected[i]
	}
	s.pose.Pos = s.pose.Pos.Add(corrected[n-1].Sub(positions[n-1]))
	// ~30 ops per edge per axis solve, plus the n^3/3 Cholesky.
	s.Stats.PoseGraphOps += uint64(len(edges))*90 + uint64(n*n*n)
}
