package slam

import (
	"math/rand"
	"reflect"
	"testing"

	"dronedse/dataset"
	"dronedse/mathx"
)

// matchTestSystem returns a System at the identity pose, so a world point
// (X, Y, Z) projects to (Fx*X/Z + Cx, Fy*Y/Z + Cy).
func matchTestSystem() *System {
	return NewSystem(dataset.DefaultCamera())
}

// worldAt returns the world point that projects to pixel (u, v) at depth z
// under the identity pose of matchTestSystem.
func worldAt(cam dataset.Camera, u, v, z float64) mathx.Vec3 {
	return mathx.V3((u-cam.Cx)/cam.Fx*z, (v-cam.Cy)/cam.Fy*z, z)
}

// descBits returns a descriptor with the n lowest bits set, i.e. Hamming
// distance n from the zero descriptor.
func descBits(n int) Descriptor {
	var d Descriptor
	for i := 0; i < n; i++ {
		d[i/64] |= 1 << uint(i%64)
	}
	return d
}

func TestMatchByProjectionWindowCutoff(t *testing.T) {
	s := matchTestSystem()
	// One map point projecting to (100, 100); keypoints at squared pixel
	// distance exactly 100 (accepted: the window test rejects only > 100)
	// and 113 (rejected).
	kps := []Keypoint{
		{X: 107, Y: 108, Desc: descBits(0)}, // dist² = 49+64 = 113: outside
		{X: 106, Y: 108, Desc: descBits(0)}, // dist² = 36+64 = 100: boundary, inside
	}
	pts := []mathx.Vec3{worldAt(s.Cam, 100, 100, 2)}
	got := s.matchByProjection(kps, []Descriptor{descBits(0)}, pts)
	want := [][2]int{{1, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matches = %v, want %v (10 px window boundary)", got, want)
	}
}

func TestMatchByProjectionBestDescriptor(t *testing.T) {
	s := matchTestSystem()
	// Two keypoints inside the window; the one with smaller Hamming distance
	// to the point descriptor must win even though the other is closer in
	// pixels and earlier in index order.
	kps := []Keypoint{
		{X: 100, Y: 100, Desc: descBits(9)},
		{X: 104, Y: 104, Desc: descBits(2)},
	}
	pts := []mathx.Vec3{worldAt(s.Cam, 100, 100, 2)}
	got := s.matchByProjection(kps, []Descriptor{descBits(0)}, pts)
	want := [][2]int{{1, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matches = %v, want %v (descriptor distance decides)", got, want)
	}
	// Distances at or above the 61 acceptance cutoff never match.
	kps[0].Desc, kps[1].Desc = descBits(61), descBits(80)
	if got := s.matchByProjection(kps, []Descriptor{descBits(0)}, pts); len(got) != 0 {
		t.Fatalf("matches = %v, want none at distance >= 61", got)
	}
}

func TestMatchByProjectionUsedKeypointExclusivity(t *testing.T) {
	s := matchTestSystem()
	// Two map points projecting into the same window around one good
	// keypoint: the first point (map-point order) claims it, the second must
	// fall back to the worse keypoint rather than double-booking.
	kps := []Keypoint{
		{X: 100, Y: 100, Desc: descBits(0)},
		{X: 103, Y: 100, Desc: descBits(5)},
	}
	descs := []Descriptor{descBits(0), descBits(0)}
	pts := []mathx.Vec3{
		worldAt(s.Cam, 101, 100, 2),
		worldAt(s.Cam, 101, 100, 2.5),
	}
	got := s.matchByProjection(kps, descs, pts)
	want := [][2]int{{0, 0}, {1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matches = %v, want %v (used keypoints are exclusive)", got, want)
	}
	// With only the one keypoint, the second point must go unmatched.
	got = s.matchByProjection(kps[:1], descs, pts)
	want = [][2]int{{0, 0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matches = %v, want %v (no double-booking)", got, want)
	}
}

func TestMatchByProjectionShuffleInvariant(t *testing.T) {
	s := matchTestSystem()
	// 24 landmarks in disjoint windows, one keypoint each: the resulting
	// keypoint→landmark pairing must not depend on map-point order.
	r := rand.New(rand.NewSource(7))
	var kps []Keypoint
	var pts []mathx.Vec3
	var descs []Descriptor
	for i := 0; i < 24; i++ {
		u := 30 + float64(i%6)*55
		v := 30 + float64(i/6)*50
		kps = append(kps, Keypoint{X: u + r.Float64()*4, Y: v - r.Float64()*4, Desc: descBits(i % 40)})
		pts = append(pts, worldAt(s.Cam, u, v, 1.5+r.Float64()*3))
		descs = append(descs, descBits(i%40))
	}
	pairing := func(pts []mathx.Vec3, descs []Descriptor) map[int]mathx.Vec3 {
		m := map[int]mathx.Vec3{}
		for _, pr := range s.matchByProjection(kps, descs, pts) {
			m[pr[0]] = pts[pr[1]]
		}
		return m
	}
	base := pairing(pts, descs)
	if len(base) != 24 {
		t.Fatalf("baseline matched %d of 24", len(base))
	}
	for trial := 0; trial < 5; trial++ {
		perm := r.Perm(len(pts))
		sp := make([]mathx.Vec3, len(pts))
		sd := make([]Descriptor, len(descs))
		for i, p := range perm {
			sp[p] = pts[i]
			sd[p] = descs[i]
		}
		if got := pairing(sp, sd); !reflect.DeepEqual(got, base) {
			t.Fatalf("trial %d: pairing changed under shuffled map-point order", trial)
		}
	}
}

// refMatchByProjection is the pre-optimization map-backed implementation,
// kept as a test oracle for the flat CSR grid.
func refMatchByProjection(s *System, kps []Keypoint, descs []Descriptor, pts []mathx.Vec3) ([][2]int, int) {
	const cell = 16
	grid := map[int][]int{}
	cw := (s.Cam.Width + cell - 1) / cell
	for i, kp := range kps {
		c := int(kp.Y)/cell*cw + int(kp.X)/cell
		grid[c] = append(grid[c], i)
	}
	used := map[int]bool{}
	var out [][2]int
	candidates := 0
	for j, pw := range pts {
		pc := s.pose.WorldToCamera(pw)
		u, v, ok := s.Cam.Project(pc)
		if !ok {
			continue
		}
		bestD, bestI := 61, -1
		cu, cv := int(u)/cell, int(v)/cell
		for cy := cv - 1; cy <= cv+1; cy++ {
			for cx := cu - 1; cx <= cu+1; cx++ {
				for _, i := range grid[cy*cw+cx] {
					if used[i] {
						continue
					}
					du, dv := kps[i].X-u, kps[i].Y-v
					if du*du+dv*dv > 100 {
						continue
					}
					candidates++
					if d := HammingDistance(kps[i].Desc, descs[j]); d < bestD {
						bestD, bestI = d, i
					}
				}
			}
		}
		if bestI >= 0 {
			used[bestI] = true
			out = append(out, [2]int{bestI, j})
		}
	}
	return out, candidates
}

func TestMatchByProjectionGridEquivalence(t *testing.T) {
	s := matchTestSystem()
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		nk, np := 5+r.Intn(120), 5+r.Intn(120)
		kps := make([]Keypoint, nk)
		for i := range kps {
			kps[i] = Keypoint{
				X:    r.Float64() * float64(s.Cam.Width),
				Y:    r.Float64() * float64(s.Cam.Height),
				Desc: Descriptor{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()},
			}
		}
		descs := make([]Descriptor, np)
		pts := make([]mathx.Vec3, np)
		for j := range pts {
			// Mostly in view, some behind or outside the frustum.
			u := r.Float64()*float64(s.Cam.Width+80) - 40
			v := r.Float64()*float64(s.Cam.Height+80) - 40
			z := 0.5 + r.Float64()*6
			if r.Intn(10) == 0 {
				z = -z
			}
			pts[j] = worldAt(s.Cam, u, v, z)
			descs[j] = Descriptor{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
		}
		wantM, wantCand := refMatchByProjection(s, kps, descs, pts)
		before := s.Stats.MatchingOps
		gotM := s.matchByProjection(kps, descs, pts)
		gotOps := s.Stats.MatchingOps - before
		if len(gotM) != len(wantM) || (len(wantM) > 0 && !reflect.DeepEqual(gotM, wantM)) {
			t.Fatalf("trial %d: flat grid matches %v != map grid %v", trial, gotM, wantM)
		}
		wantOps := uint64(np)*12 + uint64(wantCand)*16
		if gotOps != wantOps {
			t.Fatalf("trial %d: MatchingOps +%d, want %d (candidates=%d)",
				trial, gotOps, wantOps, wantCand)
		}
	}
}

func TestFuseByProjectionWindowAndBest(t *testing.T) {
	s := matchTestSystem()
	kps := []Keypoint{
		{X: 100, Y: 100, Desc: descBits(0)}, // unmatched, near points A/B
		{X: 100, Y: 105, Desc: descBits(0)}, // unmatched, 5 px away: outside 4 px window
	}
	ids := []int{10, 11}
	descs := []Descriptor{descBits(6), descBits(1)} // B is the better descriptor
	pts := []mathx.Vec3{
		worldAt(s.Cam, 101, 100, 2), // A: 1 px from kp 0
		worldAt(s.Cam, 103, 100, 3), // B: 3 px from kp 0
	}
	matched := []int{-1, -1}
	s.fuseByProjection(kps, ids, descs, pts, matched)
	if want := []int{11, -1}; !reflect.DeepEqual(matched, want) {
		t.Fatalf("fused = %v, want %v (4 px window, best descriptor)", matched, want)
	}
}

func TestFuseByProjectionExclusivity(t *testing.T) {
	s := matchTestSystem()
	// Point 20 is already matched to keypoint 0, so fusion must not hand it
	// to keypoint 1 as well; point 21 is free and nearby.
	kps := []Keypoint{
		{X: 100, Y: 100, Desc: descBits(0)},
		{X: 102, Y: 100, Desc: descBits(0)},
	}
	ids := []int{20, 21}
	descs := []Descriptor{descBits(0), descBits(3)}
	pts := []mathx.Vec3{
		worldAt(s.Cam, 101, 100, 2),
		worldAt(s.Cam, 102, 101, 2),
	}
	matched := []int{20, -1}
	s.fuseByProjection(kps, ids, descs, pts, matched)
	if want := []int{20, 21}; !reflect.DeepEqual(matched, want) {
		t.Fatalf("fused = %v, want %v (already-matched points excluded)", matched, want)
	}
}

func TestFuseByProjectionShuffleInvariant(t *testing.T) {
	s := matchTestSystem()
	r := rand.New(rand.NewSource(17))
	var kps []Keypoint
	var ids []int
	var descs []Descriptor
	var pts []mathx.Vec3
	for i := 0; i < 18; i++ {
		u := 40 + float64(i%6)*50
		v := 40 + float64(i/6)*60
		kps = append(kps, Keypoint{X: u + 1, Y: v - 1, Desc: descBits(i % 30)})
		ids = append(ids, 100+i)
		descs = append(descs, descBits(i%30))
		pts = append(pts, worldAt(s.Cam, u, v, 1+r.Float64()*4))
	}
	run := func(ids []int, descs []Descriptor, pts []mathx.Vec3) []int {
		matched := make([]int, len(kps))
		for i := range matched {
			matched[i] = -1
		}
		s.fuseByProjection(kps, ids, descs, pts, matched)
		return matched
	}
	base := run(ids, descs, pts)
	fused := 0
	for _, pid := range base {
		if pid >= 0 {
			fused++
		}
	}
	if fused != 18 {
		t.Fatalf("baseline fused %d of 18", fused)
	}
	for trial := 0; trial < 5; trial++ {
		perm := r.Perm(len(ids))
		si := make([]int, len(ids))
		sd := make([]Descriptor, len(descs))
		sp := make([]mathx.Vec3, len(pts))
		for i, p := range perm {
			si[p], sd[p], sp[p] = ids[i], descs[i], pts[i]
		}
		if got := run(si, sd, sp); !reflect.DeepEqual(got, base) {
			t.Fatalf("trial %d: fusion changed under shuffled map-point order", trial)
		}
	}
}

// TestMatchAccountingExamined pins the Stats contract of the brute-force
// matcher: MatchingOps is charged per descriptor pair actually examined
// (all |a|×|b| of them), not per accepted match.
func TestMatchAccountingExamined(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := make([]Keypoint, 13)
	b := make([]Descriptor, 29)
	for i := range a {
		a[i].Desc = Descriptor{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
	}
	for j := range b {
		b[j] = Descriptor{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
	}
	var st Stats
	Match(a, b, 64, &st)
	if want := uint64(len(a)) * uint64(len(b)) * 16; st.MatchingOps != want {
		t.Fatalf("MatchingOps = %d, want %d (= |a|*|b|*16)", st.MatchingOps, want)
	}
	st = Stats{}
	Match(nil, b, 64, &st)
	if st.MatchingOps != 0 {
		t.Fatalf("MatchingOps = %d for empty query set, want 0", st.MatchingOps)
	}
}
