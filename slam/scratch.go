package slam

import "dronedse/mathx"

// frameScratch is the System's reusable per-frame storage. Tracking runs
// every frame and used to rebuild the same map-backed grids and match/inlier
// slices each time; holding them here turns the per-frame cost into a handful
// of slice resets after the first few frames. Buffers returned to callers
// inside ProcessFrame are only valid for the current frame — everything that
// outlives the frame (keyframe observations, map points) is copied out.
//
// The scratch is owned by exactly one goroutine (the System's caller), so
// reuse does not affect the pool-size invariance of the pipeline output.
type frameScratch struct {
	// Local-map gather buffers (localMap). lmSeen is dense over point IDs —
	// the package avoids maps on hot paths entirely, because map growth
	// allocates a run-dependent number of overflow buckets (per-map hash
	// seed), which would jitter the allocs/op ledger.
	lmSeen  []bool
	lmIDs   []int
	lmDescs []Descriptor
	lmPts   []mathx.Vec3

	// Keyframe-creation buffers: matchedByKp[i] is the map-point ID tracked
	// by keypoint i (-1: none); taken is dense over point IDs.
	matchedByKp []int
	taken       []bool

	// Keypoint cell grid in CSR layout (matchByProjection): cellStart has
	// one entry per cell plus a terminator; cellKp holds keypoint indices
	// grouped by cell, each group in ascending index order; cellCur is the
	// fill cursor.
	cellStart []int32
	cellCur   []int32
	cellKp    []int32
	usedKp    []bool
	matches   [][2]int

	// Tracking buffers (ProcessFrame): matched point/pixel arrays and the
	// two-pass inlier set.
	mpts     []mathx.Vec3
	us, vs   []float64
	inlier   []bool
	ipts     []mathx.Vec3
	ius, ivs []float64

	// Projection candidates (fuseByProjection).
	projs []projCand

	// Pose-solver working set shared by the tracking passes and the loop
	// registration (all run on the System's goroutine).
	ps poseScratch
}

// projCand is a local map point projected into the current frame.
type projCand struct {
	j    int
	u, v float64
}

// grow returns buf resized to n, reallocating only when capacity is short.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}
