package slam

import (
	"math"
	"math/rand"
	"testing"

	"dronedse/mathx"
)

func TestPoseGraphNoopWhenConsistent(t *testing.T) {
	// A chain whose edges agree exactly with the positions must not move.
	positions := []mathx.Vec3{{}, {X: 1}, {X: 2}, {X: 3}}
	var edges []GraphEdge
	for i := 1; i < len(positions); i++ {
		edges = append(edges, GraphEdge{I: i - 1, J: i, Rel: mathx.V3(1, 0, 0), Weight: 1})
	}
	out := OptimizePoseGraph(positions, edges, 0)
	for i := range out {
		if out[i].Sub(positions[i]).Norm() > 1e-6 {
			t.Fatalf("consistent graph moved node %d: %v -> %v", i, positions[i], out[i])
		}
	}
}

func TestPoseGraphCorrectsDrift(t *testing.T) {
	// Ground truth: a square loop back to the origin. The odometry edges
	// carry a systematic +x drift so the estimated chain ends 1 m away;
	// a strong loop edge says "end = start". The optimizer must spread
	// the drift along the chain, pulling the end node home.
	const n = 21
	truth := make([]mathx.Vec3, n)
	for i := range truth {
		phi := 2 * math.Pi * float64(i) / float64(n-1)
		truth[i] = mathx.V3(4*math.Sin(phi), 4*(math.Cos(phi)-1), 0)
	}
	drift := mathx.V3(1.0/float64(n-1), 0, 0)
	est := make([]mathx.Vec3, n)
	est[0] = truth[0]
	var edges []GraphEdge
	for i := 1; i < n; i++ {
		rel := truth[i].Sub(truth[i-1]).Add(drift) // drifting odometry
		est[i] = est[i-1].Add(rel)
		edges = append(edges, GraphEdge{I: i - 1, J: i, Rel: rel, Weight: 1})
	}
	endErrBefore := est[n-1].Sub(truth[n-1]).Norm()
	if endErrBefore < 0.9 {
		t.Fatalf("setup: drift too small (%v)", endErrBefore)
	}
	// Loop edge: re-registration says the end coincides with the start.
	edges = append(edges, GraphEdge{I: 0, J: n - 1, Rel: mathx.Vec3{}, Weight: float64(n)})
	out := OptimizePoseGraph(est, edges, 0)
	endErrAfter := out[n-1].Sub(truth[n-1]).Norm()
	if endErrAfter > 0.15 {
		t.Errorf("loop closure left %v m of end error (was %v)", endErrAfter, endErrBefore)
	}
	// Mid-chain nodes improve too (drift spread, not dumped on the end).
	mid := n / 2
	before := est[mid].Sub(truth[mid]).Norm()
	after := out[mid].Sub(truth[mid]).Norm()
	if after > before {
		t.Errorf("mid-chain error grew: %v -> %v", before, after)
	}
	// The fixed node stays fixed.
	if out[0].Sub(est[0]).Norm() > 1e-3 {
		t.Errorf("gauge node moved by %v", out[0].Sub(est[0]).Norm())
	}
}

func TestPoseGraphDegenerateInputs(t *testing.T) {
	if out := OptimizePoseGraph(nil, nil, 0); len(out) != 0 {
		t.Error("empty graph produced output")
	}
	pos := []mathx.Vec3{{X: 1}, {X: 2}}
	if out := OptimizePoseGraph(pos, nil, 0); out[1] != pos[1] {
		t.Error("edgeless graph moved nodes")
	}
	// Bad fixed index: input returned unchanged.
	edges := []GraphEdge{{I: 0, J: 1, Rel: mathx.V3(1, 0, 0)}}
	if out := OptimizePoseGraph(pos, edges, 99); out[0] != pos[0] {
		t.Error("bad gauge index mutated nodes")
	}
	// Out-of-range and self edges are skipped, not fatal.
	weird := []GraphEdge{{I: -1, J: 5, Rel: mathx.V3(1, 0, 0)}, {I: 1, J: 1}}
	OptimizePoseGraph(pos, weird, 0)
}

func TestPoseGraphIsolatedNodesStayPut(t *testing.T) {
	pos := []mathx.Vec3{{}, {X: 1}, {X: 50, Y: 9, Z: -2}} // node 2 unconstrained
	edges := []GraphEdge{{I: 0, J: 1, Rel: mathx.V3(1, 0, 0), Weight: 1}}
	out := OptimizePoseGraph(pos, edges, 0)
	if out[2].Sub(pos[2]).Norm() > 1e-3 {
		t.Errorf("isolated node drifted: %v", out[2])
	}
}

func TestPoseGraphRandomConsistency(t *testing.T) {
	// Property: consistent random chains (edges = exact differences)
	// never move, whatever the geometry.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(30)
		pos := make([]mathx.Vec3, n)
		for i := range pos {
			pos[i] = mathx.V3(r.NormFloat64()*5, r.NormFloat64()*5, r.NormFloat64())
		}
		var edges []GraphEdge
		for i := 1; i < n; i++ {
			edges = append(edges, GraphEdge{I: i - 1, J: i, Rel: pos[i].Sub(pos[i-1]), Weight: 0.5 + r.Float64()})
		}
		// A consistent extra chord.
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			edges = append(edges, GraphEdge{I: a, J: b, Rel: pos[b].Sub(pos[a]), Weight: 2})
		}
		out := OptimizePoseGraph(pos, edges, 0)
		for i := range out {
			if out[i].Sub(pos[i]).Norm() > 1e-5 {
				t.Fatalf("trial %d: consistent graph moved node %d by %v",
					trial, i, out[i].Sub(pos[i]).Norm())
			}
		}
	}
}
