# Build/CI entry points. `make ci` is the gate every PR must pass: vet,
# build, the full test suite under the race detector (mandatory now that the
# parallelx worker pools and the Resolve memoization cache share state
# across goroutines), and a short benchmark smoke run.

GO ?= go

.PHONY: all build vet test race bench-smoke bench-slam bench-fault bench-batch bench-json smoke-cmds ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchmark smoke: exercises the pool-variant benchmarks without the
# slow full-suite runs (SLAM/figure regeneration benchmarks stay opt-in).
bench-smoke:
	$(GO) test ./core/ -run '^$$' -bench 'BenchmarkResolve|BenchmarkSweepCapacity|BenchmarkBestConfig' -benchtime 10x
	$(GO) test ./parallelx/ -run '^$$' -bench . -benchtime 10x 2>/dev/null || true

# SLAM front-end kernel smoke: one quick pass over the tracking hot paths
# (detection, projection matching, local BA, full sequence) so kernel
# regressions surface in CI without the full benchmark suite.
bench-slam:
	$(GO) test ./slam/ -run '^$$' -bench 'BenchmarkDetect|BenchmarkMatchByProjection|BenchmarkBundleAdjustLocal' -benchtime 5x

# Fault-campaign smoke: the faultx acceptance tests (pool-invariance,
# severe-scenario degradation, fault-free bit-identity) under the race
# detector, plus a two-scenario CLI campaign, so fault-injection regressions
# surface in CI.
bench-fault:
	$(GO) test -race ./faultx/ -run 'TestCampaignPoolInvariance|TestSevereScenario|TestFaultFreeBitIdentical'
	$(GO) run ./cmd/faultcamp -procs 2 -seconds 120 >/dev/null

# Batch-engine smoke: the batch↔serial bit-identity property tests (batch
# 1/8/64 × pools 1/2/8) under the race detector, plus the alloc-regression
# guard that fails if a steady-state batched step allocates at all.
bench-batch:
	$(GO) test -race ./scenario/ -run 'TestBatchSerialBitIdentity|TestBatchTickGranularityInvariance|TestBatchLaneErrorIsolation'
	$(GO) test ./scenario/ -run TestBatchZeroAllocSteadyState

# Perf trajectory artifact: BENCH_core.json (ns/op, allocs/op per pool size).
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_core.json

# End-to-end command smoke: build and briefly run every cmd binary and every
# example, so a refactor that compiles but breaks a tool's wiring (all of
# them now build their stacks through the scenario engine) fails CI, not the
# first user.
smoke-cmds:
	$(GO) build ./cmd/... ./examples/...
	$(GO) run ./cmd/dse >/dev/null
	$(GO) run ./cmd/flysim -seed 1 >/dev/null
	$(GO) run ./cmd/faultcamp -procs 2 -seconds 120 >/dev/null
	$(GO) run ./cmd/figures -fig 10 -procs 2 >/dev/null
	$(GO) run ./cmd/perfstat -iters 2000 >/dev/null
	$(GO) run ./cmd/slambench -seqs 1 -procs 2 >/dev/null
	$(GO) run ./cmd/benchjson -quick -o - >/dev/null
	$(GO) run ./examples/quickstart >/dev/null
	$(GO) run ./examples/design_sweep >/dev/null
	$(GO) run ./examples/mission_flight >/dev/null
	$(GO) run ./examples/obstacle_avoidance >/dev/null
	$(GO) run ./examples/fleet_batch >/dev/null
	$(GO) run ./examples/slam_offload >/dev/null

ci: vet build race bench-smoke bench-slam bench-fault bench-batch smoke-cmds
