# Build/CI entry points. `make ci` is the gate every PR must pass: format
# check, vet, build, the full test suite under the race detector (mandatory
# now that the parallelx worker pools and the Resolve memoization cache share
# state across goroutines), the benchmark smokes, and the command smokes.
#
# The gate is split so CI can fan the slow halves out as parallel jobs
# (.github/workflows/ci.yml) while one `make ci` still runs everything
# locally:
#
#   ci-quick   fmt-check + vet + build + test — the fast inner loop
#   race       the full suite under the race detector
#   ci-bench   the benchmark smokes (core, SLAM, fault, batch, workloads,
#              roofline)
#              plus the BENCH_core.json ns/op regression guard
#   ci-smoke   the end-to-end command smokes, including the fleetd pipeline
#              and the crash/recovery chaos harness (scripts/fleet_chaos.sh)
#   vuln       govulncheck, when installed (CI installs it; locally it is
#              skipped with a notice rather than failed)

GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet vet-failpoint test test-failpoint race fmt-check vuln bench-smoke bench-slam bench-fault bench-batch bench-workloads bench-json bench-roofline bench-guard smoke-cmds ci-quick ci-bench ci-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The failpoint build tag swaps in the chaos-injection crash hooks; both
# halves of the tagged pair must stay vet-clean or the chaos harness rots.
vet-failpoint:
	$(GO) vet -tags failpoint ./...

# Fail on any file gofmt would rewrite, listing the offenders.
fmt-check:
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Known-vulnerability scan. govulncheck is not vendored; CI installs it,
# local runs without it skip rather than fail.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vuln: govulncheck not installed, skipping"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchmark smoke: exercises the pool-variant benchmarks without the
# slow full-suite runs (SLAM/figure regeneration benchmarks stay opt-in).
bench-smoke:
	$(GO) test ./core/ -run '^$$' -bench 'BenchmarkResolve|BenchmarkSweepCapacity|BenchmarkBestConfig' -benchtime 10x
	$(GO) test ./parallelx/ -run '^$$' -bench . -benchtime 10x 2>/dev/null || true

# SLAM front-end kernel smoke: one quick pass over the tracking hot paths
# (detection, projection matching, local BA, full sequence) so kernel
# regressions surface in CI without the full benchmark suite.
bench-slam:
	$(GO) test ./slam/ -run '^$$' -bench 'BenchmarkDetect|BenchmarkMatchByProjection|BenchmarkBundleAdjustLocal' -benchtime 5x

# Fault-campaign smoke: the faultx acceptance tests (pool-invariance,
# severe-scenario degradation, fault-free bit-identity) under the race
# detector, plus a two-scenario CLI campaign, so fault-injection regressions
# surface in CI.
bench-fault:
	$(GO) test -race ./faultx/ -run 'TestCampaignPoolInvariance|TestSevereScenario|TestFaultFreeBitIdentical'
	$(GO) run ./cmd/faultcamp -procs 2 -seconds 120 >/dev/null

# Batch-engine smoke: the batch↔serial bit-identity property tests (batch
# 1/8/64 × pools 1/2/8) under the race detector, plus the alloc-regression
# guard that fails if a steady-state batched step allocates at all.
bench-batch:
	$(GO) test -race ./scenario/ -run 'TestBatchSerialBitIdentity|TestBatchTickGranularityInvariance|TestBatchLaneErrorIsolation'
	$(GO) test ./scenario/ -run TestBatchZeroAllocSteadyState

# Workload-layer smoke: the pluggable-workload acceptance tests — wire
# round-trips, per-workload golden digests at several batch/pool shapes, the
# mixed-co-tenant bit-identity property, and the zero-alloc guard over every
# workload kind — under the race detector, plus a delivery flight through the
# CLI so the payload-mass path stays wired end to end.
bench-workloads:
	$(GO) test -race ./mission/ ./scenario/ -run 'TestWorkload|TestLawnmower|TestTargetModel'
	$(GO) test -race ./fleet/ -run 'TestWorkloadRoundTrip|TestSubmitValidation'
	$(GO) run ./cmd/flysim -workload delivery -seconds 120 >/dev/null

# Perf trajectory artifact: BENCH_core.json (ns/op, allocs/op per pool size,
# plus the per-kernel roofline placements).
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_core.json

# Roofline smoke: the arithmetic-intensity ledgers and roof placements must be
# bit-identical across pool sizes (golden + completeness tests), and the
# generator itself must run clean.
bench-roofline:
	$(GO) test ./roofline/ ./cmd/roofline/
	$(GO) run ./cmd/roofline -procs 2 -nofig >/dev/null

# Perf-regression gate: re-measure the quick kernel suite and compare ns/op
# against the committed BENCH_core.json baseline (fail beyond +25%). The quick
# suite skips the slow full-sequence rows, which are skipped by name match.
# Re-baseline deliberately with `make bench-json` and commit the diff.
bench-guard:
	$(GO) run ./cmd/benchjson -quick -o /tmp/bench_guard_new.json
	$(GO) run ./cmd/benchguard -new /tmp/bench_guard_new.json

# End-to-end command smoke: build and briefly run every cmd binary and every
# example, so a refactor that compiles but breaks a tool's wiring (all of
# them now build their stacks through the scenario engine) fails CI, not the
# first user.
smoke-cmds:
	$(GO) build ./cmd/... ./examples/...
	$(GO) run ./cmd/dse >/dev/null
	$(GO) run ./cmd/flysim -seed 1 >/dev/null
	$(GO) run ./cmd/faultcamp -procs 2 -seconds 120 >/dev/null
	$(GO) run ./cmd/figures -fig 10 -procs 2 >/dev/null
	$(GO) run ./cmd/perfstat -iters 2000 >/dev/null
	$(GO) run ./cmd/slambench -seqs 1 -procs 2 >/dev/null
	$(GO) run ./cmd/benchjson -quick -o - >/dev/null
	$(GO) run ./examples/quickstart >/dev/null
	$(GO) run ./examples/design_sweep >/dev/null
	$(GO) run ./examples/mission_flight >/dev/null
	$(GO) run ./examples/obstacle_avoidance >/dev/null
	$(GO) run ./examples/fleet_batch >/dev/null
	$(GO) run ./examples/slam_offload >/dev/null
	sh scripts/fleet_smoke.sh
	sh scripts/fleet_chaos.sh

# The crash-window property tests that need the failpoint hooks compiled in.
test-failpoint:
	$(GO) test -tags failpoint -run 'TestCrash' ./fleet/

ci-quick: fmt-check vet vet-failpoint build test

ci-bench: bench-smoke bench-slam bench-fault bench-batch bench-workloads bench-roofline bench-guard

ci-smoke: test-failpoint smoke-cmds

ci: fmt-check vet vet-failpoint build race ci-bench ci-smoke
