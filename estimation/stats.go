package estimation

// EKFStats is the estimation work ledger, following the slam.Stats
// accounting contract: each kernel charges a deterministic, leading-order
// flop count for the work actually performed on its inputs, so the platform
// retiming and roofline models see a workload that is a pure function of
// the input stream — never of scheduling, pool size, or data layout. The
// counts are analytic (derived from the state dimension n=6 and the
// measurement dimension m), so scratch reuse and other pure data-structure
// optimizations leave the ledger bit-identical.
type EKFStats struct {
	// PredictOps accumulates the covariance-propagation work (F P Fᵀ + Q).
	PredictOps uint64
	// UpdateOps accumulates the measurement-update work (gain solve and
	// covariance correction), charged per attempted update.
	UpdateOps uint64

	Predicts int
	Updates  int
}

// TotalOps sums both kernels.
func (s EKFStats) TotalOps() uint64 { return s.PredictOps + s.UpdateOps }

// ekfPredictOps is the leading-order flop count of one Predict with state
// dimension 6: two 6x6 matrix products for F P Fᵀ (2·2·6³), the Q add and
// the symmetrize (2·6²), and the state propagation (4·3).
const ekfPredictOps = 2*2*6*6*6 + 2*6*6 + 4*3

// ekfUpdateOps is the leading-order flop count of one update with an
// m-dimensional measurement: the m³ Cholesky factorization of S, six
// triangular solves for the gain rows (2·6·m²), the innovation/state/KH
// applications (≈24·m), and the (I−KH)P covariance product plus symmetrize
// (2·6³ + 2·6²).
func ekfUpdateOps(m int) uint64 {
	return uint64(m*m*m + 12*m*m + 24*m + 2*6*6*6 + 2*6*6)
}
