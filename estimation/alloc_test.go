package estimation

import (
	"testing"

	"dronedse/mathx"
	"dronedse/sensors"
)

// TestPosVelEKFZeroAllocSteadyState pins the satellite requirement of ISSUE 6:
// after construction, Predict and every update path must run without touching
// the heap — the filter's algebra lives entirely in its scratch arena.
func TestPosVelEKFZeroAllocSteadyState(t *testing.T) {
	k := NewPosVelEKF()
	accel := mathx.V3(0.1, -0.2, 9.75)
	fix := sensors.GPSSample{Pos: mathx.V3(1, 2, 3), Vel: mathx.V3(0.1, 0.2, 0.3)}
	// Warm once so any lazy caching (F/Q for this dt) happens outside the
	// measured region.
	k.Predict(accel, 1.0/200)
	k.UpdateGPS(fix, 1.5, 0.3)
	k.UpdateBaro(3.1, 0.4)

	if n := testing.AllocsPerRun(200, func() {
		k.Predict(accel, 1.0/200)
	}); n != 0 {
		t.Fatalf("Predict allocates %.1f objects per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		k.UpdateGPS(fix, 1.5, 0.3)
	}); n != 0 {
		t.Fatalf("UpdateGPS allocates %.1f objects per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		k.UpdateBaro(3.1, 0.4)
	}); n != 0 {
		t.Fatalf("UpdateBaro allocates %.1f objects per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		k.Predict(accel, 1.0/200)
		k.UpdateGPS(fix, 1.5, 0.3)
		k.UpdateBaro(3.1, 0.4)
	}); n != 0 {
		t.Fatalf("full predict/update cycle allocates %.1f objects, want 0", n)
	}
}

// TestEstimatorZeroAllocSteadyState extends the guarantee to the composed
// attitude + position estimator driven the way Autopilot.Step drives it.
func TestEstimatorZeroAllocSteadyState(t *testing.T) {
	e := NewEstimator()
	imu := sensors.IMUSample{Accel: mathx.V3(0.05, 0.02, 9.79), Gyro: mathx.V3(0.01, -0.02, 0.005)}
	fix := sensors.GPSSample{Pos: mathx.V3(0.4, -0.2, 5), Vel: mathx.V3(0, 0, 0.1)}
	e.OnIMU(imu, 1.0/200)
	e.OnGPS(fix)
	e.OnBaro(5.05)
	e.OnMag(0.02, 1.0/10)

	if n := testing.AllocsPerRun(200, func() {
		e.OnIMU(imu, 1.0/200)
		e.OnGPS(fix)
		e.OnBaro(5.05)
		e.OnMag(0.02, 1.0/10)
	}); n != 0 {
		t.Fatalf("estimator step cycle allocates %.1f objects, want 0", n)
	}
	// Coasting through a GPS outage must also stay heap-free.
	e.DeclareOutage(sensors.SensorGPS, true)
	e.OnIMU(imu, 1.0/200)
	if n := testing.AllocsPerRun(200, func() {
		e.OnIMU(imu, 1.0/200)
		e.OnGPS(fix)
	}); n != 0 {
		t.Fatalf("coasting step allocates %.1f objects, want 0", n)
	}
}
