package estimation

import (
	"testing"

	"dronedse/mathx"
	"dronedse/sensors"
	"dronedse/units"
)

// TestGPSDenialCoastAndRecover is the graceful-degradation contract, table
// driven over denial lengths: while a GPS outage is declared the estimator
// must refuse GPS, grow its uncertainty monotonically at a rate covering
// the real dead-reckoning drift (bounded, not exploding), and once GPS
// returns it must re-converge within a fixed horizon.
//
// The synthetic truth is a hover at the origin; an uncorrected 0.35 m/s²
// accelerometer bias plays the attitude error that makes real coasting
// drift quadratically.
func TestGPSDenialCoastAndRecover(t *testing.T) {
	cases := []struct {
		name    string
		denialS float64
	}{
		{"short-2s", 2},
		{"medium-5s", 5},
		{"long-10s", 10},
	}
	const (
		dt       = 1.0 / 200
		denStart = 5.0
		recoverS = 2.0
	)
	bias := mathx.V3(0.25, -0.25, 0) // |bias| ≈ 0.35 m/s²
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEstimator()
			denEnd := denStart + tc.denialS
			endT := denEnd + recoverS
			prevUnc, maxCoastErr, uncAtDenialEnd := 0.0, 0.0, 0.0
			rejectedBefore := 0
			for step := 0; float64(step)*dt < endT; step++ {
				now := float64(step) * dt
				denied := now >= denStart && now < denEnd
				if denied != e.OutageActive(sensors.SensorGPS) {
					e.DeclareOutage(sensors.SensorGPS, denied)
					if denied {
						prevUnc = 0
						rejectedBefore = e.Rejected
					} else {
						uncAtDenialEnd = e.Pos.PositionUncertainty()
					}
				}
				accel := mathx.V3(0, 0, units.Gravity)
				if denied {
					accel = accel.Add(bias) // uncorrected error while coasting
				}
				e.OnIMU(sensors.IMUSample{Accel: accel}, dt)
				if step%20 == 0 { // 10 Hz GPS at the origin, denied or not
					e.OnGPS(sensors.GPSSample{})
				}
				if step%10 == 0 { // 20 Hz baro
					e.OnBaro(0)
				}
				if denied {
					unc := e.Pos.PositionUncertainty()
					if unc < prevUnc-1e-9 {
						t.Fatalf("uncertainty shrank while coasting at t=%.2f: %v -> %v", now, prevUnc, unc)
					}
					prevUnc = unc
					if errM := e.Pos.Position().Norm(); errM > maxCoastErr {
						maxCoastErr = errM
					}
				}
			}
			// GPS during the declared outage must be refused, and counted.
			if e.Rejected == rejectedBefore {
				t.Error("no GPS measurements were rejected during the declared outage")
			}
			// Coast error stays inside the drift envelope: 0.5·a·t² for
			// the injected bias, doubled for transient margin.
			bound := 0.5 * 0.35 * tc.denialS * tc.denialS * 2
			if bound < 1 {
				bound = 1
			}
			if maxCoastErr > bound {
				t.Errorf("coast error %.2f m exceeds drift envelope %.2f m", maxCoastErr, bound)
			}
			// The uncertainty signal must have covered a meaningful share
			// of the worst real error — it is the failsafe's health input.
			if uncAtDenialEnd < maxCoastErr/4 {
				t.Errorf("uncertainty %.2f m dishonestly small against %.2f m real error",
					uncAtDenialEnd, maxCoastErr)
			}
			// Re-convergence: after recoverS of restored GPS the estimate
			// must be back at the truth with confidence restored.
			if errM := e.Pos.Position().Norm(); errM > 0.5 {
				t.Errorf("position error %.2f m after %.0f s of restored GPS", errM, recoverS)
			}
			if unc := e.Pos.PositionUncertainty(); unc > uncAtDenialEnd/2 || unc > 2 {
				t.Errorf("uncertainty %.2f m did not re-converge (was %.2f m)", unc, uncAtDenialEnd)
			}
		})
	}
}
