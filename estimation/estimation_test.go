package estimation

import (
	"math"
	"testing"

	"dronedse/mathx"
	"dronedse/sensors"
	"dronedse/sim"
	"dronedse/units"
)

func TestAttitudeFilterConvergesFromWrongInit(t *testing.T) {
	truth := sim.State{Att: mathx.QuatFromEuler(0.2, -0.1, 0.8)}
	imu := sensors.NewIMU(200, 1)
	mag := sensors.NewMagnetometer(10, 2)
	f := NewAttitudeFilter()
	dt := 1.0 / 200
	for i := 0; i < 200*40; i++ {
		s := imu.Sample(truth, mathx.Vec3{})
		f.PredictGyro(s.Gyro, dt)
		f.CorrectAccel(s.Accel, dt)
		if i%20 == 0 {
			f.CorrectYaw(mag.SampleYaw(truth), dt*20)
		}
	}
	if errDeg := units.RadToDeg(f.Attitude().AngleTo(truth.Att)); errDeg > 3 {
		t.Errorf("attitude error after 40 s = %.2f deg", errDeg)
	}
}

func TestAttitudeFilterTracksRotation(t *testing.T) {
	f := NewAttitudeFilter()
	dt := 1.0 / 200
	truthAtt := mathx.QuatIdentity()
	omega := mathx.V3(0, 0, 0.5)
	for i := 0; i < 200*4; i++ {
		truthAtt = truthAtt.Integrate(omega, dt)
		f.PredictGyro(omega, dt) // noiseless gyro
	}
	if err := f.Attitude().AngleTo(truthAtt); err > 0.01 {
		t.Errorf("gyro-only tracking error = %v rad", err)
	}
}

func TestAccelCorrectionGatedDuringManeuvers(t *testing.T) {
	f := NewAttitudeFilter()
	before := f.Attitude()
	// 3g specific force: must be ignored (not gravity).
	f.CorrectAccel(mathx.V3(3*units.Gravity, 0, 0), 0.1)
	if f.Attitude() != before {
		t.Error("accel correction applied during a 3g maneuver")
	}
}

func TestWrapAngle(t *testing.T) {
	if got := wrapAngle(3 * math.Pi); math.Abs(got-math.Pi) > 1e-9 {
		t.Errorf("wrapAngle(3pi) = %v", got)
	}
	if got := wrapAngle(-3 * math.Pi); math.Abs(got+math.Pi) > 1e-9 {
		t.Errorf("wrapAngle(-3pi) = %v", got)
	}
}

func TestEKFStaticConvergence(t *testing.T) {
	est := NewEstimator()
	imu := sensors.NewIMU(200, 1)
	gps := sensors.NewGPS(5, 3)
	baro := sensors.NewBarometer(15, 4)
	truth := sim.State{Pos: mathx.V3(3, -2, 7), Att: mathx.QuatIdentity()}
	dt := 1.0 / 200
	tm := 0.0
	for i := 0; i < 200*30; i++ {
		tm += dt
		est.OnIMU(imu.Sample(truth, mathx.Vec3{}), dt)
		if gps.Due(tm) {
			est.OnGPS(gps.Sample(truth))
		}
		if baro.Due(tm) {
			est.OnBaro(baro.SampleAltitude(truth))
		}
	}
	if err := est.Pos.Position().Sub(truth.Pos).Norm(); err > 0.5 {
		t.Errorf("static position error = %v m", err)
	}
	if v := est.Pos.Velocity().Norm(); v > 0.15 {
		t.Errorf("static velocity estimate = %v m/s", v)
	}
}

func TestEKFCovarianceShrinks(t *testing.T) {
	k := NewPosVelEKF()
	before := k.Covariance().At(0, 0)
	k.UpdateGPS(sensors.GPSSample{Pos: mathx.V3(1, 2, 3)}, 0.8, 0.1)
	after := k.Covariance().At(0, 0)
	if after >= before {
		t.Errorf("covariance did not shrink on update: %v -> %v", before, after)
	}
}

func TestEKFPredictGrowsUncertainty(t *testing.T) {
	k := NewPosVelEKF()
	k.UpdateGPS(sensors.GPSSample{}, 0.8, 0.1) // tighten first
	before := k.Covariance().At(0, 0)
	for i := 0; i < 100; i++ {
		k.Predict(mathx.Vec3{}, 0.01)
	}
	if k.Covariance().At(0, 0) <= before {
		t.Error("dead-reckoning must grow position uncertainty")
	}
	// zero-dt predict is a no-op
	c := k.Covariance().At(0, 0)
	k.Predict(mathx.Vec3{}, 0)
	if k.Covariance().At(0, 0) != c {
		t.Error("zero-dt predict changed covariance")
	}
}

func TestEKFTracksConstantVelocity(t *testing.T) {
	est := NewEstimator()
	imu := sensors.NewIMU(200, 2)
	gps := sensors.NewGPS(5, 5)
	dt := 1.0 / 200
	tm := 0.0
	vel := mathx.V3(2, -1, 0.5)
	for i := 0; i < 200*20; i++ {
		tm += dt
		truth := sim.State{Pos: vel.Scale(tm), Vel: vel, Att: mathx.QuatIdentity()}
		est.OnIMU(imu.Sample(truth, mathx.Vec3{}), dt)
		if gps.Due(tm) {
			est.OnGPS(gps.Sample(truth))
		}
	}
	if err := est.Pos.Velocity().Sub(vel).Norm(); err > 0.2 {
		t.Errorf("velocity error = %v m/s", err)
	}
	if err := est.Pos.Position().Sub(vel.Scale(tm)).Norm(); err > 1.0 {
		t.Errorf("position error = %v m", err)
	}
}

func TestEKFBaroOnlyFixesAltitude(t *testing.T) {
	k := NewPosVelEKF()
	for i := 0; i < 100; i++ {
		k.UpdateBaro(9, 0.15)
	}
	if math.Abs(k.Position().Z-9) > 0.2 {
		t.Errorf("baro-only altitude = %v, want ~9", k.Position().Z)
	}
	if math.Abs(k.Position().X) > 1e-9 {
		t.Error("baro update must not touch horizontal position")
	}
}

// TestEKFFullStackInFlight closes the loop: the estimator running on the
// Table 2a sensor suite against the real simulated plant keeps its error
// bounded during a hover.
func TestEKFFullStackInFlight(t *testing.T) {
	q, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	q.Teleport(mathx.V3(0, 0, 8))
	h := q.HoverThrustPerMotorN()
	q.CommandThrusts([4]float64{h, h, h, h})
	suite := sensors.NewSuite(11)
	est := NewEstimator()
	est.Pos.UpdateGPS(sensors.GPSSample{Pos: mathx.V3(0, 0, 8)}, 0.1, 0.1) // init fix
	prevVel := q.State().Vel
	dt := 1e-3
	worst := 0.0
	for i := 0; i < 15000; i++ {
		q.Step(dt)
		s := q.State()
		now := q.Time()
		accel := s.Vel.Sub(prevVel).Scale(1 / dt)
		prevVel = s.Vel
		if suite.IMU.Due(now) {
			est.OnIMU(suite.IMU.Sample(s, accel), 1/suite.IMU.RateHz)
		}
		if suite.GPS.Due(now) {
			est.OnGPS(suite.GPS.Sample(s))
		}
		if suite.Baro.Due(now) {
			est.OnBaro(suite.Baro.SampleAltitude(s))
		}
		if suite.Mag.Due(now) {
			est.OnMag(suite.Mag.SampleYaw(s), 1/suite.Mag.RateHz)
		}
		if i > 5000 { // after convergence
			if e := est.Pos.Position().Sub(s.Pos).Norm(); e > worst {
				worst = e
			}
		}
	}
	if worst > 1.0 {
		t.Errorf("worst in-flight estimation error = %v m", worst)
	}
}
