package estimation

import (
	"testing"

	"dronedse/mathx"
	"dronedse/sensors"
	"dronedse/sim"
)

// converge runs the gated filter on clean static measurements.
func convergeGated(g *GatedEKF, truth sim.State, seconds float64) {
	imu := sensors.NewIMU(200, 1)
	gps := sensors.NewGPS(5, 2)
	baro := sensors.NewBarometer(15, 3)
	dt := 1.0 / 200
	tm := 0.0
	for i := 0; i < int(seconds*200); i++ {
		tm += dt
		s := imu.Sample(truth, mathx.Vec3{})
		accel := mathx.QuatIdentity().Rotate(s.Accel).Sub(mathx.V3(0, 0, 9.80665))
		g.Predict(accel, dt)
		if gps.Due(tm) {
			g.UpdateGPS(gps.Sample(truth), 0.8, 0.1)
		}
		if baro.Due(tm) {
			g.UpdateBaro(baro.SampleAltitude(truth), 0.15)
		}
	}
}

func TestGateAcceptsCleanMeasurements(t *testing.T) {
	g := NewGatedEKF()
	truth := sim.State{Pos: mathx.V3(2, 1, 6), Att: mathx.QuatIdentity()}
	convergeGated(g, truth, 20)
	if g.Accepted == 0 {
		t.Fatal("no measurements accepted")
	}
	if frac := float64(g.Rejected) / float64(g.Accepted+g.Rejected); frac > 0.02 {
		t.Errorf("rejected %.1f%% of clean measurements", 100*frac)
	}
	if err := g.Position().Sub(truth.Pos).Norm(); err > 0.5 {
		t.Errorf("converged error %v m", err)
	}
}

func TestGateRejectsGPSGlitch(t *testing.T) {
	g := NewGatedEKF()
	truth := sim.State{Pos: mathx.V3(2, 1, 6), Att: mathx.QuatIdentity()}
	convergeGated(g, truth, 20)
	before := g.Position()

	// A 60 m multipath jump: must be rejected wholesale.
	gps := sensors.NewGPS(5, 9)
	rejectedBefore := g.Rejected
	g.UpdateGPS(GlitchGPS(gps.Sample(truth), 60), 0.8, 0.1)
	if g.Rejected != rejectedBefore+1 {
		t.Fatal("glitch not rejected")
	}
	if moved := g.Position().Sub(before).Norm(); moved > 1e-9 {
		t.Errorf("rejected glitch still moved the estimate by %v m", moved)
	}

	// The ungated filter swallows the same glitch.
	plain := NewPosVelEKF()
	for i := 0; i < 50; i++ {
		plain.UpdateGPS(sensors.GPSSample{Pos: truth.Pos}, 0.8, 0.1)
	}
	beforePlain := plain.Position()
	plain.UpdateGPS(GlitchGPS(sensors.GPSSample{Pos: truth.Pos}, 60), 0.8, 0.1)
	if plain.Position().Sub(beforePlain).Norm() < 1 {
		t.Error("control case broken: ungated filter should jump")
	}
}

func TestGateRecoversAfterRealJump(t *testing.T) {
	// If the vehicle REALLY moved (gate keeps rejecting), dead-reckoning
	// grows the covariance until the gate re-opens — the filter must not
	// lock out reality forever.
	g := NewGatedEKF()
	truth := sim.State{Pos: mathx.V3(0, 0, 5), Att: mathx.QuatIdentity()}
	convergeGated(g, truth, 20)

	moved := sensors.GPSSample{Pos: mathx.V3(40, 0, 5)}
	reaccepted := false
	for i := 0; i < 4000 && !reaccepted; i++ {
		g.Predict(mathx.Vec3{}, 0.02) // uncertainty grows
		before := g.Accepted
		g.UpdateGPS(moved, 0.8, 0.1)
		reaccepted = g.Accepted > before
	}
	if !reaccepted {
		t.Fatal("gate never re-opened after a sustained position change")
	}
}

func TestGPSDropoutDriftBounded(t *testing.T) {
	// GPS out for 30 s: the baro keeps altitude honest while horizontal
	// uncertainty grows — and the uncertainty signal must reflect it.
	g := NewGatedEKF()
	truth := sim.State{Pos: mathx.V3(3, -2, 8), Att: mathx.QuatIdentity()}
	convergeGated(g, truth, 20)
	sigmaBefore := g.PositionUncertainty()

	imu := sensors.NewIMU(200, 4)
	baro := sensors.NewBarometer(15, 5)
	dt := 1.0 / 200
	tm := 0.0
	for i := 0; i < 200*30; i++ {
		tm += dt
		s := imu.Sample(truth, mathx.Vec3{})
		accel := mathx.QuatIdentity().Rotate(s.Accel).Sub(mathx.V3(0, 0, 9.80665))
		g.Predict(accel, dt)
		if baro.Due(tm) {
			g.UpdateBaro(baro.SampleAltitude(truth), 0.15)
		}
	}
	if g.PositionUncertainty() <= sigmaBefore*2 {
		t.Errorf("horizontal uncertainty did not grow during dropout: %v -> %v",
			sigmaBefore, g.PositionUncertainty())
	}
	// Altitude stays pinned by the barometer.
	if altErr := g.Position().Z - truth.Pos.Z; altErr > 0.5 || altErr < -0.5 {
		t.Errorf("altitude drifted %v m despite the barometer", altErr)
	}
}

func TestGateDegenerate(t *testing.T) {
	g := NewGatedEKF()
	// Zero variance path must not panic or accept.
	if g.gate(0, 0, -1) && g.p.At(0, 0) <= 1 {
		t.Log("gate accepted with negative noise variance (covariance dominates)")
	}
}
