// Package estimation is the shared-libraries layer of the stack (Figure 5):
// sensor fusion producing the state estimate the inner loop controls
// against. It provides a quaternion complementary filter for attitude and a
// six-state extended Kalman filter (position + velocity) fusing IMU
// dead-reckoning with GPS and barometer — the EKF the paper names as the
// canonical shared-library algorithm.
package estimation

import (
	"math"

	"dronedse/mathx"
	"dronedse/sensors"
	"dronedse/units"
)

// AttitudeFilter is a Mahony-style quaternion complementary filter: gyro
// integration corrected toward the accelerometer gravity direction
// (roll/pitch) and the magnetometer heading (yaw), with on-line gyro-bias
// estimation driven by the accel correction (the Mahony Ki term). The low
// proportional gain keeps sustained-acceleration specific force from
// polluting the attitude; the bias integrator removes the slow gyro drift
// that low gain would otherwise leave behind.
type AttitudeFilter struct {
	// AccelGain blends the accel correction per second (small: trust gyro
	// short-term).
	AccelGain float64
	// BiasGain integrates the persistent correction into a gyro-bias
	// estimate.
	BiasGain float64
	// MagGain blends the yaw correction per second.
	MagGain float64

	q    mathx.Quat
	bias mathx.Vec3
}

// NewAttitudeFilter returns a filter initialized level.
func NewAttitudeFilter() *AttitudeFilter {
	return &AttitudeFilter{AccelGain: 0.15, BiasGain: 0.03, MagGain: 0.3, q: mathx.QuatIdentity()}
}

// PredictGyro integrates the bias-corrected body rate over dt.
func (f *AttitudeFilter) PredictGyro(gyro mathx.Vec3, dt float64) {
	f.q = f.q.Integrate(gyro.Sub(f.bias), dt)
}

// GyroBias returns the current gyro-bias estimate.
func (f *AttitudeFilter) GyroBias() mathx.Vec3 { return f.bias }

// CorrectAccel nudges roll/pitch so the measured specific force aligns with
// gravity and integrates the residual into the gyro-bias estimate. Valid
// when the vehicle is not accelerating hard; the filter gates on the
// measured norm being near g.
func (f *AttitudeFilter) CorrectAccel(accel mathx.Vec3, dt float64) {
	n := accel.Norm()
	if n < 0.5*units.Gravity || n > 1.5*units.Gravity {
		return // dynamic maneuver: accel direction is not gravity
	}
	// Gravity direction in body frame per current estimate vs measured.
	est := f.q.RotateInv(mathx.V3(0, 0, 1))
	meas := accel.Normalized()
	e := est.Cross(meas) // error rotation axis, body frame
	f.q = f.q.Integrate(e.Scale(f.AccelGain*dt).Neg(), 1).Normalized()
	// Mahony Ki: a persistent correction means the gyro is biased.
	f.bias = f.bias.Add(e.Scale(f.BiasGain * dt)).Clamp(0.05)
}

// CorrectYaw nudges the heading toward a magnetometer yaw measurement.
func (f *AttitudeFilter) CorrectYaw(yawMeas float64, dt float64) {
	_, _, yaw := f.q.Euler()
	err := wrapAngle(yawMeas - yaw)
	f.q = mathx.QuatFromAxisAngle(mathx.V3(0, 0, 1), err*f.MagGain*dt).Mul(f.q).Normalized()
}

// Attitude returns the current estimate.
func (f *AttitudeFilter) Attitude() mathx.Quat { return f.q }

func wrapAngle(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// PosVelEKF is a six-state [px py pz vx vy vz] extended Kalman filter.
// Prediction integrates the world-frame acceleration recovered from the IMU
// specific force and the attitude estimate; updates fuse GPS position,
// GPS velocity, and barometric altitude at their Table 2a rates.
//
// The filter is alloc-free in steady state: all matrix and vector scratch
// lives in one contiguous arena carved out at construction, and the constant
// prediction matrices F, F^T and Q are cached per (dt, AccelNoise). Every
// operation is the bit-exact sibling of the original allocating algebra, so
// results are unchanged while a scenario batch can step thousands of filters
// without touching the heap.
type PosVelEKF struct {
	x []float64    // state
	p *mathx.Dense // covariance

	// Stats is the filter's work ledger (see EKFStats); it only counts, so
	// reading it never perturbs the filter state.
	Stats EKFStats

	// AccelNoise is the process noise driven by accelerometer error
	// (m/s^2, 1-sigma).
	AccelNoise float64

	// Cached prediction matrices, valid for (fqDt, fqNoise).
	f, ft, q mathx.Dense
	fqDt     float64
	fqNoise  float64

	// Scratch (arena-backed): two 6x6 temporaries for P propagation, and
	// the update-path workspace sized for the largest (GPS, m=6)
	// measurement, Reshaped down for smaller ones.
	t1, t2       mathx.Dense
	s, pht       mathx.Dense // innovation covariance, P H^T
	kg, kh, imkh mathx.Dense // Kalman gain, K H, I - K H
	l            mathx.Dense // Cholesky factor of s
	innov        []float64
	row, sol, ys []float64
	zbuf, rbuf   []float64
}

// ekfArenaFloats is the arena footprint: state(6) + 12 6x6 matrices
// (covariance, F/F^T/Q cache, and the scratch set) + 4 length-6 work
// vectors + the z/r measurement buffers.
const ekfArenaFloats = 6 + 12*36 + 4*6 + 2*6

// NewPosVelEKF returns a filter at the origin with loose covariance.
func NewPosVelEKF() *PosVelEKF {
	arena := make([]float64, ekfArenaFloats)
	take := func(n int) []float64 {
		s := arena[:n:n]
		arena = arena[n:]
		return s
	}
	mat := func() mathx.Dense { return mathx.DenseOn(take(36), 6, 6) }
	k := &PosVelEKF{AccelNoise: 0.8}
	k.x = take(6)
	pm := mat()
	k.p = &pm
	k.f, k.ft, k.q = mat(), mat(), mat()
	k.t1, k.t2 = mat(), mat()
	k.s, k.pht = mat(), mat()
	k.kg, k.kh, k.imkh = mat(), mat(), mat()
	k.l = mat()
	k.innov = take(6)
	k.row, k.sol, k.ys = take(6), take(6), take(6)
	k.zbuf, k.rbuf = take(6), take(6)
	k.p.SetIdentity()
	k.p.ScaleInPlace(10)
	return k
}

// refreshFQ rebuilds the cached F, F^T and Q for the given step, using the
// exact element expressions the per-call construction used.
func (k *PosVelEKF) refreshFQ(dt float64) {
	s2 := k.AccelNoise * k.AccelNoise
	k.f.SetIdentity()
	for i := 0; i < 3; i++ {
		k.f.Set(i, 3+i, dt)
	}
	k.ft.TransposeOf(&k.f)
	k.q.Reshape(6, 6)
	for i := 0; i < 3; i++ {
		k.q.Set(i, i, 0.25*dt*dt*dt*dt*s2)
		k.q.Set(i, 3+i, 0.5*dt*dt*dt*s2)
		k.q.Set(3+i, i, 0.5*dt*dt*dt*s2)
		k.q.Set(3+i, 3+i, dt*dt*s2)
	}
	k.fqDt, k.fqNoise = dt, k.AccelNoise
}

// Predict advances the state with a world-frame acceleration over dt.
func (k *PosVelEKF) Predict(accelWorld mathx.Vec3, dt float64) {
	if dt <= 0 {
		return
	}
	k.Stats.Predicts++
	k.Stats.PredictOps += ekfPredictOps
	a := [3]float64{accelWorld.X, accelWorld.Y, accelWorld.Z}
	for i := 0; i < 3; i++ {
		k.x[i] += k.x[3+i]*dt + 0.5*a[i]*dt*dt
		k.x[3+i] += a[i] * dt
	}
	// F = [I, dt*I; 0, I]; P = F P F^T + Q
	if dt != k.fqDt || k.AccelNoise != k.fqNoise {
		k.refreshFQ(dt)
	}
	k.t1.MulOf(&k.f, k.p)
	k.t2.MulOf(&k.t1, &k.ft)
	k.p.AddOf(&k.t2, &k.q)
	k.p.Symmetrize()
}

// update applies a linear measurement z = H x + v with noise variances r.
func (k *PosVelEKF) update(idx []int, z, r []float64) {
	m := len(idx)
	k.Stats.Updates++
	k.Stats.UpdateOps += ekfUpdateOps(m)
	// S = H P H^T + R, computed directly from the indexed rows/cols.
	k.s.Reshape(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			k.s.Set(i, j, k.p.At(idx[i], idx[j]))
		}
		k.s.Addf(i, i, r[i])
	}
	// K = P H^T S^-1 — factor S once, then back-substitute per state row.
	k.pht.Reshape(6, m)
	for i := 0; i < 6; i++ {
		for j := 0; j < m; j++ {
			k.pht.Set(i, j, k.p.At(i, idx[j]))
		}
	}
	// innovation
	innov := k.innov[:m]
	for j := 0; j < m; j++ {
		innov[j] = z[j] - k.x[idx[j]]
	}
	// gain rows: for each state i, K_i = row_i(P H^T) S^-1, i.e. solve
	// S y = (P H^T)_i^T since S is symmetric. The factorization is shared
	// across rows (S does not change), which is arithmetically identical
	// to factoring per row.
	k.l.Reshape(m, m)
	if !k.s.CholeskyInto(&k.l) {
		return // measurement rejected; covariance degenerate
	}
	k.kg.Reshape(6, m)
	row, sol, ys := k.row[:m], k.sol[:m], k.ys[:m]
	for i := 0; i < 6; i++ {
		for j := 0; j < m; j++ {
			row[j] = k.pht.At(i, j)
		}
		mathx.SolveWithCholesky(&k.l, row, sol, ys)
		for j := 0; j < m; j++ {
			k.kg.Set(i, j, sol[j])
		}
	}
	// x += K innov
	for i := 0; i < 6; i++ {
		for j := 0; j < m; j++ {
			k.x[i] += k.kg.At(i, j) * innov[j]
		}
	}
	// P = (I - K H) P : (KH)_{i,l} = sum_j K_{i,j} [l == idx[j]]
	k.kh.Reshape(6, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < m; j++ {
			k.kh.Addf(i, idx[j], k.kg.At(i, j))
		}
	}
	k.imkh.SetIdentity()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			k.imkh.Addf(i, j, -k.kh.At(i, j))
		}
	}
	k.t1.MulOf(&k.imkh, k.p)
	k.p.CopyFrom(&k.t1)
	k.p.Symmetrize()
}

// Measurement index sets (package-level so updates allocate nothing).
var (
	gpsIdx  = []int{0, 1, 2, 3, 4, 5}
	baroIdx = []int{2}
)

// UpdateGPS fuses a GPS fix (position + velocity).
func (k *PosVelEKF) UpdateGPS(fix sensors.GPSSample, posStd, velStd float64) {
	z, r := k.zbuf[:6], k.rbuf[:6]
	z[0], z[1], z[2] = fix.Pos.X, fix.Pos.Y, fix.Pos.Z
	z[3], z[4], z[5] = fix.Vel.X, fix.Vel.Y, fix.Vel.Z
	r[0], r[1], r[2] = posStd*posStd, posStd*posStd, posStd*posStd*2.25
	r[3], r[4], r[5] = velStd*velStd, velStd*velStd, velStd*velStd
	k.update(gpsIdx, z, r)
}

// UpdateBaro fuses a barometric altitude.
func (k *PosVelEKF) UpdateBaro(alt float64, std float64) {
	z, r := k.zbuf[:1], k.rbuf[:1]
	z[0] = alt
	r[0] = std * std
	k.update(baroIdx, z, r)
}

// InflateCovariance scales the covariance by factor (> 1 grows the
// uncertainty). Coasting through a declared sensor outage inflates instead
// of fusing, so the filter's confidence honestly decays and the first
// post-outage measurements are accepted rather than gated away.
func (k *PosVelEKF) InflateCovariance(factor float64) {
	if factor <= 1 {
		return
	}
	k.p.ScaleInPlace(factor)
	k.p.Symmetrize()
}

// AddCoastVariance adds posVar to the horizontal position variances and
// velVar to the horizontal velocity variances. Coasting uses it to model
// the systematic dead-reckoning drift (attitude error tilting gravity into
// the horizontal) that zero-mean process noise cannot represent.
func (k *PosVelEKF) AddCoastVariance(posVar, velVar float64) {
	if posVar > 0 {
		k.p.Addf(0, 0, posVar)
		k.p.Addf(1, 1, posVar)
	}
	if velVar > 0 {
		k.p.Addf(3, 3, velVar)
		k.p.Addf(4, 4, velVar)
	}
}

// PositionUncertainty returns the 1-sigma horizontal position uncertainty —
// the health signal an autopilot failsafe watches during GPS dropouts.
func (k *PosVelEKF) PositionUncertainty() float64 {
	return math.Sqrt(math.Max(k.p.At(0, 0), k.p.At(1, 1)))
}

// Position returns the position estimate.
func (k *PosVelEKF) Position() mathx.Vec3 { return mathx.V3(k.x[0], k.x[1], k.x[2]) }

// Velocity returns the velocity estimate.
func (k *PosVelEKF) Velocity() mathx.Vec3 { return mathx.V3(k.x[3], k.x[4], k.x[5]) }

// Covariance returns a copy of the covariance matrix (tests and telemetry).
func (k *PosVelEKF) Covariance() *mathx.Dense { return k.p.Clone() }

// coastInflationPerS is the covariance growth rate applied while coasting
// through a declared outage: ~5%/s of extra uncertainty on top of the
// normal process noise, so minute-long denials do not blow the filter up
// numerically but the uncertainty signal still rises monotonically.
const coastInflationPerS = 0.05

// coastDriftAccelMS2 is the 1-sigma uncompensated horizontal acceleration
// while dead-reckoning without GPS: a degree or two of attitude error tilts
// gravity into the horizontal (g·sin 2.5° ≈ 0.4 m/s²), and nothing corrects
// it until position measurements return. The resulting 0.5·a·t² position
// drift is the dominant coasting error, so the covariance must grow at that
// rate for PositionUncertainty to be an honest failsafe signal.
const coastDriftAccelMS2 = 0.4

// Estimator couples the attitude filter and the EKF into the full fusion
// stack consumed by the autopilot.
type Estimator struct {
	Att *AttitudeFilter
	Pos *PosVelEKF

	// declared sensor outages: while set, the corresponding measurements
	// are refused (stuck samples must not be ingested) and the EKF coasts
	// with covariance inflation.
	gpsOut  bool
	baroOut bool
	magOut  bool
	// coastS is how long the GPS outage has been running (drift clock).
	coastS float64
	// Rejected counts measurements refused because of a declared outage.
	Rejected int
}

// NewEstimator builds the default estimator.
func NewEstimator() *Estimator {
	return &Estimator{Att: NewAttitudeFilter(), Pos: NewPosVelEKF()}
}

// DeclareOutage marks a sensor (sensors.SensorGPS/SensorBaro/SensorMag) as
// known-bad or recovered. While declared, the estimator coasts: it refuses
// that sensor's measurements and inflates the covariance instead, which is
// the graceful-degradation contract fault injection tests against.
func (e *Estimator) DeclareOutage(sensor string, active bool) {
	switch sensor {
	case sensors.SensorGPS:
		e.gpsOut = active
		if !active {
			e.coastS = 0
		}
	case sensors.SensorBaro:
		e.baroOut = active
	case sensors.SensorMag:
		e.magOut = active
	}
}

// OutageActive reports whether the named sensor is in a declared outage.
func (e *Estimator) OutageActive(sensor string) bool {
	switch sensor {
	case sensors.SensorGPS:
		return e.gpsOut
	case sensors.SensorBaro:
		return e.baroOut
	case sensors.SensorMag:
		return e.magOut
	}
	return false
}

// OnIMU processes one IMU sample: attitude prediction/correction plus EKF
// prediction using the specific force rotated by the attitude estimate.
func (e *Estimator) OnIMU(s sensors.IMUSample, dt float64) {
	e.Att.PredictGyro(s.Gyro, dt)
	e.Att.CorrectAccel(s.Accel, dt)
	accelWorld := e.Att.Attitude().Rotate(s.Accel).Sub(mathx.V3(0, 0, units.Gravity))
	e.Pos.Predict(accelWorld, dt)
	if e.gpsOut {
		e.Pos.InflateCovariance(1 + coastInflationPerS*dt)
		// Systematic dead-reckoning drift: std grows as 0.5·a·t² in
		// position and a·t in velocity; add the per-step variance delta.
		prev := e.coastS
		e.coastS += dt
		posStep := sq(0.5*coastDriftAccelMS2*e.coastS*e.coastS) - sq(0.5*coastDriftAccelMS2*prev*prev)
		velStep := sq(coastDriftAccelMS2*e.coastS) - sq(coastDriftAccelMS2*prev)
		e.Pos.AddCoastVariance(posStep, velStep)
	}
}

func sq(v float64) float64 { return v * v }

// OnGPS fuses a GPS fix unless a GPS outage is declared.
func (e *Estimator) OnGPS(fix sensors.GPSSample) {
	if e.gpsOut {
		e.Rejected++
		return
	}
	e.Pos.UpdateGPS(fix, 0.8, 0.1)
}

// OnBaro fuses a barometric altitude unless a barometer outage is declared.
func (e *Estimator) OnBaro(alt float64) {
	if e.baroOut {
		e.Rejected++
		return
	}
	e.Pos.UpdateBaro(alt, 0.15)
}

// OnMag fuses a magnetometer yaw unless a magnetometer outage is declared.
func (e *Estimator) OnMag(yaw float64, dt float64) {
	if e.magOut {
		e.Rejected++
		return
	}
	e.Att.CorrectYaw(yaw, dt)
}
