package estimation

import (
	"dronedse/mathx"
	"dronedse/sensors"
)

// GatedEKF wraps PosVelEKF with innovation gating: measurements whose
// normalized innovation exceeds the gate are rejected instead of fused —
// the standard defense against GPS glitches and barometer spikes that a
// fielded autopilot (ArduCopter's EKF included) relies on. Table 1 assigns
// this robustness duty to the inner loop's estimation layer.
type GatedEKF struct {
	*PosVelEKF
	// GateSigma is the rejection threshold in standard deviations
	// (typical: 4-6).
	GateSigma float64

	Accepted int
	Rejected int
}

// NewGatedEKF wraps a fresh filter with a 5-sigma gate.
func NewGatedEKF() *GatedEKF {
	return &GatedEKF{PosVelEKF: NewPosVelEKF(), GateSigma: 5}
}

// gate reports whether a scalar measurement of state index idx with noise
// variance r passes the innovation gate.
func (g *GatedEKF) gate(idx int, z, r float64) bool {
	innov := z - g.x[idx]
	s := g.p.At(idx, idx) + r
	if s <= 0 {
		return false
	}
	return innov*innov <= g.GateSigma*g.GateSigma*s
}

// UpdateGPS fuses a fix if its position innovation passes the gate on all
// three axes; a glitched fix is dropped whole (position and velocity are
// correlated in a glitch).
func (g *GatedEKF) UpdateGPS(fix sensors.GPSSample, posStd, velStd float64) {
	r := posStd * posStd
	if !g.gate(0, fix.Pos.X, r) || !g.gate(1, fix.Pos.Y, r) || !g.gate(2, fix.Pos.Z, 2.25*r) {
		g.Rejected++
		return
	}
	g.Accepted++
	g.PosVelEKF.UpdateGPS(fix, posStd, velStd)
}

// UpdateBaro fuses an altitude if it passes the gate.
func (g *GatedEKF) UpdateBaro(alt, std float64) {
	if !g.gate(2, alt, std*std) {
		g.Rejected++
		return
	}
	g.Accepted++
	g.PosVelEKF.UpdateBaro(alt, std)
}

// GlitchGPS corrupts a fix the way multipath does: a position jump of
// magnitude m in a fixed direction. Tests and failure-injection harnesses
// use it.
func GlitchGPS(fix sensors.GPSSample, m float64) sensors.GPSSample {
	fix.Pos = fix.Pos.Add(mathx.V3(m, -m/2, m/3))
	return fix
}
