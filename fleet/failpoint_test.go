//go:build failpoint

package fleet_test

import (
	"testing"

	"dronedse/fleet"
)

// Crash-window tests, compiled only under -tags failpoint. Each installs a
// hook at one of the durability protocol's crash points, panics with a
// sentinel there (the in-process stand-in for dying — the server object is
// then abandoned exactly as SIGKILL would leave it), and proves the journal
// replay on a fresh server lands every job with digests bit-identical to an
// uninterrupted baseline. The same points are exercised with real process
// death by scripts/fleet_chaos.sh via FLEET_FAILPOINT.

type crashSentinel struct{ point string }

// withCrash runs fn with a one-shot panic hook at the named failpoint and
// recovers the sentinel, failing the test if the point never fired.
func withCrash(t *testing.T, point string, fn func()) {
	t.Helper()
	fired := false
	fleet.SetFailpoint(point, func() {
		fired = true
		panic(crashSentinel{point})
	})
	defer fleet.ClearFailpoints()
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSentinel); !ok {
					panic(r)
				}
			}
		}()
		fn()
	}()
	if !fired {
		t.Fatalf("failpoint %s never fired", point)
	}
}

// TestCrashBetweenJournalAndAdmission: die after the SUBMIT fsync but
// before the jobs become visible. The ack never went out, yet the jobs are
// durable — the restart admits and flies them to baseline digests.
func TestCrashBetweenJournalAndAdmission(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 4}
	specs := coTenants(4, 510)
	want := baselineDigests(t, cfg, specs)
	dir := t.TempDir()

	s1, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	withCrash(t, "fleet/submit-journaled", func() { s1.SubmitAll(specs) })
	if len(s1.Jobs()) != 0 {
		t.Fatal("jobs became visible before the crash point")
	}

	s2, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Readmitted != len(specs) {
		t.Fatalf("re-admitted %d, want %d", rec.Readmitted, len(specs))
	}
	drive(t, s2)
	requireSameDigests(t, want, digestTable(t, s2, []uint64{1, 2, 3, 4}))
}

// TestCrashAfterHarvestBeforeDone: die after a lane is evicted but before
// its DONE record hits the journal. The outcome is lost with the process —
// the restart re-flies the job and deterministically reproduces it.
func TestCrashAfterHarvestBeforeDone(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 2}
	specs := coTenants(3, 820)
	want := baselineDigests(t, cfg, specs)
	dir := t.TempDir()

	s1, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s1.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	withCrash(t, "fleet/harvested", func() {
		for i := 0; i < 100000; i++ {
			s1.Advance(2000)
		}
	})

	s2, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	// The harvested job died without a terminal record: everything replays.
	if rec.Readmitted != len(specs) || rec.Completed != 0 {
		t.Fatalf("recovery %+v, want all %d re-admitted", rec, len(specs))
	}
	drive(t, s2)
	requireSameDigests(t, want, digestTable(t, s2, ids))
}

// TestCrashAfterDoneBeforeVisible: die after the DONE fsync but before the
// outcome lands in memory. The journal already owns the truth — the restart
// recovers that job's digests without re-flying it, identical to baseline.
func TestCrashAfterDoneBeforeVisible(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 2}
	specs := coTenants(3, 250)
	want := baselineDigests(t, cfg, specs)
	dir := t.TempDir()

	s1, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s1.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	withCrash(t, "fleet/done-journaled", func() {
		for i := 0; i < 100000; i++ {
			s1.Advance(2000)
		}
	})
	if s1.Stats().Completed != 0 {
		t.Fatal("an outcome became visible before the crash point")
	}

	s2, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Completed != 1 || rec.Readmitted != len(specs)-1 {
		t.Fatalf("recovery %+v, want 1 completed + %d re-admitted", rec, len(specs)-1)
	}
	drive(t, s2)
	requireSameDigests(t, want, digestTable(t, s2, ids))
}
