package fleet_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dronedse/fleet"
	"dronedse/fleet/journal"
)

// Crash-safety property tests. The central claim: a fleetd with a journal
// can be killed at any moment and, after restart, every accepted job still
// reaches a terminal state with digests bit-identical to an uninterrupted
// run — because recovery is deterministic replay, not snapshotting. A
// "crash" here is simulated the way SIGKILL actually leaves things: the
// server object is abandoned mid-campaign (never shut down, journal never
// closed cleanly) and a fresh server reopens the same journal directory.
// Real SIGKILL against a live fleetd process is covered by
// scripts/fleet_chaos.sh; the narrow in-protocol windows are covered by the
// -tags failpoint tests.

// baselineDigests runs specs on a journal-less server and returns the
// per-job-ID digest table — the ground truth every crashed-and-recovered
// run must reproduce exactly. IDs are 1..n in both runs because submission
// order assigns them.
func baselineDigests(t *testing.T, cfg fleet.Config, specs []fleet.JobSpec) map[uint64]fleet.Digests {
	t.Helper()
	srv := fleet.New(cfg)
	ids, err := srv.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, srv)
	return digestTable(t, srv, ids)
}

// digestTable collects digests for the given jobs, failing on any
// unfinished or digest-less job.
func digestTable(t *testing.T, srv *fleet.Server, ids []uint64) map[uint64]fleet.Digests {
	t.Helper()
	out := map[uint64]fleet.Digests{}
	for _, id := range ids {
		st, ok := srv.Job(id)
		if !ok || st.Digests == nil {
			t.Fatalf("job %d unfinished: state %q err %q", id, st.State, st.Error)
		}
		out[id] = *st.Digests
	}
	return out
}

func requireSameDigests(t *testing.T, want, got map[uint64]fleet.Digests) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("digest tables differ in size: want %d, got %d", len(want), len(got))
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("job %d: digests diverged after crash recovery", id)
		}
	}
}

// advanceUntilCompleted steps the engine between whole advances until at
// least n jobs are done — the "mid-campaign" crash point with completed,
// flying and queued jobs all present.
func advanceUntilCompleted(t *testing.T, srv *fleet.Server, n int) fleet.Stats {
	t.Helper()
	for i := 0; ; i++ {
		if st := srv.Stats(); st.Completed >= n {
			return st
		}
		if i > 100000 {
			t.Fatalf("engine never completed %d jobs", n)
		}
		srv.Advance(2000)
	}
}

// TestCrashRecoveryBitIdentity is the acceptance property: kill a journaled
// server mid-campaign — some jobs done, some flying, some queued — restart
// on the same journal, and every job finishes with digests bit-identical to
// a run that was never interrupted. Completed jobs are not re-flown: their
// digests come straight off the journal.
func TestCrashRecoveryBitIdentity(t *testing.T) {
	cfg := fleet.Config{Shards: 2, MaxLanes: 4}
	specs := coTenants(16, 900)
	want := baselineDigests(t, cfg, specs)

	dir := t.TempDir()
	srv, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(rec.Jobs))
	}
	ids, err := srv.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	atCrash := advanceUntilCompleted(t, srv, 3)
	if atCrash.Completed >= len(specs) {
		t.Fatalf("campaign finished (%d jobs) before the crash point", atCrash.Completed)
	}
	// SIGKILL: abandon srv. It never advances, shuts down, or closes its
	// journal again.

	srv2, rec2, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Completed != atCrash.Completed {
		t.Fatalf("replay recovered %d completed jobs, crash-time stats said %d",
			rec2.Completed, atCrash.Completed)
	}
	if got, wantN := rec2.Readmitted, len(specs)-atCrash.Completed-atCrash.Failed; got != wantN {
		t.Fatalf("replay re-admitted %d jobs, want %d", got, wantN)
	}
	drive(t, srv2)
	st := srv2.Stats()
	if st.Completed != len(specs) || st.Failed != 0 {
		t.Fatalf("after recovery: completed=%d failed=%d, want %d/0",
			st.Completed, st.Failed, len(specs))
	}
	requireSameDigests(t, want, digestTable(t, srv2, ids))
}

// TestRestartTwiceReplayIdempotency crashes the same campaign twice at
// different points, finishes on the third incarnation, then reopens the
// journal twice more: replay must be idempotent — no duplicate terminals,
// no re-admissions once everything is done, and the recovered digest table
// (served without re-running anything) still matches the uninterrupted
// baseline.
func TestRestartTwiceReplayIdempotency(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 2}
	specs := coTenants(8, 770)
	want := baselineDigests(t, cfg, specs)
	dir := t.TempDir()

	s1, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s1.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	advanceUntilCompleted(t, s1, 2) // crash #1

	s2, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	advanceUntilCompleted(t, s2, 5) // crash #2

	s3, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s3)
	requireSameDigests(t, want, digestTable(t, s3, ids))
	s3.Shutdown()

	s4, rec4, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec4.Readmitted != 0 || rec4.Completed != len(specs) || rec4.DupTerminal != 0 {
		t.Fatalf("replay of a finished journal not idempotent: %+v", rec4)
	}
	// No jobs re-ran here: these digests were read back off the journal.
	requireSameDigests(t, want, digestTable(t, s4, ids))
	s5, rec5, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec5.Readmitted != rec4.Readmitted || rec5.Completed != rec4.Completed {
		t.Fatalf("second replay disagreed with first: %+v vs %+v", rec5, rec4)
	}
	s4.Shutdown()
	s5.Shutdown()
}

// TestSubmitDurableBeforeAck: jobs whose submission was acknowledged are
// durable even if the process dies before the engine ever advances.
func TestSubmitDurableBeforeAck(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 4}
	specs := coTenants(6, 410)
	want := baselineDigests(t, cfg, specs)
	dir := t.TempDir()

	s1, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s1.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	// Crash with zero engine progress.

	s2, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Readmitted != len(specs) {
		t.Fatalf("re-admitted %d jobs, want all %d", rec.Readmitted, len(specs))
	}
	drive(t, s2)
	requireSameDigests(t, want, digestTable(t, s2, ids))
}

// TestTornTerminalRecordReadmitsJob: a DONE record half-written at the
// moment of death is truncated on replay, and the affected job simply
// re-flies to the same digests. Torn-tail handling at every byte offset is
// pinned in the journal package; this covers the fleet-level consequence.
func TestTornTerminalRecordReadmitsJob(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 2}
	specs := coTenants(2, 640)
	want := baselineDigests(t, cfg, specs)
	dir := t.TempDir()

	s1, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s1.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s1)
	s1.Shutdown()

	path := filepath.Join(dir, fleet.JournalFile)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-1); err != nil {
		t.Fatal(err)
	}

	s2, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	if rec.Completed != 1 || rec.Readmitted != 1 {
		t.Fatalf("recovered %d done + %d readmitted, want 1 + 1", rec.Completed, rec.Readmitted)
	}
	drive(t, s2)
	requireSameDigests(t, want, digestTable(t, s2, ids))
}

// TestReplayToleratesDupAndOrphanTerminals hand-crafts a journal no healthy
// writer produces — duplicate DONE/CANCEL records for one job, a terminal
// record for a job whose SUBMIT is gone — and requires replay to absorb it:
// first terminal wins, the rest are counted, nothing fails recovery.
func TestReplayToleratesDupAndOrphanTerminals(t *testing.T) {
	dir := t.TempDir()
	jl, _, _, err := journal.Open(filepath.Join(dir, fleet.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	spec := fleet.JobSpec{Seed: 5, Hover: true, MaxSeconds: 2}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []struct {
		kind    byte
		payload string
	}{
		{fleet.WalSubmitKind, fmt.Sprintf(`{"id":1,"spec":%s}`, specJSON)},
		{fleet.WalDoneKind, `{"id":1,"err":"boom"}`},
		{fleet.WalDoneKind, `{"id":1}`},                   // duplicate DONE
		{fleet.WalCancelKind, `{"id":1,"reason":"late"}`}, // duplicate CANCEL
		{fleet.WalDoneKind, `{"id":9,"err":"ghost"}`},     // orphaned terminal
	} {
		if err := jl.Append(r.kind, []byte(r.payload)); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()

	srv, rec, err := fleet.NewJournaled(fleet.Config{Shards: 1, MaxLanes: 2}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DupTerminal != 2 || rec.OrphanTerminal != 1 {
		t.Fatalf("dup=%d orphan=%d, want 2/1", rec.DupTerminal, rec.OrphanTerminal)
	}
	if rec.Failed != 1 || rec.Readmitted != 0 {
		t.Fatalf("failed=%d readmitted=%d, want 1/0", rec.Failed, rec.Readmitted)
	}
	st, ok := srv.Job(1)
	if !ok || st.State != "failed" || st.Error != "boom" {
		t.Fatalf("job 1 after replay: %+v", st)
	}
	// ID allocation resumes past the highest journaled SUBMIT, not the
	// orphan's ID: the next job is 2, not 10.
	id, err := srv.Submit(spec)
	if err != nil || id != 2 {
		t.Fatalf("post-recovery submit: id=%d err=%v, want 2", id, err)
	}
	srv.Shutdown()
}

// TestDeadlineEvictsRunawayJob: a job past its wall-clock budget is aborted
// mid-flight with ErrDeadline and journaled as CANCEL — terminal, so a
// restart does not re-fly it — while co-tenants finish untouched.
func TestDeadlineEvictsRunawayJob(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 2}
	dir := t.TempDir()
	srv, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := srv.SubmitAll([]fleet.JobSpec{
		{Seed: 1, Hover: true, MaxSeconds: 3600, DeadlineS: 0.05}, // runaway
		{Seed: 2, Hover: true, MaxSeconds: 2},                     // finishes fine
	})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, srv)
	runaway, _ := srv.Job(ids[0])
	if runaway.State != "failed" || !strings.Contains(runaway.Error, "deadline") {
		t.Fatalf("runaway job: state %q err %q, want a deadline failure", runaway.State, runaway.Error)
	}
	if st, _ := srv.Job(ids[1]); st.State != "done" || st.Digests == nil {
		t.Fatalf("co-tenant: %+v", st)
	}

	srv2, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Readmitted != 0 || rec.Failed != 1 || rec.Completed != 1 {
		t.Fatalf("deadline kill not terminal across restart: %+v", rec)
	}
	srv.Shutdown()
	srv2.Shutdown()
}

// TestAdmissionQueueBound: the queue refuses whole batches beyond MaxQueue
// with ErrQueueFull, and the HTTP layer turns that into 429 + Retry-After.
func TestAdmissionQueueBound(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 1, MaxLanes: 2, MaxQueue: 4})
	if _, err := srv.SubmitAll(coTenants(5, 100)); !errors.Is(err, fleet.ErrQueueFull) {
		t.Fatalf("oversize batch: err=%v, want ErrQueueFull", err)
	}
	if _, err := srv.SubmitAll(coTenants(3, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SubmitAll(coTenants(2, 100)); !errors.Is(err, fleet.ErrQueueFull) {
		t.Fatalf("overflow batch: err=%v, want ErrQueueFull", err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(coTenants(2, 100))
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full POST /jobs: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
	srv.Shutdown()
}

// TestHealthAndReadiness: /healthz is pure liveness; /readyz tracks the
// engine loop, drain state and shutdown.
func TestHealthAndReadiness(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 1, MaxLanes: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before Run = %d, want 503", got)
	}
	go srv.Run()
	c := fleet.NewClient(ts.URL)
	if err := c.WaitReady(10 * time.Second); err != nil {
		t.Fatalf("server never became ready: %v", err)
	}
	srv.Shutdown()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after shutdown = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz after shutdown = %d, want 200 while serving", got)
	}
}

// TestDrainGracefulRequeuesJournaledJobs: SIGTERM-path drain stops
// admissions, finishes in-flight lanes, loses nothing, and a restart
// completes the queued remainder bit-identically.
func TestDrainGracefulRequeuesJournaledJobs(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 2}
	specs := coTenants(10, 330)
	want := baselineDigests(t, cfg, specs)
	dir := t.TempDir()

	srv, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	ids, err := srv.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; srv.Stats().Completed < 1; i++ {
		if i > 10000 {
			t.Fatal("no job completed before drain")
		}
		time.Sleep(2 * time.Millisecond)
	}

	rep := srv.Drain(30 * time.Second)
	if !rep.Clean() {
		t.Fatalf("in-flight lanes did not finish within grace: %+v", rep)
	}
	if rep.Lost() != 0 {
		t.Fatalf("journaled drain lost %d jobs", rep.Lost())
	}
	if total := rep.Completed + rep.Failed + rep.Requeued; total != len(specs) {
		t.Fatalf("drain accounting: %+v covers %d of %d jobs", rep, total, len(specs))
	}
	if _, err := srv.Submit(specs[0]); !errors.Is(err, fleet.ErrShutdown) {
		t.Fatalf("submit after drain: %v, want ErrShutdown", err)
	}
	if srv.Ready() == nil {
		t.Fatal("drained server still reports ready")
	}

	srv2, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Readmitted != rep.Requeued {
		t.Fatalf("restart re-admitted %d, drain requeued %d", rec.Readmitted, rep.Requeued)
	}
	drive(t, srv2)
	requireSameDigests(t, want, digestTable(t, srv2, ids))
}

// TestDrainRefusesSubmitsAndAbandonsAtGrace: while draining, submissions
// fail with ErrDraining; a lane that cannot finish within the grace period
// is abandoned but — journaled — not lost: the restart re-admits it.
func TestDrainRefusesSubmitsAndAbandonsAtGrace(t *testing.T) {
	cfg := fleet.Config{Shards: 1, MaxLanes: 2}
	dir := t.TempDir()
	srv, _, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	// A flight long enough (1200 simulated seconds) to outlive the tiny
	// grace below on any machine.
	if _, err := srv.Submit(fleet.JobSpec{Seed: 31, Hover: true, MaxSeconds: 1200}); err != nil {
		t.Fatal(err)
	}
	for i := 0; srv.Stats().Live == 0; i++ {
		if i > 10000 {
			t.Fatal("job never launched")
		}
		time.Sleep(time.Millisecond)
	}

	repCh := make(chan fleet.DrainReport, 1)
	go func() { repCh <- srv.Drain(100 * time.Millisecond) }()
	for i := 0; !srv.Stats().Draining; i++ {
		if i > 10000 {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Submit(fleet.JobSpec{Seed: 32, Hover: true, MaxSeconds: 2}); !errors.Is(err, fleet.ErrDraining) {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
	rep := <-repCh
	if rep.Abandoned != 1 {
		t.Fatalf("drain report %+v, want the long flight abandoned", rep)
	}
	if rep.Lost() != 0 {
		t.Fatal("journaled abandonment counted as lost")
	}

	_, rec, err := fleet.NewJournaled(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Readmitted != 1 {
		t.Fatalf("restart re-admitted %d jobs, want the abandoned flight", rec.Readmitted)
	}
}

// TestClientRetriesBackpressure: a 429 from a full queue is absorbed by the
// client's jittered-backoff budget and the submission lands once the engine
// frees queue space.
func TestClientRetriesBackpressure(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 1, MaxLanes: 2, MaxQueue: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown()

	c := fleet.NewClient(ts.URL)
	c.Retry = fleet.RetryPolicy{Max: 12, Base: 5 * time.Millisecond}
	if _, err := c.Submit(coTenants(2, 210)); err != nil {
		t.Fatal(err)
	}
	// Queue is full and no engine is running: an immediate submit must burn
	// retries and still fail with a 429-mapped error.
	c0 := fleet.NewClient(ts.URL)
	if _, err := c0.Submit(coTenants(1, 210)); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("no-retry client on full queue: %v", err)
	}
	// Start the engine shortly after the retrying submit begins: admission
	// drains the queue, a later attempt succeeds.
	go func() {
		time.Sleep(25 * time.Millisecond)
		go srv.Run()
	}()
	ids, err := c.Submit(coTenants(1, 210))
	if err != nil {
		t.Fatalf("retrying submit never landed: %v", err)
	}
	if len(ids) != 1 {
		t.Fatalf("got ids %v", ids)
	}
	if _, err := c.WaitAll(60*time.Second, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}
