//go:build !failpoint

package fleet

// failpoint marks a crash-window boundary in the service's durability
// protocol. In release builds it is an empty function the compiler inlines
// away; `go build -tags failpoint` swaps in the chaos-injection version
// (failpoint_on.go) that can crash the process or run a registered hook at
// the named point. The named points, in protocol order:
//
//	fleet/submit-journaled   SUBMIT fsync'd, job not yet admitted
//	fleet/harvested          lane evicted, terminal record not yet written
//	fleet/done-journaled     DONE/CANCEL fsync'd, outcome not yet visible
func failpoint(string) {}
