package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the JSON-over-HTTP job API:
//
//	POST /jobs      body: [JobSpec, ...]        → {"ids":[...]}
//	GET  /jobs                                  → {"jobs":[JobStatus, ...]}
//	GET  /jobs/{id}                             → JobStatus
//	GET  /stats                                 → Stats
//	GET  /healthz                               → 200 while the process
//	     serves HTTP at all (liveness)
//	GET  /readyz                                → 200 when the instance
//	     should receive traffic: accepting jobs, engine loop live, journal
//	     writable; 503 + reason otherwise (readiness)
//	POST /shutdown                              → {"ok":true}; the host
//	     process observes ShutdownRequested and exits.
//
// Submission backpressure: a full admission queue is 429, a draining or
// shut-down server is 503, both with a Retry-After hint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var specs []JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
		if err := dec.Decode(&specs); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad job list: %v", err))
			return
		}
		if len(specs) == 0 {
			httpError(w, http.StatusBadRequest, "empty job list")
			return
		}
		ids, err := s.SubmitAll(specs)
		if err != nil {
			code := http.StatusServiceUnavailable
			switch {
			case errors.Is(err, ErrBadSpec):
				code = http.StatusBadRequest
			case errors.Is(err, ErrQueueFull):
				code = http.StatusTooManyRequests
				w.Header().Set("Retry-After", "1")
			case errors.Is(err, ErrDraining), errors.Is(err, ErrShutdown):
				w.Header().Set("Retry-After", "5")
			}
			httpError(w, code, err.Error())
			return
		}
		writeJSON(w, map[string][]uint64{"ids": ids})
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string][]JobStatus{"jobs": s.Jobs()})
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad job id")
			return
		}
		st, ok := s.Job(id)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJSON(w, st)
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]bool{"ok": true})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Ready(); err != nil {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		writeJSON(w, map[string]bool{"ready": true})
	})

	mux.HandleFunc("POST /shutdown", func(w http.ResponseWriter, r *http.Request) {
		s.requestShutdown()
		writeJSON(w, map[string]bool{"ok": true})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
