package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Client talks to a fleetd job API over HTTP. The zero HTTPClient uses
// http.DefaultClient.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8480".
	Base string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

// NewClient returns a client for the given server root.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request and decodes the JSON response into out (when non-nil).
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("fleetd: %s", e.Error)
		}
		return fmt.Errorf("fleetd: %s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues jobs and returns their IDs.
func (c *Client) Submit(specs []JobSpec) ([]uint64, error) {
	var resp struct {
		IDs []uint64 `json:"ids"`
	}
	if err := c.do(http.MethodPost, "/jobs", specs, &resp); err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Job fetches one job's status.
func (c *Client) Job(id uint64) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodGet, fmt.Sprintf("/jobs/%d", id), nil, &st)
	return st, err
}

// Jobs fetches every job's status, in submission order.
func (c *Client) Jobs() ([]JobStatus, error) {
	var resp struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := c.do(http.MethodGet, "/jobs", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.do(http.MethodGet, "/stats", nil, &st)
	return st, err
}

// Shutdown asks the server process to exit.
func (c *Client) Shutdown() error {
	return c.do(http.MethodPost, "/shutdown", nil, nil)
}

// WaitAll polls until every submitted job reaches a terminal state and
// returns the final statuses; it fails once the timeout elapses.
func (c *Client) WaitAll(timeout, poll time.Duration) ([]JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		jobs, err := c.Jobs()
		if err != nil {
			return nil, err
		}
		pending := 0
		for _, j := range jobs {
			if j.State != JobDone.String() && j.State != JobFailed.String() {
				pending++
			}
		}
		if pending == 0 {
			return jobs, nil
		}
		if time.Now().After(deadline) {
			return jobs, fmt.Errorf("fleetd: %d of %d jobs still pending after %v",
				pending, len(jobs), timeout)
		}
		time.Sleep(poll)
	}
}

// DialStream subscribes to a job's telemetry over the framed TCP protocol:
// it dials addr, sends the SUB line, and verifies the OK handshake. The
// returned connection yields the job's raw MAVLink stream until the job
// finishes (EOF); close it to unsubscribe.
func DialStream(addr string, id uint64) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "SUB %d\n", id); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(HandshakeTimeout))
	// Read the status line unbuffered, byte by byte, so no telemetry bytes
	// that follow "OK\n" are swallowed by a reader we then discard.
	status, err := readLine(conn, 256)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("fleet: subscribe handshake: %w", err)
	}
	if strings.TrimSpace(status) != "OK" {
		conn.Close()
		return nil, fmt.Errorf("fleet: subscribe refused: %s", strings.TrimSpace(status))
	}
	conn.SetReadDeadline(time.Time{})
	return conn, nil
}

// readLine reads up to limit bytes one at a time until '\n'.
func readLine(r io.Reader, limit int) (string, error) {
	var line []byte
	buf := make([]byte, 1)
	for len(line) < limit {
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		if buf[0] == '\n' {
			return string(line), nil
		}
		line = append(line, buf[0])
	}
	return "", fmt.Errorf("handshake line over %d bytes", limit)
}
