package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// Client talks to a fleetd job API over HTTP. The zero HTTPClient uses
// http.DefaultClient; the zero Retry never retries.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8480".
	Base string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Retry is the transient-failure policy applied to every request.
	Retry RetryPolicy
}

// RetryPolicy is a bounded jittered-exponential-backoff budget for
// transient failures: requests the server provably never processed (dial
// failures, connection refused) and explicit backpressure responses (429
// queue-full, 503 draining). Anything else — including mid-request
// connection drops, where a submission may have landed — is never retried,
// so a retry can't double-submit jobs.
type RetryPolicy struct {
	// Max is how many retries follow the first attempt (0 = none).
	Max int
	// Base is the first backoff step (default 50ms); successive steps
	// double, with equal-spread jitter in [step/2, step].
	Base time.Duration
	// Cap bounds a single backoff step (default 2s).
	Cap time.Duration
}

func (p RetryPolicy) delay(attempt int) time.Duration {
	base, cap := p.Base, p.Cap
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	step := base << attempt
	if step <= 0 || step > cap {
		step = cap
	}
	return step/2 + rand.N(step/2+1)
}

// statusError is a non-200 API response; 429/503 mark server backpressure
// and are safe to retry (the job list was rejected, not admitted).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

// retryable classifies errors the retry budget may spend itself on.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code == http.StatusTooManyRequests || se.code == http.StatusServiceUnavailable
	}
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return true // the request never left this machine
	}
	return errors.Is(err, syscall.ECONNREFUSED)
}

// NewClient returns a client for the given server root.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues a request under the retry policy.
func (c *Client) do(method, path string, body, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.doOnce(method, path, body, out)
		if err == nil || attempt >= c.Retry.Max || !retryable(err) {
			return err
		}
		time.Sleep(c.Retry.delay(attempt))
	}
}

// doOnce issues one request and decodes the JSON response into out (when
// non-nil).
func (c *Client) doOnce(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return &statusError{code: resp.StatusCode, msg: fmt.Sprintf("fleetd: %s", e.Error)}
		}
		return &statusError{code: resp.StatusCode,
			msg: fmt.Sprintf("fleetd: %s %s: %s", method, path, resp.Status)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit enqueues jobs and returns their IDs.
func (c *Client) Submit(specs []JobSpec) ([]uint64, error) {
	var resp struct {
		IDs []uint64 `json:"ids"`
	}
	if err := c.do(http.MethodPost, "/jobs", specs, &resp); err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Job fetches one job's status.
func (c *Client) Job(id uint64) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodGet, fmt.Sprintf("/jobs/%d", id), nil, &st)
	return st, err
}

// Jobs fetches every job's status, in submission order.
func (c *Client) Jobs() ([]JobStatus, error) {
	var resp struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := c.do(http.MethodGet, "/jobs", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.do(http.MethodGet, "/stats", nil, &st)
	return st, err
}

// Shutdown asks the server process to exit.
func (c *Client) Shutdown() error {
	return c.do(http.MethodPost, "/shutdown", nil, nil)
}

// Ready asks the server whether it should receive traffic (GET /readyz).
func (c *Client) Ready() error {
	return c.doOnce(http.MethodGet, "/readyz", nil, nil)
}

// WaitReady polls /readyz until the server reports ready or the timeout
// elapses, absorbing connection failures while the process is still coming
// up — the startup barrier behind fleetctl -wait-ready.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	poll := 10 * time.Millisecond
	for {
		err := c.Ready()
		if err == nil {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("fleetd: not ready after %v: %w", timeout, err)
		}
		time.Sleep(poll)
		if poll < 250*time.Millisecond {
			poll *= 2
		}
	}
}

// WaitAll polls until every submitted job reaches a terminal state and
// returns the final statuses; it fails once the timeout elapses. Poll
// errors inside the window are tolerated — the server may be mid-restart
// after a crash — and only surface if they persist to the deadline.
func (c *Client) WaitAll(timeout, poll time.Duration) ([]JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for {
		jobs, err := c.Jobs()
		if err != nil {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("fleetd: unreachable at wait deadline: %w", err)
			}
			time.Sleep(poll)
			continue
		}
		pending := 0
		for _, j := range jobs {
			if j.State != JobDone.String() && j.State != JobFailed.String() {
				pending++
			}
		}
		if pending == 0 {
			return jobs, nil
		}
		if time.Now().After(deadline) {
			return jobs, fmt.Errorf("fleetd: %d of %d jobs still pending after %v",
				pending, len(jobs), timeout)
		}
		time.Sleep(poll)
	}
}

// DialStream subscribes to a job's telemetry over the framed TCP protocol:
// it dials addr, sends the SUB line, and verifies the OK handshake. The
// returned connection yields the job's raw MAVLink stream until the job
// finishes (EOF); close it to unsubscribe.
func DialStream(addr string, id uint64) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "SUB %d\n", id); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(HandshakeTimeout))
	// Read the status line unbuffered, byte by byte, so no telemetry bytes
	// that follow "OK\n" are swallowed by a reader we then discard.
	status, err := readLine(conn, 256)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("fleet: subscribe handshake: %w", err)
	}
	if strings.TrimSpace(status) != "OK" {
		conn.Close()
		return nil, fmt.Errorf("fleet: subscribe refused: %s", strings.TrimSpace(status))
	}
	conn.SetReadDeadline(time.Time{})
	return conn, nil
}

// readLine reads up to limit bytes one at a time until '\n'.
func readLine(r io.Reader, limit int) (string, error) {
	var line []byte
	buf := make([]byte, 1)
	for len(line) < limit {
		if _, err := io.ReadFull(r, buf); err != nil {
			return "", err
		}
		if buf[0] == '\n' {
			return string(line), nil
		}
		line = append(line, buf[0])
	}
	return "", fmt.Errorf("handshake line over %d bytes", limit)
}
