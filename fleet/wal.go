package fleet

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"dronedse/fleet/journal"
)

// The fleet write-ahead log: every accepted JobSpec is journaled and fsync'd
// BEFORE the server acknowledges it, and every terminal outcome is journaled
// BEFORE it is visible in the API. On restart the journal is replayed:
// terminal jobs come back with their digests and summaries; jobs with a
// SUBMIT but no terminal record are re-admitted and re-flown — and because a
// flight is a pure function of its JobSpec (seed-deterministic, co-tenant
// invariant), the re-run produces digests bit-identical to what the crashed
// run would have written. Recovery is replay, not state snapshotting.
//
// Record kinds (payloads are JSON, one record per job transition):
//
//	SUBMIT {id, spec}                    job accepted
//	DONE   {id, digests, summary | err}  job finished (or failed in flight)
//	CANCEL {id, reason}                  job killed by policy (deadline)
const (
	walSubmit byte = 1
	walDone   byte = 2
	walCancel byte = 3
)

// JournalFile is the journal's file name inside the -journal directory.
const JournalFile = "fleet.wal"

type submitRec struct {
	ID   uint64  `json:"id"`
	Spec JobSpec `json:"spec"`
}

type doneRec struct {
	ID      uint64      `json:"id"`
	Digests *Digests    `json:"digests,omitempty"`
	Summary *JobSummary `json:"summary,omitempty"`
	Err     string      `json:"err,omitempty"`
}

type cancelRec struct {
	ID     uint64 `json:"id"`
	Reason string `json:"reason"`
}

// JobSummary is the terminal-state summary a DONE record carries, so a
// completed job recovered from the journal still serves meaningful status
// without its (discarded) artifacts.
type JobSummary struct {
	FlightTimeS          float64 `json:"flight_time_s"`
	EnergyWh             float64 `json:"energy_wh"`
	ComputeWh            float64 `json:"compute_wh"`
	ComputeFlightCostMin float64 `json:"compute_flight_cost_min"`
	Completed            bool    `json:"completed"`
	FinalMode            string  `json:"final_mode"`
}

// RecoveredJob is one job's state reconstructed from the journal, in
// submission order.
type RecoveredJob struct {
	ID      uint64
	Spec    JobSpec
	Done    bool // has a terminal record (DONE or CANCEL)
	Err     string
	Digests *Digests
	Summary *JobSummary
}

// Recovery reports what journal replay found. Jobs without a terminal
// record are the re-admission set.
type Recovery struct {
	Jobs []RecoveredJob

	Completed, Failed, Readmitted int
	// TruncatedBytes is the torn/corrupt tail cut off the journal file
	// (non-zero after a crash mid-append — expected, not an error).
	TruncatedBytes int64
	// DupTerminal counts redundant DONE/CANCEL records for already-terminal
	// jobs (a crash between the DONE fsync and the in-memory finalize makes
	// the re-run journal a second DONE); OrphanTerminal counts terminal
	// records whose SUBMIT was lost to a torn tail. Both are tolerated.
	DupTerminal, OrphanTerminal int

	maxID uint64 // highest journaled job ID; the server resumes past it
}

// replayJournal folds raw journal records into per-job state. Malformed
// payloads (impossible under this writer, conceivable under disk
// corruption that still passes CRC) fail recovery loudly rather than
// silently dropping jobs.
func replayJournal(recs []journal.Record) (*Recovery, uint64, error) {
	rec := &Recovery{}
	byID := map[uint64]int{}
	var maxID uint64
	terminal := func(id uint64, apply func(j *RecoveredJob)) {
		idx, ok := byID[id]
		if !ok {
			rec.OrphanTerminal++
			return
		}
		if rec.Jobs[idx].Done {
			rec.DupTerminal++
			return
		}
		apply(&rec.Jobs[idx])
		rec.Jobs[idx].Done = true
	}
	for i, r := range recs {
		switch r.Kind {
		case walSubmit:
			var sr submitRec
			if err := json.Unmarshal(r.Payload, &sr); err != nil {
				return nil, 0, fmt.Errorf("fleet: journal record %d: bad SUBMIT: %w", i, err)
			}
			if _, dup := byID[sr.ID]; dup {
				continue // duplicate SUBMIT: first wins
			}
			byID[sr.ID] = len(rec.Jobs)
			rec.Jobs = append(rec.Jobs, RecoveredJob{ID: sr.ID, Spec: sr.Spec})
			if sr.ID > maxID {
				maxID = sr.ID
			}
		case walDone:
			var dr doneRec
			if err := json.Unmarshal(r.Payload, &dr); err != nil {
				return nil, 0, fmt.Errorf("fleet: journal record %d: bad DONE: %w", i, err)
			}
			terminal(dr.ID, func(j *RecoveredJob) {
				j.Digests, j.Summary, j.Err = dr.Digests, dr.Summary, dr.Err
			})
		case walCancel:
			var cr cancelRec
			if err := json.Unmarshal(r.Payload, &cr); err != nil {
				return nil, 0, fmt.Errorf("fleet: journal record %d: bad CANCEL: %w", i, err)
			}
			terminal(cr.ID, func(j *RecoveredJob) { j.Err = cr.Reason })
		default:
			return nil, 0, fmt.Errorf("fleet: journal record %d: unknown kind %d", i, r.Kind)
		}
	}
	for _, j := range rec.Jobs {
		switch {
		case !j.Done:
			rec.Readmitted++
		case j.Err != "":
			rec.Failed++
		default:
			rec.Completed++
		}
	}
	return rec, maxID, nil
}

// openJournal opens dir/fleet.wal, replays it, and returns the log plus the
// recovered state.
func openJournal(dir string) (*journal.Log, *Recovery, error) {
	jl, recs, trunc, err := journal.Open(filepath.Join(dir, JournalFile))
	if err != nil {
		return nil, nil, err
	}
	rec, maxID, err := replayJournal(recs)
	if err != nil {
		jl.Close()
		return nil, nil, err
	}
	rec.TruncatedBytes = trunc
	rec.maxID = maxID
	return jl, rec, nil
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// All wal record types marshal by construction.
		panic(fmt.Sprintf("fleet: wal encode: %v", err))
	}
	return data
}

// appendSubmits journals a batch of accepted jobs under one fsync.
func appendSubmits(jl *journal.Log, jobs []*job) error {
	recs := make([]journal.Record, len(jobs))
	for i, j := range jobs {
		recs[i] = journal.Record{Kind: walSubmit, Payload: mustJSON(submitRec{ID: j.id, Spec: j.spec})}
	}
	return jl.AppendBatch(recs)
}

// appendDone journals a job's terminal outcome (completion or in-flight
// failure).
func appendDone(jl *journal.Log, id uint64, dig *Digests, sum *JobSummary, err error) error {
	dr := doneRec{ID: id, Digests: dig, Summary: sum}
	if err != nil {
		dr.Err = err.Error()
	}
	return jl.Append(walDone, mustJSON(dr))
}

// appendCancel journals a policy kill (wall-clock deadline).
func appendCancel(jl *journal.Log, id uint64, reason string) error {
	return jl.Append(walCancel, mustJSON(cancelRec{ID: id, Reason: reason}))
}
