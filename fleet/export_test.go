package fleet

// Journal record kinds, exported so chaos tests can hand-craft wal files
// (duplicate terminals, orphans) that the writer itself would never
// produce.
const (
	WalSubmitKind = walSubmit
	WalDoneKind   = walDone
	WalCancelKind = walCancel
)
