package fleet_test

import (
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dronedse/fleet"
	"dronedse/groundstation"
	"dronedse/mavlink"
)

// startTelemetry attaches a TCP telemetry listener to srv and returns its
// address. The engine is NOT started — tests drive Advance themselves so
// subscribers can attach before any telemetry is published.
func startTelemetry(t *testing.T, srv *fleet.Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	telemErr := make(chan error, 1)
	go func() { defer wg.Done(); telemErr <- srv.ServeTelemetry(ln) }()
	t.Cleanup(func() {
		srv.Shutdown()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("telemetry goroutine did not stop after Shutdown")
		}
		if err := <-telemErr; err != nil {
			t.Errorf("telemetry serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// collectStream drains a telemetry connection to EOF (the job finishing).
func collectStream(t *testing.T, conn net.Conn) []byte {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(60 * time.Second))
	data, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("stream read: %v (got %d bytes)", err, len(data))
	}
	return data
}

// parseStream decodes a telemetry byte stream, failing on any torn frame.
func parseStream(t *testing.T, data []byte) []mavlink.Frame {
	t.Helper()
	var p mavlink.Parser
	frames := p.Push(data)
	if p.Resyncs != 0 || p.BadCRC != 0 || p.BufferedBytes() != 0 {
		t.Fatalf("telemetry stream damaged: resyncs=%d badcrc=%d residual=%d",
			p.Resyncs, p.BadCRC, p.BufferedBytes())
	}
	return frames
}

// TestServeTelemetryStreamAndStall is the backpressure acceptance path: a
// healthy subscriber receives a parseable stream to clean EOF while a
// stalled subscriber on a co-tenant job sheds frames, and every job still
// completes (the tick loop never waits on a socket).
func TestServeTelemetryStreamAndStall(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 2, MaxLanes: 32, SubQueue: 4})
	telemAddr := startTelemetry(t, srv)

	specs := coTenants(8, 300)
	ids, err := srv.SubmitAll(specs)
	if err != nil {
		t.Fatal(err)
	}

	// Stalled subscriber on job 0: subscribes, never reads.
	stalled, err := fleet.DialStream(telemAddr, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// Healthy subscriber on job 1: reads to EOF.
	healthy, err := fleet.DialStream(telemAddr, ids[1])
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	// Drive the engine to drain concurrently with the healthy read. The
	// engine never touches a socket, so the stalled subscriber cannot stop
	// this loop from finishing — that completing at all is the assertion.
	engineDone := make(chan struct{})
	go func() {
		defer close(engineDone)
		for i := 0; i < 100000; i++ {
			if !srv.Advance(1000) {
				return
			}
		}
	}()

	stream := collectStream(t, healthy)
	frames := parseStream(t, stream)
	if len(frames) == 0 {
		t.Fatal("healthy subscriber saw no telemetry")
	}

	select {
	case <-engineDone:
	case <-time.After(60 * time.Second):
		t.Fatal("engine loop stalled with a dead subscriber attached")
	}
	st := srv.Stats()
	if st.Completed != len(specs) || st.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", st.Completed, st.Failed, len(specs))
	}

	// A groundstation consuming the healthy stream sees a coherent flight.
	gs := groundstation.New(nil)
	gs.Consume(stream)
	if gst := gs.State(); gst.Heartbeats == 0 || gst.ParseErrors != 0 {
		t.Fatalf("ground station state: %+v", gst)
	}
}

// TestStreamReconnectResubscribe drops a subscriber mid-flight and
// resubscribes: both segments must be frame-aligned with strictly monotone
// heartbeat timestamps across the gap (no duplicated or interleaved
// frames), mirroring the hub-level contract over real TCP.
func TestStreamReconnectResubscribe(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 1, MaxLanes: 4, SubQueue: 4096})
	telemAddr := startTelemetry(t, srv)
	id, err := srv.Submit(fleet.JobSpec{Seed: 9, Hover: true, MaxSeconds: 30, TelemetryEverySteps: 100})
	if err != nil {
		t.Fatal(err)
	}

	conn1, err := fleet.DialStream(telemAddr, id)
	if err != nil {
		t.Fatal(err)
	}
	// Publish ~20 telemetry units, then read a prefix of them.
	for i := 0; i < 20; i++ {
		srv.Advance(100)
	}
	seg1 := make([]byte, 4096)
	conn1.SetReadDeadline(time.Now().Add(30 * time.Second))
	n1, err := io.ReadAtLeast(conn1, seg1, 512)
	if err != nil {
		t.Fatal(err)
	}
	conn1.Close() // link drop mid-stream

	// Units published while disconnected are lost, not replayed.
	for i := 0; i < 5; i++ {
		srv.Advance(100)
	}

	conn2, err := fleet.DialStream(telemAddr, id) // reconnect + resubscribe
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	drive(t, srv) // fly the job out; its hub close ends the stream
	seg2 := collectStream(t, conn2)
	if len(seg2) == 0 {
		t.Fatal("resubscribed stream empty")
	}

	// seg1 may end mid-frame (the TCP cut is byte-granular); trim to the
	// last complete frame before checking alignment.
	var p1 mavlink.Parser
	f1 := p1.Push(seg1[:n1])
	if p1.Resyncs != 0 || p1.BadCRC != 0 {
		t.Fatalf("pre-drop stream damaged: resyncs=%d badcrc=%d", p1.Resyncs, p1.BadCRC)
	}
	f2 := parseStream(t, seg2)
	if len(f1) == 0 || len(f2) == 0 {
		t.Fatalf("frames: %d before drop, %d after resubscribe", len(f1), len(f2))
	}

	var last uint32
	seen := map[uint32]bool{}
	for _, f := range append(f1, f2...) {
		if f.MsgID != mavlink.MsgHeartbeat {
			continue
		}
		h, err := mavlink.DecodeHeartbeat(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if seen[h.TimeMS] {
			t.Fatalf("heartbeat t=%d ms duplicated across reconnect", h.TimeMS)
		}
		seen[h.TimeMS] = true
		if h.TimeMS < last {
			t.Fatalf("heartbeat went backwards across reconnect: %d -> %d", last, h.TimeMS)
		}
		last = h.TimeMS
	}
}

// TestHTTPAPI exercises the JSON front end end to end: submit, poll, fetch
// status + digests, stats, 404s, and the shutdown request channel.
func TestHTTPAPI(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 2, MaxLanes: 8})
	go srv.Run()
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	c := fleet.NewClient(hs.URL)
	ids, err := c.Submit([]fleet.JobSpec{
		{Seed: 1, Hover: true, MaxSeconds: 2},
		{Seed: 2, Hover: true, MaxSeconds: 2},
	})
	if err != nil || len(ids) != 2 {
		t.Fatalf("submit: ids=%v err=%v", ids, err)
	}
	jobs, err := c.WaitAll(60*time.Second, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.State != "done" || j.Digests == nil || j.FlightTimeS <= 0 {
			t.Fatalf("job %d: %+v", j.ID, j)
		}
	}
	st, err := c.Job(ids[0])
	if err != nil || st.ID != ids[0] {
		t.Fatalf("job fetch: %+v err=%v", st, err)
	}
	if _, err := c.Job(9999); err == nil {
		t.Fatal("unknown job id did not 404")
	}
	stats, err := c.Stats()
	if err != nil || stats.Completed != 2 || stats.Submitted != 2 {
		t.Fatalf("stats: %+v err=%v", stats, err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(5 * time.Second):
		t.Fatal("POST /shutdown did not signal the server")
	}
}

// TestQueueAdmissionEviction pins capacity behaviour: far more jobs than
// lanes, all complete, and the lane cap is never exceeded.
func TestQueueAdmissionEviction(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 2, MaxLanes: 4})
	specs := coTenants(12, 500)
	if _, err := srv.SubmitAll(specs); err != nil {
		t.Fatal(err)
	}
	drive(t, srv)
	st := srv.Stats()
	if st.Completed != len(specs) || st.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", st.Completed, st.Failed, len(specs))
	}
	if st.PeakLive != 4 {
		t.Fatalf("peak live = %d, want the full 4-lane cap", st.PeakLive)
	}
	if st.Queued != 0 || st.Live != 0 {
		t.Fatalf("server not drained: %+v", st)
	}
}

// TestSubmitAfterShutdown pins the closed-server error path.
func TestSubmitAfterShutdown(t *testing.T) {
	srv := fleet.New(fleet.Config{})
	srv.Shutdown()
	if _, err := srv.Submit(fleet.JobSpec{Seed: 1}); err == nil {
		t.Fatal("submit after shutdown succeeded")
	}
}

// TestBuildFailureFailsJobOnly: a job whose flight can't build fails with
// its error recorded while co-tenants complete untouched.
func TestBuildFailureFailsJobOnly(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 1, MaxLanes: 4})
	ids, err := srv.SubmitAll([]fleet.JobSpec{
		{Seed: 1, Hover: true, MaxSeconds: 2},
		{Seed: 2, Hover: true, MaxSeconds: 2, BatteryCells: -3},
		{Seed: 3, Hover: true, MaxSeconds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, srv)
	bad, _ := srv.Job(ids[1])
	if bad.State != "failed" || bad.Error == "" {
		t.Fatalf("bad job: %+v", bad)
	}
	for _, id := range []uint64{ids[0], ids[2]} {
		if st, _ := srv.Job(id); st.State != "done" {
			t.Fatalf("co-tenant %d: %+v", id, st)
		}
	}
}

// TestShutdownWithActiveSubscriberCleanEOF is the shutdown-ordering
// regression test: Shutdown must stop the engine and wait for it to drain
// BEFORE closing telemetry hubs, so an actively-reading subscriber caught
// mid-flight drains to a clean, frame-aligned EOF having received every
// unit the engine ever published — nothing torn, nothing shed, nothing
// published into a closed hub.
func TestShutdownWithActiveSubscriberCleanEOF(t *testing.T) {
	srv := fleet.New(fleet.Config{Shards: 1, MaxLanes: 2, SubQueue: 8192, TickStride: 250})
	telemAddr := startTelemetry(t, srv)

	// A flight long enough to still be airborne at shutdown, publishing at
	// a brisk cadence.
	id, err := srv.Submit(fleet.JobSpec{Seed: 11, Hover: true, MaxSeconds: 1200, TelemetryEverySteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := fleet.DialStream(telemAddr, id)
	if err != nil {
		t.Fatal(err)
	}
	streamed := make(chan []byte, 1)
	go func() {
		data, _ := io.ReadAll(conn) // reads until the server ends the stream
		streamed <- data
	}()

	go srv.Run()
	for i := 0; srv.Stats().FramesPublished < 20; i++ {
		if i > 10000 {
			t.Fatal("no telemetry flowed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.Shutdown() // mid-flight, subscriber still attached and reading

	var data []byte
	select {
	case data = <-streamed:
	case <-time.After(30 * time.Second):
		t.Fatal("subscriber never reached EOF after shutdown")
	}
	frames := parseStream(t, data) // fails on any torn or interleaved frame
	heartbeats := 0
	for _, f := range frames {
		if f.MsgID == mavlink.MsgHeartbeat {
			heartbeats++
		}
	}
	st := srv.Stats()
	if st.FramesDropped != 0 {
		t.Fatalf("an actively-reading subscriber shed %d units", st.FramesDropped)
	}
	// One heartbeat per published unit: the subscriber got the whole
	// stream, which is only possible if the hub closed after the engine
	// fully drained.
	if uint64(heartbeats) != st.FramesPublished {
		t.Fatalf("subscriber parsed %d heartbeats of %d published units",
			heartbeats, st.FramesPublished)
	}
	if st.TelemetryBacklog != 0 {
		t.Fatalf("%d units left queued after shutdown drain", st.TelemetryBacklog)
	}
}
