//go:build failpoint

package fleet

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
)

// Chaos-injection failpoints, compiled in only under -tags failpoint. Two
// trigger mechanisms:
//
//   - Environment (external harness): FLEET_FAILPOINT names a point and the
//     process hard-exits (code 137, mimicking SIGKILL) the Nth time it is
//     reached, N = FLEET_FAILPOINT_AFTER (default 1). scripts/fleet_chaos.sh
//     uses this to kill fleetd inside specific durability windows.
//   - Registered hooks (in-process tests): SetFailpoint installs a func at a
//     named point; tests panic with a sentinel to simulate a crash without
//     losing the test process.
//
// Hook registration wins over the environment trigger at the same point.

var (
	fpMu    sync.Mutex
	fpHooks = map[string]func(){}

	fpEnvName  = os.Getenv("FLEET_FAILPOINT")
	fpEnvAfter = fpEnvAfterN()
	fpEnvHits  atomic.Int64
)

func fpEnvAfterN() int64 {
	n, err := strconv.ParseInt(os.Getenv("FLEET_FAILPOINT_AFTER"), 10, 64)
	if err != nil || n < 1 {
		return 1
	}
	return n
}

func failpoint(name string) {
	fpMu.Lock()
	h := fpHooks[name]
	fpMu.Unlock()
	if h != nil {
		h()
		return
	}
	if fpEnvName == name && fpEnvHits.Add(1) == fpEnvAfter {
		fmt.Fprintf(os.Stderr, "failpoint: crashing at %s (hit %d)\n", name, fpEnvAfter)
		os.Exit(137)
	}
}

// SetFailpoint installs fn to run every time the named crash point is
// reached. Test-only API.
func SetFailpoint(name string, fn func()) {
	fpMu.Lock()
	fpHooks[name] = fn
	fpMu.Unlock()
}

// ClearFailpoints removes every registered hook.
func ClearFailpoints() {
	fpMu.Lock()
	fpHooks = map[string]func(){}
	fpMu.Unlock()
}
