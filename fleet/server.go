package fleet

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"dronedse/groundstation"
	"dronedse/scenario"
)

// Config sizes a Server. The zero value is a usable single-box default.
type Config struct {
	// Shards is the number of scenario.Batch instances active flights are
	// spread across (default 2). Admission balances onto the least-loaded
	// shard; per-lane results are shard-invariant.
	Shards int
	// MaxLanes caps concurrently flying lanes across all shards (default
	// 1024). Jobs beyond the cap queue FIFO and are admitted as eviction
	// frees slots.
	MaxLanes int
	// TickStride is how many physics steps each engine advance moves every
	// live lane (default 250 — one 4 Hz telemetry unit per lane per
	// advance at the default cadence).
	TickStride int
	// SubQueue is the per-subscriber telemetry queue depth in units
	// (default groundstation.DefaultSubQueue). Laggards shed oldest.
	SubQueue int
	// DropArtifacts frees each finished job's log, trace and trajectory
	// after digesting, keeping only the summary and digests — the 10k+
	// lane benchmark configuration. Result-returning APIs then serve a
	// summary-only Result.
	DropArtifacts bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.MaxLanes <= 0 {
		c.MaxLanes = 1024
	}
	if c.TickStride <= 0 {
		c.TickStride = 250
	}
	return c
}

// job is the server-side record of one submitted flight.
type job struct {
	id   uint64
	spec JobSpec
	hub  *groundstation.Hub

	// Mutable under Server.mu.
	state JobState
	res   *scenario.Result
	err   error
	dig   *Digests
}

// shard is one scenario.Batch plus the lane→job table. Owned exclusively by
// the engine goroutine (the Advance caller); never touched under Server.mu.
type shard struct {
	batch *scenario.Batch
	jobs  map[int]*job // occupied lane index → job
}

// Server hosts concurrent simulation jobs. Exactly one goroutine may drive
// the engine — either Run or a manual Advance loop — while any number of
// goroutines submit jobs, query status, and stream telemetry.
type Server struct {
	cfg Config

	mu     sync.Mutex
	jobs   map[uint64]*job
	order  []uint64 // submission order, for listing
	queue  []*job   // admission FIFO
	nextID uint64
	closed bool
	conns  map[net.Conn]struct{} // live telemetry connections

	// Engine-owned (no mu): only the Advance caller touches the shards.
	shards []*shard

	// Step counters, read by Stats while the engine advances.
	ticks     atomic.Uint64
	laneSteps atomic.Uint64

	// Counter fields under mu. live is the occupied-lane count mirrored
	// out of the engine-owned shard tables so Stats never reads those.
	completed, failed, peakLive, live int

	wake        chan struct{}
	quit        chan struct{}
	reqShutdown chan struct{}
	reqOnce     sync.Once
}

// New builds an idle server; drive it with Run (or Advance) plus the
// Handler/ServeTelemetry front ends.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		jobs:        make(map[uint64]*job),
		conns:       make(map[net.Conn]struct{}),
		wake:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		reqShutdown: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			batch: scenario.NewBatchOf(),
			jobs:  make(map[int]*job),
		})
	}
	return s
}

// Submit enqueues one job and returns its ID. The job's telemetry hub
// exists from submission, so clients may subscribe before the flight
// launches.
func (s *Server) Submit(spec JobSpec) (uint64, error) {
	ids, err := s.SubmitAll([]JobSpec{spec})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// SubmitAll enqueues jobs in order and returns their IDs.
func (s *Server) SubmitAll(specs []JobSpec) ([]uint64, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("fleet: server shut down")
	}
	ids := make([]uint64, len(specs))
	for i, spec := range specs {
		s.nextID++
		j := &job{id: s.nextID, spec: spec, hub: groundstation.NewHub()}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.queue = append(s.queue, j)
		ids[i] = j.id
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return ids, nil
}

// admitLocked drains the queue into free lanes: build the stack, install
// the telemetry hub as the Spec's sink, and admit onto the least-loaded
// shard. A Build failure fails the job without consuming a lane. Called
// only from the engine goroutine (holding mu), so the shard tables are
// safe to touch.
func (s *Server) admitLocked() {
	for len(s.queue) > 0 && s.live < s.cfg.MaxLanes {
		j := s.queue[0]
		s.queue = s.queue[1:]
		spec := j.spec.Scenario()
		hub := j.hub
		spec.Telemetry.Send = func(raw []byte) { hub.Publish(raw) }
		st, err := scenario.Build(spec)
		if err != nil {
			j.state, j.err = JobFailed, err
			s.failed++
			hub.Close()
			continue
		}
		sh := s.shards[0]
		for _, cand := range s.shards[1:] {
			if len(cand.jobs) < len(sh.jobs) {
				sh = cand
			}
		}
		lane := sh.batch.Admit(st)
		if sh.batch.LaneDone(lane) { // Start failed on a running batch
			res, lerr := sh.batch.Evict(lane)
			j.state, j.res, j.err = JobFailed, res, lerr
			s.failed++
			hub.Close()
			continue
		}
		sh.jobs[lane] = j
		j.state = JobRunning
		s.live++
	}
	if s.live > s.peakLive {
		s.peakLive = s.live
	}
}

// finalize records a lane's outcome on its job and closes the telemetry
// stream (subscribers drain what is queued, then see EOF).
func (s *Server) finalize(j *job, res *scenario.Result, err error) {
	var dig *Digests
	if err == nil && res != nil {
		d := DigestResult(res)
		dig = &d
		if s.cfg.DropArtifacts {
			res.Log, res.Trace, res.Trajectory = nil, nil, nil
		}
	}
	s.mu.Lock()
	j.res, j.err, j.dig = res, err, dig
	s.live--
	if err != nil {
		j.state = JobFailed
		s.failed++
	} else {
		j.state = JobDone
		s.completed++
	}
	s.mu.Unlock()
	j.hub.Close()
}

// Advance is the engine's unit of work: admit queued jobs into free lanes,
// step every live lane by up to k physics steps, and harvest finished
// lanes. It reports whether any jobs are live or queued afterwards. Run is
// Advance in a loop; tests and benchmarks call it directly for lockstep
// control. Only one goroutine may call Advance.
func (s *Server) Advance(k int) bool {
	s.mu.Lock()
	s.admitLocked()
	s.mu.Unlock()

	busy := false
	for _, sh := range s.shards {
		if len(sh.jobs) == 0 {
			continue
		}
		busy = true
		s.laneSteps.Add(uint64(sh.batch.Live()) * uint64(k))
		sh.batch.TickN(k)
		for lane, j := range sh.jobs {
			if !sh.batch.LaneDone(lane) {
				continue
			}
			res, err := sh.batch.Evict(lane)
			delete(sh.jobs, lane)
			s.finalize(j, res, err)
		}
	}
	s.ticks.Add(1)

	s.mu.Lock()
	queued := len(s.queue)
	s.mu.Unlock()
	return busy || queued > 0
}

// Run drives the engine until Shutdown, sleeping while there is no work.
func (s *Server) Run() {
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		if !s.Advance(s.cfg.TickStride) {
			select {
			case <-s.quit:
				return
			case <-s.wake:
			}
		}
	}
}

// Shutdown stops the engine loop, ends every telemetry stream, and closes
// live subscriber connections. Queued jobs stay queued; running lanes stop
// where they are. Idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	close(s.quit)
	for _, j := range jobs {
		j.hub.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.requestShutdown()
}

// ShutdownRequested is closed when a client posts /shutdown (or Shutdown
// runs); process mains select on it to exit.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.reqShutdown }

func (s *Server) requestShutdown() { s.reqOnce.Do(func() { close(s.reqShutdown) }) }

// statusLocked renders a job's API view.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{ID: j.id, State: j.state.String(), Spec: j.spec}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.res != nil {
		st.FlightTimeS = j.res.FlightTimeS
		st.EnergyWh = j.res.EnergyWh
		st.ComputeWh = j.res.ComputeWh
		st.ComputeFlightCostMin = j.res.ComputeFlightCostMin()
		st.Completed = j.res.Completed
		st.FinalMode = j.res.FinalMode.String()
	}
	st.Digests = j.dig
	return st
}

// Job returns a job's status snapshot.
func (s *Server) Job(id uint64) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j), true
}

// Jobs returns every job's status, in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Result returns a finished job's structured outcome — the same Result a
// direct scenario.Run would have produced (summary-only when the server
// runs with DropArtifacts).
func (s *Server) Result(id uint64) (*scenario.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, errors.New("fleet: unknown job")
	}
	if !j.state.Terminal() {
		return nil, errors.New("fleet: job still in flight")
	}
	return j.res, j.err
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted: len(s.order),
		Queued:    len(s.queue),
		Live:      s.live,
		PeakLive:  s.peakLive,
		Completed: s.completed,
		Failed:    s.failed,
		Shards:    len(s.shards),
		Ticks:     s.ticks.Load(),
		LaneSteps: s.laneSteps.Load(),
	}
	for _, j := range s.jobs {
		pub, drop, subs := j.hub.Stats()
		st.FramesPublished += pub
		st.FramesDropped += drop
		st.Subscribers += subs
	}
	return st
}
