package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dronedse/fleet/journal"
	"dronedse/groundstation"
	"dronedse/scenario"
)

// Sentinel errors the HTTP layer maps onto status codes (429/503 with
// Retry-After) and clients classify as transient.
var (
	// ErrShutdown: the server has shut down and accepts nothing.
	ErrShutdown = errors.New("fleet: server shut down")
	// ErrDraining: the server is draining; submissions are refused but
	// in-flight jobs are finishing. Clients should retry against the
	// replacement instance.
	ErrDraining = errors.New("fleet: server draining")
	// ErrQueueFull: the bounded admission queue is at capacity; retry after
	// backoff instead of growing server memory without bound.
	ErrQueueFull = errors.New("fleet: admission queue full")
	// ErrDeadline: the job exceeded its wall-clock deadline and was evicted
	// mid-flight (journaled as CANCEL, not re-admitted on restart).
	ErrDeadline = errors.New("fleet: job deadline exceeded")
	// ErrBadSpec: a submitted JobSpec failed validation (unknown workload
	// kind, malformed workload payload). A tenant error, mapped to 400 —
	// never a retry.
	ErrBadSpec = errors.New("fleet: invalid job spec")
)

// Config sizes a Server. The zero value is a usable single-box default.
type Config struct {
	// Shards is the number of scenario.Batch instances active flights are
	// spread across (default 2). Admission balances onto the least-loaded
	// shard; per-lane results are shard-invariant.
	Shards int
	// MaxLanes caps concurrently flying lanes across all shards (default
	// 1024). Jobs beyond the cap queue FIFO and are admitted as eviction
	// frees slots.
	MaxLanes int
	// MaxQueue bounds the admission queue (jobs accepted but not yet
	// launched; default 4096). Submissions beyond it fail with ErrQueueFull
	// — HTTP 429 + Retry-After — instead of growing memory without bound.
	MaxQueue int
	// TickStride is how many physics steps each engine advance moves every
	// live lane (default 250 — one 4 Hz telemetry unit per lane per
	// advance at the default cadence).
	TickStride int
	// SubQueue is the per-subscriber telemetry queue depth in units
	// (default groundstation.DefaultSubQueue). Laggards shed oldest.
	SubQueue int
	// JobDeadline is the default wall-clock budget a job gets from launch
	// (0 = unlimited). A job that blows it is evicted mid-flight with
	// ErrDeadline. JobSpec.DeadlineS overrides it per job.
	JobDeadline time.Duration
	// DropArtifacts frees each finished job's log, trace and trajectory
	// after digesting, keeping only the summary and digests — the 10k+
	// lane benchmark configuration. Result-returning APIs then serve a
	// summary-only Result.
	DropArtifacts bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.MaxLanes <= 0 {
		c.MaxLanes = 1024
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4096
	}
	if c.TickStride <= 0 {
		c.TickStride = 250
	}
	return c
}

// job is the server-side record of one submitted flight.
type job struct {
	id   uint64
	spec JobSpec
	hub  *groundstation.Hub

	// deadline is the wall-clock eviction point (zero = none). Written at
	// launch and read at harvest, both on the engine goroutine.
	deadline time.Time

	// Mutable under Server.mu.
	state    JobState
	res      *scenario.Result
	err      error
	dig      *Digests
	sum      *JobSummary
	simTimeS float64 // live progress, mirrored out of the engine each advance
}

// shard is one scenario.Batch plus the lane→job table. Owned exclusively by
// the engine goroutine (the Advance caller); never touched under Server.mu.
type shard struct {
	batch *scenario.Batch
	jobs  map[int]*job // occupied lane index → job
}

// Server hosts concurrent simulation jobs. Exactly one goroutine may drive
// the engine — either Run or a manual Advance loop — while any number of
// goroutines submit jobs, query status, and stream telemetry.
type Server struct {
	cfg Config
	jl  *journal.Log // nil = no durability (in-memory only)

	mu       sync.Mutex
	jobs     map[uint64]*job
	order    []uint64 // submission order, for listing
	queue    []*job   // admission FIFO
	reserved int      // queue slots held by in-flight SubmitAll journal writes
	nextID   uint64
	closed   bool
	draining bool
	conns    map[net.Conn]struct{} // live telemetry connections

	// Engine-owned (no mu): only the Advance caller touches the shards.
	shards []*shard

	// Step counters, read by Stats while the engine advances.
	ticks     atomic.Uint64
	laneSteps atomic.Uint64

	// Counter fields under mu. live is the occupied-lane count mirrored
	// out of the engine-owned shard tables so Stats never reads those.
	completed, failed, peakLive, live int

	// subWG tracks telemetry-serving goroutines so Shutdown can wait for
	// subscribers to flush before force-closing their connections.
	subWG sync.WaitGroup

	wake        chan struct{}
	quit        chan struct{}
	engineDone  chan struct{}
	runStarted  atomic.Bool
	engineLive  atomic.Bool
	reqShutdown chan struct{}
	reqOnce     sync.Once
}

// New builds an idle server; drive it with Run (or Advance) plus the
// Handler/ServeTelemetry front ends.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		jobs:        make(map[uint64]*job),
		conns:       make(map[net.Conn]struct{}),
		wake:        make(chan struct{}, 1),
		quit:        make(chan struct{}),
		engineDone:  make(chan struct{}),
		reqShutdown: make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			batch: scenario.NewBatchOf(),
			jobs:  make(map[int]*job),
		})
	}
	return s
}

// NewJournaled builds a server whose accepted jobs survive crashes: the
// write-ahead log under dir is opened (created if absent), its torn tail
// truncated, and its records replayed — terminal jobs come back with their
// journaled digests and summaries; jobs without a terminal record are
// re-admitted and re-flown, producing digests bit-identical to what an
// uninterrupted run would have written (recovery is deterministic replay).
// The returned Recovery reports what was found.
func NewJournaled(cfg Config, dir string) (*Server, *Recovery, error) {
	jl, rec, err := openJournal(dir)
	if err != nil {
		return nil, nil, err
	}
	s := New(cfg)
	s.jl = jl
	s.mu.Lock()
	for _, rj := range rec.Jobs {
		j := &job{id: rj.ID, spec: rj.Spec, hub: groundstation.NewHub()}
		switch {
		case !rj.Done:
			j.state = JobQueued
			s.queue = append(s.queue, j)
		case rj.Err != "":
			j.state, j.err, j.dig, j.sum = JobFailed, errors.New(rj.Err), rj.Digests, rj.Summary
			s.failed++
			j.hub.Close()
		default:
			j.state, j.dig, j.sum = JobDone, rj.Digests, rj.Summary
			s.completed++
			j.hub.Close()
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	if rec.maxID > s.nextID {
		s.nextID = rec.maxID
	}
	s.mu.Unlock()
	return s, rec, nil
}

// Journal returns the server's write-ahead log (nil when running without
// durability).
func (s *Server) Journal() *journal.Log { return s.jl }

// Submit enqueues one job and returns its ID. The job's telemetry hub
// exists from submission, so clients may subscribe before the flight
// launches.
func (s *Server) Submit(spec JobSpec) (uint64, error) {
	ids, err := s.SubmitAll([]JobSpec{spec})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// SubmitAll enqueues jobs in order and returns their IDs. With a journal,
// every job is fsync'd durable BEFORE this returns: an acknowledged
// submission survives SIGKILL from that moment on. Returns ErrBadSpec when
// any job fails validation (the whole batch is refused — no partial
// acceptance), ErrQueueFull when the bounded admission queue cannot take
// the batch, ErrDraining / ErrShutdown when the server no longer accepts
// work.
func (s *Server) SubmitAll(specs []JobSpec) ([]uint64, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("%w: job %d: %v", ErrBadSpec, i, err)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if depth := len(s.queue) + s.reserved; depth+len(specs) > s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %d queued + %d submitted > %d",
			ErrQueueFull, depth, len(specs), s.cfg.MaxQueue)
	}
	jobs := make([]*job, len(specs))
	ids := make([]uint64, len(specs))
	for i, spec := range specs {
		s.nextID++
		jobs[i] = &job{id: s.nextID, spec: spec, hub: groundstation.NewHub()}
		ids[i] = s.nextID
	}
	s.reserved += len(specs)
	s.mu.Unlock()

	// Durability point: the SUBMIT records hit disk before the jobs become
	// visible anywhere. A crash after this line loses nothing; a crash
	// before it means the client never got its IDs back.
	if s.jl != nil {
		if err := appendSubmits(s.jl, jobs); err != nil {
			s.mu.Lock()
			s.reserved -= len(specs)
			s.mu.Unlock()
			return nil, fmt.Errorf("fleet: journal submit: %w", err)
		}
	}
	failpoint("fleet/submit-journaled")

	s.mu.Lock()
	s.reserved -= len(specs)
	if s.closed {
		// Shut down between the journal fsync and admission: the jobs are
		// durable and will be re-admitted on the next start, but this
		// instance cannot run them.
		s.mu.Unlock()
		return nil, ErrShutdown
	}
	for _, j := range jobs {
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.queue = append(s.queue, j)
	}
	s.mu.Unlock()
	s.wakeEngine()
	return ids, nil
}

func (s *Server) wakeEngine() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// admitLocked drains the queue into free lanes: build the stack, install
// the telemetry hub as the Spec's sink, and admit onto the least-loaded
// shard. A Build failure fails the job without consuming a lane. Called
// only from the engine goroutine (holding mu), so the shard tables are
// safe to touch. During a drain (or after shutdown) nothing launches:
// queued jobs stay journaled for the next start.
func (s *Server) admitLocked() {
	for len(s.queue) > 0 && s.live < s.cfg.MaxLanes && !s.draining && !s.closed {
		j := s.queue[0]
		s.queue = s.queue[1:]
		spec := j.spec.Scenario()
		hub := j.hub
		spec.Telemetry.Send = func(raw []byte) { hub.Publish(raw) }
		st, err := scenario.Build(spec)
		if err != nil {
			s.failLocked(j, err)
			continue
		}
		sh := s.shards[0]
		for _, cand := range s.shards[1:] {
			if len(cand.jobs) < len(sh.jobs) {
				sh = cand
			}
		}
		lane := sh.batch.Admit(st)
		if sh.batch.LaneDone(lane) { // Start failed on a running batch
			res, lerr := sh.batch.Evict(lane)
			_ = res
			s.failLocked(j, lerr)
			continue
		}
		if ddl := j.deadlineBudget(s.cfg.JobDeadline); ddl > 0 {
			j.deadline = time.Now().Add(ddl)
		}
		sh.jobs[lane] = j
		j.state = JobRunning
		s.live++
	}
	if s.live > s.peakLive {
		s.peakLive = s.live
	}
}

// deadlineBudget resolves a job's wall-clock budget: per-spec override,
// else the server default.
func (j *job) deadlineBudget(def time.Duration) time.Duration {
	if j.spec.DeadlineS > 0 {
		return time.Duration(j.spec.DeadlineS * float64(time.Second))
	}
	return def
}

// failLocked records a job that never reached a lane (Build/Start failure)
// as terminal, journaling the outcome so a restart does not retry a spec
// that deterministically cannot fly.
func (s *Server) failLocked(j *job, err error) {
	if s.jl != nil {
		// Rare path (malformed spec); the fsync under mu is acceptable.
		appendDone(s.jl, j.id, nil, nil, err)
	}
	j.state, j.err = JobFailed, err
	s.failed++
	j.hub.Close()
}

// finalize records a lane's outcome on its job and closes the telemetry
// stream (subscribers drain what is queued, then see EOF). With a journal,
// the terminal record is fsync'd before the outcome becomes visible: a
// crash before the fsync re-runs the job on restart (deterministically
// reproducing these digests); a crash after it recovers the digests
// directly.
func (s *Server) finalize(j *job, res *scenario.Result, err error) {
	failpoint("fleet/harvested")
	var dig *Digests
	var sum *JobSummary
	if err == nil && res != nil {
		d := DigestResult(res)
		dig = &d
		sum = &JobSummary{
			FlightTimeS:          res.FlightTimeS,
			EnergyWh:             res.EnergyWh,
			ComputeWh:            res.ComputeWh,
			ComputeFlightCostMin: res.ComputeFlightCostMin(),
			Completed:            res.Completed,
			FinalMode:            res.FinalMode.String(),
		}
		if s.cfg.DropArtifacts {
			res.Log, res.Trace, res.Trajectory = nil, nil, nil
		}
	}
	if s.jl != nil {
		// A journal write failure here does not block the in-memory outcome
		// (clients are not left waiting on a dead disk); it surfaces through
		// Ready() so the instance stops admitting new work.
		if errors.Is(err, ErrDeadline) {
			appendCancel(s.jl, j.id, err.Error())
		} else {
			appendDone(s.jl, j.id, dig, sum, err)
		}
	}
	failpoint("fleet/done-journaled")
	s.mu.Lock()
	j.res, j.err, j.dig, j.sum = res, err, dig, sum
	s.live--
	if err != nil {
		j.state = JobFailed
		s.failed++
	} else {
		j.state = JobDone
		s.completed++
	}
	s.mu.Unlock()
	j.hub.Close()
}

// Advance is the engine's unit of work: admit queued jobs into free lanes,
// step every live lane by up to k physics steps, and harvest finished
// lanes (evicting any job past its wall-clock deadline). It reports whether
// the engine still has runnable work. Run is Advance in a loop; tests and
// benchmarks call it directly for lockstep control. Only one goroutine may
// call Advance.
func (s *Server) Advance(k int) bool {
	s.mu.Lock()
	s.admitLocked()
	s.mu.Unlock()

	busy := false
	now := time.Now()
	for _, sh := range s.shards {
		if len(sh.jobs) == 0 {
			continue
		}
		busy = true
		s.laneSteps.Add(uint64(sh.batch.Live()) * uint64(k))
		sh.batch.TickN(k)
		for lane, j := range sh.jobs {
			if !sh.batch.LaneDone(lane) {
				if j.deadline.IsZero() || now.Before(j.deadline) {
					continue
				}
				sh.batch.Abort(lane, fmt.Errorf("%w (%.0fs wall-clock)",
					ErrDeadline, now.Sub(j.deadline.Add(-j.deadlineBudget(s.cfg.JobDeadline))).Seconds()))
			}
			res, err := sh.batch.Evict(lane)
			delete(sh.jobs, lane)
			s.finalize(j, res, err)
		}
		if len(sh.jobs) > 0 { // mirror live progress into the status API
			s.mu.Lock()
			for lane, j := range sh.jobs {
				j.simTimeS = sh.batch.LaneSimTimeS(lane)
			}
			s.mu.Unlock()
		}
	}
	s.ticks.Add(1)

	s.mu.Lock()
	runnable := len(s.queue) > 0 && !s.draining && !s.closed
	s.mu.Unlock()
	return busy || runnable
}

// Run drives the engine until Shutdown, sleeping while there is no work.
// It may be called once.
func (s *Server) Run() {
	if !s.runStarted.CompareAndSwap(false, true) {
		return
	}
	s.engineLive.Store(true)
	defer func() {
		s.engineLive.Store(false)
		close(s.engineDone)
	}()
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		if !s.Advance(s.cfg.TickStride) {
			select {
			case <-s.quit:
				return
			case <-s.wake:
			}
		}
	}
}

// DrainReport summarizes a graceful drain.
type DrainReport struct {
	// Completed/Failed are the totals at exit.
	Completed, Failed int
	// Requeued jobs were accepted but never launched; with a journal they
	// are durable and the next start re-admits them.
	Requeued int
	// Abandoned lanes were still flying when the grace period expired;
	// journaled jobs re-run from scratch on the next start (bit-identical
	// digests), un-journaled ones are lost.
	Abandoned int
	// Journaled reports whether Requeued/Abandoned jobs survive the exit.
	Journaled bool
}

// Clean reports whether every launched job finished within the grace
// period.
func (r DrainReport) Clean() bool { return r.Abandoned == 0 }

// Lost reports how many accepted jobs this exit abandons forever (always 0
// with a journal).
func (r DrainReport) Lost() int {
	if r.Journaled {
		return 0
	}
	return r.Requeued + r.Abandoned
}

// Drain is the graceful SIGTERM path: stop accepting and launching jobs,
// let in-flight lanes finish (bounded by grace, default 30s), then shut
// down. Queued and unfinished jobs stay durably journaled for the next
// start; with no journal they are reported in the DrainReport as lost.
// The engine (Run) must be live for lanes to finish.
func (s *Server) Drain(grace time.Duration) DrainReport {
	if grace <= 0 {
		grace = 30 * time.Second
	}
	s.mu.Lock()
	if !s.closed {
		s.draining = true
	}
	s.mu.Unlock()
	s.wakeEngine()

	deadline := time.Now().Add(grace)
	for {
		s.mu.Lock()
		live := s.live
		s.mu.Unlock()
		if live == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	s.mu.Lock()
	rep := DrainReport{
		Completed: s.completed,
		Failed:    s.failed,
		Requeued:  len(s.queue),
		Abandoned: s.live,
		Journaled: s.jl != nil,
	}
	s.mu.Unlock()
	s.Shutdown()
	return rep
}

// subscriberFlushGrace bounds how long Shutdown waits for telemetry
// subscribers to drain their queued units before force-closing their
// connections. A reading subscriber flushes in milliseconds; a stalled one
// is cut at the deadline.
const subscriberFlushGrace = 2 * time.Second

// Shutdown stops the service in EOF-clean order: stop admissions, stop the
// engine loop and wait for it to fully drain (no goroutine is mid-Publish
// afterwards), then close every job's telemetry hub so subscribers drain
// their queues to a clean, frame-aligned EOF, and only then — after a
// bounded flush grace — force-close whatever connections remain (stalled
// subscribers). Queued jobs stay queued; running lanes stop where they are
// (journaled jobs replay on the next start). Idempotent.
func (s *Server) Shutdown() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	close(s.quit)
	s.wakeEngine()
	if s.runStarted.Load() {
		<-s.engineDone // engine goroutine fully drained: publishing has ended
	}

	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.hub.Close() // subscribers drain queued units, then see EOF
	}

	flushed := make(chan struct{})
	go func() { s.subWG.Wait(); close(flushed) }()
	select {
	case <-flushed:
	case <-time.After(subscriberFlushGrace):
	}

	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if s.jl != nil {
		s.jl.Close()
	}
	s.requestShutdown()
}

// Ready returns nil when the instance should receive traffic: accepting
// work (not shut down or draining), engine loop live, and the journal (if
// any) still writable. The /readyz endpoint serves it.
func (s *Server) Ready() error {
	s.mu.Lock()
	closed, draining := s.closed, s.draining
	s.mu.Unlock()
	if closed {
		return ErrShutdown
	}
	if draining {
		return ErrDraining
	}
	if !s.engineLive.Load() {
		return errors.New("fleet: engine loop not running")
	}
	if s.jl != nil {
		if err := s.jl.Healthy(); err != nil {
			return fmt.Errorf("fleet: journal unwritable: %w", err)
		}
	}
	return nil
}

// ShutdownRequested is closed when a client posts /shutdown (or Shutdown
// runs); process mains select on it to exit.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.reqShutdown }

func (s *Server) requestShutdown() { s.reqOnce.Do(func() { close(s.reqShutdown) }) }

// statusLocked renders a job's API view. Terminal jobs recovered from the
// journal have no Result; their summary comes from the DONE record.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{ID: j.id, State: j.state.String(), Spec: j.spec}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch {
	case j.res != nil:
		st.FlightTimeS = j.res.FlightTimeS
		st.EnergyWh = j.res.EnergyWh
		st.ComputeWh = j.res.ComputeWh
		st.ComputeFlightCostMin = j.res.ComputeFlightCostMin()
		st.Completed = j.res.Completed
		st.FinalMode = j.res.FinalMode.String()
	case j.sum != nil:
		st.FlightTimeS = j.sum.FlightTimeS
		st.EnergyWh = j.sum.EnergyWh
		st.ComputeWh = j.sum.ComputeWh
		st.ComputeFlightCostMin = j.sum.ComputeFlightCostMin
		st.Completed = j.sum.Completed
		st.FinalMode = j.sum.FinalMode
	}
	if j.state == JobRunning {
		st.SimTimeS = j.simTimeS
	}
	st.Digests = j.dig
	return st
}

// Job returns a job's status snapshot.
func (s *Server) Job(id uint64) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.statusLocked(j), true
}

// Jobs returns every job's status, in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Result returns a finished job's structured outcome — the same Result a
// direct scenario.Run would have produced (summary-only when the server
// runs with DropArtifacts; nil for a completed job recovered from the
// journal, whose digests and summary survive but whose artifacts were never
// rebuilt).
func (s *Server) Result(id uint64) (*scenario.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, errors.New("fleet: unknown job")
	}
	if !j.state.Terminal() {
		return nil, errors.New("fleet: job still in flight")
	}
	return j.res, j.err
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted: len(s.order),
		Queued:    len(s.queue),
		Live:      s.live,
		PeakLive:  s.peakLive,
		Completed: s.completed,
		Failed:    s.failed,
		Shards:    len(s.shards),
		Draining:  s.draining,
		Ticks:     s.ticks.Load(),
		LaneSteps: s.laneSteps.Load(),
	}
	for _, j := range s.jobs {
		pub, drop, subs := j.hub.Stats()
		st.FramesPublished += pub
		st.FramesDropped += drop
		st.Subscribers += subs
		st.TelemetryBacklog += j.hub.Backlog()
	}
	return st
}
