package fleet_test

// Workload wire-format acceptance: every workload kind survives the full
// JSON encode → submit → flight path with digests equal to a direct
// scenario.Run, and malformed workloads are refused at admission — as
// ErrBadSpec in process, as HTTP 400 (never 500) at the front door.

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"dronedse/fleet"
	"dronedse/mathx"
	"dronedse/mission"
	"dronedse/scenario"
)

// workloadJobs returns one job per workload kind, each carrying its
// serializable WireSpec form, durations kept short.
func workloadJobs() []fleet.JobSpec {
	return []fleet.JobSpec{
		{Seed: 201, MaxSeconds: 20, Workload: &mission.WireSpec{KindName: "box"}},
		{Seed: 202, MaxSeconds: 2, Workload: &mission.WireSpec{KindName: "hover"}},
		{Seed: 203, MaxSeconds: 20, Workload: &mission.WireSpec{KindName: "waypoints",
			Plan: mission.BoxPlan(5)}},
		{Seed: 204, MaxSeconds: 30, Workload: &mission.WireSpec{KindName: "trajectory",
			Trajectory: &mission.Trajectory{
				Path: []mathx.Vec3{{Z: 6}, {X: 8, Y: 4, Z: 6}}, VMaxMS: 4, AMaxMS2: 2}}},
		{Seed: 205, MaxSeconds: 60, Workload: &mission.WireSpec{KindName: "coverage",
			Coverage: &mission.Coverage{WidthM: 10, HeightM: 10, SpacingM: 5}}},
		{Seed: 206, MaxSeconds: 60, Workload: &mission.WireSpec{KindName: "delivery",
			Delivery: &mission.Delivery{Legs: []mission.DeliveryLeg{
				{Pickup: mathx.V3(6, 0, 6), Dropoff: mathx.V3(6, 8, 6), PayloadKg: 0.6}}}}},
		{Seed: 207, MaxSeconds: 60, Workload: &mission.WireSpec{KindName: "follow",
			Follow: &mission.Follow{DurationS: 10}}},
	}
}

// TestWorkloadRoundTrip is the satellite-2 acceptance property: each
// workload kind, JSON-encoded and decoded as a tenant would send it, then
// submitted and flown by the server, produces digests bit-identical to a
// direct scenario.Run of the same spec.
func TestWorkloadRoundTrip(t *testing.T) {
	jobs := workloadJobs()

	// Reference digests from direct runs of the pre-encoding specs.
	want := make([]fleet.Digests, len(jobs))
	for i, j := range jobs {
		res, err := scenario.Run(j.Scenario())
		if err != nil {
			t.Fatalf("%s: direct run: %v", j.Workload.Kind(), err)
		}
		want[i] = fleet.DigestResult(res)
	}

	// Wire round trip: the decoded batch must submit and fly identically.
	raw, err := json.Marshal(jobs)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []fleet.JobSpec
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}

	srv := fleet.New(fleet.Config{Shards: 2, MaxLanes: 4})
	ids, err := srv.SubmitAll(decoded)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, srv)
	for i, id := range ids {
		st, ok := srv.Job(id)
		if !ok || st.Digests == nil {
			t.Fatalf("%s: job unfinished (state %s, err %q)",
				jobs[i].Workload.Kind(), st.State, st.Error)
		}
		if *st.Digests != want[i] {
			t.Fatalf("%s: wire round trip diverged from direct scenario.Run",
				jobs[i].Workload.Kind())
		}
	}
}

// TestSubmitValidation pins admission-time rejection: a malformed workload
// is refused as ErrBadSpec before any job in the batch is admitted, and the
// HTTP front end maps it to 400, not 500.
func TestSubmitValidation(t *testing.T) {
	badJobs := []fleet.JobSpec{
		{Seed: 1, Workload: &mission.WireSpec{KindName: "teleport"}},
		{Seed: 1, Workload: &mission.WireSpec{KindName: "delivery",
			Delivery: &mission.Delivery{}}}, // no legs
		{Seed: 1, Workload: &mission.WireSpec{KindName: "delivery",
			Delivery: &mission.Delivery{Legs: []mission.DeliveryLeg{
				{Pickup: mathx.V3(1, 0, 0), Dropoff: mathx.V3(2, 0, 5)}}}}}, // pickup on the ground
		{Seed: 1, Hover: true, Workload: &mission.WireSpec{KindName: "box"}}, // both unions set
	}

	srv := fleet.New(fleet.Config{Shards: 1, MaxLanes: 4})
	for _, bad := range badJobs {
		// The bad job rides second: the whole batch must be refused with no
		// partial admission.
		ids, err := srv.SubmitAll([]fleet.JobSpec{
			{Seed: 9, Hover: true, MaxSeconds: 2}, bad})
		if !errors.Is(err, fleet.ErrBadSpec) {
			t.Fatalf("bad workload admitted: ids=%v err=%v", ids, err)
		}
	}
	if stats := srv.Stats(); stats.Submitted != 0 {
		t.Fatalf("refused batches still admitted %d jobs", stats.Submitted)
	}

	// HTTP front door: the same malformed specs must come back as 400s.
	go srv.Run()
	defer srv.Shutdown()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	for _, bad := range badJobs {
		body, err := json.Marshal([]fleet.JobSpec{bad})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(hs.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("workload %q: got HTTP %d (%s), want 400",
				bad.Workload.KindName, resp.StatusCode, bytes.TrimSpace(msg))
		}
	}

	// A healthy workload batch still clears the same front door.
	c := fleet.NewClient(hs.URL)
	ids, err := c.Submit([]fleet.JobSpec{
		{Seed: 210, MaxSeconds: 2, Workload: &mission.WireSpec{KindName: "hover"}}})
	if err != nil || len(ids) != 1 {
		t.Fatalf("healthy workload refused: ids=%v err=%v", ids, err)
	}
}
