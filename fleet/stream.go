package fleet

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"dronedse/groundstation"
)

// Telemetry wire protocol: a subscriber connects over TCP and sends one
// line — "SUB <job-id>\n" — within HandshakeTimeout. The server answers
// "OK\n" and then streams the job's raw MAVLink frames until the job
// finishes (clean EOF) or the connection drops. On any problem it answers
// "ERR <reason>\n" and closes. Reconnect is just redial + resubscribe: the
// resumed stream is frame-aligned and duplicate-free (units are shed whole,
// never split), though units published while disconnected are gone.

// HandshakeTimeout bounds how long a subscriber may take to send its SUB
// line, so an idle connection cannot pin a serving goroutine.
const HandshakeTimeout = 10 * time.Second

// ServeTelemetry accepts subscriber connections on ln until Shutdown (which
// closes every live connection) or a listener error. Each connection is
// served by its own goroutine; a stalled subscriber blocks only its own
// goroutine while its queue sheds oldest units.
func (s *Server) ServeTelemetry(ln net.Listener) error {
	go func() {
		<-s.quit
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			select {
			case <-s.quit:
				return nil
			default:
			}
			return err
		}
		if !s.trackConn(conn) {
			conn.Close()
			return nil
		}
		// subWG lets Shutdown wait (bounded) for serving goroutines to
		// flush their subscribers' queues before force-closing connections.
		s.subWG.Add(1)
		go func() {
			defer s.subWG.Done()
			s.serveSubscriber(conn)
		}()
	}
}

func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// serveSubscriber handshakes one connection and pumps its subscription.
func (s *Server) serveSubscriber(conn net.Conn) {
	defer conn.Close()
	defer s.untrackConn(conn)

	conn.SetReadDeadline(time.Now().Add(HandshakeTimeout))
	line, err := bufio.NewReaderSize(conn, 256).ReadString('\n')
	if err != nil {
		fmt.Fprintf(conn, "ERR handshake: %v\n", err)
		return
	}
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != "SUB" {
		fmt.Fprint(conn, "ERR expected: SUB <job-id>\n")
		return
	}
	id, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		fmt.Fprint(conn, "ERR bad job id\n")
		return
	}

	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		fmt.Fprint(conn, "ERR unknown job\n")
		return
	}

	sub := j.hub.Subscribe(s.cfg.SubQueue)
	defer j.hub.Unsubscribe(sub)
	conn.SetReadDeadline(time.Time{})
	if _, err := fmt.Fprint(conn, "OK\n"); err != nil {
		return
	}
	// StreamTo returns nil when the job finishes (hub closed, queue
	// drained) — the client sees a clean EOF — or the write error when the
	// subscriber went away or Shutdown closed the connection under it.
	groundstation.StreamTo(conn, sub)
}
