package fleet_test

import (
	"testing"

	"dronedse/fleet"
	"dronedse/parallelx"
	"dronedse/scenario"
)

// coTenants builds n varied jobs — hover and mission flights, wind, SLAM
// compute, odd packs — cycling a seed base so many lanes share specs.
func coTenants(n int, seedBase int64) []fleet.JobSpec {
	shapes := []fleet.JobSpec{
		{Hover: true, MaxSeconds: 2},
		{Hover: true, MaxSeconds: 2, WindMeanMS: 4, WindGustMS: 2},
		{Hover: true, MaxSeconds: 2, SLAM: true},
		{Hover: true, MaxSeconds: 3, TakeoffAltM: 8},
		{MaxSeconds: 20},
		{Hover: true, MaxSeconds: 2, BatteryCells: 4, BatteryCapacityMah: 5000},
	}
	specs := make([]fleet.JobSpec, n)
	for i := range specs {
		s := shapes[i%len(shapes)]
		s.Seed = seedBase + int64(i%8)
		specs[i] = s
	}
	return specs
}

// drive advances the server until every job is terminal (bounded, so a
// stuck engine fails the test instead of hanging it).
func drive(t *testing.T, srv *fleet.Server) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		if !srv.Advance(1000) {
			return
		}
	}
	t.Fatal("engine did not drain: jobs still live after 100000 advances")
}

// TestFleetMultiTenancyDeterminism is the ISSUE 7 acceptance property: the
// same seeded job submitted alone and alongside ≥63 co-tenant jobs — across
// parallelx pools 1/2/8, multiple shards, and a lane cap that forces
// queueing, eviction and slot reuse — produces bit-identical trajectory,
// flight-log and Equation-7 ledger digests, equal to a direct scenario.Run.
func TestFleetMultiTenancyDeterminism(t *testing.T) {
	ref := fleet.JobSpec{Seed: 7, Hover: true, MaxSeconds: 2, WindMeanMS: 4, WindGustMS: 2}
	res, err := scenario.Run(ref.Scenario())
	if err != nil {
		t.Fatal(err)
	}
	want := fleet.DigestResult(res)

	prev := parallelx.PoolSize()
	defer parallelx.SetPoolSize(prev)
	for _, pool := range []int{1, 2, 8} {
		parallelx.SetPoolSize(pool)

		// Solo: the job is the server's only tenant.
		solo := fleet.New(fleet.Config{Shards: 1, MaxLanes: 4})
		soloID, err := solo.Submit(ref)
		if err != nil {
			t.Fatal(err)
		}
		drive(t, solo)
		soloSt, ok := solo.Job(soloID)
		if !ok || soloSt.Digests == nil {
			t.Fatalf("pool %d: solo job missing digests (state %s, err %q)",
				pool, soloSt.State, soloSt.Error)
		}
		if *soloSt.Digests != want {
			t.Fatalf("pool %d: solo fleet run diverged from scenario.Run", pool)
		}

		// Multi-tenant: the same job buried mid-queue among 63 co-tenants,
		// on 3 shards with only 16 lanes — admission order, queue churn and
		// slot reuse all in play.
		specs := coTenants(63, 100)
		specs = append(specs[:17], append([]fleet.JobSpec{ref}, specs[17:]...)...)
		multi := fleet.New(fleet.Config{Shards: 3, MaxLanes: 16})
		ids, err := multi.SubmitAll(specs)
		if err != nil {
			t.Fatal(err)
		}
		drive(t, multi)

		st, ok := multi.Job(ids[17])
		if !ok || st.Digests == nil {
			t.Fatalf("pool %d: tenant job missing digests (state %s, err %q)",
				pool, st.State, st.Error)
		}
		if *st.Digests != want {
			t.Fatalf("pool %d: job diverged under 63 co-tenants", pool)
		}

		// Every co-tenant pair sharing a JobSpec must agree too, and the
		// whole digest table must be pool-invariant: pin it against the
		// pool-1 run.
		table := map[fleet.JobSpec]fleet.Digests{}
		for _, id := range ids {
			js, ok := multi.Job(id)
			if !ok || js.Digests == nil {
				t.Fatalf("pool %d: job %d unfinished (state %s, err %q)", pool, id, js.State, js.Error)
			}
			if prev, seen := table[js.Spec]; seen && prev != *js.Digests {
				t.Fatalf("pool %d: co-tenants with identical specs diverged (seed %d)",
					pool, js.Spec.Seed)
			}
			table[js.Spec] = *js.Digests
		}
		stats := multi.Stats()
		if stats.Completed != len(specs) || stats.Failed != 0 {
			t.Fatalf("pool %d: completed=%d failed=%d, want %d/0",
				pool, stats.Completed, stats.Failed, len(specs))
		}
		if stats.PeakLive > 16 {
			t.Fatalf("pool %d: peak live %d exceeded the 16-lane cap", pool, stats.PeakLive)
		}
	}
}

// TestFleetResultMatchesScenarioRun pins the structured-Result contract:
// job completion hands back the same Result a direct scenario.Run returns.
func TestFleetResultMatchesScenarioRun(t *testing.T) {
	spec := fleet.JobSpec{Seed: 3, MaxSeconds: 25}
	direct, err := scenario.Run(spec.Scenario())
	if err != nil {
		t.Fatal(err)
	}

	srv := fleet.New(fleet.Config{Shards: 2, MaxLanes: 8})
	id, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, srv)
	res, err := srv.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.DigestResult(res) != fleet.DigestResult(direct) {
		t.Fatal("fleet Result diverged from scenario.Run")
	}
	if res.Completed != direct.Completed || res.FlightTimeS != direct.FlightTimeS {
		t.Fatal("fleet Result summary fields diverged")
	}
}
