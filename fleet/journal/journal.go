// Package journal is a crash-safe append-only record log — the write-ahead
// log under fleetd's durability contract. Records are opaque (kind byte +
// payload) and framed as
//
//	length  uint32 LE   // len(payload) + 1 (the kind byte)
//	crc     uint32 LE   // CRC-32C (Castagnoli) over kind + payload
//	kind    byte
//	payload length-1 bytes
//
// Append frames, writes and fsyncs before returning, so an acknowledged
// record survives SIGKILL and power loss. Open replays the file front to
// back; the first frame that fails validation — short header, absurd length,
// short body, CRC mismatch — marks the torn tail left by a crash mid-write,
// and Open truncates the file back to the last whole record instead of
// failing. Under the fsync-before-acknowledge discipline only the tail can
// be torn; a mid-file flip (disk corruption) is indistinguishable from a
// tail and everything from the bad frame on is dropped the same way.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// MaxRecord bounds a record's framed payload (kind + payload bytes). A
// length field beyond it is treated as corruption, so a flipped length byte
// cannot make replay attempt a multi-gigabyte read.
const MaxRecord = 16 << 20

const headerSize = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed entry: the kind byte and its payload. The payload
// slice is owned by the caller.
type Record struct {
	Kind    byte
	Payload []byte
}

// Log is an open journal file. Append is safe for concurrent use; the log
// keeps its own error state so a failed disk turns every later Append (and
// Healthy) into that error instead of silently dropping records.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64
	err  error
}

// Open opens (creating if absent) the journal at path, replays every intact
// record, truncates a torn or corrupt tail back to the last whole record,
// and returns the log positioned for append. truncated reports how many
// trailing bytes were cut; it is zero for a cleanly-closed journal.
func Open(path string) (l *Log, recs []Record, truncated int64, err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal: read: %w", err)
	}
	recs, clean := Scan(data)
	truncated = int64(len(data)) - clean
	if truncated > 0 {
		if err := f.Truncate(clean); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, fmt.Errorf("journal: %w", err)
		}
	}
	if _, err := f.Seek(clean, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, fmt.Errorf("journal: %w", err)
	}
	// Make the file's directory entry durable too: a journal created just
	// before a crash must still be found on restart.
	if dir, derr := os.Open(filepath.Dir(path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	return &Log{f: f, path: path, size: clean}, recs, truncated, nil
}

// Scan replays journal bytes from memory: it returns every intact record
// and the byte offset of the clean prefix (everything past it is a torn or
// corrupt tail). Exposed so tests can frame-check arbitrary byte strings.
func Scan(data []byte) (recs []Record, clean int64) {
	off := 0
	for {
		if len(data)-off < headerSize {
			return recs, int64(off)
		}
		length := binary.LittleEndian.Uint32(data[off:])
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > MaxRecord {
			return recs, int64(off)
		}
		body := data[off+headerSize:]
		if uint32(len(body)) < length {
			return recs, int64(off)
		}
		body = body[:length]
		if crc32.Checksum(body, castagnoli) != crc {
			return recs, int64(off)
		}
		payload := make([]byte, length-1)
		copy(payload, body[1:])
		recs = append(recs, Record{Kind: body[0], Payload: payload})
		off += headerSize + int(length)
	}
}

// frame appends one record's wire form to buf.
func frame(buf []byte, kind byte, payload []byte) ([]byte, error) {
	length := 1 + len(payload)
	if length > MaxRecord {
		return nil, fmt.Errorf("journal: record %d bytes exceeds MaxRecord", length)
	}
	var hdr [headerSize + 1]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(length))
	hdr[8] = kind
	crc := crc32.Update(crc32.Checksum(hdr[8:9], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// Append frames one record, writes it, and fsyncs before returning: once
// Append returns nil the record is durable.
func (l *Log) Append(kind byte, payload []byte) error {
	return l.AppendBatch([]Record{{Kind: kind, Payload: payload}})
}

// AppendBatch appends records back to back under a single fsync — the batch
// is durable as a unit (a crash mid-batch leaves a torn tail that Open cuts
// back to the last whole record).
func (l *Log) AppendBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	var buf []byte
	var err error
	for _, r := range recs {
		if buf, err = frame(buf, r.Kind, r.Payload); err != nil {
			return err
		}
	}
	if _, err := l.f.Write(buf); err != nil {
		l.err = fmt.Errorf("journal: write: %w", err)
		return l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("journal: fsync: %w", err)
		return l.err
	}
	l.size += int64(len(buf))
	return nil
}

// Healthy returns nil while the log can still accept records; after a write
// or fsync failure it returns that error permanently (the readiness probe's
// journal-writable check).
func (l *Log) Healthy() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Size returns the current clean length of the journal in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Path returns the journal file's path.
func (l *Log) Path() string { return l.path }

// Close releases the file handle. A closed log fails further Appends.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = fmt.Errorf("journal: closed")
	}
	return l.f.Close()
}
