package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, path string) (*Log, []Record, int64) {
	t.Helper()
	l, recs, trunc, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs, trunc
}

func sampleRecords() []Record {
	return []Record{
		{Kind: 1, Payload: []byte(`{"id":1,"spec":{"seed":7}}`)},
		{Kind: 2, Payload: []byte(`{"id":1,"digests":{"trajectory":"aa"}}`)},
		{Kind: 3, Payload: nil}, // empty payload is legal: length = 1 (kind only)
		{Kind: 2, Payload: bytes.Repeat([]byte{0xA5}, 1024)},
	}
}

func recordsEqual(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

// TestRoundTrip pins the basic contract: append, reopen, replay identical
// records, keep appending on the reopened log.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal", "fleet.wal")
	l, recs, trunc := mustOpen(t, path)
	if len(recs) != 0 || trunc != 0 {
		t.Fatalf("fresh journal replayed %d records, truncated %d", len(recs), trunc)
	}
	want := sampleRecords()
	for _, r := range want[:2] {
		if err := l.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendBatch(want[2:]); err != nil {
		t.Fatal(err)
	}
	size := l.Size()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(9, nil); err == nil {
		t.Fatal("append on a closed log succeeded")
	}

	l2, recs, trunc := mustOpen(t, path)
	defer l2.Close()
	if trunc != 0 {
		t.Fatalf("clean journal reported %d torn bytes", trunc)
	}
	if !recordsEqual(recs, want) {
		t.Fatalf("replay mismatch:\n got %v\nwant %v", recs, want)
	}
	if l2.Size() != size {
		t.Fatalf("size after reopen %d, want %d", l2.Size(), size)
	}
	if err := l2.Append(5, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs, _ = mustOpen(t, path)
	if len(recs) != len(want)+1 || recs[len(recs)-1].Kind != 5 {
		t.Fatalf("append after reopen lost: %v", recs)
	}
}

// writeJournal writes records through the real Append path and returns the
// file's bytes.
func writeJournal(t *testing.T, path string, recs []Record) []byte {
	t.Helper()
	l, _, _ := mustOpen(t, path)
	if err := l.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTornTailEveryOffset is the crash-mid-write property: truncating the
// file at EVERY byte offset inside the final frame must recover exactly the
// earlier records, cut the file back to the clean boundary, and leave the
// journal appendable.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	data := writeJournal(t, filepath.Join(dir, "full.wal"), want)

	// Clean boundary before the last record.
	prefix, lastStart := Scan(data[:len(data)-1])
	if int64(len(prefix)) != int64(len(want)-1) {
		t.Fatalf("scan setup: %d records before torn tail", len(prefix))
	}

	for cut := int(lastStart); cut < len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("torn_%d.wal", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, trunc := mustOpen(t, path)
		if !recordsEqual(recs, want[:len(want)-1]) {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), len(want)-1)
		}
		if wantTrunc := int64(cut) - lastStart; trunc != wantTrunc {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, trunc, wantTrunc)
		}
		if fi, _ := os.Stat(path); fi.Size() != lastStart {
			t.Fatalf("cut %d: file left at %d bytes, want clean boundary %d", cut, fi.Size(), lastStart)
		}
		// The recovered journal must accept the re-issued record and replay
		// whole on the next open.
		if err := l.Append(want[len(want)-1].Kind, want[len(want)-1].Payload); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l.Close()
		_, recs, trunc = mustOpen(t, path)
		if !recordsEqual(recs, want) || trunc != 0 {
			t.Fatalf("cut %d: re-issued journal replayed %d records (trunc %d)", cut, len(recs), trunc)
		}
	}
}

// TestCorruptTail flips one byte in the final record's payload and in its
// CRC: both must be detected and truncated, never replayed.
func TestCorruptTail(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	data := writeJournal(t, filepath.Join(dir, "full.wal"), want)
	_, lastStart := Scan(data[:len(data)-1])

	for name, flip := range map[string]int{
		"crc":     int(lastStart) + 5,          // inside the CRC field
		"payload": len(data) - 3,               // inside the payload
		"kind":    int(lastStart) + headerSize, // the kind byte
		"length":  int(lastStart) + 1,          // middle byte of the length
	} {
		mut := append([]byte(nil), data...)
		mut[flip] ^= 0x40
		path := filepath.Join(dir, name+".wal")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, trunc := mustOpen(t, path)
		l.Close()
		if !recordsEqual(recs, want[:len(want)-1]) {
			t.Fatalf("%s flip: replayed %d records, want %d", name, len(recs), len(want)-1)
		}
		if trunc == 0 {
			t.Fatalf("%s flip: no truncation reported", name)
		}
	}
}

// TestAbsurdLengthGuard: a length field past MaxRecord is corruption, not a
// 4 GiB allocation.
func TestAbsurdLengthGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	want := sampleRecords()[:1]
	data := writeJournal(t, path, want)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(MaxRecord+1))
	if err := os.WriteFile(path, append(data, hdr[:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, trunc := mustOpen(t, path)
	l.Close()
	if !recordsEqual(recs, want) || trunc != headerSize {
		t.Fatalf("absurd length: %d records, trunc %d", len(recs), trunc)
	}
}

// TestMidFileCorruptionDropsSuffix documents the WAL rule: the first bad
// frame ends replay, so a mid-file flip drops every later record too (only
// the tail can be torn under fsync-before-acknowledge; anything else is
// disk corruption and the journal refuses to guess past it).
func TestMidFileCorruptionDropsSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mid.wal")
	data := writeJournal(t, path, sampleRecords())
	mut := append([]byte(nil), data...)
	mut[headerSize+2] ^= 0xFF // payload byte of record 0
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, trunc := mustOpen(t, path)
	l.Close()
	if len(recs) != 0 || trunc != int64(len(data)) {
		t.Fatalf("mid-file flip: %d records, trunc %d, want 0 and %d", len(recs), trunc, len(data))
	}
}

// TestOversizeAppendRefused: MaxRecord is enforced on the write side too.
func TestOversizeAppendRefused(t *testing.T) {
	l, _, _ := mustOpen(t, filepath.Join(t.TempDir(), "x.wal"))
	defer l.Close()
	if err := l.Append(1, make([]byte, MaxRecord)); err == nil {
		t.Fatal("oversize record accepted")
	}
	if err := l.Healthy(); err != nil {
		t.Fatalf("oversize refusal poisoned the log: %v", err)
	}
}
