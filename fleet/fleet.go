// Package fleet turns the scenario engine into a long-running multi-tenant
// simulation service: jobs — JSON-serializable flight experiments derived
// from scenario.Spec — are admitted into lanes of one or more scenario.Batch
// shards stepped by a single engine goroutine, and each flight's live
// MAVLink telemetry fans out to subscribed ground-station clients through
// bounded drop-oldest queues (groundstation.Hub), so a laggard subscriber
// can never stall the tick loop.
//
// Determinism contract, inherited from the batch engine and preserved under
// multi-tenancy: a job's seed fully determines its flight. The same JobSpec
// produces bit-identical trajectory, flight-log and Equation-7 ledger
// digests whether it runs alone or beside thousands of co-tenants, at any
// parallelx pool size, in any admission order, in any shard — because every
// lane owns its RNG streams, scratch and ledgers outright, and lanes never
// exchange data. Job completion yields the same structured scenario.Result
// a direct scenario.Run would have returned.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash"
	"math"

	"dronedse/mission"
	"dronedse/scenario"
)

// JobState is a job's lifecycle position.
type JobState int32

// Job lifecycle: Queued (waiting for a free lane) → Running (occupying a
// lane) → Done or Failed (terminal).
const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobFailed
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	default:
		return "failed"
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// JobSpec is the wire form of a flight experiment: the JSON-serializable
// subset of scenario.Spec a remote tenant may submit (no host callbacks, no
// fault-injector objects — those stay in-process). Zero values select the
// same defaults scenario.Spec documents.
type JobSpec struct {
	Seed        int64   `json:"seed"`
	Hover       bool    `json:"hover,omitempty"`
	MaxSeconds  float64 `json:"max_seconds,omitempty"`
	TakeoffAltM float64 `json:"takeoff_alt_m,omitempty"`

	// Workload selects what the vehicle does after takeoff (nil plus Hover
	// false = the reference box mission; see mission.WireSpec for the kinds).
	Workload *mission.WireSpec `json:"workload,omitempty"`

	WindMeanMS float64 `json:"wind_mean_ms,omitempty"`
	WindGustMS float64 `json:"wind_gust_ms,omitempty"`

	BatteryCells       int     `json:"battery_cells,omitempty"`
	BatteryCapacityMah float64 `json:"battery_capacity_mah,omitempty"`
	BatteryCRating     float64 `json:"battery_c_rating,omitempty"`

	// SLAM selects the SLAM-active companion-computer power phase.
	SLAM bool `json:"slam,omitempty"`

	// TelemetryEverySteps is the physics-step cadence between published
	// telemetry units (0 = the scenario default, 250 steps = 4 Hz).
	TelemetryEverySteps int `json:"telemetry_every_steps,omitempty"`

	// DeadlineS is a wall-clock budget in seconds for the job once it
	// launches (0 = the server default). A job past its deadline is evicted
	// mid-flight with ErrDeadline and journaled as CANCEL — a service
	// policy, not part of the simulated physics, so deadline kills are the
	// one deliberately nondeterministic outcome in the system.
	DeadlineS float64 `json:"deadline_s,omitempty"`
}

// Validate vets the wire form before any engine resources are committed to
// it: an unknown workload kind or a malformed workload payload is a tenant
// error the server must refuse at submit time (HTTP 400), not an engine
// fault mid-flight.
func (j JobSpec) Validate() error {
	if j.Workload == nil {
		return nil
	}
	if j.Hover {
		return errors.New("fleet: job sets both hover and a workload")
	}
	return j.Workload.Validate()
}

// Scenario expands the wire form into the engine's Spec. The telemetry sink
// is left nil; the server installs its fan-out hub there.
func (j JobSpec) Scenario() scenario.Spec {
	spec := scenario.Spec{
		Seed:        j.Seed,
		Hover:       j.Hover,
		MaxSeconds:  j.MaxSeconds,
		TakeoffAltM: j.TakeoffAltM,
		Wind:        scenario.Wind{MeanMS: j.WindMeanMS, GustMS: j.WindGustMS},
		Battery: scenario.Battery{
			Cells:       j.BatteryCells,
			CapacityMah: j.BatteryCapacityMah,
			CRating:     j.BatteryCRating,
		},
		Compute:   scenario.Compute{SLAM: j.SLAM},
		Telemetry: scenario.Telemetry{EverySteps: j.TelemetryEverySteps},
	}
	// Store the WireSpec by value: assigning the typed-nil pointer would
	// make spec.Workload a non-nil interface wrapping nil.
	if j.Workload != nil {
		spec.Workload = *j.Workload
	}
	return spec
}

// Digests are the determinism contract's fingerprints, taken at full
// float-bit fidelity over the three artifacts multi-tenancy must not
// perturb: the 10 Hz trajectory, the DataFlash-style flight log, and the
// Equation-7 energy/flight-time ledger.
type Digests struct {
	Trajectory string `json:"trajectory"`
	FlightLog  string `json:"flight_log"`
	Ledger     string `json:"ledger"`
}

func putBits(h hash.Hash, vs ...float64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}

// DigestResult fingerprints a flight outcome. Two results digest equal iff
// their trajectories, logs and ledgers are bit-identical.
func DigestResult(res *scenario.Result) Digests {
	traj := sha256.New()
	for _, p := range res.Trajectory {
		putBits(traj, p.X, p.Y, p.Z)
	}

	logh := sha256.New()
	if res.TakeoffOK {
		logh.Write([]byte{1})
	} else {
		logh.Write([]byte{0})
	}
	if res.Completed {
		logh.Write([]byte{1})
	} else {
		logh.Write([]byte{0})
	}
	logh.Write([]byte(res.FinalMode.String()))
	logh.Write([]byte(res.LastEvent))
	for _, e := range res.Log.Entries() {
		putBits(logh, e.TimeS, e.PosX, e.PosY, e.Alt, e.Speed,
			e.Roll, e.Pitch, e.Yaw, e.PowerW, e.BatterySoC)
		logh.Write([]byte(e.Mode.String()))
	}
	for _, e := range res.Log.Events() {
		putBits(logh, e.TimeS)
		logh.Write([]byte(e.Text))
	}

	ledger := sha256.New()
	putBits(ledger, res.FlightTimeS, res.EnergyWh, res.ComputeWh,
		res.MaxEstErrM, res.AvgPowerW(), res.AvgComputeW(), res.ComputeFlightCostMin())
	putBits(ledger, float64(res.Fallbacks), float64(res.Recoveries))

	return Digests{
		Trajectory: hex.EncodeToString(traj.Sum(nil)),
		FlightLog:  hex.EncodeToString(logh.Sum(nil)),
		Ledger:     hex.EncodeToString(ledger.Sum(nil)),
	}
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID    uint64  `json:"id"`
	State string  `json:"state"`
	Spec  JobSpec `json:"spec"`

	// Terminal-state summary (zero until Done/Failed).
	FlightTimeS          float64  `json:"flight_time_s,omitempty"`
	EnergyWh             float64  `json:"energy_wh,omitempty"`
	ComputeWh            float64  `json:"compute_wh,omitempty"`
	ComputeFlightCostMin float64  `json:"compute_flight_cost_min,omitempty"`
	Completed            bool     `json:"completed,omitempty"`
	FinalMode            string   `json:"final_mode,omitempty"`
	Digests              *Digests `json:"digests,omitempty"`
	Error                string   `json:"error,omitempty"`

	// SimTimeS is the running job's current simulated time — live progress
	// for in-flight jobs, zero once terminal (FlightTimeS takes over).
	SimTimeS float64 `json:"sim_time_s,omitempty"`
}

// Stats is the server's aggregate counter snapshot.
type Stats struct {
	Submitted int `json:"submitted"`
	Queued    int `json:"queued"`
	Live      int `json:"live"`
	PeakLive  int `json:"peak_live"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Shards    int `json:"shards"`

	// Draining reports a graceful shutdown in progress: submissions are
	// refused while in-flight jobs finish.
	Draining bool `json:"draining,omitempty"`

	// Ticks counts engine advances; LaneSteps the total physics steps
	// summed over every lane those advances moved.
	Ticks     uint64 `json:"ticks"`
	LaneSteps uint64 `json:"lane_steps"`

	// Telemetry fan-out accounting, summed over every job's hub.
	FramesPublished uint64 `json:"frames_published"`
	FramesDropped   uint64 `json:"frames_dropped"`
	Subscribers     int    `json:"subscribers"`
	// TelemetryBacklog is the total queued-but-undelivered units across all
	// subscribers right now.
	TelemetryBacklog int `json:"telemetry_backlog,omitempty"`
}
