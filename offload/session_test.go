package offload

import (
	"testing"

	"dronedse/core"
	"dronedse/slam"
)

// testStats returns a plausible SLAM ledger for session math.
func testStats() slam.Stats {
	return slam.Stats{FeatureExtractionOps: 40e6, MatchingOps: 20e6, LocalBAOps: 30e6, Frames: 100}
}

// windowProbe fails the link inside [from, to).
type windowProbe struct{ from, to float64 }

func (w windowProbe) LinkUp(t float64) bool { return t < w.from || t >= w.to }
func (w windowProbe) BandwidthScale(t float64) float64 {
	if w.LinkUp(t) {
		return 1
	}
	return 0
}

func newTestSession(t *testing.T, seed int64) *Session {
	t.Helper()
	s, err := NewSession(SessionConfig{
		Link: WiFi5GHz(), Node: GroundStationGPU(), W: SLAMWorkload(),
		OnboardW: 2.0, OnboardG: 50, Seed: seed,
	}, testStats())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionFallbackAndRecovery(t *testing.T) {
	s := newTestSession(t, 1)
	s.SetProbe(windowProbe{from: 2, to: 10})
	if !s.Offloaded() {
		t.Fatal("session must start offloaded")
	}
	radioW := WiFi5GHz().TxPowerW
	if got := s.AirborneW(); got != radioW {
		t.Fatalf("offloaded AirborneW = %v, want %v", got, radioW)
	}
	var fellBackAt, recoveredAt float64 = -1, -1
	for step := 0; step <= 3000; step++ {
		tm := float64(step) * 0.01 // 100 Hz polling for 30 s
		if s.Step(tm) {
			if !s.Offloaded() && fellBackAt < 0 {
				fellBackAt = tm
			}
			if s.Offloaded() && fellBackAt >= 0 {
				recoveredAt = tm
			}
		}
	}
	if fellBackAt < 2 || fellBackAt > 6 {
		t.Errorf("fallback at t=%.2f, want shortly after the outage at t=2", fellBackAt)
	}
	if recoveredAt < 15-1e-9 || recoveredAt > 20 {
		t.Errorf("recovery at t=%.2f, want ~5 s of healthy link after t=10", recoveredAt)
	}
	if s.Fallbacks != 1 || s.Recoveries != 1 {
		t.Errorf("fallbacks=%d recoveries=%d, want 1/1", s.Fallbacks, s.Recoveries)
	}
	if s.Failures == 0 || s.Attempts <= s.Failures {
		t.Errorf("attempts=%d failures=%d: retry accounting broken", s.Attempts, s.Failures)
	}
}

// TestSessionBackoffSpacing verifies failed attempts space out instead of
// hammering the dead link every poll.
func TestSessionBackoffSpacing(t *testing.T) {
	s := newTestSession(t, 2)
	s.SetProbe(windowProbe{from: 0, to: 1e9})
	for step := 0; step <= 1000; step++ {
		s.Step(float64(step) * 0.01) // 10 s of dead link at 100 Hz
	}
	// With 50 ms base doubling to a 2 s cap, 10 s admits far fewer than
	// the 1001 polls.
	if s.Attempts > 30 {
		t.Errorf("%d attempts in 10 s of dead link: backoff not applied", s.Attempts)
	}
	if s.Offloaded() {
		t.Error("session still offloaded after sustained link failure")
	}
}

func TestSessionDeterministic(t *testing.T) {
	run := func() (int, int, float64) {
		s := newTestSession(t, 7)
		s.SetProbe(windowProbe{from: 1, to: 4})
		last := 0.0
		for step := 0; step <= 2000; step++ {
			tm := float64(step) * 0.005
			if s.Step(tm) {
				last = tm
			}
		}
		return s.Attempts, s.Failures, last
	}
	a1, f1, l1 := run()
	a2, f2, l2 := run()
	if a1 != a2 || f1 != f2 || l1 != l2 {
		t.Errorf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", a1, f1, l1, a2, f2, l2)
	}
}

func TestFallbackCostMin(t *testing.T) {
	base, err := core.Resolve(core.DefaultSpec(), core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSession(t, 1)
	cost, err := s.FallbackCostMin(base, core.DefaultParams().HoverLoad)
	if err != nil {
		t.Fatal(err)
	}
	// Onboard hosting burns 2.0 W + 50 g vs the radio's 1.8 W at zero
	// added weight: the fallback must cost flight time.
	if cost <= 0 {
		t.Errorf("fallback cost = %v min, want positive", cost)
	}
	if cost > 5 {
		t.Errorf("fallback cost = %v min: implausibly large for a 0.2 W + 50 g swap", cost)
	}
}
