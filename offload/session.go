package offload

import (
	"math"
	"math/rand"

	"dronedse/core"
	"dronedse/slam"
)

// LinkProbe reports the instantaneous radio-link condition. Fault injectors
// (faultx.Injector) implement it; a nil probe means a healthy link at full
// bandwidth.
type LinkProbe interface {
	// LinkUp reports whether the link is usable at time t.
	LinkUp(t float64) bool
	// BandwidthScale returns the fraction of nominal bandwidth available
	// at time t in [0, 1].
	BandwidthScale(t float64) float64
}

// SessionConfig assembles a Session.
type SessionConfig struct {
	Link Link
	Node Node
	W    Workload
	// OnboardW is the on-board host's power draw while hosting the task
	// after a fallback (the §5.1 ~2 W SLAM increment on the RPi class).
	OnboardW float64
	// OnboardG is the on-board host's weight (grams), used when the
	// session re-enters the design-space model to price the fallback.
	OnboardG float64
	// MaxRetries is the consecutive failed attempts tolerated before the
	// session falls back to onboard compute (default 3).
	MaxRetries int
	// BackoffBaseMS and BackoffMaxMS bound the exponential retry backoff
	// (defaults 50 ms and 2000 ms).
	BackoffBaseMS float64
	BackoffMaxMS  float64
	// JitterFrac randomizes each backoff by ±frac (default 0.25) so
	// retry storms from many vehicles decorrelate; the jitter source is
	// seeded, keeping campaigns reproducible.
	JitterFrac float64
	// RecoverAfterS is how long the link must stay healthy before the
	// session returns compute to the remote node (default 5 s).
	RecoverAfterS float64
	Seed          int64
}

// Session runs the offload loop with failure handling: each attempt either
// meets the outer-loop deadline or counts as a failure; failures retry with
// jittered exponential backoff, and sustained failure falls back to onboard
// compute — trading radio power for host power and flight time, which is
// exactly the tradeoff the design-space model prices.
type Session struct {
	cfg     SessionConfig
	baseRep Report
	probe   LinkProbe
	rng     *rand.Rand

	offloaded     bool
	consecFails   int
	nextAttemptAt float64
	healthySince  float64

	// Counters for the campaign table.
	Attempts   int
	Failures   int
	Fallbacks  int
	Recoveries int
}

// NewSession builds a session from the measured SLAM ledger; the session
// starts offloaded. st supplies the per-frame remote compute time the same
// way Evaluate derives it.
func NewSession(cfg SessionConfig, st slam.Stats) (*Session, error) {
	rep, err := Evaluate(cfg.Link, cfg.Node, cfg.W, st, cfg.OnboardW)
	if err != nil {
		return nil, err
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.BackoffBaseMS <= 0 {
		cfg.BackoffBaseMS = 50
	}
	if cfg.BackoffMaxMS <= 0 {
		cfg.BackoffMaxMS = 2000
	}
	if cfg.JitterFrac <= 0 {
		cfg.JitterFrac = 0.25
	}
	if cfg.RecoverAfterS <= 0 {
		cfg.RecoverAfterS = 5
	}
	return &Session{
		cfg:          cfg,
		baseRep:      rep,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		offloaded:    true,
		healthySince: -1,
	}, nil
}

// SetProbe installs the link-condition source (nil means always healthy).
func (s *Session) SetProbe(p LinkProbe) { s.probe = p }

// Offloaded reports whether compute currently runs on the remote node.
func (s *Session) Offloaded() bool { return s.offloaded }

// AirborneW is the airborne power the task costs right now: radio transmit
// power while offloaded, the on-board host's burn after a fallback.
func (s *Session) AirborneW() float64 {
	if s.offloaded {
		return s.cfg.Link.TxPowerW
	}
	return s.cfg.OnboardW
}

// AttemptLatencyMS is the end-to-end result age at a given bandwidth scale.
func (s *Session) AttemptLatencyMS(scale float64) float64 {
	if scale <= 0 {
		return math.Inf(1)
	}
	return s.baseRep.UplinkMS/scale + s.baseRep.RTTHalfMS*2 +
		s.baseRep.ComputeMS + s.baseRep.DownlinkMS/scale
}

// Step advances the session's retry state machine at simulated time t
// (call it at the telemetry/outer-loop rate). It reports whether the
// compute placement changed this step (fallback or recovery).
func (s *Session) Step(t float64) bool {
	if t < s.nextAttemptAt {
		return false
	}
	s.Attempts++
	up, scale := true, 1.0
	if s.probe != nil {
		up = s.probe.LinkUp(t)
		scale = s.probe.BandwidthScale(t)
	}
	needMbps := s.cfg.W.UplinkKB * 1024 * 8 * s.cfg.W.FPS / 1e6
	ok := up && scale > 0 &&
		s.AttemptLatencyMS(scale) <= s.cfg.W.DeadlineMS &&
		needMbps <= s.cfg.Link.BandwidthMbps*scale*0.8
	if ok {
		s.consecFails = 0
		s.nextAttemptAt = t // attempt every step while healthy
		if !s.offloaded {
			if s.healthySince < 0 {
				s.healthySince = t
			}
			if t-s.healthySince >= s.cfg.RecoverAfterS {
				s.offloaded = true
				s.Recoveries++
				s.healthySince = -1
				return true
			}
		}
		return false
	}
	s.Failures++
	s.consecFails++
	s.healthySince = -1
	backoff := s.cfg.BackoffBaseMS * math.Pow(2, float64(s.consecFails-1))
	if backoff > s.cfg.BackoffMaxMS {
		backoff = s.cfg.BackoffMaxMS
	}
	backoff *= 1 + s.cfg.JitterFrac*(2*s.rng.Float64()-1)
	s.nextAttemptAt = t + backoff/1000
	if s.offloaded && s.consecFails >= s.cfg.MaxRetries {
		s.offloaded = false
		s.Fallbacks++
		return true
	}
	return false
}

// FallbackCostMin re-enters the design-space model (Equation 7): the
// flight-time cost, in minutes, of hosting the task onboard (host power +
// host weight) instead of streaming it over the radio (transmit power,
// negligible weight — the telemetry radio is already aboard). Positive
// means the fallback shortens the flight.
func FallbackCostMin(base core.Design, onboardW, onboardG, radioW, load float64) (float64, error) {
	onboardGain, err := core.GainedFlightTimeMin(base, onboardW, onboardG, load)
	if err != nil {
		return 0, err
	}
	radioGain, err := core.GainedFlightTimeMin(base, radioW, 0, load)
	if err != nil {
		return 0, err
	}
	return radioGain - onboardGain, nil
}

// FallbackCostMin prices this session's configured fallback against a
// resolved base design at the given flying load.
func (s *Session) FallbackCostMin(base core.Design, load float64) (float64, error) {
	return FallbackCostMin(base, s.cfg.OnboardW, s.cfg.OnboardG, s.cfg.Link.TxPowerW, load)
}
