// Package offload models the remaining §2.2/Figure 5 deployment option the
// platform models do not cover: shipping the outer-loop computation to an
// off-board node over the drone's radio link ("a MAVLink protocol offloads
// computations to another node"). It answers when remote compute can
// replace an on-board accelerator: the link must carry the sensor stream
// and return results inside the outer loop's deadline, and the radio's own
// power draw must stay below the compute power it displaces.
package offload

import (
	"errors"

	"dronedse/slam"
)

// Link characterizes the radio between the drone and the compute node.
type Link struct {
	Name string
	// BandwidthMbps is the usable payload throughput.
	BandwidthMbps float64
	// RTTMS is the round-trip latency in milliseconds.
	RTTMS float64
	// TxPowerW is the airborne radio's transmit power draw while
	// streaming.
	TxPowerW float64
	// RangeM is the usable range.
	RangeM float64
}

// Telemetry915 is the paper's 915 MHz telemetry kit: fine for MAVLink
// state packets, hopeless for imagery.
func Telemetry915() Link {
	return Link{Name: "915MHz telemetry", BandwidthMbps: 0.2, RTTMS: 60, TxPowerW: 0.5, RangeM: 2000}
}

// WiFi5GHz is a high-bandwidth short-range link (companion-computer WiFi).
func WiFi5GHz() Link {
	return Link{Name: "5GHz WiFi", BandwidthMbps: 80, RTTMS: 6, TxPowerW: 1.8, RangeM: 150}
}

// LTE is a cellular link: decent bandwidth, long range, high latency.
func LTE() Link {
	return Link{Name: "LTE", BandwidthMbps: 12, RTTMS: 45, TxPowerW: 2.2, RangeM: 1e6}
}

// Node is the remote compute endpoint: a ground station many times faster
// than anything the drone can lift.
type Node struct {
	Name string
	// SpeedupVsRPi is the node's throughput on the SLAM ledger relative
	// to the on-board RPi.
	SpeedupVsRPi float64
}

// GroundStationGPU is a desktop-class node.
func GroundStationGPU() Node { return Node{Name: "ground GPU", SpeedupVsRPi: 40} }

// Workload describes the per-frame traffic of the offloaded task.
type Workload struct {
	// UplinkKB is the per-frame payload (compressed image + IMU).
	UplinkKB float64
	// DownlinkKB is the per-frame result (pose + sparse map delta).
	DownlinkKB float64
	// FPS is the sensor rate the loop must sustain.
	FPS float64
	// DeadlineMS is the outer-loop freshness deadline for the result.
	DeadlineMS float64
}

// SLAMWorkload is the §5 task as an offload candidate: ~25 KB per
// compressed 376x240 frame at 20 FPS, pose+delta back, and the outer loop
// consumes results with a relaxed ~150 ms deadline (mission planning has
// relaxed deadlines — §6).
func SLAMWorkload() Workload {
	return Workload{UplinkKB: 25, DownlinkKB: 2, FPS: 20, DeadlineMS: 150}
}

// Report is the feasibility verdict for one link/node pair.
type Report struct {
	Link Link
	Node Node
	// PerFrame latency components in milliseconds.
	UplinkMS, ComputeMS, DownlinkMS, RTTHalfMS float64
	// TotalMS is the end-to-end result age.
	TotalMS float64
	// ThroughputOK: the link sustains the stream at the sensor rate.
	ThroughputOK bool
	// DeadlineOK: the result age meets the outer-loop deadline.
	DeadlineOK bool
	// PowerDeltaW is the airborne power change vs. hosting the task on
	// an on-board RPi (+ means offloading costs power).
	PowerDeltaW float64
}

// Feasible reports overall viability.
func (r Report) Feasible() bool { return r.ThroughputOK && r.DeadlineOK }

// ErrNoFrames means the ledger carries no frame count to normalize by.
var ErrNoFrames = errors.New("offload: work ledger has no frames")

// Evaluate computes the offload feasibility of running the measured SLAM
// work on the node over the link. onboardRPiW is the power the on-board
// host would burn (the §5.1 ~2 W SLAM increment).
func Evaluate(link Link, node Node, w Workload, st slam.Stats, onboardRPiW float64) (Report, error) {
	if st.Frames == 0 {
		return Report{}, ErrNoFrames
	}
	r := Report{Link: link, Node: node}

	// Serialization delays.
	bytesPerSec := link.BandwidthMbps * 1e6 / 8
	r.UplinkMS = w.UplinkKB * 1024 / bytesPerSec * 1000
	r.DownlinkMS = w.DownlinkKB * 1024 / bytesPerSec * 1000
	r.RTTHalfMS = link.RTTMS / 2

	// Remote compute time per frame: the RPi-ledger seconds divided by
	// the node's speedup.
	rpiOpsPerSec := 300e6 // matches internal/platform's RPi calibration
	rpiPerFrameS := float64(st.TotalOps()) / rpiOpsPerSec / float64(st.Frames)
	r.ComputeMS = rpiPerFrameS / node.SpeedupVsRPi * 1000

	r.TotalMS = r.UplinkMS + r.RTTHalfMS + r.ComputeMS + r.RTTHalfMS + r.DownlinkMS

	// Throughput: the uplink must carry FPS frames per second.
	needMbps := w.UplinkKB * 1024 * 8 * w.FPS / 1e6
	r.ThroughputOK = needMbps <= link.BandwidthMbps*0.8 // 20% protocol overhead
	r.DeadlineOK = r.TotalMS <= w.DeadlineMS

	// Airborne power: radio TX replaces the on-board host's burn.
	r.PowerDeltaW = link.TxPowerW - onboardRPiW
	return r, nil
}

// Compare evaluates the standard links against a node for one ledger.
func Compare(node Node, w Workload, st slam.Stats, onboardRPiW float64) ([]Report, error) {
	var out []Report
	for _, link := range []Link{Telemetry915(), WiFi5GHz(), LTE()} {
		r, err := Evaluate(link, node, w, st, onboardRPiW)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
