package offload

import (
	"testing"

	"dronedse/dataset"
	"dronedse/slam"
)

func mh01Stats(t *testing.T) slam.Stats {
	t.Helper()
	seq, err := dataset.Generate(dataset.EuRoCSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	return slam.RunSequence(seq).Stats
}

func TestEvaluateRejectsEmptyLedger(t *testing.T) {
	if _, err := Evaluate(WiFi5GHz(), GroundStationGPU(), SLAMWorkload(), slam.Stats{}, 2); err == nil {
		t.Error("empty ledger accepted")
	}
}

// TestOffloadFeasibilityLandscape is the extension experiment: WiFi to a
// ground GPU can host SLAM inside the outer-loop deadline; the paper's
// 915 MHz telemetry kit cannot carry the imagery at all.
func TestOffloadFeasibilityLandscape(t *testing.T) {
	st := mh01Stats(t)
	w := SLAMWorkload()

	reports, err := Compare(GroundStationGPU(), w, st, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Report{}
	for _, r := range reports {
		byName[r.Link.Name] = r
	}

	telem := byName["915MHz telemetry"]
	if telem.ThroughputOK {
		t.Error("0.2 Mbps telemetry cannot stream 20 FPS imagery (4 Mbps needed)")
	}
	if telem.Feasible() {
		t.Error("telemetry offload should be infeasible")
	}

	wifi := byName["5GHz WiFi"]
	if !wifi.ThroughputOK {
		t.Errorf("WiFi throughput flagged infeasible: %+v", wifi)
	}
	if !wifi.DeadlineOK {
		t.Errorf("WiFi end-to-end %.1f ms misses the %.0f ms deadline", wifi.TotalMS, w.DeadlineMS)
	}
	if !wifi.Feasible() {
		t.Error("WiFi offload to a ground GPU should be feasible")
	}
	// Offloading over WiFi costs little airborne power vs a 2 W on-board
	// host (1.8 W radio), so the win is modest — which is why the paper
	// pursues on-board FPGAs instead.
	if wifi.PowerDeltaW > 0.5 || wifi.PowerDeltaW < -2 {
		t.Errorf("WiFi power delta = %v W, implausible", wifi.PowerDeltaW)
	}

	lte := byName["LTE"]
	if !lte.ThroughputOK {
		t.Error("12 Mbps LTE should carry the 4 Mbps stream")
	}
	// LTE latency + serialization pushes the result age up; it must at
	// least be clearly worse than WiFi.
	if lte.TotalMS <= wifi.TotalMS {
		t.Error("LTE should be slower end-to-end than WiFi")
	}
}

func TestLatencyComponentsAddUp(t *testing.T) {
	st := mh01Stats(t)
	r, err := Evaluate(WiFi5GHz(), GroundStationGPU(), SLAMWorkload(), st, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.UplinkMS + r.RTTHalfMS + r.ComputeMS + r.RTTHalfMS + r.DownlinkMS
	if diff := sum - r.TotalMS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("components sum %v != total %v", sum, r.TotalMS)
	}
	if r.ComputeMS <= 0 || r.UplinkMS <= 0 {
		t.Error("degenerate latency components")
	}
	// A 40x node computes each frame faster than the on-board RPi's
	// ~40-50 ms.
	if r.ComputeMS > 5 {
		t.Errorf("remote compute %.2f ms per frame, expected ~1 ms at 40x", r.ComputeMS)
	}
}

func TestFasterNodeShortensCompute(t *testing.T) {
	st := mh01Stats(t)
	slow, _ := Evaluate(WiFi5GHz(), Node{Name: "slow", SpeedupVsRPi: 2}, SLAMWorkload(), st, 2)
	fast, _ := Evaluate(WiFi5GHz(), Node{Name: "fast", SpeedupVsRPi: 80}, SLAMWorkload(), st, 2)
	if fast.ComputeMS >= slow.ComputeMS {
		t.Error("faster node did not shorten compute time")
	}
}

func TestLinkConstants(t *testing.T) {
	for _, l := range []Link{Telemetry915(), WiFi5GHz(), LTE()} {
		if l.BandwidthMbps <= 0 || l.RTTMS <= 0 || l.TxPowerW <= 0 || l.RangeM <= 0 {
			t.Errorf("%s has degenerate parameters: %+v", l.Name, l)
		}
	}
	if Telemetry915().BandwidthMbps >= WiFi5GHz().BandwidthMbps {
		t.Error("telemetry should be far slower than WiFi")
	}
}
