package autopilot

import (
	"math"
	"testing"

	"dronedse/control"
	"dronedse/mathx"
	"dronedse/power"
	"dronedse/sim"
)

func newTestAP(t *testing.T, computeW float64) *Autopilot {
	t.Helper()
	q, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pack, err := power.NewPack(3, 3000, 30)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := New(Config{Quad: q, Battery: pack, ComputeW: computeW, TakeoffAltM: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ap
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil plant accepted")
	}
}

func TestArmOnlyFromDisarmed(t *testing.T) {
	ap := newTestAP(t, 3)
	if err := ap.Arm(); err != nil {
		t.Fatalf("first arm failed: %v", err)
	}
	if err := ap.Arm(); err == nil {
		t.Error("double arm accepted")
	}
}

func TestTakeoffReachesAltitude(t *testing.T) {
	ap := newTestAP(t, 3)
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	if !ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30) {
		t.Fatalf("never reached HOVER; mode=%v alt=%v", ap.Mode(), ap.Quad().State().Pos.Z)
	}
	if z := ap.Quad().State().Pos.Z; math.Abs(z-5) > 1 {
		t.Errorf("hover altitude = %v, want ~5", z)
	}
}

func TestMissionLifecycle(t *testing.T) {
	ap := newTestAP(t, 3)
	if err := ap.LoadMission(nil); err == nil {
		t.Error("empty mission accepted")
	}
	if err := ap.LoadMission(MissionPlan{{Pos: mathx.V3(1, 1, -2)}}); err == nil {
		t.Error("underground waypoint accepted")
	}
	m := MissionPlan{
		{Pos: mathx.V3(8, 0, 5), HoldS: 0.5},
		{Pos: mathx.V3(8, 8, 7), HoldS: 0.5},
	}
	if err := ap.LoadMission(m); err != nil {
		t.Fatal(err)
	}
	if err := ap.StartMission(); err == nil {
		t.Error("mission started while disarmed")
	}
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	if err := ap.StartMission(); err != nil {
		t.Fatal(err)
	}
	visited := false
	ok := ap.RunUntil(func(a *Autopilot) bool {
		if a.Quad().State().Pos.Sub(m[1].Pos).Norm() < 1 {
			visited = true
		}
		return a.Mode() == Disarmed
	}, 240)
	if !ok {
		t.Fatalf("mission never completed; mode=%v pos=%v", ap.Mode(), ap.Quad().State().Pos)
	}
	if !visited {
		t.Error("second waypoint never visited")
	}
	// RTL landed near home (GPS-noise-limited: ~0.8 m fixes and no
	// precision-landing aid bound the accuracy to a few meters).
	if d := ap.Quad().State().Pos.Sub(mathx.Vec3{}).Norm(); d > 4 {
		t.Errorf("landed %v m from home", d)
	}
}

func TestBatteryFailsafe(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	// Absurdly small pack: drains mid-hover.
	pack, _ := power.NewPack(3, 40, 80)
	ap, _ := New(Config{Quad: q, Battery: pack, ComputeW: 5, TakeoffAltM: 5, Seed: 2})
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	sawFailsafe := false
	ok := ap.RunUntil(func(a *Autopilot) bool {
		if a.Mode() == Failsafe {
			sawFailsafe = true
		}
		return sawFailsafe && a.Mode() == Disarmed
	}, 120)
	if !sawFailsafe {
		t.Fatal("battery drain never triggered FAILSAFE")
	}
	if !ok {
		t.Fatal("failsafe never landed and disarmed")
	}
	if !q.OnGround() {
		t.Error("not on ground after failsafe landing")
	}
}

func TestArmRejectedWithDrainedBattery(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	pack, _ := power.NewPack(3, 100, 80)
	for !pack.Drained() {
		pack.Draw(50, 10)
	}
	ap, _ := New(Config{Quad: q, Battery: pack, Seed: 3})
	if err := ap.Arm(); err == nil {
		t.Error("armed with drained battery")
	}
}

func TestCommandRTL(t *testing.T) {
	ap := newTestAP(t, 3)
	ap.Arm()
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	ap.CommandRTL()
	if ap.Mode() != ReturnToLaunch {
		t.Fatalf("mode = %v after RTL command", ap.Mode())
	}
	if !ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Disarmed }, 120) {
		t.Fatal("RTL never completed")
	}
}

func TestComputePowerAccounting(t *testing.T) {
	ap := newTestAP(t, 3.39) // paper: RPi running autopilot alone
	base := ap.TotalPowerW()
	ap.SetComputeW(4.56) // paper: autopilot + active SLAM
	if math.Abs((ap.TotalPowerW()-base)-(4.56-3.39)) > 1e-9 {
		t.Errorf("compute power change not reflected: %v -> %v", base, ap.TotalPowerW())
	}
}

// TestInnerOuterSeparation verifies the §2.1.3-A property: outer-loop
// (mission) decisions happen at a far lower rate than inner-loop actuation,
// and the flight still works with the outer loop decimated to 10 Hz.
func TestInnerOuterSeparation(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	pack, _ := power.NewPack(3, 3000, 30)
	ap, _ := New(Config{
		Quad: q, Battery: pack, TakeoffAltM: 5, Seed: 4,
		Rates: control.Rates{PositionHz: 10, AttitudeHz: 200, RateHz: 1000},
	})
	ap.Arm()
	if !ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 40) {
		t.Fatal("10 Hz outer loop failed to take off — outer loop must tolerate relaxed deadlines")
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		Disarmed: "DISARMED", Takeoff: "TAKEOFF", Mission: "MISSION",
		Hover: "HOVER", Land: "LAND", ReturnToLaunch: "RTL", Failsafe: "FAILSAFE",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Mode(42).String() != "MODE(42)" {
		t.Error("unknown mode string wrong")
	}
}

func TestEstimatedStateSanity(t *testing.T) {
	ap := newTestAP(t, 3)
	ap.Arm()
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	ap.RunFor(3)
	est := ap.EstimatedState()
	truth := ap.Quad().State()
	if est.Pos.Sub(truth.Pos).Norm() > 1.5 {
		t.Errorf("estimate %v far from truth %v", est.Pos, truth.Pos)
	}
}
