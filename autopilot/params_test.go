package autopilot

import (
	"errors"
	"math"
	"testing"

	"dronedse/mavlink"
)

func TestParamRoundTrip(t *testing.T) {
	ap := newTestAP(t, 3)
	for _, name := range ap.ParamNames() {
		v, err := ap.GetParam(name)
		if err != nil {
			t.Fatalf("GetParam(%s): %v", name, err)
		}
		if math.IsNaN(v) {
			t.Fatalf("%s is NaN", name)
		}
	}
	if err := ap.SetParam(ParamFenceRadius, 25); err != nil {
		t.Fatal(err)
	}
	if v, _ := ap.GetParam(ParamFenceRadius); v != 25 {
		t.Errorf("fence radius = %v", v)
	}
	if _, err := ap.GetParam("NOPE"); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("unknown get err = %v", err)
	}
	if err := ap.SetParam("NOPE", 1); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("unknown set err = %v", err)
	}
}

func TestParamValidation(t *testing.T) {
	ap := newTestAP(t, 3)
	cases := []struct {
		name  string
		value float64
	}{
		{ParamTakeoffAlt, -1},
		{ParamTakeoffAlt, 500},
		{ParamFenceRadius, -5},
		{ParamEnergyReserve, 0.5},
		{ParamCruiseSpeed, 0},
		{ParamComputeW, -2},
	}
	for _, c := range cases {
		if err := ap.SetParam(c.name, c.value); err == nil {
			t.Errorf("%s=%v accepted", c.name, c.value)
		}
	}
}

// TestMidFlightReconfiguration is the artifact's headline capability: change
// parameters while flying and see them take effect.
func TestMidFlightReconfiguration(t *testing.T) {
	ap := newTestAP(t, 3)
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)

	// Raise the takeoff altitude mid-flight and retrigger a climb via a
	// fresh takeoff state: simplest observable — change compute power and
	// watch total power move, then set a yaw target and watch the heading.
	before := ap.TotalPowerW()
	if err := ap.SetParam(ParamComputeW, ap.ComputeW()+10); err != nil {
		t.Fatal(err)
	}
	if ap.TotalPowerW()-before < 9.9 {
		t.Errorf("compute power change not live: %v -> %v", before, ap.TotalPowerW())
	}

	if err := ap.SetParam(ParamYawTarget, 1.0); err != nil {
		t.Fatal(err)
	}
	ap.RunFor(6)
	_, _, yaw := ap.Quad().State().Att.Euler()
	if math.Abs(yaw-1.0) > 0.15 {
		t.Errorf("yaw after mid-flight retarget = %v, want ~1.0", yaw)
	}
}

func TestParamOverMAVLink(t *testing.T) {
	ap := newTestAP(t, 3)
	// Encode PARAM_SET on the wire, decode, apply, check the echo.
	wire := mavlink.EncodeParam(mavlink.Param{Name: ParamFenceRadius, Value: 42})
	p, err := mavlink.DecodeParam(wire)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := ap.HandleParamSet(p)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Name != ParamFenceRadius || ack.Value != 42 {
		t.Errorf("ack = %+v", ack)
	}
	if v, _ := ap.GetParam(ParamFenceRadius); v != 42 {
		t.Errorf("fence radius = %v", v)
	}
	// Rejected set returns an error, no ack.
	if _, err := ap.HandleParamSet(mavlink.Param{Name: ParamCruiseSpeed, Value: -3}); err == nil {
		t.Error("invalid PARAM_SET acknowledged")
	}
}

func TestParamWireFormat(t *testing.T) {
	long := mavlink.Param{Name: "THIS_NAME_IS_WAY_TOO_LONG", Value: 7}
	p, err := mavlink.DecodeParam(mavlink.EncodeParam(long))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Name) != 16 {
		t.Errorf("name not truncated to 16: %q", p.Name)
	}
	if _, err := mavlink.DecodeParam([]byte{1, 2}); err == nil {
		t.Error("short param payload accepted")
	}
}
