// Package autopilot is the flight-code layer of the stack (Figure 5): an
// ArduCopter-style autopilot owning modes, arming, waypoint missions and
// failsafes, wired to the inner-loop cascade (internal/control), the sensor
// suite (internal/sensors), the estimator (internal/estimation), the battery
// (internal/power) and the 6-DOF plant (internal/sim).
//
// The outer loop — mission logic producing position/velocity targets — runs
// at 10 Hz with relaxed deadlines, while the inner loop runs at the Table 2b
// rates; the package keeps them separated exactly as §2.1.3-A prescribes.
package autopilot

import (
	"errors"
	"fmt"
	"math/rand"

	"dronedse/control"
	"dronedse/estimation"
	"dronedse/mathx"
	"dronedse/planner"
	"dronedse/power"
	"dronedse/sensors"
	"dronedse/sim"
)

// Mode is the autopilot flight mode.
type Mode int

// Flight modes.
const (
	Disarmed Mode = iota
	Takeoff
	Mission
	Hover
	Land
	ReturnToLaunch
	Failsafe
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Disarmed:
		return "DISARMED"
	case Takeoff:
		return "TAKEOFF"
	case Mission:
		return "MISSION"
	case Hover:
		return "HOVER"
	case Land:
		return "LAND"
	case ReturnToLaunch:
		return "RTL"
	case Failsafe:
		return "FAILSAFE"
	case TrajectoryMode:
		return "TRAJECTORY"
	case FollowMode:
		return "FOLLOW"
	default:
		return fmt.Sprintf("MODE(%d)", int(m))
	}
}

// Waypoint is one mission item.
type Waypoint struct {
	Pos mathx.Vec3
	// HoldS is how long to loiter after arrival.
	HoldS float64
	// AcceptRadiusM is the arrival threshold (default 0.5 m).
	AcceptRadiusM float64
}

// MissionPlan is an ordered waypoint list.
type MissionPlan []Waypoint

// Config assembles an autopilot.
type Config struct {
	Quad  *sim.Quad
	Rates control.Rates
	// Battery powers propulsion and electronics; nil disables battery
	// accounting and failsafe.
	Battery *power.Pack
	// ComputeW is the electronics power draw (autopilot board + any
	// workloads); the Figure 16 experiment varies it between phases.
	ComputeW float64
	// TakeoffAltM is the default takeoff altitude.
	TakeoffAltM float64
	Seed        int64
}

// Autopilot is the full closed-loop stack.
type Autopilot struct {
	quad    *sim.Quad
	cascade *control.Cascade
	rates   control.Rates
	suite   *sensors.Suite
	est     *estimation.Estimator
	battery *power.Pack
	rng     *rand.Rand

	mode        Mode
	landSpot    mathx.Vec3
	landLatched bool
	mission     MissionPlan
	wpIndex     int
	holdUntil   float64
	home        mathx.Vec3
	takeoffAlt  float64
	yawTarget   float64
	computeW    float64

	traj   *planner.Trajectory
	trajT0 float64
	follow FollowConfig

	fence       Geofence
	energy      EnergyPolicy
	avgPowerW   float64
	lastEvent   string
	staged      []Waypoint
	missionDone bool

	steps     int
	physicsHz float64
	lastIMU   sensors.IMUSample
	prevVel   mathx.Vec3

	// faults, when non-nil, reports declared fault conditions (GPS denial
	// windows) the failsafe monitor escalates on.
	faults      FaultSignals
	gpsDenied   bool
	gpsDeniedAt float64

	// observers is the step bus: every registered StepObserver sees every
	// completed physics step, in registration order.
	observers []StepObserver
}

// StepObserver observes one completed physics step. Observers run after the
// plant and battery have advanced, so reads of Time/State/TotalPowerW see
// the post-step values. Observers must not call Step/RunFor/RunUntil.
type StepObserver func(a *Autopilot, dt float64)

// Observe registers fn on the step bus. Observers are invoked once per
// physics step in registration order — a deterministic, composable
// replacement for the old single OnStep callback that forced every caller
// to hand-chain the previous hook. Power tracing, flight logging, fault
// probes and user callbacks each register independently; ordering is fixed
// by registration, so a given wiring sequence always replays identically.
func (a *Autopilot) Observe(fn StepObserver) {
	if fn != nil {
		a.observers = append(a.observers, fn)
	}
}

// New builds the autopilot stack.
func New(cfg Config) (*Autopilot, error) {
	if cfg.Quad == nil {
		return nil, errors.New("autopilot: nil plant")
	}
	r := cfg.Rates
	if r.RateHz == 0 {
		r = control.DefaultRates()
	}
	alt := cfg.TakeoffAltM
	if alt <= 0 {
		alt = 5
	}
	a := &Autopilot{
		quad:       cfg.Quad,
		cascade:    control.NewCascade(cfg.Quad),
		rates:      r,
		suite:      sensors.NewSuite(cfg.Seed),
		est:        estimation.NewEstimator(),
		battery:    cfg.Battery,
		rng:        rand.New(rand.NewSource(cfg.Seed + 99)),
		takeoffAlt: alt,
		computeW:   cfg.ComputeW,
		physicsHz:  1000,
	}
	if r.RateHz > a.physicsHz {
		a.physicsHz = r.RateHz
	}
	return a, nil
}

// FaultSignals is the autopilot's view of declared fault conditions
// (implemented by faultx.Injector). The autopilot polls it every physics
// step; a nil interface or an all-clear answer leaves behavior untouched.
type FaultSignals interface {
	// GPSDenied reports whether GPS is denied (jammed, indoors) at time t.
	GPSDenied(t float64) bool
}

// SetFaultSignals installs (or, with nil, removes) the declared-fault
// source the failsafe monitor consumes.
func (a *Autopilot) SetFaultSignals(fs FaultSignals) { a.faults = fs }

// Suite exposes the sensor suite so fault injectors can install their
// sensors.FaultView and tests can inspect the sensors.
func (a *Autopilot) Suite() *sensors.Suite { return a.suite }

// Estimator exposes the fusion stack (read-mostly; tests and telemetry).
func (a *Autopilot) Estimator() *estimation.Estimator { return a.est }

// Cascade exposes the control cascade (read-mostly; tests and the work
// ledgers the roofline model aggregates).
func (a *Autopilot) Cascade() *control.Cascade { return a.cascade }

// Mode returns the current flight mode.
func (a *Autopilot) Mode() Mode { return a.mode }

// Time returns the simulated time.
func (a *Autopilot) Time() float64 { return a.quad.Time() }

// PhysicsHz returns the physics step rate (steps per simulated second) —
// external tick drivers use it to convert second budgets into step counts
// exactly as RunFor and RunUntil do.
func (a *Autopilot) PhysicsHz() float64 { return a.physicsHz }

// Quad exposes the plant (read-mostly; tests and traces).
func (a *Autopilot) Quad() *sim.Quad { return a.quad }

// Battery exposes the pack, possibly nil.
func (a *Autopilot) Battery() *power.Pack { return a.battery }

// SetComputeW changes the electronics power draw (e.g. SLAM started).
func (a *Autopilot) SetComputeW(w float64) { a.computeW = w }

// ComputeW returns the present electronics power draw.
func (a *Autopilot) ComputeW() float64 { return a.computeW }

// EstimatedState returns the fused state estimate the controllers fly on.
func (a *Autopilot) EstimatedState() sim.State {
	return sim.State{
		Pos:   a.est.Pos.Position(),
		Vel:   a.est.Pos.Velocity(),
		Att:   a.est.Att.Attitude(),
		Omega: a.lastIMU.Gyro,
	}
}

// Arm transitions Disarmed -> Takeoff. It fails in any other mode or with a
// drained battery (pre-flight check).
func (a *Autopilot) Arm() error {
	if a.mode != Disarmed {
		return fmt.Errorf("autopilot: cannot arm in %v", a.mode)
	}
	if a.battery != nil && a.battery.Drained() {
		return errors.New("autopilot: battery below drain limit")
	}
	a.home = a.quad.State().Pos
	a.mode = Takeoff
	return nil
}

// LoadMission installs a mission plan; it validates waypoints.
func (a *Autopilot) LoadMission(m MissionPlan) error {
	if len(m) == 0 {
		return errors.New("autopilot: empty mission")
	}
	for i, wp := range m {
		if wp.Pos.Z <= 0 {
			return fmt.Errorf("autopilot: waypoint %d below ground", i)
		}
	}
	a.mission = m
	a.wpIndex = 0
	return nil
}

// StartMission transitions to Mission mode (must be airborne: Hover or
// Takeoff complete).
func (a *Autopilot) StartMission() error {
	if len(a.mission) == 0 {
		return errors.New("autopilot: no mission loaded")
	}
	if a.mode != Hover {
		return fmt.Errorf("autopilot: start mission from HOVER, not %v", a.mode)
	}
	a.wpIndex = 0
	a.missionDone = false
	a.mode = Mission
	return nil
}

// MissionCompleted reports whether the last started mission visited every
// waypoint (fault campaigns use it to separate a completed mission from a
// failsafe abort).
func (a *Autopilot) MissionCompleted() bool { return a.missionDone }

// MissionIndex reports the next unvisited waypoint's index. It advances as
// the mission progresses and pins at len(plan)-1 once the final waypoint is
// reached (MissionCompleted distinguishes the terminal hold); workload
// drivers watch it to trigger mid-mission events such as payload handoffs.
func (a *Autopilot) MissionIndex() int { return a.wpIndex }

// CommandLand requests a descent to touchdown.
func (a *Autopilot) CommandLand() { a.mode = Land }

// CommandHover holds position at the current estimate (valid from any
// airborne mode; it cancels missions, trajectories and following).
func (a *Autopilot) CommandHover() {
	if a.mode != Disarmed && a.mode != Land && a.mode != Failsafe {
		a.mode = Hover
		a.traj = nil
	}
}

// CommandRTL requests return-to-launch.
func (a *Autopilot) CommandRTL() {
	if a.mode != Disarmed {
		a.mode = ReturnToLaunch
	}
}

// targets computes the outer-loop set point for the current mode (the
// 10 Hz mission logic).
func (a *Autopilot) targets() control.Targets {
	est := a.EstimatedState()
	switch a.mode {
	case Takeoff:
		goal := a.home
		goal.Z = a.takeoffAlt
		if est.Pos.Z > a.takeoffAlt*0.95 {
			a.mode = Hover
		}
		return control.Targets{Position: goal, Yaw: a.yawTarget}
	case Mission:
		wp := a.mission[a.wpIndex]
		accept := wp.AcceptRadiusM
		if accept <= 0 {
			accept = 0.5
		}
		if est.Pos.Sub(wp.Pos).Norm() < accept {
			if a.holdUntil == 0 {
				a.holdUntil = a.Time() + wp.HoldS
			}
			if a.Time() >= a.holdUntil {
				a.holdUntil = 0
				a.wpIndex++
				if a.wpIndex >= len(a.mission) {
					a.wpIndex = len(a.mission) - 1
					a.missionDone = true
					a.mode = ReturnToLaunch
				}
			}
		}
		return control.Targets{Position: a.mission[a.wpIndex].Pos, Yaw: a.yawTarget}
	case TrajectoryMode:
		return a.trajectoryTargets()
	case FollowMode:
		return a.followTargets()
	case Land:
		if !a.landLatched {
			a.landSpot = est.Pos
			a.landLatched = true
		}
		goal := a.landSpot
		goal.Z = -0.5 // drive through the ground plane; contact disarms
		if a.quad.OnGround() {
			a.mode = Disarmed
			a.landLatched = false
		}
		return control.Targets{Position: goal, Yaw: a.yawTarget}
	case ReturnToLaunch:
		goal := a.home
		goal.Z = a.takeoffAlt
		if est.Pos.Sub(goal).Norm() < 0.5 {
			a.mode = Land
		}
		return control.Targets{Position: goal, Yaw: a.yawTarget}
	case Failsafe:
		if !a.landLatched {
			a.landSpot = est.Pos
			a.landLatched = true
		}
		goal := a.landSpot
		goal.Z = -0.5
		if a.quad.OnGround() {
			a.mode = Disarmed
			a.landLatched = false
		}
		return control.Targets{Position: goal, Yaw: a.yawTarget}
	default: // Disarmed, Hover
		hold := est.Pos
		if a.mode == Hover {
			return control.Targets{Position: hold, Yaw: a.yawTarget}
		}
		return control.Targets{Position: a.home, Yaw: a.yawTarget}
	}
}

// Step advances the whole stack by one physics step (1/physicsHz seconds).
func (a *Autopilot) Step() {
	dt := 1 / a.physicsHz
	trueState := a.quad.State()

	// Sensor acquisition at Table 2a rates. The gyro is read every
	// control step (flight controllers clock the gyro at the loop rate;
	// Table 2a's 100-200 Hz is the fused output rate).
	now := a.quad.Time()

	// Declared-fault edge detection: a GPS denial window switches the
	// estimator into coasting (covariance inflation, no GPS ingestion)
	// and starts the failsafe escalation clock.
	if a.faults != nil {
		if denied := a.faults.GPSDenied(now); denied != a.gpsDenied {
			a.gpsDenied = denied
			a.est.DeclareOutage(sensors.SensorGPS, denied)
			if denied {
				a.gpsDeniedAt = now
				a.lastEvent = "gps denied: coasting"
			} else {
				a.lastEvent = "gps recovered"
			}
		}
	}

	accelWorld := trueState.Vel.Sub(a.prevVel).Scale(a.physicsHz)
	a.prevVel = trueState.Vel
	if imu, ok := a.suite.SampleIMU(now, trueState, accelWorld); ok {
		a.lastIMU = imu
		a.est.OnIMU(a.lastIMU, 1/a.suite.IMU.RateHz)
	} else {
		// fast gyro path for the rate loop
		a.lastIMU.Gyro = trueState.Omega.Add(mathx.V3(
			a.rng.NormFloat64(), a.rng.NormFloat64(), a.rng.NormFloat64()).Scale(0.003))
	}
	if fix, ok := a.suite.SampleGPS(now, trueState); ok {
		a.est.OnGPS(fix)
	}
	if alt, ok := a.suite.SampleBaro(now, trueState); ok {
		a.est.OnBaro(alt)
	}
	if yaw, ok := a.suite.SampleMagYaw(now, trueState); ok {
		a.est.OnMag(yaw, 1/a.suite.Mag.RateHz)
	}

	// Battery failsafe (outer-loop decision, Table 1: flight time
	// management).
	if a.battery != nil && a.battery.Drained() &&
		a.mode != Land && a.mode != Disarmed && a.mode != Failsafe {
		a.lastEvent = "battery drained: failsafe land"
		a.mode = Failsafe
	}

	// Control cascade at Table 2b rates, flying on the estimate.
	est := a.EstimatedState()
	posEvery := int(a.physicsHz/a.rates.PositionHz + 0.5)
	attEvery := int(a.physicsHz/a.rates.AttitudeHz + 0.5)
	rateEvery := int(a.physicsHz/a.rates.RateHz + 0.5)
	if posEvery < 1 {
		posEvery = 1
	}
	if attEvery < 1 {
		attEvery = 1
	}
	if rateEvery < 1 {
		rateEvery = 1
	}
	armed := a.mode != Disarmed
	if a.steps%posEvery == 0 && armed {
		a.checkSafety()
		a.cascade.UpdatePosition(est, a.targets(), float64(posEvery)*dt)
	}
	if a.steps%attEvery == 0 && armed {
		a.cascade.UpdateAttitude(est, float64(attEvery)*dt)
	}
	if a.steps%rateEvery == 0 {
		if armed {
			a.quad.CommandThrusts(a.cascade.UpdateRate(est, float64(rateEvery)*dt))
		} else {
			a.quad.CommandThrusts([sim.NumMotors]float64{})
		}
	}

	a.quad.Step(dt)
	a.steps++

	// Energy accounting, plus the rolling average power the Table 1
	// flight-time-management policy consumes (~5 s EMA).
	total := a.quad.ElectricalPowerW() + a.computeW
	if a.battery != nil {
		a.battery.DrawPower(total, dt)
	}
	if a.avgPowerW == 0 {
		a.avgPowerW = total
	} else {
		alpha := dt / 5
		a.avgPowerW += alpha * (total - a.avgPowerW)
	}
	for _, fn := range a.observers {
		fn(a, dt)
	}
}

// RunFor advances the stack for the given simulated duration.
func (a *Autopilot) RunFor(seconds float64) {
	n := int(seconds * a.physicsHz)
	for i := 0; i < n; i++ {
		a.Step()
	}
}

// RunUntil advances until cond returns true or the timeout elapses,
// reporting whether the condition was met.
func (a *Autopilot) RunUntil(cond func(*Autopilot) bool, maxSeconds float64) bool {
	n := int(maxSeconds * a.physicsHz)
	for i := 0; i < n; i++ {
		a.Step()
		if cond(a) {
			return true
		}
	}
	return cond(a)
}

// TotalPowerW is the instantaneous whole-drone power (Figure 16b signal).
func (a *Autopilot) TotalPowerW() float64 {
	return a.quad.ElectricalPowerW() + a.computeW
}
