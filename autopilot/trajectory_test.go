package autopilot

import (
	"math"
	"testing"

	"dronedse/mathx"
	"dronedse/planner"
)

func TestFlyTrajectory(t *testing.T) {
	ap := newTestAP(t, 3)
	path := []mathx.Vec3{
		{X: 0, Y: 0, Z: 5},
		{X: 10, Y: 0, Z: 5},
		{X: 10, Y: 8, Z: 7},
	}
	tr, err := planner.PlanTrajectory(path, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Must be airborne first.
	if err := ap.FlyTrajectory(tr); err == nil {
		t.Error("trajectory accepted while disarmed")
	}
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	if err := ap.FlyTrajectory(tr); err != nil {
		t.Fatal(err)
	}
	if ap.Mode() != TrajectoryMode {
		t.Fatalf("mode = %v", ap.Mode())
	}

	// Track the trajectory: the true position must stay near the
	// commanded sample throughout.
	t0 := ap.Time()
	worst := 0.0
	done := ap.RunUntil(func(a *Autopilot) bool {
		if a.Mode() == TrajectoryMode {
			want, _ := tr.Sample(a.Time() - t0)
			if d := a.Quad().State().Pos.Sub(want).Norm(); d > worst {
				worst = d
			}
		}
		return a.Mode() == Hover
	}, tr.TotalS+30)
	if !done {
		t.Fatalf("trajectory never completed; mode=%v", ap.Mode())
	}
	if worst > 1.5 {
		t.Errorf("worst tracking error %.2f m along the trajectory", worst)
	}
	// Holding at the end point.
	ap.RunFor(3)
	if d := ap.Quad().State().Pos.Sub(tr.End()).Norm(); d > 1 {
		t.Errorf("not holding at trajectory end: %.2f m away", d)
	}
}

func TestFlyTrajectoryNil(t *testing.T) {
	ap := newTestAP(t, 3)
	if err := ap.FlyTrajectory(nil); err == nil {
		t.Error("nil trajectory accepted")
	}
}

func TestTrajectoryVelocityFeedForwardHelps(t *testing.T) {
	// Fly the same 20 m leg as a trajectory (position+velocity targets)
	// and as a bare waypoint (position only): the trajectory tracker's
	// mid-flight position error must be smaller, demonstrating the
	// feed-forward path of Figure 6.
	path := []mathx.Vec3{{X: 0, Y: 0, Z: 5}, {X: 20, Y: 0, Z: 5}}
	tr, err := planner.PlanTrajectory(path, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}

	apT := newTestAP(t, 3)
	apT.Arm()
	apT.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	if err := apT.FlyTrajectory(tr); err != nil {
		t.Fatal(err)
	}
	t0 := apT.Time()
	var sum float64
	var n int
	apT.RunUntil(func(a *Autopilot) bool {
		if a.Mode() == TrajectoryMode {
			want, _ := tr.Sample(a.Time() - t0)
			sum += a.Quad().State().Pos.Sub(want).Norm()
			n++
		}
		return a.Mode() == Hover
	}, tr.TotalS+20)
	trajErr := sum / math.Max(1, float64(n))

	if trajErr > 1.0 {
		t.Errorf("mean trajectory tracking error %.2f m", trajErr)
	}
}
