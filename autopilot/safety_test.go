package autopilot

import (
	"math"
	"testing"

	"dronedse/mathx"
	"dronedse/mavlink"
	"dronedse/power"
	"dronedse/sim"
)

func TestGeofenceTriggersRTL(t *testing.T) {
	ap := newTestAP(t, 3)
	ap.SetGeofence(Geofence{RadiusM: 8, CeilingM: 20})
	ap.SetEnergyPolicy(EnergyPolicy{}) // isolate the fence
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	// A mission waypoint beyond the fence: the breach monitor must flip
	// to RTL mid-flight.
	if err := ap.LoadMission(MissionPlan{{Pos: mathx.V3(30, 0, 5)}}); err != nil {
		t.Fatal(err)
	}
	if err := ap.StartMission(); err != nil {
		t.Fatal(err)
	}
	sawRTL := false
	maxHoriz := 0.0
	ap.RunUntil(func(a *Autopilot) bool {
		p := a.Quad().State().Pos
		if h := math.Hypot(p.X, p.Y); h > maxHoriz {
			maxHoriz = h
		}
		if a.Mode() == ReturnToLaunch {
			sawRTL = true
		}
		return a.Mode() == Disarmed
	}, 180)
	if !sawRTL {
		t.Fatal("geofence breach never triggered RTL")
	}
	if ap.LastEvent() != "geofence breach: RTL" {
		t.Errorf("LastEvent = %q", ap.LastEvent())
	}
	// Allowing stopping distance from cruise (the mission leg accelerates
	// hard before the predictive breach trips), the drone must not run
	// far past the fence.
	if maxHoriz > 20 {
		t.Errorf("flew %v m horizontally past an 8 m fence", maxHoriz)
	}
}

func TestCeilingFence(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	pack, _ := power.NewPack(3, 3000, 30)
	ap, _ := New(Config{Quad: q, Battery: pack, TakeoffAltM: 12, Seed: 5})
	ap.SetGeofence(Geofence{CeilingM: 6})
	ap.SetEnergyPolicy(EnergyPolicy{})
	ap.Arm()
	sawRTL := false
	ap.RunUntil(func(a *Autopilot) bool {
		if a.Mode() == ReturnToLaunch {
			sawRTL = true
		}
		return a.Mode() == Disarmed
	}, 120)
	if !sawRTL {
		t.Fatal("altitude ceiling breach never triggered RTL")
	}
}

func TestEnergyPolicyBringsItHome(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	// Small pack: enough to get out but the reserve must turn it around.
	pack, _ := power.NewPack(3, 260, 80)
	ap, _ := New(Config{Quad: q, Battery: pack, ComputeW: 5, TakeoffAltM: 5, Seed: 6})
	ap.SetEnergyPolicy(DefaultEnergyPolicy())
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	if err := ap.LoadMission(MissionPlan{{Pos: mathx.V3(200, 0, 5)}}); err != nil {
		t.Fatal(err)
	}
	if err := ap.StartMission(); err != nil {
		t.Fatal(err)
	}
	sawEnergyRTL := false
	ap.RunUntil(func(a *Autopilot) bool {
		if a.LastEvent() == "energy reserve reached: RTL" {
			sawEnergyRTL = true
		}
		return a.Mode() == Disarmed
	}, 300)
	if !sawEnergyRTL {
		t.Fatal("energy policy never triggered RTL")
	}
	// It must actually make it back before the hard drain failsafe.
	if d := math.Hypot(ap.Quad().State().Pos.X, ap.Quad().State().Pos.Y); d > 8 {
		t.Errorf("landed %v m from home; energy reserve was insufficient", d)
	}
}

func TestEnduranceEstimates(t *testing.T) {
	ap := newTestAP(t, 5)
	ap.Arm()
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	ap.RunFor(5)
	e := ap.EstimatedEnduranceMin()
	// 3000 mAh 3S at ~110 W: ~14-20 min.
	if e < 8 || e > 30 {
		t.Errorf("endurance estimate = %.1f min, implausible", e)
	}
	ret := ap.EstimatedReturnEnergyWh()
	if ret <= 0 || ret > 1 {
		t.Errorf("return energy from hover near home = %v Wh", ret)
	}
	if ap.RemainingEnergyWh() <= 0 {
		t.Error("remaining energy must be positive after a short hover")
	}
}

func TestNoBatteryEndurance(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	ap, _ := New(Config{Quad: q, Seed: 1})
	if !math.IsInf(ap.RemainingEnergyWh(), 1) {
		t.Error("battery-less drone should report infinite energy")
	}
}

func TestMissionUploadFlow(t *testing.T) {
	ap := newTestAP(t, 3)
	items := []mavlink.MissionItem{
		{Index: 0, X: 5, Y: 0, Z: 5, HoldS: 1},
		{Index: 1, X: 5, Y: 5, Z: 6, HoldS: 0.5},
	}
	for _, it := range items {
		// Round-trip through the wire encoding like a real upload.
		decoded, err := mavlink.DecodeMissionItem(mavlink.EncodeMissionItem(it))
		if err != nil {
			t.Fatal(err)
		}
		if err := ap.HandleMissionItem(decoded); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.CommitMission(); err != nil {
		t.Fatal(err)
	}
	if len(ap.mission) != 2 || ap.mission[1].Pos != mathx.V3(5, 5, 6) {
		t.Fatalf("committed mission = %+v", ap.mission)
	}
	// Out-of-order upload is rejected.
	if err := ap.HandleMissionItem(mavlink.MissionItem{Index: 3}); err == nil {
		t.Error("out-of-order item accepted")
	}
	// Index 0 restarts the staging buffer.
	if err := ap.HandleMissionItem(mavlink.MissionItem{Index: 0, X: 1, Y: 1, Z: 2}); err != nil {
		t.Fatal(err)
	}
	if len(ap.staged) != 1 {
		t.Errorf("staging not reset: %d items", len(ap.staged))
	}
	// Committing an invalid (underground) staged mission fails.
	ap.staged = []Waypoint{{Pos: mathx.V3(0, 0, -1)}}
	if err := ap.CommitMission(); err == nil {
		t.Error("underground staged mission committed")
	}
}
