package autopilot

import (
	"strings"
	"testing"

	"dronedse/mathx"
	"dronedse/sim"
)

// TestMotorFailureCrashCheck injects a motor failure mid-hover: the quad
// flips (a bare quadrotor cannot survive a dead motor), the crash check
// fires, and the autopilot disarms instead of fighting physics.
func TestMotorFailureCrashCheck(t *testing.T) {
	ap := newTestAP(t, 3)
	var log FlightLog
	ap.AttachFlightLog(&log)
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	if !ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30) {
		t.Fatal("takeoff failed")
	}
	ap.RunFor(2)

	ap.Quad().FailMotor(sim.FrontLeft)
	if !ap.Quad().MotorFailed(sim.FrontLeft) {
		t.Fatal("failure injection not recorded")
	}
	disarmed := ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Disarmed }, 20)
	if !disarmed {
		t.Fatalf("crash check never disarmed; mode=%v", ap.Mode())
	}
	if ap.LastEvent() != "crash detected: disarm" {
		t.Errorf("LastEvent = %q", ap.LastEvent())
	}
	// The event made it into the flight log.
	found := false
	for _, e := range log.Events() {
		if strings.Contains(e.Text, "crash detected") {
			found = true
		}
	}
	if !found {
		t.Error("crash event missing from flight log")
	}
}

func TestMotorRepair(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	q.FailMotor(sim.BackRight)
	q.RepairMotor(sim.BackRight)
	if q.MotorFailed(sim.BackRight) {
		t.Error("repair did not clear the failure")
	}
	// Out-of-range indices are ignored.
	q.FailMotor(-1)
	q.FailMotor(99)
	if q.MotorFailed(-1) || q.MotorFailed(99) {
		t.Error("out-of-range motor reported failed")
	}
}

func TestCrashCheckDoesNotFireInNormalFlight(t *testing.T) {
	ap := newTestAP(t, 3)
	ap.Arm()
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	ap.LoadMission(MissionPlan{{Pos: mathx.V3(10, 0, 5)}})
	ap.StartMission()
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Disarmed }, 180)
	if strings.Contains(ap.LastEvent(), "crash") {
		t.Errorf("crash check fired during a normal mission: %q", ap.LastEvent())
	}
}

func TestFlightLogRecords(t *testing.T) {
	ap := newTestAP(t, 3)
	log := FlightLog{PeriodS: 0.05}
	ap.AttachFlightLog(&log)
	ap.Arm()
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	ap.RunFor(5)

	entries := log.Entries()
	if len(entries) < 100 {
		t.Fatalf("only %d log entries", len(entries))
	}
	if log.MaxAltitude() < 4 {
		t.Errorf("max altitude = %v", log.MaxAltitude())
	}
	if log.EnergyWh() <= 0 {
		t.Error("no energy integrated")
	}
	if log.TimeInMode(Hover) <= 3 {
		t.Errorf("hover time = %v", log.TimeInMode(Hover))
	}
	// Mode transitions recorded: DISARMED->TAKEOFF->HOVER.
	if len(log.Events()) < 2 {
		t.Fatalf("events = %v", log.Events())
	}
	var sb strings.Builder
	if err := log.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	csv := sb.String()
	if !strings.HasPrefix(csv, "time_s,mode,") || !strings.Contains(csv, "HOVER") {
		t.Error("CSV malformed")
	}
	if !strings.Contains(log.Summary(), "max alt") {
		t.Errorf("summary = %q", log.Summary())
	}
	empty := FlightLog{}
	if empty.Summary() != "flight log: empty" {
		t.Error("empty summary wrong")
	}
}
