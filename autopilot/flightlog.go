package autopilot

import (
	"fmt"
	"io"
	"strings"
)

// FlightLog is a DataFlash-style structured flight recorder: periodic
// snapshots of the vehicle state, queryable after the flight and exportable
// as CSV — the logging layer every ArduCopter deployment (including the
// paper's artifact) relies on for post-flight analysis.
type FlightLog struct {
	// PeriodS is the sample interval (default 0.1 s).
	PeriodS float64

	entries []LogEntry
	next    float64
	primed  bool
	events  []LogEvent
}

// LogEntry is one sampled row.
type LogEntry struct {
	TimeS      float64
	Mode       Mode
	PosX, PosY float64
	Alt        float64
	Speed      float64
	Roll       float64
	Pitch      float64
	Yaw        float64
	PowerW     float64
	BatterySoC float64
}

// LogEvent is an asynchronous annotation (mode changes, safety events).
type LogEvent struct {
	TimeS float64
	Text  string
}

// Reserve grows the log's entry and event capacity so a flight of the given
// duration records without steady-state append reallocation. Entry capacity
// follows the sample period; events get a fixed allowance (mode changes and
// safety annotations are rare).
func (l *FlightLog) Reserve(durationS float64) {
	period := l.PeriodS
	if period <= 0 {
		period = 0.1
	}
	n := int(durationS/period) + 2
	if cap(l.entries) < n {
		entries := make([]LogEntry, len(l.entries), n)
		copy(entries, l.entries)
		l.entries = entries
	}
	const eventAllowance = 64
	if cap(l.events) < eventAllowance {
		events := make([]LogEvent, len(l.events), eventAllowance)
		copy(events, l.events)
		l.events = events
	}
}

// AttachFlightLog registers the recorder on the autopilot's step bus; it
// samples in registration order relative to any other observers.
func (a *Autopilot) AttachFlightLog(l *FlightLog) {
	if l.PeriodS <= 0 {
		l.PeriodS = 0.1
	}
	lastMode := a.Mode()
	lastEvent := a.LastEvent()
	a.Observe(func(ap *Autopilot, dt float64) {
		if m := ap.Mode(); m != lastMode {
			l.events = append(l.events, LogEvent{ap.Time(), "mode " + lastMode.String() + " -> " + m.String()})
			lastMode = m
		}
		if e := ap.LastEvent(); e != lastEvent && e != "" {
			l.events = append(l.events, LogEvent{ap.Time(), e})
			lastEvent = e
		}
		if !l.primed {
			l.next = ap.Time()
			l.primed = true
		}
		if ap.Time() < l.next {
			return
		}
		l.next += l.PeriodS
		s := ap.Quad().State()
		roll, pitch, yaw := s.Att.Euler()
		e := LogEntry{
			TimeS: ap.Time(), Mode: ap.Mode(),
			PosX: s.Pos.X, PosY: s.Pos.Y, Alt: s.Pos.Z,
			Speed: s.Vel.Norm(),
			Roll:  roll, Pitch: pitch, Yaw: yaw,
			PowerW: ap.TotalPowerW(),
		}
		if b := ap.Battery(); b != nil {
			e.BatterySoC = b.StateOfCharge()
		}
		l.entries = append(l.entries, e)
	})
}

// Entries returns the recorded rows.
func (l *FlightLog) Entries() []LogEntry { return l.entries }

// Events returns the recorded annotations.
func (l *FlightLog) Events() []LogEvent { return l.events }

// MaxAltitude returns the highest recorded altitude.
func (l *FlightLog) MaxAltitude() float64 {
	m := 0.0
	for _, e := range l.entries {
		if e.Alt > m {
			m = e.Alt
		}
	}
	return m
}

// MaxSpeed returns the highest recorded speed.
func (l *FlightLog) MaxSpeed() float64 {
	m := 0.0
	for _, e := range l.entries {
		if e.Speed > m {
			m = e.Speed
		}
	}
	return m
}

// EnergyWh integrates the recorded power into watt-hours.
func (l *FlightLog) EnergyWh() float64 {
	wh := 0.0
	for i := 1; i < len(l.entries); i++ {
		dt := l.entries[i].TimeS - l.entries[i-1].TimeS
		wh += (l.entries[i].PowerW + l.entries[i-1].PowerW) / 2 * dt / 3600
	}
	return wh
}

// TimeInMode sums the recorded seconds spent in a mode.
func (l *FlightLog) TimeInMode(m Mode) float64 {
	t := 0.0
	for i := 1; i < len(l.entries); i++ {
		if l.entries[i].Mode == m {
			t += l.entries[i].TimeS - l.entries[i-1].TimeS
		}
	}
	return t
}

// WriteCSV streams the log as CSV.
func (l *FlightLog) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"time_s,mode,x,y,alt,speed,roll,pitch,yaw,power_w,soc\n"); err != nil {
		return err
	}
	for _, e := range l.entries {
		_, err := fmt.Fprintf(w, "%.3f,%s,%.3f,%.3f,%.3f,%.3f,%.4f,%.4f,%.4f,%.2f,%.4f\n",
			e.TimeS, e.Mode, e.PosX, e.PosY, e.Alt, e.Speed,
			e.Roll, e.Pitch, e.Yaw, e.PowerW, e.BatterySoC)
		if err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a one-paragraph post-flight report.
func (l *FlightLog) Summary() string {
	if len(l.entries) == 0 {
		return "flight log: empty"
	}
	var b strings.Builder
	first, last := l.entries[0], l.entries[len(l.entries)-1]
	fmt.Fprintf(&b, "flight log: %.1f s, %d samples, %d events; ",
		last.TimeS-first.TimeS, len(l.entries), len(l.events))
	fmt.Fprintf(&b, "max alt %.1f m, max speed %.1f m/s, energy %.2f Wh",
		l.MaxAltitude(), l.MaxSpeed(), l.EnergyWh())
	return b.String()
}
