package autopilot

import (
	"math"
	"testing"

	"dronedse/mathx"
)

func TestFollowMovingTarget(t *testing.T) {
	ap := newTestAP(t, 3)
	// A ground vehicle driving a straight line at 2 m/s.
	target := func(tm float64) mathx.Vec3 { return mathx.V3(2*tm, 5, 0) }

	if err := ap.Follow(FollowConfig{Target: target}); err == nil {
		t.Error("follow accepted while disarmed")
	}
	if err := ap.Arm(); err != nil {
		t.Fatal(err)
	}
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	if err := ap.Follow(FollowConfig{Target: target, StandoffM: 4, AltitudeM: 4}); err != nil {
		t.Fatal(err)
	}
	if ap.Mode() != FollowMode {
		t.Fatalf("mode = %v", ap.Mode())
	}

	// Let the chase converge, then check the geometry over 10 s.
	ap.RunFor(15)
	var worstDist, worstYaw float64
	samples := 0
	ap.Observe(func(a *Autopilot, dt float64) {
		samples++
		if samples%100 != 0 {
			return
		}
		tgt := target(a.Time())
		p := a.Quad().State().Pos
		horiz := math.Hypot(p.X-tgt.X, p.Y-tgt.Y)
		if d := math.Abs(horiz - 4); d > worstDist {
			worstDist = d
		}
		// Camera bearing error.
		_, _, yaw := a.Quad().State().Att.Euler()
		want := math.Atan2(tgt.Y-p.Y, tgt.X-p.X)
		if d := math.Abs(wrap(yaw - want)); d > worstYaw {
			worstYaw = d
		}
	})
	ap.RunFor(10)
	if worstDist > 2.0 {
		t.Errorf("standoff error up to %.2f m while tracking", worstDist)
	}
	if worstYaw > 0.6 {
		t.Errorf("camera bearing error up to %.2f rad", worstYaw)
	}
	alt := ap.Quad().State().Pos.Z
	if math.Abs(alt-4) > 1 {
		t.Errorf("filming altitude = %.2f, want ~4", alt)
	}

	ap.StopFollowing()
	if ap.Mode() != Hover {
		t.Errorf("mode after stop = %v", ap.Mode())
	}
}

func TestFollowValidation(t *testing.T) {
	ap := newTestAP(t, 3)
	ap.Arm()
	ap.RunUntil(func(a *Autopilot) bool { return a.Mode() == Hover }, 30)
	if err := ap.Follow(FollowConfig{}); err == nil {
		t.Error("nil target provider accepted")
	}
	// Defaults applied.
	if err := ap.Follow(FollowConfig{Target: func(float64) mathx.Vec3 { return mathx.V3(0, 10, 0) }}); err != nil {
		t.Fatal(err)
	}
	if ap.follow.StandoffM != 4 || ap.follow.AltitudeM != 4 {
		t.Errorf("defaults = %+v", ap.follow)
	}
}

func wrap(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
