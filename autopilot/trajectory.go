package autopilot

import (
	"errors"

	"dronedse/control"
	"dronedse/planner"
)

// TrajectoryMode flies a time-parametrized trajectory from the planner,
// feeding the inner loop position AND velocity targets (the feed-forward
// path of Figure 6) instead of discrete waypoints. On completion the
// autopilot holds at the trajectory's end.
const TrajectoryMode Mode = 100

// FlyTrajectory starts trajectory following; the vehicle must be airborne
// (Hover).
func (a *Autopilot) FlyTrajectory(tr *planner.Trajectory) error {
	if tr == nil {
		return errors.New("autopilot: nil trajectory")
	}
	if a.mode != Hover {
		return errors.New("autopilot: start a trajectory from HOVER")
	}
	a.traj = tr
	a.trajT0 = a.Time()
	a.mode = TrajectoryMode
	return nil
}

// trajectoryTargets samples the active trajectory at the current time.
func (a *Autopilot) trajectoryTargets() control.Targets {
	t := a.Time() - a.trajT0
	pos, vel := a.traj.Sample(t)
	if t >= a.traj.TotalS {
		a.mode = Hover
		a.traj = nil
		return control.Targets{Position: pos, Yaw: a.yawTarget}
	}
	return control.Targets{Position: pos, Velocity: vel, Yaw: a.yawTarget}
}
