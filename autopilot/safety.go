package autopilot

import (
	"errors"
	"math"

	"dronedse/mathx"
	"dronedse/mavlink"
)

// Geofence bounds the flight volume: a horizontal radius around home and
// an altitude ceiling. A breach triggers return-to-launch — the safety
// override path the paper routes through the inner loop for minimum
// latency (§2.1.3-A).
type Geofence struct {
	RadiusM  float64
	CeilingM float64
}

// SetGeofence installs (or, with a zero fence, removes) the geofence.
func (a *Autopilot) SetGeofence(f Geofence) { a.fence = f }

// fenceLookaheadS is the predictive-breach horizon: the monitor projects
// the velocity forward so the turn-around starts before the boundary, the
// way fielded autopilots implement fences (stopping from cruise takes
// many meters).
const fenceLookaheadS = 1.0

// fenceBreached reports whether the estimate — projected one lookahead
// ahead — is outside the fence.
func (a *Autopilot) fenceBreached() bool {
	if a.fence.RadiusM <= 0 && a.fence.CeilingM <= 0 {
		return false
	}
	est := a.EstimatedState()
	ahead := est.Pos.Add(est.Vel.Scale(fenceLookaheadS))
	horiz := math.Hypot(ahead.X-a.home.X, ahead.Y-a.home.Y)
	if a.fence.RadiusM > 0 && horiz > a.fence.RadiusM {
		return true
	}
	if a.fence.CeilingM > 0 && ahead.Z > a.fence.CeilingM {
		return true
	}
	return false
}

// EnergyPolicy is the outer-loop flight-time management duty of Table 1:
// monitor the battery and the energy needed to get home, and bail out with
// margin. Reserve is the fraction of return energy held in reserve.
type EnergyPolicy struct {
	Enabled bool
	// Reserve scales the estimated return energy (1.5 = 50% margin).
	Reserve float64
	// CruiseMS is the assumed return speed.
	CruiseMS float64
}

// DefaultEnergyPolicy returns a 50%-margin policy at 4 m/s cruise.
func DefaultEnergyPolicy() EnergyPolicy {
	return EnergyPolicy{Enabled: true, Reserve: 1.5, CruiseMS: 4}
}

// SetEnergyPolicy installs the policy.
func (a *Autopilot) SetEnergyPolicy(p EnergyPolicy) { a.energy = p }

// EstimatedReturnEnergyWh estimates the energy to fly home and land from
// the present position at the policy's cruise speed, using the recent
// average total power.
func (a *Autopilot) EstimatedReturnEnergyWh() float64 {
	cruise := a.energy.CruiseMS
	if cruise <= 0 {
		cruise = DefaultEnergyPolicy().CruiseMS
	}
	est := a.EstimatedState().Pos
	dist := est.Sub(a.home).Norm()
	cruiseS := dist / cruise
	descentS := est.Z / 1.5 // landing descent at ~1.5 m/s
	p := a.avgPowerW
	if p <= 0 {
		p = a.TotalPowerW()
	}
	return p * (cruiseS + descentS) / 3600
}

// RemainingEnergyWh is the usable energy left in the pack before the LiPo
// drain limit.
func (a *Autopilot) RemainingEnergyWh() float64 {
	if a.battery == nil {
		return math.Inf(1)
	}
	full := a.battery.UsableEnergyWh()
	soc := a.battery.StateOfCharge()
	// Usable fraction remaining: SoC spans [1-drainLimit, 1].
	used := (1 - soc) / 0.85
	if used > 1 {
		used = 1
	}
	return full * (1 - used)
}

// EstimatedEnduranceMin is the remaining flight time at the recent average
// power — the "calculate flight time" box of Figure 12, live.
func (a *Autopilot) EstimatedEnduranceMin() float64 {
	p := a.avgPowerW
	if p <= 0 {
		p = a.TotalPowerW()
	}
	if p <= 0 {
		return 0
	}
	return RemainingOrInf(a.RemainingEnergyWh()) / p * 60
}

// RemainingOrInf guards the Inf battery-less case for display math.
func RemainingOrInf(v float64) float64 {
	if math.IsInf(v, 1) {
		return math.MaxFloat64 / 1e6
	}
	return v
}

// GPS-denial failsafe thresholds: once a declared denial has both lasted
// past the grace period and inflated the horizontal position uncertainty
// beyond the limit, the autopilot stops trusting the mission geometry and
// returns home on the coasting estimate (ArduCopter's EKF failsafe makes
// the same escalation).
const (
	gpsDenialGraceS      = 3.0
	gpsUncertaintyLimitM = 6.0
)

// crashTiltRad is the crash-check attitude threshold: a quadrotor past
// ~75 degrees of tilt while the controller is demanding level flight is
// unrecoverable; the check disarms to stop the motors (ArduCopter's crash
// check does the same).
const crashTiltRad = 75 * math.Pi / 180

// checkSafety runs the outer-loop safety monitors; called from Step at the
// mission-logic rate.
func (a *Autopilot) checkSafety() {
	if a.mode == Disarmed || a.mode == Failsafe {
		return
	}
	// Crash check: extreme attitude means control is lost (e.g. a failed
	// motor); cut the motors rather than fight physics.
	est := a.EstimatedState()
	up := est.Att.Rotate(mathx.V3(0, 0, 1))
	if math.Acos(mathx.Clamp(up.Z, -1, 1)) > crashTiltRad {
		a.lastEvent = "crash detected: disarm"
		a.mode = Disarmed
		return
	}
	if a.mode == Land {
		return
	}
	if a.fenceBreached() && a.mode != ReturnToLaunch {
		a.lastEvent = "geofence breach: RTL"
		a.mode = ReturnToLaunch
		return
	}
	// GPS-denial escalation: coasting is fine for a few seconds, but a
	// sustained denial with a diverging estimate ends the mission.
	if a.gpsDenied && a.mode != ReturnToLaunch {
		if a.Time()-a.gpsDeniedAt > gpsDenialGraceS &&
			a.est.Pos.PositionUncertainty() > gpsUncertaintyLimitM {
			a.lastEvent = "gps denied, estimate degraded: RTL"
			a.mode = ReturnToLaunch
			return
		}
	}
	if a.energy.Enabled && a.battery != nil && a.mode != ReturnToLaunch {
		if a.RemainingEnergyWh() < a.EstimatedReturnEnergyWh()*a.energy.Reserve {
			a.lastEvent = "energy reserve reached: RTL"
			a.mode = ReturnToLaunch
		}
	}
}

// LastEvent returns the most recent safety event description (empty when
// none fired).
func (a *Autopilot) LastEvent() string { return a.lastEvent }

// --- Mission upload over MAVLink ---

// ErrMissionIndex reports an out-of-order mission item upload.
var ErrMissionIndex = errors.New("autopilot: mission item out of order")

// HandleMissionItem accepts one uploaded waypoint. Items must arrive in
// index order starting at 0; item 0 resets the staged mission. The staged
// mission becomes active on CommitMission.
func (a *Autopilot) HandleMissionItem(item mavlink.MissionItem) error {
	if int(item.Index) == 0 {
		a.staged = a.staged[:0]
	}
	if int(item.Index) != len(a.staged) {
		return ErrMissionIndex
	}
	a.staged = append(a.staged, Waypoint{
		Pos:   mathx.V3(float64(item.X), float64(item.Y), float64(item.Z)),
		HoldS: float64(item.HoldS),
	})
	return nil
}

// CommitMission validates and activates the staged mission.
func (a *Autopilot) CommitMission() error {
	if err := a.LoadMission(append(MissionPlan(nil), a.staged...)); err != nil {
		return err
	}
	a.staged = a.staged[:0]
	return nil
}
