package autopilot

import (
	"errors"
	"math"

	"dronedse/control"
	"dronedse/mathx"
)

// FollowMode tracks a moving ground target at a standoff distance — the
// active-filming application of the paper's introduction ("follow a
// predefined target and optimize the filming angles while avoiding
// obstacles"). The target position comes from a provider (in a real system,
// the recognition pipeline's output).
const FollowMode Mode = 101

// FollowConfig shapes the follow behavior.
type FollowConfig struct {
	// Target reports the target's position at simulated time t.
	Target func(t float64) mathx.Vec3
	// StandoffM is the horizontal trail distance.
	StandoffM float64
	// AltitudeM is the filming altitude above the target.
	AltitudeM float64
}

// Follow enters target-following from Hover.
func (a *Autopilot) Follow(cfg FollowConfig) error {
	if cfg.Target == nil {
		return errors.New("autopilot: nil target provider")
	}
	if a.mode != Hover {
		return errors.New("autopilot: start following from HOVER")
	}
	if cfg.StandoffM <= 0 {
		cfg.StandoffM = 4
	}
	if cfg.AltitudeM <= 0 {
		cfg.AltitudeM = 4
	}
	a.follow = cfg
	a.mode = FollowMode
	return nil
}

// StopFollowing returns to Hover.
func (a *Autopilot) StopFollowing() {
	if a.mode == FollowMode {
		a.mode = Hover
	}
}

// followTargets computes the filming position: trail the target opposite
// its motion direction at the standoff, camera (body +X) pointed at it.
func (a *Autopilot) followTargets() control.Targets {
	now := a.Time()
	tgt := a.follow.Target(now)
	// Finite-difference target velocity for lead/trail placement.
	prev := a.follow.Target(now - 0.5)
	vel := tgt.Sub(prev).Scale(2)
	trail := vel.Scale(-1)
	trail.Z = 0
	if trail.Norm() < 0.1 {
		// Stationary target: hold the current bearing.
		est := a.EstimatedState().Pos
		trail = mathx.V3(est.X-tgt.X, est.Y-tgt.Y, 0)
		if trail.Norm() < 0.1 {
			trail = mathx.V3(-1, 0, 0)
		}
	}
	offset := trail.Normalized().Scale(a.follow.StandoffM)
	goal := tgt.Add(offset)
	goal.Z = tgt.Z + a.follow.AltitudeM
	// Camera on target.
	a.yawTarget = math.Atan2(tgt.Y-goal.Y, tgt.X-goal.X)
	return control.Targets{
		Position: goal,
		Velocity: mathx.V3(vel.X, vel.Y, 0),
		Yaw:      a.yawTarget,
	}
}
