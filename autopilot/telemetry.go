package autopilot

import (
	"dronedse/mavlink"
)

// Telemetry serializes the autopilot's current state as a burst of MAVLink
// frames (heartbeat, attitude, position, battery) for the ground station
// link. seq provides the rolling sequence counter and is advanced by the
// number of frames emitted.
func (a *Autopilot) Telemetry(seq *uint8) ([]byte, error) {
	est := a.EstimatedState()
	roll, pitch, yaw := est.Att.Euler()
	ms := uint32(a.Time() * 1000)

	frames := []mavlink.Frame{
		{MsgID: mavlink.MsgHeartbeat, Payload: mavlink.EncodeHeartbeat(mavlink.Heartbeat{
			Mode: uint8(a.mode), Armed: a.mode != Disarmed, TimeMS: ms})},
		{MsgID: mavlink.MsgAttitude, Payload: mavlink.EncodeAttitude(mavlink.Attitude{
			TimeMS: ms,
			Roll:   float32(roll), Pitch: float32(pitch), Yaw: float32(yaw),
			RollRate: float32(est.Omega.X), PitchRate: float32(est.Omega.Y), YawRate: float32(est.Omega.Z)})},
		{MsgID: mavlink.MsgGlobalPosition, Payload: mavlink.EncodeGlobalPosition(mavlink.GlobalPosition{
			TimeMS: ms,
			X:      float32(est.Pos.X), Y: float32(est.Pos.Y), Z: float32(est.Pos.Z),
			VX: float32(est.Vel.X), VY: float32(est.Vel.Y), VZ: float32(est.Vel.Z)})},
	}
	if a.battery != nil {
		frames = append(frames, mavlink.Frame{
			MsgID: mavlink.MsgBatteryStatus,
			Payload: mavlink.EncodeBatteryStatus(mavlink.BatteryStatus{
				VoltageV: float32(a.battery.Voltage()),
				SoC:      float32(a.battery.StateOfCharge()),
				PowerW:   float32(a.TotalPowerW())})})
	}
	var out []byte
	for _, f := range frames {
		f.Seq = *seq
		*seq++
		f.SysID = 1
		f.CompID = 1
		raw, err := f.Marshal()
		if err != nil {
			return nil, err
		}
		out = append(out, raw...)
	}
	return out, nil
}

// HandleCommand applies a ground-station CommandLong to the autopilot,
// returning an error when the command is not executable in the current mode.
func (a *Autopilot) HandleCommand(c mavlink.CommandLong) error {
	switch c.Command {
	case mavlink.CmdArm:
		return a.Arm()
	case mavlink.CmdLand:
		a.CommandLand()
		return nil
	case mavlink.CmdRTL:
		a.CommandRTL()
		return nil
	case mavlink.CmdStartMission:
		return a.StartMission()
	default:
		return ErrUnknownCommand
	}
}

// ErrUnknownCommand reports a CommandLong the autopilot does not implement.
var ErrUnknownCommand = errUnknownCommand{}

type errUnknownCommand struct{}

func (errUnknownCommand) Error() string { return "autopilot: unknown command" }
