package autopilot

import (
	"fmt"
	"sort"

	"dronedse/mavlink"
)

// The parameter protocol: named tunables readable and writable over MAVLink
// at runtime — the artifact's mid-flight reconfiguration path ("DroneKit
// ... modified to allow the drone to be reconfigured mid-flight").
//
// Parameter names follow the ArduCopter convention.
const (
	ParamTakeoffAlt    = "TKOFF_ALT"
	ParamFenceRadius   = "FENCE_RADIUS"
	ParamFenceCeiling  = "FENCE_ALT_MAX"
	ParamEnergyReserve = "BATT_RTL_RESRV"
	ParamCruiseSpeed   = "WPNAV_SPEED"
	ParamYawTarget     = "YAW_TARGET"
	ParamComputeW      = "COMPUTE_W"
)

// ErrUnknownParam reports a parameter name the autopilot does not expose.
var ErrUnknownParam = fmt.Errorf("autopilot: unknown parameter")

// GetParam reads a named parameter.
func (a *Autopilot) GetParam(name string) (float64, error) {
	switch name {
	case ParamTakeoffAlt:
		return a.takeoffAlt, nil
	case ParamFenceRadius:
		return a.fence.RadiusM, nil
	case ParamFenceCeiling:
		return a.fence.CeilingM, nil
	case ParamEnergyReserve:
		return a.energy.Reserve, nil
	case ParamCruiseSpeed:
		return a.energy.CruiseMS, nil
	case ParamYawTarget:
		return a.yawTarget, nil
	case ParamComputeW:
		return a.computeW, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownParam, name)
	}
}

// SetParam writes a named parameter, validating ranges. Safe mid-flight:
// each parameter takes effect at the next outer-loop tick.
func (a *Autopilot) SetParam(name string, value float64) error {
	bad := func(why string) error {
		return fmt.Errorf("autopilot: %s=%v rejected: %s", name, value, why)
	}
	switch name {
	case ParamTakeoffAlt:
		if value <= 0 || value > 120 {
			return bad("takeoff altitude must be in (0, 120] m")
		}
		a.takeoffAlt = value
	case ParamFenceRadius:
		if value < 0 {
			return bad("radius must be >= 0 (0 disables)")
		}
		a.fence.RadiusM = value
	case ParamFenceCeiling:
		if value < 0 {
			return bad("ceiling must be >= 0 (0 disables)")
		}
		a.fence.CeilingM = value
	case ParamEnergyReserve:
		if value < 1 {
			return bad("reserve factor must be >= 1")
		}
		a.energy.Reserve = value
		a.energy.Enabled = true
	case ParamCruiseSpeed:
		if value <= 0 || value > 20 {
			return bad("cruise speed must be in (0, 20] m/s")
		}
		a.energy.CruiseMS = value
	case ParamYawTarget:
		a.yawTarget = value
	case ParamComputeW:
		if value < 0 {
			return bad("compute power must be >= 0")
		}
		a.computeW = value
	default:
		return fmt.Errorf("%w: %q", ErrUnknownParam, name)
	}
	return nil
}

// ParamNames lists the exposed parameters in stable order.
func (a *Autopilot) ParamNames() []string {
	names := []string{
		ParamTakeoffAlt, ParamFenceRadius, ParamFenceCeiling,
		ParamEnergyReserve, ParamCruiseSpeed, ParamYawTarget, ParamComputeW,
	}
	sort.Strings(names)
	return names
}

// HandleParamSet applies a PARAM_SET frame and returns the PARAM_VALUE
// acknowledgment payload (the protocol echoes the accepted value).
func (a *Autopilot) HandleParamSet(p mavlink.Param) (mavlink.Param, error) {
	if err := a.SetParam(p.Name, float64(p.Value)); err != nil {
		return mavlink.Param{}, err
	}
	v, err := a.GetParam(p.Name)
	if err != nil {
		return mavlink.Param{}, err
	}
	return mavlink.Param{Name: p.Name, Value: float32(v)}, nil
}
