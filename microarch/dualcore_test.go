package microarch

import "testing"

// TestIsolationLadder verifies the §2.2 deployment argument quantitatively,
// and in particular its STRONG form: the paper requires the inner loop not
// be co-located "on the same computation core or even the same unit". A
// dedicated core eliminates the private-structure pollution (TLB, branch
// predictor) but the shared LLC still throttles the control loop — which is
// exactly why fielded drones give the inner loop its own processor (solo).
func TestIsolationLadder(t *testing.T) {
	r := RunIsolationStudy(1, 30000)

	// IPC ladder: solo >= dedicated core > shared core.
	if !(r.Solo.IPC >= r.DedicatedCore.IPC && r.DedicatedCore.IPC > r.SharedCore.IPC) {
		t.Errorf("IPC ladder violated: solo %.3f, dedicated %.3f, shared %.3f",
			r.Solo.IPC, r.DedicatedCore.IPC, r.SharedCore.IPC)
	}
	// The dedicated core must NOT recover the bulk of the loss: the
	// shared LLC keeps bleeding the control loop (the paper's "or even
	// the same unit").
	lost := r.Solo.IPC - r.SharedCore.IPC
	recovered := r.DedicatedCore.IPC - r.SharedCore.IPC
	if recovered > 0.6*lost {
		t.Errorf("dedicated core recovered %.0f%% of the IPC loss; a shared LLC should still hurt",
			100*recovered/lost)
	}
	if recovered <= 0 {
		t.Error("dedicated core recovered nothing; private structures should help some")
	}
	// Private TLB: dedicated-core TLB misses near solo, far below shared.
	if r.DedicatedCore.TLBMisses > r.Solo.TLBMisses*3/2 {
		t.Errorf("dedicated-core TLB misses %d not near solo %d",
			r.DedicatedCore.TLBMisses, r.Solo.TLBMisses)
	}
	if r.SharedCore.TLBMisses < r.DedicatedCore.TLBMisses*2 {
		t.Errorf("shared-core TLB misses %d should far exceed dedicated %d",
			r.SharedCore.TLBMisses, r.DedicatedCore.TLBMisses)
	}
	// Branch predictor: private state means no pollution.
	if r.DedicatedCore.BranchMissRate > r.Solo.BranchMissRate*1.2 {
		t.Errorf("dedicated-core branch misses %.4f polluted vs solo %.4f",
			r.DedicatedCore.BranchMissRate, r.Solo.BranchMissRate)
	}
	// LLC sharing still leaks: dedicated-core LLC miss rate above solo.
	if r.DedicatedCore.LLCMissRate <= r.Solo.LLCMissRate {
		t.Error("shared LLC should still cost the dedicated core something")
	}
}

func TestDedicatedCoresDeterministic(t *testing.T) {
	a := RunDedicatedCores(NewAutopilotWorkload(3), NewSLAMWorkload(4), 5000, 40, 8)
	b := RunDedicatedCores(NewAutopilotWorkload(3), NewSLAMWorkload(4), 5000, 40, 8)
	if a != b {
		t.Error("same-seed dual-core runs diverge")
	}
}
