package microarch

import (
	"math/rand"
	"testing"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets x 2 ways
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("warm access missed")
	}
	if !c.Access(32) { // same line
		t.Error("same-line access missed")
	}
	if c.MissRate() >= 0.5 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(128, 2, 64) // 1 set, 2 ways
	c.Access(0)
	c.Access(64)
	c.Access(0)   // touch 0: now 64 is LRU
	c.Access(128) // evicts 64
	if !c.Access(0) {
		t.Error("recently used line evicted")
	}
	if c.Access(64) {
		t.Error("LRU line survived eviction")
	}
}

func TestCacheCapacityBehavior(t *testing.T) {
	c := NewCache(32*1024, 4, 64)
	// A working set half the cache: after warmup, everything hits.
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 16*1024; a += 64 {
			c.Access(a)
		}
	}
	c2 := NewCache(32*1024, 4, 64)
	// A working set 4x the cache: persistent misses (cycling defeats LRU).
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 128*1024; a += 64 {
			c2.Access(a)
		}
	}
	if c.MissRate() > 0.3 {
		t.Errorf("fitting working set miss rate = %v", c.MissRate())
	}
	if c2.MissRate() < 0.9 {
		t.Errorf("thrashing working set miss rate = %v", c2.MissRate())
	}
}

func TestTLB(t *testing.T) {
	tl := NewTLB(4)
	for p := uint64(0); p < 4; p++ {
		tl.Access(p << 12)
	}
	for p := uint64(0); p < 4; p++ {
		if !tl.Access(p << 12) {
			t.Errorf("resident page %d missed", p)
		}
	}
	tl.Access(99 << 12) // evicts LRU (page 0)
	if tl.Access(0) {
		t.Error("evicted page hit")
	}
}

func TestBranchPredictorLearnsLoops(t *testing.T) {
	bp := NewBranchPredictor(10)
	// Always-taken branch: converges to near-zero misses.
	for i := 0; i < 1000; i++ {
		bp.Predict(0x40, true)
	}
	// Warmup fills the 12-bit history before the counters stabilize.
	if bp.MissRate() > 0.02 {
		t.Errorf("always-taken miss rate = %v", bp.MissRate())
	}
	// Random branch: ~50% misses.
	bp2 := NewBranchPredictor(10)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		bp2.Predict(0x80, r.Intn(2) == 0)
	}
	if bp2.MissRate() < 0.35 || bp2.MissRate() > 0.65 {
		t.Errorf("random-branch miss rate = %v, want ~0.5", bp2.MissRate())
	}
}

func TestCoreIPCDegradesWithMisses(t *testing.T) {
	good := NewCore()
	for i := 0; i < 20000; i++ {
		good.Load(uint64(i%256) * 64 % 4096) // tiny hot set
		good.ALU(4)
	}
	bad := NewCore()
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		bad.Load(uint64(r.Int63n(64 << 20))) // random in 64 MiB
		bad.ALU(4)
	}
	if bad.IPC() >= good.IPC()/2 {
		t.Errorf("random-access IPC %v not clearly below cached IPC %v", bad.IPC(), good.IPC())
	}
}

func TestWorkloadCharacters(t *testing.T) {
	ap := RunSolo(NewAutopilotWorkload(1), 20000)
	sl := RunSolo(NewSLAMWorkload(2), 20000)
	// SLAM: larger footprint, worse in every Figure 15 metric.
	if sl.IPC >= ap.IPC {
		t.Errorf("SLAM IPC %v not below autopilot %v", sl.IPC, ap.IPC)
	}
	if sl.LLCMissRate <= ap.LLCMissRate {
		t.Error("SLAM LLC miss rate not above autopilot")
	}
	if sl.BranchMissRate <= ap.BranchMissRate {
		t.Error("SLAM branch miss rate not above autopilot")
	}
	if sl.TLBMissRate <= ap.TLBMissRate {
		t.Error("SLAM TLB miss rate not above autopilot")
	}
}

// TestFigure15 is the reproduction check for the paper's measured
// interference: co-locating SLAM with the autopilot raises the autopilot's
// TLB misses ~4.5x and cuts its IPC ~1.7x, with LLC and branch miss rates
// strictly higher.
func TestFigure15(t *testing.T) {
	r := RunFigure15(1, 30000)
	tlbRatio := float64(r.AutopilotWithSLAM.TLBMisses) / float64(r.Autopilot.TLBMisses)
	if tlbRatio < 3.0 || tlbRatio > 6.5 {
		t.Errorf("TLB miss ratio = %.2f, paper reports 4.5x", tlbRatio)
	}
	ipcDrop := r.Autopilot.IPC / r.AutopilotWithSLAM.IPC
	if ipcDrop < 1.4 || ipcDrop > 2.2 {
		t.Errorf("IPC drop = %.2f, paper reports 1.7x", ipcDrop)
	}
	if r.AutopilotWithSLAM.LLCMissRate <= r.Autopilot.LLCMissRate {
		t.Error("co-resident LLC miss rate not above solo")
	}
	if r.AutopilotWithSLAM.BranchMissRate <= r.Autopilot.BranchMissRate {
		t.Error("co-resident branch miss rate not above solo")
	}
}

func TestFigure15Deterministic(t *testing.T) {
	a := RunFigure15(7, 5000)
	b := RunFigure15(7, 5000)
	if a != b {
		t.Error("same-seed Figure 15 runs diverge")
	}
}

func TestRunCoResidentShortTail(t *testing.T) {
	// totalIters not a multiple of quantum must still account everything.
	m := RunCoResident(NewAutopilotWorkload(1), NewSLAMWorkload(2), 105, 40, 2)
	if m.Instructions == 0 {
		t.Fatal("no instructions attributed")
	}
}
