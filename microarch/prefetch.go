package microarch

// Prefetcher ablation: the paper's Figure 1 asks whether a drone chip
// should "accelerate tasks similar to other areas" or rely on
// general-purpose features. A next-N-line stream prefetcher is the
// cheapest general-purpose feature there is: it should erase most of the
// autopilot's L1 misses (strided filter-state walks) while doing little
// for SLAM's pointer-chasing — quantifying which workload class benefits
// from conventional microarchitecture.

// StreamPrefetcher issues next-line prefetches on L1 misses with simple
// stream detection: a miss within one line-stride of the previous miss
// confirms a stream and prefetches the next `Degree` lines.
type StreamPrefetcher struct {
	// Degree is how many lines ahead to prefetch once a stream confirms.
	Degree int

	lastMissLine uint64
	streaming    bool

	Issued uint64
}

// NewStreamPrefetcher returns a degree-2 prefetcher.
func NewStreamPrefetcher() *StreamPrefetcher { return &StreamPrefetcher{Degree: 2} }

// onMiss reacts to an L1 miss at the given line address, returning the line
// addresses to prefetch.
func (p *StreamPrefetcher) onMiss(line uint64) []uint64 {
	defer func() { p.lastMissLine = line }()
	if line == p.lastMissLine+1 || line == p.lastMissLine+2 {
		p.streaming = true
	} else if line != p.lastMissLine {
		p.streaming = false
	}
	if !p.streaming {
		return nil
	}
	out := make([]uint64, 0, p.Degree)
	for i := 1; i <= p.Degree; i++ {
		out = append(out, line+uint64(i))
	}
	p.Issued += uint64(len(out))
	return out
}

// AttachPrefetcher equips a core's L1D with the stream prefetcher; the
// core's Load path consults it on every L1 miss.
func (c *Core) AttachPrefetcher(p *StreamPrefetcher) { c.prefetch = p }

// loadWithPrefetch is the Load path with prefetching folded in; used by
// Core.Load when a prefetcher is attached.
func (c *Core) loadWithPrefetch(addr uint64) {
	c.Instructions++
	c.Cycles += 1 / c.BaseIPC
	if !c.TLB.Access(addr) {
		c.Cycles += c.TLBMissPenalty
	}
	if c.L1D.Access(addr) {
		return
	}
	c.Cycles += c.L1MissPenalty
	if !c.L2.Access(addr) {
		c.Cycles += c.L2MissPenalty
	}
	line := addr >> 6
	for _, pl := range c.prefetch.onMiss(line) {
		// Prefetches fill the caches off the critical path (no cycle
		// charge beyond issue bandwidth, modeled as free here).
		pa := pl << 6
		c.L1D.Access(pa)
		c.L2.Access(pa)
	}
}

// PrefetchAblation compares a workload's IPC with and without the stream
// prefetcher.
type PrefetchAblation struct {
	Without Metrics
	With    Metrics
	// PrefetchesIssued counts issued prefetch lines in the With run.
	PrefetchesIssued uint64
}

// Speedup is the IPC ratio With/Without.
func (a PrefetchAblation) Speedup() float64 {
	if a.Without.IPC == 0 {
		return 0
	}
	return a.With.IPC / a.Without.IPC
}

// RunPrefetchAblation measures one workload both ways. The factory must
// produce identical workloads (same seed) per call.
func RunPrefetchAblation(mk func() Workload, iters int) PrefetchAblation {
	var out PrefetchAblation
	out.Without = RunSolo(mk(), iters)

	c := NewCore()
	pf := NewStreamPrefetcher()
	c.AttachPrefetcher(pf)
	before := c.counters()
	mk().Burst(c, iters)
	out.With = diffMetrics(before, c.counters())
	out.PrefetchesIssued = pf.Issued
	return out
}
