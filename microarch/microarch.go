// Package microarch is a trace-driven micro-architecture simulator used to
// reproduce Figure 15: the performance interference between the autopilot
// and SLAM when co-located on the Raspberry Pi. It models a Cortex-A-class
// in-order core: set-associative L1/L2 caches, a TLB, a gshare branch
// predictor, and a miss-penalty IPC model. Synthetic-but-working-set-
// faithful instruction traces for the autopilot (small, periodic, regular)
// and SLAM (large, irregular, data-dependent) are interleaved the way the
// scheduler interleaves the two processes, and the autopilot's TLB misses,
// LLC/branch miss rates, and IPC are measured solo vs. co-resident.
package microarch

import (
	"math/rand"

	"dronedse/parallelx"
)

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	// tags[set][way]; lru[set][way] holds a recency stamp.
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	stamp uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size in bytes.
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	sets := sizeBytes / (ways * lineBytes)
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	c := &Cache{sets: sets, ways: ways, lineShift: shift}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c
}

// Access looks up addr, filling on miss; returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.stamp++
	line := addr >> c.lineShift
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	for w := 0; w < c.ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.stamp
			return true
		}
	}
	c.Misses++
	// LRU victim.
	victim, oldest := 0, c.lru[set][0]
	for w := 0; w < c.ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < oldest {
			victim, oldest = w, c.lru[set][w]
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.stamp
	return false
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// TLB is a fully-associative LRU translation buffer over 4 KiB pages.
type TLB struct {
	entries int
	pages   map[uint64]uint64 // page -> stamp
	stamp   uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB with the given entry count.
func NewTLB(entries int) *TLB {
	return &TLB{entries: entries, pages: make(map[uint64]uint64, entries)}
}

// Access translates addr, returning true on hit.
func (t *TLB) Access(addr uint64) bool {
	t.Accesses++
	t.stamp++
	page := addr >> 12
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.stamp
		return true
	}
	t.Misses++
	if len(t.pages) >= t.entries {
		var victim uint64
		oldest := t.stamp + 1
		for p, s := range t.pages {
			if s < oldest {
				victim, oldest = p, s
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.stamp
	return false
}

// BranchPredictor is a gshare predictor with 2-bit saturating counters.
type BranchPredictor struct {
	table   []uint8
	history uint64
	mask    uint64

	Branches uint64
	Misses   uint64
}

// NewBranchPredictor builds a predictor with 2^bits entries.
func NewBranchPredictor(bits uint) *BranchPredictor {
	return &BranchPredictor{table: make([]uint8, 1<<bits), mask: 1<<bits - 1}
}

// Predict consumes a branch outcome and returns whether the prediction was
// correct.
func (b *BranchPredictor) Predict(pc uint64, taken bool) bool {
	b.Branches++
	idx := (pc ^ b.history) & b.mask
	pred := b.table[idx] >= 2
	if taken && b.table[idx] < 3 {
		b.table[idx]++
	}
	if !taken && b.table[idx] > 0 {
		b.table[idx]--
	}
	b.history = (b.history<<1 | boolBit(taken)) & b.mask
	if pred != taken {
		b.Misses++
		return false
	}
	return true
}

// MissRate returns mispredictions/branches.
func (b *BranchPredictor) MissRate() float64 {
	if b.Branches == 0 {
		return 0
	}
	return float64(b.Misses) / float64(b.Branches)
}

func boolBit(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// Core couples the structures into an in-order pipeline model with
// RPi-3B+-class parameters.
type Core struct {
	L1D *Cache
	L2  *Cache // last-level cache on the A53
	TLB *TLB
	BP  *BranchPredictor

	// Penalties in cycles.
	L1MissPenalty  float64 // L1 miss, L2 hit
	L2MissPenalty  float64 // to DRAM
	TLBMissPenalty float64 // table walk
	BPMissPenalty  float64
	BaseIPC        float64

	Instructions uint64
	Cycles       float64

	prefetch *StreamPrefetcher
}

// NewCore builds the RPi-class core model: 32 KiB L1D, 512 KiB shared L2
// (the LLC), 64-entry TLB, gshare 4k.
func NewCore() *Core {
	return &Core{
		L1D:            NewCache(32*1024, 4, 64),
		L2:             NewCache(512*1024, 16, 64),
		TLB:            NewTLB(64),
		BP:             NewBranchPredictor(12),
		L1MissPenalty:  8,
		L2MissPenalty:  90,
		TLBMissPenalty: 40,
		BPMissPenalty:  9,
		BaseIPC:        1.1,
	}
}

// Load executes one memory instruction at addr.
func (c *Core) Load(addr uint64) {
	if c.prefetch != nil {
		c.loadWithPrefetch(addr)
		return
	}
	c.Instructions++
	c.Cycles += 1 / c.BaseIPC
	if !c.TLB.Access(addr) {
		c.Cycles += c.TLBMissPenalty
	}
	if !c.L1D.Access(addr) {
		c.Cycles += c.L1MissPenalty
		if !c.L2.Access(addr) {
			c.Cycles += c.L2MissPenalty
		}
	}
}

// Branch executes one branch instruction.
func (c *Core) Branch(pc uint64, taken bool) {
	c.Instructions++
	c.Cycles += 1 / c.BaseIPC
	if !c.BP.Predict(pc, taken) {
		c.Cycles += c.BPMissPenalty
	}
}

// ALU executes n plain arithmetic instructions.
func (c *Core) ALU(n int) {
	c.Instructions += uint64(n)
	c.Cycles += float64(n) / c.BaseIPC
}

// IPC returns retired instructions per cycle.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / c.Cycles
}

// Metrics is the Figure 15 measurement set for one workload configuration.
type Metrics struct {
	IPC            float64
	LLCMissRate    float64
	BranchMissRate float64
	TLBMisses      uint64
	TLBMissRate    float64
	Instructions   uint64
}

// snapshot extracts the counters attributable to a window of execution by
// differencing.
type counters struct {
	instr, cycles                    float64
	llcA, llcM, brA, brM, tlbA, tlbM uint64
}

func (c *Core) counters() counters {
	return counters{
		instr: float64(c.Instructions), cycles: c.Cycles,
		llcA: c.L2.Accesses, llcM: c.L2.Misses,
		brA: c.BP.Branches, brM: c.BP.Misses,
		tlbA: c.TLB.Accesses, tlbM: c.TLB.Misses,
	}
}

func diffMetrics(a, b counters) Metrics {
	m := Metrics{Instructions: uint64(b.instr - a.instr)}
	if cy := b.cycles - a.cycles; cy > 0 {
		m.IPC = (b.instr - a.instr) / cy
	}
	if d := b.llcA - a.llcA; d > 0 {
		m.LLCMissRate = float64(b.llcM-a.llcM) / float64(d)
	}
	if d := b.brA - a.brA; d > 0 {
		m.BranchMissRate = float64(b.brM-a.brM) / float64(d)
	}
	m.TLBMisses = b.tlbM - a.tlbM
	if d := b.tlbA - a.tlbA; d > 0 {
		m.TLBMissRate = float64(b.tlbM-a.tlbM) / float64(d)
	}
	return m
}

// Workload generates instruction activity on a core. Burst runs roughly n
// "iterations" of the workload's inner loop.
type Workload interface {
	Name() string
	Burst(c *Core, iters int)
}

// AutopilotWorkload models the inner-loop control computation (§2.1.3-D):
// a small resident state (EKF matrices, PID history, sensor rings) walked
// with regular strides and loop-dominated, highly predictable branches,
// plus occasional excursions into a wider seldom-hot region (parameter
// tables, logging, the network stack) that populate the TLB the way a real
// Linux process does.
type AutopilotWorkload struct {
	rng *rand.Rand
	// FootprintBytes is the hot control state (~128 KiB).
	FootprintBytes uint64
	// MiscBytes is the cold wide region; MiscEvery gates how often an
	// iteration touches it.
	MiscBytes uint64
	MiscEvery int
	base      uint64
	pos       uint64
	iter      int
}

// NewAutopilotWorkload builds the control-loop workload.
func NewAutopilotWorkload(seed int64) *AutopilotWorkload {
	return &AutopilotWorkload{
		rng:            rand.New(rand.NewSource(seed)),
		FootprintBytes: 128 * 1024,
		MiscBytes:      1 << 20,
		MiscEvery:      4,
		base:           0x1000_0000,
	}
}

// Name implements Workload.
func (w *AutopilotWorkload) Name() string { return "autopilot" }

// Burst implements Workload: each iteration is one control-loop tick — a
// strided pass over the filter state with loop branches.
func (w *AutopilotWorkload) Burst(c *Core, iters int) {
	for i := 0; i < iters; i++ {
		w.iter++
		// EKF/PID pass: sequential walk over a slice of the state.
		for j := 0; j < 24; j++ {
			c.Load(w.base + w.pos%w.FootprintBytes)
			w.pos += 128 // strided matrix rows: two lines apart
			c.ALU(10)
			// loop branch: taken except at the end (predictable).
			c.Branch(w.base+uint64(j%6), j%6 != 5)
		}
		if w.MiscEvery > 0 && w.iter%w.MiscEvery == 0 {
			c.Load(w.base + 0x4000_0000 + uint64(w.rng.Int63n(int64(w.MiscBytes))))
		}
		// Occasional mode/guard branch, mildly data-dependent.
		c.Branch(w.base+0x777, w.rng.Intn(10) < 8)
	}
}

// SLAMWorkload models the ORB-SLAM memory behavior: a multi-megabyte map
// touched irregularly (pointer-chasing through keyframes and landmarks)
// with a hot recently-used subset, streaming image reads, and a mix of loop
// branches and data-dependent compares (descriptor distances, ratio tests).
type SLAMWorkload struct {
	rng *rand.Rand
	// MapBytes is the full map footprint; HotBytes the recently-touched
	// subset that sees half the accesses.
	MapBytes uint64
	HotBytes uint64
	base     uint64
	img      uint64
}

// NewSLAMWorkload builds the SLAM workload.
func NewSLAMWorkload(seed int64) *SLAMWorkload {
	return &SLAMWorkload{
		rng:      rand.New(rand.NewSource(seed)),
		MapBytes: 24 << 20,
		HotBytes: 192 * 1024,
		base:     0x5000_0000,
	}
}

// Name implements Workload.
func (w *SLAMWorkload) Name() string { return "SLAM" }

// Burst implements Workload.
func (w *SLAMWorkload) Burst(c *Core, iters int) {
	const imgBytes = 376 * 240
	for i := 0; i < iters; i++ {
		// Pointer-chase map entries (BA sparse structure); half the
		// touches revisit the hot working set.
		for j := 0; j < 12; j++ {
			region := w.MapBytes
			if j%2 == 0 {
				region = w.HotBytes
			}
			c.Load(w.base + uint64(w.rng.Int63n(int64(region))))
			c.ALU(14)
			if j%3 == 0 {
				// Data-dependent compare (descriptor distance).
				c.Branch(w.base+uint64(j)*4, w.rng.Intn(10) < 6)
			} else {
				// Inner-loop branch, predictable.
				c.Branch(w.base+0x888+uint64(j)*4, j%4 != 3)
			}
		}
		// Stream a stretch of the image (feature extraction).
		for j := 0; j < 6; j++ {
			c.Load(w.base + w.MapBytes + w.img%imgBytes)
			w.img += 64
			c.ALU(6)
			c.Branch(w.base+0x999, j != 5)
		}
	}
}

// RunSolo executes a workload alone on a fresh core and reports its
// metrics.
func RunSolo(w Workload, iters int) Metrics {
	c := NewCore()
	before := c.counters()
	w.Burst(c, iters)
	return diffMetrics(before, c.counters())
}

// RunCoResident interleaves the primary and secondary workloads on one core
// the way Linux schedules the autopilot and SLAM on the same Pi: the
// periodic autopilot runs briefly (quantum iterations), then SLAM consumes
// the rest of the tick (secondaryScale x quantum iterations). It reports
// the PRIMARY workload's metrics only — the Figure 15 "autopilot w/ SLAM"
// bars.
func RunCoResident(primary, secondary Workload, totalIters, quantum, secondaryScale int) Metrics {
	c := NewCore()
	var acc counters
	var got Metrics
	instr := uint64(0)
	tlbM := uint64(0)
	var cyc float64
	var llcA, llcM, brA, brM, tlbA uint64
	done := 0
	for done < totalIters {
		n := quantum
		if done+n > totalIters {
			n = totalIters - done
		}
		before := c.counters()
		primary.Burst(c, n)
		after := c.counters()
		instr += uint64(after.instr - before.instr)
		cyc += after.cycles - before.cycles
		llcA += after.llcA - before.llcA
		llcM += after.llcM - before.llcM
		brA += after.brA - before.brA
		brM += after.brM - before.brM
		tlbA += after.tlbA - before.tlbA
		tlbM += after.tlbM - before.tlbM
		done += n
		secondary.Burst(c, quantum*secondaryScale)
	}
	_ = acc
	got.Instructions = instr
	if cyc > 0 {
		got.IPC = float64(instr) / cyc
	}
	if llcA > 0 {
		got.LLCMissRate = float64(llcM) / float64(llcA)
	}
	if brA > 0 {
		got.BranchMissRate = float64(brM) / float64(brA)
	}
	got.TLBMisses = tlbM
	if tlbA > 0 {
		got.TLBMissRate = float64(tlbM) / float64(tlbA)
	}
	return got
}

// Figure15 runs the three Figure 15 configurations: autopilot alone, SLAM
// alone, and the autopilot co-resident with SLAM.
type Figure15Result struct {
	Autopilot         Metrics
	SLAM              Metrics
	AutopilotWithSLAM Metrics
}

// RunFigure15 executes the experiment at a representative scale. The three
// workload configurations simulate on independent core models with
// independent RNG streams, so they run concurrently on the parallelx pool
// with results identical to back-to-back serial runs.
func RunFigure15(seed int64, iters int) Figure15Result {
	var out Figure15Result
	parallelx.Do(
		func() { out.Autopilot = RunSolo(NewAutopilotWorkload(seed), iters) },
		func() { out.SLAM = RunSolo(NewSLAMWorkload(seed+1), iters) },
		func() {
			out.AutopilotWithSLAM = RunCoResident(
				NewAutopilotWorkload(seed), NewSLAMWorkload(seed+1), iters, 40, 8)
		},
	)
	return out
}
