package microarch

// Dual-core isolation experiment (§2.2): "to ensure that the inner-loop
// control is in real time, the computations for autonomous tasks in the
// outer loop are not co-located on the same computation core or even the
// same unit as for the inner-loop control." This file models the middle
// option — separate cores on one SoC: private L1/TLB/branch state per core,
// a shared last-level cache — and shows how much of the Figure 15
// interference that removes (and how much LLC sharing still leaks).

import "dronedse/parallelx"

// NewCoreSharedL2 builds a core with private L1/TLB/BP using the provided
// shared L2.
func NewCoreSharedL2(l2 *Cache) *Core {
	c := NewCore()
	c.L2 = l2
	return c
}

// RunDedicatedCores executes the primary and secondary workloads on two
// cores that share only the L2, interleaving bursts on the same schedule as
// RunCoResident so the LLC pressure is comparable. It reports the PRIMARY
// workload's metrics.
func RunDedicatedCores(primary, secondary Workload, totalIters, quantum, secondaryScale int) Metrics {
	shared := NewCache(512*1024, 16, 64)
	p := NewCoreSharedL2(shared)
	s := NewCoreSharedL2(shared)

	var instr uint64
	var cyc float64
	var llcA, llcM, brA, brM, tlbA, tlbM uint64
	done := 0
	for done < totalIters {
		n := quantum
		if done+n > totalIters {
			n = totalIters - done
		}
		before := p.counters()
		primary.Burst(p, n)
		after := p.counters()
		instr += uint64(after.instr - before.instr)
		cyc += after.cycles - before.cycles
		llcA += after.llcA - before.llcA
		llcM += after.llcM - before.llcM
		brA += after.brA - before.brA
		brM += after.brM - before.brM
		tlbA += after.tlbA - before.tlbA
		tlbM += after.tlbM - before.tlbM
		done += n
		secondary.Burst(s, quantum*secondaryScale)
	}
	var out Metrics
	out.Instructions = instr
	if cyc > 0 {
		out.IPC = float64(instr) / cyc
	}
	if llcA > 0 {
		out.LLCMissRate = float64(llcM) / float64(llcA)
	}
	if brA > 0 {
		out.BranchMissRate = float64(brM) / float64(brA)
	}
	out.TLBMisses = tlbM
	if tlbA > 0 {
		out.TLBMissRate = float64(tlbM) / float64(tlbA)
	}
	return out
}

// IsolationResult extends Figure 15 with the dedicated-core and
// dedicated-unit (separate RPi) configurations.
type IsolationResult struct {
	Solo          Metrics // autopilot alone (dedicated unit)
	SharedCore    Metrics // Figure 15's co-resident case
	DedicatedCore Metrics // own core, shared LLC
}

// RunIsolationStudy measures the autopilot under the three §2.2 deployment
// options.
func RunIsolationStudy(seed int64, iters int) IsolationResult {
	var out IsolationResult
	parallelx.Do(
		func() { out.Solo = RunSolo(NewAutopilotWorkload(seed), iters) },
		func() {
			out.SharedCore = RunCoResident(
				NewAutopilotWorkload(seed), NewSLAMWorkload(seed+1), iters, 40, 8)
		},
		func() {
			out.DedicatedCore = RunDedicatedCores(
				NewAutopilotWorkload(seed), NewSLAMWorkload(seed+1), iters, 40, 8)
		},
	)
	return out
}
