package microarch

import "testing"

// TestPrefetchAsymmetry quantifies the Figure 1 design question: a cheap
// general-purpose stream prefetcher speeds the regular inner-loop workload
// noticeably while barely moving the pointer-chasing SLAM workload.
func TestPrefetchAsymmetry(t *testing.T) {
	ap := RunPrefetchAblation(func() Workload { return NewAutopilotWorkload(1) }, 30000)
	sl := RunPrefetchAblation(func() Workload { return NewSLAMWorkload(2) }, 30000)

	if s := ap.Speedup(); s < 1.08 {
		t.Errorf("autopilot prefetch speedup = %.3f, strided walks should benefit", s)
	}
	if s := sl.Speedup(); s > 1.06 {
		t.Errorf("SLAM prefetch speedup = %.3f, pointer chasing should not benefit", s)
	}
	if ap.Speedup() <= sl.Speedup() {
		t.Error("asymmetry inverted")
	}
	if ap.PrefetchesIssued == 0 {
		t.Error("no prefetches issued for the streaming workload")
	}
}

func TestStreamDetection(t *testing.T) {
	p := NewStreamPrefetcher()
	// Random lines: no stream, no prefetches.
	for _, l := range []uint64{10, 500, 7, 9000} {
		if got := p.onMiss(l); len(got) != 0 {
			t.Errorf("random miss %d prefetched %v", l, got)
		}
	}
	// Sequential lines confirm a stream.
	p.onMiss(100)
	got := p.onMiss(101)
	if len(got) != 2 || got[0] != 102 || got[1] != 103 {
		t.Errorf("stream prefetch = %v, want [102 103]", got)
	}
	// Stride-2 streams (the autopilot's 128-byte stride) also confirm.
	p2 := NewStreamPrefetcher()
	p2.onMiss(200)
	if got := p2.onMiss(202); len(got) == 0 {
		t.Error("stride-2 stream not detected")
	}
}

func TestPrefetcherDoesNotChangeCorrectness(t *testing.T) {
	// Same instruction count either way; only cycles differ.
	a := RunPrefetchAblation(func() Workload { return NewAutopilotWorkload(5) }, 5000)
	if a.With.Instructions != a.Without.Instructions {
		t.Errorf("instruction counts differ: %d vs %d", a.With.Instructions, a.Without.Instructions)
	}
	if a.With.IPC < a.Without.IPC {
		t.Error("prefetching slowed the streaming workload down")
	}
}
