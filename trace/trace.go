// Package trace emulates the paper's two power instruments (§5): the USB
// digital multimeter sampling the RPi every half second at ±10 mW, and the
// digital oscilloscope sampling the whole drone's battery every 20 ms at
// ±0.5 mW. Recorders attach to any power source and produce the Figure 16
// time series, with phase annotations.
package trace

import (
	"math"
	"math/rand"
)

// Sample is one instrument reading.
type Sample struct {
	TimeS  float64
	PowerW float64
}

// Recorder samples a power signal at a fixed rate with instrument noise.
type Recorder struct {
	// PeriodS is the sampling interval.
	PeriodS float64
	// NoiseW is the 1-sigma instrument error in watts.
	NoiseW float64

	rng       *rand.Rand
	samples   []Sample
	nextT     float64
	lastPower float64
	started   bool
}

// NewUSBMeter matches the paper's RPi instrument: 0.5 s period, ±10 mW.
func NewUSBMeter(seed int64) *Recorder {
	return &Recorder{PeriodS: 0.5, NoiseW: 0.010, rng: rand.New(rand.NewSource(seed))}
}

// NewOscilloscope matches the whole-drone instrument: 20 ms, ±0.5 mW.
func NewOscilloscope(seed int64) *Recorder {
	return &Recorder{PeriodS: 0.020, NoiseW: 0.0005, rng: rand.New(rand.NewSource(seed))}
}

// Observe feeds the recorder the instantaneous power at simulated time t;
// the recorder stores a sample whenever its period elapses. When a single
// call covers several elapsed periods (a sparse feed), the instrument
// behaves as a zero-order hold: catch-up sample points strictly before t
// read the previously observed power, and only the point reached at t reads
// the new value. A dense feed (one call per period or faster) is unaffected.
func (r *Recorder) Observe(t, powerW float64) {
	if !r.started {
		r.nextT = t
		r.lastPower = powerW
		r.started = true
	}
	for t >= r.nextT-1e-12 {
		v := powerW
		if r.nextT < t-1e-12 { // back-filled point: hold the prior reading
			v = r.lastPower
		}
		r.samples = append(r.samples, Sample{
			TimeS:  r.nextT,
			PowerW: v + r.rng.NormFloat64()*r.NoiseW,
		})
		r.nextT += r.PeriodS
	}
	r.lastPower = powerW
}

// Reserve grows the sample capacity to cover a recording of the given
// duration, so a full flight's sampling does no steady-state append
// reallocation.
func (r *Recorder) Reserve(durationS float64) {
	if r.PeriodS <= 0 {
		return
	}
	n := int(durationS/r.PeriodS) + 2
	if cap(r.samples) < n {
		samples := make([]Sample, len(r.samples), n)
		copy(samples, r.samples)
		r.samples = samples
	}
}

// Samples returns the recorded series.
func (r *Recorder) Samples() []Sample { return r.samples }

// Reset clears the recording.
func (r *Recorder) Reset() { r.samples = nil; r.started = false }

// MeanPower returns the average recorded power over [fromS, toS).
func (r *Recorder) MeanPower(fromS, toS float64) float64 {
	sum, n := 0.0, 0
	for _, s := range r.samples {
		if s.TimeS >= fromS && s.TimeS < toS {
			sum += s.PowerW
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PeakPower returns the maximum recorded power over [fromS, toS).
func (r *Recorder) PeakPower(fromS, toS float64) float64 {
	peak := math.Inf(-1)
	for _, s := range r.samples {
		if s.TimeS >= fromS && s.TimeS < toS && s.PowerW > peak {
			peak = s.PowerW
		}
	}
	if math.IsInf(peak, -1) {
		return 0
	}
	return peak
}

// EnergyWh integrates the recording into watt-hours (the oscilloscope's
// multiply-and-log energy measurement of §A.6).
func (r *Recorder) EnergyWh() float64 {
	if len(r.samples) < 2 {
		return 0
	}
	wh := 0.0
	for i := 1; i < len(r.samples); i++ {
		dt := r.samples[i].TimeS - r.samples[i-1].TimeS
		wh += (r.samples[i].PowerW + r.samples[i-1].PowerW) / 2 * dt / 3600
	}
	return wh
}

// Phase annotates a span of a recording (the Figure 16 color bands).
type Phase struct {
	Name  string
	FromS float64
	ToS   float64
}

// PhaseMeans summarizes a recording by phase.
func PhaseMeans(r *Recorder, phases []Phase) map[string]float64 {
	out := make(map[string]float64, len(phases))
	for _, p := range phases {
		out[p.Name] = r.MeanPower(p.FromS, p.ToS)
	}
	return out
}
