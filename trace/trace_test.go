package trace

import (
	"math"
	"math/rand"
	"testing"
)

// newTestRNG backs a hand-built Recorder; with NoiseW zero the draws are
// multiplied away, so the samples are exact.
func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }

func feedConstant(r *Recorder, from, to, powerW, stepS float64) {
	for t := from; t < to; t += stepS {
		r.Observe(t, powerW)
	}
}

func TestRecorderSamplingRate(t *testing.T) {
	r := NewUSBMeter(1)
	feedConstant(r, 0, 10, 3.39, 0.001)
	n := len(r.Samples())
	if n < 19 || n > 21 {
		t.Errorf("USB meter took %d samples in 10 s, want ~20 at 0.5 s period", n)
	}
	o := NewOscilloscope(2)
	feedConstant(o, 0, 1, 130, 0.001)
	if n := len(o.Samples()); n < 48 || n > 52 {
		t.Errorf("oscilloscope took %d samples in 1 s, want ~50 at 20 ms period", n)
	}
}

func TestRecorderNoiseLevel(t *testing.T) {
	r := NewUSBMeter(3)
	feedConstant(r, 0, 600, 4.0, 0.01)
	mean := r.MeanPower(0, 600)
	if math.Abs(mean-4.0) > 0.005 {
		t.Errorf("mean power = %v, want ~4.0", mean)
	}
	// Spread should reflect the ±10 mW instrument error.
	var sq float64
	for _, s := range r.Samples() {
		d := s.PowerW - 4.0
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(r.Samples())))
	if std < 0.005 || std > 0.02 {
		t.Errorf("noise std = %v, configured 0.010", std)
	}
}

func TestMeanAndPeakWindows(t *testing.T) {
	r := NewOscilloscope(4)
	feedConstant(r, 0, 5, 100, 0.005)
	feedConstant(r, 5, 10, 250, 0.005)
	if m := r.MeanPower(0, 5); math.Abs(m-100) > 1 {
		t.Errorf("first-window mean = %v", m)
	}
	if m := r.MeanPower(5, 10); math.Abs(m-250) > 1 {
		t.Errorf("second-window mean = %v", m)
	}
	if p := r.PeakPower(0, 10); math.Abs(p-250) > 1 {
		t.Errorf("peak = %v", p)
	}
	if r.MeanPower(50, 60) != 0 || r.PeakPower(50, 60) != 0 {
		t.Error("empty window should read 0")
	}
}

func TestEnergyIntegration(t *testing.T) {
	r := NewOscilloscope(5)
	feedConstant(r, 0, 3600, 130, 0.02) // one hour at 130 W
	if wh := r.EnergyWh(); math.Abs(wh-130) > 1.5 {
		t.Errorf("energy = %v Wh, want ~130", wh)
	}
	empty := NewOscilloscope(6)
	if empty.EnergyWh() != 0 {
		t.Error("empty recording has nonzero energy")
	}
}

func TestPhaseMeans(t *testing.T) {
	r := NewUSBMeter(7)
	feedConstant(r, 0, 100, 3.39, 0.01)
	feedConstant(r, 100, 200, 4.05, 0.01)
	feedConstant(r, 200, 300, 4.56, 0.01)
	means := PhaseMeans(r, []Phase{
		{"autopilot", 0, 100},
		{"slam-idle", 100, 200},
		{"slam-flying", 200, 300},
	})
	if math.Abs(means["autopilot"]-3.39) > 0.01 ||
		math.Abs(means["slam-idle"]-4.05) > 0.01 ||
		math.Abs(means["slam-flying"]-4.56) > 0.01 {
		t.Errorf("phase means = %v", means)
	}
}

// TestSparseObserveZeroOrderHold pins the catch-up semantics: when one
// Observe call covers several elapsed periods, the back-filled sample
// points must read the previously observed power (zero-order hold), not
// smear the new reading backwards in time.
func TestSparseObserveZeroOrderHold(t *testing.T) {
	r := &Recorder{PeriodS: 1, rng: newTestRNG()} // noise-free instrument
	r.Observe(0, 100)
	// One sparse call 5 s later at a new level: sample points at t=1..4
	// lie before the new observation and must hold 100 W; the point at
	// t=5 coincides with it and reads 250 W.
	r.Observe(5, 250)
	want := []Sample{
		{0, 100}, {1, 100}, {2, 100}, {3, 100}, {4, 100}, {5, 250},
	}
	got := r.Samples()
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestDenseObserveUnchanged pins bit-compatibility of the ZOH fix for the
// dense feed every flight uses (one call per physics step): every emitted
// sample must read the power passed in the very call that emitted it.
func TestDenseObserveUnchanged(t *testing.T) {
	r := &Recorder{PeriodS: 0.02, rng: newTestRNG()}
	// Level steps every 500 calls (0.5 s), far from any epsilon ambiguity:
	// a sample can only be emitted by a call within one step of its grid
	// point, and adjacent calls share the same level there.
	level := func(i int) float64 { return 100 + 10*float64(i/500) }
	for i := 0; i < 2000; i++ {
		r.Observe(float64(i)*0.001, level(i))
	}
	for k, s := range r.Samples() {
		if want := level(20 * k); s.PowerW != want {
			t.Fatalf("sample %d at t=%v = %v W, want %v (dense feed must not hold stale values)",
				k, s.TimeS, s.PowerW, want)
		}
	}
}

func TestReset(t *testing.T) {
	r := NewUSBMeter(8)
	feedConstant(r, 0, 5, 1, 0.01)
	r.Reset()
	if len(r.Samples()) != 0 {
		t.Error("Reset left samples")
	}
	feedConstant(r, 100, 105, 1, 0.01)
	if len(r.Samples()) == 0 {
		t.Error("recorder dead after Reset")
	}
}
