package trace

import (
	"math"
	"testing"
)

func feedConstant(r *Recorder, from, to, powerW, stepS float64) {
	for t := from; t < to; t += stepS {
		r.Observe(t, powerW)
	}
}

func TestRecorderSamplingRate(t *testing.T) {
	r := NewUSBMeter(1)
	feedConstant(r, 0, 10, 3.39, 0.001)
	n := len(r.Samples())
	if n < 19 || n > 21 {
		t.Errorf("USB meter took %d samples in 10 s, want ~20 at 0.5 s period", n)
	}
	o := NewOscilloscope(2)
	feedConstant(o, 0, 1, 130, 0.001)
	if n := len(o.Samples()); n < 48 || n > 52 {
		t.Errorf("oscilloscope took %d samples in 1 s, want ~50 at 20 ms period", n)
	}
}

func TestRecorderNoiseLevel(t *testing.T) {
	r := NewUSBMeter(3)
	feedConstant(r, 0, 600, 4.0, 0.01)
	mean := r.MeanPower(0, 600)
	if math.Abs(mean-4.0) > 0.005 {
		t.Errorf("mean power = %v, want ~4.0", mean)
	}
	// Spread should reflect the ±10 mW instrument error.
	var sq float64
	for _, s := range r.Samples() {
		d := s.PowerW - 4.0
		sq += d * d
	}
	std := math.Sqrt(sq / float64(len(r.Samples())))
	if std < 0.005 || std > 0.02 {
		t.Errorf("noise std = %v, configured 0.010", std)
	}
}

func TestMeanAndPeakWindows(t *testing.T) {
	r := NewOscilloscope(4)
	feedConstant(r, 0, 5, 100, 0.005)
	feedConstant(r, 5, 10, 250, 0.005)
	if m := r.MeanPower(0, 5); math.Abs(m-100) > 1 {
		t.Errorf("first-window mean = %v", m)
	}
	if m := r.MeanPower(5, 10); math.Abs(m-250) > 1 {
		t.Errorf("second-window mean = %v", m)
	}
	if p := r.PeakPower(0, 10); math.Abs(p-250) > 1 {
		t.Errorf("peak = %v", p)
	}
	if r.MeanPower(50, 60) != 0 || r.PeakPower(50, 60) != 0 {
		t.Error("empty window should read 0")
	}
}

func TestEnergyIntegration(t *testing.T) {
	r := NewOscilloscope(5)
	feedConstant(r, 0, 3600, 130, 0.02) // one hour at 130 W
	if wh := r.EnergyWh(); math.Abs(wh-130) > 1.5 {
		t.Errorf("energy = %v Wh, want ~130", wh)
	}
	empty := NewOscilloscope(6)
	if empty.EnergyWh() != 0 {
		t.Error("empty recording has nonzero energy")
	}
}

func TestPhaseMeans(t *testing.T) {
	r := NewUSBMeter(7)
	feedConstant(r, 0, 100, 3.39, 0.01)
	feedConstant(r, 100, 200, 4.05, 0.01)
	feedConstant(r, 200, 300, 4.56, 0.01)
	means := PhaseMeans(r, []Phase{
		{"autopilot", 0, 100},
		{"slam-idle", 100, 200},
		{"slam-flying", 200, 300},
	})
	if math.Abs(means["autopilot"]-3.39) > 0.01 ||
		math.Abs(means["slam-idle"]-4.05) > 0.01 ||
		math.Abs(means["slam-flying"]-4.56) > 0.01 {
		t.Errorf("phase means = %v", means)
	}
}

func TestReset(t *testing.T) {
	r := NewUSBMeter(8)
	feedConstant(r, 0, 5, 1, 0.01)
	r.Reset()
	if len(r.Samples()) != 0 {
		t.Error("Reset left samples")
	}
	feedConstant(r, 100, 105, 1, 0.01)
	if len(r.Samples()) == 0 {
		t.Error("recorder dead after Reset")
	}
}
