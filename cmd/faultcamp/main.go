// Command faultcamp runs closed-loop fault-injection campaigns: every
// scenario flies the full flysim stack (6-DOF plant, sensor suite, EKF,
// cascaded PID, battery, offload session, MAVLink telemetry through a lossy
// link) against a deterministic fault plan, and the campaign table reports
// survival and degradation versus the fault-free baseline at the same seed.
//
// Campaigns are reproducible: the same seeds and plans produce a
// byte-identical table at any -procs setting.
//
// Usage:
//
//	faultcamp                      # standard scenario set, one seed
//	faultcamp -n 4 -seed 10        # replicate the set across seeds 10..13
//	faultcamp -json                # machine-readable output
//	faultcamp -procs 2             # bound the worker pool
//	faultcamp -workload coverage   # campaign the lawnmower survey workload
package main

import (
	"flag"
	"fmt"
	"os"

	"dronedse/faultx"
	"dronedse/mission"
	"dronedse/parallelx"
)

func main() {
	seed := flag.Int64("seed", 1, "base seed for scenarios and baselines")
	n := flag.Int("n", 1, "number of seeds (replicates the scenario set across seed..seed+n-1)")
	procs := flag.Int("procs", 0, "worker pool size (0 = all cores)")
	jsonOut := flag.Bool("json", false, "emit the campaign as JSON")
	seconds := flag.Float64("seconds", 240, "maximum simulated seconds per flight")
	workload := flag.String("workload", "", "workload every flight flies: box, hover, coverage, delivery, follow (default box)")
	flag.Parse()

	if *procs > 0 {
		parallelx.SetPoolSize(*procs)
	}
	cfg := faultx.Config{MaxSeconds: *seconds}
	if *workload != "" {
		wl, err := mission.Named(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultcamp:", err)
			os.Exit(1)
		}
		cfg.Workload = wl
	}
	var scs []faultx.Scenario
	for i := 0; i < *n; i++ {
		scs = append(scs, faultx.StandardScenarios(*seed+int64(i))...)
	}
	c, err := faultx.Run(scs, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultcamp:", err)
		os.Exit(1)
	}
	if *jsonOut {
		b, err := c.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultcamp:", err)
			os.Exit(1)
		}
		os.Stdout.Write(b)
		fmt.Println()
		return
	}
	fmt.Print(c.Table())
	counts := map[faultx.Outcome]int{}
	for _, r := range c.Results {
		counts[r.Outcome]++
	}
	fmt.Printf("\n%d scenarios: %d completed, %d rtl, %d landed, %d timeout, %d crashed\n",
		len(c.Results), counts[faultx.OutcomeCompleted], counts[faultx.OutcomeRTL],
		counts[faultx.OutcomeLanded], counts[faultx.OutcomeTimeout], counts[faultx.OutcomeCrashed])
}
