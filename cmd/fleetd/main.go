// Command fleetd hosts the multi-tenant fleet-simulation server: a JSON
// job API over HTTP plus a framed TCP telemetry feed, both fronting one
// fleet.Server engine that shards flights across scenario.Batch instances.
//
// Usage:
//
//	fleetd                                  # API on :8480, telemetry on :8481
//	fleetd -http 127.0.0.1:0 -telem 127.0.0.1:0 -addrfile /tmp/fleetd.addr
//	fleetd -shards 4 -lanes 10240 -lite     # 10k-lane configuration
//	fleetd -journal /var/lib/fleetd         # crash-safe: jobs survive SIGKILL
//
// With -addrfile the actually-bound addresses are written as shell-
// sourceable lines (http_addr=..., telem_addr=...) once both listeners are
// up — the hook scripts and smoke tests use this to avoid fixed ports.
//
// With -journal every accepted job is fsync'd to a write-ahead log before
// the submission is acknowledged; after a crash, restarting with the same
// directory replays the log — finished jobs keep their journaled digests,
// unfinished ones re-fly deterministically to bit-identical results.
//
// SIGINT/SIGTERM (or a client's POST /shutdown) triggers a graceful drain:
// admissions stop (/readyz flips to 503 so load balancers divert), in-flight
// flights finish within -drain, queued jobs stay journaled for the next
// start, and the process exits 0. A second signal exits immediately.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dronedse/fleet"
	"dronedse/parallelx"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:8480", "job API listen address")
	telemAddr := flag.String("telem", "127.0.0.1:8481", "telemetry stream listen address")
	shards := flag.Int("shards", 0, "batch shards (0 = server default)")
	lanes := flag.Int("lanes", 0, "max concurrent lanes (0 = server default)")
	maxQueue := flag.Int("maxqueue", 0, "admission queue bound; beyond it submits get 429 (0 = default 4096)")
	stride := flag.Int("stride", 0, "physics steps per engine advance (0 = server default)")
	subqueue := flag.Int("subqueue", 0, "per-subscriber queue depth in telemetry units (0 = default)")
	lite := flag.Bool("lite", false, "drop per-flight artifacts after digesting (10k+ lane runs)")
	procs := flag.Int("procs", 0, "parallelx pool size (0 = all cores)")
	addrfile := flag.String("addrfile", "", "write bound addresses to this file, shell-sourceable")
	journalDir := flag.String("journal", "", "write-ahead-log directory; empty = no durability")
	drainGrace := flag.Duration("drain", 30*time.Second, "graceful-drain budget for in-flight jobs on shutdown")
	deadline := flag.Duration("deadline", 0, "default per-job wall-clock deadline (0 = unlimited)")
	flag.Parse()

	if *procs > 0 {
		parallelx.SetPoolSize(*procs)
	}

	cfg := fleet.Config{
		Shards:        *shards,
		MaxLanes:      *lanes,
		MaxQueue:      *maxQueue,
		TickStride:    *stride,
		SubQueue:      *subqueue,
		JobDeadline:   *deadline,
		DropArtifacts: *lite,
	}
	var srv *fleet.Server
	if *journalDir != "" {
		s, rec, err := fleet.NewJournaled(cfg, *journalDir)
		if err != nil {
			fatal("journal: %v", err)
		}
		srv = s
		if len(rec.Jobs) > 0 || rec.TruncatedBytes > 0 {
			fmt.Printf("fleetd: journal replay: %d jobs (%d done, %d failed, %d re-admitted), %d torn bytes truncated\n",
				len(rec.Jobs), rec.Completed, rec.Failed, rec.Readmitted, rec.TruncatedBytes)
		}
	} else {
		srv = fleet.New(cfg)
	}

	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal("http listen: %v", err)
	}
	telemLn, err := net.Listen("tcp", *telemAddr)
	if err != nil {
		fatal("telemetry listen: %v", err)
	}
	if *addrfile != "" {
		body := fmt.Sprintf("http_addr=%s\ntelem_addr=%s\n",
			httpLn.Addr(), telemLn.Addr())
		if err := os.WriteFile(*addrfile, []byte(body), 0o644); err != nil {
			fatal("addrfile: %v", err)
		}
	}
	fmt.Printf("fleetd: job API on %s, telemetry on %s\n", httpLn.Addr(), telemLn.Addr())

	go srv.Run()
	go srv.ServeTelemetry(telemLn)
	hs := &http.Server{
		Handler: http.MaxBytesHandler(srv.Handler(), 64<<20),
		// A wedged or malicious client must not pin a serving goroutine:
		// bound every phase of the exchange. (Telemetry streams live on the
		// separate TCP feed, so no long-lived connection needs these relaxed.)
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go hs.Serve(httpLn)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("fleetd: signal, draining")
	case <-srv.ShutdownRequested():
		fmt.Println("fleetd: shutdown requested, draining")
	}
	go func() { // second signal: skip the drain and go down now
		<-sig
		fmt.Println("fleetd: second signal, exiting immediately")
		os.Exit(1)
	}()

	rep := srv.Drain(*drainGrace)
	hs.Close()
	fmt.Printf("fleetd: drained: %d completed, %d failed, %d requeued, %d abandoned\n",
		rep.Completed, rep.Failed, rep.Requeued, rep.Abandoned)
	if n := rep.Lost(); n > 0 {
		// Without a journal an unclean drain loses accepted jobs; say so in
		// the exit status. A journaled drain never loses work, so it exits 0
		// even when lanes were still flying at the grace deadline.
		fatal("%d accepted jobs lost (no journal)", n)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleetd: "+format+"\n", args...)
	os.Exit(1)
}
