// Command fleetd hosts the multi-tenant fleet-simulation server: a JSON
// job API over HTTP plus a framed TCP telemetry feed, both fronting one
// fleet.Server engine that shards flights across scenario.Batch instances.
//
// Usage:
//
//	fleetd                                  # API on :8480, telemetry on :8481
//	fleetd -http 127.0.0.1:0 -telem 127.0.0.1:0 -addrfile /tmp/fleetd.addr
//	fleetd -shards 4 -lanes 10240 -lite     # 10k-lane configuration
//
// With -addrfile the actually-bound addresses are written as shell-
// sourceable lines (http_addr=..., telem_addr=...) once both listeners are
// up — the hook scripts and smoke tests use this to avoid fixed ports.
//
// The process exits cleanly on SIGINT/SIGTERM or a client's POST /shutdown.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dronedse/fleet"
	"dronedse/parallelx"
)

func main() {
	httpAddr := flag.String("http", "127.0.0.1:8480", "job API listen address")
	telemAddr := flag.String("telem", "127.0.0.1:8481", "telemetry stream listen address")
	shards := flag.Int("shards", 0, "batch shards (0 = server default)")
	lanes := flag.Int("lanes", 0, "max concurrent lanes (0 = server default)")
	stride := flag.Int("stride", 0, "physics steps per engine advance (0 = server default)")
	subqueue := flag.Int("subqueue", 0, "per-subscriber queue depth in telemetry units (0 = default)")
	lite := flag.Bool("lite", false, "drop per-flight artifacts after digesting (10k+ lane runs)")
	procs := flag.Int("procs", 0, "parallelx pool size (0 = all cores)")
	addrfile := flag.String("addrfile", "", "write bound addresses to this file, shell-sourceable")
	flag.Parse()

	if *procs > 0 {
		parallelx.SetPoolSize(*procs)
	}

	srv := fleet.New(fleet.Config{
		Shards:        *shards,
		MaxLanes:      *lanes,
		TickStride:    *stride,
		SubQueue:      *subqueue,
		DropArtifacts: *lite,
	})

	httpLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal("http listen: %v", err)
	}
	telemLn, err := net.Listen("tcp", *telemAddr)
	if err != nil {
		fatal("telemetry listen: %v", err)
	}
	if *addrfile != "" {
		body := fmt.Sprintf("http_addr=%s\ntelem_addr=%s\n",
			httpLn.Addr(), telemLn.Addr())
		if err := os.WriteFile(*addrfile, []byte(body), 0o644); err != nil {
			fatal("addrfile: %v", err)
		}
	}
	fmt.Printf("fleetd: job API on %s, telemetry on %s\n", httpLn.Addr(), telemLn.Addr())

	go srv.Run()
	go srv.ServeTelemetry(telemLn)
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(httpLn)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("fleetd: signal, shutting down")
	case <-srv.ShutdownRequested():
		fmt.Println("fleetd: shutdown requested")
	}
	srv.Shutdown()
	hs.Close()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleetd: "+format+"\n", args...)
	os.Exit(1)
}
