// Command perfstat is the repo's equivalent of the artifact's
// perf_ardupilot_loop.sh / perf_ardu_slam.sh scripts (§A.5): it runs the
// autopilot and SLAM workloads on the trace-driven micro-architecture
// simulator and prints a perf-stat-style counter table for each
// configuration — solo and co-resident — including the Figure 15 ratios.
//
// Usage:
//
//	perfstat                # default 30000 control-loop iterations
//	perfstat -iters 100000  # longer run
package main

import (
	"flag"
	"fmt"

	"dronedse/microarch"
)

func main() {
	iters := flag.Int("iters", 30000, "control-loop iterations to simulate")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	r := microarch.RunFigure15(*seed, *iters)

	print := func(name string, m microarch.Metrics) {
		fmt.Printf("\n Performance counter stats for '%s':\n\n", name)
		fmt.Printf("  %15d      instructions              #  %5.3f  insn per cycle\n",
			m.Instructions, m.IPC)
		fmt.Printf("  %15.2f%%     LLC-miss rate\n", 100*m.LLCMissRate)
		fmt.Printf("  %15.2f%%     branch-miss rate\n", 100*m.BranchMissRate)
		fmt.Printf("  %15d      dTLB-load-misses          #  %5.3f%% of dTLB accesses\n",
			m.TLBMisses, 100*m.TLBMissRate)
	}

	print("autopilot (solo)", r.Autopilot)
	print("SLAM (solo)", r.SLAM)
	print("autopilot w/ SLAM co-resident", r.AutopilotWithSLAM)

	fmt.Printf("\n interference summary (paper Figure 15):\n")
	fmt.Printf("   autopilot TLB misses    : %6.2fx with SLAM co-resident (paper: 4.5x)\n",
		float64(r.AutopilotWithSLAM.TLBMisses)/float64(r.Autopilot.TLBMisses))
	fmt.Printf("   autopilot IPC           : %6.2fx slower with SLAM (paper: 1.7x)\n",
		r.Autopilot.IPC/r.AutopilotWithSLAM.IPC)
	fmt.Printf("   autopilot LLC miss rate : %.3f -> %.3f\n",
		r.Autopilot.LLCMissRate, r.AutopilotWithSLAM.LLCMissRate)
	fmt.Printf("   autopilot branch misses : %.4f -> %.4f\n",
		r.Autopilot.BranchMissRate, r.AutopilotWithSLAM.BranchMissRate)
}
