// Command slambench runs the from-scratch ORB-SLAM-style pipeline over the
// synthetic EuRoC suite and retimes the measured work ledger on each
// hardware platform model — Figure 17 and the speedup half of Table 5.
// Sequences are independent and fan out across a worker pool; rows print in
// suite order, so the output is identical at any -procs value.
//
// Usage:
//
//	slambench            # all 11 sequences, one worker per CPU
//	slambench -seqs 3    # quick run
//	slambench -procs 1   # serial baseline
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"dronedse/dataset"
	"dronedse/mathx"
	"dronedse/parallelx"
	"dronedse/platform"
	"dronedse/slam"
)

func main() {
	seqs := flag.Int("seqs", 0, "limit to first N sequences (0 = all)")
	procs := flag.Int("procs", runtime.NumCPU(), "worker pool size (1 = serial)")
	flag.Parse()
	parallelx.SetPoolSize(*procs)

	specs := dataset.EuRoCSpecs()
	if *seqs > 0 && *seqs < len(specs) {
		specs = specs[:*seqs]
	}

	base := platform.RPi()
	targets := []platform.Platform{platform.SeparateRPi(), platform.TX2(), platform.FPGA(), platform.ASIC()}

	type row struct {
		res      slam.Result
		msPerFrm float64
		speedups []float64
		err      error
	}
	rows := parallelx.Map(specs, func(spec dataset.Spec) row {
		seq, err := dataset.Generate(spec)
		if err != nil {
			return row{err: err}
		}
		res := slam.RunSequence(seq)
		rpiT, _, _, _ := base.SeqTime(res.Stats)
		r := row{res: res, msPerFrm: rpiT / float64(res.Frames) * 1000}
		for _, pl := range targets {
			r.speedups = append(r.speedups, platform.Speedup(base, pl, res.Stats))
		}
		return r
	})

	speedups := map[string][]float64{}
	fmt.Println("seq    ATE(m)  kfs  RPi ms/frame  sepRPi    TX2     FPGA    ASIC")
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintln(os.Stderr, "slambench:", r.err)
			os.Exit(1)
		}
		fmt.Printf("%-5s  %.3f   %3d  %10.1f  ", r.res.Name, r.res.ATE, r.res.Stats.Keyframes,
			r.msPerFrm)
		for i, pl := range targets {
			speedups[pl.Name] = append(speedups[pl.Name], r.speedups[i])
			fmt.Printf("%6.2fx ", r.speedups[i])
		}
		fmt.Println()
	}
	fmt.Println()
	for _, pl := range targets {
		fmt.Printf("GMEAN %-13s %.2fx  (paper: %.4gx)  power %.3g W, weight %.0f g\n",
			pl.Name, mathx.GeoMean(speedups[pl.Name]), pl.PaperSpeedup,
			pl.PowerOverheadW, pl.WeightOverheadG)
	}
}
