// Command slambench runs the from-scratch ORB-SLAM-style pipeline over the
// synthetic EuRoC suite and retimes the measured work ledger on each
// hardware platform model — Figure 17 and the speedup half of Table 5.
//
// Usage:
//
//	slambench            # all 11 sequences
//	slambench -seqs 3    # quick run
package main

import (
	"flag"
	"fmt"
	"os"

	"dronedse/dataset"
	"dronedse/mathx"
	"dronedse/platform"
	"dronedse/slam"
)

func main() {
	seqs := flag.Int("seqs", 0, "limit to first N sequences (0 = all)")
	flag.Parse()

	specs := dataset.EuRoCSpecs()
	if *seqs > 0 && *seqs < len(specs) {
		specs = specs[:*seqs]
	}

	base := platform.RPi()
	targets := []platform.Platform{platform.SeparateRPi(), platform.TX2(), platform.FPGA(), platform.ASIC()}
	speedups := map[string][]float64{}

	fmt.Println("seq    ATE(m)  kfs  RPi ms/frame  sepRPi    TX2     FPGA    ASIC")
	for _, spec := range specs {
		seq, err := dataset.Generate(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slambench:", err)
			os.Exit(1)
		}
		res := slam.RunSequence(seq)
		rpiT, _, _, _ := base.SeqTime(res.Stats)
		fmt.Printf("%-5s  %.3f   %3d  %10.1f  ", res.Name, res.ATE, res.Stats.Keyframes,
			rpiT/float64(res.Frames)*1000)
		for _, pl := range targets {
			sp := platform.Speedup(base, pl, res.Stats)
			speedups[pl.Name] = append(speedups[pl.Name], sp)
			fmt.Printf("%6.2fx ", sp)
		}
		fmt.Println()
	}
	fmt.Println()
	for _, pl := range targets {
		fmt.Printf("GMEAN %-13s %.2fx  (paper: %.4gx)  power %.3g W, weight %.0f g\n",
			pl.Name, mathx.GeoMean(speedups[pl.Name]), pl.PaperSpeedup,
			pl.PowerOverheadW, pl.WeightOverheadG)
	}
}
