package main

// Golden-output and accounting-completeness tests for the roofline
// dashboard. The golden file pins the full -nofig output — ledger table,
// ceilings, placements — and the test replays it at pool sizes 1, 2 and 8:
// the ledgers are deterministic functions of the workload inputs, so a
// difference at any pool size means a scheduling dependence leaked into the
// accounting (exactly the regression the slam.Stats contract forbids).
// Regenerate deliberately with
//
//	GOLDEN_UPDATE=1 go test ./cmd/roofline/ -run Golden
//
// after any intentional change to the pipeline's arithmetic or the byte
// models.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dronedse/parallelx"
)

var updateGoldens = os.Getenv("GOLDEN_UPDATE") != ""

const goldenPath = "testdata/roofline.golden"

// capture runs the dashboard at a pool size and returns the -nofig output.
func capture(t *testing.T, procs int) string {
	t.Helper()
	parallelx.SetPoolSize(procs)
	defer parallelx.SetPoolSize(1)
	var buf bytes.Buffer
	if _, err := run(&buf, ""); err != nil {
		t.Fatalf("run(procs=%d): %v", procs, err)
	}
	return buf.String()
}

func TestGoldenOutputPoolInvariant(t *testing.T) {
	out1 := capture(t, 1)
	for _, procs := range []int{2, 8} {
		if out := capture(t, procs); out != out1 {
			t.Fatalf("output differs between pool 1 and pool %d:\n--- pool 1 ---\n%s\n--- pool %d ---\n%s",
				procs, out1, procs, out)
		}
	}
	if updateGoldens {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(out1), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with GOLDEN_UPDATE=1 go test ./cmd/roofline/ -run Golden)", err)
	}
	if out1 != string(want) {
		t.Fatalf("output drifted from %s — if the change is intentional, regenerate with GOLDEN_UPDATE=1.\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, out1, want)
	}
}

// TestLedgerCompleteness asserts every kernel of the flight stack charges
// its ledger: a kernel whose ops are zero has silently dropped out of the
// accounting contract, and every roofline/retiming figure built on it
// would undercount that stage for free.
func TestLedgerCompleteness(t *testing.T) {
	parallelx.SetPoolSize(1)
	var buf bytes.Buffer
	rep, err := run(&buf, "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"detect", "match", "local_ba", "global_ba", "pose_graph",
		"ekf_predict", "ekf_update", "control"}
	got := map[string]bool{}
	for _, p := range rep.Points {
		got[p.Name] = true
		if p.Ops == 0 {
			t.Errorf("kernel %s charged zero ops", p.Name)
		}
		if p.Bytes == 0 {
			t.Errorf("kernel %s modeled zero bytes", p.Name)
		}
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("kernel %s missing from the report", name)
		}
	}
	if len(rep.Ceilings) == 0 || len(rep.Placements) != len(rep.Ceilings) {
		t.Fatalf("malformed report: %d ceilings, %d placements", len(rep.Ceilings), len(rep.Placements))
	}
	for i, pls := range rep.Placements {
		for _, pl := range pls {
			if pl.Attainable <= 0 || pl.Attainable > pl.ComputeRoof+1e-9 {
				t.Errorf("[%s] %s: attainable %.3g outside (0, compute roof %.3g]",
					rep.Ceilings[i].Platform, pl.Name, pl.Attainable, pl.ComputeRoof)
			}
		}
	}
}
