// Command roofline runs a representative workload through the full stack —
// a EuRoC-style SLAM sequence, a loop-closing orbit sequence, and a box
// mission flight — collects every kernel's work ledger (slam.Stats,
// estimation.EKFStats, control.CtrlStats), and places the kernels on each
// Table 5 platform's roofline: arithmetic intensity against the compute and
// memory-bandwidth ceilings. The ledgers are deterministic functions of the
// workload inputs, so every number printed here is bit-identical at any
// -procs value — the property the golden test pins at pools 1, 2 and 8.
//
// Usage:
//
//	roofline              # table + RPi ASCII roofline figure
//	roofline -procs 8     # identical output, pipelined detection
//	roofline -fig TX2     # draw another platform's figure
//	roofline -nofig       # table only (the golden-tested surface)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"dronedse/dataset"
	"dronedse/parallelx"
	"dronedse/roofline"
	"dronedse/scenario"
	"dronedse/slam"
)

// run builds the workload ledgers and writes the report, returning it so
// the tests can assert on the ledgers behind the exact user-facing output.
func run(w io.Writer, figPlatform string) (roofline.Report, error) {
	// SLAM ledger: MH01 (nominal tracking mix) + the loop-closing orbit,
	// summed into one sequence-suite ledger.
	var st slam.Stats
	var width, height int
	for _, spec := range []dataset.Spec{dataset.EuRoCSpecs()[0], roofline.LoopOrbitSpec()} {
		seq, err := dataset.Generate(spec)
		if err != nil {
			return roofline.Report{}, fmt.Errorf("generate %s: %w", spec.Name, err)
		}
		res := slam.RunSequence(seq)
		fmt.Fprintf(w, "slam %-6s frames %3d  kfs %3d  loops %d  ate %.3f m\n",
			res.Name, res.Frames, res.Stats.Keyframes, res.Stats.LoopClosures, res.ATE)
		st.FeatureExtractionOps += res.Stats.FeatureExtractionOps
		st.MatchingOps += res.Stats.MatchingOps
		st.LocalBAOps += res.Stats.LocalBAOps
		st.GlobalBAOps += res.Stats.GlobalBAOps
		st.PoseGraphOps += res.Stats.PoseGraphOps
		st.Frames += res.Stats.Frames
		width, height = seq.Cam.Width, seq.Cam.Height
	}

	// Flight ledger: the reference box mission (scenario defaults).
	fres, err := scenario.Run(scenario.Spec{Seed: 42, MaxSeconds: 120})
	if err != nil {
		return roofline.Report{}, fmt.Errorf("flight: %w", err)
	}
	fmt.Fprintf(w, "flight %.1f s  ekf predicts %d / updates %d  ctrl updates %d\n\n",
		fres.FlightTimeS, fres.EKFStats.Predicts, fres.EKFStats.Updates,
		fres.CtrlStats.RateUpdates)

	pts := append(roofline.FromSLAM(st, width, height),
		roofline.FromFlight(fres.EKFStats, fres.CtrlStats)...)
	rep := roofline.BuildReport(pts)
	fmt.Fprint(w, rep.Table())

	if figPlatform != "" {
		idx := -1
		for i, c := range rep.Ceilings {
			if c.Platform == figPlatform {
				idx = i
			}
		}
		if idx < 0 {
			return rep, fmt.Errorf("unknown platform %q", figPlatform)
		}
		fmt.Fprintf(w, "\n%s", rep.Figure(idx, 72, 18))
	}
	return rep, nil
}

func main() {
	procs := flag.Int("procs", runtime.NumCPU(), "worker pool size (1 = serial)")
	fig := flag.String("fig", "RPi", "platform to draw the ASCII roofline for")
	nofig := flag.Bool("nofig", false, "suppress the ASCII figure")
	flag.Parse()
	parallelx.SetPoolSize(*procs)

	name := *fig
	if *nofig {
		name = ""
	}
	if _, err := run(os.Stdout, name); err != nil {
		fmt.Fprintln(os.Stderr, "roofline:", err)
		os.Exit(1)
	}
}
