// Command dse explores the drone design space interactively from the
// command line: given a wheelbase, battery configuration, and compute
// board, it resolves the full design (Equation 1 closure) and reports
// weight breakdown, power, flight time, and the compute power footprint —
// the Figure 12 procedure as a tool.
//
// Usage:
//
//	dse -wheelbase 450 -cells 3 -capacity 5000 -compute 20 -computeweight 85
//	dse -wheelbase 450 -best            # search cells x capacity for max flight time
//	dse -wheelbase 450 -sweep           # print the battery sweep series
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"dronedse/components"
	"dronedse/core"
	"dronedse/parallelx"
)

func main() {
	wheelbase := flag.Float64("wheelbase", 450, "frame wheelbase in mm (40-1100)")
	cells := flag.Int("cells", 3, "battery cell count (1-6)")
	capacity := flag.Float64("capacity", 3000, "battery capacity in mAh")
	twr := flag.Float64("twr", 2, "thrust-to-weight ratio target")
	computeW := flag.Float64("compute", 3, "compute board power in W")
	computeG := flag.Float64("computeweight", 20, "compute board weight in g")
	sensorsW := flag.Float64("sensorsw", 0, "extra sensor power in W")
	sensorsG := flag.Float64("sensorsg", 0, "extra sensor weight in g")
	payload := flag.Float64("payload", 0, "payload weight in g")
	best := flag.Bool("best", false, "search cells x capacity for the longest flight")
	sweep := flag.Bool("sweep", false, "print the 1000-8000 mAh battery sweep")
	pareto := flag.Bool("pareto", false, "print the payload vs flight-time Pareto frontier")
	require := flag.Float64("require", 0, "run the Figure 12 procedure: find the smallest frame meeting this flight time (min)")
	procs := flag.Int("procs", runtime.NumCPU(), "worker pool size for sweeps and searches (1 = serial)")
	flag.Parse()
	parallelx.SetPoolSize(*procs)

	spec := core.Spec{
		WheelbaseMM: *wheelbase,
		Cells:       *cells,
		CapacityMah: *capacity,
		TWR:         *twr,
		Compute: components.ComputeTier{
			Name: "custom", PowerW: *computeW, WeightG: *computeG,
		},
		SensorsW: *sensorsW,
		SensorsG: *sensorsG,
		PayloadG: *payload,
		ESCClass: components.LongFlight,
	}
	p := core.DefaultParams()

	switch {
	case *require > 0:
		rec, err := core.RunProcedure(core.Requirements{
			Compute: components.ComputeTier{
				Name: "custom", PowerW: *computeW, WeightG: *computeG,
			},
			PayloadG:     *payload,
			MinFlightMin: *require,
		}, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			fmt.Println(rec.Report())
			os.Exit(1)
		}
		fmt.Println(rec.Report())
		fmt.Println()
		report(rec.Design)
	case *pareto:
		pts := core.ParetoPayloadFrontier(spec, p, []float64{0, 100, 200, 300, 500, 750, 1000, 1500})
		fmt.Println("payload(g)  best config      weight(g)  flight(min)")
		for _, pt := range pts {
			fmt.Printf("%9.0f  %dS %6.0f mAh  %9.0f  %11.1f\n",
				pt.Objective, pt.Design.Spec.Cells, pt.Design.Spec.CapacityMah,
				pt.Design.TotalG, pt.FlightMin)
		}
	case *best:
		d, ok := core.BestConfig(spec, p, []int{1, 2, 3, 4, 5, 6}, 1000, 8000, 250)
		if !ok {
			fmt.Fprintln(os.Stderr, "dse: no feasible configuration")
			os.Exit(1)
		}
		fmt.Printf("best configuration: %dS %.0f mAh\n", d.Spec.Cells, d.Spec.CapacityMah)
		report(d)
	case *sweep:
		pts := core.SweepCapacity(spec, p, 1000, 8000, 250)
		fmt.Println("capacity(mAh)  weight(g)  hoverP(W)  maneuverP(W)  flight(min)  computeShare(%)")
		for _, pt := range pts {
			fmt.Printf("%12.0f  %9.0f  %9.1f  %12.1f  %11.1f  %15.1f\n",
				pt.CapacityMah, pt.TotalWeightG, pt.HoverPowerW, pt.ManeuverPowerW,
				pt.HoverFlightMin, pt.ComputeShareHoverPct)
		}
	default:
		d, err := core.Resolve(spec, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dse:", err)
			os.Exit(1)
		}
		report(d)
	}
}

func report(d core.Design) {
	fmt.Printf("design @ %.0f mm wheelbase, TWR %.1f, %0.1f\" props\n",
		d.Spec.WheelbaseMM, d.Spec.TWR, d.PropInches)
	fmt.Printf("  weight: total %.0f g = frame %.0f + battery %.0f + motors 4x%.1f + ESCs %.0f + props %.0f + compute %.0f + sensors %.0f + payload %.0f + wiring %.0f\n",
		d.TotalG, d.FrameG, d.BatteryG, d.MotorUnitG, d.ESC4xG, d.PropsG,
		d.Spec.Compute.WeightG, d.Spec.SensorsG, d.Spec.PayloadG, d.WiringG)
	fmt.Printf("  motor: %.0f Kv, %.1f A required / %.1f A spec per motor\n",
		d.MotorKv, d.RequiredCurrentA, d.MotorMaxCurrentA)
	fmt.Printf("  power: hover %.1f W, maneuver %.1f W, max %.1f W\n",
		d.HoverPowerW(), d.ManeuverPowerW(), d.MaxElectricalPowerW())
	fmt.Printf("  flight time: %.1f min hovering (usable energy %.1f Wh)\n",
		d.HoverFlightTimeMin(), d.UsableEnergyWh())
	fmt.Printf("  compute footprint: %.1f%% of total power hovering, %.1f%% maneuvering\n",
		d.ComputeSharePct(d.Params.HoverLoad), d.ComputeSharePct(d.Params.ManeuverLoad))
	if issues := d.Feasibility(); len(issues) > 0 {
		for _, is := range issues {
			fmt.Printf("  WARNING: %v (needs %.0fC battery)\n", is, d.RequiredCRating())
		}
	}
}
