// Command figures regenerates the data behind every table and figure in the
// paper's evaluation.
//
// Usage:
//
//	figures -fig all            # everything (slow: runs the full SLAM suite)
//	figures -fig 10             # Figure 10 (all three wheelbases)
//	figures -fig table5 -seqs 4 # Table 5 from a truncated SLAM suite
//
// Figure ids: table2a table2b 7 8a 8b 9 10 11 14 15 16 17 table4 table5
// innerloop — plus the extension studies: twr sensors gust offload eslam
// pareto isolation prefetch.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"dronedse/bench"
	"dronedse/components"
	"dronedse/core"
	"dronedse/parallelx"
)

func main() {
	fig := flag.String("fig", "all", "figure/table id to regenerate (see doc comment)")
	seed := flag.Int64("seed", components.DefaultSeed, "catalog/workload seed")
	seqs := flag.Int("seqs", 0, "limit the SLAM suite to the first N sequences (0 = all 11)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory (the artifact's raw-data export)")
	procs := flag.Int("procs", runtime.NumCPU(), "worker pool size for sweeps and SLAM sequences (1 = serial)")
	flag.Parse()
	parallelx.SetPoolSize(*procs)

	if err := run(*fig, *seed, *seqs, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(fig string, seed int64, seqs int, csvDir string) error {
	p := core.DefaultParams()
	emit := func(t bench.Table) {
		fmt.Println(t.Render())
		if csvDir == "" {
			return
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures: csv:", err)
			return
		}
		name := slug(t.Title) + ".csv"
		if err := os.WriteFile(filepath.Join(csvDir, name), []byte(t.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures: csv:", err)
		}
	}

	want := func(id string) bool { return fig == "all" || fig == id }

	if want("table2a") {
		emit(bench.Table2aRender())
	}
	if want("table2b") {
		emit(bench.RunTable2b().Table())
	}
	if want("innerloop") {
		emit(bench.RunInnerLoopAblation().Table())
	}
	if want("7") {
		fg, err := bench.RunFigure7(seed)
		if err != nil {
			return err
		}
		emit(fg.Table())
	}
	if want("8a") || want("8b") || want("8") {
		fg, err := bench.RunFigure8(seed)
		if err != nil {
			return err
		}
		emit(fg.Table())
	}
	if want("9") {
		emit(bench.RunFigure9(p).Table())
	}
	if want("10") {
		for _, wb := range []float64{100, 450, 800} {
			emit(bench.RunFigure10(wb, p).Table())
		}
	}
	if want("11") {
		emit(bench.RunFigure11().Table())
	}
	if want("14") {
		emit(bench.Figure14())
	}
	if want("table4") {
		emit(bench.Table4Render())
	}
	if want("15") {
		emit(bench.RunFigure15(seed).Table())
	}
	if want("16") {
		fg, err := bench.RunFigure16(seed)
		if err != nil {
			return err
		}
		emit(fg.Table())
	}
	if want("twr") {
		emit(bench.RunTWRStudy(p).Table())
	}
	if want("sensors") {
		emit(bench.RunSensorStudy(p).Table())
	}
	if want("gust") {
		emit(bench.RunGustStudy(seed).Table())
	}
	if want("offload") {
		s, err := bench.RunOffloadStudy()
		if err != nil {
			return err
		}
		emit(s.Table())
	}
	if want("eslam") {
		s, err := bench.RunESLAMStudy(seqs)
		if err != nil {
			return err
		}
		emit(s.Table())
	}
	if want("pareto") {
		emit(bench.RunParetoStudy(p).Table())
	}
	if want("isolation") {
		emit(bench.RunIsolationStudy(seed).Table())
	}
	if want("prefetch") {
		emit(bench.RunPrefetchStudy(seed).Table())
	}
	if want("17") || want("table5") {
		fg, err := bench.RunFigure17(seqs)
		if err != nil {
			return err
		}
		if want("17") {
			emit(fg.Table())
		}
		if want("table5") {
			t5, err := bench.RunTable5(fg.Stats(), p)
			if err != nil {
				return err
			}
			emit(t5.Table())
		}
	}
	return nil
}

// slug derives a filesystem-safe name from a table title.
func slug(title string) string {
	if i := strings.IndexByte(title, ':'); i > 0 {
		title = title[:i]
	}
	title = strings.ToLower(strings.TrimSpace(title))
	var b strings.Builder
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('_')
		}
	}
	return b.String()
}
