// Command benchjson measures the design-space engine's hot paths with the
// standard testing.Benchmark driver and writes the results as JSON
// (BENCH_core.json by default), so successive PRs can track the perf
// trajectory mechanically: each entry records ns/op, allocs/op, and the
// pool size it ran at.
//
// Usage:
//
//	benchjson                 # quick suite -> BENCH_core.json
//	benchjson -o - -seqs 2    # print to stdout, truncated SLAM suite
//	benchjson -quick -o -     # smoke subset (resolve, scenario/batch/fleet kernels)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"

	"dronedse/bench"
	"dronedse/core"
	"dronedse/dataset"
	"dronedse/faultx"
	"dronedse/fleet"
	"dronedse/mission"
	"dronedse/parallelx"
	"dronedse/roofline"
	"dronedse/scenario"
	"dronedse/slam"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Pool        int     `json:"pool"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// RoofRow is one kernel's roofline placement under one platform's
// ceilings: the arithmetic intensity from the measured work ledger and the
// model's attainable throughput against that platform's compute roof.
type RoofRow struct {
	Platform    string  `json:"platform"`
	Kernel      string  `json:"kernel"`
	Ops         uint64  `json:"ops"`
	AI          float64 `json:"ai_ops_per_byte"`
	AttainMops  float64 `json:"attainable_mops"`
	MemoryBound bool    `json:"memory_bound"`
	RoofFrac    float64 `json:"roof_frac"`
}

// Report is the BENCH_core.json schema. GoMaxProcsRequested is the -procs
// value the run asked for; GoMaxProcs is what runtime.GOMAXPROCS actually
// reports afterwards — recording both keeps the file honest about whether a
// multi-core request ran on a smaller machine.
type Report struct {
	GoMaxProcsRequested int       `json:"go_max_procs_requested"`
	GoMaxProcs          int       `json:"go_max_procs"`
	NumCPU              int       `json:"num_cpu"`
	GoVersion           string    `json:"go_version"`
	Results             []Result  `json:"results"`
	Roofline            []RoofRow `json:"roofline,omitempty"`
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file (- for stdout)")
	seqs := flag.Int("seqs", 2, "SLAM sequences for the suite benchmark (0 = all 11, slow)")
	quick := flag.Bool("quick", false, "smoke subset only (resolve kernels, scenario_flight, workload kernels)")
	procs := flag.Int("procs", runtime.NumCPU(), "runtime.GOMAXPROCS for the whole run")
	flag.Parse()
	runtime.GOMAXPROCS(*procs)

	pools := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		pools = append(pools, n)
	}

	spec := core.DefaultSpec()
	p := core.DefaultParams()
	cells := []int{1, 2, 3, 4, 5, 6}

	rep := Report{
		GoMaxProcsRequested: *procs,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
		GoVersion:           runtime.Version(),
	}

	// measureN runs fn under testing.Benchmark at each pool size and divides
	// every per-op figure by perOp — the batch kernels report per-flight
	// costs this way (one op = a whole batch of perOp flights).
	measureN := func(name string, poolSizes []int, perOp int, fn func(b *testing.B)) {
		for _, pool := range poolSizes {
			prev := parallelx.SetPoolSize(pool)
			r := testing.Benchmark(fn)
			parallelx.SetPoolSize(prev)
			rep.Results = append(rep.Results, Result{
				Name:        name,
				Pool:        pool,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N) / float64(perOp),
				AllocsPerOp: r.AllocsPerOp() / int64(perOp),
				BytesPerOp:  r.AllocedBytesPerOp() / int64(perOp),
				N:           r.N,
			})
			fmt.Fprintf(os.Stderr, "%-28s pool=%-2d %12.0f ns/op  (n=%d)\n",
				name, pool, float64(r.T.Nanoseconds())/float64(r.N)/float64(perOp), r.N)
		}
	}
	measure := func(name string, poolSizes []int, fn func(b *testing.B)) {
		measureN(name, poolSizes, 1, fn)
	}
	// medianAllocs measures fn's per-call mallocs and bytes directly from
	// runtime.MemStats with the collector pinned off, and returns the median
	// of n runs — robust to the odd run whose map growth lands differently.
	medianAllocs := func(n int, fn func()) (allocs, bytes int64) {
		prevGC := debug.SetGCPercent(-1)
		defer debug.SetGCPercent(prevGC)
		fn() // warm
		ma := make([]int64, n)
		mb := make([]int64, n)
		var m0, m1 runtime.MemStats
		for i := 0; i < n; i++ {
			runtime.ReadMemStats(&m0)
			fn()
			runtime.ReadMemStats(&m1)
			ma[i] = int64(m1.Mallocs - m0.Mallocs)
			mb[i] = int64(m1.TotalAlloc - m0.TotalAlloc)
		}
		sort.Slice(ma, func(i, j int) bool { return ma[i] < ma[j] })
		sort.Slice(mb, func(i, j int) bool { return mb[i] < mb[j] })
		return ma[n/2], mb[n/2]
	}
	serial := []int{1}

	measure("resolve_uncached", serial, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Resolve(spec, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("resolve_cached_warm", serial, func(b *testing.B) {
		core.ResetResolveCache()
		core.ResolveCached(spec, p)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.ResolveCached(spec, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Scenario-engine kernel: one full closed-loop reference flight (build,
	// arm, box mission, land) per op — the wiring + flight cost every
	// scenario-based tool pays.
	measure("scenario_flight", serial, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := scenario.Run(scenario.Spec{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatal("reference mission did not complete")
			}
		}
	})
	// Batch-engine kernels: N reference flights stepped in lock-step on one
	// scenario.Batch, reported per flight. Build/arm happen outside the
	// timer, so ns and allocs measure exactly the steady-state stepping the
	// fleet-simulation north star pays — the alloc column is the
	// zero-steady-state-allocation contract (the residual is the one
	// Outcomes slice, amortized over the batch).
	batchKernel := func(size int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				specs := make([]scenario.Spec, size)
				for j := range specs {
					specs[j] = scenario.Spec{Seed: int64(j + 1)}
				}
				bt := scenario.NewBatch(specs)
				bt.Start()
				b.StartTimer()
				results, errs := bt.Run()
				b.StopTimer()
				for j := range errs {
					if errs[j] != nil {
						b.Fatal(errs[j])
					}
					if !results[j].Completed {
						b.Fatal("lane mission did not complete")
					}
				}
			}
		}
	}
	for _, size := range []int{1, 16, 64} {
		measureN(fmt.Sprintf("scenario_batch%d", size), serial, size, batchKernel(size))
	}
	// Fleet-server kernel: 256 resident hover flights stepped through the
	// whole fleetd engine path — admission bookkeeping, sharded TickN,
	// telemetry publish into subscriber-less hubs — reported per drone-step.
	// The delta against scenario_batch is the multi-tenancy overhead.
	fleetLanes, fleetStride := 256, 100
	measureN("fleet_step256", pools, fleetLanes*fleetStride, func(b *testing.B) {
		srv := fleet.New(fleet.Config{Shards: 2, MaxLanes: fleetLanes, DropArtifacts: true})
		specs := make([]fleet.JobSpec, fleetLanes)
		for j := range specs {
			specs[j] = fleet.JobSpec{Seed: int64(j + 1), Hover: true, MaxSeconds: 3600}
		}
		if _, err := srv.SubmitAll(specs); err != nil {
			b.Fatal(err)
		}
		srv.Advance(10000) // through takeoff into steady hover
		if st := srv.Stats(); st.Live != fleetLanes {
			b.Fatalf("%d of %d lanes live after warmup", st.Live, fleetLanes)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.Advance(fleetStride)
		}
		b.StopTimer()
		srv.Shutdown()
	})
	// Workload kernels: one full closed-loop flight per op for each
	// MAVBench-style workload, plus a fault-campaign variant (fault-free
	// baseline + severe compound fault) per workload. Each flight kernel
	// also checks the run resolves a positive Equation-7 compute
	// flight-time cost — the figure the paper prices companion compute in.
	for _, wk := range []struct {
		name string
		wl   mission.Workload
	}{
		{"workload_coverage", mission.Coverage{}},
		{"workload_delivery", mission.DefaultDelivery()},
		{"workload_follow", mission.Follow{}},
	} {
		wk := wk
		measure(wk.name, serial, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := scenario.Run(scenario.Spec{Seed: 1, MaxSeconds: 120, Workload: wk.wl})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Workload.Completed {
					b.Fatalf("%s did not complete", wk.name)
				}
				if res.ComputeFlightCostMin() <= 0 {
					b.Fatalf("%s: no Equation-7 flight-time cost", wk.name)
				}
			}
		})
		measure(wk.name+"_campaign", serial, func(b *testing.B) {
			scenarios := []faultx.Scenario{faultx.SevereScenario(1)}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := faultx.Run(scenarios, faultx.Config{MaxSeconds: 90, Workload: wk.wl}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if *quick {
		writeReport(rep, *out)
		return
	}

	measure("sweep_capacity_cold", pools, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ResetResolveCache()
			if pts := core.SweepCapacity(spec, p, 1000, 8000, 100); len(pts) == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
	measure("best_config_cold", pools, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ResetResolveCache()
			if _, ok := core.BestConfig(spec, p, cells, 1000, 8000, 250); !ok {
				b.Fatal("no feasible config")
			}
		}
	})
	measure("best_config_warm", serial, func(b *testing.B) {
		core.ResetResolveCache()
		core.BestConfig(spec, p, cells, 1000, 8000, 250)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := core.BestConfig(spec, p, cells, 1000, 8000, 250); !ok {
				b.Fatal("no feasible config")
			}
		}
	})
	measure("pareto_payload_cold", pools, func(b *testing.B) {
		payloads := []float64{0, 100, 200, 300, 500, 750, 1000}
		for i := 0; i < b.N; i++ {
			core.ResetResolveCache()
			if pts := core.ParetoPayloadFrontier(spec, p, payloads); len(pts) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
	measure("figure10_450mm", pools, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ResetResolveCache()
			bench.RunFigure10(450, p)
		}
	})
	// SLAM front-end kernels (this PR's hot paths). Pool sizes 1/2/8 track
	// the serial floor, the dual-core win, and the saturation point; outputs
	// are pool-invariant (see slam/parallel_test.go), so only timing moves.
	slamPools := []int{1, 2, 8}
	seq, err := dataset.Generate(dataset.EuRoCSpecs()[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	h := slam.NewBenchHarness(seq, 30)
	measure("slam_detect", slamPools, func(b *testing.B) {
		h.Detect() // warm detector scratch at this pool size
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Detect()
		}
	})
	measure("slam_match_projection", slamPools, func(b *testing.B) {
		h.MatchByProjection()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.MatchByProjection()
		}
	})
	measure("slam_ba_local", slamPools, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.LocalBA()
		}
	})
	// slam_run_sequence reports ns/op from testing.Benchmark like every other
	// kernel, but takes its alloc column from a GC-pinned median of warmed
	// runs instead of the benchmark mean: the run's ~16k allocations carry a
	// few allocs of run-to-run jitter (map overflow-bucket layout depends on
	// insertion order), and a mean over testing.Benchmark's small N would make
	// the pool-1 vs pool-8 alloc comparison — the pool-independence contract
	// this file is the record of — a coin flip.
	for _, pool := range slamPools {
		prev := parallelx.SetPoolSize(pool)
		r := testing.Benchmark(func(b *testing.B) {
			slam.RunSequence(seq) // warm this pool size's worker scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				slam.RunSequence(seq)
			}
		})
		allocs, bytes := medianAllocs(5, func() { slam.RunSequence(seq) })
		parallelx.SetPoolSize(prev)
		rep.Results = append(rep.Results, Result{
			Name:        "slam_run_sequence",
			Pool:        pool,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
			N:           r.N,
		})
		fmt.Fprintf(os.Stderr, "%-28s pool=%-2d %12.0f ns/op  (n=%d)\n",
			"slam_run_sequence", pool, float64(r.T.Nanoseconds())/float64(r.N), r.N)
	}

	// Fault-campaign kernel: two full closed-loop flights (fault-free
	// baseline + severe compound) per op. Scales with the pool because the
	// flights are independent; the campaign table itself is pool-invariant.
	measure("fault_campaign", []int{1, 2}, func(b *testing.B) {
		scenarios := []faultx.Scenario{faultx.SevereScenario(1)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := faultx.Run(scenarios, faultx.Config{MaxSeconds: 120}); err != nil {
				b.Fatal(err)
			}
		}
	})

	seqName := fmt.Sprintf("slam_suite_%dseq", *seqs)
	if *seqs == 0 {
		seqName = "slam_suite_full"
	}
	measure(seqName, pools, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunFigure17(*seqs); err != nil {
				b.Fatal(err)
			}
		}
	})

	rows, err := rooflineRows(seq)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Roofline = rows

	writeReport(rep, *out)
}

// rooflineRows ledgers the reference workload (the MH01 sequence already
// generated for the SLAM benchmarks, the loop-closing orbit, and the
// reference box-mission flight) and places every kernel under each Table 5
// platform's roofs. The ledgers are deterministic functions of the
// workload, so these rows are bit-stable across runs and pool sizes —
// unlike the timing results above, a diff here always means a real change
// to the pipeline's arithmetic or the byte models.
func rooflineRows(mh01 *dataset.Sequence) ([]RoofRow, error) {
	st := slam.RunSequence(mh01).Stats
	orbit, err := dataset.Generate(roofline.LoopOrbitSpec())
	if err != nil {
		return nil, err
	}
	ost := slam.RunSequence(orbit).Stats
	st.FeatureExtractionOps += ost.FeatureExtractionOps
	st.MatchingOps += ost.MatchingOps
	st.LocalBAOps += ost.LocalBAOps
	st.GlobalBAOps += ost.GlobalBAOps
	st.PoseGraphOps += ost.PoseGraphOps
	st.Frames += ost.Frames

	fres, err := scenario.Run(scenario.Spec{Seed: 42, MaxSeconds: 120})
	if err != nil {
		return nil, err
	}
	pts := append(roofline.FromSLAM(st, mh01.Cam.Width, mh01.Cam.Height),
		roofline.FromFlight(fres.EKFStats, fres.CtrlStats)...)
	roofRep := roofline.BuildReport(pts)
	var rows []RoofRow
	for i, c := range roofRep.Ceilings {
		for _, pl := range roofRep.Placements[i] {
			rows = append(rows, RoofRow{
				Platform:    c.Platform,
				Kernel:      pl.Name,
				Ops:         pl.Ops,
				AI:          pl.AI,
				AttainMops:  pl.Attainable / 1e6,
				MemoryBound: pl.MemoryBound,
				RoofFrac:    pl.RoofFrac,
			})
		}
	}
	return rows, nil
}

func writeReport(rep Report, out string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", out)
}
