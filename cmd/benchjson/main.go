// Command benchjson measures the design-space engine's hot paths with the
// standard testing.Benchmark driver and writes the results as JSON
// (BENCH_core.json by default), so successive PRs can track the perf
// trajectory mechanically: each entry records ns/op, allocs/op, and the
// pool size it ran at.
//
// Usage:
//
//	benchjson                 # quick suite -> BENCH_core.json
//	benchjson -o - -seqs 2    # print to stdout, truncated SLAM suite
//	benchjson -quick -o -     # smoke subset (resolve, scenario/batch/fleet kernels)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dronedse/bench"
	"dronedse/core"
	"dronedse/dataset"
	"dronedse/faultx"
	"dronedse/fleet"
	"dronedse/parallelx"
	"dronedse/scenario"
	"dronedse/slam"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Pool        int     `json:"pool"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GoMaxProcs int      `json:"go_max_procs"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	Results    []Result `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file (- for stdout)")
	seqs := flag.Int("seqs", 2, "SLAM sequences for the suite benchmark (0 = all 11, slow)")
	quick := flag.Bool("quick", false, "smoke subset only (resolve kernels + scenario_flight)")
	flag.Parse()

	pools := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		pools = append(pools, n)
	}

	spec := core.DefaultSpec()
	p := core.DefaultParams()
	cells := []int{1, 2, 3, 4, 5, 6}

	rep := Report{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}

	// measureN runs fn under testing.Benchmark at each pool size and divides
	// every per-op figure by perOp — the batch kernels report per-flight
	// costs this way (one op = a whole batch of perOp flights).
	measureN := func(name string, poolSizes []int, perOp int, fn func(b *testing.B)) {
		for _, pool := range poolSizes {
			prev := parallelx.SetPoolSize(pool)
			r := testing.Benchmark(fn)
			parallelx.SetPoolSize(prev)
			rep.Results = append(rep.Results, Result{
				Name:        name,
				Pool:        pool,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N) / float64(perOp),
				AllocsPerOp: r.AllocsPerOp() / int64(perOp),
				BytesPerOp:  r.AllocedBytesPerOp() / int64(perOp),
				N:           r.N,
			})
			fmt.Fprintf(os.Stderr, "%-28s pool=%-2d %12.0f ns/op  (n=%d)\n",
				name, pool, float64(r.T.Nanoseconds())/float64(r.N)/float64(perOp), r.N)
		}
	}
	measure := func(name string, poolSizes []int, fn func(b *testing.B)) {
		measureN(name, poolSizes, 1, fn)
	}
	serial := []int{1}

	measure("resolve_uncached", serial, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Resolve(spec, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	measure("resolve_cached_warm", serial, func(b *testing.B) {
		core.ResetResolveCache()
		core.ResolveCached(spec, p)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.ResolveCached(spec, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Scenario-engine kernel: one full closed-loop reference flight (build,
	// arm, box mission, land) per op — the wiring + flight cost every
	// scenario-based tool pays.
	measure("scenario_flight", serial, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := scenario.Run(scenario.Spec{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Completed {
				b.Fatal("reference mission did not complete")
			}
		}
	})
	// Batch-engine kernels: N reference flights stepped in lock-step on one
	// scenario.Batch, reported per flight. Build/arm happen outside the
	// timer, so ns and allocs measure exactly the steady-state stepping the
	// fleet-simulation north star pays — the alloc column is the
	// zero-steady-state-allocation contract (the residual is the one
	// Outcomes slice, amortized over the batch).
	batchKernel := func(size int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				specs := make([]scenario.Spec, size)
				for j := range specs {
					specs[j] = scenario.Spec{Seed: int64(j + 1)}
				}
				bt := scenario.NewBatch(specs)
				bt.Start()
				b.StartTimer()
				results, errs := bt.Run()
				b.StopTimer()
				for j := range errs {
					if errs[j] != nil {
						b.Fatal(errs[j])
					}
					if !results[j].Completed {
						b.Fatal("lane mission did not complete")
					}
				}
			}
		}
	}
	for _, size := range []int{1, 16, 64} {
		measureN(fmt.Sprintf("scenario_batch%d", size), serial, size, batchKernel(size))
	}
	// Fleet-server kernel: 256 resident hover flights stepped through the
	// whole fleetd engine path — admission bookkeeping, sharded TickN,
	// telemetry publish into subscriber-less hubs — reported per drone-step.
	// The delta against scenario_batch is the multi-tenancy overhead.
	fleetLanes, fleetStride := 256, 100
	measureN("fleet_step256", pools, fleetLanes*fleetStride, func(b *testing.B) {
		srv := fleet.New(fleet.Config{Shards: 2, MaxLanes: fleetLanes, DropArtifacts: true})
		specs := make([]fleet.JobSpec, fleetLanes)
		for j := range specs {
			specs[j] = fleet.JobSpec{Seed: int64(j + 1), Hover: true, MaxSeconds: 3600}
		}
		if _, err := srv.SubmitAll(specs); err != nil {
			b.Fatal(err)
		}
		srv.Advance(10000) // through takeoff into steady hover
		if st := srv.Stats(); st.Live != fleetLanes {
			b.Fatalf("%d of %d lanes live after warmup", st.Live, fleetLanes)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.Advance(fleetStride)
		}
		b.StopTimer()
		srv.Shutdown()
	})
	if *quick {
		writeReport(rep, *out)
		return
	}

	measure("sweep_capacity_cold", pools, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ResetResolveCache()
			if pts := core.SweepCapacity(spec, p, 1000, 8000, 100); len(pts) == 0 {
				b.Fatal("empty sweep")
			}
		}
	})
	measure("best_config_cold", pools, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ResetResolveCache()
			if _, ok := core.BestConfig(spec, p, cells, 1000, 8000, 250); !ok {
				b.Fatal("no feasible config")
			}
		}
	})
	measure("best_config_warm", serial, func(b *testing.B) {
		core.ResetResolveCache()
		core.BestConfig(spec, p, cells, 1000, 8000, 250)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := core.BestConfig(spec, p, cells, 1000, 8000, 250); !ok {
				b.Fatal("no feasible config")
			}
		}
	})
	measure("pareto_payload_cold", pools, func(b *testing.B) {
		payloads := []float64{0, 100, 200, 300, 500, 750, 1000}
		for i := 0; i < b.N; i++ {
			core.ResetResolveCache()
			if pts := core.ParetoPayloadFrontier(spec, p, payloads); len(pts) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
	measure("figure10_450mm", pools, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ResetResolveCache()
			bench.RunFigure10(450, p)
		}
	})
	// SLAM front-end kernels (this PR's hot paths). Pool sizes 1/2/8 track
	// the serial floor, the dual-core win, and the saturation point; outputs
	// are pool-invariant (see slam/parallel_test.go), so only timing moves.
	slamPools := []int{1, 2, 8}
	seq, err := dataset.Generate(dataset.EuRoCSpecs()[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	h := slam.NewBenchHarness(seq, 30)
	measure("slam_detect", slamPools, func(b *testing.B) {
		h.Detect() // warm detector scratch at this pool size
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Detect()
		}
	})
	measure("slam_match_projection", slamPools, func(b *testing.B) {
		h.MatchByProjection()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.MatchByProjection()
		}
	})
	measure("slam_ba_local", slamPools, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.LocalBA()
		}
	})
	measure("slam_run_sequence", slamPools, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			slam.RunSequence(seq)
		}
	})

	// Fault-campaign kernel: two full closed-loop flights (fault-free
	// baseline + severe compound) per op. Scales with the pool because the
	// flights are independent; the campaign table itself is pool-invariant.
	measure("fault_campaign", []int{1, 2}, func(b *testing.B) {
		scenarios := []faultx.Scenario{faultx.SevereScenario(1)}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := faultx.Run(scenarios, faultx.Config{MaxSeconds: 120}); err != nil {
				b.Fatal(err)
			}
		}
	})

	seqName := fmt.Sprintf("slam_suite_%dseq", *seqs)
	if *seqs == 0 {
		seqName = "slam_suite_full"
	}
	measure(seqName, pools, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.RunFigure17(*seqs); err != nil {
				b.Fatal(err)
			}
		}
	})

	writeReport(rep, *out)
}

func writeReport(rep Report, out string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", out)
}
