// Command flysim runs the full flight stack — 6-DOF plant, Table 2a sensor
// suite, EKF, cascaded PID at the Table 2b rates, ArduCopter-style
// autopilot, battery — through a waypoint mission, printing a flight log
// and the whole-drone power summary (the Figure 16b signal).
//
// Usage:
//
//	flysim -alt 5 -slam            # fly the default box mission with SLAM power on
//	flysim -seconds 120 -hover     # just hover and watch the battery drain
package main

import (
	"flag"
	"fmt"
	"os"

	"dronedse/autopilot"
	"dronedse/mathx"
	"dronedse/power"
	"dronedse/sim"
	"dronedse/trace"
)

func main() {
	alt := flag.Float64("alt", 5, "takeoff altitude (m)")
	slam := flag.Bool("slam", false, "run SLAM-class compute load (RPi at 4.56 W vs 3.39 W)")
	hover := flag.Bool("hover", false, "hover instead of flying the mission")
	seconds := flag.Float64("seconds", 240, "maximum simulated seconds")
	seed := flag.Int64("seed", 1, "sensor/environment seed")
	wind := flag.Float64("wind", 0, "steady wind (m/s)")
	logCSV := flag.String("log", "", "write the DataFlash-style flight log as CSV to this file")
	flag.Parse()

	q, err := sim.NewQuad(sim.DefaultConfig())
	check(err)
	if *wind > 0 {
		q.SetEnvironment(sim.WindyEnvironment(*seed, *wind, *wind/2))
	}
	pack, err := power.NewPack(3, 3000, 30)
	check(err)

	computeW := 3.39 + 0.75 // RPi autopilot + Navio2
	if *slam {
		computeW = 4.56 + 0.75
	}
	ap, err := autopilot.New(autopilot.Config{
		Quad: q, Battery: pack, ComputeW: computeW, TakeoffAltM: *alt, Seed: *seed,
	})
	check(err)

	scope := trace.NewOscilloscope(*seed)
	lastLog := -5.0
	ap.OnStep = func(a *autopilot.Autopilot, dt float64) {
		scope.Observe(a.Time(), a.TotalPowerW())
		if a.Time()-lastLog >= 5 {
			lastLog = a.Time()
			s := a.Quad().State()
			fmt.Printf("t=%6.1fs mode=%-8v pos=(%6.2f,%6.2f,%5.2f) vel=%5.2fm/s P=%6.1fW soc=%4.1f%%\n",
				a.Time(), a.Mode(), s.Pos.X, s.Pos.Y, s.Pos.Z, s.Vel.Norm(),
				a.TotalPowerW(), 100*a.Battery().StateOfCharge())
		}
	}

	var flog autopilot.FlightLog
	ap.AttachFlightLog(&flog) // chains after the power-trace observer

	check(ap.Arm())
	fmt.Println("armed; taking off...")
	if !ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Hover }, 30) {
		fail("takeoff failed")
	}
	fmt.Printf("hovering at %.1f m\n", q.State().Pos.Z)

	if *hover {
		ap.RunFor(*seconds)
		ap.CommandLand()
		ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Disarmed }, 60)
	} else {
		mission := autopilot.MissionPlan{
			{Pos: mathx.V3(12, 0, *alt+1), HoldS: 1},
			{Pos: mathx.V3(12, 12, *alt+3), HoldS: 1},
			{Pos: mathx.V3(0, 12, *alt+1), HoldS: 1},
		}
		check(ap.LoadMission(mission))
		check(ap.StartMission())
		if !ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Disarmed }, *seconds) {
			fail("mission did not complete in time")
		}
	}

	end := ap.Time()
	fmt.Printf("\nflight complete at t=%.1f s\n", end)
	fmt.Printf("whole-drone power: avg %.1f W, peak %.1f W (paper's drone: 130 W avg)\n",
		scope.MeanPower(2, end), scope.PeakPower(2, end))
	fmt.Printf("energy used: %.2f Wh of %.2f Wh usable\n",
		scope.EnergyWh(), pack.UsableEnergyWh())
	fmt.Println(flog.Summary())
	if *logCSV != "" {
		f, err := os.Create(*logCSV)
		check(err)
		check(flog.WriteCSV(f))
		check(f.Close())
		fmt.Println("flight log written to", *logCSV)
	}
}

func check(err error) {
	if err != nil {
		fail(err.Error())
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "flysim:", msg)
	os.Exit(1)
}
