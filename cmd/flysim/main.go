// Command flysim runs the full flight stack — 6-DOF plant, Table 2a sensor
// suite, EKF, cascaded PID at the Table 2b rates, ArduCopter-style
// autopilot, battery — through a waypoint mission, printing a flight log
// and the whole-drone power summary (the Figure 16b signal).
//
// The stack itself is assembled by the scenario engine; flysim is one
// Spec plus console output.
//
// Usage:
//
//	flysim -alt 5 -slam            # fly the default box mission with SLAM power on
//	flysim -seconds 120 -hover     # just hover and watch the battery drain
//	flysim -workload delivery      # fly the two-leg package-delivery demo
package main

import (
	"flag"
	"fmt"
	"os"

	"dronedse/autopilot"
	"dronedse/mission"
	"dronedse/scenario"
)

func main() {
	alt := flag.Float64("alt", 5, "takeoff altitude (m)")
	slam := flag.Bool("slam", false, "run SLAM-class compute load (RPi at 4.56 W vs 3.39 W)")
	hover := flag.Bool("hover", false, "hover instead of flying the mission")
	workload := flag.String("workload", "", "workload kind: box, hover, coverage, delivery, follow (default box)")
	seconds := flag.Float64("seconds", 240, "maximum simulated seconds")
	seed := flag.Int64("seed", 1, "sensor/environment seed")
	wind := flag.Float64("wind", 0, "steady wind (m/s)")
	logCSV := flag.String("log", "", "write the DataFlash-style flight log as CSV to this file")
	flag.Parse()

	lastLog := -5.0
	spec := scenario.Spec{
		Seed:        *seed,
		TakeoffAltM: *alt,
		Hover:       *hover,
		MaxSeconds:  *seconds,
		Compute:     scenario.Compute{SLAM: *slam},
		Observers: []autopilot.StepObserver{func(a *autopilot.Autopilot, dt float64) {
			if a.Time()-lastLog >= 5 {
				lastLog = a.Time()
				s := a.Quad().State()
				fmt.Printf("t=%6.1fs mode=%-8v pos=(%6.2f,%6.2f,%5.2f) vel=%5.2fm/s P=%6.1fW soc=%4.1f%%\n",
					a.Time(), a.Mode(), s.Pos.X, s.Pos.Y, s.Pos.Z, s.Vel.Norm(),
					a.TotalPowerW(), 100*a.Battery().StateOfCharge())
			}
		}},
		OnPhase: func(st *scenario.Stack, p scenario.Phase) {
			switch p {
			case scenario.PhaseArmed:
				fmt.Println("armed; taking off...")
			case scenario.PhaseAirborne:
				fmt.Printf("hovering at %.1f m\n", st.Quad.State().Pos.Z)
			}
		},
	}
	if *wind > 0 {
		spec.Wind = scenario.Wind{MeanMS: *wind, GustMS: *wind / 2}
	}
	if *workload != "" {
		wl, err := mission.Named(*workload)
		check(err)
		spec.Workload = wl
	}

	st, err := scenario.Build(spec)
	check(err)
	res, err := st.Run()
	check(err)
	if !res.TakeoffOK {
		fail("takeoff failed")
	}
	if !*hover && res.FinalMode != autopilot.Disarmed {
		fail("mission did not complete in time")
	}

	fmt.Printf("\nflight complete at t=%.1f s\n", res.FlightTimeS)
	if res.Workload.Kind != "" {
		fmt.Printf("workload %s: completed=%v", res.Workload.Kind, res.Workload.Completed)
		if res.Workload.DeliveredKg > 0 {
			fmt.Printf(" delivered=%.2fkg over %d legs", res.Workload.DeliveredKg, res.Workload.LegsDone)
		}
		if res.Workload.CoverageFrac > 0 {
			fmt.Printf(" coverage=%.0f%%", 100*res.Workload.CoverageFrac)
		}
		if res.Workload.MaxTrackErrM > 0 {
			fmt.Printf(" track err mean=%.2fm max=%.2fm", res.Workload.MeanTrackErrM, res.Workload.MaxTrackErrM)
		}
		fmt.Println()
	}
	fmt.Printf("whole-drone power: avg %.1f W, peak %.1f W (paper's drone: 130 W avg)\n",
		res.Trace.MeanPower(2, res.FlightTimeS), res.Trace.PeakPower(2, res.FlightTimeS))
	fmt.Printf("energy used: %.2f Wh of %.2f Wh usable\n",
		res.Trace.EnergyWh(), st.Battery.UsableEnergyWh())
	fmt.Println(res.Log.Summary())
	if *logCSV != "" {
		f, err := os.Create(*logCSV)
		check(err)
		check(res.Log.WriteCSV(f))
		check(f.Close())
		fmt.Println("flight log written to", *logCSV)
	}
}

func check(err error) {
	if err != nil {
		fail(err.Error())
	}
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "flysim:", msg)
	os.Exit(1)
}
