// Command fleetctl is the fleetd client: submit jobs, wait for completion
// with digest verification, stream live telemetry, and shut the server
// down, all against the JSON job API and the framed TCP telemetry feed.
//
// Usage:
//
//	fleetctl [-addr URL] [-telem HOST:PORT] [-retries N] [-wait-ready D] <command> [flags]
//
//	submit    -n 64 -seconds 2 -hover -seed 1 -vary 8   # generate and submit jobs
//	submit    -f jobs.json                              # or submit a JSON job list
//	wait      -verify -min-peak 1000 -timeout 5m        # wait, assert digests agree
//	run       -seconds 20 -hover -check                 # submit one job, stream it
//	                                                    # live, cross-check digests
//	                                                    # against a local replay
//	stream    -id 3                                     # stream a job's telemetry
//	stream    -id 3 -stall                              # subscribe and never read
//	digests                                             # "id spec-digests" per line,
//	                                                    # diffable across restarts
//	stats | jobs | shutdown
//
// -retries spends a jittered-exponential-backoff budget on transient
// failures (connection refused, 429 queue-full, 503 draining); -wait-ready
// polls /readyz before running the command — together they let scripts
// race fleetctl against a fleetd that is still starting or recovering.
//
// `wait -verify` fails if any job failed or if two jobs sharing a JobSpec
// report different digests — the multi-tenancy determinism contract,
// checked from the outside. `run -check` replays the same JobSpec through
// scenario.Run in-process and fails unless all three digests match the
// server's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dronedse/fleet"
	"dronedse/groundstation"
	"dronedse/mavlink"
	"dronedse/scenario"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8480", "fleetd job API root")
	telem := flag.String("telem", "127.0.0.1:8481", "fleetd telemetry address")
	retries := flag.Int("retries", 0, "retry budget for transient failures (jittered exponential backoff)")
	waitReady := flag.Duration("wait-ready", 0, "poll /readyz this long before the command (0 = don't)")
	flag.Parse()
	if flag.NArg() < 1 {
		fatal("usage: fleetctl [-addr URL] [-telem HOST:PORT] submit|wait|run|stream|digests|stats|jobs|shutdown [flags]")
	}
	c := fleet.NewClient(*addr)
	c.Retry = fleet.RetryPolicy{Max: *retries}
	if *waitReady > 0 {
		check(c.WaitReady(*waitReady))
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	switch cmd {
	case "submit":
		cmdSubmit(c, args)
	case "wait":
		cmdWait(c, args)
	case "run":
		cmdRun(c, *telem, args)
	case "stream":
		cmdStream(*telem, args)
	case "digests":
		cmdDigests(c)
	case "stats":
		st, err := c.Stats()
		check(err)
		printJSON(st)
	case "jobs":
		jobs, err := c.Jobs()
		check(err)
		printJSON(jobs)
	case "shutdown":
		check(c.Shutdown())
	default:
		fatal("unknown command %q", cmd)
	}
}

// jobFlags declares the JobSpec-shaping flags shared by submit and run.
func jobFlags(fs *flag.FlagSet) *fleet.JobSpec {
	spec := &fleet.JobSpec{}
	fs.Int64Var(&spec.Seed, "seed", 1, "base sensor/environment seed")
	fs.BoolVar(&spec.Hover, "hover", false, "hover instead of flying the mission")
	fs.Float64Var(&spec.MaxSeconds, "seconds", 0, "maximum simulated seconds (0 = default)")
	fs.Float64Var(&spec.TakeoffAltM, "alt", 0, "takeoff altitude (0 = default)")
	fs.Float64Var(&spec.WindMeanMS, "wind", 0, "steady wind (m/s)")
	fs.Float64Var(&spec.WindGustMS, "gust", 0, "wind gust amplitude (m/s)")
	fs.BoolVar(&spec.SLAM, "slam", false, "SLAM-class companion compute load")
	fs.IntVar(&spec.TelemetryEverySteps, "every", 0, "physics steps between telemetry units (0 = default)")
	return spec
}

func cmdSubmit(c *fleet.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	spec := jobFlags(fs)
	n := fs.Int("n", 1, "number of jobs to generate")
	vary := fs.Int("vary", 0, "cycle seeds over this many values (0 = all same seed)")
	file := fs.String("f", "", "submit a JSON job list from this file instead ('-' = stdin)")
	fs.Parse(args)

	var specs []fleet.JobSpec
	if *file != "" {
		var rd io.Reader = os.Stdin
		if *file != "-" {
			f, err := os.Open(*file)
			check(err)
			defer f.Close()
			rd = f
		}
		check(json.NewDecoder(rd).Decode(&specs))
	} else {
		base := spec.Seed
		for i := 0; i < *n; i++ {
			s := *spec
			if *vary > 0 {
				s.Seed = base + int64(i%*vary)
			}
			specs = append(specs, s)
		}
	}
	ids, err := c.Submit(specs)
	check(err)
	for _, id := range ids {
		fmt.Println(id)
	}
}

func cmdWait(c *fleet.Client, args []string) {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline")
	poll := fs.Duration("poll", 100*time.Millisecond, "poll interval")
	verify := fs.Bool("verify", false, "fail on any failed job or same-spec digest divergence")
	minPeak := fs.Int("min-peak", 0, "fail unless peak concurrent lanes reached this")
	fs.Parse(args)

	jobs, err := c.WaitAll(*timeout, *poll)
	check(err)
	st, err := c.Stats()
	check(err)
	fmt.Printf("fleetctl: %d jobs done, %d failed, peak %d concurrent, %d lane-steps, %d frames (%d shed)\n",
		st.Completed, st.Failed, st.PeakLive, st.LaneSteps, st.FramesPublished, st.FramesDropped)

	if *verify {
		if st.Failed > 0 {
			for _, j := range jobs {
				if j.State == "failed" {
					fmt.Fprintf(os.Stderr, "fleetctl: job %d failed: %s\n", j.ID, j.Error)
				}
			}
			fatal("%d jobs failed", st.Failed)
		}
		table := map[fleet.JobSpec]fleet.Digests{}
		for _, j := range jobs {
			if j.Digests == nil {
				fatal("job %d finished without digests", j.ID)
			}
			if prev, seen := table[j.Spec]; seen && prev != *j.Digests {
				fatal("determinism violation: jobs sharing a spec (seed %d) diverged", j.Spec.Seed)
			}
			table[j.Spec] = *j.Digests
		}
		fmt.Printf("fleetctl: digests verified across %d jobs (%d distinct specs)\n",
			len(jobs), len(table))
	}
	if *minPeak > 0 && st.PeakLive < *minPeak {
		fatal("peak concurrency %d below required %d", st.PeakLive, *minPeak)
	}
}

// cmdRun submits one job, streams its telemetry to completion, and
// optionally cross-checks the server's digests against a local replay.
func cmdRun(c *fleet.Client, telem string, args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	spec := jobFlags(fs)
	checkDigests := fs.Bool("check", false, "replay the spec locally and compare digests")
	fs.Parse(args)

	ids, err := c.Submit([]fleet.JobSpec{*spec})
	check(err)
	id := ids[0]
	conn, err := fleet.DialStream(telem, id)
	check(err)
	data, err := io.ReadAll(conn)
	conn.Close()
	check(err)

	gs := groundstation.New(nil)
	gs.Consume(data)
	vs := gs.State()
	if vs.ParseErrors > 0 {
		fatal("job %d: %d telemetry parse errors", id, vs.ParseErrors)
	}
	fmt.Printf("fleetctl: job %d streamed %d bytes, %d heartbeats, final mode %d\n",
		id, len(data), vs.Heartbeats, vs.Mode)
	if vs.Heartbeats == 0 {
		fatal("job %d: no heartbeats on the live stream", id)
	}

	st, err := c.Job(id)
	check(err)
	if st.State != "done" || st.Digests == nil {
		fatal("job %d: state %s, error %q", id, st.State, st.Error)
	}
	printJSON(st)

	if *checkDigests {
		res, err := scenario.Run(spec.Scenario())
		check(err)
		if local := fleet.DigestResult(res); local != *st.Digests {
			fatal("job %d: server digests diverge from local scenario.Run replay", id)
		}
		fmt.Println("fleetctl: server digests match local replay")
	}
}

func cmdStream(telem string, args []string) {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	id := fs.Uint64("id", 0, "job to subscribe to")
	stall := fs.Bool("stall", false, "subscribe but never read, until killed")
	minHB := fs.Int("min-heartbeats", 1, "fail below this many heartbeats (non-stall)")
	fs.Parse(args)

	conn, err := fleet.DialStream(telem, *id)
	check(err)
	defer conn.Close()

	if *stall {
		// Hold the subscription without draining it: the laggard client the
		// server must shed around. Exits on SIGINT/SIGTERM.
		fmt.Printf("fleetctl: stalled on job %d\n", *id)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		return
	}

	var p mavlink.Parser
	frames, heartbeats := 0, 0
	buf := make([]byte, 32<<10)
	for {
		n, err := conn.Read(buf)
		for _, f := range p.Push(buf[:n]) {
			frames++
			if f.MsgID == mavlink.MsgHeartbeat {
				heartbeats++
			}
		}
		if err == io.EOF {
			break
		}
		check(err)
	}
	if p.Resyncs > 0 || p.BadCRC > 0 {
		fatal("job %d: damaged stream (%d resyncs, %d bad CRCs)", *id, p.Resyncs, p.BadCRC)
	}
	fmt.Printf("fleetctl: job %d: %d frames, %d heartbeats\n", *id, frames, heartbeats)
	if heartbeats < *minHB {
		fatal("job %d: %d heartbeats, need %d", *id, heartbeats, *minHB)
	}
}

// cmdDigests prints one "id trajectory flight-log ledger" line per job in
// ID order — a format made for diffing a post-crash recovery against an
// uninterrupted baseline run of the same job sequence.
func cmdDigests(c *fleet.Client) {
	jobs, err := c.Jobs()
	check(err)
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	for _, j := range jobs {
		switch {
		case j.Digests != nil:
			fmt.Printf("%d %s %s %s\n", j.ID, j.Digests.Trajectory, j.Digests.FlightLog, j.Digests.Ledger)
		case j.State == "failed":
			fmt.Printf("%d failed %s\n", j.ID, strings.ReplaceAll(j.Error, " ", "_"))
		default:
			fmt.Printf("%d %s\n", j.ID, j.State)
		}
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleetctl: "+format+"\n", args...)
	os.Exit(1)
}
