// Command benchguard is the perf-regression gate: it compares a freshly
// measured benchmark report against the committed BENCH_core.json baseline
// and fails if any kernel's ns/op degraded beyond the tolerance (default
// +25%). Rows are matched by (name, pool); rows present in only one file
// (renamed kernels, machines with different pool sets) are skipped with a
// notice, so the guard never fails on coverage drift — only on speed.
//
// A failure means either a real regression (fix it) or a deliberate
// tradeoff; re-baseline deliberately with
//
//	make bench-json   # regenerates BENCH_core.json, commit the diff
//
// Usage:
//
//	benchguard -new /tmp/bench_new.json               # vs BENCH_core.json
//	benchguard -base old.json -new new.json -tol 1.10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// Row mirrors the benchjson result schema (the fields the guard reads).
type Row struct {
	Name        string  `json:"name"`
	Pool        int     `json:"pool"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report mirrors the BENCH_core.json envelope.
type Report struct {
	Results []Row `json:"results"`
}

func load(path string) (map[string]Row, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Row, len(rep.Results))
	for _, r := range rep.Results {
		out[fmt.Sprintf("%s@pool%d", r.Name, r.Pool)] = r
	}
	return out, nil
}

func main() {
	base := flag.String("base", "BENCH_core.json", "committed baseline report")
	newf := flag.String("new", "", "freshly measured report to gate (required)")
	tol := flag.Float64("tol", 1.25, "failure threshold: new ns/op vs baseline")
	flag.Parse()
	if *newf == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -new is required")
		os.Exit(2)
	}
	baseRows, err := load(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	newRows, err := load(*newf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	var failed, compared, skipped int
	for key, nr := range newRows {
		br, ok := baseRows[key]
		if !ok || br.NsPerOp <= 0 {
			skipped++
			continue
		}
		compared++
		ratio := nr.NsPerOp / br.NsPerOp
		status := "ok"
		if ratio > *tol {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-36s %12.0f -> %12.0f ns/op  %5.2fx  %s\n",
			key, br.NsPerOp, nr.NsPerOp, ratio, status)
	}
	if skipped > 0 {
		fmt.Printf("(%d rows without a baseline counterpart skipped)\n", skipped)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no comparable rows between", *base, "and", *newf)
		os.Exit(2)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr,
			"benchguard: %d of %d kernels degraded beyond %.0f%% of the %s baseline.\n"+
				"If deliberate, re-baseline with `make bench-json` and commit the new BENCH_core.json.\n",
			failed, compared, (*tol-1)*100, *base)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d kernels within %.0f%% of baseline\n", compared, (*tol-1)*100)
}
