package roofline

import (
	"math"
	"strings"
	"testing"

	"dronedse/control"
	"dronedse/estimation"
	"dronedse/platform"
	"dronedse/slam"
)

func TestPointAI(t *testing.T) {
	if ai := (Point{Ops: 100, Bytes: 50}).AI(); ai != 2 {
		t.Fatalf("AI = %v, want 2", ai)
	}
	if ai := (Point{Ops: 7, Bytes: 0}).AI(); !math.IsInf(ai, 1) {
		t.Fatalf("zero-byte AI = %v, want +Inf", ai)
	}
}

func TestScaleBytesRoundsHalfUp(t *testing.T) {
	if got := scaleBytes(3, 0.5); got != 2 {
		t.Fatalf("scaleBytes(3, 0.5) = %d, want 2", got)
	}
	if got := scaleBytes(10, 2.5); got != 25 {
		t.Fatalf("scaleBytes(10, 2.5) = %d, want 25", got)
	}
}

func TestStreamEfficiencyBounded(t *testing.T) {
	eff := StreamEfficiency()
	if !(eff > 0 && eff < 1) {
		t.Fatalf("StreamEfficiency = %v, want strictly inside (0, 1): a unit-stride"+
			" stream uses whole lines but the strided mix must waste some", eff)
	}
	if again := StreamEfficiency(); again != eff {
		t.Fatalf("StreamEfficiency not deterministic: %v then %v", eff, again)
	}
}

func TestFromSLAMKernelSet(t *testing.T) {
	st := slam.Stats{FeatureExtractionOps: 1000, MatchingOps: 2000, LocalBAOps: 3000,
		GlobalBAOps: 4000, PoseGraphOps: 500, Frames: 10}
	pts := FromSLAM(st, 640, 480)
	want := map[string]uint64{"detect": 1000, "match": 2000, "local_ba": 3000,
		"global_ba": 4000, "pose_graph": 500}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for _, p := range pts {
		if p.Ops != want[p.Name] {
			t.Errorf("%s ops = %d, want %d", p.Name, p.Ops, want[p.Name])
		}
		if p.Scalar {
			t.Errorf("%s marked scalar; SLAM kernels ride the accelerator", p.Name)
		}
	}
	// Detect traffic is the frame stream, not an op ratio.
	if pts[0].Bytes != 10*640*480*detectPassesPerFrame {
		t.Errorf("detect bytes = %d, want frame-geometry model %d",
			pts[0].Bytes, 10*640*480*detectPassesPerFrame)
	}
}

func TestFromFlightScalar(t *testing.T) {
	ekf := estimation.EKFStats{PredictOps: 100, UpdateOps: 200}
	ctrl := control.CtrlStats{PositionOps: 10, AttitudeOps: 20, RateOps: 30}
	for _, p := range FromFlight(ekf, ctrl) {
		if !p.Scalar {
			t.Errorf("%s not marked scalar; EKF/control stay on the autopilot host", p.Name)
		}
	}
}

func TestPlaceBinding(t *testing.T) {
	c := Ceiling{
		Platform:  "toy",
		Compute:   map[platform.Kernel]float64{platform.Matching: 1000},
		ScalarOps: 500,
		MemBytesS: 100,
	}
	pls := Place([]Point{
		// AI 50: memory roof 5000 > compute roof 1000 → compute bound.
		{Name: "hot", Ops: 100, Bytes: 2, Bucket: platform.Matching},
		// AI 0.5: memory roof 50 < compute roof 1000 → memory bound.
		{Name: "cold", Ops: 100, Bytes: 200, Bucket: platform.Matching},
		// Scalar kernel ignores the bucket table.
		{Name: "ekf", Ops: 100, Bytes: 1, Scalar: true},
	}, c)
	if pls[0].MemoryBound || pls[0].Attainable != 1000 {
		t.Errorf("hot: bound=%v attainable=%v, want compute-bound at 1000",
			pls[0].MemoryBound, pls[0].Attainable)
	}
	if !pls[1].MemoryBound || pls[1].Attainable != 50 {
		t.Errorf("cold: bound=%v attainable=%v, want memory-bound at 50",
			pls[1].MemoryBound, pls[1].Attainable)
	}
	if math.Abs(pls[1].RoofFrac-0.05) > 1e-12 {
		t.Errorf("cold RoofFrac = %v, want 0.05", pls[1].RoofFrac)
	}
	if pls[2].ComputeRoof != 500 {
		t.Errorf("ekf roof = %v, want the 500 scalar ceiling", pls[2].ComputeRoof)
	}
}

func TestBuildReportCoversTable5(t *testing.T) {
	pts := FromSLAM(slam.Stats{FeatureExtractionOps: 10, MatchingOps: 10,
		LocalBAOps: 10, GlobalBAOps: 10, PoseGraphOps: 10, Frames: 1}, 64, 48)
	rep := BuildReport(pts)
	if len(rep.Ceilings) != len(platform.All()) {
		t.Fatalf("%d ceilings, want one per Table 5 platform (%d)",
			len(rep.Ceilings), len(platform.All()))
	}
	tab := rep.Table()
	for _, p := range platform.All() {
		if !strings.Contains(tab, "["+p.Name+"]") {
			t.Errorf("table missing platform block %q", p.Name)
		}
	}
	fig := rep.Figure(0, 60, 12)
	if lines := strings.Count(fig, "\n"); lines != 13 {
		t.Errorf("figure has %d lines, want 13 (title + 12 rows)", lines)
	}
	if !strings.Contains(fig, "/") || !strings.Contains(fig, "-") {
		t.Error("figure missing the bandwidth slant or the compute roof")
	}
}
