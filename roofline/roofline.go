// Package roofline builds the visual performance model the UAV-roofline
// literature applies to autonomous-drone compute: every kernel of the
// flight stack is placed on an (arithmetic intensity, throughput) plane
// bounded by a platform's compute ceiling and its memory-bandwidth ceiling,
// so "make a hot path faster" becomes a measurement — a kernel under the
// slanted bandwidth roof needs data-movement work, one under the flat
// compute roof needs arithmetic work (or a better platform).
//
// The inputs are the repo's work ledgers, which all follow the slam.Stats
// accounting contract: ops are deterministic functions of the pipeline
// inputs alone, never of scheduling or pool size. Byte traffic is modeled
// analytically per kernel (see the byte-model comments below), so every
// number here — intensities, roofs, placements — is bit-identical at any
// parallelx pool size. Ceilings come from the platform tables
// (platform.Throughput, Platform.MemBandwidthGBs) derated by a streaming
// efficiency simulated on the microarch cache model.
package roofline

import (
	"fmt"
	"math"
	"sort"

	"dronedse/control"
	"dronedse/dataset"
	"dronedse/estimation"
	"dronedse/microarch"
	"dronedse/platform"
	"dronedse/slam"
)

// LoopOrbitSpec is the reference loop-closing sequence: a closed orbit that
// revisits its starting view, so a run exercises the pose-graph and
// global-BA kernels the sweep-pattern EuRoC specs leave cold. cmd/roofline
// and benchjson both ledger it, so their kernel rows stay comparable.
func LoopOrbitSpec() dataset.Spec {
	return dataset.Spec{Name: "ORBIT", Difficulty: dataset.Easy, Frames: 185, FPS: 20,
		Landmarks: 900, SpeedMS: 2.0, RoomHalfM: 8, Orbit: true, Seed: 777}
}

// Point is one kernel's position on the roofline plane: its accounted work
// and its modeled memory traffic.
type Point struct {
	// Name identifies the kernel (detect, match, local_ba, ...).
	Name string
	// Ops is the ledger's arithmetic-operation count.
	Ops uint64
	// Bytes is the modeled memory traffic that serviced those ops.
	Bytes uint64
	// Bucket is the platform throughput bucket that times this kernel's
	// compute roof; ignored when Scalar is set.
	Bucket platform.Kernel
	// Scalar marks kernels hosted on the flight computer's scalar cores
	// (EKF, control): their compute roof is platform.ScalarOpsPerSec on
	// every platform, because fitting a SLAM accelerator does not move
	// the autopilot loops onto it.
	Scalar bool
}

// AI returns the arithmetic intensity in ops per byte.
func (p Point) AI() float64 {
	if p.Bytes == 0 {
		return math.Inf(1)
	}
	return float64(p.Ops) / float64(p.Bytes)
}

// Per-kernel byte models. Each is the leading-order traffic of the kernel's
// data-access pattern, expressed per ledger op so the model composes with
// the existing accounting contract (deterministic, scheduling-independent):
//
//   - detect streams the full image twice per frame (the banded FAST scan
//     and the BRIEF description gather) in byte-sized pixel loads, so its
//     traffic comes from the frame geometry, not the op count.
//   - match reads a 32-byte descriptor pair per 16 charged Hamming ops and
//     a 24-byte point per 12 charged projection ops: ~2.5 B/op blended.
//   - Both BA alternation steps run 3x3/6x6 normal-equation blocks that
//     stay register/cache resident; traffic is the point/pose streams,
//     ~0.4 B/op at the ledger's per-residual charge.
//   - The pose graph streams an n×n Laplacian through an n³/3 Cholesky:
//     ~0.5 B/op.
//   - The EKF's 6x6 arena (≈3.7 KB) is cache resident; its traffic is the
//     arena sweep per call, ~0.35 B/op (predict) and ~0.4 B/op (update).
//   - The cascade controller touches a few hundred bytes of state per
//     invocation against ~150 charged ops: ~0.8 B/op.
const (
	matchBytesPerOp      = 2.5
	baBytesPerOp         = 0.4
	poseGraphBytesPerOp  = 0.5
	ekfPredictBytesPerOp = 0.35
	ekfUpdateBytesPerOp  = 0.4
	ctrlBytesPerOp       = 0.8
)

// detectPassesPerFrame is how many times detection streams the image: the
// FAST corner scan and the BRIEF description gather.
const detectPassesPerFrame = 2

// FromSLAM converts a sequence's SLAM ledger into roofline points. Width
// and height are the camera geometry the detect byte model needs.
func FromSLAM(st slam.Stats, width, height int) []Point {
	detBytes := uint64(st.Frames) * uint64(width) * uint64(height) * detectPassesPerFrame
	return []Point{
		{Name: "detect", Ops: st.FeatureExtractionOps, Bytes: detBytes,
			Bucket: platform.FeatureExtraction},
		{Name: "match", Ops: st.MatchingOps, Bytes: scaleBytes(st.MatchingOps, matchBytesPerOp),
			Bucket: platform.Matching},
		{Name: "local_ba", Ops: st.LocalBAOps, Bytes: scaleBytes(st.LocalBAOps, baBytesPerOp),
			Bucket: platform.LocalBA},
		{Name: "global_ba", Ops: st.GlobalBAOps, Bytes: scaleBytes(st.GlobalBAOps, baBytesPerOp),
			Bucket: platform.GlobalBA},
		{Name: "pose_graph", Ops: st.PoseGraphOps, Bytes: scaleBytes(st.PoseGraphOps, poseGraphBytesPerOp),
			Bucket: platform.GlobalBA},
	}
}

// FromFlight converts a flight's estimation and control ledgers into
// roofline points (scalar-core kernels).
func FromFlight(ekf estimation.EKFStats, ctrl control.CtrlStats) []Point {
	return []Point{
		{Name: "ekf_predict", Ops: ekf.PredictOps,
			Bytes: scaleBytes(ekf.PredictOps, ekfPredictBytesPerOp), Scalar: true},
		{Name: "ekf_update", Ops: ekf.UpdateOps,
			Bytes: scaleBytes(ekf.UpdateOps, ekfUpdateBytesPerOp), Scalar: true},
		{Name: "control", Ops: ctrl.TotalOps(),
			Bytes: scaleBytes(ctrl.TotalOps(), ctrlBytesPerOp), Scalar: true},
	}
}

// scaleBytes converts an op count to modeled bytes at a fixed ratio,
// rounding half-up deterministically.
func scaleBytes(ops uint64, bytesPerOp float64) uint64 {
	return uint64(float64(ops)*bytesPerOp + 0.5)
}

// Ceiling is one platform's pair of roofs.
type Ceiling struct {
	Platform string
	// Compute is the flat roof per throughput bucket, ops/s.
	Compute map[platform.Kernel]float64
	// ScalarOps is the flat roof for scalar-core kernels, ops/s.
	ScalarOps float64
	// MemBytesS is the effective memory bandwidth in bytes/s: the
	// platform's spec bandwidth derated by the simulated streaming
	// efficiency.
	MemBytesS float64
	// StreamEff is the derating factor that produced MemBytesS.
	StreamEff float64
}

// CeilingFor derives a platform's roofs: compute from its throughput
// table, memory from its spec bandwidth derated by the microarch-simulated
// streaming efficiency of a SLAM-like access mix.
func CeilingFor(p platform.Platform) Ceiling {
	eff := StreamEfficiency()
	return Ceiling{
		Platform:  p.Name,
		Compute:   p.Throughput,
		ScalarOps: platform.ScalarOpsPerSec,
		MemBytesS: p.MemBandwidthGBs * 1e9 * eff,
		StreamEff: eff,
	}
}

// streamEff caches the (deterministic) simulation.
var streamEff float64

// StreamEfficiency simulates the fraction of raw memory bandwidth a
// SLAM-like access mix sustains, using the microarch cache model's
// hit/miss counters: a unit-stride image/descriptor stream fetches whole
// lines and uses every byte, while the column walks of matrix-block code
// fetch a full line per useful word. The mix is 7 sequential words per
// strided word — the front end streams pixels and descriptors while the
// BA/EKF blocks do the strided touches. The result is useful bytes over
// fetched bytes, a pure function of the cache geometry and the fixed mix.
func StreamEfficiency() float64 {
	if streamEff != 0 {
		return streamEff
	}
	// RPi-class shared last-level cache: 512 KiB, 8-way, 64 B lines.
	const (
		lineBytes = 64
		wordBytes = 8
	)
	c := microarch.NewCache(512<<10, 8, lineBytes)
	var useful uint64
	// Sequential stream: 4 MiB of 8-byte touches (image scan, descriptor
	// walk) — far larger than the cache, so every line is fetched once
	// and fully consumed.
	for addr := uint64(0); addr < 4<<20; addr += wordBytes {
		c.Access(addr)
		useful += wordBytes
	}
	// Strided stream: column walks over a 1024x1024 float64 matrix (8 KiB
	// row stride — every touch a new line, one word used per line),
	// weighted at 1/7 of the sequential touches.
	const stride = 1024 * wordBytes
	base := uint64(1 << 30)
	for i := uint64(0); i < (4<<20)/wordBytes/7; i++ {
		c.Access(base + i*stride)
		useful += wordBytes
	}
	fetched := c.Misses * lineBytes
	streamEff = float64(useful) / float64(fetched)
	return streamEff
}

// Placement is one kernel under one platform's roofs.
type Placement struct {
	Name string
	Ops  uint64
	AI   float64
	// ComputeRoof and MemRoof are in ops/s; MemRoof = AI × bandwidth is
	// the slanted roof evaluated at this kernel's intensity.
	ComputeRoof float64
	MemRoof     float64
	// Attainable is min(ComputeRoof, MemRoof) — the model's bound on this
	// kernel's throughput.
	Attainable float64
	// MemoryBound reports which roof binds.
	MemoryBound bool
	// RoofFrac is Attainable / ComputeRoof: how much of the platform's
	// compute the memory system lets this kernel use (1.0 = compute
	// bound).
	RoofFrac float64
}

// Place positions kernels under a platform's roofs, preserving input order.
func Place(pts []Point, c Ceiling) []Placement {
	out := make([]Placement, 0, len(pts))
	for _, p := range pts {
		roof := c.ScalarOps
		if !p.Scalar {
			roof = c.Compute[p.Bucket]
		}
		ai := p.AI()
		mem := ai * c.MemBytesS
		att := roof
		memBound := false
		if mem < att {
			att, memBound = mem, true
		}
		frac := 1.0
		if roof > 0 {
			frac = att / roof
		}
		out = append(out, Placement{
			Name: p.Name, Ops: p.Ops, AI: ai,
			ComputeRoof: roof, MemRoof: mem, Attainable: att,
			MemoryBound: memBound, RoofFrac: frac,
		})
	}
	return out
}

// Report is the full dashboard: one workload placed under every platform.
type Report struct {
	// Points are the measured kernels (ops, bytes, intensity).
	Points []Point
	// Ceilings and Placements are parallel per platform.
	Ceilings   []Ceiling
	Placements [][]Placement
}

// BuildReport places the kernel points under every Table 5 platform.
func BuildReport(pts []Point) Report {
	plats := platform.All()
	r := Report{Points: pts}
	for _, p := range plats {
		c := CeilingFor(p)
		r.Ceilings = append(r.Ceilings, c)
		r.Placements = append(r.Placements, Place(pts, c))
	}
	return r
}

// Table renders the report as fixed-width text: the kernel ledger first,
// then one placement block per platform. The output is a deterministic
// function of the report (golden-tested at several pool sizes).
func (r Report) Table() string {
	var b []byte
	app := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	app("kernel        ops            bytes          ai(ops/B)\n")
	for _, p := range r.Points {
		app("%-12s  %-13d  %-13d  %.3f\n", p.Name, p.Ops, p.Bytes, p.AI())
	}
	for i, c := range r.Ceilings {
		app("\n[%s]  mem %.2f GB/s (eff %.2f), scalar %.0f Mops/s\n",
			c.Platform, c.MemBytesS/1e9, c.StreamEff, c.ScalarOps/1e6)
		app("kernel        roof(Mops/s)   mem(Mops/s)    attainable     bound    frac\n")
		for _, pl := range r.Placements[i] {
			bound := "compute"
			if pl.MemoryBound {
				bound = "memory"
			}
			app("%-12s  %-13.1f  %-13.1f  %-13.1f  %-7s  %.3f\n",
				pl.Name, pl.ComputeRoof/1e6, pl.MemRoof/1e6, pl.Attainable/1e6, bound, pl.RoofFrac)
		}
	}
	return string(b)
}

// Figure renders an ASCII roofline plot for one platform: log-scale
// intensity on x, log-scale ops/s on y, the bandwidth slant and compute
// roofs drawn, kernels marked by their first letter. Deterministic.
func (r Report) Figure(platformIdx, width, height int) string {
	c := r.Ceilings[platformIdx]
	pls := r.Placements[platformIdx]
	// Log ranges: x in [2^-6, 2^10] ops/B — wide enough that every
	// platform's ridge point (bandwidth roof meets compute roof) is on
	// the canvas; y spans the roofs and points.
	minX, maxX := math.Log2(1.0/64), math.Log2(1024)
	maxRoof := c.ScalarOps
	for _, v := range c.Compute {
		if v > maxRoof {
			maxRoof = v
		}
	}
	minY, maxY := math.Log2(maxRoof)-10, math.Log2(maxRoof)+0.5
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	put := func(xl, yl float64, ch byte) {
		col := int((xl - minX) / (maxX - minX) * float64(width-1))
		row := int((maxY - yl) / (maxY - minY) * float64(height-1))
		if col >= 0 && col < width && row >= 0 && row < height {
			grid[row][col] = ch
		}
	}
	// Bandwidth slant and the highest compute roof.
	for col := 0; col < width; col++ {
		xl := minX + (maxX-minX)*float64(col)/float64(width-1)
		mem := math.Log2(math.Exp2(xl) * c.MemBytesS)
		if mem < math.Log2(maxRoof) {
			put(xl, mem, '/')
		} else {
			put(xl, math.Log2(maxRoof), '-')
		}
	}
	// Kernels, sorted by name for a stable draw order when cells collide.
	idx := make([]int, len(pls))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pls[idx[a]].Name < pls[idx[b]].Name })
	for _, i := range idx {
		pl := pls[i]
		if pl.Ops == 0 {
			continue
		}
		put(math.Log2(pl.AI), math.Log2(pl.Attainable), pl.Name[0])
	}
	var b []byte
	b = fmt.Appendf(b, "%s roofline (x: ops/B 1/64..1024 log2, y: attainable ops/s log2)\n", c.Platform)
	for _, row := range grid {
		b = append(b, row...)
		b = append(b, '\n')
	}
	return string(b)
}
