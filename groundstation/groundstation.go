// Package groundstation is the monitoring side of the Figure 3/5
// communication link: it consumes MAVLink telemetry from the drone over any
// io stream (TCP in the examples, in-memory pipes in tests), tracks the
// latest vehicle state, and can issue commands back — the DroneKit role in
// the paper's stack.
package groundstation

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"dronedse/mavlink"
)

// VehicleState is the ground station's latest view of the drone.
type VehicleState struct {
	Mode        uint8
	Armed       bool
	TimeMS      uint32
	Roll        float64
	Pitch       float64
	Yaw         float64
	X, Y, Z     float64
	VX, VY, VZ  float64
	BatteryV    float64
	BatterySoC  float64
	PowerW      float64
	LastStatus  string
	Heartbeats  int
	Frames      int
	ParseErrors int
}

// Station consumes telemetry and issues commands.
type Station struct {
	mu      sync.Mutex
	state   VehicleState
	parser  mavlink.Parser
	out     io.Writer
	seq     uint8
	history []VehicleState
	histCap int

	// ReadTimeout is the per-read deadline on served TCP connections: a
	// link that goes silent longer than this is dropped so the vehicle can
	// reconnect (lossy links injected by faultx.LossyLink exercise it).
	// Zero means DefaultReadTimeout. Set before ServeTCP.
	ReadTimeout time.Duration
	// Reconnects counts connections served after the first.
	Reconnects int

	ln     net.Listener
	closed bool
}

// DefaultReadTimeout is the served connection's silent-link deadline.
const DefaultReadTimeout = 10 * time.Second

// New returns a station writing commands to out (nil for receive-only).
// The station keeps a bounded history of position fixes for track display.
func New(out io.Writer) *Station { return &Station{out: out, histCap: 4096} }

// State returns a snapshot of the latest vehicle state.
func (s *Station) State() VehicleState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Consume feeds raw telemetry bytes into the station.
func (s *Station) Consume(data []byte) {
	frames := s.parser.Push(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range frames {
		s.state.Frames++
		switch f.MsgID {
		case mavlink.MsgHeartbeat:
			h, err := mavlink.DecodeHeartbeat(f.Payload)
			if err != nil {
				s.state.ParseErrors++
				continue
			}
			s.state.Heartbeats++
			s.state.Mode, s.state.Armed, s.state.TimeMS = h.Mode, h.Armed, h.TimeMS
		case mavlink.MsgAttitude:
			a, err := mavlink.DecodeAttitude(f.Payload)
			if err != nil {
				s.state.ParseErrors++
				continue
			}
			s.state.Roll, s.state.Pitch, s.state.Yaw = float64(a.Roll), float64(a.Pitch), float64(a.Yaw)
		case mavlink.MsgGlobalPosition:
			g, err := mavlink.DecodeGlobalPosition(f.Payload)
			if err != nil {
				s.state.ParseErrors++
				continue
			}
			s.state.X, s.state.Y, s.state.Z = float64(g.X), float64(g.Y), float64(g.Z)
			s.state.VX, s.state.VY, s.state.VZ = float64(g.VX), float64(g.VY), float64(g.VZ)
			s.state.TimeMS = g.TimeMS
			if len(s.history) >= s.histCap {
				copy(s.history, s.history[1:])
				s.history = s.history[:len(s.history)-1]
			}
			s.history = append(s.history, s.state)
		case mavlink.MsgBatteryStatus:
			b, err := mavlink.DecodeBatteryStatus(f.Payload)
			if err != nil {
				s.state.ParseErrors++
				continue
			}
			s.state.BatteryV, s.state.BatterySoC, s.state.PowerW = float64(b.VoltageV), float64(b.SoC), float64(b.PowerW)
		case mavlink.MsgStatusText:
			st, err := mavlink.DecodeStatusText(f.Payload)
			if err != nil {
				s.state.ParseErrors++
				continue
			}
			s.state.LastStatus = st.Text
		default:
			// commands flowing drone-ward are not expected here
		}
	}
}

// SendCommand writes a CommandLong frame to the drone.
func (s *Station) SendCommand(c mavlink.CommandLong) error {
	if s.out == nil {
		return fmt.Errorf("groundstation: receive-only station")
	}
	s.mu.Lock()
	seq := s.seq
	s.seq++
	s.mu.Unlock()
	f := mavlink.Frame{Seq: seq, SysID: 255, CompID: 1,
		MsgID: mavlink.MsgCommandLong, Payload: mavlink.EncodeCommandLong(c)}
	raw, err := f.Marshal()
	if err != nil {
		return err
	}
	_, err = s.out.Write(raw)
	return err
}

// ServeTCP accepts telemetry connections on addr and consumes them until
// Shutdown; it sends the listener address once listening via the ready
// channel. Connections are served one at a time (one vehicle): a dropped or
// silent link — enforced with a per-read deadline — closes the connection
// and the loop accepts the vehicle's reconnect, preserving the accumulated
// state and Track history across link outages.
func (s *Station) ServeTCP(addr string, ready chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	defer ln.Close()
	if ready != nil {
		ready <- ln.Addr()
	}
	conns := 0
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if conns > 0 {
			s.mu.Lock()
			s.Reconnects++
			s.mu.Unlock()
		}
		conns++
		s.serveConn(conn)
	}
}

// serveConn drains one telemetry connection until EOF, error, or a silent
// link hitting the read deadline.
func (s *Station) serveConn(conn net.Conn) {
	defer conn.Close()
	timeout := s.ReadTimeout
	if timeout <= 0 {
		timeout = DefaultReadTimeout
	}
	r := bufio.NewReader(conn)
	buf := make([]byte, 4096)
	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		n, err := r.Read(buf)
		if n > 0 {
			s.Consume(buf[:n])
		}
		if err != nil {
			return // EOF, deadline, or a broken link: wait for reconnect
		}
	}
}

// Shutdown stops ServeTCP: the listener closes and the serve loop returns
// nil after the in-flight connection (if any) drains.
func (s *Station) Shutdown() {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// Track returns the recorded position history (oldest first), bounded at
// the station's history capacity.
func (s *Station) Track() []VehicleState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]VehicleState(nil), s.history...)
}

// DistanceFlown integrates the track's horizontal path length in meters.
func (s *Station) DistanceFlown() float64 {
	track := s.Track()
	total := 0.0
	for i := 1; i < len(track); i++ {
		dx := track[i].X - track[i-1].X
		dy := track[i].Y - track[i-1].Y
		total += math.Hypot(dx, dy)
	}
	return total
}
