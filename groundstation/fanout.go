// Telemetry fan-out: one drone's MAVLink stream delivered to many ground
// stations at once. A Hub sits between the telemetry source (the scenario
// probe's Send callback, running inside the flight tick loop) and any number
// of subscribers, each with its own bounded frame queue. Publish never
// blocks: a laggard subscriber sheds its oldest queued units instead of
// stalling the simulation — the backpressure policy the fleetd tick loop
// depends on.
package groundstation

import (
	"io"
	"sync"
)

// DefaultSubQueue is the per-subscriber queue depth (in telemetry units,
// not bytes) when Subscribe is given a non-positive capacity.
const DefaultSubQueue = 256

// Hub fans one telemetry stream out to subscribers. All methods are safe
// for concurrent use; Publish is wait-free with respect to subscribers (it
// only ever takes short in-memory locks, never an I/O path).
type Hub struct {
	mu        sync.Mutex
	subs      map[*Sub]struct{}
	closed    bool
	published uint64
	dropped   uint64
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{subs: make(map[*Sub]struct{})} }

// Publish delivers one telemetry unit — one or more complete, contiguous
// MAVLink frames — to every subscriber. Units are enqueued and shed whole,
// so a subscriber's byte stream is always frame-aligned: losing a unit
// never tears or interleaves frames. The hub takes ownership of the slice.
func (h *Hub) Publish(unit []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.published++
	for s := range h.subs {
		h.dropped += s.push(unit)
	}
}

// Subscribe attaches a new subscriber with the given queue capacity in
// telemetry units (<=0 selects DefaultSubQueue). Subscribing to a closed
// hub yields a subscription that is already drained: Next reports false.
func (h *Hub) Subscribe(queue int) *Sub {
	if queue <= 0 {
		queue = DefaultSubQueue
	}
	s := &Sub{ring: make([][]byte, queue)}
	s.cond.L = &s.mu
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		s.close()
		return s
	}
	h.subs[s] = struct{}{}
	return s
}

// Unsubscribe detaches s and closes it; pending frames are discarded for
// the subscriber but its drop/receive counters remain readable.
func (h *Hub) Unsubscribe(s *Sub) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
	s.close()
}

// Close ends the stream: subscribers drain whatever is already queued and
// then see Next report false. Counters stay readable after Close.
func (h *Hub) Close() {
	h.mu.Lock()
	subs := make([]*Sub, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = map[*Sub]struct{}{}
	h.closed = true
	h.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
}

// Stats reports units published, units shed across all subscribers (past
// and present), and the current subscriber count.
func (h *Hub) Stats() (published, dropped uint64, subscribers int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.published, h.dropped, len(h.subs)
}

// Backlog returns the total queued-but-undelivered units across current
// subscribers — the drain-aware close signal: a shutdown that wants
// subscribers to see every published unit waits for the backlog to flush
// (bounded) before force-closing their connections.
func (h *Hub) Backlog() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for s := range h.subs {
		n += s.Len()
	}
	return n
}

// Sub is one subscriber's bounded telemetry queue. Next blocks until a unit
// arrives or the subscription closes; push (hub-side) never blocks.
type Sub struct {
	mu      sync.Mutex
	cond    sync.Cond
	ring    [][]byte
	head, n int
	dropped uint64
	closed  bool
}

// push enqueues a unit, shedding the oldest one when the ring is full, and
// returns how many units were dropped (0 or 1).
func (s *Sub) push(unit []byte) (shed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	if s.n == len(s.ring) {
		s.ring[s.head] = nil
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
		shed = 1
	}
	s.ring[(s.head+s.n)%len(s.ring)] = unit
	s.n++
	s.cond.Signal()
	return shed
}

// Next returns the oldest queued unit, blocking while the queue is empty.
// After the subscription closes it keeps returning queued units until the
// queue drains, then reports false.
func (s *Sub) Next() ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 && !s.closed {
		s.cond.Wait()
	}
	return s.popLocked()
}

// TryNext is the non-blocking Next: ok is false when the queue is empty
// (closed or not).
func (s *Sub) TryNext() ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return nil, false
	}
	return s.popLocked()
}

func (s *Sub) popLocked() ([]byte, bool) {
	if s.n == 0 {
		return nil, false
	}
	u := s.ring[s.head]
	s.ring[s.head] = nil
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	return u, true
}

// Len returns how many units are queued awaiting delivery.
func (s *Sub) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns how many units this subscriber has shed so far.
func (s *Sub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Closed reports whether the subscription has ended (queued units may still
// be pending).
func (s *Sub) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Sub) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// StreamTo pumps a subscription into w until the subscription closes and
// drains (returns nil) or a write fails (returns the write error). It is
// the serving side of a telemetry TCP connection: a stalled w blocks only
// this call — the hub keeps publishing and this subscriber sheds.
func StreamTo(w io.Writer, sub *Sub) error {
	for {
		unit, ok := sub.Next()
		if !ok {
			return nil
		}
		if _, err := w.Write(unit); err != nil {
			return err
		}
	}
}
