package groundstation

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"dronedse/autopilot"
	"dronedse/mavlink"
	"dronedse/power"
	"dronedse/sim"
)

// telemetrySource yields successive telemetry units (heartbeat + attitude +
// position + battery per unit) from a live autopilot, the same shape the
// scenario probe publishes.
func telemetrySource(t *testing.T) func() []byte {
	t.Helper()
	q, err := sim.NewQuad(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pack, err := power.NewPack(3, 3000, 30)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := autopilot.New(autopilot.Config{Quad: q, Battery: pack, ComputeW: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap.Arm()
	var seq uint8
	return func() []byte {
		ap.RunFor(0.05)
		raw, err := ap.Telemetry(&seq)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
}

// parseClean pushes a byte stream through a fresh parser and fails the test
// on any sign of torn or interleaved frames (resyncs, CRC failures,
// residual partial bytes between units are allowed only at the very end).
func parseClean(t *testing.T, stream []byte) []mavlink.Frame {
	t.Helper()
	var p mavlink.Parser
	frames := p.Push(stream)
	if p.Resyncs != 0 || p.BadCRC != 0 || p.Discarded != 0 {
		t.Fatalf("stream not frame-aligned: resyncs=%d badcrc=%d discarded=%d",
			p.Resyncs, p.BadCRC, p.Discarded)
	}
	if p.BufferedBytes() != 0 {
		t.Fatalf("stream ends mid-frame: %d residual bytes", p.BufferedBytes())
	}
	return frames
}

// heartbeatTimes extracts the heartbeat timestamps, the per-unit identity
// used to detect duplicated or reordered units across a reconnect.
func heartbeatTimes(frames []mavlink.Frame) []uint32 {
	var ts []uint32
	for _, f := range frames {
		if f.MsgID != mavlink.MsgHeartbeat {
			continue
		}
		h, err := mavlink.DecodeHeartbeat(f.Payload)
		if err == nil {
			ts = append(ts, h.TimeMS)
		}
	}
	return ts
}

// TestHubStalledSubscriberIsolation is the fleetd backpressure contract: a
// subscriber that never reads must not delay telemetry to healthy ones, and
// the publisher must never block.
func TestHubStalledSubscriberIsolation(t *testing.T) {
	next := telemetrySource(t)
	hub := NewHub()

	const units = 200

	// Healthy subscriber: a StreamTo pump into an in-memory pipe with an
	// eager reader on the far end. Its queue covers the whole burst, so any
	// loss here could only come from the stalled co-subscriber delaying it.
	healthy := hub.Subscribe(units)
	hr, hw := net.Pipe()
	var healthyBytes bytes.Buffer
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		buf := make([]byte, 4096)
		for {
			n, err := hr.Read(buf)
			healthyBytes.Write(buf[:n])
			if err != nil {
				return
			}
		}
	}()
	healthyDone := make(chan error, 1)
	go func() { healthyDone <- StreamTo(hw, healthy) }()

	// Stalled subscriber: a pipe nobody ever reads. net.Pipe writes are
	// fully synchronous, so its StreamTo pump wedges on the very first
	// unit — the worst possible laggard.
	stalled := hub.Subscribe(4)
	sr, sw := net.Pipe()
	defer sr.Close()
	stalledDone := make(chan error, 1)
	go func() { stalledDone <- StreamTo(sw, stalled) }()

	published := make(chan struct{})
	go func() {
		for i := 0; i < units; i++ {
			hub.Publish(next())
		}
		close(published)
	}()
	select {
	case <-published:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked: a stalled subscriber stalled the tick loop")
	}

	hub.Close()
	select {
	case err := <-healthyDone:
		if err != nil {
			t.Fatalf("healthy stream failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("healthy stream did not drain after hub close")
	}
	hw.Close()
	readerWG.Wait()

	// The healthy subscriber read concurrently with publishing, so it must
	// have received every unit: 4 frames per unit, timestamps monotone.
	frames := parseClean(t, healthyBytes.Bytes())
	if got := len(frames); got != 4*units {
		t.Fatalf("healthy subscriber got %d frames, want %d", got, 4*units)
	}
	ts := heartbeatTimes(frames)
	if len(ts) != units {
		t.Fatalf("healthy subscriber got %d heartbeats, want %d", len(ts), units)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("healthy heartbeat %d not monotone: %d -> %d", i, ts[i-1], ts[i])
		}
	}

	// The stalled subscriber must have shed: queue depth 4, one unit stuck
	// in its write, 200 published.
	if d := stalled.Dropped(); d == 0 {
		t.Fatal("stalled subscriber shed nothing; backpressure policy broken")
	}
	_, hubDropped, _ := hub.Stats()
	if hubDropped == 0 {
		t.Fatal("hub did not account shed units")
	}
	// Unblock and reap the stalled pump.
	sr.Close()
	select {
	case <-stalledDone:
	case <-time.After(5 * time.Second):
		t.Fatal("stalled pump did not exit after its connection closed")
	}
}

// TestHubReconnectResume models a ground station dropping its link and
// resubscribing: the resumed stream may miss units published during the
// outage but must contain no duplicated, torn, or interleaved frames.
func TestHubReconnectResume(t *testing.T) {
	next := telemetrySource(t)
	hub := NewHub()

	var stream1, stream2 bytes.Buffer

	sub1 := hub.Subscribe(64)
	for i := 0; i < 10; i++ {
		hub.Publish(next())
	}
	for {
		u, ok := sub1.TryNext()
		if !ok {
			break
		}
		stream1.Write(u)
	}
	hub.Unsubscribe(sub1) // link drop

	// Units published while disconnected are lost to this client.
	for i := 0; i < 5; i++ {
		hub.Publish(next())
	}

	sub2 := hub.Subscribe(64) // reconnect + resubscribe
	for i := 0; i < 10; i++ {
		hub.Publish(next())
	}
	hub.Close()
	for {
		u, ok := sub2.Next()
		if !ok {
			break
		}
		stream2.Write(u)
	}

	f1 := parseClean(t, stream1.Bytes())
	f2 := parseClean(t, stream2.Bytes())
	if len(f1) != 4*10 || len(f2) != 4*10 {
		t.Fatalf("frames = %d + %d, want 40 + 40", len(f1), len(f2))
	}

	// Across both segments: strictly monotone unit timestamps (so nothing
	// was duplicated or replayed) with a gap where the outage was.
	all := append(heartbeatTimes(f1), heartbeatTimes(f2)...)
	seen := map[uint32]bool{}
	for i, ts := range all {
		if seen[ts] {
			t.Fatalf("heartbeat %d duplicated across reconnect (t=%d ms)", i, ts)
		}
		seen[ts] = true
		if i > 0 && all[i] <= all[i-1] {
			t.Fatalf("heartbeat %d out of order across reconnect: %d -> %d", i, all[i-1], all[i])
		}
	}

	// A station consuming the concatenated segments tracks state cleanly.
	gs := New(nil)
	gs.Consume(stream1.Bytes())
	gs.Consume(stream2.Bytes())
	if st := gs.State(); st.Heartbeats != 20 || st.ParseErrors != 0 {
		t.Fatalf("station saw %d heartbeats, %d parse errors; want 20, 0",
			st.Heartbeats, st.ParseErrors)
	}
}

// TestHubBacklog pins the drain-aware close signal: Backlog counts queued
// undelivered units across subscribers, falls as they drain, and drops to
// zero once subscribers detach — never double-counting shed units.
func TestHubBacklog(t *testing.T) {
	next := telemetrySource(t)
	hub := NewHub()
	a := hub.Subscribe(4)
	b := hub.Subscribe(8)
	for i := 0; i < 6; i++ {
		hub.Publish(next())
	}
	// a's 4-deep ring shed 2 of the 6; b holds all 6.
	if got := hub.Backlog(); got != 4+6 {
		t.Fatalf("backlog = %d, want 10", got)
	}
	if a.Len() != 4 || b.Len() != 6 {
		t.Fatalf("sub lens = %d/%d, want 4/6", a.Len(), b.Len())
	}
	for i := 0; i < 3; i++ {
		if _, ok := b.Next(); !ok {
			t.Fatal("drain underflow")
		}
	}
	if got := hub.Backlog(); got != 4+3 {
		t.Fatalf("backlog after partial drain = %d, want 7", got)
	}
	hub.Unsubscribe(a)
	if got := hub.Backlog(); got != 3 {
		t.Fatalf("backlog after unsubscribe = %d, want 3", got)
	}
	hub.Close()
	for {
		if _, ok := b.Next(); !ok {
			break
		}
	}
	if got := hub.Backlog(); got != 0 {
		t.Fatalf("backlog after close + drain = %d, want 0", got)
	}
}

// TestHubCloseDrains pins the shutdown contract: units queued before Close
// are still delivered, then Next reports closed.
func TestHubCloseDrains(t *testing.T) {
	next := telemetrySource(t)
	hub := NewHub()
	sub := hub.Subscribe(8)
	for i := 0; i < 3; i++ {
		hub.Publish(next())
	}
	hub.Close()
	got := 0
	for {
		u, ok := sub.Next()
		if !ok {
			break
		}
		parseClean(t, u)
		got++
	}
	if got != 3 {
		t.Fatalf("drained %d units after close, want 3", got)
	}
	if _, ok := sub.Next(); ok {
		t.Fatal("Next returned a unit after drain + close")
	}
	// Late subscribers to a closed hub are born drained.
	if _, ok := hub.Subscribe(8).Next(); ok {
		t.Fatal("subscription to a closed hub yielded a unit")
	}
}
