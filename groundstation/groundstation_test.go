package groundstation

import (
	"bytes"
	"net"
	"testing"
	"time"

	"dronedse/autopilot"
	"dronedse/mathx"
	"dronedse/mavlink"
	"dronedse/power"
	"dronedse/sim"
)

func TestConsumeTelemetry(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	pack, _ := power.NewPack(3, 3000, 30)
	ap, err := autopilot.New(autopilot.Config{Quad: q, Battery: pack, ComputeW: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ap.Arm()
	ap.RunFor(2)

	var seq uint8
	raw, err := ap.Telemetry(&seq)
	if err != nil {
		t.Fatal(err)
	}
	gs := New(nil)
	gs.Consume(raw)
	st := gs.State()
	if st.Heartbeats != 1 {
		t.Errorf("heartbeats = %d", st.Heartbeats)
	}
	if !st.Armed {
		t.Error("armed flag lost")
	}
	if st.Frames < 4 {
		t.Errorf("frames = %d, want heartbeat+attitude+position+battery", st.Frames)
	}
	if st.BatterySoC <= 0 || st.BatterySoC > 1 {
		t.Errorf("SoC = %v", st.BatterySoC)
	}
	if st.Z < 0 {
		t.Errorf("altitude = %v", st.Z)
	}
}

func TestConsumeFragmented(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	ap, _ := autopilot.New(autopilot.Config{Quad: q, Seed: 1})
	var seq uint8
	var stream []byte
	for i := 0; i < 10; i++ {
		raw, _ := ap.Telemetry(&seq)
		stream = append(stream, raw...)
	}
	gs := New(nil)
	for i := 0; i < len(stream); i += 3 {
		end := i + 3
		if end > len(stream) {
			end = len(stream)
		}
		gs.Consume(stream[i:end])
	}
	if got := gs.State().Heartbeats; got != 10 {
		t.Errorf("heartbeats = %d, want 10", got)
	}
}

func TestSendCommand(t *testing.T) {
	var buf bytes.Buffer
	gs := New(&buf)
	if err := gs.SendCommand(mavlink.CommandLong{Command: mavlink.CmdArm}); err != nil {
		t.Fatal(err)
	}
	var p mavlink.Parser
	frames := p.Push(buf.Bytes())
	if len(frames) != 1 || frames[0].MsgID != mavlink.MsgCommandLong {
		t.Fatalf("command frame = %+v", frames)
	}
	c, err := mavlink.DecodeCommandLong(frames[0].Payload)
	if err != nil || c.Command != mavlink.CmdArm {
		t.Errorf("decoded = %+v, %v", c, err)
	}
	recvOnly := New(nil)
	if err := recvOnly.SendCommand(mavlink.CommandLong{}); err == nil {
		t.Error("receive-only station sent a command")
	}
}

func TestCommandDrivesAutopilot(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	ap, _ := autopilot.New(autopilot.Config{Quad: q, Seed: 1})
	var buf bytes.Buffer
	gs := New(&buf)
	gs.SendCommand(mavlink.CommandLong{Command: mavlink.CmdArm})
	var p mavlink.Parser
	for _, f := range p.Push(buf.Bytes()) {
		c, err := mavlink.DecodeCommandLong(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := ap.HandleCommand(c); err != nil {
			t.Fatal(err)
		}
	}
	if ap.Mode() != autopilot.Takeoff {
		t.Errorf("mode after remote arm = %v", ap.Mode())
	}
	if err := ap.HandleCommand(mavlink.CommandLong{Command: 999}); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestServeTCP(t *testing.T) {
	gs := New(nil)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gs.ServeTCP("127.0.0.1:0", ready) }()
	addr := <-ready

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sim.NewQuad(sim.DefaultConfig())
	ap, _ := autopilot.New(autopilot.Config{Quad: q, Seed: 1})
	var seq uint8
	for i := 0; i < 5; i++ {
		raw, _ := ap.Telemetry(&seq)
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	waitForHeartbeats(t, gs, 5)
	gs.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not finish")
	}
	if got := gs.State().Heartbeats; got != 5 {
		t.Errorf("heartbeats over TCP = %d, want 5", got)
	}
}

// waitForHeartbeats polls until the station has consumed at least n
// heartbeats (the serve loop runs in its own goroutine).
func waitForHeartbeats(t *testing.T, gs *Station, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for gs.State().Heartbeats < n {
		if time.Now().After(deadline) {
			t.Fatalf("station saw %d heartbeats, want %d", gs.State().Heartbeats, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeTCPReconnect drops the telemetry link mid-flight and reconnects:
// the accept loop must serve the new connection and the Track history must
// span both connections (the LossyLink outage scenario's ground-side
// contract).
func TestServeTCPReconnect(t *testing.T) {
	gs := New(nil)
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gs.ServeTCP("127.0.0.1:0", ready) }()
	addr := <-ready

	q, _ := sim.NewQuad(sim.DefaultConfig())
	ap, _ := autopilot.New(autopilot.Config{Quad: q, Seed: 1})
	var seq uint8
	sendBurst := func(conn net.Conn, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			ap.RunFor(0.05)
			raw, err := ap.Telemetry(&seq)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := conn.Write(raw); err != nil {
				t.Fatal(err)
			}
		}
	}

	conn1, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	sendBurst(conn1, 4)
	conn1.Close() // link drop
	waitForHeartbeats(t, gs, 4)
	trackBefore := len(gs.Track())

	conn2, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	sendBurst(conn2, 3)
	conn2.Close()
	waitForHeartbeats(t, gs, 7)
	gs.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not finish")
	}

	if gs.Reconnects != 1 {
		t.Errorf("reconnects = %d, want 1", gs.Reconnects)
	}
	track := gs.Track()
	if len(track) != 7 {
		t.Errorf("track = %d fixes, want 7 (history must survive the link drop)", len(track))
	}
	if trackBefore == 0 || len(track) <= trackBefore {
		t.Errorf("track did not grow across reconnect: before=%d after=%d", trackBefore, len(track))
	}
	for i := 1; i < len(track); i++ {
		if track[i].TimeMS < track[i-1].TimeMS {
			t.Fatal("track timestamps not monotone across reconnect")
		}
	}
}

// TestServeTCPReadDeadline verifies a silent connection is dropped after the
// read timeout instead of wedging the accept loop forever.
func TestServeTCPReadDeadline(t *testing.T) {
	gs := New(nil)
	gs.ReadTimeout = 50 * time.Millisecond
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- gs.ServeTCP("127.0.0.1:0", ready) }()
	addr := <-ready

	// A connection that never sends a byte: the server must time it out.
	silent, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	// After the deadline the loop must accept a fresh connection.
	time.Sleep(120 * time.Millisecond)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sim.NewQuad(sim.DefaultConfig())
	ap, _ := autopilot.New(autopilot.Config{Quad: q, Seed: 1})
	var seq uint8
	raw, _ := ap.Telemetry(&seq)
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitForHeartbeats(t, gs, 1)
	gs.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not finish")
	}
}

func TestTrackHistory(t *testing.T) {
	q, _ := sim.NewQuad(sim.DefaultConfig())
	ap, _ := autopilot.New(autopilot.Config{Quad: q, TakeoffAltM: 5, Seed: 4})
	gs := New(nil)
	var seq uint8
	ap.Arm()
	ap.RunUntil(func(a *autopilot.Autopilot) bool { return a.Mode() == autopilot.Hover }, 30)
	ap.LoadMission(autopilot.MissionPlan{{Pos: mathxV3(10, 0, 5)}})
	ap.StartMission()
	steps := 0
	ap.RunUntil(func(a *autopilot.Autopilot) bool {
		steps++
		if steps%500 == 0 { // 2 Hz telemetry
			raw, _ := a.Telemetry(&seq)
			gs.Consume(raw)
		}
		return a.Mode() == autopilot.Disarmed
	}, 120)
	track := gs.Track()
	if len(track) < 10 {
		t.Fatalf("track has %d fixes", len(track))
	}
	for i := 1; i < len(track); i++ {
		if track[i].TimeMS < track[i-1].TimeMS {
			t.Fatal("track timestamps not monotone")
		}
	}
	// The mission went out ~10 m and back: distance flown ~20 m or more.
	if d := gs.DistanceFlown(); d < 12 || d > 60 {
		t.Errorf("distance flown = %.1f m, want ~20+", d)
	}
}

func TestTrackBounded(t *testing.T) {
	gs := New(nil)
	gs.histCap = 8
	q, _ := sim.NewQuad(sim.DefaultConfig())
	ap, _ := autopilot.New(autopilot.Config{Quad: q, Seed: 1})
	var seq uint8
	for i := 0; i < 50; i++ {
		ap.RunFor(0.05)
		raw, _ := ap.Telemetry(&seq)
		gs.Consume(raw)
	}
	if got := len(gs.Track()); got > 8 {
		t.Errorf("history grew to %d, cap 8", got)
	}
}

func mathxV3(x, y, z float64) mathx.Vec3 { return mathx.V3(x, y, z) }
